# Makefile — developer entry points. `make verify` is the full gate:
# gofmt, tier-1 build+tests, vet, and the race-detected fault-injection
# suite. `make bench` snapshots the root benchmarks into BENCH_PR2.json.

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The attestation robustness tests (drop/corrupt/truncate/delay/duplicate
# fault classes, retry, quarantine) under the race detector.
race:
	$(GO) test -race ./internal/attest/...

verify:
	./scripts/verify.sh

# Run the facade benchmarks once each and record them as JSON for
# cross-PR comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./scripts/benchjson > BENCH_PR2.json
	@cat BENCH_PR2.json
