# Makefile — developer entry points. `make verify` is the full gate:
# gofmt, tier-1 build+tests, vet, and the race-detected suites. `make
# bench` snapshots the root benchmarks into BENCH_PR5.json and diffs the
# snapshot against the previous PR's BENCH_PR4.json (informational; use
# `benchjson compare -strict` to gate).

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The attestation robustness tests (drop/corrupt/truncate/delay/duplicate
# fault classes, retry, quarantine), the telemetry layer (tracer ring,
# journal, health registry, admin endpoints under concurrent sweeps), the
# CRP database/store claim paths, and the parallel batch-evaluation
# packages under the race detector.
race:
	$(GO) test -race ./internal/attest/... ./internal/telemetry/... ./internal/crp/... ./internal/sim/... ./internal/core/... ./internal/experiments/...

verify:
	./scripts/verify.sh

# Run the facade benchmarks once each and record them as JSON for
# cross-PR comparison, then diff against the previous PR's snapshot.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./scripts/benchjson > BENCH_PR5.json
	@cat BENCH_PR5.json
	@if [ -f BENCH_PR4.json ]; then $(GO) run ./scripts/benchjson compare BENCH_PR4.json BENCH_PR5.json; fi
