# Makefile — developer entry points. `make verify` is the full gate:
# tier-1 build+tests, vet, and the race-detected fault-injection suite.

GO ?= go

.PHONY: build test vet race verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The attestation robustness tests (drop/corrupt/truncate/delay/duplicate
# fault classes, retry, quarantine) under the race detector.
race:
	$(GO) test -race ./internal/attest/...

verify:
	./scripts/verify.sh
