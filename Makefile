# Makefile — developer entry points. `make verify` is the full gate:
# gofmt, tier-1 build+tests, vet, and the race-detected suites. `make
# bench` snapshots the root benchmarks into BENCH_PR10.json and gates the
# snapshot against the previous PR's BENCH_PR9.json: a >10% ns/op
# regression on the critical Figure3/Figure4 benches fails the target,
# as does >3% on the attestation-protocol hot path — the latter now runs
# alongside its profiler-enabled twin (armed ticker / active CPU capture)
# so the continuous-profiling overhead is measured, not assumed. The PR8
# batch-eval minspeedup gate is retired — the bitsliced engine is now the
# baseline on both sides of the comparison, so the ordinary regression
# threshold covers it. A separate single-shot pass appends the cluster
# load SLO curves (p99, reject_overload, sessions/s at 1k/5k/10k provers)
# to the same snapshot.

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The attestation robustness tests (drop/corrupt/truncate/delay/duplicate
# fault classes, retry, quarantine), the telemetry layer (tracer ring,
# journal, health registry, admin endpoints under concurrent sweeps), the
# CRP database/store claim paths, and the parallel batch-evaluation
# packages under the race detector.
race:
	$(GO) test -race ./internal/attest/... ./internal/telemetry/... ./internal/crp/... ./internal/sim/... ./internal/core/... ./internal/experiments/...

verify:
	./scripts/verify.sh

# Run the facade benchmarks and record them as JSON for cross-PR
# comparison, then gate against the previous PR's snapshot (10% ns/op
# threshold, Figure3/Figure4 critical). Each benchmark runs 20
# iterations per sample, five samples, and compare collapses repeats
# to the fastest sample — single-iteration samples are dominated by
# cold caches and GC pauses from earlier benchmarks in the process,
# which made the gate flap on loaded machines. Snapshots before
# BENCH_PR6 were single-iteration, so deltas against them overstate
# improvement; from PR6 on the comparison is like-for-like. The
# gate-critical benchmarks get a second, longer sampling pass: at 20
# iterations a sub-microsecond benchmark measures ~10 µs of wall time,
# so a single timer interrupt or clock-ramp stall inflates the sample
# 2x and the gate flaps. 2000 iterations amortize that. Both passes
# feed one snapshot and benchjson keeps the fastest sample per
# benchmark. The cluster load benchmark gets its own single-shot pass
# (PUFATT_BENCH_CLUSTER gates it out of the sweep passes): one RunLoad
# per level IS the measurement — the SLO numbers come from the report
# metrics, and 10k provers at 20x/count-5 would take half an hour for
# no extra signal.
bench:
	{ $(GO) test -run '^$$' -bench . -benchtime 20x -count 5 . ; \
	  $(GO) test -run '^$$' -bench 'Figure3|Figure4|AttestationProtocol|BatchEval' -benchtime 2000x -count 5 . ; \
	  PUFATT_BENCH_CLUSTER=1 $(GO) test -run '^$$' -bench 'ClusterLoadSLO' -benchtime 1x -count 1 -timeout 30m . ; } | $(GO) run ./scripts/benchjson > BENCH_PR10.json
	@cat BENCH_PR10.json
	@if [ -f BENCH_PR9.json ]; then $(GO) run ./scripts/benchjson compare -threshold 0.10 -critical 'Figure3|Figure4' -strict BENCH_PR9.json BENCH_PR10.json; fi
	@if [ -f BENCH_PR9.json ]; then $(GO) run ./scripts/benchjson compare -threshold 0.03 -critical 'AttestationProtocol' -strict BENCH_PR9.json BENCH_PR10.json; fi
