// Command pufatt-attack runs the Section 4.2 adversary suite against a
// freshly manufactured device and prints each attack's outcome: memory-copy
// forgery, overclocked forgery, PUF-oracle proxying, machine-learning
// modeling, and the overclocking corruption sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"pufatt/internal/buildinfo"
	"pufatt/internal/core"
	"pufatt/internal/experiments"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "device manufacturing seed")
		fast    = flag.Bool("fast", false, "reduced dataset sizes")
		games   = flag.Bool("games", false, "also run the game-based soundness experiments")
		trials  = flag.Int("trials", 25, "trials per strategy for -games")
		workers = flag.Int("workers", 0, "PUF batch-evaluation workers (0 = GOMAXPROCS)")
		engine  = flag.String("engine", "bitslice", "PUF evaluation engine: gate, bitslice, or linear (linear = fast approximate model, e.g. for ML training-set generation)")
	)
	version := buildinfo.VersionFlags("pufatt-attack")
	flag.Parse()
	version()
	eng, err := core.ParseEvalEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufatt-attack:", err)
		os.Exit(2)
	}
	core.SetDefaultEvalEngine(eng)
	cfg := experiments.DefaultSecurityConfig(*seed)
	cfg.Workers = *workers
	if *fast {
		cfg.MLTrain = 1000
		cfg.MLTest = 200
		cfg.OverclockTrials = 40
	}
	res, err := experiments.RunSecuritySuite(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufatt-attack:", err)
		os.Exit(1)
	}
	fmt.Println(res.Format())
	if !res.Sane() {
		fmt.Fprintln(os.Stderr, "pufatt-attack: UNEXPECTED OUTCOME — an adversary succeeded or the honest prover failed")
		os.Exit(1)
	}
	fmt.Println("all adversaries rejected; honest prover accepted.")
	if *games {
		fmt.Println()
		report, err := experiments.SecurityGames(*seed, *trials)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pufatt-attack:", err)
			os.Exit(1)
		}
		fmt.Println(report.Format())
		if !report.CorrectnessHolds() || !report.SoundnessHolds() {
			fmt.Fprintln(os.Stderr, "pufatt-attack: game-based experiments failed")
			os.Exit(1)
		}
	}
}
