// Command pufatt-attest runs the PUFatt remote attestation protocol. It
// can act as the embedded prover (a TCP service wrapping the simulated
// device), as the verifier (holding the emulation model), or run both sides
// in-process for a quick demonstration.
//
// Usage:
//
//	pufatt-attest -mode local -sessions 3
//	pufatt-attest -mode prove -listen :7701 &
//	pufatt-attest -mode verify -connect localhost:7701 -sessions 5
//
// Prover and verifier must agree on -seed/-chip (the manufactured device
// and its enrolled model) and the attestation parameters.
//
// Robustness controls: the verifier retries transport faults with
// exponential backoff (-retries, -attempt-timeout); a rejected verdict is
// never retried. The deterministic fault injector (-fault-drop,
// -fault-corrupt, -fault-truncate, -fault-delay, -fault-dup, under
// -fault-seed) mangles the verifier's frames so the recovery machinery can
// be demonstrated against a live prover service.
//
// Observability: -metrics-addr serves the admin surface (Prometheus
// metrics, trace trees, the protocol-event journal, per-device health).
// -flight-dir snapshots the journal to a JSON-lines dump whenever a
// session fails, tagged with the failing session's trace ID. -slo-rtt and
// -slo-fnr set the per-device SLO thresholds that drive /devices and
// /healthz: a prover whose p95 round-trip exceeds -slo-rtt is flagged
// suspect from timing alone, the PUFatt signature of an overclocked or
// proxied device. The same thresholds derive the burn-rate alert rules
// served at /alerts, and /metrics/history keeps an hour of windowed
// samples (collected every -history-window) for every metric — watch both
// live with cmd/pufatt-top. -profile-dir keeps a bounded on-disk ring of
// pprof captures, written when an alert fires (tagged with the alert name
// and an exemplar trace ID) and on a low-duty-cycle timer; the capture
// index is served at /debug/profiles.
//
// Federation: -federate "a=http://host1:9090,b=http://host2:9090" turns
// the process into a fleet-level observability endpoint instead of an
// attestation role: it scrapes each named verifier's admin surface and
// re-serves the merged series, device health, and alerts on -metrics-addr,
// every record labeled with its source.
//
// Durable CRP budget: -store-dir points the verifier at a persistent
// enrollment store; each session claims one single-use seed, and claims
// survive restarts (crash-safe via snapshot + WAL). When the budget runs
// low (-slo-budget watermark) the device degrades at /devices; when it
// empties, sessions fail with the typed exhaustion error and the device
// reports awaiting-reenroll until -reenroll cuts it over to a fresh
// reconfiguration epoch (old claims can never resurface). Maintenance:
//
//	pufatt-attest -store-dir /var/lib/pufatt/chip0 -enroll 1024
//	pufatt-attest -store-dir /var/lib/pufatt/chip0 -compact
//	pufatt-attest -store-dir /var/lib/pufatt/chip0 -reenroll 1024
//	pufatt-attest -store-dir /var/lib/pufatt/chip0 -mode local -sessions 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"pufatt/internal/attest"
	"pufatt/internal/buildinfo"
	"pufatt/internal/core"
	"pufatt/internal/crp/store"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
	"pufatt/internal/telemetry"
)

func main() {
	var (
		mode     = flag.String("mode", "local", "local, prove, or verify")
		listen   = flag.String("listen", ":7701", "prover listen address")
		connect  = flag.String("connect", "localhost:7701", "verifier target address")
		sessions = flag.Int("sessions", 3, "attestation sessions to run")
		seed     = flag.Uint64("seed", 1, "device manufacturing seed")
		chip     = flag.Int("chip", 0, "chip id")
		chunks   = flag.Int("chunks", 16, "checksum chunks")
		blocks   = flag.Int("blocks", 16, "blocks per chunk")
		memWords = flag.Int("mem", 4096, "attested words (power of two)")
		infect   = flag.Bool("infect", false, "tamper the prover's memory (should be rejected)")

		retries     = flag.Int("retries", 4, "transport-fault attempt budget per session")
		attemptTO   = flag.Duration("attempt-timeout", 2*time.Second, "per-attempt I/O deadline")
		serveTO     = flag.Duration("serve-timeout", time.Minute, "prover per-exchange idle deadline")
		faultDrop   = flag.Float64("fault-drop", 0, "probability of dropping a frame")
		faultCorr   = flag.Float64("fault-corrupt", 0, "probability of flipping a bit in a frame")
		faultTrunc  = flag.Float64("fault-truncate", 0, "probability of truncating a frame")
		faultDelay  = flag.Float64("fault-delay", 0, "probability of delaying a frame")
		faultDup    = flag.Float64("fault-dup", 0, "probability of duplicating a frame")
		faultDelayS = flag.Float64("fault-delay-secs", 0.5, "injected delay per delay fault (seconds)")
		faultJit    = flag.Float64("fault-jitter", 0, "probability of jittering a response: delivered intact but late, inflating the observed RTT")
		faultJitS   = flag.Float64("fault-jitter-secs", 0.02, "added latency per jitter fault (seconds)")
		faultMax    = flag.Int("max-faults", 0, "stop injecting after N faults (0 = forever)")
		faultSeed   = flag.Uint64("fault-seed", 1, "fault schedule seed")
		faultLog    = flag.Bool("fault-log", false, "emit one JSON line per injected fault to stderr")

		metricsAddr = flag.String("metrics-addr", "",
			"serve /metrics, /metrics/history, /alerts, /debug/vars, /debug/traces, /debug/journal, /devices, /healthz, and /debug/pprof on this address (empty = disabled)")
		historyWindow = flag.Duration("history-window", 5*time.Second,
			"collection interval for /metrics/history windowed samples and burn-rate alert evaluation")
		federate = flag.String("federate", "",
			"run as a federation endpoint instead of attesting: comma-separated name=http://host:port admin sources, scraped every -history-window and re-served merged (with per-source labels) on -metrics-addr")
		flightDir = flag.String("flight-dir", "",
			"write a flight-recorder dump (JSON lines of the session's protocol events) here whenever a session fails (empty = disabled)")
		profileDir = flag.String("profile-dir", "",
			"keep a bounded ring of pprof captures (cpu/heap/goroutine/mutex) here, taken when a burn-rate alert fires and periodically at -profile-interval; index at /debug/profiles (empty = disabled)")
		profileInterval = flag.Duration("profile-interval", telemetry.DefaultProfileInterval,
			"low-duty-cycle periodic profile capture interval (0 = alert-triggered captures only)")
		sloRTT = flag.Float64("slo-rtt", 0,
			"per-device timing SLO: p95 round-trip bound in seconds; a device over it turns suspect at /devices (0 = no timing SLO)")
		sloFNR = flag.Float64("slo-fnr", 0.25,
			"per-device response-quality SLO: false-negative-rate drift bound (0 = disabled)")
		sloBudget = flag.Int("slo-budget", 0,
			"per-device seed-budget watermark: at or below this many remaining seeds the device degrades with 'seed budget low' at /devices (0 = disabled)")

		storeDir = flag.String("store-dir", "",
			"durable CRP store directory: verifier sessions claim single-use seeds that survive restarts (empty = emulation model, no budget)")
		enroll   = flag.Int("enroll", 0, "enroll N fresh seeds into -store-dir and exit")
		compact  = flag.Bool("compact", false, "fold the -store-dir claim WAL into its snapshot and exit")
		reenroll = flag.Int("reenroll", 0,
			"re-enroll N seeds into -store-dir under the next reconfiguration epoch (retiring the current one) and exit")
	)
	version := buildinfo.VersionFlags("pufatt-attest")
	flag.Parse()
	version()

	if *federate != "" {
		check(runFederate(*metricsAddr, *federate, *historyWindow))
		return
	}

	if *metricsAddr != "" {
		addr, stopAdmin, err := attest.StartAdmin(*metricsAddr, nil)
		check(err)
		defer stopAdmin()
		// History and burn-rate alerts only move when someone samples them;
		// the admin endpoint is that someone's reason to exist.
		attest.Metrics().History.SetWindow(*historyWindow)
		stopObs := attest.Metrics().StartObservability(*historyWindow)
		defer stopObs()
		fmt.Printf("telemetry: http://%s/metrics (history at /metrics/history, alerts at /alerts, health at /devices, /healthz)\n", addr)
	}
	if *flightDir != "" {
		attest.Metrics().SetFlightDir(*flightDir)
		fmt.Printf("flight recorder: dumps to %s on session failure\n", *flightDir)
	}
	if *profileDir != "" {
		attest.Metrics().SetProfileDir(*profileDir)
		if *profileInterval > 0 {
			stopProf := attest.Metrics().Profiler.Start(*profileInterval)
			defer stopProf()
		}
		fmt.Printf("profiler: capture ring in %s (alert-triggered; periodic every %s), index at /debug/profiles\n",
			*profileDir, *profileInterval)
	}
	slo := attest.Metrics().Health.SLO()
	slo.MaxRTTP95 = *sloRTT
	slo.MaxFNR = *sloFNR
	slo.MinSeedBudget = *sloBudget
	// SetSLO re-derives the burn-rate alert rules along with the health
	// judgement, so /alerts and /devices agree on what "healthy" means.
	attest.Metrics().SetSLO(slo)

	params := swatt.Params{MemWords: *memWords, Chunks: *chunks, BlocksPerChunk: *blocks, PRG: swatt.PRGMix32}
	dev, err := core.NewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(*seed), *chip)
	check(err)

	if *enroll > 0 || *compact || *reenroll > 0 {
		check(storeAdmin(*storeDir, *enroll, *compact, *reenroll, dev))
		return
	}
	var budget attest.SeedBudget
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.DefaultOptions())
		check(err)
		defer st.Close()
		budget = st
		// The simulated device must run the epoch the store was enrolled
		// at, or every session fails closed with an epoch mismatch.
		dev.SetEpoch(st.Epoch())
		fmt.Printf("crp store: %s — epoch %d, %d of %d seeds remaining, %d WAL record(s) replayed\n",
			*storeDir, st.Epoch(), st.Remaining(), st.Len(), st.WALRecords())
		if st.Retired() {
			fmt.Printf("crp store: epoch %d RETIRED, awaiting re-enrollment at epoch %d (run -reenroll)\n",
				st.Epoch(), st.AwaitingEpoch())
		}
	}

	port, err := mcu.NewDevicePort(dev)
	check(err)
	payload := make([]uint32, 512)
	paySrc := rng.New(*seed).Sub("payload")
	for i := range payload {
		payload[i] = paySrc.Uint32()
	}
	image, err := swatt.BuildImage(params, payload)
	check(err)
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	if *infect {
		for i := 0; i < 64; i++ {
			prover.Image.Mem[image.Layout.PayloadAddr+i] ^= 0xFF
		}
		fmt.Println("prover memory tampered: 64 payload words flipped")
	}

	plan := attest.FaultPlan{
		Drop: *faultDrop, Corrupt: *faultCorr, Truncate: *faultTrunc,
		Delay: *faultDelay, Duplicate: *faultDup, Jitter: *faultJit,
		DelaySeconds: *faultDelayS, JitterSeconds: *faultJitS, MaxFaults: *faultMax,
	}
	faulty := plan.Drop > 0 || plan.Corrupt > 0 || plan.Truncate > 0 || plan.Delay > 0 || plan.Duplicate > 0 || plan.Jitter > 0
	policy := attest.DefaultRetryPolicy()
	policy.MaxAttempts = *retries
	policy.AttemptTimeout = *attemptTO

	newVerifier := func() *attest.Verifier {
		v, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		check(err)
		v.PUFEpoch = dev.Epoch()
		if budget != nil {
			v.WithSeedBudget(budget)
		}
		return v
	}

	switch *mode {
	case "local":
		v := newVerifier()
		link := attest.DefaultLink()
		fmt.Printf("device: chip %d, clock %.1f MHz, δ = %.4fs, link %s\n",
			dev.ChipID(), prover.FreqHz/1e6, v.Delta(), link)
		var agent attest.ProverAgent = prover
		if faulty {
			fl := attest.NewFaultyLink(prover, plan, *faultSeed)
			if *faultLog {
				fl.SetLog(os.Stderr)
			}
			agent = fl
			fmt.Printf("lossy link: %+v (seed %d)\n", plan, *faultSeed)
		}
		for i := 0; i < *sessions; i++ {
			res, attempts, err := attest.RunSessionRetry(v, agent, link, policy)
			check(err)
			report(i, attempts, res)
		}
	case "prove":
		srv := &attest.Server{
			Agent:   prover,
			Timeout: *serveTO,
			OnError: func(err error) { fmt.Fprintln(os.Stderr, "pufatt-attest: prover:", err) },
		}
		addr, err := srv.Start(*listen)
		check(err)
		defer srv.Close()
		fmt.Printf("prover (chip %d, %.1f MHz) listening on %s\n", dev.ChipID(), prover.FreqHz/1e6, addr)
		select {} // serve forever
	case "verify":
		v := newVerifier()
		inj := attest.NewFaultInjector(plan, *faultSeed)
		if *faultLog {
			inj.SetLog(os.Stderr)
		}
		dial := func() (net.Conn, error) {
			conn, err := net.Dial("tcp", *connect)
			if err != nil {
				return nil, err
			}
			if faulty {
				return inj.Wrap(conn), nil
			}
			return conn, nil
		}
		fmt.Printf("verifier targeting %s, δ = %.4fs, %d attempt(s)/session\n", *connect, v.Delta(), policy.MaxAttempts)
		for i := 0; i < *sessions; i++ {
			res, attempts, err := attest.RequestWithRetry(context.Background(), dial, v, attest.DefaultLink(), policy)
			check(err)
			report(i, attempts, res)
		}
		if faulty {
			fmt.Printf("faults injected: %v\n", inj.Counts())
		}
	default:
		fmt.Fprintf(os.Stderr, "pufatt-attest: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func report(i, attempts int, res attest.Result) {
	verdict := "REJECTED"
	if res.Accepted {
		verdict = "accepted"
	}
	fmt.Printf("session %d: %s in %d attempt(s) (elapsed %.4fs, δ %.4fs) %s\n",
		i+1, verdict, attempts, res.Elapsed, res.Delta, res.Reason)
}

// storeAdmin handles the one-shot store maintenance modes: -enroll writes
// a fresh durable enrollment, -compact folds the claim WAL into the
// snapshot, -reenroll cuts the store over to the next reconfiguration
// epoch. All exit without running sessions.
func storeAdmin(dir string, enroll int, compact bool, reenroll int, dev *core.Device) error {
	if dir == "" {
		return fmt.Errorf("-enroll, -compact and -reenroll require -store-dir")
	}
	if enroll > 0 {
		seeds := make([]uint64, enroll)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		st, err := store.Enroll(dir, dev, seeds, 0, store.DefaultOptions())
		if err != nil {
			return err
		}
		defer st.Close()
		fmt.Printf("enrolled %d seeds for chip %d into %s\n", enroll, dev.ChipID(), dir)
		return nil
	}
	st, err := store.Open(dir, store.DefaultOptions())
	if err != nil {
		return err
	}
	defer st.Close()
	if reenroll > 0 {
		old := st.Epoch()
		next := old + 1
		if aw := st.AwaitingEpoch(); aw > next {
			next = aw
		}
		dev.SetEpoch(next)
		seeds := make([]uint64, reenroll)
		for i := range seeds {
			seeds[i] = uint64(next)<<32 | uint64(i+1)
		}
		if err := st.Reenroll(dev, seeds, 0); err != nil {
			return err
		}
		fmt.Printf("re-enrolled %s: epoch %d -> %d, %d fresh seeds (old epoch retired)\n",
			dir, old, next, reenroll)
		return nil
	}
	before := st.WALRecords()
	if err := st.Compact(); err != nil {
		return err
	}
	fmt.Printf("compacted %s: %d WAL record(s) folded into the snapshot, %d of %d seeds remaining\n",
		dir, before, st.Remaining(), st.Len())
	return nil
}

// runFederate runs the multi-verifier federation endpoint: parse the
// name=url source list, scrape every source at the history interval, and
// re-serve the merged observability surface (series, devices, alerts,
// health — each record labeled with its source) on addr. Blocks forever.
func runFederate(addr, spec string, interval time.Duration) error {
	if addr == "" {
		return fmt.Errorf("-federate requires -metrics-addr to serve the merged view on")
	}
	var sources []telemetry.ScrapeSource
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, url, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-federate: bad source %q, want name=http://host:port", pair)
		}
		sources = append(sources, telemetry.ScrapeSource{
			Name: strings.TrimSpace(name), BaseURL: strings.TrimSpace(url),
		})
	}
	fed, err := telemetry.NewFederator(sources)
	if err != nil {
		return err
	}
	// A source that has not answered for three intervals is a blind spot;
	// surface it rather than serving its last body as if it were fresh.
	fed.SetStaleAfter(3 * interval)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: fed.Mux()}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "pufatt-attest: federate:", serr)
		}
	}()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), interval)
	ok := fed.Poll(ctx)
	cancel()
	stop := fed.Start(interval)
	defer stop()
	fmt.Printf("federating %d source(s) on http://%s (merged /metrics/history, /devices, /alerts, /healthz; scrape health at /federation) — %d reachable\n",
		len(sources), ln.Addr(), ok)
	select {} // serve forever
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufatt-attest:", err)
		os.Exit(1)
	}
}
