// Command pufatt-attest runs the PUFatt remote attestation protocol. It
// can act as the embedded prover (a TCP service wrapping the simulated
// device), as the verifier (holding the emulation model), or run both sides
// in-process for a quick demonstration.
//
// Usage:
//
//	pufatt-attest -mode local -sessions 3
//	pufatt-attest -mode prove -listen :7701 &
//	pufatt-attest -mode verify -connect localhost:7701 -sessions 5
//
// Prover and verifier must agree on -seed/-chip (the manufactured device
// and its enrolled model) and the attestation parameters.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

func main() {
	var (
		mode     = flag.String("mode", "local", "local, prove, or verify")
		listen   = flag.String("listen", ":7701", "prover listen address")
		connect  = flag.String("connect", "localhost:7701", "verifier target address")
		sessions = flag.Int("sessions", 3, "attestation sessions to run")
		seed     = flag.Uint64("seed", 1, "device manufacturing seed")
		chip     = flag.Int("chip", 0, "chip id")
		chunks   = flag.Int("chunks", 16, "checksum chunks")
		blocks   = flag.Int("blocks", 16, "blocks per chunk")
		memWords = flag.Int("mem", 4096, "attested words (power of two)")
		infect   = flag.Bool("infect", false, "tamper the prover's memory (should be rejected)")
	)
	flag.Parse()

	params := swatt.Params{MemWords: *memWords, Chunks: *chunks, BlocksPerChunk: *blocks, PRG: swatt.PRGMix32}
	dev, err := core.NewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(*seed), *chip)
	check(err)
	port, err := mcu.NewDevicePort(dev)
	check(err)
	payload := make([]uint32, 512)
	paySrc := rng.New(*seed).Sub("payload")
	for i := range payload {
		payload[i] = paySrc.Uint32()
	}
	image, err := swatt.BuildImage(params, payload)
	check(err)
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	if *infect {
		for i := 0; i < 64; i++ {
			prover.Image.Mem[image.Layout.PayloadAddr+i] ^= 0xFF
		}
		fmt.Println("prover memory tampered: 64 payload words flipped")
	}

	newVerifier := func() *attest.Verifier {
		v, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		check(err)
		return v
	}

	switch *mode {
	case "local":
		v := newVerifier()
		link := attest.DefaultLink()
		fmt.Printf("device: chip %d, clock %.1f MHz, δ = %.4fs, link %s\n",
			dev.ChipID(), prover.FreqHz/1e6, v.Delta(), link)
		for i := 0; i < *sessions; i++ {
			res, err := attest.RunSession(v, prover, link)
			check(err)
			report(i, res)
		}
	case "prove":
		addr, closeLn, err := attest.ListenAndServe(*listen, prover)
		check(err)
		defer closeLn()
		fmt.Printf("prover (chip %d, %.1f MHz) listening on %s\n", dev.ChipID(), prover.FreqHz/1e6, addr)
		select {} // serve forever
	case "verify":
		v := newVerifier()
		conn, err := net.Dial("tcp", *connect)
		check(err)
		defer conn.Close()
		fmt.Printf("verifier connected to %s, δ = %.4fs\n", *connect, v.Delta())
		for i := 0; i < *sessions; i++ {
			res, err := attest.Request(conn, v, attest.DefaultLink())
			check(err)
			report(i, res)
		}
	default:
		fmt.Fprintf(os.Stderr, "pufatt-attest: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func report(i int, res attest.Result) {
	verdict := "REJECTED"
	if res.Accepted {
		verdict = "accepted"
	}
	fmt.Printf("session %d: %s (elapsed %.4fs, δ %.4fs) %s\n", i+1, verdict, res.Elapsed, res.Delta, res.Reason)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufatt-attest:", err)
		os.Exit(1)
	}
}
