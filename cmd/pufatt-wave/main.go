// Command pufatt-wave dumps one ALU PUF query as a VCD waveform: the
// gate-level race between the two adders, viewable in GTKWave or any other
// IEEE 1364 waveform viewer. The trace shows the carry waves propagating
// through both ALUs at their chip-specific speeds — the physical phenomenon
// the whole attestation scheme is anchored in.
//
// Usage:
//
//	pufatt-wave -width 8 -seed 1 -chip 0 -challenge 42 -o race.vcd
package main

import (
	"flag"
	"fmt"
	"os"

	"pufatt/internal/buildinfo"
	"pufatt/internal/core"
	"pufatt/internal/rng"
	"pufatt/internal/sim"
	"pufatt/internal/vcd"
)

func main() {
	var (
		width     = flag.Int("width", 8, "PUF operand width")
		seed      = flag.Uint64("seed", 1, "manufacturing seed")
		chip      = flag.Int("chip", 0, "chip id")
		challenge = flag.Uint64("challenge", 42, "challenge seed")
		out       = flag.String("o", "race.vcd", "output VCD file")
	)
	version := buildinfo.VersionFlags("pufatt-wave")
	flag.Parse()
	version()

	cfg := core.DefaultConfig()
	cfg.Width = *width
	design, err := core.NewDesign(cfg)
	check(err)
	dev, err := core.NewDevice(design, rng.New(*seed), *chip)
	check(err)

	f, err := os.Create(*out)
	check(err)
	defer f.Close()

	nl := design.Datapath().Net
	es := sim.NewEventSim(nl, dev.NominalTable())
	from := make([]uint8, 2**width)
	to := design.ExpandChallenge(*challenge, 0)
	check(vcd.Capture(es, nl, from, to, "alupuf_race", f))

	resp := dev.NoiselessResponse(to)
	fmt.Printf("dumped %s: %d-bit PUF, chip %d, challenge %#x\n", *out, *width, *chip, *challenge)
	fmt.Printf("settled response: ")
	for i := len(resp) - 1; i >= 0; i-- {
		fmt.Printf("%d", resp[i])
	}
	fmt.Printf("\nsettle time: %.1f ps (critical path %.1f ps)\n",
		dev.EventDrivenSettleTime(to), dev.CriticalPathPs())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufatt-wave:", err)
		os.Exit(1)
	}
}
