// Command pufatt-asm assembles, disassembles, and runs programs for the
// PUFatt prover MCU (the 32-bit CPU with the pstart/pend PUF extension).
//
// Usage:
//
//	pufatt-asm prog.s                 # assemble, print listing
//	pufatt-asm -run prog.s            # assemble and execute (with PUF port)
//	pufatt-asm -gen attest.s          # emit the generated attestation program
package main

import (
	"flag"
	"fmt"
	"os"

	"pufatt/internal/buildinfo"
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

func main() {
	var (
		run      = flag.Bool("run", false, "execute the program after assembling")
		gen      = flag.Bool("gen", false, "emit the generated attestation program instead of reading a file")
		memWords = flag.Int("mem", 8192, "memory size for -run")
		maxCyc   = flag.Uint64("maxcycles", 100_000_000, "cycle budget for -run")
		freq     = flag.Float64("freq", 100e6, "clock frequency for -run (Hz)")
		seed     = flag.Uint64("seed", 1, "device seed for the PUF port")
	)
	version := buildinfo.VersionFlags("pufatt-asm")
	flag.Parse()
	version()

	if *gen {
		src, err := swatt.GenerateProgram(swatt.DefaultParams())
		check(err)
		fmt.Print(src)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pufatt-asm [-run] [-gen] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	check(err)
	prog, err := mcu.Assemble(string(src))
	check(err)

	fmt.Printf("; %d words\n", len(prog.Words))
	for addr, w := range prog.Words {
		fmt.Printf("%5d: %08x  %s\n", addr, w, mcu.Disassemble(w))
	}
	if !*run {
		return
	}
	mem := make([]uint32, *memWords)
	copy(mem, prog.Words)
	dev, err := core.NewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(*seed), 0)
	check(err)
	port, err := mcu.NewDevicePort(dev)
	check(err)
	port.SetClock(*freq)
	cpu := mcu.New(mem, *freq, port)
	err = cpu.Run(*maxCyc)
	fmt.Printf("\nhalted=%v cycles=%d time=%.6fs\n", cpu.Halted(), cpu.Cycles, cpu.TimeSeconds())
	for r := 0; r < 16; r += 4 {
		fmt.Printf("r%-2d=%08x r%-2d=%08x r%-2d=%08x r%-2d=%08x\n",
			r, cpu.Regs[r], r+1, cpu.Regs[r+1], r+2, cpu.Regs[r+2], r+3, cpu.Regs[r+3])
	}
	if helpers := port.DrainHelpers(); len(helpers) > 0 {
		fmt.Printf("helper words: %d\n", len(helpers))
	}
	check(err)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufatt-asm:", err)
		os.Exit(1)
	}
}
