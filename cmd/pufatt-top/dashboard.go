package main

// Snapshot fetching and rendering for the live fleet dashboard. Everything
// here is plain stdlib: the admin surface speaks JSON, the terminal speaks
// ANSI, and the only state is the snapshot fetched each refresh.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// healthSummary mirrors the /healthz body. A federated endpoint nests one
// verifier-shaped summary per source under "sources"; aggregate counts are
// then the sum over sources.
type healthSummary struct {
	Status           string                   `json:"status"`
	Devices          int                      `json:"devices"`
	OK               int                      `json:"ok"`
	Degraded         int                      `json:"degraded"`
	AwaitingReenroll int                      `json:"awaiting_reenroll"`
	Suspect          int                      `json:"suspect"`
	Federated        bool                     `json:"federated"`
	Sources          map[string]healthSummary `json:"sources"`
	StaleSources     []string                 `json:"stale_sources"`
}

// totals folds per-source summaries into fleet-wide counts; a plain
// verifier summary returns itself.
func (h healthSummary) totals() healthSummary {
	if len(h.Sources) == 0 {
		return h
	}
	out := h
	for _, s := range h.Sources {
		out.Devices += s.Devices
		out.OK += s.OK
		out.Degraded += s.Degraded
		out.AwaitingReenroll += s.AwaitingReenroll
		out.Suspect += s.Suspect
	}
	return out
}

// deviceHealth is the subset of a /devices record the dashboard shows.
// Source is set only by federated endpoints.
type deviceHealth struct {
	Source         string   `json:"source"`
	Device         string   `json:"device"`
	Status         string   `json:"status"`
	Reasons        []string `json:"reasons"`
	Sessions       uint64   `json:"sessions"`
	Rejected       uint64   `json:"rejected"`
	FailureRate    float64  `json:"failure_rate"`
	RTTP95         float64  `json:"rtt_p95"`
	FNREstimate    float64  `json:"fnr_estimate"`
	SeedsRemaining int64    `json:"seeds_remaining"` // -1 = no budget bound
	Quarantined    bool     `json:"quarantined"`
}

// alertStatus is the subset of an /alerts record the dashboard shows.
type alertStatus struct {
	Source   string  `json:"source"`
	Name     string  `json:"name"`
	State    string  `json:"state"`
	Metric   string  `json:"metric"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Fired    uint64  `json:"fired"`
}

// historyPoint decodes both scalar ({"t","v"}) and histogram
// ({"t","count","sum","p50".."p99","exemplar"}) points.
type historyPoint struct {
	T        int64   `json:"t"`
	V        float64 `json:"v"`
	Count    uint64  `json:"count"`
	Sum      float64 `json:"sum"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	Exemplar string  `json:"exemplar"`
}

type historySeries struct {
	Source string         `json:"source"`
	Name   string         `json:"name"`
	Family string         `json:"family"`
	Kind   string         `json:"kind"`
	Points []historyPoint `json:"points"`
}

type historyResponse struct {
	Federated     bool            `json:"federated"`
	WindowSeconds float64         `json:"window_seconds"`
	Series        []historySeries `json:"series"`
}

// probeStatus mirrors a /probes record: one synthetic-canary row per
// shard. Source is set only by federated endpoints.
type probeStatus struct {
	Source         string  `json:"source"`
	Shard          string  `json:"shard"`
	Alive          bool    `json:"alive"`
	Sessions       int     `json:"sessions"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"`
	Transport      int     `json:"transport"`
	Overloaded     int     `json:"overloaded"`
	Errors         int     `json:"errors"`
	LastVerdict    string  `json:"last_verdict"`
	LastReason     string  `json:"last_reason"`
	LastRTTSeconds float64 `json:"last_rtt_seconds"`
	LastTrace      string  `json:"last_trace"`
	SeedsRemaining int     `json:"seeds_remaining"`
}

// snapshot is one refresh worth of admin-surface state. Endpoints that
// failed to fetch leave their zero value and append to Errs — a dashboard
// that dies because one route hiccuped is worse than a partial frame.
type snapshot struct {
	Base      string
	FetchedAt time.Time
	Health    healthSummary
	Devices   []deviceHealth
	Alerts    []alertStatus
	History   historyResponse
	Probes    []probeStatus
	HasProbes bool // /probes answered (even with an empty list)
	Errs      []string
}

// fetchJSON GETs base+path and decodes the body into out. Non-2xx statuses
// are not errors by themselves: /healthz deliberately answers 503 with a
// valid body when the fleet is suspect.
func fetchJSON(client *http.Client, base, path string, out any) error {
	resp, err := client.Get(strings.TrimRight(base, "/") + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// fetchSnapshot pulls the four dashboard surfaces from one admin endpoint.
func fetchSnapshot(client *http.Client, base string, now time.Time) snapshot {
	snap := snapshot{Base: base, FetchedAt: now}
	if err := fetchJSON(client, base, "/healthz", &snap.Health); err != nil {
		snap.Errs = append(snap.Errs, err.Error())
	}
	if err := fetchJSON(client, base, "/devices", &snap.Devices); err != nil {
		snap.Errs = append(snap.Errs, err.Error())
	}
	if err := fetchJSON(client, base, "/alerts", &snap.Alerts); err != nil {
		snap.Errs = append(snap.Errs, err.Error())
	}
	if err := fetchJSON(client, base, "/metrics/history", &snap.History); err != nil {
		snap.Errs = append(snap.Errs, err.Error())
	}
	// /probes only exists on cluster admin surfaces; a plain verifier 404s
	// with an HTML body, which fails the decode. Treat that as "no probe
	// tier", not a fetch error.
	if err := fetchJSON(client, base, "/probes", &snap.Probes); err == nil {
		snap.HasProbes = true
	}
	return snap
}

// sparkGlyphs are the eight block-element levels of a sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as block glyphs, keeping the most recent width
// points and scaling min..max across the kept range. A flat series renders
// at the lowest level: the shape carries the signal, not the absolute bar.
func sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	if len(values) > width {
		values = values[len(values)-width:]
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkGlyphs) {
				idx = len(sparkGlyphs) - 1
			}
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// statusSeverity ranks device/fleet statuses worst-first for sorting and
// colouring. Unknown strings land with degraded: visible but not alarming.
func statusSeverity(status string) int {
	switch status {
	case "suspect":
		return 3
	case "awaiting-reenroll":
		return 2
	case "ok":
		return 0
	}
	return 1
}

// worstDevices returns up to k devices sorted worst-first: status
// severity, then failure rate, then p95 round-trip (the PUFatt timing
// signal), with the device id as the final tiebreak for stable frames.
func worstDevices(devices []deviceHealth, k int) []deviceHealth {
	out := make([]deviceHealth, len(devices))
	copy(out, devices)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := statusSeverity(out[i].Status), statusSeverity(out[j].Status)
		if si != sj {
			return si > sj
		}
		if out[i].FailureRate != out[j].FailureRate {
			return out[i].FailureRate > out[j].FailureRate
		}
		if out[i].RTTP95 != out[j].RTTP95 {
			return out[i].RTTP95 > out[j].RTTP95
		}
		return out[i].Device < out[j].Device
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// seriesValues projects a history series onto plottable floats: gauge and
// counter points use v (the collector already stores counter deltas per
// window), histograms use the windowed p95.
func seriesValues(s historySeries) []float64 {
	vals := make([]float64, 0, len(s.Points))
	for _, p := range s.Points {
		if s.Kind == "histogram" {
			vals = append(vals, p.P95)
		} else {
			vals = append(vals, p.V)
		}
	}
	return vals
}

// seriesPriority orders sparkline rows: round-trip timing first (the
// security signal), then session volume, then everything else by name.
func seriesPriority(name string) int {
	switch {
	case strings.Contains(name, "rtt"):
		return 0
	case strings.Contains(name, "sessions"):
		return 1
	case strings.Contains(name, "rejections") || strings.Contains(name, "failures"):
		return 2
	}
	return 3
}

const (
	ansiReset  = "\x1b[0m"
	ansiRed    = "\x1b[31m"
	ansiYellow = "\x1b[33m"
	ansiGreen  = "\x1b[32m"
	ansiDim    = "\x1b[2m"
	ansiBold   = "\x1b[1m"
)

// renderOptions control layout; Color off yields plain text for pipes and
// tests.
type renderOptions struct {
	Color      bool
	TopK       int
	MaxSeries  int
	SparkWidth int
}

func (o renderOptions) paint(code, s string) string {
	if !o.Color {
		return s
	}
	return code + s + ansiReset
}

func (o renderOptions) statusPaint(status string) string {
	switch statusSeverity(status) {
	case 3:
		return o.paint(ansiRed, status)
	case 0:
		return o.paint(ansiGreen, status)
	}
	return o.paint(ansiYellow, status)
}

// render writes one dashboard frame. Sections appear only when they have
// content, so a bare verifier with no devices yet still renders cleanly.
func render(w io.Writer, snap snapshot, opts renderOptions) {
	if opts.TopK <= 0 {
		opts.TopK = 8
	}
	if opts.MaxSeries <= 0 {
		opts.MaxSeries = 8
	}
	if opts.SparkWidth <= 0 {
		opts.SparkWidth = 48
	}

	fmt.Fprintf(w, "%s  %s  %s\n", opts.paint(ansiBold, "pufatt-top"), snap.Base,
		snap.FetchedAt.Format("2006-01-02 15:04:05"))
	h := snap.Health.totals()
	fmt.Fprintf(w, "fleet: %s  devices %d  ok %d  degraded %d  reenroll %d  suspect %d",
		opts.statusOrDash(h.Status), h.Devices, h.OK, h.Degraded, h.AwaitingReenroll, h.Suspect)
	if h.Federated || snap.History.Federated {
		fmt.Fprintf(w, "  [federated: %d sources, %d stale]", len(h.Sources), len(h.StaleSources))
	}
	fmt.Fprintln(w)
	for _, e := range snap.Errs {
		fmt.Fprintf(w, "%s\n", opts.paint(ansiRed, "fetch error: "+e))
	}
	fmt.Fprintln(w)

	renderAlerts(w, snap.Alerts, opts)
	renderSeries(w, snap.History, opts)
	renderProbes(w, snap, opts)
	renderDevices(w, snap.Devices, opts)
}

func renderAlerts(w io.Writer, alerts []alertStatus, opts renderOptions) {
	if len(alerts) == 0 {
		return
	}
	firing := 0
	for _, a := range alerts {
		if a.State == "firing" {
			firing++
		}
	}
	sorted := make([]alertStatus, len(alerts))
	copy(sorted, alerts)
	sort.SliceStable(sorted, func(i, j int) bool {
		ri, rj := alertStateRank(sorted[i].State), alertStateRank(sorted[j].State)
		if ri != rj {
			return ri < rj
		}
		return sorted[i].Name < sorted[j].Name
	})
	fmt.Fprintf(w, "%s (%d firing / %d rules)\n", opts.paint(ansiBold, "ALERTS"), firing, len(alerts))
	for _, a := range sorted {
		state := a.State
		switch a.State {
		case "firing":
			state = opts.paint(ansiRed, "FIRING  ")
		case "resolved":
			state = opts.paint(ansiYellow, "resolved")
		default:
			state = opts.paint(ansiDim, "inactive")
		}
		name := a.Name
		if a.Source != "" {
			name = a.Source + "/" + a.Name
		}
		fmt.Fprintf(w, "  %s  %-28s fast %6.2fx  slow %6.2fx  fired %d  %s\n",
			state, name, a.FastBurn, a.SlowBurn, a.Fired, opts.paint(ansiDim, a.Metric))
	}
	fmt.Fprintln(w)
}

func alertStateRank(state string) int {
	switch state {
	case "firing":
		return 0
	case "resolved":
		return 1
	}
	return 2
}

func renderSeries(w io.Writer, hist historyResponse, opts renderOptions) {
	if len(hist.Series) == 0 {
		return
	}
	sorted := make([]historySeries, len(hist.Series))
	copy(sorted, hist.Series)
	sort.SliceStable(sorted, func(i, j int) bool {
		pi, pj := seriesPriority(sorted[i].Name), seriesPriority(sorted[j].Name)
		if pi != pj {
			return pi < pj
		}
		return sorted[i].Name < sorted[j].Name
	})
	shown := sorted
	if len(shown) > opts.MaxSeries {
		shown = shown[:opts.MaxSeries]
	}
	fmt.Fprintf(w, "%s (%.0fs windows)\n", opts.paint(ansiBold, "SERIES"), hist.WindowSeconds)
	for _, s := range shown {
		vals := seriesValues(s)
		last := 0.0
		if len(vals) > 0 {
			last = vals[len(vals)-1]
		}
		label := s.Name
		if s.Source != "" {
			label = s.Source + "/" + s.Name
		}
		suffix := ""
		if s.Kind == "histogram" {
			suffix = " p95"
			if x := lastExemplar(s); x != "" {
				suffix += "  " + opts.paint(ansiDim, "exemplar "+x)
			}
		}
		fmt.Fprintf(w, "  %-44s %s  %.4g%s\n", label, sparkline(vals, opts.SparkWidth), last, suffix)
	}
	if hidden := len(sorted) - len(shown); hidden > 0 {
		fmt.Fprintf(w, "  %s\n", opts.paint(ansiDim, fmt.Sprintf("… %d more series hidden", hidden)))
	}
	fmt.Fprintln(w)
}

// lastExemplar returns the most recent windowed-p99 exemplar trace ID in a
// histogram series — the thread to pull at /debug/traces when the tail
// spikes.
func lastExemplar(s historySeries) string {
	for i := len(s.Points) - 1; i >= 0; i-- {
		if s.Points[i].Exemplar != "" {
			return s.Points[i].Exemplar
		}
	}
	return ""
}

// probeAlertPrefix is the per-shard probe-failure rule family; the shard id
// follows the slash (see cluster.ProbeAlertRules).
const probeAlertPrefix = "cluster-probe-failure/"

// renderProbes shows the synthetic-canary view of each shard: verdict of
// the last probe session, counters, RTT, and whether the shard's
// probe-failure burn rule is firing. A shard whose canary has run zero
// sessions renders as "no data" — absence of probe evidence is not health.
func renderProbes(w io.Writer, snap snapshot, opts renderOptions) {
	if !snap.HasProbes {
		return
	}
	firing := make(map[string]bool)
	for _, a := range snap.Alerts {
		if a.State == "firing" && strings.HasPrefix(a.Name, probeAlertPrefix) {
			firing[strings.TrimPrefix(a.Name, probeAlertPrefix)] = true
		}
	}
	probes := make([]probeStatus, len(snap.Probes))
	copy(probes, snap.Probes)
	sort.SliceStable(probes, func(i, j int) bool {
		if probes[i].Source != probes[j].Source {
			return probes[i].Source < probes[j].Source
		}
		return probes[i].Shard < probes[j].Shard
	})
	firingTotal := 0
	for _, p := range probes {
		if firing[p.Shard] {
			firingTotal++
		}
	}
	fmt.Fprintf(w, "%s (%d shards, %d probe alerts firing)\n",
		opts.paint(ansiBold, "SHARD PROBES"), len(probes), firingTotal)
	if len(probes) == 0 {
		fmt.Fprintf(w, "  %s\n", opts.paint(ansiDim, "no prober attached"))
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, "  %-16s %-6s %-10s %5s %5s %5s %10s %7s  %s\n",
		"SHARD", "ALIVE", "VERDICT", "OK", "REJ", "ERR", "LASTRTT", "SEEDS", "NOTES")
	for _, p := range probes {
		name := p.Shard
		if p.Source != "" {
			name = p.Source + "/" + p.Shard
		}
		alive := "up"
		if !p.Alive {
			alive = opts.paint(ansiRed, "down")
		}
		verdict, rtt := probeVerdictCell(p, opts)
		notes := p.LastReason
		if firing[p.Shard] {
			alert := opts.paint(ansiRed, "ALERT "+probeAlertPrefix+p.Shard)
			if notes != "" {
				notes = alert + "; " + notes
			} else {
				notes = alert
			}
		} else {
			notes = opts.paint(ansiDim, notes)
		}
		errs := p.Transport + p.Overloaded + p.Errors
		fmt.Fprintf(w, "  %-16s %-6s %-10s %5d %5d %5d %10s %7d  %s\n",
			name, alive, verdict, p.Accepted, p.Rejected, errs, rtt, p.SeedsRemaining, notes)
	}
	fmt.Fprintln(w)
}

// probeVerdictCell renders the last-verdict and RTT columns. Zero sessions
// means the canary has never run: that is "no data", deliberately distinct
// from any healthy or failing verdict.
func probeVerdictCell(p probeStatus, opts renderOptions) (verdict, rtt string) {
	if p.Sessions == 0 {
		return opts.paint(ansiYellow, "no data"), "-"
	}
	rtt = fmt.Sprintf("%.4fs", p.LastRTTSeconds)
	switch p.LastVerdict {
	case "accepted":
		return opts.paint(ansiGreen, p.LastVerdict), rtt
	case "rejected":
		return opts.paint(ansiRed, p.LastVerdict), rtt
	case "":
		return opts.paint(ansiDim, "?"), rtt
	}
	return opts.paint(ansiYellow, p.LastVerdict), rtt
}

func renderDevices(w io.Writer, devices []deviceHealth, opts renderOptions) {
	if len(devices) == 0 {
		return
	}
	worst := worstDevices(devices, opts.TopK)
	fmt.Fprintf(w, "%s (worst %d of %d)\n", opts.paint(ansiBold, "DEVICES"), len(worst), len(devices))
	fmt.Fprintf(w, "  %-24s %-18s %9s %10s %7s %7s  %s\n",
		"DEVICE", "STATUS", "FAILRATE", "RTTp95", "FNR", "SEEDS", "NOTES")
	for _, d := range worst {
		name := d.Device
		if d.Source != "" {
			name = d.Source + "/" + d.Device
		}
		notes := strings.Join(d.Reasons, "; ")
		if d.Quarantined {
			if notes != "" {
				notes = "quarantined; " + notes
			} else {
				notes = "quarantined"
			}
		}
		seeds := fmt.Sprintf("%d", d.SeedsRemaining)
		if d.SeedsRemaining < 0 {
			seeds = "-" // no seed budget bound on this device
		}
		fmt.Fprintf(w, "  %-24s %-18s %9.3f %9.4fs %7.3f %7s  %s\n",
			name, opts.statusPaint(d.Status), d.FailureRate, d.RTTP95, d.FNREstimate,
			seeds, opts.paint(ansiDim, notes))
	}
}

func (o renderOptions) statusOrDash(status string) string {
	if status == "" {
		return o.paint(ansiDim, "—")
	}
	return o.statusPaint(status)
}
