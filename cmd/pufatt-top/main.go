// pufatt-top is a live terminal dashboard for a PUFatt verifier's admin
// surface (or a federated fleet endpoint). It polls /healthz, /devices,
// /alerts, and /metrics/history and redraws one frame per interval: fleet
// health, the worst-offending devices ranked by SLO damage, burn-rate
// alert state, and sparklines of the windowed metric history — with the
// most recent p99 exemplar trace ID next to the round-trip series, so a
// tail spike can be chased straight into /debug/traces.
//
// Usage:
//
//	pufatt-top -addr http://localhost:7790
//	pufatt-top -addr http://fedhost:7791 -top 12 -interval 5s
//	pufatt-top -addr http://localhost:7790 -once -no-color   # one plain frame
//
// No dependencies beyond the standard library: plain ANSI, no curses.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7790", "admin endpoint base URL (verifier or federator)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	topK := flag.Int("top", 8, "worst devices to show")
	maxSeries := flag.Int("series", 8, "sparkline rows to show")
	width := flag.Int("spark-width", 48, "sparkline width in glyphs")
	once := flag.Bool("once", false, "render a single frame and exit")
	noColor := flag.Bool("no-color", false, "disable ANSI colors")
	flag.Parse()

	opts := renderOptions{
		Color:      !*noColor,
		TopK:       *topK,
		MaxSeries:  *maxSeries,
		SparkWidth: *width,
	}
	client := &http.Client{Timeout: *interval}
	if client.Timeout < time.Second {
		client.Timeout = time.Second
	}

	for {
		snap := fetchSnapshot(client, *addr, time.Now())
		var frame bytes.Buffer
		render(&frame, snap, opts)
		if !*once {
			// Home the cursor and clear below rather than wiping the whole
			// screen: no flicker, and scrollback stays useful.
			fmt.Print("\x1b[H\x1b[J")
		}
		_, _ = os.Stdout.Write(frame.Bytes())
		if *once {
			if len(snap.Errs) > 0 {
				os.Exit(1)
			}
			return
		}
		time.Sleep(*interval)
	}
}
