package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSparkline(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		width  int
		want   string
	}{
		{"empty", nil, 10, ""},
		{"flat", []float64{5, 5, 5}, 10, "▁▁▁"},
		{"ramp", []float64{0, 1, 2, 3, 4, 5, 6, 7}, 10, "▁▂▃▄▅▆▇█"},
		{"clipped to width", []float64{9, 9, 0, 7}, 2, "▁█"},
		{"single", []float64{3}, 5, "▁"},
	}
	for _, tc := range cases {
		if got := sparkline(tc.values, tc.width); got != tc.want {
			t.Errorf("%s: sparkline = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestWorstDevicesOrdering(t *testing.T) {
	devices := []deviceHealth{
		{Device: "calm", Status: "ok", FailureRate: 0.01},
		{Device: "proxy", Status: "suspect", RTTP95: 0.12},
		{Device: "flaky", Status: "degraded", FailureRate: 0.4},
		{Device: "tired", Status: "awaiting-reenroll"},
		{Device: "slow-ok", Status: "ok", FailureRate: 0.01, RTTP95: 0.2},
	}
	got := worstDevices(devices, 3)
	wantOrder := []string{"proxy", "tired", "flaky"}
	if len(got) != len(wantOrder) {
		t.Fatalf("worstDevices returned %d devices, want %d", len(got), len(wantOrder))
	}
	for i, want := range wantOrder {
		if got[i].Device != want {
			t.Errorf("rank %d = %q, want %q", i, got[i].Device, want)
		}
	}
	// Ties on status fall through to failure rate, then RTT p95.
	all := worstDevices(devices, 0)
	if all[3].Device != "slow-ok" || all[4].Device != "calm" {
		t.Errorf("ok-tier tiebreak = %q, %q; want slow-ok then calm", all[3].Device, all[4].Device)
	}
}

func TestStatusSeverity(t *testing.T) {
	if statusSeverity("suspect") <= statusSeverity("degraded") {
		t.Error("suspect must outrank degraded")
	}
	if statusSeverity("never-heard-of-it") != statusSeverity("degraded") {
		t.Error("unknown statuses should rank with degraded")
	}
	if statusSeverity("ok") != 0 {
		t.Error("ok must be the lowest severity")
	}
}

func renderedFixture() snapshot {
	return snapshot{
		Base:      "http://test:7790",
		FetchedAt: time.Unix(1700000000, 0).UTC(),
		Health:    healthSummary{Status: "suspect", Devices: 3, OK: 1, Degraded: 1, Suspect: 1},
		Devices: []deviceHealth{
			{Device: "node-0", Status: "ok", RTTP95: 0.001},
			{Device: "node-1", Status: "degraded", FailureRate: 0.3, Reasons: []string{"failure_rate>slo"}},
			{Device: "node-2", Status: "suspect", RTTP95: 0.09, Reasons: []string{"rtt_p95>slo"}, Quarantined: true},
		},
		Alerts: []alertStatus{
			{Name: "session-failure-burn", State: "inactive", Metric: "attest_sessions_total"},
			{Name: "rtt-p95-burn", State: "firing", Metric: "attest_rtt_seconds", FastBurn: 6.1, SlowBurn: 3.2, Fired: 1},
		},
		History: historyResponse{
			WindowSeconds: 5,
			Series: []historySeries{
				{Name: "attest_sessions_total", Kind: "counter", Points: []historyPoint{{T: 1, V: 10}, {T: 2, V: 12}}},
				{Name: "attest_rtt_seconds", Kind: "histogram", Points: []historyPoint{
					{T: 1, Count: 10, P95: 0.002},
					{T: 2, Count: 10, P95: 0.09, Exemplar: "00000000deadbeef"},
				}},
			},
		},
	}
}

func TestRenderFrame(t *testing.T) {
	var b strings.Builder
	render(&b, renderedFixture(), renderOptions{Color: false, TopK: 2, MaxSeries: 8, SparkWidth: 16})
	out := b.String()

	for _, want := range []string{
		"fleet: suspect  devices 3  ok 1  degraded 1  reenroll 0  suspect 1",
		"ALERTS (1 firing / 2 rules)",
		"FIRING    rtt-p95-burn",
		"SERIES (5s windows)",
		"attest_rtt_seconds",
		"exemplar 00000000deadbeef",
		"DEVICES (worst 2 of 3)",
		"node-2",
		"quarantined; rtt_p95>slo",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\nframe:\n%s", want, out)
		}
	}
	// TopK 2 means the healthy node is cut; firing alerts sort first.
	if strings.Contains(out, "node-0") {
		t.Errorf("frame should hide the healthiest device at top-2:\n%s", out)
	}
	if strings.Index(out, "rtt-p95-burn") > strings.Index(out, "session-failure-burn") {
		t.Errorf("firing alert should render before inactive ones:\n%s", out)
	}
	// RTT series outranks the counter in the sparkline ordering.
	if strings.Index(out, "attest_rtt_seconds") > strings.Index(out, "attest_sessions_total") {
		t.Errorf("rtt series should render before session counter:\n%s", out)
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("color disabled but frame contains ANSI escapes:\n%s", out)
	}
}

func TestRenderColorAndEmpty(t *testing.T) {
	var b strings.Builder
	render(&b, renderedFixture(), renderOptions{Color: true})
	if !strings.Contains(b.String(), "\x1b[31m") {
		t.Error("color frame missing red escape for suspect status")
	}

	b.Reset()
	render(&b, snapshot{Base: "http://down:1", Errs: []string{"connect refused"}}, renderOptions{})
	out := b.String()
	if !strings.Contains(out, "fetch error: connect refused") {
		t.Errorf("empty frame should surface fetch errors:\n%s", out)
	}
	if strings.Contains(out, "DEVICES") || strings.Contains(out, "ALERTS") {
		t.Errorf("empty snapshot should omit empty sections:\n%s", out)
	}
}

func TestFetchSnapshot(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// 503 is the suspect-fleet signal, not a fetch failure.
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status": "suspect", "devices": 2, "ok": 1, "degraded": 0, "awaiting_reenroll": 0, "suspect": 1}`))
	})
	mux.HandleFunc("/devices", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`[{"device": "n0", "status": "suspect", "rtt_p95": 0.2, "seeds_remaining": 7}]`))
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`[{"name": "rtt-p95-burn", "state": "firing", "fast_burn": 4.5}]`))
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"window_seconds": 5, "series": [{"name": "attest_rtt_seconds", "kind": "histogram", "points": [{"t": 9, "count": 3, "p95": 0.01, "exemplar": "00000000000000aa"}]}]}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	snap := fetchSnapshot(srv.Client(), srv.URL, time.Unix(1700000000, 0))
	if len(snap.Errs) != 0 {
		t.Fatalf("unexpected fetch errors: %v", snap.Errs)
	}
	if snap.Health.Status != "suspect" || snap.Health.Devices != 2 {
		t.Errorf("health = %+v", snap.Health)
	}
	if len(snap.Devices) != 1 || snap.Devices[0].SeedsRemaining != 7 {
		t.Errorf("devices = %+v", snap.Devices)
	}
	if len(snap.Alerts) != 1 || snap.Alerts[0].State != "firing" {
		t.Errorf("alerts = %+v", snap.Alerts)
	}
	if len(snap.History.Series) != 1 || snap.History.Series[0].Points[0].Exemplar != "00000000000000aa" {
		t.Errorf("history = %+v", snap.History)
	}
}

func TestFederatedHealthTotals(t *testing.T) {
	var h healthSummary
	body := `{"status": "suspect", "federated": true, "stale_sources": ["west"],
	  "sources": {
	    "east": {"status": "ok", "devices": 3, "ok": 3},
	    "west": {"status": "suspect", "devices": 3, "ok": 2, "suspect": 1}
	  }}`
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	tot := h.totals()
	if tot.Devices != 6 || tot.OK != 5 || tot.Suspect != 1 {
		t.Errorf("totals = %+v", tot)
	}
	var b strings.Builder
	render(&b, snapshot{Base: "http://fed", Health: h}, renderOptions{})
	out := b.String()
	if !strings.Contains(out, "devices 6") || !strings.Contains(out, "[federated: 2 sources, 1 stale]") {
		t.Errorf("federated header wrong:\n%s", out)
	}
}

func TestSeedsColumnUnbounded(t *testing.T) {
	var b strings.Builder
	render(&b, snapshot{Devices: []deviceHealth{{Device: "n0", Status: "ok", SeedsRemaining: -1}}}, renderOptions{})
	if !strings.Contains(b.String(), "      -  ") {
		t.Errorf("unbounded seed budget should render as a dash:\n%s", b.String())
	}
}

// The probe panel's contract: a shard with a firing canary alert is flagged
// in its NOTES, and a shard with zero probe sessions renders "no data" — the
// absence of probe evidence must never display as healthy.
func TestRenderProbesPanel(t *testing.T) {
	snap := renderedFixture()
	snap.HasProbes = true
	snap.Probes = []probeStatus{
		{Shard: "shard-0", Alive: true, Sessions: 4, Accepted: 4,
			LastVerdict: "accepted", LastRTTSeconds: 0.0021, SeedsRemaining: 12},
		{Shard: "shard-1", Alive: true, Sessions: 4, Transport: 4,
			LastVerdict: "transport", LastReason: "link: dropped", SeedsRemaining: 12},
		{Shard: "shard-2", Alive: true, Sessions: 0, SeedsRemaining: 16},
	}
	snap.Alerts = append(snap.Alerts, alertStatus{
		Name: "cluster-probe-failure/shard-1", State: "firing",
		Metric: "cluster_probe_failures_total", FastBurn: 8.2, Fired: 1,
	})

	var b strings.Builder
	render(&b, snap, renderOptions{Color: false})
	out := b.String()
	for _, want := range []string{
		"SHARD PROBES (3 shards, 1 probe alerts firing)",
		"accepted",
		"ALERT cluster-probe-failure/shard-1",
		"link: dropped",
		"no data",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("probe panel missing %q\nframe:\n%s", want, out)
		}
	}
	// The unprobed shard must not borrow a healthy verdict or a stale RTT.
	shard2 := out[strings.Index(out, "shard-2"):]
	if nl := strings.IndexByte(shard2, '\n'); nl >= 0 {
		shard2 = shard2[:nl]
	}
	if strings.Contains(shard2, "accepted") || !strings.Contains(shard2, "no data") {
		t.Errorf("zero-session shard row must read as no data, not healthy: %q", shard2)
	}

	// A verifier without a probe tier renders no probe section at all.
	b.Reset()
	plain := renderedFixture()
	render(&b, plain, renderOptions{})
	if strings.Contains(b.String(), "SHARD PROBES") {
		t.Errorf("snapshot without probe data grew a probe section:\n%s", b.String())
	}
}

// /probes is cluster-only: a 404 from a plain verifier is version skew to
// tolerate, not a fetch error; a live endpoint flips HasProbes on.
func TestFetchSnapshotProbesTolerant(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"status": "ok", "devices": 1, "ok": 1}`))
	})
	mux.HandleFunc("/devices", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`[]`))
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`[]`))
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"window_seconds": 5}`))
	})
	srv := httptest.NewServer(mux) // no /probes: stdlib mux 404s with HTML
	defer srv.Close()

	snap := fetchSnapshot(srv.Client(), srv.URL, time.Unix(1700000000, 0))
	if len(snap.Errs) != 0 {
		t.Fatalf("404 on /probes surfaced as fetch errors: %v", snap.Errs)
	}
	if snap.HasProbes {
		t.Fatal("HasProbes set with no probe endpoint")
	}

	mux.HandleFunc("/probes", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`[{"shard": "shard-0", "alive": true, "sessions": 2, "accepted": 2, "last_verdict": "accepted", "last_rtt_seconds": 0.003, "seeds_remaining": 6}]`))
	})
	snap = fetchSnapshot(srv.Client(), srv.URL, time.Unix(1700000001, 0))
	if !snap.HasProbes || len(snap.Probes) != 1 || snap.Probes[0].Shard != "shard-0" {
		t.Fatalf("probe fetch = hasProbes=%v probes=%+v", snap.HasProbes, snap.Probes)
	}
	if snap.Probes[0].SeedsRemaining != 6 || snap.Probes[0].LastVerdict != "accepted" {
		t.Fatalf("probe fields lost in decode: %+v", snap.Probes[0])
	}
}

func TestFetchSnapshotUnreachable(t *testing.T) {
	client := &http.Client{Timeout: 200 * time.Millisecond}
	snap := fetchSnapshot(client, "http://127.0.0.1:1", time.Unix(0, 0))
	if len(snap.Errs) != 4 {
		t.Fatalf("want 4 per-endpoint errors, got %d: %v", len(snap.Errs), snap.Errs)
	}
}
