// pufatt-load is the fleet-scale load generator for the distributed
// verifier tier. It builds an in-process cluster (sharded routing,
// replicated claim logs, admission control), enrolls a simulated device
// fleet, then slams it with N concurrent prover clients and prints the
// SLO surface: throughput, p50/p95/p99 session latency (queueing
// included), and the reject_overload curve — plus the merged claim-log
// audit verdict, which must stay clean at every load level.
//
// Usage:
//
//	pufatt-load                                  # 1024 provers, 256 devices
//	pufatt-load -provers 10000 -devices 512      # fleet scale
//	pufatt-load -provers 4096 -inflight 16 -queue 64   # force the reject curve
//	pufatt-load -provers 2048 -drop 0.05 -json   # lossy last hop, JSON report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pufatt/internal/attest"
	"pufatt/internal/attest/cluster"
)

func main() {
	shards := flag.Int("shards", 3, "verifier shards")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per shard on the ring")
	replicas := flag.Int("replicas", 3, "claim-log replication factor")
	inflight := flag.Int("inflight", 0, "admitted sessions per shard (0 = 4×GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue per shard (0 = 32×inflight)")
	devices := flag.Int("devices", 256, "simulated devices in the fleet")
	provers := flag.Int("provers", 1024, "concurrent prover clients")
	sessions := flag.Int("sessions", 1, "sessions per prover")
	attempts := flag.Int("attempts", 3, "retry budget per session")
	seed := flag.Uint64("seed", 1, "master seed for devices and nonces")
	drop := flag.Float64("drop", 0, "fault injection: response drop rate")
	corrupt := flag.Float64("corrupt", 0, "fault injection: response corruption rate")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of a summary line")
	flag.Parse()

	cfg := cluster.LoadConfig{
		Shards:            *shards,
		VNodes:            *vnodes,
		Replicas:          *replicas,
		MaxInFlight:       *inflight,
		MaxQueue:          *queue,
		Devices:           *devices,
		Provers:           *provers,
		SessionsPerProver: *sessions,
		MaxAttempts:       *attempts,
		Seed:              *seed,
		Plan:              attest.FaultPlan{Drop: *drop, Corrupt: *corrupt},
	}

	report, err := cluster.RunLoad(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pufatt-load: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "pufatt-load: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("setup: %d devices enrolled across %d shards in %.2fs\n",
			report.Devices, *shards, report.SetupSecs)
		fmt.Println(report)
	}

	if !report.AuditClean {
		fmt.Fprintln(os.Stderr, "pufatt-load: claim-log audit NOT clean — duplicate or diverged claims detected")
		os.Exit(2)
	}
}
