// Command pufatt-eval regenerates the paper's evaluation artifacts: the
// inter-chip histogram of Figure 3, the intra-chip/corner analysis of
// Figure 4, the Table 1 resource comparison, the Section 4.1 FPGA
// two-board measurement, and the Section 4.2 security suite.
//
// Usage:
//
//	pufatt-eval -exp fig3 -n 1000000        # full-scale Figure 3
//	pufatt-eval -exp all -n 20000           # everything, reduced scale
//	pufatt-eval -exp fig4 -n 200000 -workers 8   # parallel batch evaluation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pufatt/internal/buildinfo"
	"pufatt/internal/core"
	"pufatt/internal/experiments"
	"pufatt/internal/fpga"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig3, fig4, fnr, table1, fpga, security, all")
		n       = flag.Int("n", 20000, "challenges per experiment (paper: 1000000)")
		chips   = flag.Int("chips", 2, "simulated chips for figure 3")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		hist    = flag.Bool("hist", false, "print full histograms")
		workers = flag.Int("workers", 0, "PUF batch-evaluation workers (0 = GOMAXPROCS)")
		engine  = flag.String("engine", "bitslice", "PUF evaluation engine: gate, bitslice, or linear")
	)
	version := buildinfo.VersionFlags("pufatt-eval")
	flag.Parse()
	version()
	eng, err := core.ParseEvalEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pufatt-eval: %v\n", err)
		os.Exit(2)
	}
	if eng == core.EngineLinear && *exp != "security" {
		// The figure experiments are gate-level measurements by definition:
		// the linear fast model approximates them (~93-95 % bit agreement)
		// and would silently corrupt the reproduced numbers.
		fmt.Fprintln(os.Stderr, "pufatt-eval: -engine linear is an approximation and is only valid for -exp security (attack training-set generation); use gate or bitslice for figure experiments")
		os.Exit(2)
	}
	core.SetDefaultEvalEngine(eng)
	run := func(name string, fn func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pufatt-eval: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	run("fig3", func() (string, error) {
		r, err := experiments.Figure3(core.DefaultConfig(), *chips, *n, *seed, *workers)
		if err != nil {
			return "", err
		}
		return r.Format(*hist), nil
	})
	run("fig4", func() (string, error) {
		r, err := experiments.Figure4(core.DefaultConfig(), *n, *seed, *workers)
		if err != nil {
			return "", err
		}
		return r.Format(*hist), nil
	})
	run("fnr", func() (string, error) {
		r, err := experiments.FNRMonteCarlo(core.DefaultConfig(), *n, 5, *seed, *workers)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	run("table1", func() (string, error) {
		return experiments.Table1Report(16)
	})
	run("fpga", func() (string, error) {
		r, err := experiments.FPGAMeasurement(fpga.DefaultConfig(), *n, *seed)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	run("security", func() (string, error) {
		r, err := experiments.RunSecuritySuite(experiments.DefaultSecurityConfig(*seed))
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
}
