// Command pufatt-rtl emits the ALU PUF datapath as synthesizable
// structural Verilog: the two-adder core netlist plus the sequential shell
// (synchronization launch registers and per-bit arbiters) of the paper's
// Figure 1. The output is the starting point for an actual FPGA/ASIC flow;
// the symmetry constraints and PDL tuning of Section 4.1 are applied at
// placement, not in the RTL.
//
// Usage:
//
//	pufatt-rtl -width 16 > alupuf.v
//	pufatt-rtl -width 32 -adder cla -module my_puf -o my_puf.v
package main

import (
	"flag"
	"fmt"
	"os"

	"pufatt/internal/buildinfo"
	"pufatt/internal/netlist"
	"pufatt/internal/verilog"
)

func main() {
	var (
		width  = flag.Int("width", 16, "PUF operand width")
		adder  = flag.String("adder", "rca", "adder architecture: rca or cla")
		module = flag.String("module", "alupuf", "top module name")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	version := buildinfo.VersionFlags("pufatt-rtl")
	flag.Parse()
	version()

	kind := netlist.AdderRCA
	switch *adder {
	case "rca":
	case "cla":
		kind = netlist.AdderCLA
	default:
		fmt.Fprintf(os.Stderr, "pufatt-rtl: unknown adder %q (want rca or cla)\n", *adder)
		os.Exit(2)
	}
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: *width, Adder: kind})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pufatt-rtl:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := verilog.EmitPUFTop(w, dp, *module); err != nil {
		fmt.Fprintln(os.Stderr, "pufatt-rtl:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %s: %d-bit %s ALU PUF (%d gates)\n",
			*out, *width, kind, dp.Net.LogicGates())
	}
}
