package delay

import (
	"math"
	"testing"
	"testing/quick"

	"pufatt/internal/netlist"
)

func TestNominalCalibration(t *testing.T) {
	p := Default45nm()
	m := NewModel(p)
	got := m.GateDelay(netlist.Not, 0, Nominal())
	if math.Abs(got-p.BasePs) > 1e-9 {
		t.Errorf("nominal inverter delay = %v ps, want %v", got, p.BasePs)
	}
}

func TestPseudoGatesHaveZeroDelay(t *testing.T) {
	m := NewModel(Default45nm())
	for _, k := range []netlist.Kind{netlist.Input, netlist.Const0, netlist.Const1} {
		if d := m.GateDelay(k, 0, Nominal()); d != 0 {
			t.Errorf("%v delay = %v, want 0", k, d)
		}
	}
}

func TestKindOrdering(t *testing.T) {
	m := NewModel(Default45nm())
	cond := Nominal()
	inv := m.GateDelay(netlist.Not, 0, cond)
	nand := m.GateDelay(netlist.Nand, 0, cond)
	and := m.GateDelay(netlist.And, 0, cond)
	xor := m.GateDelay(netlist.Xor, 0, cond)
	if !(inv < nand && nand < and && and < xor) {
		t.Errorf("delay ordering violated: inv=%v nand=%v and=%v xor=%v", inv, nand, and, xor)
	}
}

func TestHigherVthIsSlower(t *testing.T) {
	m := NewModel(Default45nm())
	f := func(raw uint8) bool {
		dv := (float64(raw)/255*2 - 1) * 0.1 // ΔVth in [-0.1, 0.1] V
		base := m.GateDelay(netlist.Not, 0, Nominal())
		d := m.GateDelay(netlist.Not, dv, Nominal())
		if dv > 1e-6 {
			return d > base
		}
		if dv < -1e-6 {
			return d < base
		}
		return math.Abs(d-base) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowerVddIsSlower(t *testing.T) {
	m := NewModel(Default45nm())
	d90 := m.InverterDelay(Conditions{VddScale: 0.9, TempC: 25})
	d100 := m.InverterDelay(Conditions{VddScale: 1.0, TempC: 25})
	d110 := m.InverterDelay(Conditions{VddScale: 1.1, TempC: 25})
	if !(d90 > d100 && d100 > d110) {
		t.Errorf("Vdd scaling wrong: d90=%v d100=%v d110=%v", d90, d100, d110)
	}
	// The paper's ±10 % window should move delay by a noticeable but
	// bounded factor at a super-threshold 45 nm corner.
	if d90/d110 < 1.05 || d90/d110 > 3 {
		t.Errorf("delay spread across Vdd window = %v, implausible", d90/d110)
	}
}

func TestTemperatureMonotonicity(t *testing.T) {
	// In the super-threshold regime mobility degradation dominates the Vth
	// decrease, so hotter should be slower across the paper's range.
	m := NewModel(Default45nm())
	prev := m.InverterDelay(Conditions{VddScale: 1, TempC: -20})
	for temp := 0.0; temp <= 120; temp += 20 {
		d := m.InverterDelay(Conditions{VddScale: 1, TempC: temp})
		if d <= prev {
			t.Errorf("delay not increasing at T=%v: %v <= %v", temp, d, prev)
		}
		prev = d
	}
}

func TestVariationSensitivityGrowsAtLowVdd(t *testing.T) {
	// Near-threshold literature: the same ΔVth causes a larger delay shift
	// at lower supply. This is why the PUF is queried at a fixed corner.
	m := NewModel(Default45nm())
	sHigh := m.Sensitivity(Conditions{VddScale: 1.1, TempC: 25})
	sLow := m.Sensitivity(Conditions{VddScale: 0.9, TempC: 25})
	if sLow <= sHigh {
		t.Errorf("sensitivity at low Vdd (%v) should exceed high Vdd (%v)", sLow, sHigh)
	}
}

func TestRelativeDelayStableAcrossCorners(t *testing.T) {
	// The paper argues the ALU PUF is robust because both delay paths scale
	// together across corners: the delay RATIO of two gates with different
	// ΔVth must be nearly corner-invariant compared to the absolute shift.
	m := NewModel(Default45nm())
	corners := []Conditions{
		{VddScale: 0.9, TempC: -20},
		{VddScale: 1.0, TempC: 25},
		{VddScale: 1.1, TempC: 120},
	}
	var ratios []float64
	for _, c := range corners {
		fast := m.GateDelay(netlist.Xor, -0.02, c)
		slow := m.GateDelay(netlist.Xor, +0.02, c)
		ratios = append(ratios, slow/fast)
	}
	for _, r := range ratios[1:] {
		if math.Abs(r-ratios[0])/ratios[0] > 0.25 {
			t.Errorf("delay ratio varies too much across corners: %v", ratios)
		}
	}
}

func TestBuildTable(t *testing.T) {
	m := NewModel(Default45nm())
	nl := netlist.BuildFullAdderNetlist()
	dvth := make([]float64, len(nl.Gates))
	tab := BuildTable(m, nl, dvth, nil, Nominal())
	if len(tab.Ps) != len(nl.Gates) {
		t.Fatalf("table size %d, want %d", len(tab.Ps), len(nl.Gates))
	}
	for g := range nl.Gates {
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			if tab.Ps[g] != 0 {
				t.Errorf("pseudo-gate %d has delay %v", g, tab.Ps[g])
			}
		default:
			if tab.Ps[g] <= 0 {
				t.Errorf("gate %d has non-positive delay %v", g, tab.Ps[g])
			}
		}
	}
}

func TestBuildTableSkew(t *testing.T) {
	m := NewModel(Default45nm())
	nl := netlist.BuildFullAdderNetlist()
	dvth := make([]float64, len(nl.Gates))
	skew := make([]float64, len(nl.Gates))
	for i := range skew {
		skew[i] = 2.5
	}
	plain := BuildTable(m, nl, dvth, nil, Nominal())
	skewed := BuildTable(m, nl, dvth, skew, Nominal())
	for g := range nl.Gates {
		if math.Abs(skewed.Ps[g]-plain.Ps[g]-2.5) > 1e-9 {
			t.Errorf("gate %d: skew not added (plain %v, skewed %v)", g, plain.Ps[g], skewed.Ps[g])
		}
	}
}

func TestBuildTableNegativeClamped(t *testing.T) {
	m := NewModel(Default45nm())
	nl := netlist.BuildFullAdderNetlist()
	dvth := make([]float64, len(nl.Gates))
	skew := make([]float64, len(nl.Gates))
	for i := range skew {
		skew[i] = -1e6
	}
	tab := BuildTable(m, nl, dvth, skew, Nominal())
	for g, d := range tab.Ps {
		if d < 0 {
			t.Errorf("gate %d delay %v went negative", g, d)
		}
	}
}

func TestBuildTablePanicsOnSizeMismatch(t *testing.T) {
	m := NewModel(Default45nm())
	nl := netlist.BuildFullAdderNetlist()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on offset size mismatch")
		}
	}()
	BuildTable(m, nl, make([]float64, 1), nil, Nominal())
}

func TestTableClone(t *testing.T) {
	tab := Table{Ps: []float64{1, 2, 3}}
	c := tab.Clone()
	c.Ps[0] = 99
	if tab.Ps[0] != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestSigmaVth(t *testing.T) {
	p := Default45nm()
	if got := p.SigmaVth(); math.Abs(got-0.0466) > 1e-9 {
		t.Errorf("SigmaVth = %v, want 0.0466", got)
	}
}

func TestConditionsString(t *testing.T) {
	s := Conditions{VddScale: 0.9, TempC: -20}.String()
	if s != "Vdd=90% T=-20°C" {
		t.Errorf("String = %q", s)
	}
}
