// Package delay computes gate propagation delays under process, voltage and
// temperature (PVT) variation.
//
// The paper's evaluation (Section 4.1) leverages the delay model of Markovic
// et al., "Ultralow-power design in near-threshold region" (Proc. IEEE 2010)
// to calculate gate-level delay under process variation. Following that
// model, the drain current is expressed with the EKV unified expression
//
//	I_on ∝ µ(T) · ln²(1 + e^((Vdd − Vth(T)) / (2·n·φt)))
//
// which is valid continuously across the sub-, near- and super-threshold
// regimes, and the gate delay is the usual CV/I form
//
//	t_d = factor(kind) · K · Vdd / I_on
//
// Temperature enters through the thermal voltage φt = kT/q, a linear
// threshold-voltage shift Vth(T) = Vth0 − kvt·(T − T0), and mobility
// degradation µ(T) = µ0·(T/T0)^−1.5. Process variation enters as a per-gate
// threshold-voltage offset ΔVth produced by the quad-tree model in package
// variation (σ/µ = 0.1 at the 45 nm node, per the paper).
//
// All delays are in picoseconds. The scale constant K is calibrated so that
// a minimum-size inverter at nominal conditions has Params.BasePs delay.
package delay

import (
	"fmt"
	"math"

	"pufatt/internal/netlist"
)

// Conditions describes an operating corner.
type Conditions struct {
	// VddScale multiplies the nominal supply voltage. The paper examines
	// 0.90 to 1.10.
	VddScale float64
	// TempC is the junction temperature in degrees Celsius. The paper
	// examines −20 to +120.
	TempC float64
}

// Nominal returns the nominal operating corner (100 % Vdd, 25 °C).
func Nominal() Conditions { return Conditions{VddScale: 1.0, TempC: 25} }

// String formats the corner for experiment logs.
func (c Conditions) String() string {
	return fmt.Sprintf("Vdd=%.0f%% T=%+.0f°C", c.VddScale*100, c.TempC)
}

// Params holds the technology parameters of the delay model.
type Params struct {
	VddNom       float64 // nominal supply voltage (V)
	Vth0         float64 // nominal threshold voltage at TNomK (V)
	SigmaVthFrac float64 // σ(Vth)/Vth0; the paper uses 0.1
	SlopeN       float64 // subthreshold slope factor n
	KvtPerK      float64 // Vth temperature coefficient (V/K)
	MobilityExp  float64 // mobility temperature exponent (µ ∝ (T/T0)^−exp)
	TNomK        float64 // reference temperature (K)
	BasePs       float64 // inverter delay at nominal conditions (ps)
}

// Default45nm returns parameters representative of a 45 nm high-performance
// process (PTM-like): Vdd 1.1 V, Vth 0.466 V, σ/µ(Vth) = 0.1.
func Default45nm() Params {
	return Params{
		VddNom:       1.1,
		Vth0:         0.466,
		SigmaVthFrac: 0.1,
		SlopeN:       1.5,
		KvtPerK:      0.0008,
		MobilityExp:  1.5,
		TNomK:        300,
		BasePs:       15,
	}
}

// SigmaVth returns the absolute threshold-voltage standard deviation in
// volts.
func (p Params) SigmaVth() float64 { return p.SigmaVthFrac * p.Vth0 }

// kindFactor maps each cell kind to its delay relative to an inverter,
// reflecting stack height and internal structure (an XOR is a two-level
// structure, an AND is NAND+INV, ...). Input and constant pseudo-gates have
// zero delay.
var kindFactor = map[netlist.Kind]float64{
	netlist.Input:  0,
	netlist.Const0: 0,
	netlist.Const1: 0,
	netlist.Buf:    1.1,
	netlist.Not:    1.0,
	netlist.And:    1.5,
	netlist.Or:     1.6,
	netlist.Nand:   1.2,
	netlist.Nor:    1.4,
	netlist.Xor:    2.2,
	netlist.Xnor:   2.2,
}

// KindFactor returns the relative drive factor for a gate kind.
func KindFactor(k netlist.Kind) float64 {
	f, ok := kindFactor[k]
	if !ok {
		panic("delay: no delay factor for gate kind " + k.String())
	}
	return f
}

// thermalVoltage returns φt = kT/q in volts for a temperature in kelvin.
func thermalVoltage(tK float64) float64 {
	const kOverQ = 8.617333262e-5 // V/K
	return kOverQ * tK
}

// Model evaluates the delay equations for one parameter set.
type Model struct {
	p     Params
	scale float64 // K such that inverter delay at nominal = BasePs
}

// NewModel returns a Model calibrated to the given parameters.
func NewModel(p Params) *Model {
	m := &Model{p: p, scale: 1}
	nom := m.rawDelay(1.0, 0, Nominal())
	m.scale = p.BasePs / nom
	return m
}

// Params returns the technology parameters of the model.
func (m *Model) Params() Params { return m.p }

// current returns the normalised on-current for the given supply voltage,
// effective threshold voltage and temperature (kelvin), per the EKV unified
// model with mobility temperature scaling.
func (m *Model) current(vdd, vth, tK float64) float64 {
	phiT := thermalVoltage(tK)
	x := (vdd - vth) / (2 * m.p.SlopeN * phiT)
	// ln(1+e^x) computed stably for large |x|.
	var lt float64
	if x > 30 {
		lt = x
	} else {
		lt = math.Log1p(math.Exp(x))
	}
	mob := math.Pow(tK/m.p.TNomK, -m.p.MobilityExp)
	return mob * lt * lt
}

// rawDelay returns factor · Vdd / I_on without the calibration constant.
func (m *Model) rawDelay(factor, dVth float64, cond Conditions) float64 {
	vdd := m.p.VddNom * cond.VddScale
	tK := cond.TempC + 273.15
	vth := m.p.Vth0 - m.p.KvtPerK*(tK-m.p.TNomK) + dVth
	i := m.current(vdd, vth, tK)
	if i <= 0 {
		return math.Inf(1)
	}
	return factor * vdd / i
}

// GateDelay returns the propagation delay in picoseconds of a gate of the
// given kind with per-gate threshold offset dVth (V) at the given corner.
func (m *Model) GateDelay(kind netlist.Kind, dVth float64, cond Conditions) float64 {
	f := KindFactor(kind)
	if f == 0 {
		return 0
	}
	return m.scale * m.rawDelay(f, dVth, cond)
}

// InverterDelay returns the delay of a nominal inverter at the corner; a
// convenient scalar measure of how the corner speeds up or slows down the
// whole circuit.
func (m *Model) InverterDelay(cond Conditions) float64 {
	return m.GateDelay(netlist.Not, 0, cond)
}

// Sensitivity returns d(delay)/d(Vth) in ps/V for an inverter at the corner,
// estimated by central difference. Used by tests to confirm that slower
// corners amplify variation, as the near-threshold literature predicts.
func (m *Model) Sensitivity(cond Conditions) float64 {
	const h = 1e-3
	return (m.GateDelay(netlist.Not, h, cond) - m.GateDelay(netlist.Not, -h, cond)) / (2 * h)
}

// Table holds per-gate delays (ps) for one netlist at one corner, plus any
// per-gate additive skew (routing mismatch, PDL stages). It is the "gate
// level delay table" H of the paper: the secret the verifier uses to emulate
// the PUF.
type Table struct {
	Ps []float64
}

// BuildTable computes the per-gate delay table for the netlist given the
// per-gate threshold offsets (from the variation model), optional per-gate
// additive skew in ps (nil for none), and the operating corner.
func BuildTable(m *Model, nl *netlist.Netlist, dVth []float64, skewPs []float64, cond Conditions) Table {
	if len(dVth) != len(nl.Gates) {
		panic(fmt.Sprintf("delay: %d Vth offsets for %d gates", len(dVth), len(nl.Gates)))
	}
	if skewPs != nil && len(skewPs) != len(nl.Gates) {
		panic(fmt.Sprintf("delay: %d skew entries for %d gates", len(skewPs), len(nl.Gates)))
	}
	t := Table{Ps: make([]float64, len(nl.Gates))}
	for g := range nl.Gates {
		d := m.GateDelay(nl.Gates[g].Kind, dVth[g], cond)
		if skewPs != nil {
			d += skewPs[g]
		}
		if d < 0 {
			d = 0
		}
		t.Ps[g] = d
	}
	return t
}

// Clone returns a deep copy of the table.
func (t Table) Clone() Table {
	ps := make([]float64, len(t.Ps))
	copy(ps, t.Ps)
	return Table{Ps: ps}
}
