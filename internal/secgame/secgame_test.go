package secgame

import (
	"math"
	"sort"
	"strings"
	"testing"

	"pufatt/internal/attacks"
	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

// buildWorld assembles the honest stack plus the adversary strategies, with
// the timing policy derived from the measured forgery overhead (as in the
// attacks package).
func buildWorld(t *testing.T) (*Experiment, *attest.Prover, map[string]attest.ProverAgent) {
	t.Helper()
	dev := core.MustNewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(100), 0)
	port := mcu.MustNewDevicePort(dev)
	p := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 16, PRG: swatt.PRGMix32}
	payload := make([]uint32, 300)
	src := rng.New(101)
	for i := range payload {
		payload[i] = src.Uint32()
	}
	image, err := swatt.BuildImage(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	honest := attest.NewProver(image.Clone(), port, 1)
	honest.TuneClock(0.98)
	verifier, err := attest.NewVerifier(image, dev.Emulator(), honest.FreqHz, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	extra, honestCycles, _, err := attacks.ForgeryOverheadCycles(image, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	link := attest.Link{LatencySeconds: 5e-7, BitsPerSecond: 1e9}
	verifier.ComputeSlack = 0.25 * float64(extra) / float64(honestCycles)
	verifier.NetworkAllowance = link.TransferSeconds(attest.ChallengeBits) +
		link.TransferSeconds((8+32)*8+8*p.Chunks*attest.HelperBitsPerWord+32) +
		0.25*float64(extra)/honest.FreqHz

	infected := attest.NewProver(image.Clone(), port, honest.FreqHz)
	for i := 0; i < 64; i++ {
		infected.Image.Mem[image.Layout.PayloadAddr+i] ^= 0xFF
	}
	forger, err := attacks.NewForgeryProver(image, []uint32{0xBAD}, port, honest.FreqHz)
	if err != nil {
		t.Fatal(err)
	}
	factor, err := attacks.OverclockFactorToHide(image, port.Votes, verifier.ComputeSlack)
	if err != nil {
		t.Fatal(err)
	}
	ocForger, err := attacks.NewOverclockedForgeryProver(image, []uint32{0xBAD}, port, honest.FreqHz, factor*1.05)
	if err != nil {
		t.Fatal(err)
	}
	proxy := &attacks.OracleProxyProver{
		Expected: image,
		Pipeline: core.MustNewPipeline(dev),
		Link:     attest.DefaultLink(),
	}
	adversaries := map[string]attest.ProverAgent{
		"naive-malware":       infected,
		"memory-copy-forgery": forger,
		"overclocked-forgery": ocForger,
		"oracle-proxy":        proxy,
	}
	return NewExperiment(verifier, link, 12), honest, adversaries
}

func TestExperiments(t *testing.T) {
	exp, honest, adversaries := buildWorld(t)
	report := &Report{Correctness: exp.Run("honest", honest)}
	// Each strategy plays against a fresh world: the verifier's session
	// counter seeds the challenges and the device port is stateful, so
	// strategies sharing one world would see challenge sequences (and hence
	// outcomes) that depend on which strategies ran before them. Isolated
	// worlds make every strategy's result deterministic and order-free.
	names := make([]string, 0, len(adversaries))
	for name := range adversaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		exp, _, fresh := buildWorld(t)
		report.Soundness = append(report.Soundness, exp.Run(name, fresh[name]))
	}
	if !report.CorrectnessHolds() {
		t.Errorf("correctness failed:\n%s", report.Format())
	}
	if !report.SoundnessHolds() {
		t.Errorf("an adversary won:\n%s", report.Format())
	}
	// With 12 trials at 99 %, ε upper bound for 0 wins ≈ 0.36.
	if eps := report.SoundnessEpsilon(); eps >= 0.5 {
		t.Errorf("epsilon bound %v too loose", eps)
	}
	out := report.Format()
	for _, want := range []string{"correctness", "soundness", "verdict", "ε"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWilsonUpper(t *testing.T) {
	// 0/0 trials → no information → 1.
	if wilsonUpper(0, 0, 2.576) != 1 {
		t.Error("no-trials bound should be 1")
	}
	// 0 wins out of n: bound shrinks with n.
	b10 := wilsonUpper(0, 10, 2.576)
	b100 := wilsonUpper(0, 100, 2.576)
	if !(b100 < b10 && b10 < 1) {
		t.Errorf("bounds not shrinking: %v, %v", b10, b100)
	}
	// All wins: bound is 1 (capped).
	if got := wilsonUpper(10, 10, 2.576); got != 1 {
		t.Errorf("all-wins bound = %v", got)
	}
	// Half wins at large n: close to 0.5.
	if got := wilsonUpper(500, 1000, 2.576); math.Abs(got-0.54) > 0.02 {
		t.Errorf("half-wins bound = %v", got)
	}
}

func TestReportEdgeCases(t *testing.T) {
	r := &Report{}
	if r.SoundnessHolds() {
		t.Error("empty soundness set should not hold vacuously")
	}
	if r.SoundnessEpsilon() != 0 {
		t.Error("empty epsilon should be 0")
	}
	r.Soundness = append(r.Soundness, Outcome{Strategy: "x", Wins: 1, Trials: 10, WinRate: 0.1, EpsilonUpper: 0.4})
	if r.SoundnessHolds() {
		t.Error("a winning adversary should break soundness")
	}
}
