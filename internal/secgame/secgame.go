// Package secgame implements the game-based security evaluation the paper
// defers to future work ("A formal analysis based on the security framework
// in [2] is planned" — Armknecht, Sadeghi, Schulz, Wachsmann, CCS 2013).
//
// The framework phrases software attestation security as experiments:
//
//   - Correctness: the honest prover, run n times with fresh challenges,
//     must be accepted except with negligible probability.
//   - Soundness: an adversary controlling the prover's software (but not
//     its PUF) wins the attestation game if the verifier accepts while the
//     prover's memory differs from the expected state. The scheme is
//     ε-sound if no adversary strategy wins with probability above ε.
//
// This package runs those experiments empirically against the concrete
// adversary strategies of package attacks, reporting per-strategy win rates
// with Clopper-Pearson-style (Wilson) upper confidence bounds — the
// quantity standing in for ε.
package secgame

import (
	"fmt"
	"math"
	"strings"

	"pufatt/internal/attest"
)

// Experiment fixes the verifier-side game parameters.
type Experiment struct {
	Verifier *attest.Verifier
	Link     attest.Link
	// Trials per strategy.
	Trials int
	// Confidence z-score for the ε upper bound (2.576 → 99 %).
	Z float64
}

// NewExperiment returns an experiment with n trials at 99 % confidence.
func NewExperiment(v *attest.Verifier, link attest.Link, trials int) *Experiment {
	return &Experiment{Verifier: v, Link: link, Trials: trials, Z: 2.576}
}

// Outcome is one strategy's empirical result.
type Outcome struct {
	Strategy string
	Wins     int
	Trials   int
	// WinRate is the empirical win probability; EpsilonUpper its Wilson
	// upper confidence bound — the experiment's ε estimate.
	WinRate      float64
	EpsilonUpper float64
	// Err records a strategy whose agent failed outright.
	Err error
}

// wilsonUpper computes the Wilson score interval's upper bound.
func wilsonUpper(wins, trials int, z float64) float64 {
	if trials == 0 {
		return 1
	}
	n := float64(trials)
	p := float64(wins) / n
	z2 := z * z
	center := p + z2/(2*n)
	margin := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	u := (center + margin) / (1 + z2/n)
	if u > 1 {
		return 1
	}
	return u
}

// Run plays the attestation game Trials times against one strategy and
// reports how often the verifier accepted.
func (e *Experiment) Run(name string, agent attest.ProverAgent) Outcome {
	out := Outcome{Strategy: name, Trials: e.Trials}
	for i := 0; i < e.Trials; i++ {
		res, err := attest.RunSession(e.Verifier, agent, e.Link)
		if err != nil {
			out.Err = fmt.Errorf("secgame: %s trial %d: %w", name, i, err)
			break
		}
		if res.Accepted {
			out.Wins++
		}
	}
	out.WinRate = float64(out.Wins) / float64(e.Trials)
	out.EpsilonUpper = wilsonUpper(out.Wins, e.Trials, e.Z)
	return out
}

// Report is the full experiment result: the correctness outcome for the
// honest prover and the soundness outcomes per adversary strategy.
type Report struct {
	Correctness Outcome
	Soundness   []Outcome
}

// CorrectnessHolds reports whether the honest prover was (essentially)
// always accepted.
func (r *Report) CorrectnessHolds() bool {
	return r.Correctness.Err == nil && r.Correctness.WinRate >= 0.99
}

// SoundnessEpsilon returns the largest ε upper bound over all adversary
// strategies (the empirical soundness level of the scheme against this
// strategy set).
func (r *Report) SoundnessEpsilon() float64 {
	eps := 0.0
	for _, o := range r.Soundness {
		if o.EpsilonUpper > eps {
			eps = o.EpsilonUpper
		}
	}
	return eps
}

// SoundnessHolds reports whether no adversary ever won.
func (r *Report) SoundnessHolds() bool {
	for _, o := range r.Soundness {
		if o.Err != nil || o.Wins > 0 {
			return false
		}
	}
	return len(r.Soundness) > 0
}

// Format renders the report.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Attestation security experiments (framework of Armknecht et al. [2])\n")
	row := func(o Outcome) {
		if o.Err != nil {
			fmt.Fprintf(&b, "  %-24s ERROR: %v\n", o.Strategy, o.Err)
			return
		}
		fmt.Fprintf(&b, "  %-24s wins %3d/%3d  (rate %.3f, ε ≤ %.3f @99%%)\n",
			o.Strategy, o.Wins, o.Trials, o.WinRate, o.EpsilonUpper)
	}
	fmt.Fprintf(&b, "correctness (honest prover must win):\n")
	row(r.Correctness)
	fmt.Fprintf(&b, "soundness (adversaries must not win):\n")
	for _, o := range r.Soundness {
		row(o)
	}
	fmt.Fprintf(&b, "verdict: correctness=%v soundness=%v (ε ≤ %.3f over this strategy set)\n",
		r.CorrectnessHolds(), r.SoundnessHolds(), r.SoundnessEpsilon())
	return b.String()
}
