package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The snapshot is the store's durable image of an enrollment: every seed,
// its eight reference raw responses, and the used-bitmap as of the last
// compaction. The layout is flat and offset-computable — the reference
// matrix is stored exactly as the in-memory shape the PR3 batch engine
// introduced (one backing array, rows carved at i*bits), so loading is one
// contiguous read straight into the backing slice and a future reader could
// mmap the file and alias the matrix in place.
//
//	offset 0   magic    uint32 LE (snapMagic "PUFC")
//	offset 4   version  uint32 LE (snapVersion)
//	offset 8   chipID   int64  LE
//	offset 16  bits     uint32 LE  raw-response width
//	offset 20  refsPer  uint32 LE  responses per seed (obfuscate fan-in, 8)
//	offset 24  count    uint32 LE  enrolled seeds
//	offset 28  epoch    uint32 LE  device reconfiguration epoch (v1: reserved, 0)
//	offset 32  seeds    count × uint64 LE, enrollment order
//	...        used     ⌈count/8⌉ bytes, bit i = seed i claimed
//	...        refs     count × refsPer × bits bytes, one byte per response
//	                    bit (row k = seed k/refsPer, expansion k%refsPer)
//	trailer    crc32    uint32 LE (IEEE, over header + payload)
//
// The CRC makes corruption loud: a snapshot that does not check out is
// rejected wholesale rather than serving subtly wrong references (which
// would surface as unexplainable attestation rejections fleet-wide).

// Version history: v1 reserved the header word at offset 28; v2 stores the
// device reconfiguration epoch there. Writers always emit v2; readers
// accept both (a v1 snapshot is an epoch-0 enrollment by definition).
const (
	snapMagic      = 0x43465550 // "PUFC"
	snapVersionV1  = 1
	snapVersion    = 2
	snapHeaderSize = 32

	// Dimension guards against hostile or garbage headers.
	maxSnapSeeds = 1 << 26
	maxSnapBits  = 1 << 10
	maxSnapRefs  = 64
)

// Snapshot-format errors.
var (
	ErrNotSnapshot  = errors.New("crpstore: not a CRP snapshot file")
	ErrSnapChecksum = errors.New("crpstore: snapshot checksum mismatch (corrupted file)")
)

// snapshot is the decoded durable state: the immutable enrollment plus the
// used-bitmap at the time it was written.
type snapshot struct {
	chipID  int
	bits    int
	refsPer int
	epoch   uint32 // device reconfiguration epoch of every reference here
	seeds   []uint64
	used    []bool
	flat    []uint8 // len(seeds)*refsPer*bits reference bytes, flat
}

// ref returns the reference response for seed index i, expansion j: a view
// into the flat matrix.
func (s *snapshot) ref(i, j int) []uint8 {
	row := i*s.refsPer + j
	return s.flat[row*s.bits : (row+1)*s.bits : (row+1)*s.bits]
}

// writeTo streams the snapshot in the format above.
func (s *snapshot) writeTo(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)

	head := make([]byte, snapHeaderSize)
	binary.LittleEndian.PutUint32(head[0:], snapMagic)
	binary.LittleEndian.PutUint32(head[4:], snapVersion)
	binary.LittleEndian.PutUint64(head[8:], uint64(int64(s.chipID)))
	binary.LittleEndian.PutUint32(head[16:], uint32(s.bits))
	binary.LittleEndian.PutUint32(head[20:], uint32(s.refsPer))
	binary.LittleEndian.PutUint32(head[24:], uint32(len(s.seeds)))
	binary.LittleEndian.PutUint32(head[28:], s.epoch)
	if _, err := bw.Write(head); err != nil {
		return err
	}
	var seed [8]byte
	for _, v := range s.seeds {
		binary.LittleEndian.PutUint64(seed[:], v)
		if _, err := bw.Write(seed[:]); err != nil {
			return err
		}
	}
	bitmap := make([]byte, (len(s.used)+7)/8)
	for i, u := range s.used {
		if u {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	if _, err := bw.Write(bitmap); err != nil {
		return err
	}
	if _, err := bw.Write(s.flat); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// readSnapshot decodes and validates a snapshot stream.
func readSnapshot(r io.Reader) (*snapshot, error) {
	crc := crc32.NewIEEE()
	br := io.TeeReader(bufio.NewReaderSize(r, 1<<16), crc)

	head := make([]byte, snapHeaderSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("crpstore: reading snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:]) != snapMagic {
		return nil, ErrNotSnapshot
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version != snapVersionV1 && version != snapVersion {
		return nil, fmt.Errorf("crpstore: unsupported snapshot version %d", version)
	}
	s := &snapshot{
		chipID:  int(int64(binary.LittleEndian.Uint64(head[8:]))),
		bits:    int(binary.LittleEndian.Uint32(head[16:])),
		refsPer: int(binary.LittleEndian.Uint32(head[20:])),
	}
	if version >= snapVersion {
		s.epoch = binary.LittleEndian.Uint32(head[28:])
	}
	count := int(binary.LittleEndian.Uint32(head[24:]))
	if s.bits < 1 || s.bits > maxSnapBits || s.refsPer < 1 || s.refsPer > maxSnapRefs ||
		count < 0 || count > maxSnapSeeds {
		return nil, errors.New("crpstore: snapshot dimensions out of range")
	}

	s.seeds = make([]uint64, count)
	if err := binary.Read(br, binary.LittleEndian, s.seeds); err != nil {
		return nil, fmt.Errorf("crpstore: reading snapshot seeds: %w", err)
	}
	bitmap := make([]byte, (count+7)/8)
	if _, err := io.ReadFull(br, bitmap); err != nil {
		return nil, fmt.Errorf("crpstore: reading snapshot bitmap: %w", err)
	}
	s.used = make([]bool, count)
	for i := range s.used {
		s.used[i] = bitmap[i/8]&(1<<(i%8)) != 0
	}
	s.flat = make([]uint8, count*s.refsPer*s.bits)
	if _, err := io.ReadFull(br, s.flat); err != nil {
		return nil, fmt.Errorf("crpstore: reading snapshot references: %w", err)
	}
	// Sample the CRC now: it has consumed exactly header + payload, and the
	// trailer bytes about to pass through the tee must not contribute.
	want := crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("crpstore: reading snapshot trailer: %w", err)
	}
	if binary.LittleEndian.Uint32(trailer[:]) != want {
		return nil, ErrSnapChecksum
	}
	return s, nil
}

// writeSnapshotFile atomically replaces path with the snapshot: write to a
// temp file in the same directory, optionally fsync, then rename over the
// target. A crash leaves either the old snapshot or the new one — never a
// half-written file — so compaction can run while claims are outstanding.
func writeSnapshotFile(path string, s *snapshot, durable bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("crpstore: creating snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.writeTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("crpstore: writing snapshot: %w", err)
	}
	if durable {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("crpstore: installing snapshot: %w", err)
	}
	if durable {
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync() // make the rename itself durable
			d.Close()
		}
	}
	snapshotWrites.Inc()
	return nil
}

// readSnapshotFile loads and validates the snapshot at path.
func readSnapshotFile(path string) (*snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := readSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("crpstore: %s: %w", path, err)
	}
	snapshotLoads.Inc()
	return s, nil
}
