package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// This file is the WAL frame format's public face. The replicated claim
// log (internal/attest/cluster) streams the store's durable claim records
// between verifier shards, so the 16-byte frame defined in wal.go is a
// wire format as well as a disk format. Exporting the encoder/decoder here
// keeps both sides on one implementation: a frame a follower accepts is
// bit-for-bit a frame openWAL would replay, and the PR6 frame-surgery
// tests cover the replication path for free.

// WALFrameSize is the fixed size of every claim-log frame.
const WALFrameSize = walRecordSize

// ErrBadWALFrame reports a frame whose size, magic, or CRC is invalid —
// wire damage (or surgery) the claim log must refuse to apply.
var ErrBadWALFrame = errors.New("crpstore: invalid WAL frame")

// WALFrame is one decoded claim-log record: a seed claim
// (Transition == false) or an epoch transition (Transition == true).
type WALFrame struct {
	Transition bool
	Seed       uint64 // claim frames
	From, To   uint32 // transition frames
}

// ClaimFrame encodes a seed claim as a durable/wire WAL frame.
func ClaimFrame(seed uint64) []byte {
	rec := make([]byte, walRecordSize)
	binary.LittleEndian.PutUint32(rec[0:4], walMagic)
	binary.LittleEndian.PutUint64(rec[4:12], seed)
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(rec[0:12]))
	return rec
}

// TransitionFrame encodes an epoch transition (the cutover commit point)
// as a durable/wire WAL frame.
func TransitionFrame(from, to uint32) []byte {
	rec := make([]byte, walRecordSize)
	binary.LittleEndian.PutUint32(rec[0:4], walEpochMagic)
	binary.LittleEndian.PutUint32(rec[4:8], from)
	binary.LittleEndian.PutUint32(rec[8:12], to)
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(rec[0:12]))
	return rec
}

// DecodeWALFrame validates and decodes one frame. Anything openWAL would
// reject — short, bad magic, CRC mismatch — returns ErrBadWALFrame.
func DecodeWALFrame(b []byte) (WALFrame, error) {
	if len(b) != walRecordSize {
		return WALFrame{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadWALFrame, len(b), walRecordSize)
	}
	magic := binary.LittleEndian.Uint32(b[0:4])
	if magic != walMagic && magic != walEpochMagic {
		return WALFrame{}, fmt.Errorf("%w: unknown magic %#x", ErrBadWALFrame, magic)
	}
	if got, want := binary.LittleEndian.Uint32(b[12:16]), crc32.ChecksumIEEE(b[0:12]); got != want {
		return WALFrame{}, fmt.Errorf("%w: CRC %#x, want %#x", ErrBadWALFrame, got, want)
	}
	if magic == walEpochMagic {
		return WALFrame{
			Transition: true,
			From:       binary.LittleEndian.Uint32(b[4:8]),
			To:         binary.LittleEndian.Uint32(b[8:12]),
		}, nil
	}
	return WALFrame{Seed: binary.LittleEndian.Uint64(b[4:12])}, nil
}
