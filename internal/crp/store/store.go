// Package store is the durable, concurrent-safe CRP enrollment store: the
// verifier-side persistence layer for the paper's database verification
// path. The in-memory crp.Database bounds a device's lifetime by the
// enrollment effort and loses all claim state with the process; here the
// enrolled reference responses live in a CRC-checked flat snapshot
// (snapshot.go), claims append to a write-ahead log (wal.go), and periodic
// compaction folds the log back into the snapshot — so single-use replay
// protection survives restarts and crashes. A sharded Registry
// (registry.go) scales the scheme across a fleet of devices with lazy
// snapshot loading and an LRU of hot stores.
//
// Since PR 6 the store is epoch-aware: an enrollment belongs to one device
// reconfiguration epoch (core.Device.SetEpoch), and a store can be
// re-enrolled under a fresh epoch without ever resurrecting a consumed
// seed. The cutover protocol (StageEpoch / StagedEpoch.Commit) is
// crash-safe with the same log-before-acknowledge discipline as claims:
//
//  1. the new epoch's references are measured and written to a staged
//     snapshot file (crp.snap.next), durably, while the old epoch keeps
//     serving claims;
//  2. an epoch-transition record is appended to the WAL — the commit
//     point: once durable, the old epoch is retired forever;
//  3. the staged snapshot is renamed over crp.snap;
//  4. the WAL is reset (the transition and all old-epoch claims are now
//     implied by the snapshot's epoch).
//
// Open replays this protocol's every crash point: a staged snapshot with
// no transition record is discarded (the cutover never committed); a
// transition record whose target epoch is newer than the live snapshot
// completes the rename if the staged file survived, and otherwise opens
// the store RETIRED — all claims fail with ErrEpochRetired (never serving
// an old-epoch seed) until a re-enrollment installs the awaited epoch.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/obfuscate"
)

// Store file names inside a device directory.
const (
	snapshotFile = "crp.snap"
	walFile      = "crp.wal"
	// stagingFile holds the next epoch's enrollment between StageEpoch and
	// Commit. It is never read as the live snapshot; open-time recovery
	// either installs it (transition committed) or discards it.
	stagingFile = "crp.snap.next"
)

// ErrClosed reports an operation on a closed store (typically one the
// registry evicted; re-fetch through Registry.Handle, which reopens).
var ErrClosed = errors.New("crpstore: store closed")

// ErrEpochRetired reports a claim or reference lookup against a store
// whose epoch was retired by a committed cutover whose new enrollment was
// lost (a crash between the transition record and the snapshot rename).
// No old-epoch seed is ever re-claimable; the store recovers when a
// re-enrollment installs the awaited epoch. It wraps crp.ErrExhausted:
// to the attestation layer a retired store is an empty budget awaiting
// re-enrollment, not a transport fault and not a verdict.
var ErrEpochRetired = fmt.Errorf("crpstore: epoch retired, awaiting re-enrollment: %w", crp.ErrExhausted)

// ErrEpochOrder reports a re-enrollment whose epoch does not advance the
// store's: epochs are monotonic, and re-using one would alias two
// different reference sets under the same (seed, epoch) coordinates.
var ErrEpochOrder = errors.New("crpstore: re-enrollment epoch must advance the store's epoch")

// Options tunes durability and compaction.
type Options struct {
	// NoSync skips the fsync after WAL appends and snapshot writes. The
	// write ordering (log before acknowledge, write-rename for snapshots)
	// is preserved, so the store stays consistent across process crashes;
	// only power-loss durability is traded for throughput.
	NoSync bool
	// CompactEvery folds the WAL into the snapshot automatically once it
	// holds this many claim records (0 = only compact on explicit Compact
	// calls). Compaction bounds both WAL growth and reopen replay time.
	CompactEvery int
	// MaxOpen bounds how many device stores a Registry keeps open at once
	// (0 = DefaultMaxOpen). Least-recently-used stores beyond the bound
	// are closed; their state is durable, so they simply reload on next
	// use.
	MaxOpen int
}

// DefaultOptions returns the production posture: fsync on every claim,
// compaction every 4096 claims, up to 256 resident stores.
func DefaultOptions() Options {
	return Options{CompactEvery: 4096, MaxOpen: 256}
}

// Store is the durable CRP database of one device. It implements
// core.ReferenceSource (reference lookups for the verifier pipeline) and
// the claim surface of crp.Database (Claim, NextUnused, Remaining), with
// every acknowledged claim logged before it takes effect. All methods are
// safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu         sync.Mutex
	snap       *snapshot      // seeds/refs immutable; used == state at last compaction
	index      map[uint64]int // seed → enrollment position
	used       []bool         // live claim state (snapshot ∪ WAL ∪ this process)
	unused     int
	cursor     int
	wal        *wal
	walRecords int
	epoch      uint32
	// retired marks a store whose epoch-transition record committed but
	// whose new enrollment was lost; awaiting is the epoch a re-enrollment
	// must install (or exceed) to recover it.
	retired  bool
	awaiting uint32
	closed   bool
}

// Open loads the device store in dir: snapshot first, then epoch-cutover
// recovery, then WAL replay. After Open returns, every claim and every
// epoch transition acknowledged before the last shutdown or crash is in
// force again — in particular, no seed of a retired epoch is claimable.
func Open(dir string, opts Options) (*Store, error) {
	snap, err := readSnapshotFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	return openWith(dir, snap, opts)
}

// lastTransition returns the index of the last epoch-transition record
// (-1 when the WAL holds none).
func lastTransition(recs []walRecord) int {
	last := -1
	for i, r := range recs {
		if r.transition {
			last = i
		}
	}
	return last
}

// openWith wires a decoded snapshot to its WAL, running the epoch-cutover
// crash recovery described in the package comment.
func openWith(dir string, snap *snapshot, opts Options) (*Store, error) {
	w, recs, err := openWAL(filepath.Join(dir, walFile), !opts.NoSync)
	if err != nil {
		return nil, err
	}
	staging := filepath.Join(dir, stagingFile)
	retired := false
	var awaiting uint32
	last := lastTransition(recs)
	switch {
	case last >= 0 && recs[last].to > snap.epoch:
		// The cutover committed (the transition record is durable) but the
		// staged snapshot was never renamed into place. If it survived,
		// finish the rename; if not, the old epoch is still retired — the
		// store opens with every claim refused until re-enrollment.
		staged, serr := readSnapshotFile(staging)
		if serr == nil && staged.epoch == recs[last].to {
			if err := os.Rename(staging, filepath.Join(dir, snapshotFile)); err != nil {
				w.close()
				return nil, fmt.Errorf("crpstore: completing epoch cutover: %w", err)
			}
			if !opts.NoSync {
				syncDir(dir)
			}
			snap = staged
			epochRecoveries.Inc()
		} else {
			retired = true
			awaiting = recs[last].to
			epochRetiredOpens.Inc()
		}
	default:
		// No committed transition past the live snapshot. A staged file
		// here is an uncommitted cutover: discard it, the old epoch stays
		// live (and its claims stay in force).
		if _, serr := os.Stat(staging); serr == nil {
			_ = os.Remove(staging)
			epochStagingsDiscarded.Inc()
		}
	}

	st := &Store{
		dir:      dir,
		opts:     opts,
		snap:     snap,
		index:    make(map[uint64]int, len(snap.seeds)),
		used:     append([]bool(nil), snap.used...),
		wal:      w,
		epoch:    snap.epoch,
		retired:  retired,
		awaiting: awaiting,
	}
	for i, seed := range snap.seeds {
		if _, dup := st.index[seed]; dup {
			w.close()
			return nil, fmt.Errorf("crpstore: snapshot enrolls seed %#x twice", seed)
		}
		st.index[seed] = i
	}
	// Claim replay. Claims logged before the last transition record belong
	// to a retired epoch: they are skipped wholesale (their seeds may not
	// even exist in the live snapshot, and that is not corruption). Claims
	// after it apply iff the live snapshot is the transition's target —
	// the state a crash between the cutover's rename and its WAL reset
	// leaves behind.
	start := 0
	if last >= 0 {
		start = last + 1
	}
	if !retired {
		for _, rec := range recs[start:] {
			if rec.transition {
				continue
			}
			i, ok := st.index[rec.seed]
			if !ok {
				w.close()
				return nil, fmt.Errorf("%w: WAL claims unenrolled seed %#x", ErrWALCorrupt, rec.seed)
			}
			// A claim already marked in the snapshot is legal: a crash between
			// compaction's snapshot rename and its WAL truncation leaves the
			// record in both places, and replay is idempotent.
			if !st.used[i] {
				st.used[i] = true
			}
		}
	}
	st.walRecords = len(recs)
	if !retired {
		for _, u := range st.used {
			if !u {
				st.unused++
			}
		}
	}
	openStores.Add(1)
	return st, nil
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// create installs a fresh enrollment snapshot in dir and opens it. It
// refuses to overwrite an existing enrollment: re-enrolling a device with
// claims outstanding would resurrect consumed seeds (epoch cutovers go
// through StageEpoch/Commit instead, which retire the old seeds first).
func create(dir string, snap *snapshot, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("crpstore: %s already holds an enrollment", dir)
	}
	if err := writeSnapshotFile(path, snap, !opts.NoSync); err != nil {
		return nil, err
	}
	enrolledSeeds.Add(uint64(len(snap.seeds)))
	return openWith(dir, snap, opts)
}

// Create installs an enrollment from externally measured reference data
// (an FPGA collection run, an import from another verifier): refs holds
// len(seeds)*RefsPerSeed rows in seed-major order, each bits wide. The
// enrollment is installed at epoch 0.
func Create(dir string, chipID, bits int, seeds []uint64, refs [][]uint8, opts Options) (*Store, error) {
	refsPer := obfuscate.ResponsesPerOutput
	if len(seeds) == 0 {
		return nil, errors.New("crpstore: enrolling zero seeds")
	}
	if len(refs) != len(seeds)*refsPer {
		return nil, fmt.Errorf("crpstore: %d reference rows for %d seeds (need %d per seed)",
			len(refs), len(seeds), refsPer)
	}
	snap := &snapshot{
		chipID:  chipID,
		bits:    bits,
		refsPer: refsPer,
		seeds:   append([]uint64(nil), seeds...),
		used:    make([]bool, len(seeds)),
		flat:    make([]uint8, len(seeds)*refsPer*bits),
	}
	seen := make(map[uint64]struct{}, len(seeds))
	for _, seed := range seeds {
		if _, dup := seen[seed]; dup {
			return nil, fmt.Errorf("crpstore: duplicate enrollment seed %#x", seed)
		}
		seen[seed] = struct{}{}
	}
	for k, row := range refs {
		if len(row) != bits {
			return nil, fmt.Errorf("crpstore: reference row %d is %d bits, want %d", k, len(row), bits)
		}
		copy(snap.flat[k*bits:(k+1)*bits], row)
	}
	return create(dir, snap, opts)
}

// measureSnapshot measures the device's noiseless reference responses for
// every seed — fanning the len(seeds)×8 expanded challenges across the
// parallel batch evaluator (workers ≤ 0 means GOMAXPROCS) — into a fresh
// snapshot stamped with the device's current epoch.
func measureSnapshot(dev *core.Device, seeds []uint64, workers int) (*snapshot, error) {
	if len(seeds) == 0 {
		return nil, errors.New("crpstore: enrolling zero seeds")
	}
	design := dev.Design()
	bits := design.ResponseBits()
	refsPer := obfuscate.ResponsesPerOutput
	seen := make(map[uint64]struct{}, len(seeds))
	for _, seed := range seeds {
		if _, dup := seen[seed]; dup {
			return nil, fmt.Errorf("crpstore: duplicate enrollment seed %#x", seed)
		}
		seen[seed] = struct{}{}
	}

	rows := len(seeds) * refsPer
	challenges := core.ChallengeMatrix(design, rows)
	for i, seed := range seeds {
		for j := 0; j < refsPer; j++ {
			design.ExpandChallengeInto(challenges[i*refsPer+j], seed, j)
		}
	}
	snap := &snapshot{
		chipID:  dev.ChipID(),
		bits:    bits,
		refsPer: refsPer,
		epoch:   dev.Epoch(),
		seeds:   append([]uint64(nil), seeds...),
		used:    make([]bool, len(seeds)),
		flat:    make([]uint8, rows*bits),
	}
	dst := make([][]uint8, rows)
	for k := range dst {
		dst[k] = snap.flat[k*bits : (k+1)*bits : (k+1)*bits]
	}
	core.NewBatchEvaluator(dev).NoiselessResponses(challenges, dst, workers)
	return snap, nil
}

// Enroll measures the device's noiseless reference responses for every
// seed and installs them as a durable enrollment in dir, stamped with the
// device's current epoch. The batch responses land directly in the
// snapshot's flat matrix: enrollment of a large seed set is one
// allocation and one parallel sweep.
func Enroll(dir string, dev *core.Device, seeds []uint64, workers int, opts Options) (*Store, error) {
	snap, err := measureSnapshot(dev, seeds, workers)
	if err != nil {
		return nil, err
	}
	return create(dir, snap, opts)
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// ChipID returns the chip this store was enrolled for.
func (st *Store) ChipID() int { return st.snap.chipID }

// ResponseBits implements core.ReferenceSource.
func (st *Store) ResponseBits() int { return st.snap.bits }

// Len returns the number of enrolled seeds.
func (st *Store) Len() int { return len(st.snap.seeds) }

// Epoch returns the device reconfiguration epoch of the live enrollment.
func (st *Store) Epoch() uint32 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch
}

// Retired reports whether the store's epoch was retired with no live
// successor (see ErrEpochRetired); AwaitingEpoch returns the epoch a
// re-enrollment must reach to recover it (0 when not retired).
func (st *Store) Retired() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.retired
}

// AwaitingEpoch returns the committed cutover target a retired store is
// waiting on (0 when the store is live).
func (st *Store) AwaitingEpoch() uint32 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.awaiting
}

// ReferenceResponse implements core.ReferenceSource. As with crp.Database,
// the seed must have been claimed first, so a protocol bug cannot silently
// bypass replay protection.
func (st *Store) ReferenceResponse(seed uint64, j int) ([]uint8, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	if st.retired {
		st.mu.Unlock()
		return nil, ErrEpochRetired
	}
	snap := st.snap
	i, ok := st.index[seed]
	used := ok && st.used[i]
	st.mu.Unlock()
	if !ok {
		return nil, crp.ErrUnknownSeed
	}
	if !used {
		return nil, fmt.Errorf("crpstore: seed %#x not claimed before use", seed)
	}
	if j < 0 || j >= snap.refsPer {
		return nil, fmt.Errorf("crpstore: reference index %d out of range", j)
	}
	referenceLookups.Inc()
	// Reference rows are immutable after enrollment: the view needs no lock.
	return snap.ref(i, j), nil
}

// Claim durably marks a seed as consumed: the claim record is on disk (in
// its WAL) before Claim acknowledges, so the seed stays rejected as a
// replay after any restart. Unknown and already-used seeds fail with the
// crp package's sentinel errors.
func (st *Store) Claim(seed uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.claimLocked(seed)
}

func (st *Store) claimLocked(seed uint64) error {
	if st.closed {
		return ErrClosed
	}
	if st.retired {
		claims.With("retired").Inc()
		return ErrEpochRetired
	}
	i, ok := st.index[seed]
	if !ok {
		claims.With("unknown").Inc()
		return crp.ErrUnknownSeed
	}
	if st.used[i] {
		claims.With("replay").Inc()
		return crp.ErrSeedUsed
	}
	// Log before acknowledging: if the append fails (or the process dies
	// inside it) the caller never saw the claim succeed, and a replayed
	// torn tail drops it — the failure mode errs toward a seed being
	// claimed on disk but unacknowledged, never the reverse.
	if err := st.wal.append(seed); err != nil {
		return err
	}
	st.used[i] = true
	st.unused--
	st.walRecords++
	claims.With("ok").Inc()
	if st.opts.CompactEvery > 0 && st.walRecords >= st.opts.CompactEvery {
		// The claim itself is already durable and acknowledged; a failed
		// fold only defers compaction to the next trigger.
		_ = st.compactLocked()
	}
	return nil
}

// NextUnused durably claims and returns the next unused seed in enrollment
// order. Seeds consumed by direct Claim calls are skipped without counting
// replay telemetry.
func (st *Store) NextUnused() (uint64, error) {
	seed, _, err := st.NextUnusedWithEpoch()
	return seed, err
}

// NextUnusedWithEpoch is NextUnused returning the claimed seed's epoch
// under the same lock acquisition — the atomic (seed, epoch) pair an
// epoch-negotiating verifier binds into one challenge, so a concurrent
// cutover can never split a session across epochs.
func (st *Store) NextUnusedWithEpoch() (uint64, uint32, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, 0, ErrClosed
	}
	if st.retired {
		claims.With("retired").Inc()
		return 0, st.epoch, ErrEpochRetired
	}
	for st.cursor < len(st.snap.seeds) {
		seed := st.snap.seeds[st.cursor]
		if st.used[st.index[seed]] {
			st.cursor++
			continue
		}
		if err := st.claimLocked(seed); err != nil {
			return 0, st.epoch, err
		}
		st.cursor++
		return seed, st.epoch, nil
	}
	claims.With("exhausted").Inc()
	return 0, st.epoch, crp.ErrExhausted
}

// Remaining returns how many authentications the store still supports
// (O(1): maintained by the claim paths; 0 for a retired store).
func (st *Store) Remaining() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.retired {
		return 0
	}
	return st.unused
}

// WALRecords returns the number of records currently in the WAL — the
// replay work a reopen would do before the next compaction.
func (st *Store) WALRecords() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.walRecords
}

// Compact folds the WAL into a fresh snapshot (atomically installed via
// write-and-rename) and empties the log. A crash at any point leaves a
// consistent store: either the old snapshot plus the full WAL, or the new
// snapshot plus a WAL whose replay is idempotent.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if st.retired {
		// Nothing to fold: a retired store's claim state is terminal and
		// fully described by the WAL's transition record, which must
		// survive until re-enrollment.
		return nil
	}
	return st.compactLocked()
}

func (st *Store) compactLocked() error {
	snap := &snapshot{
		chipID:  st.snap.chipID,
		bits:    st.snap.bits,
		refsPer: st.snap.refsPer,
		epoch:   st.epoch,
		seeds:   st.snap.seeds,
		used:    append([]bool(nil), st.used...),
		flat:    st.snap.flat,
	}
	if err := writeSnapshotFile(filepath.Join(st.dir, snapshotFile), snap, !st.opts.NoSync); err != nil {
		return err
	}
	// Only after the snapshot rename is durable may the WAL be emptied;
	// the reverse order could lose claims.
	if err := st.wal.reset(); err != nil {
		return err
	}
	st.snap = snap
	st.walRecords = 0
	compactions.Inc()
	return nil
}

// StagedEpoch is a measured-but-uncommitted re-enrollment: the next
// epoch's references, durable in the staging file but not yet live.
// Commit performs the cutover; Discard abandons it. Until Commit's
// transition record is on disk, the old epoch keeps serving claims and a
// crash changes nothing.
type StagedEpoch struct {
	st   *Store
	snap *snapshot
}

// Epoch returns the staged enrollment's epoch.
func (se *StagedEpoch) Epoch() uint32 { return se.snap.epoch }

// Len returns the number of staged seeds.
func (se *StagedEpoch) Len() int { return len(se.snap.seeds) }

// StageEpoch measures a re-enrollment for the device's CURRENT epoch —
// the caller reconfigures the device (core.Device.SetEpoch) first — and
// writes it durably to the staging file without touching the live
// enrollment. The staged epoch must advance the store's (and reach the
// awaited epoch when the store is retired). Claims against the old epoch
// proceed concurrently; the budget keeps draining while the new epoch is
// prepared.
func (st *Store) StageEpoch(dev *core.Device, seeds []uint64, workers int) (*StagedEpoch, error) {
	epoch := dev.Epoch()
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	if epoch <= st.epoch || (st.retired && epoch < st.awaiting) {
		cur, retired, awaiting := st.epoch, st.retired, st.awaiting
		st.mu.Unlock()
		if retired {
			return nil, fmt.Errorf("%w: staged %d, store retired at %d awaiting %d",
				ErrEpochOrder, epoch, cur, awaiting)
		}
		return nil, fmt.Errorf("%w: staged %d, store at %d", ErrEpochOrder, epoch, cur)
	}
	st.mu.Unlock()

	snap, err := measureSnapshot(dev, seeds, workers)
	if err != nil {
		return nil, err
	}
	if err := writeSnapshotFile(filepath.Join(st.dir, stagingFile), snap, !st.opts.NoSync); err != nil {
		return nil, err
	}
	epochStagings.Inc()
	return &StagedEpoch{st: st, snap: snap}, nil
}

// Commit performs the epoch cutover: transition record (the durable
// commit point — from here the old epoch is retired), snapshot rename,
// WAL reset, in-memory swap. Claims are serialised against the cutover by
// the store lock, so every claim lands entirely in one epoch.
func (se *StagedEpoch) Commit() error {
	st := se.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if se.snap.epoch <= st.epoch || (st.retired && se.snap.epoch < st.awaiting) {
		return fmt.Errorf("%w: committing %d, store at %d", ErrEpochOrder, se.snap.epoch, st.epoch)
	}
	// Log before acknowledge: the transition record makes the retirement
	// of the old epoch durable before anything else changes. A crash
	// after this append and before the rename opens the store retired —
	// old seeds unclaimable — and recovers from the staging file.
	if err := st.wal.appendTransition(st.epoch, se.snap.epoch); err != nil {
		return err
	}
	if err := os.Rename(filepath.Join(st.dir, stagingFile), filepath.Join(st.dir, snapshotFile)); err != nil {
		return fmt.Errorf("crpstore: installing epoch snapshot: %w", err)
	}
	if !st.opts.NoSync {
		syncDir(st.dir)
	}
	if err := st.wal.reset(); err != nil {
		return err
	}
	st.snap = se.snap
	st.index = make(map[uint64]int, len(se.snap.seeds))
	for i, seed := range se.snap.seeds {
		st.index[seed] = i
	}
	st.used = make([]bool, len(se.snap.seeds))
	st.unused = len(se.snap.seeds)
	st.cursor = 0
	st.walRecords = 0
	st.epoch = se.snap.epoch
	st.retired = false
	st.awaiting = 0
	enrolledSeeds.Add(uint64(len(se.snap.seeds)))
	epochTransitions.Inc()
	return nil
}

// Discard abandons a staged re-enrollment, removing its staging file. The
// live enrollment is untouched.
func (se *StagedEpoch) Discard() error {
	err := os.Remove(filepath.Join(se.st.dir, stagingFile))
	if err == nil || errors.Is(err, os.ErrNotExist) {
		epochStagingsDiscarded.Inc()
		return nil
	}
	return err
}

// Reenroll is StageEpoch + Commit in one call: measure the device's
// current (fresh) epoch and cut the store over to it. Callers that need
// to coordinate the cutover with live traffic (attest.Reenroller) use the
// two-step form and commit inside their own barrier.
func (st *Store) Reenroll(dev *core.Device, seeds []uint64, workers int) error {
	staged, err := st.StageEpoch(dev, seeds, workers)
	if err != nil {
		return err
	}
	return staged.Commit()
}

// Close releases the store's WAL handle. Claim state is durable; reopening
// with Open restores it.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	openStores.Add(-1)
	return st.wal.close()
}
