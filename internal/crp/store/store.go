// Package store is the durable, concurrent-safe CRP enrollment store: the
// verifier-side persistence layer for the paper's database verification
// path. The in-memory crp.Database bounds a device's lifetime by the
// enrollment effort and loses all claim state with the process; here the
// enrolled reference responses live in a CRC-checked flat snapshot
// (snapshot.go), claims append to a write-ahead log (wal.go), and periodic
// compaction folds the log back into the snapshot — so single-use replay
// protection survives restarts and crashes. A sharded Registry
// (registry.go) scales the scheme across a fleet of devices with lazy
// snapshot loading and an LRU of hot stores.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/obfuscate"
)

// Store file names inside a device directory.
const (
	snapshotFile = "crp.snap"
	walFile      = "crp.wal"
)

// ErrClosed reports an operation on a closed store (typically one the
// registry evicted; re-fetch through Registry.Handle, which reopens).
var ErrClosed = errors.New("crpstore: store closed")

// Options tunes durability and compaction.
type Options struct {
	// NoSync skips the fsync after WAL appends and snapshot writes. The
	// write ordering (log before acknowledge, write-rename for snapshots)
	// is preserved, so the store stays consistent across process crashes;
	// only power-loss durability is traded for throughput.
	NoSync bool
	// CompactEvery folds the WAL into the snapshot automatically once it
	// holds this many claim records (0 = only compact on explicit Compact
	// calls). Compaction bounds both WAL growth and reopen replay time.
	CompactEvery int
	// MaxOpen bounds how many device stores a Registry keeps open at once
	// (0 = DefaultMaxOpen). Least-recently-used stores beyond the bound
	// are closed; their state is durable, so they simply reload on next
	// use.
	MaxOpen int
}

// DefaultOptions returns the production posture: fsync on every claim,
// compaction every 4096 claims, up to 256 resident stores.
func DefaultOptions() Options {
	return Options{CompactEvery: 4096, MaxOpen: 256}
}

// Store is the durable CRP database of one device. It implements
// core.ReferenceSource (reference lookups for the verifier pipeline) and
// the claim surface of crp.Database (Claim, NextUnused, Remaining), with
// every acknowledged claim logged before it takes effect. All methods are
// safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu         sync.Mutex
	snap       *snapshot      // seeds/refs immutable; used == state at last compaction
	index      map[uint64]int // seed → enrollment position
	used       []bool         // live claim state (snapshot ∪ WAL ∪ this process)
	unused     int
	cursor     int
	wal        *wal
	walRecords int
	closed     bool
}

// Open loads the device store in dir: snapshot first, then WAL replay on
// top of it. After Open returns, every claim acknowledged before the last
// shutdown or crash is in force again.
func Open(dir string, opts Options) (*Store, error) {
	snap, err := readSnapshotFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	return openWith(dir, snap, opts)
}

// openWith wires a decoded snapshot to its WAL.
func openWith(dir string, snap *snapshot, opts Options) (*Store, error) {
	w, claimed, err := openWAL(filepath.Join(dir, walFile), !opts.NoSync)
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:   dir,
		opts:  opts,
		snap:  snap,
		index: make(map[uint64]int, len(snap.seeds)),
		used:  append([]bool(nil), snap.used...),
		wal:   w,
	}
	for i, seed := range snap.seeds {
		if _, dup := st.index[seed]; dup {
			w.close()
			return nil, fmt.Errorf("crpstore: snapshot enrolls seed %#x twice", seed)
		}
		st.index[seed] = i
	}
	for _, seed := range claimed {
		i, ok := st.index[seed]
		if !ok {
			w.close()
			return nil, fmt.Errorf("%w: WAL claims unenrolled seed %#x", ErrWALCorrupt, seed)
		}
		// A claim already marked in the snapshot is legal: a crash between
		// compaction's snapshot rename and its WAL truncation leaves the
		// record in both places, and replay is idempotent.
		if !st.used[i] {
			st.used[i] = true
		}
		st.walRecords++
	}
	for _, u := range st.used {
		if !u {
			st.unused++
		}
	}
	openStores.Add(1)
	return st, nil
}

// create installs a fresh enrollment snapshot in dir and opens it. It
// refuses to overwrite an existing enrollment: re-enrolling a device with
// claims outstanding would resurrect consumed seeds.
func create(dir string, snap *snapshot, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("crpstore: %s already holds an enrollment", dir)
	}
	if err := writeSnapshotFile(path, snap, !opts.NoSync); err != nil {
		return nil, err
	}
	enrolledSeeds.Add(uint64(len(snap.seeds)))
	return openWith(dir, snap, opts)
}

// Create installs an enrollment from externally measured reference data
// (an FPGA collection run, an import from another verifier): refs holds
// len(seeds)*RefsPerSeed rows in seed-major order, each bits wide.
func Create(dir string, chipID, bits int, seeds []uint64, refs [][]uint8, opts Options) (*Store, error) {
	refsPer := obfuscate.ResponsesPerOutput
	if len(seeds) == 0 {
		return nil, errors.New("crpstore: enrolling zero seeds")
	}
	if len(refs) != len(seeds)*refsPer {
		return nil, fmt.Errorf("crpstore: %d reference rows for %d seeds (need %d per seed)",
			len(refs), len(seeds), refsPer)
	}
	snap := &snapshot{
		chipID:  chipID,
		bits:    bits,
		refsPer: refsPer,
		seeds:   append([]uint64(nil), seeds...),
		used:    make([]bool, len(seeds)),
		flat:    make([]uint8, len(seeds)*refsPer*bits),
	}
	seen := make(map[uint64]struct{}, len(seeds))
	for _, seed := range seeds {
		if _, dup := seen[seed]; dup {
			return nil, fmt.Errorf("crpstore: duplicate enrollment seed %#x", seed)
		}
		seen[seed] = struct{}{}
	}
	for k, row := range refs {
		if len(row) != bits {
			return nil, fmt.Errorf("crpstore: reference row %d is %d bits, want %d", k, len(row), bits)
		}
		copy(snap.flat[k*bits:(k+1)*bits], row)
	}
	return create(dir, snap, opts)
}

// Enroll measures the device's noiseless reference responses for every
// seed — fanning the len(seeds)×8 expanded challenges across the parallel
// batch evaluator (workers ≤ 0 means GOMAXPROCS) — and installs them as a
// durable enrollment in dir. The batch responses land directly in the
// snapshot's flat matrix: enrollment of a large seed set is one
// allocation and one parallel sweep.
func Enroll(dir string, dev *core.Device, seeds []uint64, workers int, opts Options) (*Store, error) {
	if len(seeds) == 0 {
		return nil, errors.New("crpstore: enrolling zero seeds")
	}
	design := dev.Design()
	bits := design.ResponseBits()
	refsPer := obfuscate.ResponsesPerOutput
	seen := make(map[uint64]struct{}, len(seeds))
	for _, seed := range seeds {
		if _, dup := seen[seed]; dup {
			return nil, fmt.Errorf("crpstore: duplicate enrollment seed %#x", seed)
		}
		seen[seed] = struct{}{}
	}

	rows := len(seeds) * refsPer
	challenges := core.ChallengeMatrix(design, rows)
	for i, seed := range seeds {
		for j := 0; j < refsPer; j++ {
			design.ExpandChallengeInto(challenges[i*refsPer+j], seed, j)
		}
	}
	snap := &snapshot{
		chipID:  dev.ChipID(),
		bits:    bits,
		refsPer: refsPer,
		seeds:   append([]uint64(nil), seeds...),
		used:    make([]bool, len(seeds)),
		flat:    make([]uint8, rows*bits),
	}
	dst := make([][]uint8, rows)
	for k := range dst {
		dst[k] = snap.flat[k*bits : (k+1)*bits : (k+1)*bits]
	}
	core.NewBatchEvaluator(dev).NoiselessResponses(challenges, dst, workers)
	return create(dir, snap, opts)
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// ChipID returns the chip this store was enrolled for.
func (st *Store) ChipID() int { return st.snap.chipID }

// ResponseBits implements core.ReferenceSource.
func (st *Store) ResponseBits() int { return st.snap.bits }

// Len returns the number of enrolled seeds.
func (st *Store) Len() int { return len(st.snap.seeds) }

// ReferenceResponse implements core.ReferenceSource. As with crp.Database,
// the seed must have been claimed first, so a protocol bug cannot silently
// bypass replay protection.
func (st *Store) ReferenceResponse(seed uint64, j int) ([]uint8, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	i, ok := st.index[seed]
	used := ok && st.used[i]
	st.mu.Unlock()
	if !ok {
		return nil, crp.ErrUnknownSeed
	}
	if !used {
		return nil, fmt.Errorf("crpstore: seed %#x not claimed before use", seed)
	}
	if j < 0 || j >= st.snap.refsPer {
		return nil, fmt.Errorf("crpstore: reference index %d out of range", j)
	}
	referenceLookups.Inc()
	// Reference rows are immutable after enrollment: the view needs no lock.
	return st.snap.ref(i, j), nil
}

// Claim durably marks a seed as consumed: the claim record is on disk (in
// its WAL) before Claim acknowledges, so the seed stays rejected as a
// replay after any restart. Unknown and already-used seeds fail with the
// crp package's sentinel errors.
func (st *Store) Claim(seed uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.claimLocked(seed)
}

func (st *Store) claimLocked(seed uint64) error {
	if st.closed {
		return ErrClosed
	}
	i, ok := st.index[seed]
	if !ok {
		claims.With("unknown").Inc()
		return crp.ErrUnknownSeed
	}
	if st.used[i] {
		claims.With("replay").Inc()
		return crp.ErrSeedUsed
	}
	// Log before acknowledging: if the append fails (or the process dies
	// inside it) the caller never saw the claim succeed, and a replayed
	// torn tail drops it — the failure mode errs toward a seed being
	// claimed on disk but unacknowledged, never the reverse.
	if err := st.wal.append(seed); err != nil {
		return err
	}
	st.used[i] = true
	st.unused--
	st.walRecords++
	claims.With("ok").Inc()
	if st.opts.CompactEvery > 0 && st.walRecords >= st.opts.CompactEvery {
		// The claim itself is already durable and acknowledged; a failed
		// fold only defers compaction to the next trigger.
		_ = st.compactLocked()
	}
	return nil
}

// NextUnused durably claims and returns the next unused seed in enrollment
// order. Seeds consumed by direct Claim calls are skipped without counting
// replay telemetry.
func (st *Store) NextUnused() (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, ErrClosed
	}
	for st.cursor < len(st.snap.seeds) {
		seed := st.snap.seeds[st.cursor]
		if st.used[st.index[seed]] {
			st.cursor++
			continue
		}
		if err := st.claimLocked(seed); err != nil {
			return 0, err
		}
		st.cursor++
		return seed, nil
	}
	claims.With("exhausted").Inc()
	return 0, crp.ErrExhausted
}

// Remaining returns how many authentications the store still supports
// (O(1): maintained by the claim paths).
func (st *Store) Remaining() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.unused
}

// WALRecords returns the number of claim records currently in the WAL —
// the replay work a reopen would do before the next compaction.
func (st *Store) WALRecords() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.walRecords
}

// Compact folds the WAL into a fresh snapshot (atomically installed via
// write-and-rename) and empties the log. A crash at any point leaves a
// consistent store: either the old snapshot plus the full WAL, or the new
// snapshot plus a WAL whose replay is idempotent.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.compactLocked()
}

func (st *Store) compactLocked() error {
	snap := &snapshot{
		chipID:  st.snap.chipID,
		bits:    st.snap.bits,
		refsPer: st.snap.refsPer,
		seeds:   st.snap.seeds,
		used:    append([]bool(nil), st.used...),
		flat:    st.snap.flat,
	}
	if err := writeSnapshotFile(filepath.Join(st.dir, snapshotFile), snap, !st.opts.NoSync); err != nil {
		return err
	}
	// Only after the snapshot rename is durable may the WAL be emptied;
	// the reverse order could lose claims.
	if err := st.wal.reset(); err != nil {
		return err
	}
	st.snap = snap
	st.walRecords = 0
	compactions.Inc()
	return nil
}

// Close releases the store's WAL handle. Claim state is durable; reopening
// with Open restores it.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	openStores.Add(-1)
	return st.wal.close()
}
