package store

import "pufatt/internal/telemetry"

// Store instruments. Claim outcomes feed the same crp_claims_total family
// the in-memory database uses (the telemetry registry deduplicates by
// name), so operators watch one replay/exhaustion signal regardless of
// which backend serves a device; the crpstore_* set covers the durability
// machinery itself — WAL traffic, snapshot I/O, compactions, and how hard
// the registry shards are being fought over.
var (
	claims = telemetry.Default().CounterVec("crp_claims_total",
		"Seed claims against CRP databases, by result.", "result")
	enrolledSeeds = telemetry.Default().Counter("crp_enrolled_seeds_total",
		"Challenge seeds enrolled into CRP databases.")
	referenceLookups = telemetry.Default().Counter("crp_reference_lookups_total",
		"Reference-response lookups served from CRP databases.")

	snapshotLoads = telemetry.Default().Counter("crpstore_snapshot_loads_total",
		"Enrollment snapshots loaded from disk.")
	snapshotWrites = telemetry.Default().Counter("crpstore_snapshot_writes_total",
		"Enrollment snapshots written (enrollments and compactions).")
	walAppends = telemetry.Default().Counter("crpstore_wal_appends_total",
		"Claim records appended to write-ahead logs.")
	walReplayedRecords = telemetry.Default().Counter("crpstore_wal_replayed_records_total",
		"Claim records replayed from write-ahead logs at open.")
	walTornTails = telemetry.Default().Counter("crpstore_wal_torn_tails_total",
		"Torn write-ahead-log tails detected and truncated at open.")
	compactions = telemetry.Default().Counter("crpstore_compactions_total",
		"WAL-into-snapshot compactions performed.")
	openStores = telemetry.Default().Gauge("crpstore_open_stores",
		"Device stores currently open (snapshot resident in memory).")
	shardContention = telemetry.Default().Counter("crpstore_shard_contention_total",
		"Registry shard lock acquisitions that had to wait behind another holder.")
	evictions = telemetry.Default().Counter("crpstore_evictions_total",
		"Device stores evicted from the registry's hot LRU.")

	epochStagings = telemetry.Default().Counter("crpstore_epoch_stagings_total",
		"Re-enrollments staged (measured and written to crp.snap.next).")
	epochStagingsDiscarded = telemetry.Default().Counter("crpstore_epoch_stagings_discarded_total",
		"Staged re-enrollments discarded (explicitly or as uncommitted cutovers at open).")
	epochTransitions = telemetry.Default().Counter("crpstore_epoch_transitions_total",
		"Epoch cutovers committed (transition record durable, new enrollment live).")
	epochRecoveries = telemetry.Default().Counter("crpstore_epoch_recoveries_total",
		"Committed cutovers completed at open from a surviving staged snapshot.")
	epochRetiredOpens = telemetry.Default().Counter("crpstore_epoch_retired_opens_total",
		"Stores opened retired: cutover committed but the staged enrollment was lost.")
)
