package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The claim WAL is the store's crash-safety mechanism for the mutable half
// of its state. The snapshot holds the enrolled references (large, mostly
// immutable); the WAL holds the claims made since the last compaction
// (small, hot). A claim is acknowledged only after its record is on disk,
// so replay protection survives any crash: on open, the WAL is replayed on
// top of the snapshot's used-bitmap.
//
// Each record is a fixed 16-byte frame. Two record kinds share the frame,
// distinguished by magic:
//
//	claim ("CRPW"):
//	  offset 0  magic uint32 LE (walMagic)
//	  offset 4  seed  uint64 LE
//	  offset 12 crc32 uint32 LE (IEEE, over bytes 0..11)
//
//	epoch transition ("CRPE"):
//	  offset 0  magic uint32 LE (walEpochMagic)
//	  offset 4  from  uint32 LE (retired epoch)
//	  offset 8  to    uint32 LE (new epoch)
//	  offset 12 crc32 uint32 LE (IEEE, over bytes 0..11)
//
// The transition record is the commit point of an epoch cutover: once it is
// durable, the old epoch is retired — its seeds can never be claimed again,
// whatever else the crash interrupted (store.go's open-time recovery
// enforces this). Log-before-acknowledge applies to transitions exactly as
// it does to claims.
//
// Fixed-size CRC-framed records make the torn-write story simple: a crash
// mid-append leaves a short or CRC-failing frame at the tail, which open
// detects, truncates, and continues past — the interrupted claim was never
// acknowledged, so dropping it is correct. An invalid frame *followed by
// more data* cannot be a torn append and is reported as corruption.

const (
	walMagic      = 0x57505243 // "CRPW"
	walEpochMagic = 0x45505243 // "CRPE"
	walRecordSize = 16
)

// ErrWALCorrupt reports an invalid record in the interior of the WAL —
// damage no torn final append can explain.
var ErrWALCorrupt = errors.New("crpstore: claim WAL corrupted")

// walRecord is one decoded WAL record: a claim (transition == false, seed
// set) or an epoch transition (transition == true, from/to set).
type walRecord struct {
	transition bool
	seed       uint64
	from, to   uint32
}

// wal is an append-only claim log over one file.
type wal struct {
	f    *os.File
	sync bool // fsync after every append (durability vs throughput)
}

// openWAL opens (creating if absent) the claim log, validates it, and
// returns every durable record in append order. A torn tail is truncated
// away; interior corruption is an error.
func openWAL(path string, sync bool) (*wal, []walRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("crpstore: opening claim WAL: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("crpstore: reading claim WAL: %w", err)
	}
	var recs []walRecord
	valid := 0
	for valid+walRecordSize <= len(data) {
		rec := data[valid : valid+walRecordSize]
		magic := binary.LittleEndian.Uint32(rec[0:4])
		if (magic != walMagic && magic != walEpochMagic) ||
			binary.LittleEndian.Uint32(rec[12:16]) != crc32.ChecksumIEEE(rec[0:12]) {
			break
		}
		if magic == walEpochMagic {
			recs = append(recs, walRecord{
				transition: true,
				from:       binary.LittleEndian.Uint32(rec[4:8]),
				to:         binary.LittleEndian.Uint32(rec[8:12]),
			})
		} else {
			recs = append(recs, walRecord{seed: binary.LittleEndian.Uint64(rec[4:12])})
		}
		valid += walRecordSize
	}
	if tail := len(data) - valid; tail > walRecordSize {
		// More than one frame's worth of unparseable bytes: not a torn
		// append but real damage. Refuse to guess.
		f.Close()
		return nil, nil, fmt.Errorf("%w: invalid record at offset %d with %d bytes following",
			ErrWALCorrupt, valid, tail)
	} else if tail > 0 {
		walTornTails.Inc()
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("crpstore: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	walReplayedRecords.Add(uint64(len(recs)))
	return &wal{f: f, sync: sync}, recs, nil
}

// appendRecord writes one 16-byte frame. The record is on disk (and, in
// sync mode, fsynced) before appendRecord returns; only then may the
// operation it logs be acknowledged.
func (w *wal) appendRecord(rec [walRecordSize]byte, what string) error {
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(rec[0:12]))
	if _, err := w.f.Write(rec[:]); err != nil {
		return fmt.Errorf("crpstore: appending %s: %w", what, err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("crpstore: syncing claim WAL: %w", err)
		}
	}
	walAppends.Inc()
	return nil
}

// append logs one claim.
func (w *wal) append(seed uint64) error {
	var rec [walRecordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], walMagic)
	binary.LittleEndian.PutUint64(rec[4:12], seed)
	return w.appendRecord(rec, "claim")
}

// appendTransition logs one epoch transition — the durable commit point of
// a cutover. From the moment this record is on disk, epoch `from` is
// retired and none of its seeds may ever be claimed again.
func (w *wal) appendTransition(from, to uint32) error {
	var rec [walRecordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], walEpochMagic)
	binary.LittleEndian.PutUint32(rec[4:8], from)
	binary.LittleEndian.PutUint32(rec[8:12], to)
	return w.appendRecord(rec, "epoch transition")
}

// reset empties the log after its claims have been folded into a snapshot.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("crpstore: truncating claim WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) close() error { return w.f.Close() }
