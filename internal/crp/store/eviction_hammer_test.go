package store

import (
	"errors"
	"sync"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/rng"
)

// sameShardIDs returns n chip ids that all hash to one registry shard, so
// a per-shard LRU of one store evicts on every cross-device access.
func sameShardIDs(n int) []int {
	shardOf := func(id int) uint64 { return (uint64(uint(id)) * 0x9e3779b97f4a7c15) >> (64 - 4) }
	want := shardOf(1)
	out := []int{1}
	for id := 2; len(out) < n; id++ {
		if shardOf(id) == want {
			out = append(out, id)
		}
	}
	return out
}

// The eviction-vs-live-Handle hammer: with MaxOpen 1, every cross-device
// access closes the previously hot store, so handles constantly race their
// fetched *Store against eviction and claims constantly reload from disk.
// The property under test is the registry's reason to exist: an
// evicted-then-reloaded store never re-issues a seed some earlier claim
// (through any handle, before any eviction) already consumed — and the
// eviction race never surfaces as a spurious ErrClosed to the caller.
func TestRegistryEvictionNeverResurrectsSeeds(t *testing.T) {
	const (
		devices       = 3
		seedsPer      = 64
		workersPerDev = 4
	)
	ids := sameShardIDs(devices)
	root := t.TempDir()
	r, err := OpenRegistry(root, Options{MaxOpen: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	cfg := core.DefaultConfig()
	cfg.Width = 16
	design := core.MustNewDesign(cfg)
	seeds := make([]uint64, seedsPer)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	handles := make(map[int]*Handle, devices)
	for _, id := range ids {
		dev := core.MustNewDevice(design, rng.New(uint64(id)), id)
		if _, err := r.Enroll(dev, seeds, 0); err != nil {
			t.Fatal(err)
		}
		h, err := r.Handle(id)
		if err != nil {
			t.Fatal(err)
		}
		handles[id] = h
	}

	var (
		mu      sync.Mutex
		claimed = make(map[int][]uint64, devices)
	)
	var wg sync.WaitGroup
	errs := make(chan error, devices*workersPerDev)
	for _, id := range ids {
		for w := 0; w < workersPerDev; w++ {
			wg.Add(1)
			go func(id, w int) {
				defer wg.Done()
				h := handles[id]
				other := handles[ids[(indexOf(ids, id)+1)%len(ids)]]
				for {
					seed, err := h.NextUnused()
					if errors.Is(err, crp.ErrExhausted) {
						return
					}
					if err != nil {
						errs <- err
						return
					}
					mu.Lock()
					claimed[id] = append(claimed[id], seed)
					mu.Unlock()
					// Touch a sibling device between claims: with a
					// per-shard LRU of one this evicts our store, so the
					// next claim must reload and still honour this one.
					if _, err := other.ReferenceResponse(seed, w%8); err != nil {
						// The sibling may not have claimed this seed yet —
						// that refusal is fine; an ErrClosed leak is not.
						if errors.Is(err, ErrClosed) {
							errs <- err
							return
						}
					}
				}
			}(id, w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("hammer worker: %v", err)
	}

	for _, id := range ids {
		got := claimed[id]
		if len(got) != seedsPer {
			t.Fatalf("device %d: %d seeds claimed, want %d", id, len(got), seedsPer)
		}
		seen := make(map[uint64]bool, len(got))
		for _, s := range got {
			if seen[s] {
				t.Fatalf("device %d: seed %d claimed twice across eviction/reload", id, s)
			}
			if s < 1 || s > seedsPer {
				t.Fatalf("device %d: claimed unenrolled seed %d", id, s)
			}
			seen[s] = true
		}
		if rem := handles[id].Remaining(); rem != 0 {
			t.Fatalf("device %d: %d seeds remaining after exhaustion", id, rem)
		}
	}
}

func indexOf(ids []int, id int) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	return -1
}
