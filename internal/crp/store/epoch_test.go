package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"pufatt/internal/crp"
)

// The epoch lifecycle's crash matrix. Each test drives the store to one of
// the cutover protocol's kill points — before the transition record, after
// it but before the snapshot rename, after the rename with the staged file
// lost — by replaying the exact on-disk state such a crash leaves, then
// reopens and asserts the invariant that matters: a retired epoch's seeds
// are never claimable again, and an uncommitted cutover never becomes one.

// stageSeeds returns a per-epoch seed set disjoint from enrollN's 1..n, so
// cross-epoch confusion shows up as ErrUnknownSeed instead of aliasing.
func stageSeeds(epoch uint32, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(epoch)*1000 + uint64(i+1)
	}
	return out
}

// claimFrame / transitionFrame build the documented 16-byte WAL frames by
// hand — doubling as a format regression test: if the encoding drifts,
// these surgeries stop matching what openWAL accepts.
func claimFrame(seed uint64) []byte {
	rec := make([]byte, walRecordSize)
	binary.LittleEndian.PutUint32(rec[0:4], walMagic)
	binary.LittleEndian.PutUint64(rec[4:12], seed)
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(rec[0:12]))
	return rec
}

func transitionFrame(from, to uint32) []byte {
	rec := make([]byte, walRecordSize)
	binary.LittleEndian.PutUint32(rec[0:4], walEpochMagic)
	binary.LittleEndian.PutUint32(rec[4:8], from)
	binary.LittleEndian.PutUint32(rec[8:12], to)
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(rec[0:12]))
	return rec
}

func appendWAL(t *testing.T, dir string, frames ...[]byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, fr := range frames {
		if _, err := f.Write(fr); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEpochReenrollCycle: the happy path — stage, commit, fresh budget,
// old seeds gone, all of it durable across a clean reopen.
func TestEpochReenrollCycle(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 4)
	if st.Epoch() != 0 {
		t.Fatalf("fresh enrollment epoch = %d, want 0", st.Epoch())
	}
	if err := st.Claim(1); err != nil {
		t.Fatal(err)
	}

	dev := testDevice(t)
	dev.SetEpoch(1)
	if err := st.Reenroll(dev, stageSeeds(1, 3), 0); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 || st.Remaining() != 3 {
		t.Fatalf("after cutover: epoch=%d remaining=%d, want 1/3", st.Epoch(), st.Remaining())
	}
	// The old epoch's seeds are not claimable — not even the unused ones.
	for seed := uint64(1); seed <= 4; seed++ {
		if err := st.Claim(seed); !errors.Is(err, crp.ErrUnknownSeed) {
			t.Fatalf("old-epoch seed %d after cutover: %v, want ErrUnknownSeed", seed, err)
		}
	}
	if err := st.Claim(1001); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 1 || re.Remaining() != 2 {
		t.Fatalf("reopen: epoch=%d remaining=%d, want 1/2", re.Epoch(), re.Remaining())
	}
	if err := re.Claim(1001); !errors.Is(err, crp.ErrSeedUsed) {
		t.Fatalf("new-epoch claim lost across reopen: %v", err)
	}
}

// TestKillBeforeTransitionDiscardsStaging: the cutover dies after the
// staged snapshot is durable but before the transition record. The cutover
// never committed, so reopen must discard the staging file and leave the
// old epoch fully live — claims included.
func TestKillBeforeTransitionDiscardsStaging(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 4)
	if err := st.Claim(2); err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t)
	dev.SetEpoch(1)
	if _, err := st.StageEpoch(dev, stageSeeds(1, 3), 0); err != nil {
		t.Fatal(err)
	}
	st.Close() // kill: staged but never committed

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 0 || re.Retired() {
		t.Fatalf("uncommitted cutover changed the store: epoch=%d retired=%v", re.Epoch(), re.Retired())
	}
	if err := re.Claim(2); !errors.Is(err, crp.ErrSeedUsed) {
		t.Fatalf("old-epoch claim lost: %v", err)
	}
	if got := re.Remaining(); got != 3 {
		t.Fatalf("Remaining = %d, want 3", got)
	}
	if err := re.Claim(1001); !errors.Is(err, crp.ErrUnknownSeed) {
		t.Fatalf("staged seed leaked into the live epoch: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, stagingFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("staging file not discarded: %v", err)
	}
}

// TestKillAfterTransitionCompletesCutover: the cutover dies between the
// transition record (the commit point) and the snapshot rename. The staged
// file survived, so reopen must finish the rename: new epoch live, fresh
// budget, every old seed — claimed or not — gone for good.
func TestKillAfterTransitionCompletesCutover(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 4)
	if err := st.Claim(1); err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t)
	dev.SetEpoch(1)
	if _, err := st.StageEpoch(dev, stageSeeds(1, 3), 0); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Kill point: the transition record made it to the WAL, the rename did
	// not happen. (Commit does both under one lock; the crash state is
	// reconstructed on disk.)
	appendWAL(t, dir, transitionFrame(0, 1))

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("recovery from committed transition failed: %v", err)
	}
	defer re.Close()
	if re.Epoch() != 1 || re.Retired() {
		t.Fatalf("epoch=%d retired=%v, want live epoch 1", re.Epoch(), re.Retired())
	}
	if got := re.Remaining(); got != 3 {
		t.Fatalf("recovered budget = %d, want 3", got)
	}
	for seed := uint64(1); seed <= 4; seed++ {
		if err := re.Claim(seed); !errors.Is(err, crp.ErrUnknownSeed) {
			t.Fatalf("retired-epoch seed %d resurrected: %v", seed, err)
		}
	}
	if seed, epoch, err := re.NextUnusedWithEpoch(); err != nil || seed != 1001 || epoch != 1 {
		t.Fatalf("NextUnusedWithEpoch = (%d, %d, %v), want (1001, 1, nil)", seed, epoch, err)
	}
	if _, err := os.Stat(filepath.Join(dir, stagingFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("staging file still present after recovery rename: %v", err)
	}
}

// TestKillAfterTransitionStagingLostRetires: worst case — the transition
// committed and the staged enrollment was lost (crash before its rename,
// disk gave the file up). The old epoch is retired; the store must refuse
// every claim and reference until a re-enrollment installs the awaited
// epoch. Resurrecting the still-readable old snapshot would be the
// security bug this whole protocol exists to prevent.
func TestKillAfterTransitionStagingLostRetires(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 4)
	if err := st.Claim(1); err != nil {
		t.Fatal(err)
	}
	st.Close()
	appendWAL(t, dir, transitionFrame(0, 1)) // committed cutover, no staging file

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("retired store must open (observably), not error: %v", err)
	}
	if !re.Retired() || re.AwaitingEpoch() != 1 {
		t.Fatalf("retired=%v awaiting=%d, want true/1", re.Retired(), re.AwaitingEpoch())
	}
	if got := re.Remaining(); got != 0 {
		t.Fatalf("retired Remaining = %d, want 0", got)
	}
	// Every claim surface fails with ErrEpochRetired — which is an
	// exhausted budget to the attestation layer, not corruption.
	if err := re.Claim(2); !errors.Is(err, ErrEpochRetired) || !errors.Is(err, crp.ErrExhausted) {
		t.Fatalf("Claim on retired store: %v", err)
	}
	if _, _, err := re.NextUnusedWithEpoch(); !errors.Is(err, ErrEpochRetired) {
		t.Fatalf("NextUnusedWithEpoch on retired store: %v", err)
	}
	if _, err := re.ReferenceResponse(1, 0); !errors.Is(err, ErrEpochRetired) {
		t.Fatalf("ReferenceResponse on retired store: %v", err)
	}
	if err := re.Compact(); err != nil {
		t.Fatalf("Compact on retired store must be a safe no-op: %v", err)
	}
	re.Close()

	// Retirement is stable across another crash/reopen cycle.
	re2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !re2.Retired() {
		t.Fatal("retirement lost on second reopen")
	}

	// Recovery: re-enroll at the awaited epoch. Budget returns, old seeds
	// stay dead, and the recovered state is durable.
	dev := testDevice(t)
	dev.SetEpoch(1)
	if err := re2.Reenroll(dev, stageSeeds(1, 5), 0); err != nil {
		t.Fatalf("re-enrollment of retired store: %v", err)
	}
	if re2.Retired() || re2.Epoch() != 1 || re2.Remaining() != 5 {
		t.Fatalf("after recovery: retired=%v epoch=%d remaining=%d", re2.Retired(), re2.Epoch(), re2.Remaining())
	}
	if err := re2.Claim(1); !errors.Is(err, crp.ErrUnknownSeed) {
		t.Fatalf("retired-epoch seed claimable after recovery: %v", err)
	}
	re2.Close()
	re3, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re3.Close()
	if re3.Epoch() != 1 || re3.Remaining() != 5 {
		t.Fatalf("recovered enrollment not durable: epoch=%d remaining=%d", re3.Epoch(), re3.Remaining())
	}
}

// TestWALClaimsSplitByTransition: a crash between the cutover's rename and
// its WAL reset leaves old-epoch claims AND the transition AND new-epoch
// claims in one log, with the new snapshot live. Replay must skip
// everything before the transition (those seeds are not even enrolled any
// more — that is not corruption) and apply everything after it.
func TestWALClaimsSplitByTransition(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 4)
	dev := testDevice(t)
	dev.SetEpoch(1)
	if err := st.Reenroll(dev, stageSeeds(1, 3), 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Claim(1001); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Reconstruct the pre-reset WAL: old-epoch claims and the transition in
	// front of the post-cutover claim that is currently the log's only
	// record.
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	pre := append(claimFrame(1), claimFrame(2)...)
	pre = append(pre, transitionFrame(0, 1)...)
	if err := os.WriteFile(filepath.Join(dir, walFile), append(pre, data...), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("split WAL replay failed: %v", err)
	}
	defer re.Close()
	if re.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", re.Epoch())
	}
	if err := re.Claim(1001); !errors.Is(err, crp.ErrSeedUsed) {
		t.Fatalf("post-transition claim not replayed: %v", err)
	}
	if err := re.Claim(1002); err != nil {
		t.Fatal(err)
	}
	if got := re.Remaining(); got != 1 {
		t.Fatalf("Remaining = %d, want 1", got)
	}
}

// TestStageEpochOrder: epochs are monotonic. Staging at or below the live
// epoch fails; a retired store additionally refuses anything below the
// epoch its lost cutover committed to.
func TestStageEpochOrder(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 3)
	defer st.Close()
	dev := testDevice(t) // epoch 0 == store epoch
	if _, err := st.StageEpoch(dev, stageSeeds(0, 2), 0); !errors.Is(err, ErrEpochOrder) {
		t.Fatalf("staging the live epoch: %v, want ErrEpochOrder", err)
	}
	dev.SetEpoch(2)
	if err := st.Reenroll(dev, stageSeeds(2, 2), 0); err != nil {
		t.Fatal(err)
	}
	dev.SetEpoch(1)
	if _, err := st.StageEpoch(dev, stageSeeds(1, 2), 0); !errors.Is(err, ErrEpochOrder) {
		t.Fatalf("staging below the live epoch: %v, want ErrEpochOrder", err)
	}

	// Retired store awaiting epoch 5: epoch 3 is above the live snapshot but
	// below the committed target — still refused.
	dir2 := t.TempDir()
	st2 := enrollN(t, dir2, 3)
	st2.Close()
	appendWAL(t, dir2, transitionFrame(0, 5))
	re, err := Open(dir2, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	dev.SetEpoch(3)
	if _, err := re.StageEpoch(dev, stageSeeds(3, 2), 0); !errors.Is(err, ErrEpochOrder) {
		t.Fatalf("staging below the awaited epoch: %v, want ErrEpochOrder", err)
	}
	dev.SetEpoch(5)
	if err := re.Reenroll(dev, stageSeeds(5, 2), 0); err != nil {
		t.Fatalf("re-enrolling at the awaited epoch: %v", err)
	}
	if re.Epoch() != 5 || re.Retired() {
		t.Fatalf("epoch=%d retired=%v after awaited re-enrollment", re.Epoch(), re.Retired())
	}
}

// TestDiscardAbandonsStaging: Discard removes the staged file, the live
// epoch is untouched, and a later commit of the discarded staging fails
// instead of installing ghost state.
func TestDiscardAbandonsStaging(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 3)
	defer st.Close()
	dev := testDevice(t)
	dev.SetEpoch(1)
	staged, err := st.StageEpoch(dev, stageSeeds(1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := staged.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, stagingFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("staging survives Discard: %v", err)
	}
	if st.Epoch() != 0 || st.Remaining() != 3 {
		t.Fatalf("Discard touched the live epoch: epoch=%d remaining=%d", st.Epoch(), st.Remaining())
	}
	if err := staged.Commit(); err == nil {
		t.Fatal("committing a discarded staging succeeded")
	}
	// Double Discard is a no-op, not an error.
	if err := staged.Discard(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitIsMonotonic: a staged epoch can only be committed while it
// still advances the store — committing twice, or after a later cutover,
// fails with ErrEpochOrder.
func TestCommitIsMonotonic(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 3)
	defer st.Close()
	dev := testDevice(t)
	dev.SetEpoch(1)
	staged, err := st.StageEpoch(dev, stageSeeds(1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := staged.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := staged.Commit(); !errors.Is(err, ErrEpochOrder) {
		t.Fatalf("double Commit: %v, want ErrEpochOrder", err)
	}
}

// TestEpochCutoverClaimRace is the -race hammer: claimers hammer
// NextUnusedWithEpoch while a cutover stages and commits underneath them.
// Invariants under contention: (seed, epoch) pairs are never double-issued,
// every seed is reported under the epoch it belongs to (the atomic pair —
// no session can straddle the cutover), and the new epoch drains exactly
// once.
func TestEpochCutoverClaimRace(t *testing.T) {
	const n = 64
	dir := t.TempDir()
	st := enrollN(t, dir, n)
	defer st.Close()

	dev := testDevice(t)
	dev.SetEpoch(1)
	staged, err := st.StageEpoch(dev, stageSeeds(1, n), 0)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	claimed := make(map[[2]uint64]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seed, epoch, err := st.NextUnusedWithEpoch()
				if err != nil {
					if !errors.Is(err, crp.ErrExhausted) {
						t.Errorf("claim: %v", err)
						return
					}
					if epoch >= 1 {
						return // new epoch drained: done
					}
					runtime.Gosched() // old epoch dry, cutover pending
					continue
				}
				switch epoch {
				case 0:
					if seed < 1 || seed > n {
						t.Errorf("epoch 0 issued foreign seed %d", seed)
					}
				case 1:
					if seed < 1001 || seed > 1000+n {
						t.Errorf("epoch 1 issued foreign seed %d", seed)
					}
				default:
					t.Errorf("claim under unknown epoch %d", epoch)
				}
				mu.Lock()
				key := [2]uint64{uint64(epoch), seed}
				if claimed[key] {
					t.Errorf("seed %d double-issued in epoch %d", seed, epoch)
				}
				claimed[key] = true
				mu.Unlock()
			}
		}()
	}

	// Let the claimers drain roughly half the old budget, then cut over
	// while they are mid-flight.
	for st.Remaining() > n/2 {
		runtime.Gosched()
	}
	if err := staged.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if st.Epoch() != 1 || st.Remaining() != 0 {
		t.Fatalf("after race: epoch=%d remaining=%d, want 1/0", st.Epoch(), st.Remaining())
	}
	newClaims := 0
	for key := range claimed {
		if key[0] == 1 {
			newClaims++
		}
	}
	if newClaims != n {
		t.Fatalf("epoch 1 drained %d seeds, want %d", newClaims, n)
	}
}
