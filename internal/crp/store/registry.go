package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pufatt/internal/core"
)

// Registry scales the durable store across a fleet: one device directory
// per chip under a common root, opened lazily on first use and cached in a
// bounded LRU of hot stores. Device lookups are sharded — each shard owns
// an RWMutex over its slice of the id space — so a sweep claiming seeds
// for thousands of devices concurrently contends only within a shard, and
// the contention that does happen is counted
// (crpstore_shard_contention_total).
type Registry struct {
	root   string
	opts   Options
	shards [registryShards]regShard
}

const registryShards = 16

// DefaultMaxOpen bounds the registry's resident stores when Options.MaxOpen
// is zero.
const DefaultMaxOpen = 256

type regShard struct {
	mu    sync.RWMutex
	clock atomic.Uint64 // LRU timestamps; monotonic per shard
	open  map[int]*residentStore
}

type residentStore struct {
	st       *Store
	lastUsed atomic.Uint64
}

// OpenRegistry opens (creating if absent) a store registry rooted at dir.
// Device snapshots are not loaded here — each loads on first use.
func OpenRegistry(root string, opts Options) (*Registry, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("crpstore: creating registry root: %w", err)
	}
	r := &Registry{root: root, opts: opts}
	for i := range r.shards {
		r.shards[i].open = make(map[int]*residentStore)
	}
	return r, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// deviceDir returns the directory holding device id's snapshot and WAL.
func (r *Registry) deviceDir(id int) string {
	return fmt.Sprintf("%s%cdevice-%d", r.root, os.PathSeparator, id)
}

func (r *Registry) shard(id int) *regShard {
	// Fibonacci hashing spreads adjacent chip ids across shards.
	return &r.shards[(uint64(uint(id))*0x9e3779b97f4a7c15)>>(64-4)]
}

func (r *Registry) maxPerShard() int {
	max := r.opts.MaxOpen
	if max <= 0 {
		max = DefaultMaxOpen
	}
	per := max / registryShards
	if per < 1 {
		per = 1
	}
	return per
}

// lock acquires the shard exclusively, counting acquisitions that had to
// wait (the shard-contention telemetry the LRU sizing is tuned against).
func (sh *regShard) lock() {
	if !sh.mu.TryLock() {
		shardContention.Inc()
		sh.mu.Lock()
	}
}

// rlock is lock's shared-mode counterpart for the hot lookup path.
func (sh *regShard) rlock() {
	if !sh.mu.TryRLock() {
		shardContention.Inc()
		sh.mu.RLock()
	}
}

// Device returns device id's open store, loading its snapshot (and
// replaying its WAL) on first use. The returned handle may later be closed
// by LRU eviction; callers that hold stores across long stretches should
// use Handle, which re-fetches transparently.
func (r *Registry) Device(id int) (*Store, error) {
	sh := r.shard(id)
	sh.rlock()
	e := sh.open[id]
	if e != nil {
		e.lastUsed.Store(sh.clock.Add(1))
	}
	sh.mu.RUnlock()
	if e != nil {
		return e.st, nil
	}

	sh.lock()
	defer sh.mu.Unlock()
	if e := sh.open[id]; e != nil { // lost the load race: reuse the winner's
		e.lastUsed.Store(sh.clock.Add(1))
		return e.st, nil
	}
	st, err := Open(r.deviceDir(id), r.opts)
	if err != nil {
		return nil, err
	}
	r.insertLocked(sh, id, st)
	return st, nil
}

// insertLocked caches an open store in the shard, evicting the
// least-recently-used resident beyond the per-shard bound. Evicted stores
// are closed — their state is durable — and reload on next use.
func (r *Registry) insertLocked(sh *regShard, id int, st *Store) {
	e := &residentStore{st: st}
	e.lastUsed.Store(sh.clock.Add(1))
	sh.open[id] = e
	for len(sh.open) > r.maxPerShard() {
		victim, oldest := -1, uint64(0)
		for vid, ve := range sh.open {
			if vid == id {
				continue
			}
			if lu := ve.lastUsed.Load(); victim < 0 || lu < oldest {
				victim, oldest = vid, lu
			}
		}
		if victim < 0 {
			return
		}
		_ = sh.open[victim].st.Close()
		delete(sh.open, victim)
		evictions.Inc()
	}
}

// Enroll measures and installs a durable enrollment for the device under
// the registry root (parallel across workers; ≤0 = GOMAXPROCS) and caches
// the open store. It fails if the device already has an enrollment.
func (r *Registry) Enroll(dev *core.Device, seeds []uint64, workers int) (*Store, error) {
	id := dev.ChipID()
	sh := r.shard(id)
	sh.lock()
	defer sh.mu.Unlock()
	if _, open := sh.open[id]; open {
		return nil, fmt.Errorf("crpstore: device %d already enrolled", id)
	}
	st, err := Enroll(r.deviceDir(id), dev, seeds, workers, r.opts)
	if err != nil {
		return nil, err
	}
	r.insertLocked(sh, id, st)
	return st, nil
}

// Handle is an eviction-transparent view of one device's store: every
// operation routes through the registry, reloading the snapshot if the LRU
// closed it in the meantime. Handle implements core.ReferenceSource and
// the attestation layer's seed-budget surface.
type Handle struct {
	r    *Registry
	id   int
	bits int
}

// Handle returns an eviction-transparent handle for device id (loading the
// store once to validate it exists and learn its width).
func (r *Registry) Handle(id int) (*Handle, error) {
	st, err := r.Device(id)
	if err != nil {
		return nil, err
	}
	return &Handle{r: r, id: id, bits: st.ResponseBits()}, nil
}

// Source is Handle restated as the verifier pipeline's dependency.
func (r *Registry) Source(id int) (core.ReferenceSource, error) { return r.Handle(id) }

// ChipID returns the handle's device id.
func (h *Handle) ChipID() int { return h.id }

// ResponseBits implements core.ReferenceSource.
func (h *Handle) ResponseBits() int { return h.bits }

// withStoreRetries bounds how often withStore re-fetches after losing the
// fetch-to-use race against LRU eviction. One retry is enough when
// evictions are rare, but a hot registry sized below its working set (a
// per-shard LRU of 1 under a fleet sweep) can evict the same store several
// times between a handle's fetch and its claim; the bound keeps a genuine
// close loop from spinning forever while making spurious ErrClosed leaks
// to callers practically impossible.
const withStoreRetries = 16

// withStore runs op against the live store, re-fetching (bounded) when it
// raced an LRU eviction between fetch and use.
func (h *Handle) withStore(op func(*Store) error) error {
	for attempt := 0; ; attempt++ {
		st, err := h.r.Device(h.id)
		if err != nil {
			return err
		}
		err = op(st)
		if errors.Is(err, ErrClosed) && attempt < withStoreRetries {
			continue
		}
		return err
	}
}

// ReferenceResponse implements core.ReferenceSource.
func (h *Handle) ReferenceResponse(seed uint64, j int) ([]uint8, error) {
	var out []uint8
	err := h.withStore(func(st *Store) error {
		var err error
		out, err = st.ReferenceResponse(seed, j)
		return err
	})
	return out, err
}

// Claim durably claims a seed on the device's store.
func (h *Handle) Claim(seed uint64) error {
	return h.withStore(func(st *Store) error { return st.Claim(seed) })
}

// NextUnused durably claims the next unused seed on the device's store.
func (h *Handle) NextUnused() (uint64, error) {
	var seed uint64
	err := h.withStore(func(st *Store) error {
		var err error
		seed, err = st.NextUnused()
		return err
	})
	return seed, err
}

// NextUnusedWithEpoch durably claims the next unused seed and reports its
// epoch, atomically with respect to a concurrent cutover.
func (h *Handle) NextUnusedWithEpoch() (uint64, uint32, error) {
	var seed uint64
	var epoch uint32
	err := h.withStore(func(st *Store) error {
		var err error
		seed, epoch, err = st.NextUnusedWithEpoch()
		return err
	})
	return seed, epoch, err
}

// Epoch returns the device's live enrollment epoch.
func (h *Handle) Epoch() uint32 {
	var e uint32
	_ = h.withStore(func(st *Store) error {
		e = st.Epoch()
		return nil
	})
	return e
}

// Remaining returns the device's remaining authentication budget.
func (h *Handle) Remaining() int {
	n := 0
	_ = h.withStore(func(st *Store) error {
		n = st.Remaining()
		return nil
	})
	return n
}

// Devices lists the chip ids enrolled under the registry root, ascending.
func (r *Registry) Devices() ([]int, error) {
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, ok := strings.CutPrefix(e.Name(), "device-")
		if !ok {
			continue
		}
		id, err := strconv.Atoi(name)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// CompactAll folds every enrolled device's WAL into its snapshot.
func (r *Registry) CompactAll() error {
	ids, err := r.Devices()
	if err != nil {
		return err
	}
	for _, id := range ids {
		st, err := r.Device(id)
		if err != nil {
			return fmt.Errorf("crpstore: device %d: %w", id, err)
		}
		if err := st.Compact(); err != nil {
			return fmt.Errorf("crpstore: device %d: %w", id, err)
		}
	}
	return nil
}

// Close closes every resident store. The registry stays usable — a
// subsequent Device call reloads from disk — so Close doubles as a
// fleet-wide cache flush (and as the "crash" half of recovery tests).
func (r *Registry) Close() error {
	var first error
	for i := range r.shards {
		sh := &r.shards[i]
		sh.lock()
		for id, e := range sh.open {
			if err := e.st.Close(); err != nil && first == nil {
				first = err
			}
			delete(sh.open, id)
		}
		sh.mu.Unlock()
	}
	return first
}
