package store

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/rng"
)

func testFleet(t *testing.T, r *Registry, ids ...int) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Width = 16
	design := core.MustNewDesign(cfg)
	master := rng.New(9)
	for _, id := range ids {
		dev := core.MustNewDevice(design, master, id)
		if _, err := r.Enroll(dev, []uint64{1, 2, 3, 4}, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistryEnrollAndLookup(t *testing.T) {
	r, err := OpenRegistry(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	testFleet(t, r, 0, 1, 2)

	ids, err := r.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("Devices = %v", ids)
	}
	st, err := r.Device(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChipID() != 1 || st.Len() != 4 {
		t.Fatalf("device 1: chip=%d len=%d", st.ChipID(), st.Len())
	}
	if _, err := r.Device(99); err == nil {
		t.Fatal("unknown device opened")
	}
}

func TestRegistryRefusesDoubleEnroll(t *testing.T) {
	r, err := OpenRegistry(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	testFleet(t, r, 5)
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(9), 5)
	if _, err := r.Enroll(dev, []uint64{1}, 0); err == nil {
		t.Fatal("double enrollment accepted")
	}
}

func TestRegistrySurvivesRestart(t *testing.T) {
	root := t.TempDir()
	r, err := OpenRegistry(root, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	testFleet(t, r, 0, 1)
	h, err := r.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := h.NextUnused()
	if err != nil {
		t.Fatal(err)
	}
	r.Close() // the "crash"

	r2, err := OpenRegistry(root, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	h2, err := r2.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Claim(seed); !errors.Is(err, crp.ErrSeedUsed) {
		t.Fatalf("pre-crash claim forgotten: got %v, want ErrSeedUsed", err)
	}
	if h2.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", h2.Remaining())
	}
	// Device 0 was untouched pre-crash.
	h0, err := r2.Handle(0)
	if err != nil {
		t.Fatal(err)
	}
	if h0.Remaining() != 4 {
		t.Fatalf("device 0 Remaining = %d, want 4", h0.Remaining())
	}
}

func TestRegistryLRUEvictionTransparent(t *testing.T) {
	opts := testOptions()
	opts.MaxOpen = registryShards // one resident store per shard
	r, err := OpenRegistry(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Enough devices that some shard must hold two and evict one.
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	testFleet(t, r, ids...)

	resident := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		resident += len(sh.open)
		if len(sh.open) > 1 {
			t.Errorf("shard %d holds %d stores, bound is 1", i, len(sh.open))
		}
		sh.mu.Unlock()
	}
	if resident > registryShards {
		t.Fatalf("%d resident stores, bound %d", resident, registryShards)
	}

	// Handles keep working through eviction: claim one seed on every
	// device, which churns the LRU the whole way.
	handles := make([]*Handle, len(ids))
	for i, id := range ids {
		h, err := r.Handle(id)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for _, h := range handles {
		seed, err := h.NextUnused()
		if err != nil {
			t.Fatalf("device %d through eviction churn: %v", h.ChipID(), err)
		}
		ref, err := h.ReferenceResponse(seed, 0)
		if err != nil {
			t.Fatalf("device %d reference: %v", h.ChipID(), err)
		}
		if len(ref) != h.ResponseBits() {
			t.Fatalf("device %d: ref width %d", h.ChipID(), len(ref))
		}
	}
	for _, h := range handles {
		if h.Remaining() != 3 {
			t.Fatalf("device %d Remaining = %d, want 3", h.ChipID(), h.Remaining())
		}
	}
}

func TestRegistryHandleIsReferenceSource(t *testing.T) {
	r, err := OpenRegistry(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(9), 3)
	if _, err := r.Enroll(dev, []uint64{11, 22}, 0); err != nil {
		t.Fatal(err)
	}

	src, err := r.Source(3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.NewVerifierPipelineFrom(src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Handle(3)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := h.NextUnused()
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustNewPipeline(dev)
	out, err := p.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	z, err := v.Recover(seed, out.Helpers)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, out.Z) {
		t.Fatal("registry-backed recovery disagrees with prover z")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	opts := testOptions()
	opts.MaxOpen = registryShards // force eviction pressure during the race
	r, err := OpenRegistry(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	testFleet(t, r, ids...)

	var claimed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, id := range ids {
				h, err := r.Handle(id)
				if err != nil {
					t.Errorf("worker %d handle %d: %v", w, id, err)
					return
				}
				switch _, err := h.NextUnused(); {
				case err == nil:
					claimed.Add(1)
				case !errors.Is(err, crp.ErrExhausted):
					t.Errorf("worker %d device %d: %v", w, id, err)
				}
				h.Remaining()
				_ = i
			}
		}(w)
	}
	wg.Wait()
	// 12 devices × 4 seeds: every seed claimed exactly once across workers.
	if claimed.Load() != int64(len(ids)*4) {
		t.Fatalf("claimed %d seeds, want %d", claimed.Load(), len(ids)*4)
	}
}

func TestRegistryCompactAll(t *testing.T) {
	r, err := OpenRegistry(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	testFleet(t, r, 0, 1)
	for _, id := range []int{0, 1} {
		h, err := r.Handle(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.NextUnused(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.CompactAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1} {
		st, err := r.Device(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.WALRecords() != 0 {
			t.Fatalf("device %d WALRecords after CompactAll = %d", id, st.WALRecords())
		}
	}
}
