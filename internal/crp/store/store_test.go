package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/obfuscate"
	"pufatt/internal/rng"
)

func testDevice(t *testing.T) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Width = 16
	return core.MustNewDevice(core.MustNewDesign(cfg), rng.New(1), 7)
}

func testOptions() Options {
	// Tests exercise crash *consistency*, which NoSync preserves; skipping
	// fsync keeps the suite fast on slow filesystems.
	return Options{NoSync: true}
}

func enrollN(t *testing.T, dir string, n int) *Store {
	t.Helper()
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	st, err := Enroll(dir, testDevice(t), seeds, 0, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEnrollMatchesInMemoryDatabase(t *testing.T) {
	dev := testDevice(t)
	seeds := []uint64{3, 14, 159, 2653}
	db, err := crp.Enroll(dev, seeds)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Enroll(t.TempDir(), dev, seeds, 4, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.ChipID() != dev.ChipID() || st.Len() != db.Len() ||
		st.ResponseBits() != db.ResponseBits() {
		t.Fatalf("shape mismatch: chip=%d len=%d bits=%d", st.ChipID(), st.Len(), st.ResponseBits())
	}
	for _, seed := range seeds {
		if err := db.Claim(seed); err != nil {
			t.Fatal(err)
		}
		if err := st.Claim(seed); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < obfuscate.ResponsesPerOutput; j++ {
			want, err := db.ReferenceResponse(seed, j)
			if err != nil {
				t.Fatal(err)
			}
			got, err := st.ReferenceResponse(seed, j)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d ref %d: durable enrollment disagrees with in-memory", seed, j)
			}
		}
	}
}

func TestEnrollDeterministicAcrossWorkerCounts(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7}
	st1, err := Enroll(t.TempDir(), testDevice(t), seeds, 1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	st8, err := Enroll(t.TempDir(), testDevice(t), seeds, 8, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st8.Close()
	if !bytes.Equal(st1.snap.flat, st8.snap.flat) {
		t.Fatal("enrollment depends on worker count")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := &snapshot{
		chipID:  42,
		bits:    9,
		refsPer: 3,
		seeds:   []uint64{7, 11, 13, 17},
		used:    []bool{true, false, false, true},
		flat:    make([]uint8, 4*3*9),
	}
	for i := range s.flat {
		s.flat[i] = uint8(i % 2)
	}
	var buf bytes.Buffer
	if err := s.writeTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := readSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.chipID != s.chipID || got.bits != s.bits || got.refsPer != s.refsPer {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, seed := range s.seeds {
		if got.seeds[i] != seed || got.used[i] != s.used[i] {
			t.Fatalf("entry %d round-trip mismatch", i)
		}
	}
	if !bytes.Equal(got.flat, s.flat) {
		t.Fatal("reference matrix round-trip mismatch")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	s := &snapshot{chipID: 1, bits: 4, refsPer: 2, seeds: []uint64{9},
		used: []bool{false}, flat: []uint8{1, 0, 1, 0, 0, 1, 0, 1}}
	var buf bytes.Buffer
	if err := s.writeTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one payload byte: the CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[snapHeaderSize+2] ^= 0x40
	if _, err := readSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapChecksum) {
		t.Fatalf("corrupted payload: got %v, want ErrSnapChecksum", err)
	}

	// Wrong magic is a different failure: not our file at all.
	bad = append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := readSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("bad magic: got %v, want ErrNotSnapshot", err)
	}

	// Truncation must error, not yield a partial enrollment.
	if _, err := readSnapshot(bytes.NewReader(good[:len(good)-6])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestClaimSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 5)
	if err := st.Claim(2); err != nil {
		t.Fatal(err)
	}
	seed, err := st.NextUnused()
	if err != nil {
		t.Fatal(err)
	}
	if seed != 1 {
		t.Fatalf("NextUnused = %d, want 1", seed)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Claim(2); !errors.Is(err, crp.ErrSeedUsed) {
		t.Fatalf("claimed seed after reopen: got %v, want ErrSeedUsed", err)
	}
	if err := re.Claim(1); !errors.Is(err, crp.ErrSeedUsed) {
		t.Fatalf("NextUnused-claimed seed after reopen: got %v, want ErrSeedUsed", err)
	}
	if got := re.Remaining(); got != 3 {
		t.Fatalf("Remaining after reopen = %d, want 3", got)
	}
	if seed, err := re.NextUnused(); err != nil || seed != 3 {
		t.Fatalf("NextUnused after reopen = %d, %v; want 3", seed, err)
	}
}

func TestClaimSurvivesCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 6)
	for _, seed := range []uint64{1, 4} {
		if err := st.Claim(seed); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.WALRecords() != 0 {
		t.Fatalf("WALRecords after compact = %d", st.WALRecords())
	}
	// One more claim after compaction: lives only in the fresh WAL.
	if err := st.Claim(5); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, seed := range []uint64{1, 4, 5} {
		if err := re.Claim(seed); !errors.Is(err, crp.ErrSeedUsed) {
			t.Fatalf("seed %d after compact+reopen: got %v, want ErrSeedUsed", seed, err)
		}
	}
	if got := re.Remaining(); got != 3 {
		t.Fatalf("Remaining = %d, want 3", got)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.CompactEvery = 3
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7}
	st, err := Enroll(dir, testDevice(t), seeds, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 4; i++ {
		if _, err := st.NextUnused(); err != nil {
			t.Fatal(err)
		}
	}
	// The third claim crossed the threshold and folded; only the fourth
	// should remain in the log.
	if got := st.WALRecords(); got != 1 {
		t.Fatalf("WALRecords after auto-compaction = %d, want 1", got)
	}
}

func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 4)
	if err := st.Claim(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Claim(2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a crash mid-append: chop the last record short.
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer re.Close()
	// Seed 1's full record survives; seed 2's torn record is dropped — it
	// was never acknowledged, so it must be claimable again.
	if err := re.Claim(1); !errors.Is(err, crp.ErrSeedUsed) {
		t.Fatalf("seed 1: got %v, want ErrSeedUsed", err)
	}
	if err := re.Claim(2); err != nil {
		t.Fatalf("torn-tail seed 2 should be unclaimed: %v", err)
	}
	// The reopened WAL must have healed: a further reopen sees a clean log.
	re.Close()
	if re2, err := Open(dir, testOptions()); err != nil {
		t.Fatalf("reopen after heal: %v", err)
	} else {
		re2.Close()
	}
}

func TestInteriorWALCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 4)
	for _, seed := range []uint64{1, 2, 3} {
		if err := st.Claim(seed); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[walRecordSize+4] ^= 0xff // corrupt the middle record's seed
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("interior corruption: got %v, want ErrWALCorrupt", err)
	}
}

func TestWALRejectsUnenrolledSeed(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 2)
	st.Close()
	// Forge a valid-looking claim for a seed that was never enrolled.
	w, _, err := openWAL(filepath.Join(dir, walFile), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(999); err != nil {
		t.Fatal(err)
	}
	w.close()
	if _, err := Open(dir, testOptions()); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("unenrolled WAL seed: got %v, want ErrWALCorrupt", err)
	}
}

func TestCreateRefusesReEnrollment(t *testing.T) {
	dir := t.TempDir()
	st := enrollN(t, dir, 2)
	st.Close()
	if _, err := Enroll(dir, testDevice(t), []uint64{8, 9}, 0, testOptions()); err == nil {
		t.Fatal("re-enrollment over an existing store accepted")
	}
}

func TestUnclaimedReferenceRefused(t *testing.T) {
	st := enrollN(t, t.TempDir(), 2)
	defer st.Close()
	if _, err := st.ReferenceResponse(1, 0); err == nil {
		t.Fatal("reference served for unclaimed seed")
	}
	if _, err := st.ReferenceResponse(99, 0); !errors.Is(err, crp.ErrUnknownSeed) {
		t.Fatalf("unknown seed: got %v, want ErrUnknownSeed", err)
	}
}

// TestRecoveryPropertyRandomClaims drives random interleavings of Claim,
// NextUnused, Compact, and crash/reopen against an in-memory mirror: at
// every point the recovered durable state must equal the mirror exactly.
func TestRecoveryPropertyRandomClaims(t *testing.T) {
	const n = 32
	rnd := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		st := enrollN(t, dir, n)
		mirror := make(map[uint64]bool, n)

		for op := 0; op < 120; op++ {
			switch rnd.Intn(10) {
			case 0, 1, 2, 3: // direct claim of a random seed
				seed := uint64(rnd.Intn(n+4) + 1) // sometimes unknown
				err := st.Claim(seed)
				switch {
				case seed > n:
					if !errors.Is(err, crp.ErrUnknownSeed) {
						t.Fatalf("trial %d op %d: unknown seed: %v", trial, op, err)
					}
				case mirror[seed]:
					if !errors.Is(err, crp.ErrSeedUsed) {
						t.Fatalf("trial %d op %d: replay of %d: %v", trial, op, seed, err)
					}
				default:
					if err != nil {
						t.Fatalf("trial %d op %d: claim %d: %v", trial, op, seed, err)
					}
					mirror[seed] = true
				}
			case 4, 5, 6: // sequential claim
				seed, err := st.NextUnused()
				if len(mirror) == n {
					if !errors.Is(err, crp.ErrExhausted) {
						t.Fatalf("trial %d op %d: want exhausted, got %v", trial, op, err)
					}
				} else if err != nil {
					t.Fatalf("trial %d op %d: NextUnused: %v", trial, op, err)
				} else if mirror[seed] {
					t.Fatalf("trial %d op %d: NextUnused returned used seed %d", trial, op, seed)
				} else {
					mirror[seed] = true
				}
			case 7: // compact
				if err := st.Compact(); err != nil {
					t.Fatalf("trial %d op %d: compact: %v", trial, op, err)
				}
			default: // crash and recover
				st.Close()
				var err error
				st, err = Open(dir, testOptions())
				if err != nil {
					t.Fatalf("trial %d op %d: reopen: %v", trial, op, err)
				}
			}
		}

		// Final crash, then compare recovered state with the mirror.
		st.Close()
		re, err := Open(dir, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= n; seed++ {
			err := re.Claim(seed)
			if mirror[seed] && !errors.Is(err, crp.ErrSeedUsed) {
				t.Fatalf("trial %d: seed %d claimed pre-crash but recovered unclaimed (%v)", trial, seed, err)
			}
			if !mirror[seed] && err != nil {
				t.Fatalf("trial %d: seed %d unclaimed pre-crash but recovery says %v", trial, seed, err)
			}
		}
		re.Close()
	}
}

func TestStoreConcurrentClaims(t *testing.T) {
	const n, workers = 96, 8
	st := enrollN(t, t.TempDir(), n)
	defer st.Close()

	var ok, replays atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if w%2 == 0 {
					switch _, err := st.NextUnused(); {
					case err == nil:
						ok.Add(1)
					case !errors.Is(err, crp.ErrExhausted):
						t.Errorf("NextUnused: %v", err)
					}
				} else {
					switch err := st.Claim(uint64(i + 1)); {
					case err == nil:
						ok.Add(1)
					case errors.Is(err, crp.ErrSeedUsed):
						replays.Add(1)
					default:
						t.Errorf("Claim: %v", err)
					}
				}
				st.Remaining()
			}
		}(w)
	}
	wg.Wait()
	if ok.Load() != n {
		t.Fatalf("%d successful claims for %d seeds (replays=%d)", ok.Load(), n, replays.Load())
	}
	if st.Remaining() != 0 {
		t.Fatalf("Remaining = %d after full consumption", st.Remaining())
	}
	// All n durable: a reopen must reject every seed.
	st.Close()
	re, err := Open(st.Dir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Remaining() != 0 {
		t.Fatalf("Remaining after reopen = %d", re.Remaining())
	}
}

func TestVerifierPipelineFromStore(t *testing.T) {
	dev := testDevice(t)
	seeds := []uint64{100, 200, 300}
	st, err := Enroll(t.TempDir(), dev, seeds, 0, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	p := core.MustNewPipeline(dev)
	v, err := core.NewVerifierPipelineFrom(st)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := st.NextUnused()
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	z, err := v.Recover(seed, out.Helpers)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, out.Z) {
		t.Fatal("store-backed recovery disagrees with prover z")
	}
}
