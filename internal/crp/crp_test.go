package crp

import (
	"errors"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

func testDevice(t *testing.T) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Width = 16
	return core.MustNewDevice(core.MustNewDesign(cfg), rng.New(1), 0)
}

func TestEnrollAndVerifyFlow(t *testing.T) {
	dev := testDevice(t)
	seeds := []uint64{10, 20, 30}
	db, err := Enroll(dev, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 || db.Remaining() != 3 {
		t.Fatalf("Len=%d Remaining=%d", db.Len(), db.Remaining())
	}
	// Full reverse-FE verification through the database source.
	p := core.MustNewPipeline(dev)
	v, err := core.NewVerifierPipelineFrom(db)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := db.NextUnused()
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	z, err := v.Recover(seed, out.Helpers)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HammingDistance(z, out.Z) != 0 {
		t.Error("database-backed recovery disagrees with prover z")
	}
	if db.Remaining() != 2 {
		t.Errorf("Remaining after one authentication = %d", db.Remaining())
	}
}

func TestEnrollRejectsDuplicateSeeds(t *testing.T) {
	dev := testDevice(t)
	if _, err := Enroll(dev, []uint64{5, 5}); err == nil {
		t.Error("duplicate seeds accepted")
	}
}

func TestReplayProtection(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{1})
	if err := db.Claim(1); err != nil {
		t.Fatal(err)
	}
	if err := db.Claim(1); !errors.Is(err, ErrSeedUsed) {
		t.Errorf("second claim: %v, want ErrSeedUsed", err)
	}
}

func TestUnknownSeed(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{1})
	if err := db.Claim(99); !errors.Is(err, ErrUnknownSeed) {
		t.Errorf("unknown claim: %v", err)
	}
	if _, err := db.ReferenceResponse(99, 0); !errors.Is(err, ErrUnknownSeed) {
		t.Errorf("unknown lookup: %v", err)
	}
}

func TestReferenceRequiresClaim(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{1})
	if _, err := db.ReferenceResponse(1, 0); err == nil {
		t.Error("unclaimed reference lookup accepted")
	}
	db.Claim(1)
	if _, err := db.ReferenceResponse(1, 0); err != nil {
		t.Errorf("claimed lookup failed: %v", err)
	}
	if _, err := db.ReferenceResponse(1, 8); err == nil {
		t.Error("out-of-range reference index accepted")
	}
}

func TestExhaustion(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{1, 2})
	for i := 0; i < 2; i++ {
		if _, err := db.NextUnused(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.NextUnused(); !errors.Is(err, ErrExhausted) {
		t.Errorf("exhausted NextUnused: %v", err)
	}
	if db.Remaining() != 0 {
		t.Errorf("Remaining = %d", db.Remaining())
	}
}

func TestStorageScalesLinearly(t *testing.T) {
	dev := testDevice(t)
	seeds := make([]uint64, 50)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	db50, _ := Enroll(dev, seeds)
	db10, _ := Enroll(dev, seeds[:10])
	if db50.StorageBytes() != 5*db10.StorageBytes() {
		t.Errorf("storage not linear: %d vs %d", db50.StorageBytes(), db10.StorageBytes())
	}
	// 16-bit responses: 8 + 8*2 = 24 bytes per seed.
	if got := db10.StorageBytes(); got != 240 {
		t.Errorf("StorageBytes = %d, want 240", got)
	}
}

func TestReferencesMatchEmulator(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{7})
	db.Claim(7)
	em := dev.Emulator()
	for j := 0; j < 8; j++ {
		fromDB, err := db.ReferenceResponse(7, j)
		if err != nil {
			t.Fatal(err)
		}
		fromEm, _ := em.ReferenceResponse(7, j)
		if stats.HammingDistance(fromDB, fromEm) != 0 {
			t.Errorf("reference %d: database and emulator disagree", j)
		}
	}
}
