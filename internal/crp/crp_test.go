package crp

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

func testDevice(t *testing.T) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Width = 16
	return core.MustNewDevice(core.MustNewDesign(cfg), rng.New(1), 0)
}

func TestEnrollAndVerifyFlow(t *testing.T) {
	dev := testDevice(t)
	seeds := []uint64{10, 20, 30}
	db, err := Enroll(dev, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 || db.Remaining() != 3 {
		t.Fatalf("Len=%d Remaining=%d", db.Len(), db.Remaining())
	}
	// Full reverse-FE verification through the database source.
	p := core.MustNewPipeline(dev)
	v, err := core.NewVerifierPipelineFrom(db)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := db.NextUnused()
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	z, err := v.Recover(seed, out.Helpers)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HammingDistance(z, out.Z) != 0 {
		t.Error("database-backed recovery disagrees with prover z")
	}
	if db.Remaining() != 2 {
		t.Errorf("Remaining after one authentication = %d", db.Remaining())
	}
}

func TestEnrollRejectsDuplicateSeeds(t *testing.T) {
	dev := testDevice(t)
	if _, err := Enroll(dev, []uint64{5, 5}); err == nil {
		t.Error("duplicate seeds accepted")
	}
}

func TestReplayProtection(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{1})
	if err := db.Claim(1); err != nil {
		t.Fatal(err)
	}
	if err := db.Claim(1); !errors.Is(err, ErrSeedUsed) {
		t.Errorf("second claim: %v, want ErrSeedUsed", err)
	}
}

func TestUnknownSeed(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{1})
	if err := db.Claim(99); !errors.Is(err, ErrUnknownSeed) {
		t.Errorf("unknown claim: %v", err)
	}
	if _, err := db.ReferenceResponse(99, 0); !errors.Is(err, ErrUnknownSeed) {
		t.Errorf("unknown lookup: %v", err)
	}
}

func TestReferenceRequiresClaim(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{1})
	if _, err := db.ReferenceResponse(1, 0); err == nil {
		t.Error("unclaimed reference lookup accepted")
	}
	db.Claim(1)
	if _, err := db.ReferenceResponse(1, 0); err != nil {
		t.Errorf("claimed lookup failed: %v", err)
	}
	if _, err := db.ReferenceResponse(1, 8); err == nil {
		t.Error("out-of-range reference index accepted")
	}
}

func TestExhaustion(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{1, 2})
	for i := 0; i < 2; i++ {
		if _, err := db.NextUnused(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.NextUnused(); !errors.Is(err, ErrExhausted) {
		t.Errorf("exhausted NextUnused: %v", err)
	}
	if db.Remaining() != 0 {
		t.Errorf("Remaining = %d", db.Remaining())
	}
}

func TestStorageScalesLinearly(t *testing.T) {
	dev := testDevice(t)
	seeds := make([]uint64, 50)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	db50, _ := Enroll(dev, seeds)
	db10, _ := Enroll(dev, seeds[:10])
	if db50.StorageBytes() != 5*db10.StorageBytes() {
		t.Errorf("storage not linear: %d vs %d", db50.StorageBytes(), db10.StorageBytes())
	}
	// 16-bit responses: 8 + 8*2 = 24 bytes per seed.
	if got := db10.StorageBytes(); got != 240 {
		t.Errorf("StorageBytes = %d, want 240", got)
	}
}

// TestConcurrentClaims hammers Claim/NextUnused/Remaining/ReferenceResponse
// from parallel goroutines — the fleet-sweep access pattern. Run under
// -race (scripts/verify.sh does); the invariant checked here is that every
// seed is granted to exactly one claimer and the bookkeeping stays exact.
func TestConcurrentClaims(t *testing.T) {
	dev := testDevice(t)
	const n = 96
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	db, err := Enroll(dev, seeds)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var ok, replays atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, seed := range seeds {
				// Interleave the three entry points: direct claims (all
				// workers racing on the same seed), cursor claims, and the
				// read-side paths.
				switch i % 3 {
				case 0:
					switch err := db.Claim(seed); {
					case err == nil:
						ok.Add(1)
					case errors.Is(err, ErrSeedUsed):
						replays.Add(1)
					default:
						t.Errorf("Claim(%d): %v", seed, err)
					}
				case 1:
					if s, err := db.NextUnused(); err == nil {
						ok.Add(1)
						if _, err := db.ReferenceResponse(s, w%8); err != nil {
							t.Errorf("ReferenceResponse(%d): %v", s, err)
						}
					} else if !errors.Is(err, ErrExhausted) {
						t.Errorf("NextUnused: %v", err)
					}
				default:
					if r := db.Remaining(); r < 0 || r > n {
						t.Errorf("Remaining = %d out of range", r)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := ok.Load(); got != n {
		t.Errorf("successful claims = %d, want exactly %d", got, n)
	}
	if db.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhausting claims", db.Remaining())
	}
	if _, err := db.NextUnused(); !errors.Is(err, ErrExhausted) {
		t.Errorf("NextUnused after exhaustion: %v", err)
	}
}

// TestNextUnusedCountsNoSpuriousReplays pins the telemetry contract: seeds
// NextUnused skips because a direct Claim already consumed them are
// bookkeeping, not replay attempts, and must not inflate the
// crp_claims_total{result="replay"} counter.
func TestNextUnusedCountsNoSpuriousReplays(t *testing.T) {
	dev := testDevice(t)
	db, err := Enroll(dev, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Consume the first three seeds out of band, then check a real replay
	// still counts.
	for _, s := range []uint64{1, 2, 3} {
		if err := db.Claim(s); err != nil {
			t.Fatal(err)
		}
	}
	before := claims.With("replay").Value()
	seed, err := db.NextUnused() // skips 1,2,3; claims 4
	if err != nil || seed != 4 {
		t.Fatalf("NextUnused = %d, %v; want 4", seed, err)
	}
	if got := claims.With("replay").Value(); got != before {
		t.Errorf("skipping used seeds counted %d spurious replays", got-before)
	}
	if err := db.Claim(4); !errors.Is(err, ErrSeedUsed) {
		t.Fatalf("re-claim: %v", err)
	}
	if got := claims.With("replay").Value(); got != before+1 {
		t.Errorf("real replay attempt counted %d, want exactly 1", got-before)
	}
}

// TestRemainingMatchesScan asserts the O(1) unused counter against a full
// map scan through an interleaved claim sequence.
func TestRemainingMatchesScan(t *testing.T) {
	dev := testDevice(t)
	seeds := make([]uint64, 20)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	db, err := Enroll(dev, seeds)
	if err != nil {
		t.Fatal(err)
	}
	scan := func() int {
		db.mu.Lock()
		defer db.mu.Unlock()
		n := 0
		for _, e := range db.entries {
			if !e.used {
				n++
			}
		}
		return n
	}
	check := func(step string) {
		t.Helper()
		if got, want := db.Remaining(), scan(); got != want {
			t.Errorf("%s: Remaining = %d, scan = %d", step, got, want)
		}
	}
	check("fresh")
	db.Claim(7)
	check("after direct claim")
	db.NextUnused() // claims 1
	db.NextUnused() // claims 2
	check("after cursor claims")
	db.Claim(7) // replay: must not change the count
	db.Claim(99)
	check("after failed claims")
	for range seeds {
		db.NextUnused()
	}
	check("exhausted")
	if db.Remaining() != 0 {
		t.Errorf("Remaining = %d after claiming everything", db.Remaining())
	}
}

func TestReferencesMatchEmulator(t *testing.T) {
	dev := testDevice(t)
	db, _ := Enroll(dev, []uint64{7})
	db.Claim(7)
	em := dev.Emulator()
	for j := 0; j < 8; j++ {
		fromDB, err := db.ReferenceResponse(7, j)
		if err != nil {
			t.Fatal(err)
		}
		fromEm, _ := em.ReferenceResponse(7, j)
		if stats.HammingDistance(fromDB, fromEm) != 0 {
			t.Errorf("reference %d: database and emulator disagree", j)
		}
	}
}
