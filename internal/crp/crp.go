// Package crp implements the challenge/response-pair database verification
// path of Section 2: the verifier records reference responses before the
// device is deployed and consumes them one challenge seed per
// authentication.
//
// The paper names the two drawbacks this repository's experiments quantify
// against the emulation approach: the database's storage grows linearly
// with the number of supported authentications, and — because re-using a
// CRP would enable replay — each seed is single-use, bounding the device's
// lifetime authentication count by the enrollment effort.
package crp

import (
	"errors"
	"fmt"
	"sync"

	"pufatt/internal/core"
	"pufatt/internal/obfuscate"
)

// Errors returned by database lookups.
var (
	ErrUnknownSeed = errors.New("crp: challenge seed not enrolled")
	ErrSeedUsed    = errors.New("crp: challenge seed already consumed (replay protection)")
	ErrExhausted   = errors.New("crp: database exhausted")
)

type entry struct {
	refs [][]uint8 // eight reference raw responses
	used bool
}

// Database is an enrolled CRP store for one device. It implements
// core.ReferenceSource, so a core.VerifierPipeline can run off it directly.
//
// A Database is safe for concurrent use: Claim is the replay-protection
// boundary, and a fleet sweep claims seeds from many goroutines at once, so
// every method that touches claim state serialises on one mutex. Reference
// responses themselves are immutable after enrollment, so the slices
// ReferenceResponse returns need no further synchronisation.
type Database struct {
	bits   int
	chipID int
	epoch  uint32 // the device reconfiguration epoch the references were measured at

	mu      sync.Mutex
	order   []uint64 // enrollment order, for NextUnused
	entries map[uint64]*entry
	cursor  int
	unused  int // seeds not yet claimed; kept in sync by claim paths
}

// Enroll measures the device's noiseless reference responses for every
// challenge seed and records them. Enrollment happens in the trusted
// facility before deployment, so it uses the device's noiseless (averaged)
// behaviour.
func Enroll(dev *core.Device, seeds []uint64) (*Database, error) {
	db := &Database{
		bits:    dev.Design().ResponseBits(),
		chipID:  dev.ChipID(),
		epoch:   dev.Epoch(),
		entries: make(map[uint64]*entry, len(seeds)),
	}
	for _, seed := range seeds {
		if _, dup := db.entries[seed]; dup {
			return nil, fmt.Errorf("crp: duplicate enrollment seed %#x", seed)
		}
		refs := make([][]uint8, obfuscate.ResponsesPerOutput)
		for j := range refs {
			ch := dev.Design().ExpandChallenge(seed, j)
			refs[j] = append([]uint8(nil), dev.NoiselessResponse(ch)...)
		}
		db.entries[seed] = &entry{refs: refs}
		db.order = append(db.order, seed)
	}
	db.unused = len(db.order)
	enrolledSeeds.Add(uint64(len(db.order)))
	return db, nil
}

// ChipID returns the chip this database was enrolled for.
func (db *Database) ChipID() int { return db.chipID }

// Epoch returns the device reconfiguration epoch the database was enrolled
// at. Every reference in a Database belongs to one epoch; re-enrollment
// under a new epoch builds a new Database.
func (db *Database) Epoch() uint32 { return db.epoch }

// NextUnusedWithEpoch claims the next unused seed and reports the epoch it
// belongs to, atomically — the pair an epoch-negotiating verifier binds
// into one challenge.
func (db *Database) NextUnusedWithEpoch() (uint64, uint32, error) {
	seed, err := db.NextUnused()
	return seed, db.epoch, err
}

// ResponseBits implements core.ReferenceSource.
func (db *Database) ResponseBits() int { return db.bits }

// ReferenceResponse implements core.ReferenceSource. The seed must have
// been claimed (Claim or NextUnused) first; unclaimed seeds are rejected so
// that a protocol bug cannot silently bypass replay protection.
func (db *Database) ReferenceResponse(seed uint64, j int) ([]uint8, error) {
	db.mu.Lock()
	e, ok := db.entries[seed]
	used := ok && e.used
	db.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSeed
	}
	if !used {
		return nil, fmt.Errorf("crp: seed %#x not claimed before use", seed)
	}
	if j < 0 || j >= len(e.refs) {
		return nil, fmt.Errorf("crp: reference index %d out of range", j)
	}
	referenceLookups.Inc()
	return e.refs[j], nil
}

// Claim marks a seed as consumed. It fails on unknown or already-used
// seeds; a seed can never be claimed twice, even under concurrent claims.
func (db *Database) Claim(seed uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.claimLocked(seed)
}

// claimLocked is Claim under an already-held db.mu.
func (db *Database) claimLocked(seed uint64) error {
	e, ok := db.entries[seed]
	if !ok {
		claims.With("unknown").Inc()
		return ErrUnknownSeed
	}
	if e.used {
		claims.With("replay").Inc()
		return ErrSeedUsed
	}
	e.used = true
	db.unused--
	claims.With("ok").Inc()
	return nil
}

// NextUnused claims and returns the next unused seed in enrollment order.
// Seeds already consumed by direct Claim calls are skipped silently: a skip
// is bookkeeping, not a replay attempt, so it must not show up in the claim
// telemetry's "replay" count.
func (db *Database) NextUnused() (uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for db.cursor < len(db.order) {
		seed := db.order[db.cursor]
		db.cursor++
		if db.entries[seed].used {
			continue
		}
		if err := db.claimLocked(seed); err == nil {
			return seed, nil
		}
	}
	claims.With("exhausted").Inc()
	return 0, ErrExhausted
}

// Remaining returns how many authentications the database still supports.
// It is O(1): the unused count is maintained by the claim paths rather than
// recounted by a full map scan.
func (db *Database) Remaining() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.unused
}

// Len returns the number of enrolled seeds.
func (db *Database) Len() int { return len(db.entries) }

// StorageBytes returns the approximate storage the database requires: per
// seed, 8 bytes of seed plus eight reference responses of ResponseBits each.
// This is the scalability cost the emulation approach avoids.
func (db *Database) StorageBytes() int {
	perSeed := 8 + obfuscate.ResponsesPerOutput*((db.bits+7)/8)
	return perSeed * len(db.entries)
}
