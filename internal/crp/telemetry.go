package crp

import "pufatt/internal/telemetry"

// CRP-database throughput instruments. The claim counter's result label is
// the interesting one operationally: a rising "replay" count is either a
// protocol bug or an actual replay attempt, and "exhausted" claims signal a
// device near the end of its enrolled lifetime.
var (
	enrolledSeeds = telemetry.Default().Counter("crp_enrolled_seeds_total",
		"Challenge seeds enrolled into CRP databases.")
	claims = telemetry.Default().CounterVec("crp_claims_total",
		"Seed claims against CRP databases, by result.", "result")
	referenceLookups = telemetry.Default().Counter("crp_reference_lookups_total",
		"Reference-response lookups served from CRP databases.")
)
