// Package bch implements binary BCH error-correcting codes: generator
// construction from cyclotomic cosets, systematic encoding, syndrome
// computation, and Berlekamp–Massey + Chien-search decoding.
//
// The PUFatt helper-data scheme names a BCH[32,6,16] syndrome generator;
// package ecc instantiates that specific (shortened, Reed–Muller-equivalent)
// code directly, while this package provides the general BCH machinery for
// alternative response widths and for cross-checking the secure-sketch
// implementation (a BCH(31,6,t=7) code is the natural cyclic cousin of the
// paper's parameters).
package bch

import (
	"errors"
	"fmt"

	"pufatt/internal/gf2"
)

// Code is a binary primitive BCH code of length n = 2^m − 1 with designed
// error-correcting capability t, optionally shortened by s positions to
// length n − s.
type Code struct {
	field   *gf2.Field
	n       int // full cyclic length 2^m − 1
	k       int // message bits (after shortening)
	t       int // designed correctable errors
	shorten int
	gen     gf2.Poly
}

// ErrDecodeFailure is returned when the received word has more errors than
// the code can correct.
var ErrDecodeFailure = errors.New("bch: uncorrectable error pattern")

// New constructs the BCH code over GF(2^m) with designed distance 2t+1.
func New(m, t int) (*Code, error) {
	f, err := gf2.NewField(m)
	if err != nil {
		return nil, err
	}
	if t < 1 || 2*t >= f.N() {
		return nil, fmt.Errorf("bch: t=%d out of range for m=%d", t, m)
	}
	g := gf2.Poly{1}
	for i := 1; i <= 2*t; i++ {
		g = gf2.LCM(g, f.MinimalPolynomial(i))
	}
	k := f.N() - g.Degree()
	if k <= 0 {
		return nil, fmt.Errorf("bch: no message bits left (m=%d, t=%d)", m, t)
	}
	return &Code{field: f, n: f.N(), k: k, t: t, gen: g}, nil
}

// MustNew is New that panics on error.
func MustNew(m, t int) *Code {
	c, err := New(m, t)
	if err != nil {
		panic(err)
	}
	return c
}

// Shorten returns a copy of the code shortened by s message positions: the
// first s message bits are fixed to zero and not transmitted, giving an
// (n−s, k−s) code with the same t.
func (c *Code) Shorten(s int) (*Code, error) {
	if s < 0 || s >= c.k {
		return nil, fmt.Errorf("bch: cannot shorten (%d,%d) code by %d", c.N(), c.K(), s)
	}
	cc := *c
	cc.shorten = c.shorten + s
	return &cc, nil
}

// N returns the codeword length.
func (c *Code) N() int { return c.n - c.shorten }

// K returns the number of message bits.
func (c *Code) K() int { return c.k - c.shorten }

// T returns the designed number of correctable errors.
func (c *Code) T() int { return c.t }

// ParityBits returns n − k, the syndrome width.
func (c *Code) ParityBits() int { return c.n - c.k }

// Generator returns the generator polynomial.
func (c *Code) Generator() gf2.Poly { return c.gen.Clone() }

// full expands a (possibly shortened) word to full cyclic length by
// prepending zeros in the shortened (highest-degree message) positions.
// Bit layout: index 0..n-k-1 parity, n-k..n-1 message.
func (c *Code) full(word []uint8) []uint8 {
	if c.shorten == 0 {
		return word
	}
	fullWord := make([]uint8, c.n)
	copy(fullWord, word)
	return fullWord
}

// Encode systematically encodes the K()-bit message into an N()-bit
// codeword laid out as [parity | message].
func (c *Code) Encode(msg []uint8) ([]uint8, error) {
	if len(msg) != c.K() {
		return nil, fmt.Errorf("bch: message of %d bits, want %d", len(msg), c.K())
	}
	r := c.ParityBits()
	// m(x)·x^r mod g(x) gives the parity bits.
	p := make(gf2.Poly, r+len(msg))
	for i, b := range msg {
		p[r+i] = b & 1
	}
	rem := p.Mod(c.gen)
	cw := make([]uint8, c.N())
	for i := 0; i < r && i < len(rem); i++ {
		cw[i] = rem[i]
	}
	copy(cw[r:], msg)
	return cw, nil
}

// Message extracts the message bits from a codeword produced by Encode.
func (c *Code) Message(cw []uint8) []uint8 {
	msg := make([]uint8, c.K())
	copy(msg, cw[c.ParityBits():])
	return msg
}

// IsCodeword reports whether the word is a valid codeword (all syndromes
// zero).
func (c *Code) IsCodeword(word []uint8) bool {
	if len(word) != c.N() {
		return false
	}
	for _, s := range c.Syndromes(word) {
		if s != 0 {
			return false
		}
	}
	return true
}

// Syndromes returns S_1..S_2t with S_j = r(α^j), evaluated over the full
// cyclic length.
func (c *Code) Syndromes(word []uint8) []int {
	fw := c.full(word)
	syn := make([]int, 2*c.t)
	for j := 1; j <= 2*c.t; j++ {
		v := 0
		aj := c.field.Exp(j)
		// Horner over descending coefficient index.
		for i := len(fw) - 1; i >= 0; i-- {
			v = c.field.Mul(v, aj) ^ int(fw[i]&1)
		}
		syn[j-1] = v
	}
	return syn
}

// Decode corrects up to t bit errors in place on a copy of the received
// word, returning the corrected codeword and the number of bits corrected.
// It returns ErrDecodeFailure when the error pattern is uncorrectable.
func (c *Code) Decode(received []uint8) ([]uint8, int, error) {
	if len(received) != c.N() {
		return nil, 0, fmt.Errorf("bch: received word of %d bits, want %d", len(received), c.N())
	}
	syn := c.Syndromes(received)
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	out := make([]uint8, len(received))
	copy(out, received)
	if allZero {
		return out, 0, nil
	}
	locator, err := c.berlekampMassey(syn)
	if err != nil {
		return nil, 0, err
	}
	positions, err := c.chienSearch(locator)
	if err != nil {
		return nil, 0, err
	}
	for _, pos := range positions {
		if pos >= c.N() {
			// Error located in a shortened (always-zero) position: the
			// true pattern exceeded the code's capability.
			return nil, 0, ErrDecodeFailure
		}
		out[pos] ^= 1
	}
	if !c.IsCodeword(out) {
		return nil, 0, ErrDecodeFailure
	}
	return out, len(positions), nil
}

// berlekampMassey computes the error-locator polynomial Λ(x) from the
// syndromes, with coefficients in GF(2^m) (index = degree).
func (c *Code) berlekampMassey(syn []int) ([]int, error) {
	f := c.field
	lambda := []int{1} // Λ(x)
	b := []int{1}      // previous Λ
	l := 0             // current number of assumed errors
	mGap := 1
	bDisc := 1 // discrepancy when b was last Λ
	for n := 0; n < len(syn); n++ {
		// Compute discrepancy d = S_n + Σ λ_i·S_{n−i}.
		d := syn[n]
		for i := 1; i <= l && i < len(lambda); i++ {
			if n-i >= 0 {
				d ^= f.Mul(lambda[i], syn[n-i])
			}
		}
		if d == 0 {
			mGap++
			continue
		}
		// λ(x) ← λ(x) − (d/bDisc)·x^mGap·b(x)
		coef := f.Div(d, bDisc)
		next := make([]int, max(len(lambda), len(b)+mGap))
		copy(next, lambda)
		for i, bi := range b {
			next[i+mGap] ^= f.Mul(coef, bi)
		}
		if 2*l <= n {
			b = lambda
			bDisc = d
			l = n + 1 - l
			mGap = 1
		} else {
			mGap++
		}
		lambda = next
	}
	// Trim trailing zeros.
	for len(lambda) > 1 && lambda[len(lambda)-1] == 0 {
		lambda = lambda[:len(lambda)-1]
	}
	if len(lambda)-1 > c.t {
		return nil, ErrDecodeFailure
	}
	if l != len(lambda)-1 {
		return nil, ErrDecodeFailure
	}
	return lambda, nil
}

// chienSearch finds the error positions: i is an error position iff
// Λ(α^{−i}) = 0. Positions refer to coefficient index in the full word.
func (c *Code) chienSearch(lambda []int) ([]int, error) {
	f := c.field
	var positions []int
	for i := 0; i < c.n; i++ {
		x := f.Exp(-i)
		v := 0
		for d := len(lambda) - 1; d >= 0; d-- {
			v = f.Mul(v, x) ^ lambda[d]
		}
		if v == 0 {
			positions = append(positions, i)
		}
	}
	if len(positions) != len(lambda)-1 {
		return nil, ErrDecodeFailure // Λ does not split over the field
	}
	return positions, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
