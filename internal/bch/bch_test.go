package bch

import (
	"testing"

	"pufatt/internal/rng"
)

func TestKnownCodeParameters(t *testing.T) {
	cases := []struct{ m, t, wantN, wantK int }{
		{4, 1, 15, 11},
		{4, 2, 15, 7},
		{4, 3, 15, 5},
		{5, 1, 31, 26},
		{5, 2, 31, 21},
		{5, 3, 31, 16},
		{5, 5, 31, 11},
		{5, 7, 31, 6},
		{6, 2, 63, 51},
	}
	for _, c := range cases {
		code, err := New(c.m, c.t)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", c.m, c.t, err)
		}
		if code.N() != c.wantN || code.K() != c.wantK {
			t.Errorf("BCH(m=%d,t=%d) = (%d,%d), want (%d,%d)",
				c.m, c.t, code.N(), code.K(), c.wantN, c.wantK)
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(4, 8); err == nil {
		t.Error("t too large accepted")
	}
}

func TestEncodeProducesCodewords(t *testing.T) {
	code := MustNew(5, 3)
	src := rng.New(1)
	msg := make([]uint8, code.K())
	for trial := 0; trial < 100; trial++ {
		src.Bits(msg)
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cw) != code.N() {
			t.Fatalf("codeword length %d, want %d", len(cw), code.N())
		}
		if !code.IsCodeword(cw) {
			t.Fatalf("trial %d: Encode output fails syndrome check", trial)
		}
		got := code.Message(cw)
		for i := range msg {
			if got[i] != msg[i] {
				t.Fatalf("trial %d: systematic message bits corrupted", trial)
			}
		}
	}
}

func TestEncodeRejectsWrongLength(t *testing.T) {
	code := MustNew(5, 2)
	if _, err := code.Encode(make([]uint8, 3)); err == nil {
		t.Error("wrong-length message accepted")
	}
}

func TestDecodeCorrectsUpToT(t *testing.T) {
	for _, tc := range []struct{ m, t int }{{4, 2}, {5, 3}, {5, 7}, {6, 4}} {
		code := MustNew(tc.m, tc.t)
		src := rng.New(uint64(tc.m*100 + tc.t))
		msg := make([]uint8, code.K())
		for trial := 0; trial < 50; trial++ {
			src.Bits(msg)
			cw, _ := code.Encode(msg)
			nErr := 1 + src.Intn(code.T())
			corrupted := append([]uint8(nil), cw...)
			for _, pos := range src.Perm(code.N())[:nErr] {
				corrupted[pos] ^= 1
			}
			fixed, count, err := code.Decode(corrupted)
			if err != nil {
				t.Fatalf("BCH(m=%d,t=%d) trial %d: decode failed with %d errors: %v",
					tc.m, tc.t, trial, nErr, err)
			}
			if count != nErr {
				t.Fatalf("corrected %d errors, injected %d", count, nErr)
			}
			for i := range cw {
				if fixed[i] != cw[i] {
					t.Fatalf("decode returned wrong codeword at bit %d", i)
				}
			}
		}
	}
}

func TestDecodeCleanWord(t *testing.T) {
	code := MustNew(5, 3)
	msg := make([]uint8, code.K())
	msg[0] = 1
	cw, _ := code.Encode(msg)
	fixed, count, err := code.Decode(cw)
	if err != nil || count != 0 {
		t.Fatalf("clean decode: count=%d err=%v", count, err)
	}
	for i := range cw {
		if fixed[i] != cw[i] {
			t.Fatal("clean decode altered the word")
		}
	}
}

func TestDecodeDetectsOverload(t *testing.T) {
	// Beyond-t error patterns must either fail or decode to a valid (wrong)
	// codeword — never to a non-codeword.
	code := MustNew(5, 2)
	src := rng.New(7)
	msg := make([]uint8, code.K())
	failures := 0
	for trial := 0; trial < 200; trial++ {
		src.Bits(msg)
		cw, _ := code.Encode(msg)
		corrupted := append([]uint8(nil), cw...)
		for _, pos := range src.Perm(code.N())[:code.T()+3] {
			corrupted[pos] ^= 1
		}
		fixed, _, err := code.Decode(corrupted)
		if err != nil {
			failures++
			continue
		}
		if !code.IsCodeword(fixed) {
			t.Fatalf("trial %d: decoder returned a non-codeword", trial)
		}
	}
	if failures == 0 {
		t.Error("no overload pattern was ever rejected; detector seems inert")
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	code := MustNew(4, 2)
	if _, _, err := code.Decode(make([]uint8, 7)); err == nil {
		t.Error("wrong-length word accepted")
	}
}

func TestShortenedCode(t *testing.T) {
	// BCH(31,6,t=7) shortened by 5 → (26,1) still corrects 7 errors.
	base := MustNew(5, 7)
	code, err := base.Shorten(5)
	if err != nil {
		t.Fatal(err)
	}
	if code.N() != 26 || code.K() != 1 {
		t.Fatalf("shortened code = (%d,%d), want (26,1)", code.N(), code.K())
	}
	src := rng.New(9)
	for trial := 0; trial < 30; trial++ {
		msg := []uint8{uint8(trial & 1)}
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if !code.IsCodeword(cw) {
			t.Fatal("shortened encode not a codeword")
		}
		corrupted := append([]uint8(nil), cw...)
		for _, pos := range src.Perm(code.N())[:code.T()] {
			corrupted[pos] ^= 1
		}
		fixed, _, err := code.Decode(corrupted)
		if err != nil {
			t.Fatalf("trial %d: shortened decode failed: %v", trial, err)
		}
		for i := range cw {
			if fixed[i] != cw[i] {
				t.Fatal("shortened decode wrong")
			}
		}
	}
}

func TestShortenRejectsBadAmount(t *testing.T) {
	code := MustNew(4, 2) // (15,7)
	if _, err := code.Shorten(7); err == nil {
		t.Error("shortening away all message bits accepted")
	}
	if _, err := code.Shorten(-1); err == nil {
		t.Error("negative shorten accepted")
	}
}

func TestGeneratorDividesXnMinus1(t *testing.T) {
	for _, tc := range []struct{ m, t int }{{4, 2}, {5, 3}, {6, 3}} {
		code := MustNew(tc.m, tc.t)
		g := code.Generator()
		xn1 := make([]uint8, code.n+1)
		xn1[0] = 1
		xn1[code.n] = 1
		if !polyMod(xn1, g) {
			t.Errorf("BCH(m=%d,t=%d): g(x) does not divide x^n−1", tc.m, tc.t)
		}
	}
}

// polyMod reports whether g divides p (both as GF(2) coefficient slices).
func polyMod(p, g []uint8) bool {
	r := append([]uint8(nil), p...)
	dg := len(g) - 1
	for len(r)-1 >= dg {
		if r[len(r)-1] == 1 {
			off := len(r) - 1 - dg
			for i, c := range g {
				r[off+i] ^= c
			}
		}
		r = r[:len(r)-1]
	}
	for _, c := range r {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestParityBits(t *testing.T) {
	code := MustNew(5, 7) // (31,6): 25 parity bits
	if got := code.ParityBits(); got != 25 {
		t.Errorf("ParityBits = %d, want 25", got)
	}
}
