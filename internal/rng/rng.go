// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the PUFatt simulation stack.
//
// Reproducibility is a first-class requirement for the experiments in this
// repository: every simulated chip, every challenge stream and every noise
// source must be independently re-derivable from a single experiment seed.
// The package therefore offers named substreams ("chip/3/vth",
// "challenges/fig3", ...) derived with SplitMix64 from a FNV-hashed label,
// feeding an xoshiro256** core generator.
//
// The generators here are NOT cryptographically secure; protocol nonces in
// package attest use crypto/rand instead.
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances the state and returns the next output. It is used both
// for seeding xoshiro and for deriving substream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv1a64 hashes a label to a 64-bit value (FNV-1a).
func fnv1a64(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Source is a deterministic xoshiro256** generator. The zero value is not
// valid; use New or Source.Sub to construct one.
type Source struct {
	seed uint64 // the construction seed; substream derivation uses this,
	// not the mutable state, so Sub results do not depend on how far the
	// parent stream has advanced.
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// yield (with overwhelming probability) unrelated streams.
func New(seed uint64) *Source {
	src := &Source{}
	src.Reinit(seed)
	return src
}

// Reinit reseeds s in place, leaving it in exactly the state New(seed)
// constructs. It exists so hot loops (the parallel batch evaluator derives
// one noise stream per challenge) can reuse a worker-local Source instead of
// allocating one per item.
func (s *Source) Reinit(seed uint64) {
	s.seed = seed
	sm := seed
	for i := range s.s {
		s.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start in the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

// Sub derives an independent substream identified by label. Calling Sub with
// the same label on an identically-seeded Source always yields the same
// stream, and different labels yield unrelated streams. Sub does not advance
// the parent stream.
func (s *Source) Sub(label string) *Source {
	return New(s.SubSeed(label))
}

// SubSeed returns the seed Sub(label) would construct its stream from,
// for callers that reinitialise a preallocated Source (see Reinit).
func (s *Source) SubSeed(label string) uint64 {
	mix := s.seed
	mix ^= bits.RotateLeft64(splitmix64(&mix), 17) ^ fnv1a64(label)
	return mix
}

// SubN derives an independent substream identified by label and an index,
// convenient for per-chip or per-gate streams.
func (s *Source) SubN(label string, n int) *Source {
	return New(s.SubSeedN(label, n))
}

// SubSeedN returns the seed SubN(label, n) would construct its stream from,
// for callers that reinitialise a preallocated Source (see Reinit). The
// batch evaluator uses it to derive a per-challenge noise stream with no
// allocation: deterministic in (parent seed, label, n) only, so results do
// not depend on which worker evaluates which item.
func (s *Source) SubSeedN(label string, n int) uint64 {
	mix := s.seed
	mix ^= bits.RotateLeft64(splitmix64(&mix), 17) ^ fnv1a64(label) ^ (0x9e3779b97f4a7c15 * uint64(n+1))
	return mix
}

// Uint64 returns the next 64 pseudo-random bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Uses Lemire's multiply-shift rejection method.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniformly distributed boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Bit returns a uniformly distributed bit as a uint8 (0 or 1).
func (s *Source) Bit() uint8 { return uint8(s.Uint64() & 1) }

// Norm returns a normally distributed float64 with mean 0 and standard
// deviation 1, using the Marsaglia polar method.
func (s *Source) Norm() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// NormMS returns a normally distributed float64 with the given mean and
// standard deviation.
func (s *Source) NormMS(mean, sigma float64) float64 {
	return mean + sigma*s.Norm()
}

// Bits fills dst with independent uniform bits (one bit per element, values
// 0 or 1).
func (s *Source) Bits(dst []uint8) {
	var buf uint64
	var left int
	for i := range dst {
		if left == 0 {
			buf = s.Uint64()
			left = 64
		}
		dst[i] = uint8(buf & 1)
		buf >>= 1
		left--
	}
}

// Word returns a uniformly distributed n-bit word (n in [0,64]).
func (s *Source) Word(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return s.Uint64()
	}
	return s.Uint64() >> (64 - uint(n))
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
