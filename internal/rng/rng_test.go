package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from identical seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs out of 100", same)
	}
}

func TestSubStreamsAreStable(t *testing.T) {
	a := New(7).Sub("chip/0")
	b := New(7).Sub("chip/0")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("substream not reproducible at step %d", i)
		}
	}
}

func TestSubStreamsAreIndependentOfParentUse(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	p2.Uint64() // advancing the parent must not change the substream
	a := p1.Sub("x")
	b := p2.Sub("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Sub depends on parent stream position")
	}
}

func TestSubDifferentLabelsDiffer(t *testing.T) {
	p := New(7)
	if p.Sub("a").Uint64() == p.Sub("b").Uint64() {
		t.Fatal("different labels produced identical substreams")
	}
	if p.SubN("a", 0).Uint64() == p.SubN("a", 1).Uint64() {
		t.Fatal("different indices produced identical substreams")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bin %d: count %d too far from expected %.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestNormMS(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMS(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("NormMS mean = %v, want ~5", mean)
	}
}

func TestWord(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 5, 16, 32, 63, 64} {
		for i := 0; i < 100; i++ {
			v := r.Word(n)
			if n < 64 && v >= (uint64(1)<<uint(n)) {
				t.Fatalf("Word(%d) = %#x exceeds %d bits", n, v, n)
			}
		}
	}
	if New(1).Word(0) != 0 {
		t.Error("Word(0) != 0")
	}
}

func TestBits(t *testing.T) {
	r := New(19)
	buf := make([]uint8, 1000)
	r.Bits(buf)
	ones := 0
	for _, b := range buf {
		if b > 1 {
			t.Fatalf("Bits produced value %d", b)
		}
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Errorf("Bits produced %d ones in 1000, want ~500", ones)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, len(p))
		for _, v := range p {
			if v < 0 || v >= len(p) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBitBalance(t *testing.T) {
	r := New(23)
	const n = 64000
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(r.Bit())
	}
	if ones < n/2-600 || ones > n/2+600 {
		t.Errorf("Bit produced %d ones in %d draws", ones, n)
	}
}

func TestReinitMatchesNew(t *testing.T) {
	var s Source
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		s.Reinit(seed)
		fresh := New(seed)
		for i := 0; i < 16; i++ {
			if got, want := s.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("seed %#x output %d: Reinit %#x, New %#x", seed, i, got, want)
			}
		}
		// Substream derivation must also match, since it keys off the
		// construction seed.
		if s.SubSeedN("x", 3) != fresh.SubSeedN("x", 3) {
			t.Fatalf("seed %#x: SubSeedN diverges after Reinit", seed)
		}
	}
}

func TestSubSeedMatchesSub(t *testing.T) {
	base := New(99)
	a := base.Sub("noise")
	b := New(base.SubSeed("noise"))
	c := base.SubN("noise", 7)
	d := New(base.SubSeedN("noise", 7))
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SubSeed stream diverges from Sub")
		}
		if c.Uint64() != d.Uint64() {
			t.Fatal("SubSeedN stream diverges from SubN")
		}
	}
}

func TestSubSeedNDistinctPerIndex(t *testing.T) {
	base := New(7)
	seen := make(map[uint64]int)
	for n := 0; n < 1000; n++ {
		seed := base.SubSeedN("item", n)
		if prev, dup := seen[seed]; dup {
			t.Fatalf("SubSeedN collision between items %d and %d", prev, n)
		}
		seen[seed] = n
	}
}
