package mcu

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a memory image plus the symbol
// table.
type Program struct {
	Words   []uint32
	Symbols map[string]uint32
}

// Assemble translates assembler source into a memory image. Two passes:
// the first collects label addresses, the second encodes.
//
// Syntax (one statement per line, ';' or '#' start a comment):
//
//	label:
//	    add  rd, rs1, rs2        ; R-format: sub and or xor shl shr ror mul sltu
//	    addi rd, rs1, imm        ; I-format: andi ori xori shli shri muli
//	    lui  rd, imm
//	    ld   rd, rs1, imm        ; rd = mem[rs1+imm]
//	    st   rd, rs1, imm        ; mem[rs1+imm] = rd
//	    beq  rs1, rs2, label     ; bne bltu bgeu (relative)
//	    jmp  label               ; jal rd, label ; jr rs1
//	    pstart
//	    pend rd
//	    halt
//	    li   rd, imm32           ; pseudo: addi or lui+ori
//	    mov  rd, rs              ; pseudo: add rd, rs, r0
//	    nop                      ; pseudo: add r0, r0, r0
//	    .word value|label        ; literal data word
//	    .space n                 ; n zero words
//
// Immediates are decimal or 0x-hex, optionally negative.
func Assemble(src string) (*Program, error) {
	type stmt struct {
		line   int
		label  string // set for label-only processing
		mnem   string
		args   []string
		addr   uint32
		nWords int
	}
	var stmts []stmt
	symbols := make(map[string]uint32)
	addr := uint32(0)

	// Pass 1: tokenize, assign addresses, collect labels.
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("mcu: line %d: malformed label %q", ln+1, label)
			}
			if _, dup := symbols[label]; dup {
				return nil, fmt.Errorf("mcu: line %d: duplicate label %q", ln+1, label)
			}
			symbols[label] = addr
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		s := stmt{line: ln + 1, mnem: strings.ToLower(fields[0]), args: fields[1:], addr: addr, nWords: 1}
		switch s.mnem {
		case "li":
			// Worst case two words; decide now for stable addresses.
			if len(s.args) == 2 {
				if v, err := parseImm(s.args[1], symbols, false); err == nil && v >= MinImm && v <= MaxImm {
					s.nWords = 1
				} else {
					s.nWords = 2
				}
			}
		case ".space":
			if len(s.args) != 1 {
				return nil, fmt.Errorf("mcu: line %d: .space needs a count", s.line)
			}
			n, err := strconv.ParseInt(s.args[0], 0, 32)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("mcu: line %d: bad .space count %q", s.line, s.args[0])
			}
			s.nWords = int(n)
		}
		addr += uint32(s.nWords)
		stmts = append(stmts, s)
	}

	// Pass 2: encode.
	p := &Program{Words: make([]uint32, 0, addr), Symbols: symbols}
	emit := func(w uint32) { p.Words = append(p.Words, w) }
	for _, s := range stmts {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("mcu: line %d (%s): %s", s.line, s.mnem, fmt.Sprintf(format, args...))
		}
		need := func(n int) error {
			if len(s.args) != n {
				return fail("want %d operands, have %d", n, len(s.args))
			}
			return nil
		}
		switch s.mnem {
		case "add", "sub", "and", "or", "xor", "shl", "shr", "ror", "mul", "sltu":
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err1 := parseReg(s.args[0])
			rs1, err2 := parseReg(s.args[1])
			rs2, err3 := parseReg(s.args[2])
			if err := firstErr(err1, err2, err3); err != nil {
				return nil, fail("%v", err)
			}
			emit(EncodeR(rOps[s.mnem], rd, rs1, rs2))
		case "addi", "andi", "ori", "xori", "shli", "shri", "muli", "ld", "st":
			if err := need(3); err != nil {
				return nil, err
			}
			rd, err1 := parseReg(s.args[0])
			rs1, err2 := parseReg(s.args[1])
			imm, err3 := parseImm(s.args[2], symbols, false)
			if err := firstErr(err1, err2, err3); err != nil {
				return nil, fail("%v", err)
			}
			if err := checkImm(s.mnem, imm); err != nil {
				return nil, fail("%v", err)
			}
			emit(EncodeI(iOps[s.mnem], rd, rs1, imm))
		case "lui":
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err1 := parseReg(s.args[0])
			imm, err2 := parseImm(s.args[1], symbols, true)
			if err := firstErr(err1, err2); err != nil {
				return nil, fail("%v", err)
			}
			emit(EncodeI(OpLui, rd, 0, imm))
		case "beq", "bne", "bltu", "bgeu":
			if err := need(3); err != nil {
				return nil, err
			}
			rs1, err1 := parseReg(s.args[0])
			rs2, err2 := parseReg(s.args[1])
			target, err3 := parseImm(s.args[2], symbols, true)
			if err := firstErr(err1, err2, err3); err != nil {
				return nil, fail("%v", err)
			}
			var off int32
			if _, isLabel := symbols[s.args[2]]; isLabel {
				off = target - int32(s.addr) - 1
			} else {
				off = target
			}
			if off < MinImm || off > MaxImm {
				return nil, fail("branch offset %d out of range", off)
			}
			// Branches carry rs1 in the rd slot and rs2 in the rs1 slot.
			emit(EncodeI(branchOps[s.mnem], rs1, rs2, off))
		case "jmp":
			if err := need(1); err != nil {
				return nil, err
			}
			tgt, err := parseImm(s.args[0], symbols, true)
			if err != nil {
				return nil, fail("%v", err)
			}
			emit(EncodeI(OpJmp, 0, 0, tgt))
		case "jal":
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err1 := parseReg(s.args[0])
			tgt, err2 := parseImm(s.args[1], symbols, true)
			if err := firstErr(err1, err2); err != nil {
				return nil, fail("%v", err)
			}
			emit(EncodeI(OpJal, rd, 0, tgt))
		case "jr":
			if err := need(1); err != nil {
				return nil, err
			}
			rs1, err := parseReg(s.args[0])
			if err != nil {
				return nil, fail("%v", err)
			}
			emit(EncodeI(OpJr, 0, rs1, 0))
		case "pstart":
			if err := need(0); err != nil {
				return nil, err
			}
			emit(EncodeR(OpPstart, 0, 0, 0))
		case "pend":
			if err := need(1); err != nil {
				return nil, err
			}
			rd, err := parseReg(s.args[0])
			if err != nil {
				return nil, fail("%v", err)
			}
			emit(EncodeR(OpPend, rd, 0, 0))
		case "halt":
			if err := need(0); err != nil {
				return nil, err
			}
			emit(EncodeR(OpHalt, 0, 0, 0))
		case "nop":
			if err := need(0); err != nil {
				return nil, err
			}
			emit(EncodeR(OpAdd, 0, 0, 0))
		case "mov":
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err1 := parseReg(s.args[0])
			rs, err2 := parseReg(s.args[1])
			if err := firstErr(err1, err2); err != nil {
				return nil, fail("%v", err)
			}
			emit(EncodeR(OpAdd, rd, rs, 0))
		case "li":
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err1 := parseReg(s.args[0])
			v, err2 := parseImm(s.args[1], symbols, true)
			if err := firstErr(err1, err2); err != nil {
				return nil, fail("%v", err)
			}
			if s.nWords == 1 {
				emit(EncodeI(OpAddi, rd, 0, v))
			} else {
				u := uint32(v)
				emit(EncodeI(OpLui, rd, 0, int32(u>>14)))
				emit(EncodeI(OpOri, rd, rd, int32(u&0x3fff)))
			}
		case ".word":
			if err := need(1); err != nil {
				return nil, err
			}
			v, err := parseImm(s.args[0], symbols, true)
			if err != nil {
				return nil, fail("%v", err)
			}
			emit(uint32(v))
		case ".space":
			for i := 0; i < s.nWords; i++ {
				emit(0)
			}
		default:
			return nil, fail("unknown mnemonic")
		}
		if len(p.Words) != int(s.addr)+s.nWords {
			return nil, fail("internal: emitted %d words, expected %d", len(p.Words)-int(s.addr), s.nWords)
		}
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for programs embedded in
// this repository.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

var rOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "and": OpAnd, "or": OpOr, "xor": OpXor,
	"shl": OpShl, "shr": OpShr, "ror": OpRor, "mul": OpMul, "sltu": OpSltu,
}

var iOps = map[string]Op{
	"addi": OpAddi, "andi": OpAndi, "ori": OpOri, "xori": OpXori,
	"shli": OpShli, "shri": OpShri, "muli": OpMuli, "ld": OpLd, "st": OpSt,
}

var branchOps = map[string]Op{
	"beq": OpBeq, "bne": OpBne, "bltu": OpBltu, "bgeu": OpBgeu,
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

// parseImm parses a numeric immediate or a label reference. When wide is
// true, the full 32-bit range is allowed (for li/.word/lui/jumps); otherwise
// the value must be representable later via checkImm.
func parseImm(s string, symbols map[string]uint32, wide bool) (int32, error) {
	s = strings.TrimSpace(s)
	if v, ok := symbols[s]; ok {
		return int32(v), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if wide {
		if v < -(1<<31) || v > (1<<32)-1 {
			return 0, fmt.Errorf("immediate %d exceeds 32 bits", v)
		}
		return int32(uint32(v)), nil
	}
	return int32(v), nil
}

// checkImm validates immediate ranges per mnemonic: sign-extended ops take
// [-2^17, 2^17); zero-extended logical ops take [0, 2^18).
func checkImm(mnem string, imm int32) error {
	switch mnem {
	case "andi", "ori", "xori", "shli", "shri":
		if imm < 0 || imm > immMask {
			return fmt.Errorf("immediate %d outside [0,%d]", imm, immMask)
		}
	default:
		if imm < MinImm || imm > MaxImm {
			return fmt.Errorf("immediate %d outside [%d,%d]", imm, MinImm, MaxImm)
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
