package mcu

import (
	"errors"
	"fmt"
	"math/bits"
)

// PUFPort is the hardware PUF post-processing block the pstart/pend
// instructions talk to. Implementations: DevicePort (backed by the
// simulated ALU PUF) and NullPort (a CPU without the extension).
type PUFPort interface {
	// Begin resets the port for a new PUF() invocation (pstart).
	Begin()
	// Feed races the ALUs with one operand pair (the add instruction in
	// PUF mode). It returns the extra cycles the query occupies beyond the
	// plain add.
	Feed(a, b uint32) (extraCycles uint64, err error)
	// Finish returns the obfuscated output z (pend) once exactly
	// obfuscate.ResponsesPerOutput pairs have been fed.
	Finish() (z uint32, err error)
}

// NullPort rejects PUF-mode operation; a CPU with a NullPort models a
// commodity processor without the PUFatt extension.
type NullPort struct{}

// Begin implements PUFPort.
func (NullPort) Begin() {}

// Feed implements PUFPort.
func (NullPort) Feed(a, b uint32) (uint64, error) {
	return 0, errors.New("mcu: this CPU has no PUF datapath")
}

// Finish implements PUFPort.
func (NullPort) Finish() (uint32, error) {
	return 0, errors.New("mcu: this CPU has no PUF datapath")
}

// Fault describes a CPU execution fault; the CPU stops at the faulting
// instruction.
type Fault struct {
	PC     uint32
	Reason string
}

// Error implements error.
func (f *Fault) Error() string { return fmt.Sprintf("mcu: fault at pc=%d: %s", f.PC, f.Reason) }

// CPU is the cycle-accurate prover processor: 16 32-bit registers (r0 is
// hardwired to zero), a unified word-addressed memory (the attestation
// checksum hashes its own program memory), and the PUF-mode extension.
type CPU struct {
	Regs [16]uint32
	PC   uint32
	Mem  []uint32
	// FreqHz is the core clock; Time() = Cycles/FreqHz. The clock also
	// reaches the PUF datapath — overclocking shortens the race window
	// (configured on the DevicePort).
	FreqHz float64
	Cycles uint64
	Port   PUFPort

	// Pipelined switches the timing model to a classic 5-stage in-order
	// pipeline: CPI 1 with a one-cycle load-use interlock, a two-cycle
	// flush on taken branches and jumps, and a multi-cycle EX for MUL.
	// (The paper notes that in generic pipelined architectures the memory
	// stage is the critical path — here it is the stage whose hazard
	// dominates the stall count.) Functional behaviour is identical; only
	// cycle accounting changes.
	Pipelined bool

	pufMode bool
	halted  bool
	fault   *Fault
	// lastLoadRd tracks the destination of the immediately preceding load
	// for the load-use interlock (-1 when the previous instruction was not
	// a load).
	lastLoadRd int
}

// New returns a CPU with the given memory image (shared, not copied), clock
// frequency, and PUF port (nil → NullPort).
func New(mem []uint32, freqHz float64, port PUFPort) *CPU {
	if port == nil {
		port = NullPort{}
	}
	return &CPU{Mem: mem, FreqHz: freqHz, Port: port, lastLoadRd: -1}
}

// Halted reports whether the CPU has executed halt.
func (c *CPU) Halted() bool { return c.halted }

// Faulted returns the fault that stopped the CPU, or nil.
func (c *CPU) Faulted() error {
	if c.fault == nil {
		return nil
	}
	return c.fault
}

// InPUFMode reports whether the CPU is between pstart and pend.
func (c *CPU) InPUFMode() bool { return c.pufMode }

// TimeSeconds returns elapsed wall-clock time at the configured frequency.
func (c *CPU) TimeSeconds() float64 { return float64(c.Cycles) / c.FreqHz }

func (c *CPU) setFault(reason string) {
	c.fault = &Fault{PC: c.PC, Reason: reason}
}

// Step executes one instruction. It returns false when the CPU can no
// longer advance (halted or faulted).
func (c *CPU) Step() bool {
	if c.halted || c.fault != nil {
		return false
	}
	if int(c.PC) >= len(c.Mem) {
		c.setFault("program counter outside memory")
		return false
	}
	d := Decode(c.Mem[c.PC])
	var cost uint64
	if c.Pipelined {
		cost = c.pipelineCost(d)
	} else {
		cost = CycleCost(d.Op)
	}
	next := c.PC + 1
	switch d.Op {
	case OpHalt:
		c.halted = true
	case OpAdd:
		sum := c.Regs[d.Rs1] + c.Regs[d.Rs2]
		if c.pufMode {
			extra, err := c.Port.Feed(c.Regs[d.Rs1], c.Regs[d.Rs2])
			if err != nil {
				c.setFault("puf feed: " + err.Error())
				return false
			}
			cost += extra
		}
		c.Regs[d.Rd] = sum
	case OpSub:
		c.Regs[d.Rd] = c.Regs[d.Rs1] - c.Regs[d.Rs2]
	case OpAnd:
		c.Regs[d.Rd] = c.Regs[d.Rs1] & c.Regs[d.Rs2]
	case OpOr:
		c.Regs[d.Rd] = c.Regs[d.Rs1] | c.Regs[d.Rs2]
	case OpXor:
		c.Regs[d.Rd] = c.Regs[d.Rs1] ^ c.Regs[d.Rs2]
	case OpShl:
		c.Regs[d.Rd] = c.Regs[d.Rs1] << (c.Regs[d.Rs2] & 31)
	case OpShr:
		c.Regs[d.Rd] = c.Regs[d.Rs1] >> (c.Regs[d.Rs2] & 31)
	case OpRor:
		c.Regs[d.Rd] = bits.RotateLeft32(c.Regs[d.Rs1], -int(c.Regs[d.Rs2]&31))
	case OpMul:
		c.Regs[d.Rd] = c.Regs[d.Rs1] * c.Regs[d.Rs2]
	case OpSltu:
		if c.Regs[d.Rs1] < c.Regs[d.Rs2] {
			c.Regs[d.Rd] = 1
		} else {
			c.Regs[d.Rd] = 0
		}
	case OpAddi:
		c.Regs[d.Rd] = c.Regs[d.Rs1] + uint32(d.Imm)
	case OpAndi:
		c.Regs[d.Rd] = c.Regs[d.Rs1] & d.UImm()
	case OpOri:
		c.Regs[d.Rd] = c.Regs[d.Rs1] | d.UImm()
	case OpXori:
		c.Regs[d.Rd] = c.Regs[d.Rs1] ^ d.UImm()
	case OpShli:
		c.Regs[d.Rd] = c.Regs[d.Rs1] << (d.UImm() & 31)
	case OpShri:
		c.Regs[d.Rd] = c.Regs[d.Rs1] >> (d.UImm() & 31)
	case OpMuli:
		c.Regs[d.Rd] = c.Regs[d.Rs1] * uint32(d.Imm)
	case OpLui:
		c.Regs[d.Rd] = d.UImm() << 14
	case OpLd:
		addr := c.Regs[d.Rs1] + uint32(d.Imm)
		if int(addr) >= len(c.Mem) {
			c.setFault(fmt.Sprintf("load from %d outside memory", addr))
			return false
		}
		c.Regs[d.Rd] = c.Mem[addr]
	case OpSt:
		addr := c.Regs[d.Rs1] + uint32(d.Imm)
		if int(addr) >= len(c.Mem) {
			c.setFault(fmt.Sprintf("store to %d outside memory", addr))
			return false
		}
		c.Mem[addr] = c.Regs[d.Rd]
	case OpBeq, OpBne, OpBltu, OpBgeu:
		a, b := c.Regs[d.Rd], c.Regs[d.Rs1] // branches use rd/rs1 slots
		taken := false
		switch d.Op {
		case OpBeq:
			taken = a == b
		case OpBne:
			taken = a != b
		case OpBltu:
			taken = a < b
		case OpBgeu:
			taken = a >= b
		}
		if taken {
			next = uint32(int64(c.PC) + 1 + int64(d.Imm))
			if c.Pipelined {
				cost += 2 // flush the fetched wrong-path instructions
			} else {
				cost++
			}
		}
	case OpJmp:
		next = d.UImm()
	case OpJal:
		c.Regs[d.Rd] = c.PC + 1
		next = d.UImm()
	case OpJr:
		next = c.Regs[d.Rs1]
	case OpPstart:
		if c.pufMode {
			c.setFault("pstart while already in PUF mode")
			return false
		}
		c.pufMode = true
		c.Port.Begin()
	case OpPend:
		if !c.pufMode {
			c.setFault("pend outside PUF mode")
			return false
		}
		z, err := c.Port.Finish()
		if err != nil {
			c.setFault("puf finish: " + err.Error())
			return false
		}
		c.Regs[d.Rd] = z
		c.pufMode = false
		cost++ // the post-processing handoff
	default:
		c.setFault("illegal opcode " + d.Op.String())
		return false
	}
	c.Regs[0] = 0 // r0 is hardwired zero
	if d.Op == OpLd {
		c.lastLoadRd = d.Rd
	} else {
		c.lastLoadRd = -1
	}
	c.Cycles += cost
	c.PC = next
	return !c.halted
}

// pipelineCost returns the issue cost of an instruction under the 5-stage
// model, excluding the taken-branch flush (added at resolution) and the
// PUF-port surcharge (added by the port).
func (c *CPU) pipelineCost(d Decoded) uint64 {
	cost := uint64(1)
	switch d.Op {
	case OpMul, OpMuli:
		cost += 2 // multi-cycle EX
	case OpJmp, OpJal, OpJr:
		cost += 2 // unconditional redirect flushes two slots
	}
	if c.lastLoadRd > 0 && c.readsReg(d, c.lastLoadRd) {
		cost++ // load-use interlock: one bubble
	}
	return cost
}

// readsReg reports whether the instruction reads register r in its source
// operand slots (format-dependent).
func (c *CPU) readsReg(d Decoded, r int) bool {
	switch d.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpRor, OpMul, OpSltu:
		return d.Rs1 == r || d.Rs2 == r
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpMuli, OpLd:
		return d.Rs1 == r
	case OpSt:
		return d.Rs1 == r || d.Rd == r // address base and store data
	case OpBeq, OpBne, OpBltu, OpBgeu:
		return d.Rd == r || d.Rs1 == r // branches compare rd/rs1 slots
	case OpJr:
		return d.Rs1 == r
	default:
		return false
	}
}

// Run executes until halt, fault, or the cycle budget is exhausted. It
// returns an error for faults and budget exhaustion, nil on a clean halt.
func (c *CPU) Run(maxCycles uint64) error {
	for c.Step() {
		if c.Cycles > maxCycles {
			return fmt.Errorf("mcu: cycle budget %d exhausted at pc=%d", maxCycles, c.PC)
		}
	}
	if c.fault != nil {
		return c.fault
	}
	return nil
}
