package mcu

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property-based tests of the ISA encoding and assembler.

func TestPropEncodeDecodeR(t *testing.T) {
	f := func(op, rd, rs1, rs2 uint8) bool {
		o := Op(op % uint8(numOps))
		d := Decode(EncodeR(o, int(rd%16), int(rs1%16), int(rs2%16)))
		return d.Op == o && d.Rd == int(rd%16) && d.Rs1 == int(rs1%16) && d.Rs2 == int(rs2%16)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEncodeDecodeImm(t *testing.T) {
	f := func(raw int32) bool {
		imm := raw % (1 << 17) // signed 18-bit range
		d := Decode(EncodeI(OpAddi, 1, 2, imm))
		return d.Imm == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDisassembleReassembles(t *testing.T) {
	// For every R/I-format instruction the disassembly must re-assemble to
	// the identical word (branches/jumps disassemble numeric targets that
	// re-assemble as absolute immediates, so they are checked separately).
	ops := []Op{OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpRor, OpMul, OpSltu}
	f := func(opIdx, rd, rs1, rs2 uint8) bool {
		w := EncodeR(ops[int(opIdx)%len(ops)], int(rd%16), int(rs1%16), int(rs2%16))
		p, err := Assemble(Disassemble(w))
		return err == nil && len(p.Words) == 1 && p.Words[0] == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	g := func(rd, rs1 uint8, raw int32) bool {
		imm := raw % 10000
		w := EncodeI(OpAddi, int(rd%16), int(rs1%16), imm)
		p, err := Assemble(Disassemble(w))
		return err == nil && len(p.Words) == 1 && p.Words[0] == w
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropAssemblerErrorsNeverPanic(t *testing.T) {
	// Arbitrary garbage source must produce an error, never a panic.
	f := func(s string) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("assembler panicked on %q", s)
			}
		}()
		_, err := Assemble(s)
		// Empty/comment-only inputs legitimately succeed with 0 words.
		if err == nil {
			p, _ := Assemble(s)
			_ = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// And a few targeted nasties.
	for _, s := range []string{":", "a::b:", "li", ".word", "\x00\x01", "add r1,r2,r3 extra"} {
		if _, err := Assemble(s); err == nil && !strings.HasPrefix(s, ";") {
			// ":" alone defines an empty label — malformed, must error.
			if s == ":" || s == "a::b:" {
				t.Errorf("malformed label %q accepted", s)
			}
		}
	}
}

func TestPropCPUNeverPanicsOnRandomMemory(t *testing.T) {
	// Executing arbitrary words must fault or halt, never panic.
	f := func(words []uint32) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 64 {
			words = words[:64]
		}
		defer func() {
			if recover() != nil {
				t.Error("CPU panicked on random memory")
			}
		}()
		mem := append([]uint32(nil), words...)
		c := New(mem, 1e6, nil)
		c.Run(2000) //nolint:errcheck
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
