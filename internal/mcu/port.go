package mcu

import (
	"errors"
	"fmt"

	"pufatt/internal/core"
	"pufatt/internal/ecc"
	"pufatt/internal/obfuscate"
	"pufatt/internal/rng"
)

// DevicePort couples a simulated ALU PUF device to the CPU's PUF-mode
// instructions, implementing the paper's post-processing chain in
// "hardware": temporal majority voting, the syndrome generator (helper
// data), and the XOR obfuscation network. Raw responses and network
// internals never reach software; only z (via pend) and the helper-data
// FIFO (drained by the device's communication stack, DrainHelpers) escape.
//
// The port latches PUF responses on the CPU clock: the race window per
// query is one CPU cycle minus the register setup time, so overclocking the
// CPU past the datapath's settling time corrupts responses exactly as
// Section 4.2 describes.
//
// Two corruption mechanisms compose. Per-challenge, bits whose races have
// not resolved by the latch deadline resolve randomly (core.Device's
// ClockedResponse). On top of that, the port implements the paper's
// worst-case condition T_ALU + T_set < T_cycle with a matched-delay timing
// monitor: the response registers' latch enable is gated by a delay line
// replicating the datapath's critical path, so when the cycle undercuts the
// static worst case the enable itself misfires and every bit latches from a
// metastable arbiter. This is the hardware realisation of "the base clock
// frequency must be carefully chosen so that any attempt to increase the
// clock ... results in wrong PUF responses".
type DevicePort struct {
	dev    *core.Device
	sketch *ecc.Sketch
	net    *obfuscate.Network
	// Votes is the temporal majority-voting factor per query (odd).
	Votes int
	// SetupPs is the response register setup time T_set.
	SetupPs float64
	// CyclePs is the clock period T_cycle driving the PUF latch; wire it
	// to the CPU clock via SetClock.
	CyclePs float64

	active    bool
	count     int
	responses [][]uint8
	helpers   []uint64
	z         uint32
	meta      *rng.Source // metastable latch resolution under the monitor
}

// NewDevicePort builds a port over a device. The device's response width
// must have a sketch instance (16 or 32 bits).
func NewDevicePort(dev *core.Device) (*DevicePort, error) {
	bits := dev.Design().ResponseBits()
	code, err := ecc.ForResponseWidth(bits)
	if err != nil {
		return nil, fmt.Errorf("mcu: %w", err)
	}
	if bits > 32 {
		return nil, fmt.Errorf("mcu: %d-bit responses exceed the 32-bit pend register", bits)
	}
	return &DevicePort{
		dev:     dev,
		sketch:  ecc.NewSketch(code),
		net:     obfuscate.MustNew(bits),
		Votes:   5,
		SetupPs: 20,
		CyclePs: 2000,
		meta:    rng.New(0x19e7a57ab1e ^ uint64(dev.ChipID())),
	}, nil
}

// MustNewDevicePort is NewDevicePort that panics on error.
func MustNewDevicePort(dev *core.Device) *DevicePort {
	p, err := NewDevicePort(dev)
	if err != nil {
		panic(err)
	}
	return p
}

// Device returns the underlying PUF device.
func (p *DevicePort) Device() *core.Device { return p.dev }

// SetClock derives the PUF latch period from a CPU frequency in hertz.
func (p *DevicePort) SetClock(freqHz float64) {
	p.CyclePs = 1e12 / freqHz
}

// MinReliableFreqMarginHz returns the highest CPU frequency at which the
// PUF datapath still settles within a cycle (critical path + setup), i.e.
// the boundary frequency F_{ALU+set} of Section 4.2.
func (p *DevicePort) MaxReliableFreqHz() float64 {
	return 1e12 / (p.dev.CriticalPathPs() + p.SetupPs)
}

// Begin implements PUFPort.
func (p *DevicePort) Begin() {
	p.active = true
	p.count = 0
	p.responses = p.responses[:0]
}

// Feed implements PUFPort: one add-in-PUF-mode query.
func (p *DevicePort) Feed(a, b uint32) (uint64, error) {
	if !p.active {
		return 0, errors.New("mcu: PUF feed before pstart")
	}
	if p.count >= obfuscate.ResponsesPerOutput {
		return 0, fmt.Errorf("mcu: more than %d PUF queries before pend", obfuscate.ResponsesPerOutput)
	}
	ch := p.dev.Design().ChallengeFromOperands(uint64(a), uint64(b))
	bits := p.dev.Design().ResponseBits()
	y := make([]uint8, bits)
	if p.CyclePs < p.dev.CriticalPathPs()+p.SetupPs {
		// Worst-case timing monitor violated: the latch enable misfires
		// and all bits sample metastable arbiters.
		p.meta.Bits(y)
	} else {
		counts := make([]int, bits)
		for v := 0; v < p.Votes; v++ {
			r, _ := p.dev.ClockedResponse(ch, p.CyclePs, p.SetupPs)
			for i, bit := range r {
				counts[i] += int(bit)
			}
		}
		for i, ccount := range counts {
			if 2*ccount > p.Votes {
				y[i] = 1
			}
		}
	}
	h, err := p.sketch.Generate(y)
	if err != nil {
		return 0, err
	}
	p.helpers = append(p.helpers, h)
	p.responses = append(p.responses, y)
	p.count++
	// Each vote occupies one clock of the race plus one latch cycle.
	return uint64(p.Votes) + 1, nil
}

// Finish implements PUFPort.
func (p *DevicePort) Finish() (uint32, error) {
	if !p.active {
		return 0, errors.New("mcu: pend before pstart")
	}
	if p.count != obfuscate.ResponsesPerOutput {
		return 0, fmt.Errorf("mcu: pend after %d queries, need %d", p.count, obfuscate.ResponsesPerOutput)
	}
	z, err := p.net.Apply(p.responses)
	if err != nil {
		return 0, err
	}
	p.active = false
	p.z = uint32(ecc.BitsToWord(z))
	return p.z, nil
}

// StubPort is a PUFPort with the same cycle behaviour as a DevicePort but
// no PUF: Feed costs Votes+1 cycles and Finish returns zero. It exists so
// the verifier can dry-run a program for its cycle count without a device
// (attestation programs have data-independent control flow).
type StubPort struct {
	Votes int
	count int
}

// Begin implements PUFPort.
func (s *StubPort) Begin() { s.count = 0 }

// Feed implements PUFPort.
func (s *StubPort) Feed(a, b uint32) (uint64, error) {
	if s.count >= 8 {
		return 0, errors.New("mcu: stub port overfed")
	}
	s.count++
	return uint64(s.Votes) + 1, nil
}

// Finish implements PUFPort.
func (s *StubPort) Finish() (uint32, error) {
	if s.count != 8 {
		return 0, fmt.Errorf("mcu: stub pend after %d queries", s.count)
	}
	s.count = 0
	return 0, nil
}

// DrainHelpers returns and clears the helper-data FIFO. The prover's
// communication stack calls this to ship helper data to the verifier; the
// attested software itself has no instruction that can reach it.
func (p *DevicePort) DrainHelpers() []uint64 {
	h := p.helpers
	p.helpers = nil
	return h
}
