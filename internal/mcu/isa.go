// Package mcu implements the embedded prover substrate of PUFatt: a small
// 32-bit load/store CPU with a cycle-accurate timing model, a two-pass
// assembler, and the paper's instruction-set extension — pstart and pend —
// that couples the processor's redundant ALUs to the PUF post-processing
// logic (Section 2, "Architectural Support").
//
// In PUF mode (between pstart and pend), the ordinary add instruction both
// computes its sum and stimulates the two redundant ALUs with its operands,
// racing them as a PUF query; pend reads the obfuscated result. The raw
// responses and the obfuscation network's internal registers never become
// architecturally visible, exactly as the paper requires.
package mcu

import "fmt"

// Op is an opcode.
type Op uint8

// Instruction opcodes. R-format ops take (rd, rs1, rs2); I-format ops take
// (rd, rs1, imm18); branches take (rs1, rs2, offset); JMP takes an absolute
// word address.
const (
	OpHalt Op = iota
	// R-format ALU.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpRor
	OpMul
	OpSltu // rd = (rs1 < rs2) unsigned
	// I-format ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpMuli
	OpLui // rd = imm18 << 14
	// Memory (word addressed): rd = mem[rs1+imm] / mem[rs1+imm] = rd.
	OpLd
	OpSt
	// Control flow.
	OpBeq
	OpBne
	OpBltu
	OpBgeu
	OpJmp
	OpJal // rd = pc+1; pc = addr
	OpJr  // pc = rs1
	// PUF-mode extension.
	OpPstart
	OpPend
	numOps
)

var opNames = [...]string{
	"halt", "add", "sub", "and", "or", "xor", "shl", "shr", "ror", "mul", "sltu",
	"addi", "andi", "ori", "xori", "shli", "shri", "muli", "lui",
	"ld", "st",
	"beq", "bne", "bltu", "bgeu", "jmp", "jal", "jr",
	"pstart", "pend",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Instruction field layout (32-bit words):
//
//	[31:26] opcode
//	[25:22] rd   (or rs1 for branches)
//	[21:18] rs1  (or rs2 for branches)
//	[17:14] rs2  (R-format)
//	[17:0]  imm18 (I-format, branches, jumps)
const (
	immBits = 18
	immMask = 1<<immBits - 1
	immSign = 1 << (immBits - 1)
	// MaxImm and MinImm bound signed 18-bit immediates.
	MaxImm = immSign - 1
	MinImm = -immSign
)

// EncodeR packs an R-format instruction (rs2 occupies imm bits [17:14]).
func EncodeR(op Op, rd, rs1, rs2 int) uint32 {
	return uint32(op)<<26 | uint32(rd&0xf)<<22 | uint32(rs1&0xf)<<18 | uint32(rs2&0xf)<<14
}

// EncodeI packs an I-format instruction with a signed 18-bit immediate.
func EncodeI(op Op, rd, rs1 int, imm int32) uint32 {
	return uint32(op)<<26 | uint32(rd&0xf)<<22 | uint32(rs1&0xf)<<18 | uint32(imm)&immMask
}

// Decoded is an unpacked instruction.
type Decoded struct {
	Op       Op
	Rd       int
	Rs1, Rs2 int
	Imm      int32 // sign-extended 18-bit immediate
}

// Decode unpacks an instruction word.
func Decode(w uint32) Decoded {
	imm := int32(w & immMask)
	if imm&immSign != 0 {
		imm -= 1 << immBits
	}
	return Decoded{
		Op:  Op(w >> 26),
		Rd:  int(w >> 22 & 0xf),
		Rs1: int(w >> 18 & 0xf),
		Rs2: int(w >> 14 & 0xf),
		Imm: imm,
	}
}

// UImm returns the zero-extended 18-bit immediate of the word.
func (d Decoded) UImm() uint32 { return uint32(d.Imm) & immMask }

// Disassemble renders the instruction word as assembler text.
func Disassemble(w uint32) string {
	d := Decode(w)
	switch d.Op {
	case OpHalt, OpPstart:
		return d.Op.String()
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpRor, OpMul, OpSltu:
		return fmt.Sprintf("%s r%d, r%d, r%d", d.Op, d.Rd, d.Rs1, d.Rs2)
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpMuli:
		return fmt.Sprintf("%s r%d, r%d, %d", d.Op, d.Rd, d.Rs1, d.Imm)
	case OpLui:
		return fmt.Sprintf("lui r%d, %d", d.Rd, d.UImm())
	case OpLd:
		return fmt.Sprintf("ld r%d, r%d, %d", d.Rd, d.Rs1, d.Imm)
	case OpSt:
		return fmt.Sprintf("st r%d, r%d, %d", d.Rd, d.Rs1, d.Imm)
	case OpBeq, OpBne, OpBltu, OpBgeu:
		return fmt.Sprintf("%s r%d, r%d, %d", d.Op, d.Rd, d.Rs1, d.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp %d", d.UImm())
	case OpJal:
		return fmt.Sprintf("jal r%d, %d", d.Rd, d.UImm())
	case OpJr:
		return fmt.Sprintf("jr r%d", d.Rs1)
	case OpPend:
		return fmt.Sprintf("pend r%d", d.Rd)
	default:
		return fmt.Sprintf(".word 0x%08x", w)
	}
}

// CycleCost returns the base cycle cost of an instruction (the PUF-mode add
// surcharge is applied by the CPU from the port's latency).
func CycleCost(op Op) uint64 {
	switch op {
	case OpMul, OpMuli:
		return 3
	case OpLd, OpSt:
		return 2
	case OpJmp, OpJal, OpJr:
		return 2
	case OpBeq, OpBne, OpBltu, OpBgeu:
		return 1 // +1 when taken, applied by the CPU
	default:
		return 1
	}
}
