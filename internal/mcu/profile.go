package mcu

import (
	"fmt"
	"sort"
	"strings"
)

// Cycle profiling: attribute executed cycles to the assembler labels of a
// program, so the cost structure of the attestation checksum (rounds vs PUF
// blocks vs bookkeeping) is directly measurable — the breakdown the
// time-bound engineering in Section 4.2 rests on.

// RegionCost is the cycle count attributed to one labelled region.
type RegionCost struct {
	Label  string
	Start  uint32
	Cycles uint64
	Steps  uint64
}

// Profile is the result of a profiled run.
type Profile struct {
	Regions []RegionCost
	Total   uint64
}

// ProfileRun executes the CPU to completion (or the cycle budget),
// attributing each instruction's cycles to the nearest label at or before
// its address. Unlabelled prefixes accrue to "_start".
func ProfileRun(c *CPU, symbols map[string]uint32, maxCycles uint64) (*Profile, error) {
	type labelAt struct {
		addr  uint32
		label string
	}
	labels := make([]labelAt, 0, len(symbols)+1)
	labels = append(labels, labelAt{0, "_start"})
	for name, addr := range symbols {
		labels = append(labels, labelAt{addr, name})
	}
	sort.Slice(labels, func(i, j int) bool {
		if labels[i].addr != labels[j].addr {
			return labels[i].addr < labels[j].addr
		}
		return labels[i].label < labels[j].label
	})
	regionOf := func(pc uint32) int {
		lo, hi := 0, len(labels)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if labels[mid].addr <= pc {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	costs := make([]RegionCost, len(labels))
	for i, l := range labels {
		costs[i] = RegionCost{Label: l.label, Start: l.addr}
	}
	for {
		pc := c.PC
		before := c.Cycles
		ok := c.Step()
		// Attribute even the final (halt) instruction's cycles; a Step
		// that executed nothing (already stopped) adds no delta.
		if delta := c.Cycles - before; delta > 0 || ok {
			r := regionOf(pc)
			costs[r].Cycles += delta
			costs[r].Steps++
		}
		if !ok {
			break
		}
		if c.Cycles > maxCycles {
			return nil, fmt.Errorf("mcu: profile cycle budget %d exhausted at pc=%d", maxCycles, c.PC)
		}
	}
	if err := c.Faulted(); err != nil {
		return nil, err
	}
	p := &Profile{Total: c.Cycles}
	for _, rc := range costs {
		if rc.Steps > 0 {
			p.Regions = append(p.Regions, rc)
		}
	}
	sort.Slice(p.Regions, func(i, j int) bool { return p.Regions[i].Cycles > p.Regions[j].Cycles })
	return p, nil
}

// Format renders the profile as an aligned table, heaviest region first.
func (p *Profile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %7s\n", "region", "cycles", "steps", "share")
	for _, r := range p.Regions {
		fmt.Fprintf(&b, "%-14s %10d %10d %6.1f%%\n",
			r.Label, r.Cycles, r.Steps, 100*float64(r.Cycles)/float64(p.Total))
	}
	fmt.Fprintf(&b, "%-14s %10d\n", "total", p.Total)
	return b.String()
}

// Region returns the cost entry for a label (nil if the label never
// executed).
func (p *Profile) Region(label string) *RegionCost {
	for i := range p.Regions {
		if p.Regions[i].Label == label {
			return &p.Regions[i]
		}
	}
	return nil
}
