package mcu

import (
	"errors"
	"strings"
	"testing"
)

// Coverage of the small accessors and the NullPort/StubPort behaviour.

func TestNullPort(t *testing.T) {
	var p NullPort
	p.Begin() // no-op
	if _, err := p.Feed(1, 2); err == nil {
		t.Error("NullPort.Feed should error")
	}
	if _, err := p.Finish(); err == nil {
		t.Error("NullPort.Finish should error")
	}
}

func TestStubPortLifecycle(t *testing.T) {
	s := &StubPort{Votes: 5}
	s.Begin()
	for i := 0; i < 8; i++ {
		extra, err := s.Feed(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if extra != 6 {
			t.Errorf("stub extra = %d, want votes+1", extra)
		}
	}
	if _, err := s.Feed(1, 2); err == nil {
		t.Error("ninth feed accepted")
	}
	// Finish resets for reuse... first drain the error state.
	s.Begin()
	if _, err := s.Finish(); err == nil {
		t.Error("premature finish accepted")
	}
	for i := 0; i < 8; i++ {
		s.Feed(1, 2) //nolint:errcheck
	}
	if z, err := s.Finish(); err != nil || z != 0 {
		t.Errorf("Finish = (%d, %v)", z, err)
	}
}

func TestCPUAccessors(t *testing.T) {
	p := MustAssemble("pstart\nhalt")
	c := New(p.Words, 1e6, &StubPort{Votes: 1})
	if c.Halted() || c.InPUFMode() {
		t.Error("fresh CPU state wrong")
	}
	c.Step()
	if !c.InPUFMode() {
		t.Error("pstart did not enter PUF mode")
	}
	c.Step()
	if !c.Halted() {
		t.Error("halt did not halt")
	}
	// Stepping a halted CPU is a no-op.
	if c.Step() {
		t.Error("halted CPU stepped")
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{PC: 7, Reason: "boom"}
	if !strings.Contains(f.Error(), "pc=7") || !strings.Contains(f.Error(), "boom") {
		t.Errorf("Fault.Error = %q", f.Error())
	}
	var err error = f
	var asFault *Fault
	if !errors.As(err, &asFault) {
		t.Error("Fault not usable with errors.As")
	}
}

func TestReadsRegAllFormats(t *testing.T) {
	cases := []struct {
		w    uint32
		r    int
		want bool
	}{
		{EncodeR(OpAdd, 1, 2, 3), 2, true},
		{EncodeR(OpAdd, 1, 2, 3), 3, true},
		{EncodeR(OpAdd, 1, 2, 3), 1, false}, // rd is written, not read
		{EncodeI(OpAddi, 1, 2, 5), 2, true},
		{EncodeI(OpAddi, 1, 2, 5), 1, false},
		{EncodeI(OpLd, 1, 2, 0), 2, true},
		{EncodeI(OpSt, 1, 2, 0), 1, true}, // store data
		{EncodeI(OpSt, 1, 2, 0), 2, true}, // address base
		{EncodeI(OpBeq, 1, 2, 0), 1, true},
		{EncodeI(OpBeq, 1, 2, 0), 2, true},
		{EncodeI(OpJr, 0, 5, 0), 5, true},
		{EncodeI(OpJmp, 0, 0, 9), 5, false},
		{EncodeI(OpLui, 1, 0, 9), 1, false},
	}
	c := New(nil, 1e6, nil)
	for _, tc := range cases {
		if got := c.readsReg(Decode(tc.w), tc.r); got != tc.want {
			t.Errorf("readsReg(%s, r%d) = %v, want %v", Disassemble(tc.w), tc.r, got, tc.want)
		}
	}
}

func TestDevicePortDeviceAccessor(t *testing.T) {
	dev := pufDevice(t)
	port := MustNewDevicePort(dev)
	if port.Device() != dev {
		t.Error("Device accessor wrong")
	}
}
