package mcu

import (
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
)

func runPipelined(t *testing.T, src string, pipelined bool) *CPU {
	t.Helper()
	p := MustAssemble(src)
	mem := make([]uint32, 256)
	copy(mem, p.Words)
	c := New(mem, 1e8, nil)
	c.Pipelined = pipelined
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPipelinedFunctionallyIdentical(t *testing.T) {
	src := `
		li r1, 10
		li r2, 0
	loop:
		add  r2, r2, r1
		st   r2, r0, 100
		ld   r3, r0, 100
		xor  r4, r3, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`
	a := runPipelined(t, src, false)
	b := runPipelined(t, src, true)
	if a.Regs != b.Regs {
		t.Errorf("pipelined mode changed results:\n%v\n%v", a.Regs, b.Regs)
	}
	if a.Cycles == b.Cycles {
		t.Error("pipelined mode should change cycle accounting for this mix")
	}
}

func TestLoadUseInterlock(t *testing.T) {
	// ld followed by a dependent op costs one extra cycle; an independent
	// op does not.
	dependent := runPipelined(t, "ld r1, r0, 50\nadd r2, r1, r1\nhalt", true)
	independent := runPipelined(t, "ld r1, r0, 50\nadd r2, r3, r3\nhalt", true)
	if dependent.Cycles != independent.Cycles+1 {
		t.Errorf("load-use stall missing: dependent %d vs independent %d",
			dependent.Cycles, independent.Cycles)
	}
}

func TestLoadUseStoreDataHazard(t *testing.T) {
	// st reads its data register: ld then st of the same register stalls.
	hazard := runPipelined(t, "ld r1, r0, 50\nst r1, r0, 60\nhalt", true)
	clean := runPipelined(t, "ld r1, r0, 50\nst r2, r0, 60\nhalt", true)
	if hazard.Cycles != clean.Cycles+1 {
		t.Errorf("store-data hazard missing: %d vs %d", hazard.Cycles, clean.Cycles)
	}
}

func TestTakenBranchFlushCostsTwo(t *testing.T) {
	taken := runPipelined(t, "beq r0, r0, t\nt: halt", true)
	notTaken := runPipelined(t, "bne r0, r0, t\nt: halt", true)
	if taken.Cycles != notTaken.Cycles+2 {
		t.Errorf("taken-branch flush: %d vs %d", taken.Cycles, notTaken.Cycles)
	}
}

func TestPipelinedLoadIsSingleCycleWhenIndependent(t *testing.T) {
	// In the pipelined model a load without a dependent consumer is CPI 1
	// (the non-pipelined model charges 2).
	pipe := runPipelined(t, "ld r1, r0, 50\nnop\nhalt", true)
	flat := runPipelined(t, "ld r1, r0, 50\nnop\nhalt", false)
	if pipe.Cycles >= flat.Cycles {
		t.Errorf("pipelined load not cheaper: %d vs %d", pipe.Cycles, flat.Cycles)
	}
}

func TestPipelinedAttestationStillVerifies(t *testing.T) {
	// The checksum must verify regardless of the timing model (cycle
	// counts differ; values must not).
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(110), 0)
	port := MustNewDevicePort(dev)
	port.SetClock(50e6)
	p := MustAssemble(pufProgram)
	mem := make([]uint32, 4096)
	copy(mem, p.Words)
	c := New(mem, 50e6, port)
	c.Pipelined = true
	c.Regs[1] = 0xcafe1234
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	v := core.MustNewVerifierPipeline(dev.Emulator())
	zv, err := v.Recover(0xcafe1234, port.DrainHelpers())
	if err != nil {
		t.Fatal(err)
	}
	var want uint32
	for i, b := range zv {
		want |= uint32(b) << uint(i)
	}
	if c.Regs[5] != want {
		t.Errorf("pipelined PUF run: z %#x, verifier %#x", c.Regs[5], want)
	}
}
