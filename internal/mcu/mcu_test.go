package mcu

import (
	"strings"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/ecc"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

func run(t *testing.T, src string, mem int, port PUFPort) *CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	image := make([]uint32, mem)
	copy(image, p.Words)
	c := New(image, 100e6, port)
	if err := c.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for op := OpHalt; op < numOps; op++ {
		w := EncodeR(op, 3, 7, 12)
		d := Decode(w)
		if d.Op != op || d.Rd != 3 || d.Rs1 != 7 || d.Rs2 != 12 {
			t.Errorf("R round trip failed for %v: %+v", op, d)
		}
	}
	for _, imm := range []int32{0, 1, -1, MaxImm, MinImm, 12345, -9876} {
		d := Decode(EncodeI(OpAddi, 1, 2, imm))
		if d.Imm != imm {
			t.Errorf("imm %d decoded as %d", imm, d.Imm)
		}
	}
}

func TestDisassembleCoversAllOps(t *testing.T) {
	words := []uint32{
		EncodeR(OpHalt, 0, 0, 0),
		EncodeR(OpAdd, 1, 2, 3),
		EncodeI(OpAddi, 1, 2, -5),
		EncodeI(OpLui, 1, 0, 100),
		EncodeI(OpLd, 1, 2, 7),
		EncodeI(OpSt, 1, 2, 7),
		EncodeI(OpBeq, 1, 2, -3),
		EncodeI(OpJmp, 0, 0, 40),
		EncodeI(OpJal, 15, 0, 40),
		EncodeI(OpJr, 0, 15, 0),
		EncodeR(OpPstart, 0, 0, 0),
		EncodeR(OpPend, 5, 0, 0),
	}
	for _, w := range words {
		s := Disassemble(w)
		if s == "" || strings.HasPrefix(s, ".word") {
			t.Errorf("disassembly of %08x: %q", w, s)
		}
	}
	if !strings.HasPrefix(Disassemble(uint32(numOps)<<26), ".word") {
		t.Error("illegal opcode should disassemble as .word")
	}
}

func TestBasicArithmetic(t *testing.T) {
	c := run(t, `
		li   r1, 7
		li   r2, 5
		add  r3, r1, r2
		sub  r4, r1, r2
		mul  r5, r1, r2
		and  r6, r1, r2
		or   r7, r1, r2
		xor  r8, r1, r2
		sltu r9, r2, r1
		halt
	`, 64, nil)
	want := map[int]uint32{3: 12, 4: 2, 5: 35, 6: 5, 7: 7, 8: 2, 9: 1}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestShiftsAndRotate(t *testing.T) {
	c := run(t, `
		li   r1, 0x80000001
		li   r2, 1
		shl  r3, r1, r2
		shr  r4, r1, r2
		ror  r5, r1, r2
		shli r6, r2, 31
		shri r7, r1, 31
		halt
	`, 64, nil)
	if c.Regs[3] != 0x00000002 {
		t.Errorf("shl = %#x", c.Regs[3])
	}
	if c.Regs[4] != 0x40000000 {
		t.Errorf("shr = %#x", c.Regs[4])
	}
	if c.Regs[5] != 0xC0000000 {
		t.Errorf("ror = %#x", c.Regs[5])
	}
	if c.Regs[6] != 0x80000000 {
		t.Errorf("shli = %#x", c.Regs[6])
	}
	if c.Regs[7] != 1 {
		t.Errorf("shri = %#x", c.Regs[7])
	}
}

func TestLi32BitConstants(t *testing.T) {
	c := run(t, `
		li r1, 0xdeadbeef
		li r2, -1
		li r3, 100000
		li r4, 42
		halt
	`, 64, nil)
	if c.Regs[1] != 0xdeadbeef {
		t.Errorf("r1 = %#x", c.Regs[1])
	}
	if c.Regs[2] != 0xffffffff {
		t.Errorf("r2 = %#x", c.Regs[2])
	}
	if c.Regs[3] != 100000 {
		t.Errorf("r3 = %d", c.Regs[3])
	}
	if c.Regs[4] != 42 {
		t.Errorf("r4 = %d", c.Regs[4])
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	c := run(t, `
		li  r0, 123
		add r1, r0, r0
		halt
	`, 64, nil)
	if c.Regs[0] != 0 || c.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay zero", c.Regs[0], c.Regs[1])
	}
}

func TestLoadsAndStores(t *testing.T) {
	c := run(t, `
		li  r1, 40      ; base address
		li  r2, 0xabcd
		st  r2, r1, 2
		ld  r3, r1, 2
		halt
	`, 64, nil)
	if c.Mem[42] != 0xabcd || c.Regs[3] != 0xabcd {
		t.Errorf("mem[42] = %#x, r3 = %#x", c.Mem[42], c.Regs[3])
	}
}

func TestLoop(t *testing.T) {
	// Sum 1..10 into r2.
	c := run(t, `
		li r1, 10
		li r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, 64, nil)
	if c.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[2])
	}
}

func TestBranchVariants(t *testing.T) {
	c := run(t, `
		li r1, 3
		li r2, 5
		li r10, 0
		bltu r1, r2, a
		li r10, 99
	a:	bgeu r2, r1, b
		li r10, 98
	b:	beq r1, r1, c
		li r10, 97
	c:	bne r1, r2, done
		li r10, 96
	done:
		halt
	`, 64, nil)
	if c.Regs[10] != 0 {
		t.Errorf("branch fallthrough executed: r10 = %d", c.Regs[10])
	}
}

func TestJalAndJr(t *testing.T) {
	c := run(t, `
		li  r1, 0
		jal r15, sub
		li  r2, 7       ; return lands here
		halt
	sub:
		li  r1, 5
		jr  r15
	`, 64, nil)
	if c.Regs[1] != 5 || c.Regs[2] != 7 {
		t.Errorf("r1 = %d, r2 = %d", c.Regs[1], c.Regs[2])
	}
}

func TestWordAndSpaceDirectives(t *testing.T) {
	p := MustAssemble(`
		jmp start
	data:
		.word 0x1234
		.space 3
		.word data
	start:
		halt
	`)
	if p.Words[1] != 0x1234 {
		t.Errorf("data word = %#x", p.Words[1])
	}
	if p.Words[5] != 1 {
		t.Errorf("label-valued word = %d, want 1", p.Words[5])
	}
	if p.Symbols["start"] != 6 {
		t.Errorf("start = %d", p.Symbols["start"])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frobnicate r1, r2",   // unknown mnemonic
		"add r1, r2",          // wrong arity
		"add r1, r2, r16",     // bad register
		"addi r1, r2, 999999", // immediate too large
		"andi r1, r2, -1",     // negative logical immediate
		"dup: nop\ndup: nop",  // duplicate label
		"ld r1, r2",           // missing operand
		".space -1",           // bad space
		"beq r1, r2, 999999",  // branch offset range
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled without error: %q", src)
		}
	}
}

func TestFaults(t *testing.T) {
	t.Run("pend outside PUF mode", func(t *testing.T) {
		p := MustAssemble("pend r1\nhalt")
		c := New(p.Words, 1e6, nil)
		c.Run(1000)
		if c.Faulted() == nil {
			t.Error("no fault")
		}
	})
	t.Run("load out of range", func(t *testing.T) {
		p := MustAssemble("li r1, 1000\nld r2, r1, 0\nhalt")
		c := New(p.Words, 1e6, nil)
		c.Run(1000)
		if c.Faulted() == nil {
			t.Error("no fault")
		}
	})
	t.Run("pc escapes memory", func(t *testing.T) {
		p := MustAssemble("nop")
		c := New(p.Words, 1e6, nil)
		c.Run(1000)
		if c.Faulted() == nil {
			t.Error("no fault")
		}
	})
	t.Run("puf mode without port", func(t *testing.T) {
		p := MustAssemble("pstart\nadd r1, r2, r3\nhalt")
		c := New(p.Words, 1e6, nil)
		c.Run(1000)
		if c.Faulted() == nil {
			t.Error("no fault")
		}
	})
	t.Run("cycle budget", func(t *testing.T) {
		p := MustAssemble("loop: jmp loop")
		c := New(p.Words, 1e6, nil)
		if err := c.Run(100); err == nil {
			t.Error("budget exhaustion not reported")
		}
	})
}

func TestCycleAccounting(t *testing.T) {
	c := run(t, `
		add r1, r1, r1   ; 1
		mul r2, r1, r1   ; 3
		ld  r3, r0, 0    ; 2
		halt             ; 1? halt costs its base too
	`, 64, nil)
	// add(1) + mul(3) + ld(2) + halt(1) = 7
	if c.Cycles != 7 {
		t.Errorf("cycles = %d, want 7", c.Cycles)
	}
	if got := c.TimeSeconds(); got != 7/100e6 {
		t.Errorf("TimeSeconds = %v", got)
	}
}

func TestTakenBranchCostsExtra(t *testing.T) {
	pTaken := MustAssemble("beq r0, r0, t\nt: halt")
	cTaken := New(pTaken.Words, 1e6, nil)
	cTaken.Run(100)
	pNot := MustAssemble("bne r0, r0, t\nt: halt")
	cNot := New(pNot.Words, 1e6, nil)
	cNot.Run(100)
	if cTaken.Cycles != cNot.Cycles+1 {
		t.Errorf("taken %d vs not-taken %d cycles", cTaken.Cycles, cNot.Cycles)
	}
}

func pufDevice(t *testing.T) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Width = 16
	return core.MustNewDevice(core.MustNewDesign(cfg), rng.New(3), 0)
}

// pufProgram issues one full PUF() invocation: it first derives the eight
// operand pairs from the seed (in software, via Mix32) into a memory
// buffer, then enters PUF mode where the only add instructions executed are
// the queries themselves (in PUF mode every add stimulates the ALUs, so
// ordinary arithmetic there must avoid add). Halts with z in r5. Seed
// preloaded in r1.
const pufProgram = `
	; r1 = seed, r2 = j counter (0..7), r13 = buffer pointer
	li   r2, 0
	li   r13, 1024
genloop:
	; a = Mix32(seed + ExpandStepA*(2j+1))
	shli r6, r2, 1
	addi r6, r6, 1        ; 2j+1
	li   r7, 0x9e3779b9
	mul  r6, r6, r7
	add  r3, r1, r6
	jal  r15, mix32       ; r3 -> mixed r3
	st   r3, r13, 0
	; b = Mix32((seed^salt) + ExpandStepB*(2j+2))
	shli r6, r2, 1
	addi r6, r6, 2
	li   r7, 0x7f4a7c15
	mul  r6, r6, r7
	li   r9, 0xd192ed03
	xor  r3, r1, r9
	add  r3, r3, r6
	jal  r15, mix32
	st   r3, r13, 1
	addi r13, r13, 2
	addi r2, r2, 1
	li   r6, 8
	bne  r2, r6, genloop

	li   r13, 1024
	li   r2, 0
	pstart
qloop:
	ld   r3, r13, 0
	ld   r4, r13, 1
	add  r10, r3, r4      ; THE add: PUF query with (a, b)
	addi r13, r13, 2
	addi r2, r2, 1
	li   r6, 8
	bne  r2, r6, qloop
	pend r5
	halt

mix32:                    ; r3 = Mix32(r3), clobbers r11
	shri r11, r3, 16
	xor  r3, r3, r11
	li   r11, 0x85ebca6b
	mul  r3, r3, r11
	shri r11, r3, 13
	xor  r3, r3, r11
	li   r11, 0xc2b2ae35
	mul  r3, r3, r11
	shri r11, r3, 16
	xor  r3, r3, r11
	jr   r15
`

func TestPUFModeEndToEnd(t *testing.T) {
	dev := pufDevice(t)
	port := MustNewDevicePort(dev)
	port.SetClock(100e6) // generous 10 ns cycle: reliable
	p := MustAssemble(pufProgram)
	mem := make([]uint32, 4096)
	copy(mem, p.Words)
	c := New(mem, 100e6, port)
	const seed = 0xcafe1234
	c.Regs[1] = seed
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	z := c.Regs[5]
	helpers := port.DrainHelpers()
	if len(helpers) != 8 {
		t.Fatalf("%d helpers, want 8", len(helpers))
	}
	// The verifier recovers the same z from the emulator + helpers: the
	// software-derived operands must match ExpandOperands exactly.
	v := core.MustNewVerifierPipeline(dev.Emulator())
	zv, err := v.Recover(seed, helpers)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(ecc.BitsToWord(zv)) != z {
		t.Fatalf("verifier z %#x != prover z %#x", ecc.BitsToWord(zv), z)
	}
}

func TestPUFModeFaultsOnWrongQueryCount(t *testing.T) {
	dev := pufDevice(t)
	port := MustNewDevicePort(dev)
	p := MustAssemble(`
		pstart
		add r1, r2, r3
		pend r4
		halt
	`)
	c := New(p.Words, 100e6, port)
	c.Run(1000)
	if c.Faulted() == nil {
		t.Error("pend after one query should fault")
	}
}

func TestPUFModeDoublePstartFaults(t *testing.T) {
	dev := pufDevice(t)
	port := MustNewDevicePort(dev)
	p := MustAssemble("pstart\npstart\nhalt")
	c := New(p.Words, 100e6, port)
	c.Run(1000)
	if c.Faulted() == nil {
		t.Error("double pstart should fault")
	}
}

func TestPUFAddCostsExtraCycles(t *testing.T) {
	dev := pufDevice(t)
	port := MustNewDevicePort(dev)
	port.SetClock(100e6)
	srcPlain := "add r1, r2, r3\nhalt"
	pPlain := MustAssemble(srcPlain)
	cPlain := New(pPlain.Words, 100e6, nil)
	cPlain.Run(1000)

	// One PUF-mode add inside pstart (we fault at pend-less halt, but the
	// cycle cost of the add is still recorded before the halt).
	pPuf := MustAssemble("pstart\nadd r1, r2, r3\nhalt")
	cPuf := New(pPuf.Words, 100e6, port)
	cPuf.Run(1000)
	if cPuf.Cycles <= cPlain.Cycles {
		t.Errorf("PUF-mode add cost %d cycles vs plain %d; expected a surcharge",
			cPuf.Cycles, cPlain.Cycles)
	}
}

func TestOverclockedPortCorruptsResponses(t *testing.T) {
	dev := pufDevice(t)
	port := MustNewDevicePort(dev)
	maxF := port.MaxReliableFreqHz()

	measure := func(freq float64) int {
		port.SetClock(freq)
		port.Begin()
		port.Feed(0x1234, 0x9abc)
		// Compare the (single) raw response underlying the helper against
		// the reliable-clock reference by refeeding at slow clock.
		h1 := append([]uint64(nil), port.helpers...)
		port.helpers = nil
		port.SetClock(maxF * 0.5)
		port.Begin()
		port.Feed(0x1234, 0x9abc)
		h2 := port.helpers
		port.helpers = nil
		if h1[0] == h2[0] {
			return 0
		}
		return 1
	}
	diffFast := 0
	for i := 0; i < 20; i++ {
		diffFast += measure(maxF * 2.0)
	}
	if diffFast < 10 {
		t.Errorf("overclocked helper data matched reliable helper data %d/20 times; expected corruption", 20-diffFast)
	}
}

func TestStats(t *testing.T) {
	// Smoke: responses through the port look PUF-like (not constant).
	dev := pufDevice(t)
	port := MustNewDevicePort(dev)
	port.SetClock(50e6)
	port.Begin()
	seen := map[uint64]bool{}
	for j := 0; j < 8; j++ {
		a, b := dev.Design().ExpandOperands(99, j)
		if _, err := port.Feed(a, b); err != nil {
			t.Fatal(err)
		}
		seen[port.helpers[j]] = true
	}
	z, err := port.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) < 4 {
		t.Error("helper words suspiciously repetitive")
	}
	if w := stats.HammingDistanceWords(uint64(z), 0); w == 0 || w == 16 {
		t.Logf("z = %#x has extreme weight %d (possible but unusual)", z, w)
	}
}
