package mcu

import (
	"strings"
	"testing"
)

func TestProfileSimpleProgram(t *testing.T) {
	p := MustAssemble(`
		li r1, 100
	hot:
		addi r1, r1, -1
		bne  r1, r0, hot
	cold:
		halt
	`)
	c := New(p.Words, 1e6, nil)
	prof, err := ProfileRun(c, p.Symbols, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	hot := prof.Region("hot")
	if hot == nil {
		t.Fatal("hot region missing")
	}
	if hot.Steps != 200 { // 100 iterations × 2 instructions
		t.Errorf("hot steps = %d, want 200", hot.Steps)
	}
	if prof.Regions[0].Label != "hot" {
		t.Errorf("heaviest region = %s, want hot", prof.Regions[0].Label)
	}
	start := prof.Region("_start")
	if start == nil || start.Steps != 1 {
		t.Errorf("prefix region wrong: %+v", start)
	}
	var sum uint64
	for _, r := range prof.Regions {
		sum += r.Cycles
	}
	if sum != prof.Total {
		t.Errorf("region cycles %d do not sum to total %d", sum, prof.Total)
	}
	out := prof.Format()
	if !strings.Contains(out, "hot") || !strings.Contains(out, "total") {
		t.Errorf("format missing content:\n%s", out)
	}
}

func TestProfileFaultPropagates(t *testing.T) {
	p := MustAssemble("li r1, 9999\nld r2, r1, 0\nhalt")
	c := New(p.Words, 1e6, nil)
	if _, err := ProfileRun(c, p.Symbols, 1000); err == nil {
		t.Error("fault not propagated")
	}
}

func TestProfileBudget(t *testing.T) {
	p := MustAssemble("loop: jmp loop")
	c := New(p.Words, 1e6, nil)
	if _, err := ProfileRun(c, p.Symbols, 100); err == nil {
		t.Error("budget exhaustion not reported")
	}
}
