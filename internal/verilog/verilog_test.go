package verilog

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"pufatt/internal/netlist"
)

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"a[3]":  "a_3",
		"o'[0]": "op_0",
		"co'":   "cop",
		"3net":  "n3net",
		"":      "n",
		"x y":   "x_y",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEmitFullAdder(t *testing.T) {
	nl := netlist.BuildFullAdderNetlist()
	var buf bytes.Buffer
	if err := Emit(&buf, nl, "fa"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"module fa (",
		"input wire a",
		"input wire b",
		"input wire cin",
		"output wire sum",
		"output wire cout",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Five logic gates → five assigns.
	if n := strings.Count(out, "assign "); n != 5 {
		t.Errorf("%d assigns, want 5:\n%s", n, out)
	}
}

// evalVerilog interprets the emitted structural Verilog (the restricted
// subset this package produces) and cross-checks it against the netlist's
// own evaluation — a semantics round trip without an external simulator.
func evalVerilog(t *testing.T, src string, inputs map[string]uint8, output string) uint8 {
	t.Helper()
	vals := map[string]uint8{}
	for k, v := range inputs {
		vals[k] = v
	}
	assignRe := regexp.MustCompile(`assign (\S+) = (.*);`)
	for _, line := range strings.Split(src, "\n") {
		m := assignRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		vals[m[1]] = evalExpr(t, m[2], vals)
	}
	v, ok := vals[output]
	if !ok {
		t.Fatalf("output %q never assigned", output)
	}
	return v
}

func evalExpr(t *testing.T, expr string, vals map[string]uint8) uint8 {
	t.Helper()
	expr = strings.TrimSpace(expr)
	neg := false
	if strings.HasPrefix(expr, "~(") && strings.HasSuffix(expr, ")") {
		neg = true
		expr = expr[2 : len(expr)-1]
	} else if strings.HasPrefix(expr, "~") {
		neg = true
		expr = expr[1:]
	}
	var op string
	for _, cand := range []string{" & ", " | ", " ^ "} {
		if strings.Contains(expr, cand) {
			op = cand
			break
		}
	}
	term := func(s string) uint8 {
		s = strings.TrimSpace(s)
		switch s {
		case "1'b0":
			return 0
		case "1'b1":
			return 1
		}
		v, ok := vals[s]
		if !ok {
			t.Fatalf("undefined net %q", s)
		}
		return v
	}
	var v uint8
	if op == "" {
		v = term(expr)
	} else {
		parts := strings.Split(expr, op)
		v = term(parts[0])
		for _, p := range parts[1:] {
			switch op {
			case " & ":
				v &= term(p)
			case " | ":
				v |= term(p)
			case " ^ ":
				v ^= term(p)
			}
		}
	}
	if neg {
		v ^= 1
	}
	return v
}

func TestEmittedRCASemantics(t *testing.T) {
	const width = 6
	nl := netlist.BuildRCANetlist(width)
	var buf bytes.Buffer
	if err := Emit(&buf, nl, "rca"); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	for a := uint64(0); a < 64; a += 7 {
		for b := uint64(0); b < 64; b += 11 {
			inputs := map[string]uint8{"cin": 0}
			for i := 0; i < width; i++ {
				inputs[fmt.Sprintf("a_%d", i)] = uint8(a >> uint(i) & 1)
				inputs[fmt.Sprintf("b_%d", i)] = uint8(b >> uint(i) & 1)
			}
			var sum uint64
			for i := 0; i < width; i++ {
				sum |= uint64(evalVerilog(t, src, inputs, fmt.Sprintf("sum_%d", i))) << uint(i)
			}
			cout := evalVerilog(t, src, inputs, "cout")
			total := a + b
			if sum != total&63 || cout != uint8(total>>width) {
				t.Fatalf("verilog RCA(%d,%d) = (%d,%d), want (%d,%d)",
					a, b, sum, cout, total&63, total>>width)
			}
		}
	}
}

func TestEmitPUFTop(t *testing.T) {
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: 4})
	var buf bytes.Buffer
	if err := EmitPUFTop(&buf, dp, "alupuf"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"module alupuf (",
		"input wire clk",
		"input wire pstart",
		"input wire [3:0] chal_a",
		"output reg [3:0] response",
		"alupuf_core core (",
		"module alupuf_core (",
		".o_0(o0[0])",
		"posedge o1[i]",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Two modules exactly.
	if n := strings.Count(out, "endmodule"); n != 2 {
		t.Errorf("%d endmodules, want 2", n)
	}
	// The core's output ports must match the wrapper's instantiation.
	for i := 0; i < 4; i++ {
		if !strings.Contains(out, fmt.Sprintf("output wire o_%d", i)) {
			t.Errorf("core missing output o_%d", i)
		}
		if !strings.Contains(out, fmt.Sprintf("output wire op_%d", i)) {
			t.Errorf("core missing output op_%d", i)
		}
	}
	if !strings.Contains(out, "output wire cop") {
		t.Error("core missing carry-out pair")
	}
}

func TestEmitDeterministic(t *testing.T) {
	nl := netlist.BuildRCANetlist(4)
	var a, b bytes.Buffer
	Emit(&a, nl, "m")
	Emit(&b, nl, "m")
	if a.String() != b.String() {
		t.Error("emission not deterministic")
	}
}
