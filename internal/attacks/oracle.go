package attacks

import (
	"fmt"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/swatt"
)

// OracleProxyProver models the second prover-authentication attack of
// Section 4.2: the adversary owns an arbitrarily fast external machine (we
// charge it zero compute time) and full knowledge of the expected memory,
// but it cannot clone the PUF — so for every chunk it must ship the PUF
// challenge seed to the captured device and receive z plus the helper words
// back over the device's constrained communication link. The per-chunk
// round trips are what the time bound catches.
type OracleProxyProver struct {
	// Expected is the pristine memory the adversary checksums remotely.
	Expected *swatt.Image
	// Pipeline queries the captured device's real PUF.
	Pipeline *core.Pipeline
	// Link is the device's communication interface.
	Link attest.Link
}

// oracleBitsPerChunk is the payload the proxy moves per chunk: the 32-bit
// seed out; z (32 bits) plus eight helper words back.
func oracleBitsPerChunk() (out, back int) {
	return 32, 32 + 8*attest.HelperBitsPerWord
}

// Respond implements attest.ProverAgent.
func (o *OracleProxyProver) Respond(ch attest.Challenge) (attest.Response, float64, error) {
	p := o.Expected.Layout.Params
	var helpers []uint64
	var proxyTime float64
	outBits, backBits := oracleBitsPerChunk()
	tag, err := swatt.Checksum(o.Expected.Layout.AttestedRegion(o.Expected.Mem), ch.EffectiveNonce(), p,
		func(seed uint32) (uint32, error) {
			// Ship the seed to the device, wait for z + helpers.
			proxyTime += o.Link.TransferSeconds(outBits) + o.Link.TransferSeconds(backBits)
			out, err := o.Pipeline.Query(uint64(seed))
			if err != nil {
				return 0, err
			}
			helpers = append(helpers, out.Helpers...)
			return uint32(out.ZWord()), nil
		})
	if err != nil {
		return attest.Response{}, 0, fmt.Errorf("attacks: oracle proxy: %w", err)
	}
	return attest.Response{Session: ch.Session, Tag: tag, Helpers: helpers}, proxyTime, nil
}

// OracleAttackTime returns the adversary's minimum elapsed time for an
// attestation with the given chunk count over the link, charging zero
// compute: chunks × (seed out + z/helpers back).
func OracleAttackTime(chunks int, link attest.Link) float64 {
	out, back := oracleBitsPerChunk()
	return float64(chunks) * (link.TransferSeconds(out) + link.TransferSeconds(back))
}

// BandwidthToBeatDelta returns the link bandwidth (bits/s) above which the
// oracle attack fits inside the time bound delta, assuming the link latency
// given. It returns +Inf when latency alone already exceeds delta.
func BandwidthToBeatDelta(chunks int, latency, delta float64) float64 {
	out, back := oracleBitsPerChunk()
	latencyCost := float64(chunks) * 2 * latency
	if latencyCost >= delta {
		return -1 // impossible at any bandwidth
	}
	totalBits := float64(chunks * (out + back))
	return totalBits / (delta - latencyCost)
}
