package attacks

import (
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
)

func scFixture(t *testing.T) (*core.Device, *ObfuscatedOracle) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(70), 0)
	oracle, err := NewObfuscatedOracle(dev)
	if err != nil {
		t.Fatal(err)
	}
	return dev, oracle
}

func TestAggregatePowerLeakInsufficient(t *testing.T) {
	// A global power trace leaks only the response Hamming weight; the
	// z-composition needs near-perfect raw models, so the combined attack
	// stays at the coin-flip floor. This is the honest negative result the
	// obfuscation's designers rely on.
	dev, oracle := scFixture(t)
	m := TrainWithSideChannel(oracle, PowerModel{SigmaHW: 0.5}, 800, 15, rng.New(71))
	raw := m.AccuracyRaw(dev, 300, rng.New(72), 0)
	z := SideChannelZAccuracy(m, oracle, 200, rng.New(73))
	if raw < 0.55 {
		t.Errorf("weight regression learned nothing at all: raw %.3f", raw)
	}
	if z > 0.6 {
		t.Errorf("aggregate HW leak broke the obfuscation (z=%.3f); model too strong", z)
	}
}

func TestPerBitEMLeakBreaksObfuscation(t *testing.T) {
	// At per-latch resolution the side channel hands out noisy raw labels
	// and the combined attack of [18] succeeds despite the XOR network.
	dev, oracle := scFixture(t)
	m := TrainWithSideChannel(oracle, PowerModel{SigmaHW: 0.3, PerBit: true}, 800, 15, rng.New(74))
	raw := m.AccuracyRaw(dev, 300, rng.New(75), 0)
	z := SideChannelZAccuracy(m, oracle, 200, rng.New(76))
	if raw < 0.95 {
		t.Errorf("per-bit leak should give near-perfect raw models, got %.3f", raw)
	}
	if z < 0.85 {
		t.Errorf("combined attack should defeat obfuscation, z=%.3f", z)
	}
}

func TestDualRailCountermeasureRestoresSecurity(t *testing.T) {
	dev, oracle := scFixture(t)
	m := TrainWithSideChannel(oracle, PowerModel{SigmaHW: 0.3, PerBit: true, ConstantWeight: true}, 800, 15, rng.New(77))
	z := SideChannelZAccuracy(m, oracle, 200, rng.New(78))
	// Back to (at most) the bias floor of the leak-free attack.
	if z > 0.8 {
		t.Errorf("countermeasure failed: z=%.3f", z)
	}
	_ = dev
}

func TestLeakFunctions(t *testing.T) {
	src := rng.New(79)
	p := PowerModel{SigmaHW: 0}
	y := []uint8{1, 0, 1, 1}
	if got := p.Leak(y, src); got != 3 {
		t.Errorf("Leak = %v, want 3", got)
	}
	cm := PowerModel{SigmaHW: 0, ConstantWeight: true}
	if got := cm.Leak(y, src); got != 4 {
		t.Errorf("countermeasure Leak = %v, want len(y)", got)
	}
	v := p.LeakVector(y, src)
	for i, bit := range y {
		if v[i] != float64(bit) {
			t.Errorf("LeakVector[%d] = %v", i, v[i])
		}
	}
	cv := cm.LeakVector(y, src)
	for i := range cv {
		if cv[i] != 1 {
			t.Errorf("countermeasure LeakVector[%d] = %v, want 1", i, cv[i])
		}
	}
}

func TestLogitSigmoidInverse(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if got := sigmoid(logit(p)); got < p-1e-9 || got > p+1e-9 {
			t.Errorf("sigmoid(logit(%v)) = %v", p, got)
		}
	}
}
