package attacks

import (
	"math"

	"pufatt/internal/core"
	"pufatt/internal/rng"
)

// Power side-channel attack on the obfuscation network (Section 4.1,
// "Side-channel Attack Resiliency"; Mahmoud et al. [18]). The XOR network
// hides the raw responses from the adversary's *digital* view, but the
// response registers' switching power leaks their Hamming weight. Combining
// that analog hint with machine learning re-enables modeling: the adversary
// trains the per-bit raw models against the leaked weights (a sum-of-
// sigmoids regression) instead of the hidden bits, then predicts z as the
// XOR of its predicted raw responses.
//
// The countermeasure the paper points to — making power consumption
// independent of the data, e.g. dual-rail precharge latches — is modelled
// by the ConstantWeight flag, which collapses the leak to a constant and
// must return the attack to the obfuscation-only baseline.

// PowerModel describes the leakage of one raw-response latch event.
type PowerModel struct {
	// SigmaHW is the measurement noise of the leak, in bits.
	SigmaHW float64
	// PerBit selects the side-channel resolution. False models a global
	// power trace leaking only the Hamming weight of the whole response
	// register bank — which our evaluation shows is NOT sufficient to
	// defeat the obfuscation (the z-composition needs near-perfect raw
	// models). True models a localised EM probe resolving each arbiter
	// latch individually — the resolution at which the [18]-style combined
	// attack succeeds.
	PerBit bool
	// ConstantWeight models the dual-rail/precharge countermeasure: the
	// leak carries no data dependence at either resolution.
	ConstantWeight bool
}

// Leak returns the observed aggregate side-channel sample for a raw
// response (PerBit false).
func (p PowerModel) Leak(y []uint8, src *rng.Source) float64 {
	if p.ConstantWeight {
		return float64(len(y)) + src.NormMS(0, p.SigmaHW)
	}
	w := 0.0
	for _, bit := range y {
		w += float64(bit)
	}
	return w + src.NormMS(0, p.SigmaHW)
}

// LeakVector returns the observed per-latch samples (PerBit true).
func (p PowerModel) LeakVector(y []uint8, src *rng.Source) []float64 {
	out := make([]float64, len(y))
	for i, bit := range y {
		v := float64(bit)
		if p.ConstantWeight {
			v = 1 // every dual-rail latch toggles exactly one rail
		}
		out[i] = v + src.NormMS(0, p.SigmaHW)
	}
	return out
}

// TrainWithSideChannel trains raw per-bit models from (challenge, leaked
// weight) pairs gathered while the obfuscated interface is queried. The
// returned model predicts raw responses; use PredictZFromRaw / the
// evaluation helpers for end-to-end z accuracy.
func TrainWithSideChannel(oracle *ObfuscatedOracle, power PowerModel, nTrain, epochs int, src *rng.Source) *MLModel {
	if power.PerBit {
		return trainWithPerBitLeak(oracle, power, nTrain, epochs, src)
	}
	dev := oracle.dev
	width := dev.Design().Config().Width
	bits := dev.Design().ResponseBits()
	feat := rawFeatures(width)

	// Gather the trace set: every obfuscated query exposes eight
	// challenge/leak pairs.
	type sample struct {
		x    []float64
		leak float64
	}
	samples := make([]sample, 0, nTrain*8)
	leakSrc := src.Sub("leak-noise")
	for k := 0; k < nTrain; k++ {
		seed := uint32(src.Uint64())
		for j := 0; j < 8; j++ {
			ch := dev.Design().ExpandChallenge(uint64(seed), j)
			y := dev.NoiselessResponse(ch)
			samples = append(samples, sample{x: feat(ch), leak: power.Leak(y, leakSrc)})
		}
	}

	// The sum-of-sigmoids loss is invariant under permuting the per-bit
	// sub-models, so unconstrained training learns a decomposition with
	// scrambled bit identities — useless against the position-sensitive
	// obfuscation fold. The attacker breaks the symmetry with physics:
	// sum bit b of a ripple-carry adder depends only on operand positions
	// ≤ b (and in practice on a short window of them), so each sub-model
	// is restricted to its physically reachable features.
	nf := 1 + 4*width
	masks := make([][]int, bits)
	for b := 0; b < bits; b++ {
		lo := b - 12
		if lo < 0 {
			lo = 0
		}
		idx := []int{0} // bias always included
		for p := lo; p <= b && p < width; p++ {
			idx = append(idx, 1+4*p, 2+4*p, 3+4*p, 4+4*p)
		}
		masks[b] = idx
	}
	w := make([][]float64, bits)
	for b := range w {
		w[b] = make([]float64, nf)
	}
	lr := 0.02
	sgd := src.Sub("sgd")
	for e := 0; e < epochs; e++ {
		for _, idx := range sgd.Perm(len(samples)) {
			s := samples[idx]
			// Predicted weight = Σ_b sigmoid(w_b · x) over each bit's
			// feature window.
			preds := make([]float64, bits)
			sum := 0.0
			for b := 0; b < bits; b++ {
				var dot float64
				for _, i := range masks[b] {
					dot += w[b][i] * s.x[i]
				}
				preds[b] = sigmoid(dot)
				sum += preds[b]
			}
			err := s.leak - sum
			for b := 0; b < bits; b++ {
				g := err * preds[b] * (1 - preds[b])
				for _, i := range masks[b] {
					w[b][i] += lr * g * s.x[i]
				}
			}
		}
	}
	return &MLModel{width: width, bits: bits, weights: w, features: feat}
}

// trainWithPerBitLeak trains ordinary per-bit logistic models against
// thresholded per-latch leaks: at EM-probe resolution the side channel
// hands the adversary noisy raw labels, so the obfuscation's hiding of the
// digital response is moot.
func trainWithPerBitLeak(oracle *ObfuscatedOracle, power PowerModel, nTrain, epochs int, src *rng.Source) *MLModel {
	dev := oracle.dev
	width := dev.Design().Config().Width
	bits := dev.Design().ResponseBits()
	feat := rawFeatures(width)
	xs := make([][]float64, 0, nTrain*8)
	ys := make([][]uint8, 0, nTrain*8)
	leakSrc := src.Sub("leak-noise")
	for k := 0; k < nTrain; k++ {
		seed := uint32(src.Uint64())
		for j := 0; j < 8; j++ {
			ch := dev.Design().ExpandChallenge(uint64(seed), j)
			y := dev.NoiselessResponse(ch)
			leak := power.LeakVector(y, leakSrc)
			labels := make([]uint8, bits)
			for i, v := range leak {
				if v > 0.5 {
					labels[i] = 1
				}
			}
			xs = append(xs, feat(ch))
			ys = append(ys, labels)
		}
	}
	return &MLModel{
		width:    width,
		bits:     bits,
		weights:  trainLogistic(xs, ys, bits, epochs, 0.03, src.Sub("sgd")),
		features: feat,
	}
}

// PredictZFromRaw predicts the obfuscated output for a seed by running the
// raw model over the eight expanded challenges and applying the public
// obfuscation function.
func (m *MLModel) PredictZFromRaw(dev *core.Device, seed uint32) []uint8 {
	n := m.bits / 2
	z := make([]uint8, m.bits)
	for j := 0; j < 8; j++ {
		ch := dev.Design().ExpandChallenge(uint64(seed), j)
		y := m.Predict(ch)
		half := j & 1 // fold target: low half for even j, high for odd
		for i := 0; i < n; i++ {
			z[half*n+i] ^= (y[i] ^ y[i+n]) & 1
		}
	}
	return z
}

// SideChannelZAccuracy measures per-bit z prediction accuracy of a raw
// model (trained with or without the side channel) against the oracle.
func SideChannelZAccuracy(m *MLModel, oracle *ObfuscatedOracle, nTest int, src *rng.Source) float64 {
	correct, total := 0, 0
	for k := 0; k < nTest; k++ {
		seed := uint32(src.Uint64())
		want := oracle.Z(seed)
		got := m.PredictZFromRaw(oracle.dev, seed)
		for i := range want {
			if got[i] == want[i] {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total)
}

// logit is kept for symmetry with sigmoid in tests.
func logit(p float64) float64 { return math.Log(p / (1 - p)) }
