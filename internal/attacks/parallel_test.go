package attacks

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/rng"
)

// Training-set generation runs on the parallel batch engine; the trained
// weights must be bit-identical for every worker count, because the labels
// are noiseless (deterministic physics) and SGD ordering depends only on
// the caller's RNG.
func TestParallelDeterminismTraining(t *testing.T) {
	counts := []int{1, 4, 0}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		counts = append(counts, g)
	}
	cfg := core.DefaultConfig()
	cfg.Width = 16
	var refRaw, refObf *MLModel
	for i, w := range counts {
		dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(80), 0)
		m := TrainRawModel(dev, 400, 5, rng.New(81), w)
		oracle, err := NewObfuscatedOracle(dev)
		if err != nil {
			t.Fatal(err)
		}
		mo := TrainObfuscatedModel(oracle, 200, 5, rng.New(82), w)
		if i == 0 {
			refRaw, refObf = m, mo
			continue
		}
		if !reflect.DeepEqual(m.weights, refRaw.weights) {
			t.Errorf("raw model weights at workers=%d differ from workers=%d", w, counts[0])
		}
		if !reflect.DeepEqual(mo.weights, refObf.weights) {
			t.Errorf("obfuscated model weights at workers=%d differ from workers=%d", w, counts[0])
		}
	}
}

// ZBatch must agree bit-for-bit with the sequential oracle.
func TestZBatchMatchesSequential(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(83), 0)
	oracle, err := NewObfuscatedOracle(dev)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(84)
	seeds := make([]uint32, 50)
	for k := range seeds {
		seeds[k] = uint32(src.Uint64())
	}
	batch := oracle.ZBatch(seeds, 3)
	for k, seed := range seeds {
		if want := oracle.Z(seed); !bytes.Equal(batch[k], want) {
			t.Fatalf("seed %#x: batch z %v, sequential %v", seed, batch[k], want)
		}
	}
}
