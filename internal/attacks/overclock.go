package attacks

import (
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

// OverclockPoint is one sample of the overclocking sweep: the clock factor
// relative to the PUF's maximum reliable frequency, and the resulting raw
// PUF response corruption.
type OverclockPoint struct {
	Factor float64
	// InvalidBitFraction is the fraction of response bits whose races had
	// not resolved by the latch deadline.
	InvalidBitFraction float64
	// ResponseHD is the mean Hamming distance (bits) between the clocked
	// response and the reliable-clock reference.
	ResponseHD float64
	// ChallengeCorruptFraction is the fraction of challenges for which at
	// least one response bit failed to latch cleanly — the quantity that
	// matters for a multi-query PUF() invocation.
	ChallengeCorruptFraction float64
}

// OverclockSweep measures PUF response corruption across clock factors.
// factor < 1 is a reliable clock; factor > 1 violates the setup condition
// for at least the slowest challenges.
func OverclockSweep(dev *core.Device, port *mcu.DevicePort, factors []float64, trials int, src *rng.Source) []OverclockPoint {
	maxF := port.MaxReliableFreqHz()
	setup := port.SetupPs
	bits := dev.Design().ResponseBits()
	out := make([]OverclockPoint, 0, len(factors))
	for _, factor := range factors {
		cycle := 1e12 / (maxF * factor)
		var invalid, hd stats.Summary
		corrupt := 0
		chSrc := src.Sub("challenges") // same challenges per factor
		for k := 0; k < trials; k++ {
			ch := dev.Design().ExpandChallenge(chSrc.Uint64(), 0)
			ref := append([]uint8(nil), dev.NoiselessResponse(ch)...)
			resp, valid := dev.ClockedResponse(ch, cycle, setup)
			invalid.Add(float64(bits-valid) / float64(bits))
			if valid != bits {
				corrupt++
			}
			hd.Add(float64(stats.HammingDistance(ref, resp)))
		}
		out = append(out, OverclockPoint{
			Factor:                   factor,
			InvalidBitFraction:       invalid.Mean(),
			ResponseHD:               hd.Mean(),
			ChallengeCorruptFraction: float64(corrupt) / float64(trials),
		})
	}
	return out
}
