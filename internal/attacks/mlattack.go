package attacks

import (
	"fmt"
	"math"

	"pufatt/internal/core"
	"pufatt/internal/obfuscate"
	"pufatt/internal/rng"
)

// This file implements the machine-learning modeling attack of Rührmair et
// al. against the ALU PUF, and its evaluation against the XOR obfuscation
// network (Section 2, "Response Obfuscation", and Section 4.1,
// "Side-channel Attack Resiliency").
//
// The model is per-response-bit logistic regression over physically
// motivated features: for each operand position, the operand bits
// themselves plus the carry generate (a·b) and propagate (a⊕b) indicators
// that govern the ripple-carry chain the ALU PUF races. This is the
// additive-delay-model analogue for the ALU PUF's structure.

// MLModel is a trained per-bit linear model of a PUF.
type MLModel struct {
	// width of the PUF operands; featureFn maps a challenge to features.
	width    int
	bits     int
	weights  [][]float64
	features func(challenge []uint8) []float64
}

// rawFeatures builds [bias, a_i, b_i, g_i, p_i] in ±1 encoding.
func rawFeatures(width int) func([]uint8) []float64 {
	return func(ch []uint8) []float64 {
		f := make([]float64, 1+4*width)
		f[0] = 1
		pm := func(b uint8) float64 { return float64(b)*2 - 1 }
		for i := 0; i < width; i++ {
			a, b := ch[i], ch[width+i]
			f[1+4*i] = pm(a)
			f[2+4*i] = pm(b)
			f[3+4*i] = pm(a & b)
			f[4+4*i] = pm(a ^ b)
		}
		return f
	}
}

// seedFeatures builds [bias, s_0..s_31] in ±1 encoding from a 32-bit
// challenge seed, for attacking the obfuscated interface (the adversary
// only controls the seed; the eight underlying raw challenges are derived
// by the public expansion).
func seedFeatures(seed uint32) []float64 {
	f := make([]float64, 33)
	f[0] = 1
	for i := 0; i < 32; i++ {
		f[1+i] = float64(seed>>uint(i)&1)*2 - 1
	}
	return f
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// trainLogistic runs SGD over the dataset (features xs, labels per bit ys).
func trainLogistic(xs [][]float64, ys [][]uint8, bits, epochs int, lr float64, src *rng.Source) [][]float64 {
	nf := len(xs[0])
	w := make([][]float64, bits)
	for b := range w {
		w[b] = make([]float64, nf)
	}
	for e := 0; e < epochs; e++ {
		order := src.Perm(len(xs))
		for _, idx := range order {
			x := xs[idx]
			for b := 0; b < bits; b++ {
				var dot float64
				wb := w[b]
				for i, xi := range x {
					dot += wb[i] * xi
				}
				grad := float64(ys[idx][b]) - sigmoid(dot)
				for i, xi := range x {
					wb[i] += lr * grad * xi
				}
			}
		}
	}
	return w
}

// TrainRawModel trains the modeling attack on nTrain observed raw CRPs of
// the device (noiseless responses: the attacker's best case). The training
// set is generated on the parallel batch engine with the given worker count
// (0 = GOMAXPROCS); the resulting model is bit-identical for every worker
// count, since noiseless evaluation is deterministic and SGD ordering
// depends only on src.
func TrainRawModel(dev *core.Device, nTrain, epochs int, src *rng.Source, workers int) *MLModel {
	d := dev.Design()
	width := d.Config().Width
	bits := d.ResponseBits()
	feat := rawFeatures(width)
	challenges := core.ChallengeMatrix(d, nTrain)
	for k := range challenges {
		d.ExpandChallengeInto(challenges[k], src.Uint64(), 0)
	}
	ys := dev.NoiselessResponses(challenges, workers)
	xs := make([][]float64, nTrain)
	for k := range xs {
		xs[k] = feat(challenges[k])
	}
	return &MLModel{
		width:    width,
		bits:     bits,
		weights:  trainLogistic(xs, ys, bits, epochs, 0.03, src.Sub("sgd")),
		features: feat,
	}
}

// Predict returns the model's response prediction for a challenge.
func (m *MLModel) Predict(challenge []uint8) []uint8 {
	x := m.features(challenge)
	out := make([]uint8, m.bits)
	for b := range out {
		var dot float64
		for i, xi := range x {
			dot += m.weights[b][i] * xi
		}
		if dot > 0 {
			out[b] = 1
		}
	}
	return out
}

// AccuracyRaw measures per-bit prediction accuracy on nTest fresh
// challenges against the device's noiseless responses, evaluated on the
// batch engine (workers knob, 0 = GOMAXPROCS).
func (m *MLModel) AccuracyRaw(dev *core.Device, nTest int, src *rng.Source, workers int) float64 {
	d := dev.Design()
	challenges := core.ChallengeMatrix(d, nTest)
	for k := range challenges {
		d.ExpandChallengeInto(challenges[k], src.Uint64(), 0)
	}
	wants := dev.NoiselessResponses(challenges, workers)
	correct, total := 0, 0
	for k := range challenges {
		got := m.Predict(challenges[k])
		for i := range wants[k] {
			if got[i] == wants[k][i] {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total)
}

// ObfuscatedOracle produces noiseless obfuscated outputs z for a seed — the
// interface the adversary actually observes when the obfuscation network is
// in place.
type ObfuscatedOracle struct {
	dev *core.Device
	net *obfuscate.Network
}

// NewObfuscatedOracle wraps a device.
func NewObfuscatedOracle(dev *core.Device) (*ObfuscatedOracle, error) {
	bits := dev.Design().ResponseBits()
	net, err := obfuscate.New(bits)
	if err != nil {
		return nil, fmt.Errorf("attacks: %w", err)
	}
	return &ObfuscatedOracle{dev: dev, net: net}, nil
}

// Z returns the noiseless obfuscated output for a seed.
func (o *ObfuscatedOracle) Z(seed uint32) []uint8 {
	rs := make([][]uint8, obfuscate.ResponsesPerOutput)
	for j := range rs {
		ch := o.dev.Design().ExpandChallenge(uint64(seed), j)
		rs[j] = append([]uint8(nil), o.dev.NoiselessResponse(ch)...)
	}
	return o.net.MustApply(rs)
}

// ZBatch evaluates the obfuscated outputs for many seeds on the parallel
// batch engine: the G underlying raw challenges per seed are expanded into
// one flat batch, evaluated with the given worker count, and folded through
// the obfuscation network. Bit-identical to calling Z per seed.
func (o *ObfuscatedOracle) ZBatch(seeds []uint32, workers int) [][]uint8 {
	d := o.dev.Design()
	g := obfuscate.ResponsesPerOutput
	challenges := core.ChallengeMatrix(d, len(seeds)*g)
	for k, seed := range seeds {
		for j := 0; j < g; j++ {
			d.ExpandChallengeInto(challenges[k*g+j], uint64(seed), j)
		}
	}
	raw := o.dev.NoiselessResponses(challenges, workers)
	zs := make([][]uint8, len(seeds))
	for k := range seeds {
		zs[k] = o.net.MustApply(raw[k*g : (k+1)*g])
	}
	return zs
}

// TrainObfuscatedModel trains the same attack against the obfuscated
// interface: seed in, z out. The training oracle runs on the batch engine
// with the given worker count.
func TrainObfuscatedModel(oracle *ObfuscatedOracle, nTrain, epochs int, src *rng.Source, workers int) *MLModel {
	bits := oracle.dev.Design().ResponseBits()
	seeds := make([]uint32, nTrain)
	xs := make([][]float64, nTrain)
	for k := range seeds {
		seeds[k] = uint32(src.Uint64())
		xs[k] = seedFeatures(seeds[k])
	}
	ys := oracle.ZBatch(seeds, workers)
	return &MLModel{
		width:    32,
		bits:     bits,
		weights:  trainLogistic(xs, ys, bits, epochs, 0.03, src.Sub("sgd")),
		features: func(ch []uint8) []float64 { panic("attacks: obfuscated model predicts from seeds") },
	}
}

// PredictZ returns the obfuscated model's prediction for a seed.
func (m *MLModel) PredictZ(seed uint32) []uint8 {
	x := seedFeatures(seed)
	out := make([]uint8, m.bits)
	for b := range out {
		var dot float64
		for i, xi := range x {
			dot += m.weights[b][i] * xi
		}
		if dot > 0 {
			out[b] = 1
		}
	}
	return out
}

// AccuracyObfuscated measures the obfuscated model on fresh seeds, with the
// oracle running on the batch engine.
func (m *MLModel) AccuracyObfuscated(oracle *ObfuscatedOracle, nTest int, src *rng.Source, workers int) float64 {
	seeds := make([]uint32, nTest)
	for k := range seeds {
		seeds[k] = uint32(src.Uint64())
	}
	wants := oracle.ZBatch(seeds, workers)
	correct, total := 0, 0
	for k := range seeds {
		got := m.PredictZ(seeds[k])
		for i := range wants[k] {
			if got[i] == wants[k][i] {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total)
}
