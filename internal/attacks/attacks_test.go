package attacks

import (
	"math"
	"strings"
	"testing"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

// scenario wires up the honest world: device, port, image, prover,
// verifier — the target all adversaries attack.
type scenario struct {
	dev      *core.Device
	port     *mcu.DevicePort
	image    *swatt.Image
	prover   *attest.Prover
	verifier *attest.Verifier
	params   swatt.Params
}

func newScenario(t *testing.T, seed uint64) *scenario {
	t.Helper()
	dev := core.MustNewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(seed), 0)
	port := mcu.MustNewDevicePort(dev)
	p := swatt.Params{MemWords: 1024, Chunks: 4, BlocksPerChunk: 16, PRG: swatt.PRGMix32}
	payload := make([]uint32, 300)
	src := rng.New(seed + 1)
	for i := range payload {
		payload[i] = src.Uint32()
	}
	image, err := swatt.BuildImage(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	verifier, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	// Timed attestation needs the timing policy calibrated to the actual
	// compute scale: the honest prover runs microseconds of checksum at
	// ~700 MHz, so the verifier here plays the role of a local/VIPER-style
	// checker with a fast bus and a tight allowance, derived so that the
	// honest run fits comfortably and the forgery overhead cannot hide.
	extra, honest, _, err := ForgeryOverheadCycles(image, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	overheadT := float64(extra) / prover.FreqHz
	verifier.ComputeSlack = 0.25 * float64(extra) / float64(honest)
	link := localLink()
	linkCost := link.TransferSeconds(attest.ChallengeBits) + link.TransferSeconds((8+32)*8+8*p.Chunks*attest.HelperBitsPerWord+32)
	verifier.NetworkAllowance = linkCost + 0.25*overheadT
	return &scenario{dev: dev, port: port, image: image, prover: prover, verifier: verifier, params: p}
}

// localLink models the verifier sitting on a fast local bus (the VIPER
// setting), where microsecond compute overheads are observable.
func localLink() attest.Link {
	return attest.Link{LatencySeconds: 5e-7, BitsPerSecond: 1e9}
}

func fixedChallenge(nonce uint32) attest.Challenge {
	return attest.Challenge{Session: 1, Nonce: nonce, PUFSeed: nonce * 3}
}

func verifyLocal(s *scenario, agent attest.ProverAgent, ch attest.Challenge) attest.Result {
	resp, compute, err := agent.Respond(ch)
	if err != nil {
		return attest.Result{Reason: "agent error: " + err.Error()}
	}
	link := localLink()
	elapsed := link.TransferSeconds(attest.ChallengeBits) + compute + link.TransferSeconds(resp.Bits())
	return s.verifier.Verify(ch, resp, elapsed)
}

func TestHonestBaselineAccepted(t *testing.T) {
	s := newScenario(t, 1)
	res := verifyLocal(s, s.prover, fixedChallenge(0x11))
	if !res.Accepted {
		t.Fatalf("honest baseline rejected: %s", res.Reason)
	}
}

func TestForgeryComputesCorrectChecksumButMissesDeadline(t *testing.T) {
	s := newScenario(t, 2)
	malware := make([]uint32, 300)
	for i := range malware {
		malware[i] = 0xEE71 // the infection pattern
	}
	forger, err := NewForgeryProver(s.image, malware, s.port, s.prover.FreqHz)
	if err != nil {
		t.Fatal(err)
	}
	ch := fixedChallenge(0x22)
	resp, compute, err := forger.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	// The forgery must produce the CORRECT tag (that is its whole point):
	// verify with unlimited time.
	if res := s.verifier.Verify(ch, resp, 0); !res.Accepted {
		t.Fatalf("forgery checksum wrong — attack implementation broken: %s", res.Reason)
	}
	// But with honest timing it must exceed δ.
	honestResp, honestCompute, _ := s.prover.Respond(ch)
	_ = honestResp
	if compute <= honestCompute {
		t.Fatalf("forgery compute %v not slower than honest %v", compute, honestCompute)
	}
	res := verifyLocal(s, forger, ch)
	if res.Accepted {
		t.Fatalf("forgery accepted: elapsed %v vs δ %v", res.Elapsed, res.Delta)
	}
	if !strings.Contains(res.Reason, "time bound") {
		t.Errorf("forgery rejected for the wrong reason: %s", res.Reason)
	}
}

func TestForgeryOverheadMeasurable(t *testing.T) {
	s := newScenario(t, 3)
	extra, honest, forged, err := ForgeryOverheadCycles(s.image, s.port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	if extra == 0 || forged != honest+extra {
		t.Fatalf("overhead accounting: extra=%d honest=%d forged=%d", extra, honest, forged)
	}
	rel := float64(extra) / float64(honest)
	if rel < 0.02 || rel > 0.5 {
		t.Errorf("relative forgery overhead %.3f outside the plausible band", rel)
	}
	factor, err := OverclockFactorToHide(s.image, s.port.Votes, s.verifier.ComputeSlack)
	if err != nil {
		t.Fatal(err)
	}
	if factor <= 1 {
		t.Errorf("overclock factor to hide = %v, must exceed 1", factor)
	}
}

func TestOverclockedForgeryDefeatedByPUF(t *testing.T) {
	// The paper's headline: the adversary overclocks to hide the forgery
	// overhead; the time bound is now met, but the PUF latch clock rides
	// the CPU clock, responses corrupt, and the checksum is wrong.
	s := newScenario(t, 4)
	factor, err := OverclockFactorToHide(s.image, s.port.Votes, s.verifier.ComputeSlack)
	if err != nil {
		t.Fatal(err)
	}
	// The base frequency is tuned to 0.98 of the PUF limit, so factor>1.02
	// overclocks past it.
	if factor*0.98 <= 1.0 {
		t.Skipf("forgery overhead too small to force an unreliable clock (factor %v)", factor)
	}
	forger, err := NewOverclockedForgeryProver(s.image, []uint32{0xBAD}, s.port, s.prover.FreqHz, factor*1.05)
	if err != nil {
		t.Fatal(err)
	}
	ch := fixedChallenge(0x33)
	res := verifyLocal(s, forger, ch)
	if res.Accepted {
		t.Fatal("overclocked forgery accepted — the PUF clock coupling failed")
	}
	// It must now fail on the response, not (only) the time bound.
	if strings.Contains(res.Reason, "time bound") {
		t.Fatalf("overclocking did not even hide the time overhead: %s", res.Reason)
	}
}

func TestOracleProxyExceedsDeadline(t *testing.T) {
	s := newScenario(t, 5)
	proxy := &OracleProxyProver{
		Expected: s.image,
		Pipeline: core.MustNewPipeline(s.dev),
		Link:     attest.DefaultLink(),
	}
	ch := fixedChallenge(0x44)
	// The proxy produces the correct response (it uses the real PUF)...
	resp, compute, err := proxy.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if res := s.verifier.Verify(ch, resp, 0); !res.Accepted {
		t.Fatalf("oracle proxy response wrong — attack implementation broken: %s", res.Reason)
	}
	// ...but the per-chunk round trips dwarf the honest compute time.
	_, honestCompute, _ := s.prover.Respond(ch)
	if compute < 10*honestCompute {
		t.Errorf("proxy time %v not clearly dominated by link costs (honest %v)", compute, honestCompute)
	}
	res := verifyLocal(s, proxy, ch)
	if res.Accepted {
		t.Fatal("oracle proxy attack accepted")
	}
	if !strings.Contains(res.Reason, "time bound") {
		t.Errorf("proxy rejected for the wrong reason: %s", res.Reason)
	}
}

func TestOracleAttackTimeModel(t *testing.T) {
	link := attest.Link{LatencySeconds: 1e-3, BitsPerSecond: 1e5}
	got := OracleAttackTime(10, link)
	out, back := oracleBitsPerChunk()
	want := 10 * (2*1e-3 + float64(out+back)/1e5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("OracleAttackTime = %v, want %v", got, want)
	}
}

func TestBandwidthToBeatDelta(t *testing.T) {
	// With latency already exceeding delta, no bandwidth helps.
	if got := BandwidthToBeatDelta(64, 1e-3, 0.01); got != -1 {
		t.Errorf("latency-bound case = %v, want -1", got)
	}
	// Otherwise the returned bandwidth makes the attack exactly fit.
	bw := BandwidthToBeatDelta(16, 1e-4, 0.05)
	if bw <= 0 {
		t.Fatalf("bandwidth = %v", bw)
	}
	link := attest.Link{LatencySeconds: 1e-4, BitsPerSecond: bw}
	if tAttack := OracleAttackTime(16, link); math.Abs(tAttack-0.05) > 1e-9 {
		t.Errorf("attack at computed bandwidth takes %v, want 0.05", tAttack)
	}
}

func TestMLAttackBreaksRawPUF(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(6), 0)
	m := TrainRawModel(dev, 3000, 25, rng.New(7), 0)
	acc := m.AccuracyRaw(dev, 500, rng.New(8), 0)
	if acc < 0.95 {
		t.Errorf("raw modeling accuracy %.3f; the raw ALU PUF should be near fully modelable", acc)
	}
}

func TestMLAttackDefeatedByObfuscation(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(9), 0)
	oracle, err := NewObfuscatedOracle(dev)
	if err != nil {
		t.Fatal(err)
	}
	m := TrainObfuscatedModel(oracle, 2000, 25, rng.New(10), 0)
	acc := m.AccuracyObfuscated(oracle, 300, rng.New(11), 0)
	if acc > 0.85 {
		t.Errorf("obfuscated modeling accuracy %.3f; obfuscation is not working", acc)
	}
	// The practically relevant metric: predicting a full z word. At ~0.7
	// per-bit the full-word success rate collapses.
	fullOK := 0
	src := rng.New(12)
	const trials = 200
	for k := 0; k < trials; k++ {
		seed := uint32(src.Uint64())
		want := oracle.Z(seed)
		got := m.PredictZ(seed)
		match := true
		for i := range want {
			if want[i] != got[i] {
				match = false
				break
			}
		}
		if match {
			fullOK++
		}
	}
	if frac := float64(fullOK) / trials; frac > 0.1 {
		t.Errorf("full-z prediction rate %.3f; attack should be ineffective", frac)
	}
}

func TestOverclockSweepMonotonicity(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Width = 16
	dev := core.MustNewDevice(core.MustNewDesign(cfg), rng.New(13), 0)
	port := mcu.MustNewDevicePort(dev)
	pts := OverclockSweep(dev, port, []float64{0.8, 1.0, 1.3, 1.8, 2.5}, 60, rng.New(14))
	if pts[0].InvalidBitFraction != 0 {
		t.Errorf("reliable clock already has %.3f invalid bits", pts[0].InvalidBitFraction)
	}
	last := pts[len(pts)-1]
	// Per-challenge corruption is a tail phenomenon (typical carry chains
	// are far shorter than the static critical path); even a small bit
	// fraction corrupts most multi-query PUF() outputs. The protocol-level
	// kill switch is the port's worst-case timing monitor.
	if last.InvalidBitFraction < 0.005 {
		t.Errorf("2.5x overclock only corrupts %.4f of bits", last.InvalidBitFraction)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].InvalidBitFraction+1e-9 < pts[i-1].InvalidBitFraction {
			t.Errorf("invalid fraction not monotone: %+v", pts)
		}
	}
	if last.ResponseHD <= pts[0].ResponseHD {
		t.Error("response corruption did not grow with overclocking")
	}
}
