// Package attacks implements the adversaries of the paper's Section 4.2
// security analysis, each as runnable code against the real protocol stack:
//
//   - Forgery (memory-copy attack): the prover's attested region is
//     infected, but a modified checksum program redirects every memory read
//     to a pristine copy, producing the correct checksum at the cost of
//     extra cycles per round — which the time bound δ catches.
//   - Overclocking: the forger raises the CPU clock to hide those extra
//     cycles, which violates the PUF's setup-time condition and corrupts
//     the PUF responses — which the response check catches.
//   - PUF-oracle proxying: a fast external machine computes the checksum
//     but must fetch every z from the device over its constrained link —
//     which the bandwidth asymmetry catches.
//   - Machine-learning modeling: logistic-regression modeling of the raw
//     ALU PUF from observed CRPs, defeated by the XOR obfuscation network.
package attacks

import (
	"fmt"

	"pufatt/internal/attest"
	"pufatt/internal/mcu"
	"pufatt/internal/swatt"
)

// NewForgeryProver builds the memory-copy adversary: a prover whose
// attested region holds malware (and the redirecting checksum program)
// while a pristine copy of the expected memory sits above the scratch
// region. It returns the adversarial prover; run it through the normal
// protocol to observe the time-bound rejection.
func NewForgeryProver(expected *swatt.Image, malware []uint32, port *mcu.DevicePort, freqHz float64) (*attest.Prover, error) {
	img, err := swatt.BuildForgeryImage(expected.Layout.Params, expected, malware)
	if err != nil {
		return nil, fmt.Errorf("attacks: %w", err)
	}
	return attest.NewProver(img, port, freqHz), nil
}

// ForgeryOverheadCycles returns the extra cycles the forgery program costs
// relative to the honest program, and both absolute counts. This is the
// quantity the verifier's ComputeSlack must undercut.
func ForgeryOverheadCycles(expected *swatt.Image, votes int) (extra, honest, forged uint64, err error) {
	honest, err = swatt.ExpectedCycles(expected, votes)
	if err != nil {
		return 0, 0, 0, err
	}
	fimg, err := swatt.BuildForgeryImage(expected.Layout.Params, expected, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	forged, err = swatt.ExpectedCycles(fimg, votes)
	if err != nil {
		return 0, 0, 0, err
	}
	return forged - honest, honest, forged, nil
}

// OverclockFactorToHide returns the minimum clock-speedup factor an
// adversary needs so the forged computation fits the honest time budget
// (ignoring network terms): C_A/C_SWAT of Section 4.2's inequality.
func OverclockFactorToHide(expected *swatt.Image, votes int, slack float64) (float64, error) {
	extra, honest, forged, err := ForgeryOverheadCycles(expected, votes)
	if err != nil {
		return 0, err
	}
	_ = extra
	return float64(forged) / (float64(honest) * (1 + slack)), nil
}

// NewOverclockedForgeryProver builds the combined adversary of Section 4.2:
// the forgery prover with its CPU (and therefore the PUF latch clock)
// overclocked by the given factor above the honest base frequency. With a
// base frequency tuned to the PUF's reliability limit, the factor > 1
// corrupts PUF responses and the attestation still fails — the paper's
// headline security argument.
func NewOverclockedForgeryProver(expected *swatt.Image, malware []uint32, port *mcu.DevicePort, baseFreqHz, factor float64) (*attest.Prover, error) {
	p, err := NewForgeryProver(expected, malware, port, baseFreqHz*factor)
	if err != nil {
		return nil, err
	}
	return p, nil
}
