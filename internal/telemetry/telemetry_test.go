package telemetry

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("requests_total", "requests") != c {
		t.Fatal("re-registration returned a new counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("frames_total", "frames", "type")
	v.With("challenge").Add(3)
	v.With("response").Inc()
	if got := v.With("challenge").Value(); got != 3 {
		t.Fatalf("challenge = %d, want 3", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		`frames_total{type="challenge"} 3`,
		`frames_total{type="response"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // uniform over [0.5, 7.5]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 < 1 || p50 > 5 {
		t.Errorf("p50 = %g, want within [1, 5]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 4 || p99 > 8 {
		t.Errorf("p99 = %g, want within (4, 8]", p99)
	}
	sum := h.Summary()
	if sum.Count != 100 || sum.Sum != h.Sum() {
		t.Errorf("summary = %+v", sum)
	}
}

func TestHistogramTimerInjectableClock(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", "", []float64{0.1, 1, 10})
	// Fake clock: each reading advances 2 s. No sleeping anywhere.
	now := time.Unix(0, 0)
	clock := func() time.Time {
		now = now.Add(2 * time.Second)
		return now
	}
	stop := h.StartTimer(clock)
	stop()
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 2 {
		t.Fatalf("observed %g seconds, want 2", got)
	}
}

// parsePrometheus validates the text exposition format line by line and
// returns sample name{labels} → value.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		// Validate the name{labels} shape.
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("sample %q: unterminated label set", line)
			}
			name = key[:i]
		}
		if !validName(name) {
			t.Fatalf("sample %q: invalid metric name %q", line, name)
		}
		samples[key] = val
	}
	return samples
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(7)
	r.Gauge("b", "b").Set(1.25)
	h := r.HistogramVec("rtt_seconds", "round trips", []float64{0.01, 0.1, 1}, "path")
	h.With("sim").Observe(0.05)
	h.With("sim").Observe(0.5)
	h.With("sim").Observe(5)
	v := r.CounterVec("odd_total", "label escaping", "reason")
	v.With(`quote " backslash \ newline` + "\n").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheus(t, b.String())

	checks := map[string]float64{
		"a_total": 7,
		"b":       1.25,
		`rtt_seconds_bucket{path="sim",le="0.01"}`: 0,
		`rtt_seconds_bucket{path="sim",le="0.1"}`:  1,
		`rtt_seconds_bucket{path="sim",le="1"}`:    2,
		`rtt_seconds_bucket{path="sim",le="+Inf"}`: 3,
		`rtt_seconds_count{path="sim"}`:            3,
	}
	for key, want := range checks {
		got, ok := samples[key]
		if !ok {
			t.Errorf("missing sample %s in:\n%s", key, b.String())
			continue
		}
		if got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	if got := samples[`rtt_seconds_sum{path="sim"}`]; math.Abs(got-5.55) > 1e-9 {
		t.Errorf("sum = %g, want 5.55", got)
	}
	if !strings.Contains(b.String(), `reason="quote \" backslash \\ newline\n"`) {
		t.Errorf("label escaping broken:\n%s", b.String())
	}
}

func TestJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	r.Gauge("g", "").Set(0.5)
	h := r.Histogram("h_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if decoded["c_total"].(float64) != 2 {
		t.Errorf("c_total = %v", decoded["c_total"])
	}
	hist := decoded["h_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestRegistryPanicsOnKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "")
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("d_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter = %d, histogram = %d, want 8000", c.Value(), h.Count())
	}
}

func TestTracerSpansDeterministic(t *testing.T) {
	tr := NewTracer(4)
	// Stepping clock: each call advances 10 ms. No sleeps.
	now := time.Unix(1000, 0)
	tr.SetClock(func() time.Time {
		now = now.Add(10 * time.Millisecond)
		return now
	})
	root := tr.StartSpan("attest.session")
	root.SetAttr("session", "1")
	child := root.Child("puf_eval")
	child.Finish()
	root.Finish()

	if d := child.Duration(); d != 10*time.Millisecond {
		t.Errorf("child duration = %v, want 10ms", d)
	}
	if d := root.Duration(); d != 30*time.Millisecond {
		t.Errorf("root duration = %v, want 30ms", d)
	}
	recent := tr.Recent()
	if len(recent) != 1 || recent[0] != root {
		t.Fatalf("recent = %v", recent)
	}
	if recent[0].Attr("session") != "1" {
		t.Error("attr lost")
	}
	kids := recent[0].Children()
	if len(kids) != 1 || kids[0].Name() != "puf_eval" {
		t.Fatalf("children = %v", kids)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.SetClock(func() time.Time { return time.Unix(0, 0) })
	for i := 0; i < 5; i++ {
		s := tr.StartSpan("s" + strconv.Itoa(i))
		s.Finish()
	}
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring kept %d spans, want 2", len(recent))
	}
	if recent[0].Name() != "s3" || recent[1].Name() != "s4" {
		t.Errorf("ring = [%s %s], want [s3 s4]", recent[0].Name(), recent[1].Name())
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(2)
	tr.SetClock(func() time.Time { return time.Unix(42, 0) })
	s := tr.StartSpan("root")
	s.SetAttr("verdict", "accepted")
	s.Child("verify").Finish()
	s.Finish()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(decoded) != 1 || decoded[0]["name"] != "root" {
		t.Fatalf("decoded = %v", decoded)
	}
}
