package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpanIDsMintedDeterministically(t *testing.T) {
	mk := func() (TraceID, SpanID, SpanID) {
		tr := NewTracer(4)
		tr.SetIDSeed(42)
		root := tr.StartSpan("root")
		child := root.Child("child")
		return root.TraceID(), root.SpanID(), child.SpanID()
	}
	t1, s1, c1 := mk()
	t2, s2, c2 := mk()
	if t1 != t2 || s1 != s2 || c1 != c2 {
		t.Fatalf("seeded IDs not deterministic: (%v,%v,%v) vs (%v,%v,%v)", t1, s1, c1, t2, s2, c2)
	}
	if t1 == 0 || s1 == 0 || c1 == 0 {
		t.Fatal("zero ID minted (zero is reserved for absent)")
	}
}

func TestChildInheritsTraceAndParent(t *testing.T) {
	tr := NewTracer(4)
	tr.SetIDSeed(7)
	root := tr.StartSpan("session")
	child := root.Child("verify")
	if child.TraceID() != root.TraceID() {
		t.Fatal("child did not inherit the trace ID")
	}
	if child.ParentSpanID() != root.SpanID() {
		t.Fatal("child parent_span_id != root span_id")
	}
	if child.SpanID() == root.SpanID() {
		t.Fatal("child reused the root span ID")
	}
}

func TestStartSpanInTraceAdoptsRemoteContext(t *testing.T) {
	verifier := NewTracer(4)
	verifier.SetIDSeed(1)
	prover := NewTracer(4)
	prover.SetIDSeed(2)

	vsp := verifier.StartSpan("attest.session")
	tc := vsp.Context()
	psp := prover.StartSpanInTrace("attest.prove", tc)
	if psp.TraceID() != vsp.TraceID() {
		t.Fatal("prover span not stitched into the verifier's trace")
	}
	if psp.ParentSpanID() != vsp.SpanID() {
		t.Fatal("prover span not parented to the propagated span")
	}
	psp.Finish()
	vsp.Finish()
	if got := prover.ByTrace(vsp.TraceID()); len(got) != 1 || got[0] != psp {
		t.Fatalf("ByTrace on the prover ring = %v", got)
	}
	// An invalid context degrades to a fresh trace, never a zero one.
	orphan := prover.StartSpanInTrace("orphan", TraceContext{})
	if orphan.TraceID() == 0 || orphan.TraceID() == vsp.TraceID() {
		t.Fatalf("invalid context handling: trace = %v", orphan.TraceID())
	}
}

func TestSegmentRecordsComputedDuration(t *testing.T) {
	tr := NewTracer(4)
	tr.SetClock(fakeClock(time.Unix(50, 0), time.Millisecond))
	root := tr.StartSpan("session")
	start := time.Unix(50, 0)
	seg := root.Segment("prover_compute", start, 123*time.Millisecond)
	if got := seg.Duration(); got != 123*time.Millisecond {
		t.Fatalf("segment duration = %v, want 123ms", got)
	}
	if seg.TraceID() != root.TraceID() || seg.ParentSpanID() != root.SpanID() {
		t.Fatal("segment not attached to the parent trace")
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0] != seg {
		t.Fatalf("segment not in Children(): %v", kids)
	}
}

func TestTracerDropCounterOnEviction(t *testing.T) {
	tr := NewTracer(2)
	var metric Counter
	tr.SetDropCounter(&metric)
	for i := 0; i < 5; i++ {
		tr.StartSpan("s").Finish()
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3 (5 roots into a ring of 2)", got)
	}
	if metric.Value() != 3 {
		t.Fatalf("drop counter = %d, want 3", metric.Value())
	}
}

func TestTraceJSONCarriesIDs(t *testing.T) {
	tr := NewTracer(4)
	tr.SetIDSeed(9)
	sp := tr.StartSpan("session")
	sp.Child("verify").Finish()
	sp.Finish()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"trace_id": "` + sp.TraceID().String() + `"`,
		`"span_id": "` + sp.SpanID().String() + `"`,
		`"parent_span_id": "` + sp.SpanID().String() + `"`, // on the child
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s:\n%s", want, out)
		}
	}
}

// --- Histogram.Quantile edge cases (documented, test-enforced) ---

func TestQuantileEmptyHistogramIsNaN(t *testing.T) {
	h := newHistogram(nil)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%g) on empty histogram = %g, want NaN", q, got)
		}
	}
	if s := h.Summary(); !math.IsNaN(s.P50) || s.Count != 0 {
		t.Errorf("empty Summary = %+v, want NaN quantiles", s)
	}
}

func TestQuantileOutOfRangeClamps(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	if got := h.Quantile(-0.5); got != lo {
		t.Errorf("Quantile(-0.5) = %g, want clamp to Quantile(0) = %g", got, lo)
	}
	if got := h.Quantile(2); got != hi {
		t.Errorf("Quantile(2) = %g, want clamp to Quantile(1) = %g", got, hi)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Errorf("in-range quantiles NaN on non-empty histogram: %g, %g", lo, hi)
	}
}

func TestQuantileAllObservationsInInfBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1000) // beyond every finite bound: +Inf bucket
	}
	// Clamp-to-last-finite-bound behaviour: the estimator cannot
	// interpolate inside +Inf, so every quantile reports the last bound.
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if got := h.Quantile(q); got != 4 {
			t.Errorf("Quantile(%g) = %g, want 4 (last finite bound)", q, got)
		}
	}
}
