package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Multi-verifier scrape & federation: one process watching many verifier
// admin endpoints. ROADMAP item 2's sharded verifier tier needs the health
// registry to become a per-shard control plane — which means aggregating
// observability ACROSS processes, not just within one. The Federator polls
// N admin endpoints (the attest.Server admin HTTP), keeps each source's
// latest /metrics/history, /devices, /alerts, and /healthz bodies, tags
// every merged record with a "source" label, and re-serves the union on
// the same routes — so pufatt-top (or a Prometheus scrape) pointed at the
// federator sees the whole fleet as one surface.
//
// Merging is deliberately schema-light: device, alert, and series records
// are parsed as generic JSON objects and re-emitted with the added source
// field, so a federator built today keeps working when a newer verifier
// adds fields. Only /healthz is interpreted (to derive the fleet-wide
// worst status). A source that fails its scrape keeps its last good data,
// flagged stale, and degrades the merged health — an invisible verifier is
// an operational problem even when every visible one is clean.

// ScrapeSource names one admin endpoint to federate.
type ScrapeSource struct {
	// Name is the source label merged records carry ("shard-0").
	Name string
	// BaseURL is the admin endpoint root ("http://host:port").
	BaseURL string
}

// sourceData is the most recent scrape result for one source.
type sourceData struct {
	lastAttempt time.Time
	lastSuccess time.Time
	scrapes     uint64
	failures    uint64
	lastErr     string

	history []map[string]any // /metrics/history "series" entries
	devices []map[string]any // /devices entries
	alerts  []map[string]any // /alerts entries
	probes  []map[string]any // /probes entries (empty for pre-probe verifiers)
	healthz map[string]any   // /healthz object
}

// Federator scrapes many admin endpoints and re-serves the merged view.
// Safe for concurrent use.
type Federator struct {
	mu      sync.Mutex
	sources []ScrapeSource
	data    map[string]*sourceData
	client  *http.Client
	clock   func() time.Time
	// staleAfter marks a source stale when its last success is older than
	// this (0 disables staleness marking).
	staleAfter time.Duration
}

// DefaultScrapeTimeout bounds one source's whole scrape pass.
const DefaultScrapeTimeout = 5 * time.Second

// NewFederator builds a federator over the sources. Source names must be
// unique and non-empty.
func NewFederator(sources []ScrapeSource) (*Federator, error) {
	seen := make(map[string]bool, len(sources))
	for _, s := range sources {
		if s.Name == "" || s.BaseURL == "" {
			return nil, fmt.Errorf("telemetry: federation source needs name and URL: %+v", s)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("telemetry: duplicate federation source %q", s.Name)
		}
		seen[s.Name] = true
	}
	f := &Federator{
		sources: append([]ScrapeSource(nil), sources...),
		data:    make(map[string]*sourceData, len(sources)),
		client:  &http.Client{Timeout: DefaultScrapeTimeout},
		clock:   time.Now,
	}
	for _, s := range f.sources {
		f.data[s.Name] = &sourceData{}
	}
	return f, nil
}

// SetClient replaces the scrape HTTP client (nil restores the default).
func (f *Federator) SetClient(c *http.Client) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c == nil {
		c = &http.Client{Timeout: DefaultScrapeTimeout}
	}
	f.client = c
}

// SetClock injects the federator's clock (nil restores time.Now).
func (f *Federator) SetClock(now func() time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	f.clock = now
}

// SetStaleAfter marks sources stale when their last successful scrape is
// older than d (0 disables).
func (f *Federator) SetStaleAfter(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.staleAfter = d
}

// Sources returns the configured sources.
func (f *Federator) Sources() []ScrapeSource {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]ScrapeSource(nil), f.sources...)
}

// fetchJSON GETs url and decodes the body into v.
func (f *Federator) fetchJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	// /healthz answers 503 when a device is suspect — the body is still
	// the summary we want, so any status with a decodable body passes.
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	return nil
}

// scrapeOne fetches one source's admin surfaces. The four fetches share a
// context; a partial failure fails the pass (stale data is flagged, not
// silently mixed fresh-and-old).
func (f *Federator) scrapeOne(ctx context.Context, client *http.Client, src ScrapeSource) (*sourceData, error) {
	base := strings.TrimSuffix(src.BaseURL, "/")
	d := &sourceData{}
	var history struct {
		Series []map[string]any `json:"series"`
	}
	if err := f.fetchJSON(ctx, client, base+"/metrics/history", &history); err != nil {
		return nil, err
	}
	d.history = history.Series
	if err := f.fetchJSON(ctx, client, base+"/devices", &d.devices); err != nil {
		return nil, err
	}
	if err := f.fetchJSON(ctx, client, base+"/alerts", &d.alerts); err != nil {
		return nil, err
	}
	if err := f.fetchJSON(ctx, client, base+"/healthz", &d.healthz); err != nil {
		return nil, err
	}
	// /probes is optional: verifiers predating the canary prober 404 it
	// (with an HTML error body), and a missing canary surface must not
	// fail the whole pass — unlike the four core surfaces, absence here is
	// a version skew, not a blind spot. Decode failures yield no records.
	if err := f.fetchJSON(ctx, client, base+"/probes", &d.probes); err != nil {
		d.probes = nil
	}
	return d, nil
}

// Poll scrapes every source once, concurrently. Failed sources keep their
// previous data (flagged by lastErr/lastSuccess); Poll returns the number
// of sources that scraped clean.
func (f *Federator) Poll(ctx context.Context) int {
	f.mu.Lock()
	sources := append([]ScrapeSource(nil), f.sources...)
	client := f.client
	f.mu.Unlock()

	type result struct {
		name string
		data *sourceData
		err  error
	}
	results := make(chan result, len(sources))
	for _, src := range sources {
		go func(src ScrapeSource) {
			d, err := f.scrapeOne(ctx, client, src)
			results <- result{src.Name, d, err}
		}(src)
	}
	ok := 0
	for range sources {
		r := <-results
		f.mu.Lock()
		now := f.clock()
		cur := f.data[r.name]
		cur.lastAttempt = now
		cur.scrapes++
		if r.err != nil {
			cur.failures++
			cur.lastErr = r.err.Error()
		} else {
			r.data.lastAttempt = now
			r.data.lastSuccess = now
			r.data.scrapes = cur.scrapes
			r.data.failures = cur.failures
			f.data[r.name] = r.data
			ok++
		}
		f.mu.Unlock()
	}
	return ok
}

// Start polls every source at the given interval until the returned stop
// function is called.
func (f *Federator) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultTimeSeriesWindow
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				f.Poll(ctx)
				cancel()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// stale reports whether a source's data is stale under the staleAfter
// policy. Called with f.mu held.
func (f *Federator) staleLocked(d *sourceData) bool {
	if d.lastSuccess.IsZero() {
		return true
	}
	return f.staleAfter > 0 && f.clock().Sub(d.lastSuccess) > f.staleAfter
}

// mergeRecords returns every source's records of one surface with the
// source label injected, source order preserved.
func (f *Federator) mergeRecords(pick func(*sourceData) []map[string]any) []map[string]any {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []map[string]any
	for _, src := range f.sources {
		d := f.data[src.Name]
		for _, rec := range pick(d) {
			m := make(map[string]any, len(rec)+1)
			for k, v := range rec {
				m[k] = v
			}
			m["source"] = src.Name
			out = append(out, m)
		}
	}
	return out
}

// statusRank orders health statuses worst-last for the merged verdict.
func statusRank(status string) int {
	switch status {
	case StatusOK.String():
		return 0
	case StatusDegraded.String():
		return 1
	case StatusAwaitingReenroll.String():
		return 2
	case StatusSuspect.String():
		return 3
	}
	return 1 // unknown statuses count as trouble, not as clean
}

// FederatedHealth is the merged /healthz verdict.
type FederatedHealth struct {
	// Status is the worst status across reachable sources, degraded at
	// minimum when any source is stale or never scraped.
	Status  string
	Sources map[string]map[string]any
	Stale   []string
}

// Health derives the merged fleet verdict.
func (f *Federator) Health() FederatedHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := FederatedHealth{Sources: make(map[string]map[string]any, len(f.sources))}
	worst := 0
	for _, src := range f.sources {
		d := f.data[src.Name]
		if f.staleLocked(d) {
			out.Stale = append(out.Stale, src.Name)
			if worst < 1 {
				worst = 1 // a blind spot is at least degraded
			}
		}
		if d.healthz != nil {
			out.Sources[src.Name] = d.healthz
			if s, ok := d.healthz["status"].(string); ok {
				if r := statusRank(s); r > worst {
					worst = r
				}
			}
		}
	}
	switch worst {
	case 0:
		out.Status = StatusOK.String()
	case 1:
		out.Status = StatusDegraded.String()
	case 2:
		out.Status = StatusAwaitingReenroll.String()
	default:
		out.Status = StatusSuspect.String()
	}
	return out
}

// writeMergedJSON marshals merged records as one JSON array.
func writeMergedJSON(w io.Writer, records []map[string]any) error {
	if records == nil {
		records = []map[string]any{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(records)
}

// contentJSON is the admin JSON content type.
const contentJSON = "application/json; charset=utf-8"

// getOnly wraps an admin handler: GET and HEAD pass with the given
// Content-Type; everything else is 405 with an Allow header.
func getOnly(contentType string, fn func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", contentType)
		fn(w, r)
	}
}

// Mux serves the merged observability surface:
//
//	/metrics/history  the union of every source's series, source-labeled
//	/devices          the union of every source's device health records
//	/alerts           the union of every source's alert statuses
//	/probes           the union of every source's canary probe statuses
//	/healthz          the merged fleet verdict (503 iff any source reports
//	                  suspect); per-source summaries inline
//	/federation       scrape health: per-source attempt/failure tallies,
//	                  last error, staleness
func (f *Federator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics/history", getOnly(contentJSON, func(w http.ResponseWriter, r *http.Request) {
		series := f.mergeRecords(func(d *sourceData) []map[string]any { return d.history })
		if series == nil {
			series = []map[string]any{}
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"federated": true, "sources": len(f.Sources()), "series": series,
		})
	}))
	mux.HandleFunc("/devices", getOnly(contentJSON, func(w http.ResponseWriter, r *http.Request) {
		_ = writeMergedJSON(w, f.mergeRecords(func(d *sourceData) []map[string]any { return d.devices }))
	}))
	mux.HandleFunc("/alerts", getOnly(contentJSON, func(w http.ResponseWriter, r *http.Request) {
		_ = writeMergedJSON(w, f.mergeRecords(func(d *sourceData) []map[string]any { return d.alerts }))
	}))
	mux.HandleFunc("/probes", getOnly(contentJSON, func(w http.ResponseWriter, r *http.Request) {
		_ = writeMergedJSON(w, f.mergeRecords(func(d *sourceData) []map[string]any { return d.probes }))
	}))
	mux.HandleFunc("/healthz", getOnly(contentJSON, func(w http.ResponseWriter, r *http.Request) {
		h := f.Health()
		if h.Status == StatusSuspect.String() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": h.Status, "federated": true,
			"stale_sources": append([]string{}, h.Stale...),
			"sources":       h.Sources,
		})
	}))
	mux.HandleFunc("/federation", getOnly(contentJSON, func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, f.FederationJSON())
	}))
	return mux
}

// FederationJSON renders per-source scrape health as JSON.
func (f *Federator) FederationJSON() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.sources))
	for _, s := range f.sources {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("[")
	for i, name := range names {
		d := f.data[name]
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, `{"source": %s, "scrapes": %d, "failures": %d, "stale": %t`,
			strconv.Quote(name), d.scrapes, d.failures, f.staleLocked(d))
		if !d.lastSuccess.IsZero() {
			fmt.Fprintf(&b, `, "last_success_unix_ns": %d`, d.lastSuccess.UnixNano())
		}
		if d.lastErr != "" {
			fmt.Fprintf(&b, `, "last_error": %s`, strconv.Quote(d.lastErr))
		}
		b.WriteString("}")
	}
	b.WriteString("\n]\n")
	return b.String()
}
