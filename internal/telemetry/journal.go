package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The session flight recorder: a bounded ring journal of structured
// protocol events. Metrics aggregate and traces sample; the journal is the
// third leg — an ordered, per-event record of what the protocol actually
// did (session opened, seed claimed, challenge sent, checksum received,
// verdict, retries, injected faults, quarantine transitions), each event
// carrying the trace ID of the session it belongs to. When a session
// fails, the recent journal IS the post-mortem: dump it, filter by trace
// ID, and the failure's whole protocol history is in hand.
//
// The ring stores events by value in a preallocated slice, so Append is
// one lock, one copy, zero allocations — cheap enough to live on the
// attestation hot path. Overwrites are counted, never silent.

// EventKind classifies a journal event.
type EventKind uint8

// The protocol event taxonomy. The set is closed and small on purpose:
// kinds are metric-label-grade enumerations, with the free-form texture of
// an event in its Detail string.
const (
	EventSessionOpen      EventKind = iota // challenge drawn, session exists
	EventSeedClaim                         // durable budget seed claimed
	EventChallengeSent                     // challenge frame left the verifier
	EventChecksumReceived                  // response (tag + helpers) arrived
	EventVerifyOutcome                     // verdict rendered
	EventRetry                             // another attempt started
	EventBackoff                           // backoff computed before a retry
	EventFaultInjected                     // deterministic harness fired
	EventQuarantine                        // circuit-breaker transition
	EventEpoch                             // epoch lifecycle: exhaustion, re-enrollment, cutover
	EventAlert                             // SLO burn-rate alert fired or resolved

	numEventKinds
)

// String names the kind (snake_case, stable: dumps are parsed by tools).
func (k EventKind) String() string {
	switch k {
	case EventSessionOpen:
		return "session_open"
	case EventSeedClaim:
		return "seed_claim"
	case EventChallengeSent:
		return "challenge_sent"
	case EventChecksumReceived:
		return "checksum_received"
	case EventVerifyOutcome:
		return "verify_outcome"
	case EventRetry:
		return "retry"
	case EventBackoff:
		return "backoff"
	case EventFaultInjected:
		return "fault_injected"
	case EventQuarantine:
		return "quarantine"
	case EventEpoch:
		return "epoch"
	case EventAlert:
		return "alert"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one journal record. Seq and Time are stamped by Append; the
// caller fills the rest. Trace links the event to the session's span tree
// (zero when no session context exists, e.g. a fault injected between
// sessions), Session is the protocol session number, and Device names the
// subject device when known.
type Event struct {
	Seq     uint64
	Time    time.Time
	Trace   TraceID
	Session uint64
	Device  string
	Kind    EventKind
	Detail  string
}

// DefaultJournalCapacity is the ring size of NewJournal(0).
const DefaultJournalCapacity = 1024

// Journal is the bounded event ring. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	clock  func() time.Time
	ring   []Event
	next   int
	filled bool
	seq    uint64

	dropped     atomic.Uint64
	dropCounter atomic.Pointer[Counter]
}

// NewJournal returns a journal retaining the last capacity events
// (capacity <= 0 means DefaultJournalCapacity) on the real-time clock.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{clock: time.Now, ring: make([]Event, capacity)}
}

// SetClock injects the journal's clock (nil restores time.Now), so event
// timestamps are deterministic in tests.
func (j *Journal) SetClock(now func() time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	j.clock = now
}

// SetDropCounter mirrors ring overwrites into a registry counter (nil
// detaches); like the tracer, the journal cannot self-register.
func (j *Journal) SetDropCounter(c *Counter) { j.dropCounter.Store(c) }

// Dropped reports how many events the ring has overwritten — the
// journal's silent-truncation tally.
func (j *Journal) Dropped() uint64 { return j.dropped.Load() }

// Append stamps the event with the next sequence number and the journal
// clock and stores it, overwriting (and counting) the oldest event when
// the ring is full. It returns the stamped sequence number.
func (j *Journal) Append(e Event) uint64 {
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	e.Time = j.clock()
	evict := j.filled
	j.ring[j.next] = e
	j.next++
	if j.next == len(j.ring) {
		j.next = 0
		j.filled = true
	}
	j.mu.Unlock()
	if evict {
		j.dropped.Add(1)
		if c := j.dropCounter.Load(); c != nil {
			c.Inc()
		}
	}
	return e.Seq
}

// Len reports how many events the ring currently retains.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.filled {
		return len(j.ring)
	}
	return j.next
}

// Recent returns the retained events, oldest first.
func (j *Journal) Recent() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	if j.filled {
		out = append(out, j.ring[j.next:]...)
	}
	out = append(out, j.ring[:j.next]...)
	return out
}

// ByTrace returns the retained events carrying the given trace ID, oldest
// first — one session's protocol history.
func (j *Journal) ByTrace(id TraceID) []Event {
	var out []Event
	for _, e := range j.Recent() {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}

// writeEventJSON renders one event as a single-line JSON object.
func writeEventJSON(b *strings.Builder, e Event) {
	fmt.Fprintf(b, `{"seq": %d, "time_unix_ns": %d, "kind": %q`,
		e.Seq, e.Time.UnixNano(), e.Kind.String())
	if e.Trace != 0 {
		fmt.Fprintf(b, `, "trace_id": %q`, e.Trace.String())
	}
	if e.Session != 0 {
		fmt.Fprintf(b, `, "session": %d`, e.Session)
	}
	if e.Device != "" {
		fmt.Fprintf(b, `, "device": %s`, strconv.Quote(e.Device))
	}
	if e.Detail != "" {
		fmt.Fprintf(b, `, "detail": %s`, strconv.Quote(e.Detail))
	}
	b.WriteString("}")
}

// WriteJSON renders the retained events (oldest first) as a JSON array.
func (j *Journal) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("[")
	for i, e := range j.Recent() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		writeEventJSON(&b, e)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot writes the retained events as JSON lines (one event per line),
// preceded by a header line recording the drop tally — the flight-recorder
// dump format. JSON lines rather than an array so a dump truncated by the
// failing process is still parseable up to the cut.
func (j *Journal) Snapshot(w io.Writer, header string) error {
	var b strings.Builder
	fmt.Fprintf(&b, `{"flight_recorder": %s, "events": %d, "dropped": %d}`,
		strconv.Quote(header), j.Len(), j.Dropped())
	b.WriteString("\n")
	for _, e := range j.Recent() {
		writeEventJSON(&b, e)
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
