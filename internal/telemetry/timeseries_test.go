package telemetry

import (
	"encoding/json"
	"math"
	"net/url"
	"strings"
	"testing"
	"time"
)

// manualClock is a hand-advanced clock for driving collection cadence.
type manualClock struct{ t time.Time }

func (c *manualClock) now() time.Time          { return c.t }
func (c *manualClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newHistoryFixture(capacity int) (*Registry, *TimeSeries, *manualClock) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, capacity, 5*time.Second)
	clk := &manualClock{t: time.Unix(1000, 0)}
	ts.SetClock(clk.now)
	return reg, ts, clk
}

func TestTimeSeriesCounterDeltas(t *testing.T) {
	reg, ts, clk := newHistoryFixture(8)
	c := reg.Counter("reqs_total", "requests")

	c.Add(3)
	ts.Collect() // first sight: delta against zero baseline
	clk.advance(5 * time.Second)
	c.Add(7)
	ts.Collect()
	clk.advance(5 * time.Second)
	ts.Collect() // quiet window

	series := ts.Query(RangeQuery{Metric: "reqs_total"})
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	pts := series[0].Points
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, want := range []float64{3, 7, 0} {
		if pts[i].Value != want {
			t.Errorf("point %d delta = %v, want %v", i, pts[i].Value, want)
		}
	}
	if pts[1].TimeUnixNs-pts[0].TimeUnixNs != int64(5*time.Second) {
		t.Errorf("collection spacing = %d ns, want 5s", pts[1].TimeUnixNs-pts[0].TimeUnixNs)
	}
}

func TestTimeSeriesGaugeValues(t *testing.T) {
	reg, ts, clk := newHistoryFixture(8)
	g := reg.Gauge("inflight", "inflight")

	g.Set(4)
	ts.Collect()
	clk.advance(5 * time.Second)
	g.Set(1.5)
	ts.Collect()

	series := ts.Query(RangeQuery{Metric: "inflight"})
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("unexpected series shape: %+v", series)
	}
	if got := series[0].Points[0].Value; got != 4 {
		t.Errorf("first gauge sample = %v, want 4", got)
	}
	if got := series[0].Points[1].Value; got != 1.5 {
		t.Errorf("second gauge sample = %v, want 1.5", got)
	}
}

// TestTimeSeriesHistogramWindows is the core windowed-quantile property: a
// window's quantiles are computed from that window's observations alone, so
// a quiet (or differently-shaped) past cannot dilute the present.
func TestTimeSeriesHistogramWindows(t *testing.T) {
	reg, ts, clk := newHistoryFixture(8)
	h := reg.Histogram("rtt", "rtt", []float64{0.01, 0.1, 1})

	// Window 1: all observations fast.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	ts.Collect()
	clk.advance(5 * time.Second)

	// Window 2: all observations slow.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	ts.Collect()

	series := ts.Query(RangeQuery{Metric: "rtt"})
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("unexpected series shape: %+v", series)
	}
	p1, p2 := series[0].Points[0], series[0].Points[1]
	if p1.Count != 100 || p2.Count != 100 {
		t.Fatalf("window counts = %d, %d, want 100 each", p1.Count, p2.Count)
	}
	if p1.P95 > 0.01 {
		t.Errorf("window 1 p95 = %v, want <= 0.01 (fast bucket)", p1.P95)
	}
	// If window 2's quantile were computed over the lifetime buckets, the
	// 100 fast observations would drag its p50 down into the fast bucket.
	if p2.P50 <= 0.1 {
		t.Errorf("window 2 p50 = %v, want > 0.1 (slow window undiluted by fast past)", p2.P50)
	}
	if math.Abs(p2.Sum-50) > 1e-9 {
		t.Errorf("window 2 sum = %v, want 50", p2.Sum)
	}
}

func TestTimeSeriesHistogramExemplar(t *testing.T) {
	reg, ts, clk := newHistoryFixture(8)
	h := reg.Histogram("rtt", "rtt", []float64{0.01, 0.1, 1})

	// Fast bulk with one exemplar, slow tail with another: the windowed-p99
	// bucket is the slow one, so the point must carry the slow trace.
	for i := 0; i < 99; i++ {
		h.ObserveExemplar(0.005, 0xFA57)
	}
	for i := 0; i < 5; i++ {
		h.ObserveExemplar(0.5, 0x51CC)
	}
	ts.Collect()

	p, ok := ts.Latest(`rtt`)
	if !ok {
		t.Fatal("no latest point for rtt")
	}
	if p.Exemplar != 0x51CC {
		t.Errorf("exemplar = %#x, want %#x (slow-bucket trace)", p.Exemplar, 0x51CC)
	}

	// Next window is empty: no count, no exemplar.
	clk.advance(5 * time.Second)
	ts.Collect()
	p, _ = ts.Latest(`rtt`)
	if p.Count != 0 || p.Exemplar != 0 {
		t.Errorf("empty window point = %+v, want zero count and exemplar", p)
	}
}

func TestTimeSeriesRingWrap(t *testing.T) {
	reg, ts, clk := newHistoryFixture(4)
	g := reg.Gauge("v", "v")
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		ts.Collect()
		clk.advance(time.Second)
	}
	series := ts.Query(RangeQuery{})
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	pts := series[0].Points
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want capacity 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.Value != want {
			t.Errorf("point %d = %v, want %v (oldest-first after wrap)", i, p.Value, want)
		}
	}
}

func TestTimeSeriesLabeledSeries(t *testing.T) {
	reg, ts, _ := newHistoryFixture(8)
	vec := reg.CounterVec("verdicts_total", "verdicts", "verdict")
	vec.With("accept").Add(5)
	vec.With("reject").Add(2)
	ts.Collect()

	series := ts.Query(RangeQuery{Metric: "verdicts_total"})
	if len(series) != 2 {
		t.Fatalf("got %d series for family query, want 2", len(series))
	}
	byKey := map[string]float64{}
	for _, s := range series {
		if s.Family != "verdicts_total" {
			t.Errorf("series family = %q, want verdicts_total", s.Family)
		}
		byKey[s.Key] = s.Points[0].Value
	}
	if byKey[`verdicts_total{verdict="accept"}`] != 5 || byKey[`verdicts_total{verdict="reject"}`] != 2 {
		t.Errorf("labeled deltas = %v", byKey)
	}

	// Exact-key query selects one series.
	one := ts.Query(RangeQuery{Metric: `verdicts_total{verdict="accept"}`})
	if len(one) != 1 {
		t.Fatalf("exact-key query got %d series, want 1", len(one))
	}
}

func TestTimeSeriesRangeAndStep(t *testing.T) {
	reg, ts, clk := newHistoryFixture(32)
	g := reg.Gauge("v", "v")
	base := clk.t
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		ts.Collect()
		clk.advance(time.Second)
	}

	// Start/end bounds are inclusive.
	q := RangeQuery{
		Start: base.Add(2 * time.Second).UnixNano(),
		End:   base.Add(5 * time.Second).UnixNano(),
	}
	pts := ts.Query(q)[0].Points
	if len(pts) != 4 || pts[0].Value != 2 || pts[3].Value != 5 {
		t.Fatalf("range query points = %+v, want values 2..5", pts)
	}

	// Step keeps the first point of each step bucket.
	pts = ts.Query(RangeQuery{Step: 3 * time.Second})[0].Points
	if len(pts) != 4 {
		t.Fatalf("step query retained %d points, want 4", len(pts))
	}
}

func TestParseRangeQuery(t *testing.T) {
	v := url.Values{}
	v.Set("metric", "rtt")
	v.Set("start", "100.5")
	v.Set("end", "200")
	v.Set("step", "15")
	q, err := ParseRangeQuery(v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Metric != "rtt" || q.Start != int64(100.5*1e9) || q.End != int64(200*1e9) || q.Step != 15*time.Second {
		t.Errorf("parsed query = %+v", q)
	}

	v.Set("step", "2m30s")
	if q, err = ParseRangeQuery(v); err != nil || q.Step != 150*time.Second {
		t.Errorf("duration step: %+v, %v", q, err)
	}

	for key, bad := range map[string]string{"start": "nope", "step": "xyz"} {
		v := url.Values{}
		v.Set(key, bad)
		if _, err := ParseRangeQuery(v); err == nil {
			t.Errorf("bad %s %q parsed without error", key, bad)
		}
	}
}

func TestTimeSeriesWriteJSON(t *testing.T) {
	reg, ts, clk := newHistoryFixture(8)
	c := reg.Counter("reqs_total", "requests")
	h := reg.Histogram("rtt", "rtt", []float64{0.01, 0.1, 1})
	c.Add(2)
	h.ObserveExemplar(0.5, 0xABCD)
	ts.Collect()
	clk.advance(5 * time.Second)
	c.Add(1)
	ts.Collect()

	var b strings.Builder
	if err := ts.WriteJSON(&b, RangeQuery{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		WindowSeconds float64 `json:"window_seconds"`
		Capacity      int     `json:"capacity"`
		Collections   uint64  `json:"collections"`
		Series        []struct {
			Name   string           `json:"name"`
			Kind   string           `json:"kind"`
			Points []map[string]any `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("history JSON does not parse: %v\n%s", err, b.String())
	}
	if doc.WindowSeconds != 5 || doc.Capacity != 8 || doc.Collections != 2 {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(doc.Series))
	}
	for _, s := range doc.Series {
		switch s.Name {
		case "reqs_total":
			if s.Kind != "counter" || len(s.Points) != 2 || s.Points[1]["v"] != 1.0 {
				t.Errorf("counter series = %+v", s)
			}
		case "rtt":
			if s.Kind != "histogram" || len(s.Points) != 2 {
				t.Fatalf("histogram series = %+v", s)
			}
			if s.Points[0]["exemplar"] != TraceID(0xABCD).String() {
				t.Errorf("exemplar = %v, want %v", s.Points[0]["exemplar"], TraceID(0xABCD).String())
			}
			if _, ok := s.Points[1]["exemplar"]; ok {
				t.Errorf("empty window carries exemplar: %+v", s.Points[1])
			}
		default:
			t.Errorf("unexpected series %q", s.Name)
		}
	}
}

// TestTimeSeriesCollectAllocs guards the allocation-conscious claim: after
// the first sight of every series, a Collect pass allocates nothing.
func TestTimeSeriesCollectAllocs(t *testing.T) {
	reg, ts, _ := newHistoryFixture(16)
	reg.Counter("c_total", "c").Add(1)
	reg.Gauge("g", "g").Set(1)
	reg.Histogram("h", "h", DefBuckets).Observe(0.5)
	ts.Collect() // establish rings
	allocs := testing.AllocsPerRun(50, func() { ts.Collect() })
	if allocs > 0 {
		t.Errorf("Collect allocates %.1f per run after warm-up, want 0", allocs)
	}
}

func TestStartCollecting(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c")
	ts := NewTimeSeries(reg, 8, time.Millisecond)
	stop := ts.StartCollecting(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for ts.Collections() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("collector never ran")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}
