package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
)

// Runtime telemetry: the attestation verdict is a timing judgement, so the
// Go runtime's own latency sources — GC pauses and scheduler queuing — are
// protocol-correctness inputs, not ops trivia. The RuntimeCollector bridges
// runtime/metrics into the ordinary Registry/TimeSeries pipeline so the
// same burn-rate machinery that watches RTT can watch GC pause p99 against
// the verifier's time bound and trigger a profile capture when the runtime
// itself becomes the latency culprit.

// Metric names exported by the RuntimeCollector.
const (
	MetricGCPause      = "runtime_gc_pause_seconds"
	MetricSchedLatency = "runtime_sched_latency_seconds"
	MetricHeapBytes    = "runtime_heap_bytes"
	MetricGoroutines   = "runtime_goroutines"
	MetricGCCycles     = "runtime_gc_cycles_total"
)

// runtimeBuckets is the bucket layout for the runtime latency histograms:
// GC pauses and sched latencies live in the 10ns..100ms decades, well
// below DefBuckets' floor, so they get their own layout.
var runtimeBuckets = []float64{
	1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1,
}

// RuntimeHistogram is a cumulative histogram snapshot in the
// runtime/metrics layout: Buckets are boundaries (len = len(Counts)+1),
// Counts[i] counts samples in [Buckets[i], Buckets[i+1]). Boundaries may
// be ±Inf at the extremes.
type RuntimeHistogram struct {
	Buckets []float64
	Counts  []uint64
}

// RuntimeSnapshot is one reading of the runtime metrics the collector
// consumes. The default source fills it from runtime/metrics; tests
// inject a synthetic source via SetSource (metrics.Value is not
// constructible outside the runtime, so the seam is at this level).
type RuntimeSnapshot struct {
	HeapBytes  float64
	Goroutines float64
	// GCCycles is the cumulative completed-GC-cycle count.
	GCCycles uint64
	// GCPauseSeconds and SchedLatencySeconds are cumulative histograms;
	// the collector diffs consecutive snapshots and feeds the deltas into
	// the registry histograms.
	GCPauseSeconds      RuntimeHistogram
	SchedLatencySeconds RuntimeHistogram
}

// runtimeSamples are the runtime/metrics keys the default source reads.
var runtimeSamples = []string{
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
}

// readRuntimeSnapshot is the default source: one runtime/metrics batch
// read (a few microseconds, no allocation after the first call's sample
// slice is retained by the closure).
func newRuntimeSource() func() RuntimeSnapshot {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	return func() RuntimeSnapshot {
		metrics.Read(samples)
		var snap RuntimeSnapshot
		for _, s := range samples {
			switch s.Name {
			case "/gc/pauses:seconds":
				snap.GCPauseSeconds = fromMetricsHistogram(s.Value)
			case "/sched/latencies:seconds":
				snap.SchedLatencySeconds = fromMetricsHistogram(s.Value)
			case "/memory/classes/heap/objects:bytes":
				if s.Value.Kind() == metrics.KindUint64 {
					snap.HeapBytes = float64(s.Value.Uint64())
				}
			case "/sched/goroutines:goroutines":
				if s.Value.Kind() == metrics.KindUint64 {
					snap.Goroutines = float64(s.Value.Uint64())
				}
			case "/gc/cycles/total:gc-cycles":
				if s.Value.Kind() == metrics.KindUint64 {
					snap.GCCycles = s.Value.Uint64()
				}
			}
		}
		return snap
	}
}

func fromMetricsHistogram(v metrics.Value) RuntimeHistogram {
	if v.Kind() != metrics.KindFloat64Histogram {
		return RuntimeHistogram{}
	}
	h := v.Float64Histogram()
	if h == nil {
		return RuntimeHistogram{}
	}
	return RuntimeHistogram{
		Buckets: append([]float64(nil), h.Buckets...),
		Counts:  append([]uint64(nil), h.Counts...),
	}
}

// RuntimeCollector samples the Go runtime and republishes the readings as
// ordinary registry instruments, so they flow into TimeSeries history and
// burn-rate alerting with no special cases downstream.
type RuntimeCollector struct {
	mu     sync.Mutex
	source func() RuntimeSnapshot
	prev   RuntimeSnapshot
	primed bool

	gcPause   *Histogram
	schedLat  *Histogram
	heapBytes *Gauge
	gorout    *Gauge
	gcCycles  *Counter
}

// NewRuntimeCollector registers the runtime instruments on reg and returns
// a collector reading from runtime/metrics. Call Sample on the fleet
// observation cadence; the first call primes the cumulative baselines and
// publishes gauges only.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	return &RuntimeCollector{
		source:    newRuntimeSource(),
		gcPause:   reg.Histogram(MetricGCPause, "stop-the-world GC pause durations (seconds)", runtimeBuckets),
		schedLat:  reg.Histogram(MetricSchedLatency, "goroutine scheduling latencies (seconds)", runtimeBuckets),
		heapBytes: reg.Gauge(MetricHeapBytes, "bytes of live heap objects"),
		gorout:    reg.Gauge(MetricGoroutines, "current goroutine count"),
		gcCycles:  reg.Counter(MetricGCCycles, "completed GC cycles"),
	}
}

// SetSource replaces the snapshot source (nil restores runtime/metrics)
// and resets the cumulative baseline. Tests inject deterministic
// snapshots here.
func (c *RuntimeCollector) SetSource(fn func() RuntimeSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fn == nil {
		fn = newRuntimeSource()
	}
	c.source = fn
	c.primed = false
	c.prev = RuntimeSnapshot{}
}

// Sample reads the runtime once and publishes gauges plus the histogram
// and counter deltas since the previous Sample. Safe for concurrent use,
// though one caller on a timer is the intended shape.
func (c *RuntimeCollector) Sample() {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := c.source()
	c.heapBytes.Set(snap.HeapBytes)
	c.gorout.Set(snap.Goroutines)
	if c.primed {
		if snap.GCCycles > c.prev.GCCycles {
			c.gcCycles.Add(snap.GCCycles - c.prev.GCCycles)
		}
		replayDeltas(c.gcPause, c.prev.GCPauseSeconds, snap.GCPauseSeconds)
		replayDeltas(c.schedLat, c.prev.SchedLatencySeconds, snap.SchedLatencySeconds)
	}
	c.prev = snap
	c.primed = true
}

// replayDeltas inserts the per-bucket count growth between two cumulative
// runtime histogram snapshots into h. Each bucket's delta is observed at a
// representative value: the finite upper boundary when there is one (so
// quantile estimates stay conservative — a pause lands in the registry
// bucket at or above its true duration), else the finite lower boundary.
// A layout change between snapshots (runtime version skew, or a test
// swapping sources) skips this round — the new snapshot becomes the
// baseline rather than being mistaken for deltas.
func replayDeltas(h *Histogram, prev, cur RuntimeHistogram) {
	if len(cur.Counts) == 0 || len(cur.Buckets) != len(cur.Counts)+1 {
		return
	}
	if len(prev.Counts) != len(cur.Counts) || len(prev.Buckets) != len(cur.Buckets) {
		return
	}
	for i, n := range cur.Counts {
		if n <= prev.Counts[i] {
			continue
		}
		d := n - prev.Counts[i]
		v := cur.Buckets[i+1] // upper boundary
		if math.IsInf(v, 0) {
			v = cur.Buckets[i] // +Inf tail: use the lower boundary
		}
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		if v < 0 {
			v = 0
		}
		h.observeN(v, d)
	}
}
