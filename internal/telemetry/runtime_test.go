package telemetry

import (
	"math"
	"runtime"
	"testing"
)

// synthetic runtime snapshots in the runtime/metrics layout: boundaries
// [-Inf, 1e-6, 1e-3, +Inf], three buckets.
func runtimeSnap(heap, gor float64, cycles uint64, counts ...uint64) RuntimeSnapshot {
	h := RuntimeHistogram{
		Buckets: []float64{math.Inf(-1), 1e-6, 1e-3, math.Inf(1)},
		Counts:  append([]uint64(nil), counts...),
	}
	return RuntimeSnapshot{
		HeapBytes: heap, Goroutines: gor, GCCycles: cycles,
		GCPauseSeconds:      h,
		SchedLatencySeconds: h,
	}
}

func TestRuntimeCollectorDeltas(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	snaps := []RuntimeSnapshot{
		runtimeSnap(1000, 5, 10, 3, 7, 0),
		runtimeSnap(2000, 8, 12, 3, 9, 1),
	}
	i := 0
	c.SetSource(func() RuntimeSnapshot { s := snaps[i]; return s })

	// First sample primes the baseline: gauges move, deltas do not.
	c.Sample()
	if v := reg.Gauge(MetricHeapBytes, "").Value(); v != 1000 {
		t.Fatalf("heap gauge = %v, want 1000", v)
	}
	if v := reg.Gauge(MetricGoroutines, "").Value(); v != 5 {
		t.Fatalf("goroutines gauge = %v, want 5", v)
	}
	if v := reg.Counter(MetricGCCycles, "").Value(); v != 0 {
		t.Fatalf("primed gc cycles counter = %d, want 0", v)
	}
	if n := reg.Histogram(MetricGCPause, "", runtimeBuckets).Count(); n != 0 {
		t.Fatalf("primed gc pause count = %d, want 0", n)
	}

	// Second sample replays the cumulative growth: 2 new pauses in the
	// middle bucket (observed at its 1e-3 upper boundary) and 1 in the +Inf
	// tail (observed at its 1e-3 lower boundary), for both histograms.
	i = 1
	c.Sample()
	if v := reg.Counter(MetricGCCycles, "").Value(); v != 2 {
		t.Fatalf("gc cycles delta = %d, want 2", v)
	}
	for _, name := range []string{MetricGCPause, MetricSchedLatency} {
		h := reg.Histogram(name, "", runtimeBuckets)
		if n := h.Count(); n != 3 {
			t.Fatalf("%s count = %d, want 3", name, n)
		}
		if s := h.Sum(); math.Abs(s-3e-3) > 1e-12 {
			t.Fatalf("%s sum = %v, want 3e-3", name, s)
		}
	}
	if v := reg.Gauge(MetricHeapBytes, "").Value(); v != 2000 {
		t.Fatalf("heap gauge = %v, want 2000", v)
	}

	// A third sample with no growth observes nothing new.
	c.Sample()
	if n := reg.Histogram(MetricGCPause, "", runtimeBuckets).Count(); n != 3 {
		t.Fatalf("no-growth sample changed the count: %d", n)
	}
}

// A layout change between snapshots (runtime version skew) must re-baseline
// rather than replay the entire cumulative history as fresh deltas.
func TestRuntimeCollectorLayoutChangeSkipsRound(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	changed := RuntimeSnapshot{
		GCPauseSeconds: RuntimeHistogram{
			Buckets: []float64{math.Inf(-1), 1e-3, math.Inf(1)}, // different shape
			Counts:  []uint64{100, 100},
		},
	}
	snaps := []RuntimeSnapshot{
		runtimeSnap(0, 0, 0, 1, 1, 1),
		changed,
		changed, // identical layout to prev, zero growth
	}
	i := 0
	c.SetSource(func() RuntimeSnapshot { s := snaps[i]; return s })
	for ; i < len(snaps); i++ {
		c.Sample()
	}
	if n := reg.Histogram(MetricGCPause, "", runtimeBuckets).Count(); n != 0 {
		t.Fatalf("layout change leaked %d observations", n)
	}
}

// A counter that goes backwards (process restart behind the seam) must not
// underflow the delta.
func TestRuntimeCollectorRegressionClamped(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	snaps := []RuntimeSnapshot{
		runtimeSnap(0, 0, 50, 10, 0, 0),
		runtimeSnap(0, 0, 3, 4, 0, 0), // both cycle count and bucket shrink
	}
	i := 0
	c.SetSource(func() RuntimeSnapshot { s := snaps[i]; return s })
	c.Sample()
	i = 1
	c.Sample()
	if v := reg.Counter(MetricGCCycles, "").Value(); v != 0 {
		t.Fatalf("regressed cycle counter added %d", v)
	}
	if n := reg.Histogram(MetricGCPause, "", runtimeBuckets).Count(); n != 0 {
		t.Fatalf("regressed histogram added %d observations", n)
	}
}

// The real runtime/metrics source end to end: force a GC between samples
// and the collector must report it through ordinary registry instruments.
func TestRuntimeCollectorLiveSource(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Sample()
	runtime.GC()
	c.Sample()
	if v := reg.Gauge(MetricGoroutines, "").Value(); v < 1 {
		t.Fatalf("goroutine gauge = %v, want >= 1", v)
	}
	if v := reg.Gauge(MetricHeapBytes, "").Value(); v <= 0 {
		t.Fatalf("heap gauge = %v, want > 0", v)
	}
	if v := reg.Counter(MetricGCCycles, "").Value(); v < 1 {
		t.Fatalf("gc cycles after runtime.GC() = %d, want >= 1", v)
	}
	if n := reg.Histogram(MetricGCPause, "", runtimeBuckets).Count(); n < 1 {
		t.Fatalf("gc pause observations = %d, want >= 1", n)
	}
}
