package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO burn-rate alerting over the time-series store. A threshold alert
// ("p95 over bound right now") pages on blips and sleeps through slow
// leaks; a burn-rate alert asks instead how fast the error budget is being
// consumed, and requires TWO windows to agree — a fast window so a hard
// outage pages in minutes, and a slow window so a single bad sample
// cannot. The rule fires only while both windows burn at or above the
// configured rate, and resolves as soon as they no longer do; every
// transition is a typed journal event (EventAlert), so the flight recorder
// carries the alert timeline next to the protocol events that caused it.
//
// The evaluator reads only the store's windowed points — counter deltas,
// gauge samples, histogram window quantiles — so alert math is exactly
// reproducible from /metrics/history output.

// RuleKind selects how a rule turns window points into a bad fraction.
type RuleKind int

const (
	// RuleRatio divides one counter's window delta by another's: rejected
	// sessions over all sessions, FNR-shaped rejections over sessions.
	RuleRatio RuleKind = iota
	// RuleQuantile marks a window sample bad when the histogram's windowed
	// quantile exceeds Threshold — the timing-SLO rule.
	RuleQuantile
	// RuleGaugeAbove marks a window sample bad when the gauge exceeds
	// Threshold — the seed-budget watermark rule.
	RuleGaugeAbove
)

// String names the kind.
func (k RuleKind) String() string {
	switch k {
	case RuleRatio:
		return "ratio"
	case RuleQuantile:
		return "quantile"
	case RuleGaugeAbove:
		return "gauge-above"
	}
	return fmt.Sprintf("rule(%d)", int(k))
}

// Rule is one burn-rate alerting rule.
type Rule struct {
	// Name identifies the alert ("rtt-p95-burn"). Unique per manager.
	Name string
	Kind RuleKind
	// Metric is the series key driving the rule: the bad-event counter
	// (RuleRatio), the latency histogram (RuleQuantile), or the gauge
	// (RuleGaugeAbove).
	Metric string
	// TotalMetric is the denominator counter series (RuleRatio only).
	TotalMetric string
	// Quantile selects the histogram quantile judged by RuleQuantile
	// (0.95 when unset; 0.99 also stored per point).
	Quantile float64
	// Threshold is the bound a quantile or gauge sample must exceed to
	// count as bad.
	Threshold float64
	// Budget is the SLO error budget: the tolerated bad fraction. The burn
	// rate is badFraction/Budget, so burn 1.0 means "consuming exactly the
	// budget". Non-positive means 1 (burn equals the bad fraction).
	Budget float64
	// FastWindow and SlowWindow are the dual evaluation windows.
	FastWindow, SlowWindow time.Duration
	// BurnRate is the firing bound: the alert fires while BOTH windows
	// burn at or above it. Non-positive means 1.
	BurnRate float64
}

// budget returns the effective error budget.
func (r Rule) budget() float64 {
	if r.Budget <= 0 {
		return 1
	}
	return r.Budget
}

// burnBound returns the effective firing bound.
func (r Rule) burnBound() float64 {
	if r.BurnRate <= 0 {
		return 1
	}
	return r.BurnRate
}

// quantile returns the judged histogram quantile.
func (r Rule) quantile() float64 {
	if r.Quantile <= 0 {
		return 0.95
	}
	return r.Quantile
}

// AlertState is one alert's lifecycle position.
type AlertState int

const (
	// AlertInactive: never fired, or a past firing has fully cleared.
	AlertInactive AlertState = iota
	// AlertFiring: both windows currently burn at or above the bound.
	AlertFiring
	// AlertResolved: the alert fired and has since cleared; it stays
	// visibly resolved (with timestamps) rather than vanishing, so an
	// operator who looks after the storm still sees that it happened.
	AlertResolved
)

// String names the state.
func (s AlertState) String() string {
	switch s {
	case AlertInactive:
		return "inactive"
	case AlertFiring:
		return "firing"
	case AlertResolved:
		return "resolved"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// AlertStatus is a point-in-time view of one rule's alert.
type AlertStatus struct {
	Rule  Rule
	State AlertState
	// Since stamps entry into the current state.
	Since time.Time
	// FastBurn and SlowBurn are the most recently evaluated burn rates
	// (NaN before any evaluation saw data).
	FastBurn, SlowBurn float64
	// Fired counts lifetime firings.
	Fired                   uint64
	LastFired, LastResolved time.Time
}

// alertState is the manager's mutable per-rule record.
type alertState struct {
	rule     Rule
	state    AlertState
	since    time.Time
	fast     float64
	slow     float64
	fired    uint64
	lastFire time.Time
	lastRes  time.Time
}

// AlertManager evaluates burn-rate rules against a TimeSeries store.
type AlertManager struct {
	mu      sync.Mutex
	ts      *TimeSeries
	journal *Journal
	clock   func() time.Time
	rules   []Rule
	states  map[string]*alertState

	onTransition func(name string, firing bool)
}

// NewAlertManager builds a manager over the store, journalling alert
// transitions into journal (nil disables journalling).
func NewAlertManager(ts *TimeSeries, journal *Journal) *AlertManager {
	return &AlertManager{
		ts: ts, journal: journal, clock: time.Now,
		states: make(map[string]*alertState),
	}
}

// SetClock injects the manager's clock (nil restores time.Now).
func (m *AlertManager) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	m.clock = now
}

// SetRules replaces the rule set. State for rules that keep their name is
// retained (a re-tuned threshold does not reset firing history); state for
// removed rules is dropped.
func (m *AlertManager) SetRules(rules []Rule) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rules = append([]Rule(nil), rules...)
	keep := make(map[string]*alertState, len(rules))
	for _, r := range m.rules {
		if st, ok := m.states[r.Name]; ok {
			st.rule = r
			keep[r.Name] = st
		} else {
			keep[r.Name] = &alertState{rule: r, since: m.clock()}
		}
	}
	m.states = keep
}

// Rules returns the active rule set.
func (m *AlertManager) Rules() []Rule {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Rule(nil), m.rules...)
}

// OnTransition installs a hook fired (outside the lock) on every
// firing/resolution, for metric counters.
func (m *AlertManager) OnTransition(fn func(name string, firing bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onTransition = fn
}

// windowBurn computes one rule's burn rate over [now-window, now].
// ok=false when the window holds no data (no judgement).
func (m *AlertManager) windowBurn(r Rule, now time.Time, window time.Duration) (burn float64, ok bool) {
	startNs := now.Add(-window).UnixNano()
	endNs := now.UnixNano()
	points := func(metric string) []Point {
		series := m.ts.Query(RangeQuery{Metric: metric, Start: startNs, End: endNs})
		var out []Point
		for _, s := range series {
			out = append(out, s.Points...)
		}
		return out
	}
	var bad, total float64
	switch r.Kind {
	case RuleRatio:
		for _, p := range points(r.Metric) {
			bad += p.Value
		}
		for _, p := range points(r.TotalMetric) {
			total += p.Value
		}
	case RuleQuantile:
		q := r.quantile()
		for _, p := range points(r.Metric) {
			if p.Count == 0 {
				continue
			}
			total++
			v := p.P95
			if q > 0.97 {
				v = p.P99
			} else if q <= 0.75 {
				v = p.P50
			}
			if v > r.Threshold {
				bad++
			}
		}
	case RuleGaugeAbove:
		for _, p := range points(r.Metric) {
			total++
			if p.Value > r.Threshold {
				bad++
			}
		}
	}
	if total <= 0 {
		return 0, false
	}
	return (bad / total) / r.budget(), true
}

// Evaluate re-judges every rule against the store at the manager clock's
// now, journalling and hooking each transition. Call it after each
// Collect.
func (m *AlertManager) Evaluate() {
	m.mu.Lock()
	now := m.clock()
	type firedEvent struct {
		name   string
		firing bool
		detail string
	}
	var events []firedEvent
	hook := m.onTransition
	for _, r := range m.rules {
		st := m.states[r.Name]
		fast, fastOK := m.windowBurn(r, now, r.FastWindow)
		slow, slowOK := m.windowBurn(r, now, r.SlowWindow)
		st.fast, st.slow = fast, slow
		firing := fastOK && slowOK && fast >= r.burnBound() && slow >= r.burnBound()
		switch {
		case firing && st.state != AlertFiring:
			st.state = AlertFiring
			st.since = now
			st.fired++
			st.lastFire = now
			events = append(events, firedEvent{r.Name, true,
				fmt.Sprintf("firing rule=%s fast_burn=%.3g slow_burn=%.3g bound=%.3g", r.Name, fast, slow, r.burnBound())})
		case !firing && st.state == AlertFiring:
			st.state = AlertResolved
			st.since = now
			st.lastRes = now
			events = append(events, firedEvent{r.Name, false,
				fmt.Sprintf("resolved rule=%s fast_burn=%.3g slow_burn=%.3g bound=%.3g", r.Name, fast, slow, r.burnBound())})
		}
	}
	journal := m.journal
	m.mu.Unlock()
	for _, e := range events {
		if journal != nil {
			journal.Append(Event{Kind: EventAlert, Detail: e.detail})
		}
		if hook != nil {
			hook(e.name, e.firing)
		}
	}
}

// Firing reports how many alerts are currently firing.
func (m *AlertManager) Firing() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.states {
		if st.state == AlertFiring {
			n++
		}
	}
	return n
}

// Snapshot returns every rule's alert status, in rule order.
func (m *AlertManager) Snapshot() []AlertStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]AlertStatus, 0, len(m.rules))
	for _, r := range m.rules {
		st := m.states[r.Name]
		out = append(out, AlertStatus{
			Rule: r, State: st.state, Since: st.since,
			FastBurn: st.fast, SlowBurn: st.slow,
			Fired: st.fired, LastFired: st.lastFire, LastResolved: st.lastRes,
		})
	}
	return out
}

// WriteJSON renders every alert's status as a JSON array — the /alerts
// endpoint body.
func (m *AlertManager) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("[")
	for i, a := range m.Snapshot() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, `{"name": %s, "state": %q, "kind": %q, "metric": %s`,
			strconv.Quote(a.Rule.Name), a.State.String(), a.Rule.Kind.String(), strconv.Quote(a.Rule.Metric))
		fmt.Fprintf(&b, `, "fast_window_seconds": %s, "slow_window_seconds": %s, "burn_bound": %s, "budget": %s`,
			jsonNumber(a.Rule.FastWindow.Seconds()), jsonNumber(a.Rule.SlowWindow.Seconds()),
			jsonNumber(a.Rule.burnBound()), jsonNumber(a.Rule.budget()))
		fmt.Fprintf(&b, `, "fast_burn": %s, "slow_burn": %s, "fired": %d`,
			jsonNumber(a.FastBurn), jsonNumber(a.SlowBurn), a.Fired)
		if !a.Since.IsZero() {
			fmt.Fprintf(&b, `, "since_unix_ns": %d`, a.Since.UnixNano())
		}
		if !a.LastFired.IsZero() {
			fmt.Fprintf(&b, `, "last_fired_unix_ns": %d`, a.LastFired.UnixNano())
		}
		if !a.LastResolved.IsZero() {
			fmt.Fprintf(&b, `, "last_resolved_unix_ns": %d`, a.LastResolved.UnixNano())
		}
		b.WriteString("}")
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
