package telemetry

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Continuous profiling: the flight recorder answers "what happened on the
// wire", the trace ring answers "where did the session's time go" — the
// Profiler answers "what was the PROCESS doing when the spike hit". It
// keeps a bounded on-disk ring of pprof captures (CPU, heap, goroutine,
// mutex), written either on a low-duty-cycle timer or when a burn-rate
// alert fires, and a sidecar index correlating each capture with its
// trigger, the firing alert, and a trace ID — so /debug/profiles, /alerts,
// and /debug/traces cross-reference the same incident.
//
// Like the flight recorder, capturing is strictly opt-in (no directory, no
// files) and never fatal: a failed profile write is reported in the index,
// not allowed to disturb the attestation path it is observing.

// profileSeq is the process-wide capture sequence. Shared across every
// Profiler for the same reason flightSeq is shared across Telemetry
// bundles: two profilers pointed at one directory must never collide on a
// filename.
var profileSeq atomic.Uint64

// cpuProfileMu serialises CPU profiling process-wide: the runtime supports
// exactly one active CPU profile, so a second profiler (or a test binary's
// own -cpuprofile) must skip the CPU leg rather than error the capture.
var cpuProfileMu sync.Mutex

// DefaultProfileCapacity bounds the on-disk capture ring.
const DefaultProfileCapacity = 8

// DefaultCPUProfileDuration is the CPU window captured per trigger: long
// enough to catch a culprit mid-spike, short enough that the periodic
// low-duty-cycle capture costs well under 1% CPU at the default interval.
const DefaultCPUProfileDuration = 250 * time.Millisecond

// DefaultProfileInterval is the periodic capture cadence (250 ms of CPU
// profiling per minute ≈ 0.4% duty cycle).
const DefaultProfileInterval = time.Minute

// profileKinds are the pprof legs of one capture, in file order. "cpu" is
// handled specially (StartCPUProfile); the rest are runtime profile dumps.
var profileKinds = []string{"cpu", "heap", "goroutine", "mutex"}

// CaptureMeta carries the incident context an alert-triggered capture
// records into the sidecar index.
type CaptureMeta struct {
	// Alert is the firing burn-rate alert's rule name ("" for periodic and
	// manual captures).
	Alert string
	// Trace is the trace ID most relevant to the trigger — typically the
	// rule metric's latest windowed exemplar — so the capture links to a
	// span tree at /debug/traces.
	Trace TraceID
}

// ProfileCapture is one sidecar-index entry: the capture's sequence,
// trigger, incident metadata, and the files it wrote.
type ProfileCapture struct {
	Seq     uint64   `json:"seq"`
	Trigger string   `json:"trigger"`
	Alert   string   `json:"alert,omitempty"`
	Trace   string   `json:"trace,omitempty"`
	Files   []string `json:"files"`
	// Skipped lists profile legs that could not be captured (e.g. the CPU
	// profiler was already running) — partial evidence, loudly labeled.
	Skipped  []string `json:"skipped,omitempty"`
	UnixNano int64    `json:"unix_ns"`
}

// Profiler is the bounded on-disk profile ring. All methods are safe for
// concurrent use; captures are single-flight (a trigger arriving while a
// capture is in progress is counted and dropped, never stacked).
type Profiler struct {
	mu       sync.Mutex
	dir      string
	capacity int
	cpuDur   time.Duration
	clock    func() time.Time
	index    []ProfileCapture // oldest first

	inflight atomic.Bool

	captures   atomic.Pointer[CounterVec] // by trigger
	suppressed atomic.Pointer[Counter]
}

// NewProfiler builds a disabled profiler (no directory). Configure with
// SetDir, SetCapacity, SetCPUDuration; attach counters with
// SetCaptureCounters.
func NewProfiler() *Profiler {
	return &Profiler{
		capacity: DefaultProfileCapacity,
		cpuDur:   DefaultCPUProfileDuration,
		clock:    time.Now,
	}
}

// SetDir sets the capture directory ("" disables capturing, the default).
// The directory is created on first capture.
func (p *Profiler) SetDir(dir string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dir = dir
}

// Dir returns the configured capture directory.
func (p *Profiler) Dir() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dir
}

// SetCapacity bounds the retained captures; older captures (and their
// files) are evicted. Non-positive restores DefaultProfileCapacity.
func (p *Profiler) SetCapacity(n int) {
	if n <= 0 {
		n = DefaultProfileCapacity
	}
	p.mu.Lock()
	p.capacity = n
	evicted := p.evictLocked()
	dir := p.dir
	p.mu.Unlock()
	removeDirFiles(dir, evicted)
}

// SetCPUDuration sets the CPU profile window per capture. Zero restores
// DefaultCPUProfileDuration; negative skips the CPU leg entirely (the
// snapshot legs — heap, goroutine, mutex — still capture).
func (p *Profiler) SetCPUDuration(d time.Duration) {
	if d == 0 {
		d = DefaultCPUProfileDuration
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cpuDur = d
}

// SetClock injects the index timestamp clock (nil restores time.Now). The
// capture FILENAMES never use the clock — they are sequence-numbered, so
// they stay deterministic under test regardless.
func (p *Profiler) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock = now
}

// SetCaptureCounters attaches metric instruments: captures counts completed
// captures by trigger, suppressed counts triggers dropped by the
// single-flight guard. Either may be nil. The profiler cannot self-register
// (it may outlive any one registry), so the owning telemetry bundle
// attaches them — the same contract as Tracer.SetDropCounter.
func (p *Profiler) SetCaptureCounters(captures *CounterVec, suppressed *Counter) {
	p.captures.Store(captures)
	p.suppressed.Store(suppressed)
}

// Enabled reports whether a capture directory is configured.
func (p *Profiler) Enabled() bool { return p.Dir() != "" }

// Capture runs one profile capture named by trigger. It returns ok=false
// without error when capturing is disabled (no directory) or suppressed by
// the single-flight guard (another capture is in progress — CPU profiles
// must never stack). Partial failures are recorded in the entry's Skipped
// list, not returned: evidence collection must not fail the caller.
func (p *Profiler) Capture(trigger string, meta CaptureMeta) (ProfileCapture, bool, error) {
	p.mu.Lock()
	dir := p.dir
	cpuDur := p.cpuDur
	now := p.clock
	p.mu.Unlock()
	if dir == "" {
		return ProfileCapture{}, false, nil
	}
	if !p.inflight.CompareAndSwap(false, true) {
		if c := p.suppressed.Load(); c != nil {
			c.Inc()
		}
		return ProfileCapture{}, false, nil
	}
	defer p.inflight.Store(false)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ProfileCapture{}, false, fmt.Errorf("telemetry: profile capture: %w", err)
	}
	seq := profileSeq.Add(1)
	entry := ProfileCapture{
		Seq: seq, Trigger: trigger,
		Alert:    meta.Alert,
		UnixNano: now().UnixNano(),
	}
	if meta.Trace != 0 {
		entry.Trace = meta.Trace.String()
	}
	for _, kind := range profileKinds {
		path := filepath.Join(dir, fmt.Sprintf("profile-%04d-%s.%s.pb.gz", seq, sanitizeTrigger(trigger), kind))
		if err := captureKind(kind, path, cpuDur); err != nil {
			entry.Skipped = append(entry.Skipped, fmt.Sprintf("%s: %v", kind, err))
			_ = os.Remove(path)
			continue
		}
		entry.Files = append(entry.Files, filepath.Base(path))
	}

	p.mu.Lock()
	p.index = append(p.index, entry)
	evicted := p.evictLocked()
	dirNow := p.dir
	p.mu.Unlock()
	removeDirFiles(dirNow, evicted)

	if cv := p.captures.Load(); cv != nil {
		cv.With(trigger).Inc()
	}
	return entry, true, nil
}

// evictLocked trims the index to capacity and returns the evicted entries
// (whose files the caller deletes outside the lock).
func (p *Profiler) evictLocked() []ProfileCapture {
	if len(p.index) <= p.capacity {
		return nil
	}
	n := len(p.index) - p.capacity
	evicted := append([]ProfileCapture(nil), p.index[:n]...)
	p.index = append(p.index[:0], p.index[n:]...)
	return evicted
}

func removeDirFiles(dir string, entries []ProfileCapture) {
	if dir == "" {
		return
	}
	for _, e := range entries {
		for _, f := range e.Files {
			_ = os.Remove(filepath.Join(dir, f))
		}
	}
}

// errCPUBusy marks a skipped CPU leg: the runtime supports one active CPU
// profile, so a concurrent holder means skip, not fail.
var errCPUBusy = fmt.Errorf("cpu profiler already running")

// captureKind writes one profile leg to path. CPU profiles run for cpuDur
// (non-positive skips); the snapshot kinds dump the runtime profile at
// debug=0, which is already gzip-compressed protobuf (.pb.gz).
func captureKind(kind, path string, cpuDur time.Duration) error {
	if kind == "cpu" {
		if cpuDur < 0 {
			return fmt.Errorf("cpu profiling disabled")
		}
		if !cpuProfileMu.TryLock() {
			return errCPUBusy
		}
		defer cpuProfileMu.Unlock()
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		if cpuDur > 0 {
			time.Sleep(cpuDur)
		}
		pprof.StopCPUProfile()
		return f.Close()
	}
	prof := pprof.Lookup(kind)
	if prof == nil {
		return fmt.Errorf("unknown profile %q", kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := prof.WriteTo(f, 0)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// sanitizeTrigger maps a trigger name onto the filename-safe alphabet the
// flight recorder uses (alert rule names are already kebab-case; anything
// else degrades to '_').
func sanitizeTrigger(s string) string {
	if s == "" {
		return "manual"
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Snapshot returns the retained captures, oldest first.
func (p *Profiler) Snapshot() []ProfileCapture {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ProfileCapture(nil), p.index...)
}

// Start captures with trigger "periodic" every interval (non-positive
// means DefaultProfileInterval) until the returned stop function is
// called. The single-flight guard makes the periodic cycle yield to
// alert-triggered captures rather than stack on them.
func (p *Profiler) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultProfileInterval
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_, _, _ = p.Capture("periodic", CaptureMeta{})
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// WriteJSON renders the sidecar index as a JSON array, newest first (the
// /debug/profiles body). limit > 0 keeps only the newest limit entries.
func (p *Profiler) WriteJSON(w io.Writer, limit int) error {
	entries := p.Snapshot()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Seq > entries[j].Seq })
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	var b strings.Builder
	b.WriteString("[")
	for i, e := range entries {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, `{"seq": %d, "trigger": %s`, e.Seq, strconv.Quote(e.Trigger))
		if e.Alert != "" {
			fmt.Fprintf(&b, `, "alert": %s`, strconv.Quote(e.Alert))
		}
		if e.Trace != "" {
			fmt.Fprintf(&b, `, "trace": %q`, e.Trace)
		}
		b.WriteString(`, "files": [`)
		for j, f := range e.Files {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Quote(f))
		}
		b.WriteString("]")
		if len(e.Skipped) > 0 {
			b.WriteString(`, "skipped": [`)
			for j, s := range e.Skipped {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(strconv.Quote(s))
			}
			b.WriteString("]")
		}
		fmt.Fprintf(&b, `, "unix_ns": %d}`, e.UnixNano)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
