package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeAdmin serves a minimal admin surface shaped like the attest admin
// endpoint, for driving the federator without importing the attest layer.
func fakeAdmin(t *testing.T, status string, devices, alerts []map[string]any, seriesName string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"window_seconds": 5.0,
			"series": []map[string]any{
				{"name": seriesName, "kind": "counter", "points": []map[string]any{{"t": 1, "v": 2.0}}},
			},
		})
	})
	mux.HandleFunc("/devices", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(devices)
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(alerts)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if status == StatusSuspect.String() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"status": status, "devices": len(devices)})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestFederatorValidation(t *testing.T) {
	if _, err := NewFederator([]ScrapeSource{{Name: "", BaseURL: "http://x"}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewFederator([]ScrapeSource{
		{Name: "a", BaseURL: "http://x"}, {Name: "a", BaseURL: "http://y"},
	}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestFederatorMergesSources(t *testing.T) {
	a := fakeAdmin(t, "ok",
		[]map[string]any{{"device": "edge-1", "status": "ok"}},
		[]map[string]any{{"name": "rtt-p95", "state": "inactive"}},
		"sessions_total")
	b := fakeAdmin(t, "degraded",
		[]map[string]any{{"device": "edge-2", "status": "degraded"}},
		[]map[string]any{{"name": "rtt-p95", "state": "firing"}},
		"sessions_total")

	fed, err := NewFederator([]ScrapeSource{
		{Name: "shard-a", BaseURL: a.URL},
		{Name: "shard-b", BaseURL: b.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok := fed.Poll(context.Background()); ok != 2 {
		t.Fatalf("Poll scraped %d sources clean, want 2", ok)
	}

	mux := fed.Mux()

	// Merged history: both sources' series, each labeled.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/history", nil))
	var hist struct {
		Federated bool             `json:"federated"`
		Sources   int              `json:"sources"`
		Series    []map[string]any `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hist); err != nil {
		t.Fatalf("merged history does not parse: %v\n%s", err, rec.Body.String())
	}
	if !hist.Federated || hist.Sources != 2 || len(hist.Series) != 2 {
		t.Fatalf("merged history = %+v", hist)
	}
	gotSources := map[string]bool{}
	for _, s := range hist.Series {
		if s["name"] != "sessions_total" {
			t.Errorf("series name = %v", s["name"])
		}
		src, _ := s["source"].(string)
		gotSources[src] = true
	}
	if !gotSources["shard-a"] || !gotSources["shard-b"] {
		t.Errorf("source labels = %v", gotSources)
	}

	// Merged devices and alerts carry source labels too.
	for _, route := range []string{"/devices", "/alerts"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, route, nil))
		var records []map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &records); err != nil {
			t.Fatalf("%s does not parse: %v", route, err)
		}
		if len(records) != 2 {
			t.Fatalf("%s merged %d records, want 2", route, len(records))
		}
		for _, r := range records {
			if r["source"] != "shard-a" && r["source"] != "shard-b" {
				t.Errorf("%s record missing source label: %v", route, r)
			}
		}
	}

	// Merged health: worst across sources (degraded beats ok), 200.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz code = %d", rec.Code)
	}
	var health struct {
		Status  string                    `json:"status"`
		Sources map[string]map[string]any `json:"sources"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || len(health.Sources) != 2 {
		t.Errorf("merged health = %+v", health)
	}
}

func TestFederatorSuspectIs503(t *testing.T) {
	a := fakeAdmin(t, "ok", nil, nil, "s_total")
	b := fakeAdmin(t, "suspect", nil, nil, "s_total")
	fed, err := NewFederator([]ScrapeSource{
		{Name: "a", BaseURL: a.URL}, {Name: "b", BaseURL: b.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	fed.Poll(context.Background())

	rec := httptest.NewRecorder()
	fed.Mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz code = %d, want 503 when a source is suspect", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"status": "suspect"`) &&
		!strings.Contains(rec.Body.String(), `"status":"suspect"`) {
		t.Errorf("merged body = %s", rec.Body.String())
	}
}

// TestFederatorUnreachableSource: a source that fails its scrape keeps its
// last good data, is flagged stale, and degrades the merged verdict.
func TestFederatorUnreachableSource(t *testing.T) {
	a := fakeAdmin(t, "ok", []map[string]any{{"device": "edge-1"}}, nil, "s_total")
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(down.Close)

	fed, err := NewFederator([]ScrapeSource{
		{Name: "alive", BaseURL: a.URL}, {Name: "dead", BaseURL: down.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok := fed.Poll(context.Background()); ok != 1 {
		t.Fatalf("Poll clean count = %d, want 1", ok)
	}

	h := fed.Health()
	if h.Status != StatusDegraded.String() {
		t.Errorf("merged status with blind spot = %q, want degraded", h.Status)
	}
	if len(h.Stale) != 1 || h.Stale[0] != "dead" {
		t.Errorf("stale sources = %v, want [dead]", h.Stale)
	}

	// /federation reports the failure.
	var fedDoc []struct {
		Source   string `json:"source"`
		Scrapes  uint64 `json:"scrapes"`
		Failures uint64 `json:"failures"`
		Stale    bool   `json:"stale"`
		LastErr  string `json:"last_error"`
	}
	if err := json.Unmarshal([]byte(fed.FederationJSON()), &fedDoc); err != nil {
		t.Fatalf("federation JSON does not parse: %v\n%s", err, fed.FederationJSON())
	}
	byName := map[string]int{}
	for i, d := range fedDoc {
		byName[d.Source] = i
	}
	dead := fedDoc[byName["dead"]]
	if dead.Failures != 1 || !dead.Stale || dead.LastErr == "" {
		t.Errorf("dead source record = %+v", dead)
	}
	alive := fedDoc[byName["alive"]]
	if alive.Failures != 0 || alive.Stale || alive.Scrapes != 1 {
		t.Errorf("alive source record = %+v", alive)
	}
}

// TestFederatorStaleness: data older than StaleAfter flags the source even
// when the last scrape succeeded.
func TestFederatorStaleness(t *testing.T) {
	a := fakeAdmin(t, "ok", nil, nil, "s_total")
	fed, err := NewFederator([]ScrapeSource{{Name: "a", BaseURL: a.URL}})
	if err != nil {
		t.Fatal(err)
	}
	clk := &manualClock{t: time.Unix(3000, 0)}
	fed.SetClock(clk.now)
	fed.SetStaleAfter(30 * time.Second)
	fed.Poll(context.Background())

	if h := fed.Health(); h.Status != StatusOK.String() || len(h.Stale) != 0 {
		t.Fatalf("fresh health = %+v", h)
	}
	clk.advance(31 * time.Second)
	h := fed.Health()
	if h.Status != StatusDegraded.String() || len(h.Stale) != 1 {
		t.Errorf("stale health = %+v", h)
	}
}

func TestFederatorMuxMethodNotAllowed(t *testing.T) {
	a := fakeAdmin(t, "ok", nil, nil, "s_total")
	fed, err := NewFederator([]ScrapeSource{{Name: "a", BaseURL: a.URL}})
	if err != nil {
		t.Fatal(err)
	}
	mux := fed.Mux()
	for _, route := range []string{"/metrics/history", "/devices", "/alerts", "/healthz", "/federation"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, route, strings.NewReader("x")))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", route, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s Allow header = %q", route, allow)
		}
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, route, nil))
		if rec.Code == http.StatusMethodNotAllowed {
			t.Errorf("GET %s rejected", route)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("GET %s Content-Type = %q", route, ct)
		}
	}
}

// TestFederatorEmptyBodies: merged routes answer valid JSON before any
// successful scrape.
func TestFederatorEmptyBodies(t *testing.T) {
	fed, err := NewFederator([]ScrapeSource{{Name: "a", BaseURL: "http://127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	mux := fed.Mux()
	for _, route := range []string{"/metrics/history", "/devices", "/alerts", "/healthz", "/federation"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, route, nil))
		body, _ := io.ReadAll(rec.Body)
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("%s before scrape does not parse: %v\n%s", route, err, body)
		}
	}
}
