package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// Trace identity. Spans carry a (trace ID, span ID) pair so the spans of
// one attestation session can be correlated across processes: the verifier
// mints the trace ID, propagates it to the prover inside the challenge
// frame's trace-header extension, and both sides' /debug/traces then show
// spans under the same trace ID — one logical tree per session, stitched
// by ID rather than by shared memory.
//
// IDs are minted from a seeded SplitMix64 stream on the tracer, NOT from
// the wall clock or a global RNG: tests inject a seed (Tracer.SetIDSeed)
// and get bit-identical IDs run after run, while production tracers seed
// from crypto/rand at construction. Zero is reserved as "absent" in both
// ID spaces, so a zero TraceContext unambiguously means "no propagated
// context" on the wire.

// TraceID identifies one logical operation across processes (64-bit,
// rendered as 16 hex digits; 0 = absent).
type TraceID uint64

// String renders the ID as fixed-width hex.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// SpanID identifies one span within a trace (0 = absent).
type SpanID uint64

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// TraceContext is the propagatable part of a span: the pair a wire frame
// carries so a remote peer can parent its spans into the same trace.
type TraceContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a real trace (both IDs
// non-zero).
func (tc TraceContext) Valid() bool { return tc.Trace != 0 && tc.Span != 0 }

// idMix is SplitMix64: the tracer's ID stream. It lives here (three lines)
// rather than importing the simulation RNG so the telemetry package stays
// dependency-free.
func idMix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// randomIDSeed draws a process-unique ID seed. crypto/rand rather than the
// clock: ID minting must work identically under injected test clocks.
func randomIDSeed() uint64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Entropy exhaustion is effectively impossible; fall back to a
		// fixed seed rather than failing tracer construction.
		return 0x5eed1d5eed1d5eed
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// SetIDSeed re-seeds the tracer's ID stream. Tests use this to make every
// minted trace/span ID deterministic; the IDs for the n-th span are then a
// pure function of (seed, n).
func (t *Tracer) SetIDSeed(seed uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.idState = seed
}

// mintID draws the next non-zero ID from the tracer's stream.
func (t *Tracer) mintID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if id := idMix(&t.idState); id != 0 {
			return id
		}
	}
}
