package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a stepping clock: each call advances by step.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestJournalAppendAndOrder(t *testing.T) {
	j := NewJournal(8)
	j.SetClock(fakeClock(time.Unix(100, 0), time.Millisecond))
	for i := 0; i < 5; i++ {
		seq := j.Append(Event{Kind: EventSessionOpen, Session: uint64(i + 1), Device: "dev"})
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	events := j.Recent()
	if len(events) != 5 || j.Len() != 5 {
		t.Fatalf("retained %d/%d events, want 5", len(events), j.Len())
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) || e.Session != uint64(i+1) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d not timestamped", i)
		}
	}
	if j.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", j.Dropped())
	}
}

func TestJournalRingOverwriteCountsDrops(t *testing.T) {
	j := NewJournal(4)
	var metric Counter
	j.SetDropCounter(&metric)
	for i := 0; i < 10; i++ {
		j.Append(Event{Kind: EventRetry})
	}
	if got := j.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	if metric.Value() != 6 {
		t.Fatalf("drop counter = %d, want 6", metric.Value())
	}
	events := j.Recent()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	if events[0].Seq != 7 || events[3].Seq != 10 {
		t.Fatalf("ring window = [%d..%d], want [7..10]", events[0].Seq, events[3].Seq)
	}
}

func TestJournalByTrace(t *testing.T) {
	j := NewJournal(16)
	a, b := TraceID(0xaaaa), TraceID(0xbbbb)
	j.Append(Event{Trace: a, Kind: EventSessionOpen})
	j.Append(Event{Trace: b, Kind: EventSessionOpen})
	j.Append(Event{Trace: a, Kind: EventVerifyOutcome})
	j.Append(Event{Kind: EventFaultInjected}) // no trace context
	got := j.ByTrace(a)
	if len(got) != 2 || got[0].Kind != EventSessionOpen || got[1].Kind != EventVerifyOutcome {
		t.Fatalf("ByTrace(a) = %+v", got)
	}
}

func TestJournalSnapshotIsParseableJSONLines(t *testing.T) {
	j := NewJournal(8)
	j.Append(Event{Trace: 0x1234, Session: 7, Device: "node-1", Kind: EventVerifyOutcome, Detail: `verdict "rejected"`})
	j.Append(Event{Kind: EventFaultInjected, Detail: "class=drop"})
	var sb strings.Builder
	if err := j.Snapshot(&sb, "test-dump"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 events", len(lines))
	}
	if lines[0]["flight_recorder"] != "test-dump" || lines[0]["events"].(float64) != 2 {
		t.Fatalf("bad header: %v", lines[0])
	}
	if lines[1]["trace_id"] != TraceID(0x1234).String() || lines[1]["device"] != "node-1" {
		t.Fatalf("bad event line: %v", lines[1])
	}
	if lines[2]["kind"] != "fault_injected" {
		t.Fatalf("bad event line: %v", lines[2])
	}
}

func TestJournalWriteJSONArray(t *testing.T) {
	j := NewJournal(8)
	j.Append(Event{Kind: EventBackoff, Detail: "42ms"})
	var sb strings.Builder
	if err := j.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 1 || events[0]["kind"] != "backoff" || events[0]["detail"] != "42ms" {
		t.Fatalf("events = %v", events)
	}
}

func TestEventKindNamesStable(t *testing.T) {
	want := map[EventKind]string{
		EventSessionOpen: "session_open", EventSeedClaim: "seed_claim",
		EventChallengeSent: "challenge_sent", EventChecksumReceived: "checksum_received",
		EventVerifyOutcome: "verify_outcome", EventRetry: "retry",
		EventBackoff: "backoff", EventFaultInjected: "fault_injected",
		EventQuarantine: "quarantine", EventEpoch: "epoch",
		EventAlert: "alert",
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() != want[k] {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want[k])
		}
	}
}

func TestJournalAppendDoesNotAllocate(t *testing.T) {
	j := NewJournal(64)
	e := Event{Trace: 1, Session: 2, Device: "node-0", Kind: EventRetry, Detail: "attempt 2"}
	allocs := testing.AllocsPerRun(200, func() { j.Append(e) })
	if allocs > 0 {
		t.Fatalf("Append allocates %.1f times per call, want 0", allocs)
	}
}
