package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// alertFixture wires a registry, store, journal, and manager on one manual
// clock, with a helper that advances a collection window.
type alertFixture struct {
	reg     *Registry
	ts      *TimeSeries
	journal *Journal
	mgr     *AlertManager
	clk     *manualClock
}

func newAlertFixture() *alertFixture {
	f := &alertFixture{
		reg:     NewRegistry(),
		journal: NewJournal(64),
		clk:     &manualClock{t: time.Unix(2000, 0)},
	}
	f.ts = NewTimeSeries(f.reg, 64, 5*time.Second)
	f.ts.SetClock(f.clk.now)
	f.journal.SetClock(f.clk.now)
	f.mgr = NewAlertManager(f.ts, f.journal)
	f.mgr.SetClock(f.clk.now)
	return f
}

// tick advances one window, collects, and evaluates.
func (f *alertFixture) tick() {
	f.clk.advance(5 * time.Second)
	f.ts.Collect()
	f.mgr.Evaluate()
}

func (f *alertFixture) status(t *testing.T, name string) AlertStatus {
	t.Helper()
	for _, a := range f.mgr.Snapshot() {
		if a.Rule.Name == name {
			return a
		}
	}
	t.Fatalf("no alert %q in snapshot", name)
	return AlertStatus{}
}

// TestAlertRatioLifecycle drives the canonical failure-rate rule through
// inactive -> firing -> resolved: the fast window trips first, the alert
// waits for the slow window to agree, fires, then resolves when both calm.
func TestAlertRatioLifecycle(t *testing.T) {
	f := newAlertFixture()
	bad := f.reg.Counter("rejected_total", "rejections")
	total := f.reg.Counter("sessions_total", "sessions")
	rule := Rule{
		Name: "failure-burn", Kind: RuleRatio,
		Metric: "rejected_total", TotalMetric: "sessions_total",
		Budget:     0.10, // SLO: tolerate 10% rejections
		BurnRate:   2,    // page when burning 2x budget
		FastWindow: 10 * time.Second, SlowWindow: 30 * time.Second,
	}
	f.mgr.SetRules([]Rule{rule})

	var transitions []string
	f.mgr.OnTransition(func(name string, firing bool) {
		state := "resolved"
		if firing {
			state = "firing"
		}
		transitions = append(transitions, name+":"+state)
	})

	// Healthy traffic: 100 sessions, 1 rejection per window -> burn 0.1.
	for i := 0; i < 7; i++ {
		total.Add(100)
		bad.Add(1)
		f.tick()
	}
	if got := f.status(t, "failure-burn"); got.State != AlertInactive {
		t.Fatalf("healthy state = %v, want inactive", got.State)
	}

	// Outage: 50% rejected -> burn 5.0, over the 2x bound. The fast window
	// (2 samples) fills with bad windows after 2 ticks, but the slow window
	// (6 samples) still holds healthy history — the alert must wait.
	total.Add(100)
	bad.Add(50)
	f.tick()
	total.Add(100)
	bad.Add(50)
	f.tick()
	st := f.status(t, "failure-burn")
	if st.State == AlertFiring {
		t.Fatalf("fired after 2 bad windows; slow window should still veto (slow burn %v)", st.SlowBurn)
	}
	if st.FastBurn < 2 {
		t.Fatalf("fast burn = %v, want >= 2 after two 50%% windows", st.FastBurn)
	}

	// Keep burning until the slow window agrees.
	for i := 0; i < 4 && f.status(t, "failure-burn").State != AlertFiring; i++ {
		total.Add(100)
		bad.Add(50)
		f.tick()
	}
	st = f.status(t, "failure-burn")
	if st.State != AlertFiring {
		t.Fatalf("never fired: fast=%v slow=%v", st.FastBurn, st.SlowBurn)
	}
	if st.Fired != 1 {
		t.Errorf("fired count = %d, want 1", st.Fired)
	}

	// Recovery: clean windows until both burns drop under the bound.
	for i := 0; i < 8 && f.status(t, "failure-burn").State == AlertFiring; i++ {
		total.Add(100)
		f.tick()
	}
	st = f.status(t, "failure-burn")
	if st.State != AlertResolved {
		t.Fatalf("state after recovery = %v, want resolved", st.State)
	}
	if st.LastResolved.IsZero() || st.LastFired.IsZero() {
		t.Errorf("lifecycle timestamps missing: %+v", st)
	}

	// The hook and journal saw exactly one firing and one resolution.
	if len(transitions) != 2 || transitions[0] != "failure-burn:firing" || transitions[1] != "failure-burn:resolved" {
		t.Errorf("transitions = %v", transitions)
	}
	var alertEvents []Event
	for _, e := range f.journal.Recent() {
		if e.Kind == EventAlert {
			alertEvents = append(alertEvents, e)
		}
	}
	if len(alertEvents) != 2 {
		t.Fatalf("journal holds %d alert events, want 2", len(alertEvents))
	}
	if !strings.Contains(alertEvents[0].Detail, "firing rule=failure-burn") ||
		!strings.Contains(alertEvents[1].Detail, "resolved rule=failure-burn") {
		t.Errorf("alert event details = %q, %q", alertEvents[0].Detail, alertEvents[1].Detail)
	}
}

func TestAlertQuantileRule(t *testing.T) {
	f := newAlertFixture()
	h := f.reg.Histogram("rtt_seconds", "rtt", []float64{0.01, 0.05, 0.25, 1})
	f.mgr.SetRules([]Rule{{
		Name: "rtt-p95", Kind: RuleQuantile,
		Metric: "rtt_seconds", Quantile: 0.95, Threshold: 0.05,
		FastWindow: 10 * time.Second, SlowWindow: 10 * time.Second,
	}})

	// Fast windows: p95 well under threshold.
	for i := 0; i < 3; i++ {
		for j := 0; j < 50; j++ {
			h.Observe(0.005)
		}
		f.tick()
	}
	if st := f.status(t, "rtt-p95"); st.State != AlertInactive {
		t.Fatalf("state with fast RTT = %v", st.State)
	}

	// Inflated windows: p95 lands in the 0.25..1 bucket.
	for i := 0; i < 3; i++ {
		for j := 0; j < 50; j++ {
			h.Observe(0.5)
		}
		f.tick()
	}
	if st := f.status(t, "rtt-p95"); st.State != AlertFiring {
		t.Fatalf("quantile rule did not fire: %+v", st)
	}

	// Empty windows render no judgement: the alert resolves only once the
	// bad samples age out, and stays resolved (not inactive).
	for i := 0; i < 4; i++ {
		f.tick()
	}
	if st := f.status(t, "rtt-p95"); st.State != AlertResolved {
		t.Fatalf("state after quiet windows = %v, want resolved", st.State)
	}
}

func TestAlertGaugeRule(t *testing.T) {
	f := newAlertFixture()
	g := f.reg.Gauge("budget_low_devices", "devices under watermark")
	f.mgr.SetRules([]Rule{{
		Name: "seed-budget", Kind: RuleGaugeAbove,
		Metric: "budget_low_devices", Threshold: 0,
		FastWindow: 5 * time.Second, SlowWindow: 15 * time.Second,
	}})

	f.tick()
	if st := f.status(t, "seed-budget"); st.State != AlertInactive {
		t.Fatalf("zero gauge state = %v", st.State)
	}
	g.Set(3)
	for i := 0; i < 4; i++ {
		f.tick()
	}
	if st := f.status(t, "seed-budget"); st.State != AlertFiring {
		t.Fatalf("gauge rule did not fire: %+v", st)
	}
	g.Set(0)
	for i := 0; i < 4; i++ {
		f.tick()
	}
	if st := f.status(t, "seed-budget"); st.State != AlertResolved {
		t.Fatalf("gauge rule did not resolve: %+v", st)
	}
}

// TestAlertNoDataNoJudgement: a rule whose windows hold no samples must not
// fire (and must not resolve a firing alert into flapping).
func TestAlertNoDataNoJudgement(t *testing.T) {
	f := newAlertFixture()
	f.mgr.SetRules([]Rule{{
		Name: "ghost", Kind: RuleRatio,
		Metric: "never_total", TotalMetric: "never_either_total",
		FastWindow: 10 * time.Second, SlowWindow: 30 * time.Second,
	}})
	for i := 0; i < 5; i++ {
		f.tick()
	}
	if st := f.status(t, "ghost"); st.State != AlertInactive {
		t.Fatalf("no-data rule state = %v, want inactive", st.State)
	}
	if f.mgr.Firing() != 0 {
		t.Errorf("Firing() = %d, want 0", f.mgr.Firing())
	}
}

// TestAlertSetRulesRetainsState: re-tuning a rule keeps its firing history;
// removed rules drop out.
func TestAlertSetRulesRetainsState(t *testing.T) {
	f := newAlertFixture()
	g := f.reg.Gauge("watermark", "w")
	rule := Rule{Name: "wm", Kind: RuleGaugeAbove, Metric: "watermark",
		Threshold: 1, FastWindow: 5 * time.Second, SlowWindow: 5 * time.Second}
	f.mgr.SetRules([]Rule{rule, {Name: "doomed", Kind: RuleGaugeAbove, Metric: "watermark",
		Threshold: 100, FastWindow: 5 * time.Second, SlowWindow: 5 * time.Second}})

	g.Set(5)
	f.tick()
	if st := f.status(t, "wm"); st.State != AlertFiring {
		t.Fatalf("setup: wm not firing: %+v", st)
	}

	rule.Threshold = 2 // re-tune, keep name
	f.mgr.SetRules([]Rule{rule})
	st := f.status(t, "wm")
	if st.State != AlertFiring || st.Fired != 1 {
		t.Errorf("state lost across SetRules: %+v", st)
	}
	if st.Rule.Threshold != 2 {
		t.Errorf("threshold not re-tuned: %+v", st.Rule)
	}
	for _, a := range f.mgr.Snapshot() {
		if a.Rule.Name == "doomed" {
			t.Error("removed rule still present")
		}
	}
}

func TestAlertWriteJSON(t *testing.T) {
	f := newAlertFixture()
	g := f.reg.Gauge("watermark", "w")
	f.mgr.SetRules([]Rule{{Name: "wm", Kind: RuleGaugeAbove, Metric: "watermark",
		Threshold: 1, Budget: 0.5, BurnRate: 1.5,
		FastWindow: 5 * time.Second, SlowWindow: 15 * time.Second}})
	g.Set(5)
	f.tick()

	var b strings.Builder
	if err := f.mgr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Name        string  `json:"name"`
		State       string  `json:"state"`
		Kind        string  `json:"kind"`
		Metric      string  `json:"metric"`
		FastWindowS float64 `json:"fast_window_seconds"`
		SlowWindowS float64 `json:"slow_window_seconds"`
		BurnBound   float64 `json:"burn_bound"`
		Budget      float64 `json:"budget"`
		FastBurn    float64 `json:"fast_burn"`
		Fired       uint64  `json:"fired"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("alerts JSON does not parse: %v\n%s", err, b.String())
	}
	if len(doc) != 1 {
		t.Fatalf("got %d alerts, want 1", len(doc))
	}
	a := doc[0]
	if a.Name != "wm" || a.Kind != "gauge-above" || a.Metric != "watermark" ||
		a.FastWindowS != 5 || a.SlowWindowS != 15 || a.BurnBound != 1.5 || a.Budget != 0.5 {
		t.Errorf("alert JSON = %+v", a)
	}
}
