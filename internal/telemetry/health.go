package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Per-device health: rolling aggregates of each device's attestation
// behaviour judged against configurable SLO thresholds. This is the
// fleet-side memory the paper's timing argument implies but a single
// session cannot provide: overclocking and PUF-oracle proxying manifest as
// RTT distribution shifts (Section 4.2), aging and temperature as slow
// false-negative drift (Figures 3–4) — all of them visible only across
// many sessions of one device. The registry folds every observed session
// into per-device aggregates and derives a three-state status:
//
//	ok                — within every SLO
//	degraded          — availability trouble (transport failures, retries,
//	                    quarantine): the device is hard to reach but
//	                    nothing questions its integrity
//	awaiting-reenroll — the device's seed budget emptied (or its epoch was
//	                    retired) before a fresh enrollment went live: a
//	                    planned lifecycle state, worse than degraded (the
//	                    device cannot attest at all) but emphatically not
//	                    suspect — nothing questions its integrity either
//	suspect           — a security-relevant SLO is out of bounds: RTT
//	                    quantiles above the bound (overclocking/proxy
//	                    signature), rejection rate, or response-quality
//	                    drift past the FNR budget
//
// The split mirrors the fleet's compromised-vs-unreachable reporting: the
// regimes demand different operator responses (re-enroll vs investigate
// vs fix the network), so they must not share a status.

// DeviceStatus is the health verdict for one device.
type DeviceStatus int

// Status levels, ordered by severity. Suspect dominates everything: a
// device that is both out of budget and security-suspicious reports
// suspect, because the operator response to suspicion is never "just
// re-enroll it".
const (
	StatusOK DeviceStatus = iota
	StatusDegraded
	StatusAwaitingReenroll
	StatusSuspect
)

// String names the status.
func (s DeviceStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDegraded:
		return "degraded"
	case StatusAwaitingReenroll:
		return "awaiting-reenroll"
	case StatusSuspect:
		return "suspect"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// SLO holds the health thresholds. A zero threshold disables that check,
// so the zero SLO judges nothing; MinSessions is the anti-flap gate — no
// device is judged before it has that many windowed records, which is what
// keeps a briefly-noisy clean device from tripping a false transition.
type SLO struct {
	// MinSessions is the number of windowed records required before any
	// status other than ok can be assigned.
	MinSessions int
	// Window is the rolling-window length in records (sessions and
	// transport failures both count); <=0 means DefaultHealthWindow.
	Window int

	// Suspect thresholds (security-relevant).
	// MaxRTTP95 bounds the device's p95 round-trip time in seconds — the
	// timing SLO; a proxied or overclocked prover inflates exactly this.
	MaxRTTP95 float64
	// MaxFailureRate bounds the windowed rejected/completed fraction.
	MaxFailureRate float64
	// MaxFNR bounds the response-quality drift estimate (EWMA of
	// false-negative-shaped rejections, or directly observed quality
	// samples) — the paper's aging/temperature axis.
	MaxFNR float64

	// Degraded thresholds (availability).
	// MaxTransportRate bounds the windowed transport-failure fraction.
	MaxTransportRate float64
	// MaxRetryRate bounds the windowed mean retries per record.
	MaxRetryRate float64
	// MinSeedBudget is the low-watermark on the device's remaining seed
	// budget: at or below it the device degrades with "seed budget low" —
	// the operator's (and the re-enrollment pipeline's) cue to start a
	// fresh epoch before the budget empties. 0 disables the check.
	MinSeedBudget int
}

// DefaultHealthWindow is the rolling-window length when the SLO does not
// choose one.
const DefaultHealthWindow = 64

// DefaultSLO returns a conservative threshold set: judgement after 8
// records, rejection rate under 1/3, FNR drift under 25 %, transport
// failures under 50 %, mean retries under 2. The timing bound MaxRTTP95 is
// deployment-specific (it depends on δ and the link) and therefore unset.
func DefaultSLO() SLO {
	return SLO{
		MinSessions:      8,
		Window:           DefaultHealthWindow,
		MaxFailureRate:   1.0 / 3,
		MaxFNR:           0.25,
		MaxTransportRate: 0.5,
		MaxRetryRate:     2,
	}
}

// Outcome classifies one observed attestation attempt series.
type Outcome uint8

// Session outcomes.
const (
	// OutcomeAccepted is a completed, accepted session.
	OutcomeAccepted Outcome = iota
	// OutcomeRejected is a completed session the verifier rejected.
	OutcomeRejected
	// OutcomeTransport is a session that never completed (transport
	// budget exhausted): an availability datum, not an integrity one.
	OutcomeTransport
)

// SessionObservation is one device-session datum for the registry.
type SessionObservation struct {
	// Outcome classifies the session.
	Outcome Outcome
	// RTT is the verifier-observed round-trip in seconds (completed
	// sessions only; ignored for OutcomeTransport).
	RTT float64
	// RejectClass is the bounded rejection-reason class for rejected
	// sessions ("tag_mismatch" feeds the FNR drift estimate).
	RejectClass string
	// Retries is the number of attempts beyond the first.
	Retries int
}

// Transition records one status change.
type Transition struct {
	Seq    uint64
	Time   time.Time
	From   DeviceStatus
	To     DeviceStatus
	Reason string
}

// DeviceHealth is a point-in-time health snapshot for one device.
type DeviceHealth struct {
	Device string
	Status DeviceStatus
	// Reasons lists the SLO violations behind a non-ok status.
	Reasons []string

	// Lifetime counters.
	Sessions  uint64 // completed (accepted + rejected)
	Accepted  uint64
	Rejected  uint64
	Transport uint64

	// Windowed rates.
	WindowRecords int
	FailureRate   float64
	TransportRate float64
	RetryRate     float64

	// RTT quantiles (lifetime histogram; NaN before any session).
	RTTP50, RTTP95, RTTP99 float64

	// FNREstimate is the response-quality drift EWMA.
	FNREstimate float64

	// Seed-budget burn: claims observed and the last reported remaining
	// budget (-1 when no budget was ever reported).
	SeedsClaimed   uint64
	SeedsRemaining int
	// BudgetExhausted reports that a session failed to claim a seed (empty
	// or retired budget) and no claim has succeeded since — the
	// awaiting-reenroll trigger.
	BudgetExhausted bool

	Quarantined     bool
	QuarantineCount uint64

	// Transitions holds the most recent status changes, oldest first.
	Transitions []Transition
	LastSeen    time.Time
}

// windowRecord is one ring slot of a device's rolling window.
type windowRecord struct {
	outcome Outcome
	retries int32
	fnrHit  bool
}

// maxTransitions bounds the per-device transition history.
const maxTransitions = 16

// deviceState is the registry's mutable per-device record.
type deviceState struct {
	rtt    *Histogram // the existing histogram type: lock-free quantiles
	window []windowRecord
	next   int
	filled bool

	sessions, accepted, rejected, transport uint64
	fnrEst                                  float64
	fnrSeeded                               bool
	seedsClaimed                            uint64
	seedsRemaining                          int
	budgetExhausted                         bool
	budgetLow                               bool // mirrored into the watermark gauge
	quarantined                             bool
	quarantineCount                         uint64

	status      DeviceStatus
	transitions []Transition
	lastSeen    time.Time
}

// HealthRegistry aggregates per-device health against one SLO. Safe for
// concurrent use.
type HealthRegistry struct {
	mu      sync.Mutex
	clock   func() time.Time
	slo     SLO
	seq     uint64
	devices map[string]*deviceState

	onTransition func(device string, tr Transition)
	// budgetLowGauge, when set, tracks how many devices currently sit at or
	// below the seed-budget watermark (attached by the owning telemetry
	// bundle; the registry cannot self-register).
	budgetLowGauge *Gauge
}

// NewHealthRegistry returns an empty registry judging against slo.
func NewHealthRegistry(slo SLO) *HealthRegistry {
	return &HealthRegistry{clock: time.Now, slo: slo, devices: make(map[string]*deviceState)}
}

// SetClock injects the registry clock (nil restores time.Now).
func (h *HealthRegistry) SetClock(now func() time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	h.clock = now
}

// SetSLO replaces the thresholds. Existing aggregates are kept; statuses
// are re-derived lazily as devices are next observed.
func (h *HealthRegistry) SetSLO(slo SLO) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.slo = slo
}

// SLO returns the current thresholds.
func (h *HealthRegistry) SLO() SLO {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.slo
}

// OnTransition installs a status-change hook (metrics, journal). The hook
// runs outside the registry lock.
func (h *HealthRegistry) OnTransition(fn func(device string, tr Transition)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onTransition = fn
}

// device returns (creating) the state for a device id.
func (h *HealthRegistry) device(id string) *deviceState {
	d, ok := h.devices[id]
	if !ok {
		w := h.slo.Window
		if w <= 0 {
			w = DefaultHealthWindow
		}
		d = &deviceState{
			rtt:            newHistogram(nil),
			window:         make([]windowRecord, w),
			seedsRemaining: -1,
		}
		h.devices[id] = d
	}
	return d
}

// push appends one record to the device's rolling window.
func (d *deviceState) push(r windowRecord) {
	d.window[d.next] = r
	d.next++
	if d.next == len(d.window) {
		d.next = 0
		d.filled = true
	}
}

// windowLen reports how many records the window holds.
func (d *deviceState) windowLen() int {
	if d.filled {
		return len(d.window)
	}
	return d.next
}

// Observe folds one session observation into the device's aggregates and
// re-derives its status.
func (h *HealthRegistry) Observe(device string, obs SessionObservation) {
	if device == "" {
		return
	}
	h.mu.Lock()
	d := h.device(device)
	d.lastSeen = h.clock()
	rec := windowRecord{outcome: obs.Outcome, retries: int32(obs.Retries)}
	switch obs.Outcome {
	case OutcomeAccepted:
		d.sessions++
		d.accepted++
		d.rtt.Observe(obs.RTT)
	case OutcomeRejected:
		d.sessions++
		d.rejected++
		d.rtt.Observe(obs.RTT)
		rec.fnrHit = obs.RejectClass == "tag_mismatch"
	case OutcomeTransport:
		d.transport++
	}
	d.push(rec)
	if obs.Outcome != OutcomeTransport {
		// Response-quality drift: EWMA of FNR-shaped rejections over
		// completed sessions, α = 2/(window+1).
		sample := 0.0
		if rec.fnrHit {
			sample = 1.0
		}
		alpha := 2.0 / float64(len(d.window)+1)
		if !d.fnrSeeded {
			d.fnrEst, d.fnrSeeded = sample, true
		} else {
			d.fnrEst += alpha * (sample - d.fnrEst)
		}
	}
	h.rederive(device, d)
}

// ObserveQuality feeds a directly measured response-quality sample (a
// per-session FNR estimate, e.g. an ECC corrected-bit fraction) into the
// device's drift EWMA — for callers with a finer signal than the
// rejection stream.
func (h *HealthRegistry) ObserveQuality(device string, fnr float64) {
	if device == "" {
		return
	}
	h.mu.Lock()
	d := h.device(device)
	alpha := 2.0 / float64(len(d.window)+1)
	if !d.fnrSeeded {
		d.fnrEst, d.fnrSeeded = fnr, true
	} else {
		d.fnrEst += alpha * (fnr - d.fnrEst)
	}
	h.rederive(device, d)
}

// SetBudgetLowGauge mirrors the number of devices at or below the
// seed-budget watermark into a registry gauge (nil detaches). The
// registry cannot self-register metrics, so the owning bundle attaches
// one.
func (h *HealthRegistry) SetBudgetLowGauge(g *Gauge) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.budgetLowGauge = g
}

// refreshBudgetLow re-derives the device's watermark state and keeps the
// budget-low gauge in step. Called with h.mu held.
func (h *HealthRegistry) refreshBudgetLow(d *deviceState) {
	low := d.budgetExhausted ||
		(h.slo.MinSeedBudget > 0 && d.seedsRemaining >= 0 && d.seedsRemaining <= h.slo.MinSeedBudget)
	if low == d.budgetLow {
		return
	}
	d.budgetLow = low
	if h.budgetLowGauge == nil {
		return
	}
	if low {
		h.budgetLowGauge.Add(1)
	} else {
		h.budgetLowGauge.Add(-1)
	}
}

// ObserveSeedClaim records one seed-budget claim and the budget remaining
// after it — the burn-rate ledger. A successful claim with budget left
// also clears any standing exhaustion flag: the device claimed a seed, so
// it is attesting again (typically on a fresh epoch).
func (h *HealthRegistry) ObserveSeedClaim(device string, remaining int) {
	if device == "" {
		return
	}
	h.mu.Lock()
	d := h.device(device)
	d.seedsClaimed++
	d.seedsRemaining = remaining
	if remaining > 0 {
		d.budgetExhausted = false
	}
	h.refreshBudgetLow(d)
	h.rederive(device, d)
}

// ObserveBudgetExhausted records a failed seed claim against an empty or
// retired budget: the device enters the awaiting-reenroll state until a
// later claim succeeds with budget remaining.
func (h *HealthRegistry) ObserveBudgetExhausted(device string) {
	if device == "" {
		return
	}
	h.mu.Lock()
	d := h.device(device)
	d.budgetExhausted = true
	d.seedsRemaining = 0
	h.refreshBudgetLow(d)
	h.rederive(device, d)
}

// ObserveQuarantine records a circuit-breaker transition for the device.
func (h *HealthRegistry) ObserveQuarantine(device string, quarantined bool) {
	if device == "" {
		return
	}
	h.mu.Lock()
	d := h.device(device)
	if quarantined && !d.quarantined {
		d.quarantineCount++
	}
	d.quarantined = quarantined
	h.rederive(device, d)
}

// rederive recomputes the device's status and fires the transition hook on
// change. Called with h.mu held; releases it.
func (h *HealthRegistry) rederive(device string, d *deviceState) {
	status, reasons := evaluate(d, h.slo)
	var (
		fire func(device string, tr Transition)
		tr   Transition
	)
	if status != d.status {
		h.seq++
		tr = Transition{
			Seq: h.seq, Time: h.clock(),
			From: d.status, To: status,
			Reason: strings.Join(reasons, "; "),
		}
		if tr.Reason == "" {
			tr.Reason = "within SLO"
		}
		d.status = status
		d.transitions = append(d.transitions, tr)
		if len(d.transitions) > maxTransitions {
			d.transitions = d.transitions[len(d.transitions)-maxTransitions:]
		}
		fire = h.onTransition
	}
	h.mu.Unlock()
	if fire != nil {
		fire(device, tr)
	}
}

// windowRates computes the rolling-window aggregates.
func (d *deviceState) windowRates() (records, completed int, failRate, transportRate, retryRate float64) {
	records = d.windowLen()
	if records == 0 {
		return 0, 0, 0, 0, 0
	}
	var rejected, transport, retries int
	scan := func(recs []windowRecord) {
		for _, r := range recs {
			switch r.outcome {
			case OutcomeRejected:
				rejected++
				completed++
			case OutcomeAccepted:
				completed++
			case OutcomeTransport:
				transport++
			}
			retries += int(r.retries)
		}
	}
	if d.filled {
		scan(d.window[d.next:])
	}
	scan(d.window[:d.next])
	if completed > 0 {
		failRate = float64(rejected) / float64(completed)
	}
	transportRate = float64(transport) / float64(records)
	retryRate = float64(retries) / float64(records)
	return records, completed, failRate, transportRate, retryRate
}

// evaluate derives (status, violated-SLO reasons) for a device.
func evaluate(d *deviceState, slo SLO) (DeviceStatus, []string) {
	records, completed, failRate, transportRate, retryRate := d.windowRates()
	if records < slo.MinSessions {
		return StatusOK, nil // not enough data to judge
	}
	var suspect, degraded []string
	if slo.MaxRTTP95 > 0 && completed > 0 {
		if p95 := d.rtt.Quantile(0.95); p95 > slo.MaxRTTP95 {
			suspect = append(suspect, fmt.Sprintf("rtt p95 %.4gs > slo %.4gs", p95, slo.MaxRTTP95))
		}
	}
	if slo.MaxFailureRate > 0 && failRate >= slo.MaxFailureRate {
		suspect = append(suspect, fmt.Sprintf("failure rate %.2f >= slo %.2f", failRate, slo.MaxFailureRate))
	}
	if slo.MaxFNR > 0 && d.fnrEst >= slo.MaxFNR {
		suspect = append(suspect, fmt.Sprintf("fnr drift %.3f >= slo %.3f", d.fnrEst, slo.MaxFNR))
	}
	if len(suspect) > 0 {
		return StatusSuspect, suspect
	}
	if d.budgetExhausted {
		// Out of budget with no live enrollment: the planned end of an
		// epoch's lifetime, not an integrity signal — but the device cannot
		// attest until re-enrolled, so it outranks plain degradation.
		return StatusAwaitingReenroll, []string{"seed budget exhausted; awaiting re-enrollment"}
	}
	if slo.MinSeedBudget > 0 && d.seedsRemaining >= 0 && d.seedsRemaining <= slo.MinSeedBudget {
		degraded = append(degraded, fmt.Sprintf("seed budget low: %d <= watermark %d",
			d.seedsRemaining, slo.MinSeedBudget))
	}
	if slo.MaxTransportRate > 0 && transportRate >= slo.MaxTransportRate {
		degraded = append(degraded, fmt.Sprintf("transport rate %.2f >= slo %.2f", transportRate, slo.MaxTransportRate))
	}
	if slo.MaxRetryRate > 0 && retryRate >= slo.MaxRetryRate {
		degraded = append(degraded, fmt.Sprintf("retry rate %.2f >= slo %.2f", retryRate, slo.MaxRetryRate))
	}
	if d.quarantined {
		degraded = append(degraded, "quarantined")
	}
	if len(degraded) > 0 {
		return StatusDegraded, degraded
	}
	return StatusOK, nil
}

// snapshotDevice builds a DeviceHealth from state. Called with h.mu held.
func snapshotDevice(id string, d *deviceState, slo SLO) DeviceHealth {
	records, _, failRate, transportRate, retryRate := d.windowRates()
	status, reasons := evaluate(d, slo)
	return DeviceHealth{
		Device:          id,
		Status:          status,
		Reasons:         reasons,
		Sessions:        d.sessions,
		Accepted:        d.accepted,
		Rejected:        d.rejected,
		Transport:       d.transport,
		WindowRecords:   records,
		FailureRate:     failRate,
		TransportRate:   transportRate,
		RetryRate:       retryRate,
		RTTP50:          d.rtt.Quantile(0.50),
		RTTP95:          d.rtt.Quantile(0.95),
		RTTP99:          d.rtt.Quantile(0.99),
		FNREstimate:     d.fnrEst,
		SeedsClaimed:    d.seedsClaimed,
		SeedsRemaining:  d.seedsRemaining,
		BudgetExhausted: d.budgetExhausted,
		Quarantined:     d.quarantined,
		QuarantineCount: d.quarantineCount,
		Transitions:     append([]Transition(nil), d.transitions...),
		LastSeen:        d.lastSeen,
	}
}

// Get returns the health snapshot for one device (ok=false when the
// device was never observed).
func (h *HealthRegistry) Get(device string) (DeviceHealth, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.devices[device]
	if !ok {
		return DeviceHealth{}, false
	}
	return snapshotDevice(device, d, h.slo), true
}

// Status returns the device's current status (StatusOK for unknown
// devices — no data is not an alarm).
func (h *HealthRegistry) Status(device string) DeviceStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.devices[device]
	if !ok {
		return StatusOK
	}
	return d.status
}

// Snapshot returns every device's health, sorted by device id.
func (h *HealthRegistry) Snapshot() []DeviceHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]DeviceHealth, 0, len(h.devices))
	for id, d := range h.devices {
		out = append(out, snapshotDevice(id, d, h.slo))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// HealthSummary aggregates the fleet's statuses.
type HealthSummary struct {
	Devices          int
	OK               int
	Degraded         int
	AwaitingReenroll int
	Suspect          int
}

// Status reports the fleet-wide worst status.
func (s HealthSummary) Status() DeviceStatus {
	switch {
	case s.Suspect > 0:
		return StatusSuspect
	case s.AwaitingReenroll > 0:
		return StatusAwaitingReenroll
	case s.Degraded > 0:
		return StatusDegraded
	}
	return StatusOK
}

// Summary counts devices per status.
func (h *HealthRegistry) Summary() HealthSummary {
	var sum HealthSummary
	for _, d := range h.Snapshot() {
		sum.Devices++
		switch d.Status {
		case StatusSuspect:
			sum.Suspect++
		case StatusAwaitingReenroll:
			sum.AwaitingReenroll++
		case StatusDegraded:
			sum.Degraded++
		default:
			sum.OK++
		}
	}
	return sum
}

// WriteJSON renders every device's health snapshot as a JSON array, sorted
// by device id.
func (h *HealthRegistry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("[")
	for i, d := range h.Snapshot() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		writeDeviceJSON(&b, d)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeDeviceJSON(b *strings.Builder, d DeviceHealth) {
	fmt.Fprintf(b, `{"device": %s, "status": %q`, strconv.Quote(d.Device), d.Status.String())
	if len(d.Reasons) > 0 {
		b.WriteString(`, "reasons": [`)
		for i, r := range d.Reasons {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Quote(r))
		}
		b.WriteString("]")
	}
	fmt.Fprintf(b, `, "sessions": %d, "accepted": %d, "rejected": %d, "transport_failures": %d`,
		d.Sessions, d.Accepted, d.Rejected, d.Transport)
	fmt.Fprintf(b, `, "window_records": %d, "failure_rate": %s, "transport_rate": %s, "retry_rate": %s`,
		d.WindowRecords, jsonNumber(d.FailureRate), jsonNumber(d.TransportRate), jsonNumber(d.RetryRate))
	fmt.Fprintf(b, `, "rtt_p50": %s, "rtt_p95": %s, "rtt_p99": %s, "fnr_estimate": %s`,
		jsonNumber(d.RTTP50), jsonNumber(d.RTTP95), jsonNumber(d.RTTP99), jsonNumber(d.FNREstimate))
	fmt.Fprintf(b, `, "seeds_claimed": %d, "seeds_remaining": %d, "budget_exhausted": %t`,
		d.SeedsClaimed, d.SeedsRemaining, d.BudgetExhausted)
	fmt.Fprintf(b, `, "quarantined": %t, "quarantine_count": %d`, d.Quarantined, d.QuarantineCount)
	if len(d.Transitions) > 0 {
		b.WriteString(`, "transitions": [`)
		for i, tr := range d.Transitions {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, `{"seq": %d, "time_unix_ns": %d, "from": %q, "to": %q, "reason": %s}`,
				tr.Seq, tr.Time.UnixNano(), tr.From.String(), tr.To.String(), strconv.Quote(tr.Reason))
		}
		b.WriteString("]")
	}
	b.WriteString("}")
}
