package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// healthSLO is the test threshold set: judge after 4 records, timing SLO
// at 100 ms p95.
func healthSLO() SLO {
	return SLO{
		MinSessions:      4,
		Window:           16,
		MaxRTTP95:        0.100,
		MaxFailureRate:   0.5,
		MaxFNR:           0.25,
		MaxTransportRate: 0.5,
		MaxRetryRate:     2,
	}
}

func acceptedAt(rtt float64) SessionObservation {
	return SessionObservation{Outcome: OutcomeAccepted, RTT: rtt}
}

func TestHealthCleanDeviceStaysOK(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	h.SetClock(fakeClock(time.Unix(0, 0), time.Second))
	for i := 0; i < 50; i++ {
		h.Observe("clean", acceptedAt(0.020))
	}
	d, ok := h.Get("clean")
	if !ok || d.Status != StatusOK {
		t.Fatalf("clean device status = %v, want ok", d.Status)
	}
	if len(d.Transitions) != 0 {
		t.Fatalf("clean device logged %d transitions, want 0 (no false transitions)", len(d.Transitions))
	}
	if d.Sessions != 50 || d.Accepted != 50 {
		t.Fatalf("counters: %+v", d)
	}
}

// TestHealthRTTInflationTripsSuspect is the overclocking/proxy signature:
// every session still ACCEPTED (inflation stays under δ), yet the device
// must go suspect from the timing SLO alone.
func TestHealthRTTInflationTripsSuspect(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	h.SetClock(fakeClock(time.Unix(0, 0), time.Second))
	for i := 0; i < 20; i++ {
		h.Observe("slow", acceptedAt(0.250)) // 2.5× the 100 ms SLO
	}
	d, _ := h.Get("slow")
	if d.Status != StatusSuspect {
		t.Fatalf("inflated device status = %v, want suspect (reasons %v)", d.Status, d.Reasons)
	}
	if d.Rejected != 0 {
		t.Fatalf("rejected = %d — suspect must come from timing alone", d.Rejected)
	}
	if len(d.Reasons) != 1 || !strings.Contains(d.Reasons[0], "rtt p95") {
		t.Fatalf("reasons = %v, want a single rtt p95 violation", d.Reasons)
	}
	// Exactly one transition, ok → suspect, and not before MinSessions.
	if len(d.Transitions) != 1 {
		t.Fatalf("transitions = %+v, want exactly one", d.Transitions)
	}
	tr := d.Transitions[0]
	if tr.From != StatusOK || tr.To != StatusSuspect {
		t.Fatalf("transition %v → %v, want ok → suspect", tr.From, tr.To)
	}
}

func TestHealthMinSessionsGatesJudgement(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	for i := 0; i < 3; i++ { // below MinSessions=4
		h.Observe("young", acceptedAt(10.0)) // way over the timing SLO
	}
	if got := h.Status("young"); got != StatusOK {
		t.Fatalf("status before MinSessions = %v, want ok", got)
	}
	h.Observe("young", acceptedAt(10.0)) // 4th record: judgement begins
	if got := h.Status("young"); got != StatusSuspect {
		t.Fatalf("status after MinSessions = %v, want suspect", got)
	}
}

func TestHealthTransportDegradesNotSuspects(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	for i := 0; i < 10; i++ {
		h.Observe("flaky", SessionObservation{Outcome: OutcomeTransport, Retries: 3})
	}
	d, _ := h.Get("flaky")
	if d.Status != StatusDegraded {
		t.Fatalf("unreachable device status = %v, want degraded (reasons %v)", d.Status, d.Reasons)
	}
	if d.Transport != 10 || d.Sessions != 0 {
		t.Fatalf("counters: %+v", d)
	}
}

func TestHealthFNRDriftTripsSuspect(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	// An aging device: accepted at first, then a growing fraction of
	// tag-mismatch rejections (the honest-device FNR signature).
	for i := 0; i < 8; i++ {
		h.Observe("aging", acceptedAt(0.020))
	}
	if h.Status("aging") != StatusOK {
		t.Fatal("device suspect before drift")
	}
	for i := 0; i < 12; i++ {
		h.Observe("aging", SessionObservation{Outcome: OutcomeRejected, RTT: 0.020, RejectClass: "tag_mismatch"})
	}
	d, _ := h.Get("aging")
	if d.Status != StatusSuspect {
		t.Fatalf("drifted device status = %v (fnr %.3f, reasons %v), want suspect", d.Status, d.FNREstimate, d.Reasons)
	}
	if d.FNREstimate <= 0.25 {
		t.Fatalf("fnr estimate %.3f did not cross the 0.25 SLO", d.FNREstimate)
	}
}

func TestHealthQuarantineDegrades(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	for i := 0; i < 6; i++ {
		h.Observe("jailed", acceptedAt(0.020))
	}
	h.ObserveQuarantine("jailed", true)
	if got := h.Status("jailed"); got != StatusDegraded {
		t.Fatalf("quarantined status = %v, want degraded", got)
	}
	h.ObserveQuarantine("jailed", false)
	if got := h.Status("jailed"); got != StatusOK {
		t.Fatalf("post-quarantine status = %v, want ok", got)
	}
	d, _ := h.Get("jailed")
	if d.QuarantineCount != 1 {
		t.Fatalf("quarantine count = %d, want 1", d.QuarantineCount)
	}
}

func TestHealthSeedBurnLedger(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	for remaining := 9; remaining >= 5; remaining-- {
		h.ObserveSeedClaim("budgeted", remaining)
	}
	d, _ := h.Get("budgeted")
	if d.SeedsClaimed != 5 || d.SeedsRemaining != 5 {
		t.Fatalf("burn ledger: claimed %d remaining %d, want 5/5", d.SeedsClaimed, d.SeedsRemaining)
	}
	if dh, _ := h.Get("budgeted"); dh.Status != StatusOK {
		t.Fatalf("seed claims alone must not change status, got %v", dh.Status)
	}
}

func TestHealthTransitionHookFires(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	var fired []Transition
	h.OnTransition(func(device string, tr Transition) {
		if device != "hooked" {
			t.Errorf("hook device = %q", device)
		}
		fired = append(fired, tr)
	})
	for i := 0; i < 6; i++ {
		h.Observe("hooked", acceptedAt(0.500))
	}
	if len(fired) != 1 || fired[0].To != StatusSuspect {
		t.Fatalf("hook fired %d times (%+v), want once to suspect", len(fired), fired)
	}
}

func TestHealthSummaryAndJSON(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	for i := 0; i < 6; i++ {
		h.Observe("a-ok", acceptedAt(0.020))
		h.Observe("b-slow", acceptedAt(0.500))
		h.Observe("c-dead", SessionObservation{Outcome: OutcomeTransport})
	}
	sum := h.Summary()
	if sum.Devices != 3 || sum.OK != 1 || sum.Suspect != 1 || sum.Degraded != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Status() != StatusSuspect {
		t.Fatalf("worst status = %v, want suspect", sum.Status())
	}
	var sb strings.Builder
	if err := h.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var devices []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &devices); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(devices) != 3 || devices[0]["device"] != "a-ok" || devices[1]["status"] != "suspect" {
		t.Fatalf("devices JSON = %v", devices)
	}
}

// healthBudgetSLO is healthSLO plus the PR 6 seed-budget watermark.
func healthBudgetSLO(watermark int) SLO {
	slo := healthSLO()
	slo.MinSeedBudget = watermark
	return slo
}

func TestHealthSeedBudgetLowDegrades(t *testing.T) {
	h := NewHealthRegistry(healthBudgetSLO(3))
	for i := 0; i < 6; i++ {
		h.Observe("budgeted", acceptedAt(0.020))
	}
	h.ObserveSeedClaim("budgeted", 10)
	if got := h.Status("budgeted"); got != StatusOK {
		t.Fatalf("healthy budget status = %v, want ok", got)
	}
	for remaining := 9; remaining >= 3; remaining-- {
		h.ObserveSeedClaim("budgeted", remaining)
	}
	d, _ := h.Get("budgeted")
	if d.Status != StatusDegraded {
		t.Fatalf("at the watermark: status = %v (reasons %v), want degraded", d.Status, d.Reasons)
	}
	found := false
	for _, r := range d.Reasons {
		if strings.Contains(r, "seed budget low") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons = %v, want a seed-budget-low violation", d.Reasons)
	}
	// A fresh epoch's enrollment lifts the budget and clears the flag.
	h.ObserveSeedClaim("budgeted", 12)
	if got := h.Status("budgeted"); got != StatusOK {
		t.Fatalf("re-enrolled status = %v, want ok", got)
	}
}

func TestHealthBudgetExhaustedAwaitingReenroll(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	for i := 0; i < 6; i++ {
		h.Observe("dry", acceptedAt(0.020))
	}
	h.ObserveBudgetExhausted("dry")
	d, _ := h.Get("dry")
	if d.Status != StatusAwaitingReenroll {
		t.Fatalf("exhausted status = %v (reasons %v), want awaiting-reenroll", d.Status, d.Reasons)
	}
	if !d.BudgetExhausted || d.SeedsRemaining != 0 {
		t.Fatalf("snapshot: %+v", d)
	}
	sum := h.Summary()
	if sum.AwaitingReenroll != 1 || sum.Status() != StatusAwaitingReenroll {
		t.Fatalf("summary = %+v", sum)
	}
	// The first claim against the fresh epoch recovers the device.
	h.ObserveSeedClaim("dry", 8)
	if got := h.Status("dry"); got != StatusOK {
		t.Fatalf("recovered status = %v, want ok", got)
	}
}

// TestHealthAwaitingReenrollAntiFlap: the MinSessions gate applies to the
// lifecycle states exactly as it does to SLO judgements — a device that
// exhausts during its first few observations is not flagged yet.
func TestHealthAwaitingReenrollAntiFlap(t *testing.T) {
	h := NewHealthRegistry(healthSLO()) // MinSessions = 4
	h.Observe("young", acceptedAt(0.020))
	h.ObserveBudgetExhausted("young")
	if got := h.Status("young"); got != StatusOK {
		t.Fatalf("pre-MinSessions exhaustion judged: %v", got)
	}
	for i := 0; i < 4; i++ {
		h.Observe("young", acceptedAt(0.020))
	}
	if got := h.Status("young"); got != StatusAwaitingReenroll {
		t.Fatalf("post-MinSessions status = %v, want awaiting-reenroll", got)
	}
}

// TestHealthSuspectOutranksAwaitingReenroll: an integrity signal must not
// be masked by the (benign) lifecycle state.
func TestHealthSuspectOutranksAwaitingReenroll(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	for i := 0; i < 8; i++ {
		h.Observe("evil", acceptedAt(0.500)) // far over the RTT SLO
	}
	h.ObserveBudgetExhausted("evil")
	if got := h.Status("evil"); got != StatusSuspect {
		t.Fatalf("status = %v, want suspect to dominate awaiting-reenroll", got)
	}
}

func TestHealthBudgetLowGaugeTracksDevices(t *testing.T) {
	h := NewHealthRegistry(healthBudgetSLO(2))
	g := NewRegistry().Gauge("test_budget_low", "")
	h.SetBudgetLowGauge(g)
	h.ObserveSeedClaim("a", 10)
	h.ObserveSeedClaim("b", 10)
	if g.Value() != 0 {
		t.Fatalf("gauge = %v with healthy budgets", g.Value())
	}
	h.ObserveSeedClaim("a", 2) // at the watermark
	h.ObserveBudgetExhausted("b")
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2 (one low, one exhausted)", g.Value())
	}
	// Repeat observations must not double-count.
	h.ObserveSeedClaim("a", 1)
	h.ObserveBudgetExhausted("b")
	if g.Value() != 2 {
		t.Fatalf("gauge = %v after repeats, want 2", g.Value())
	}
	h.ObserveSeedClaim("a", 9) // re-enrolled
	h.ObserveSeedClaim("b", 9)
	if g.Value() != 0 {
		t.Fatalf("gauge = %v after recovery, want 0", g.Value())
	}
}

// TestHealthSnapshotConsistencyUnderTransitions hammers the registry with
// writers driving devices through status transitions while readers take
// snapshots. Every snapshot must be internally consistent — lifetime
// counters that add up, transitions in sequence order, and a summary whose
// per-status counts cover every device — no matter when it was cut.
func TestHealthSnapshotConsistencyUnderTransitions(t *testing.T) {
	h := NewHealthRegistry(healthSLO())
	const devices = 4
	const perWriter = 200

	done := make(chan struct{})
	var writers sync.WaitGroup
	for d := 0; d < devices; d++ {
		writers.Add(1)
		go func(d int) {
			defer writers.Done()
			name := fmt.Sprintf("dev-%d", d)
			for i := 0; i < perWriter; i++ {
				// Alternate clean and dirty stretches so statuses keep
				// flipping between ok, degraded, and suspect.
				obs := SessionObservation{Outcome: OutcomeAccepted, RTT: 0.010}
				switch {
				case i/20%2 == 1 && i%2 == 0:
					obs = SessionObservation{Outcome: OutcomeRejected, RTT: 0.010, RejectClass: "tag_mismatch"}
				case i%7 == 3:
					obs = SessionObservation{Outcome: OutcomeTransport, Retries: 1}
				}
				h.Observe(name, obs)
			}
		}(d)
	}

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, d := range h.Snapshot() {
					if d.Sessions != d.Accepted+d.Rejected {
						t.Errorf("%s: sessions %d != accepted %d + rejected %d",
							d.Device, d.Sessions, d.Accepted, d.Rejected)
					}
					if d.WindowRecords < 0 || d.FailureRate < 0 || d.FailureRate > 1 {
						t.Errorf("%s: window rates out of range: %+v", d.Device, d)
					}
					if d.Status != StatusOK && d.Sessions+d.Transport > 0 && len(d.Reasons) == 0 {
						t.Errorf("%s: status %s with no reasons", d.Device, d.Status)
					}
					for i := 1; i < len(d.Transitions); i++ {
						if d.Transitions[i].Seq <= d.Transitions[i-1].Seq {
							t.Errorf("%s: transitions out of order: %+v", d.Device, d.Transitions)
						}
					}
				}
				sum := h.Summary()
				if sum.OK+sum.Degraded+sum.AwaitingReenroll+sum.Suspect != sum.Devices {
					t.Errorf("summary does not partition devices: %+v", sum)
				}
			}
		}()
	}

	writers.Wait()
	close(done)
	readers.Wait()

	// After the dust settles, every device holds its full lifetime tally.
	for _, d := range h.Snapshot() {
		if got := d.Sessions + d.Transport; got != perWriter {
			t.Errorf("%s: lifetime sessions+transport = %d, want %d", d.Device, got, perWriter)
		}
	}
}
