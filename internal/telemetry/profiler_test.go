package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestProfiler returns a profiler writing into a temp dir with the CPU
// leg shrunk to a sliver: the snapshot legs are what the ring semantics
// tests exercise, and a 250 ms sleep per capture would dominate the suite.
func newTestProfiler(t *testing.T) (*Profiler, string) {
	t.Helper()
	p := NewProfiler()
	dir := t.TempDir()
	p.SetDir(dir)
	p.SetCPUDuration(time.Millisecond)
	p.SetClock(func() time.Time { return time.Unix(90000, 0) })
	return p, dir
}

func TestProfilerDisabledWithoutDir(t *testing.T) {
	p := NewProfiler()
	if p.Enabled() {
		t.Fatal("profiler enabled with no directory")
	}
	if _, ok, err := p.Capture("manual", CaptureMeta{}); ok || err != nil {
		t.Fatalf("disabled capture: ok=%v err=%v, want ok=false err=nil", ok, err)
	}
	if n := len(p.Snapshot()); n != 0 {
		t.Fatalf("disabled profiler retained %d captures", n)
	}
}

func TestProfilerCaptureWritesRingAndIndex(t *testing.T) {
	p, dir := newTestProfiler(t)
	entry, ok, err := p.Capture("rtt-p95-burn", CaptureMeta{Alert: "rtt-p95-burn", Trace: TraceID(0xabc)})
	if err != nil || !ok {
		t.Fatalf("capture: ok=%v err=%v", ok, err)
	}
	if entry.Trigger != "rtt-p95-burn" || entry.Alert != "rtt-p95-burn" {
		t.Fatalf("capture metadata: %+v", entry)
	}
	if entry.Trace != TraceID(0xabc).String() {
		t.Fatalf("capture trace = %q, want %s", entry.Trace, TraceID(0xabc))
	}
	// All four legs must be on disk, named by sequence and trigger, and
	// non-empty (WriteTo at debug=0 emits gzipped protobuf).
	if len(entry.Files) != 4 {
		t.Fatalf("capture wrote %d files (%v), skipped %v", len(entry.Files), entry.Files, entry.Skipped)
	}
	for _, f := range entry.Files {
		if !strings.Contains(f, "rtt-p95-burn") || !strings.HasSuffix(f, ".pb.gz") {
			t.Errorf("capture filename %q: want trigger-tagged .pb.gz", f)
		}
		fi, serr := os.Stat(filepath.Join(dir, f))
		if serr != nil || fi.Size() == 0 {
			t.Errorf("capture file %s: stat err=%v empty=%v", f, serr, serr == nil && fi.Size() == 0)
		}
	}
	if entry.UnixNano != time.Unix(90000, 0).UnixNano() {
		t.Fatalf("capture timestamp = %d, want injected clock", entry.UnixNano)
	}

	// The sidecar index serves the same entry, newest first, as JSON.
	var sb strings.Builder
	if err := p.WriteJSON(&sb, 0); err != nil {
		t.Fatal(err)
	}
	var decoded []ProfileCapture
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("index not JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 || decoded[0].Seq != entry.Seq || decoded[0].Alert != "rtt-p95-burn" {
		t.Fatalf("index = %+v, want the capture entry", decoded)
	}
}

func TestProfilerRingEvictsOldestFiles(t *testing.T) {
	p, dir := newTestProfiler(t)
	p.SetCapacity(2)
	p.SetCPUDuration(-1) // snapshot legs only: 3 files per capture
	var first ProfileCapture
	for i := 0; i < 4; i++ {
		e, ok, err := p.Capture(fmt.Sprintf("t%d", i), CaptureMeta{})
		if err != nil || !ok {
			t.Fatalf("capture %d: ok=%v err=%v", i, ok, err)
		}
		if i == 0 {
			first = e
		}
	}
	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ring holds %d captures, want 2", len(snap))
	}
	if snap[0].Trigger != "t2" || snap[1].Trigger != "t3" {
		t.Fatalf("ring kept %s,%s — want the two newest", snap[0].Trigger, snap[1].Trigger)
	}
	// Evicted captures take their files with them; survivors keep theirs.
	for _, f := range first.Files {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Errorf("evicted file %s still on disk (err=%v)", f, err)
		}
	}
	for _, f := range snap[1].Files {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("retained file %s: %v", f, err)
		}
	}
	// Shrinking capacity evicts immediately.
	p.SetCapacity(1)
	if snap = p.Snapshot(); len(snap) != 1 || snap[0].Trigger != "t3" {
		t.Fatalf("after SetCapacity(1): %+v", snap)
	}
}

// TestProfilerSingleFlight hammers Capture from many goroutines: with the
// CPU leg sleeping, at most one capture can be in flight, every other
// trigger must be counted suppressed — and the sum must balance. Run under
// -race this is also the concurrency soak for the index and counters.
func TestProfilerSingleFlight(t *testing.T) {
	p, _ := newTestProfiler(t)
	reg := NewRegistry()
	captures := reg.CounterVec("test_profile_captures_total", "captures", "trigger")
	suppressed := reg.Counter("test_profile_suppressed_total", "suppressed")
	p.SetCaptureCounters(captures, suppressed)
	p.SetCPUDuration(5 * time.Millisecond) // hold the flight long enough to collide

	const workers = 8
	const rounds = 4
	var wg sync.WaitGroup
	var okCount, dropCount sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				_, ok, err := p.Capture("hammer", CaptureMeta{})
				if err != nil {
					t.Errorf("capture: %v", err)
					return
				}
				if ok {
					okCount.Store(fmt.Sprintf("%d/%d", w, r), true)
				} else {
					dropCount.Store(fmt.Sprintf("%d/%d", w, r), true)
				}
			}
		}(w)
	}
	wg.Wait()

	oks, drops := 0, 0
	okCount.Range(func(_, _ any) bool { oks++; return true })
	dropCount.Range(func(_, _ any) bool { drops++; return true })
	if oks == 0 {
		t.Fatal("no capture ever won the single-flight race")
	}
	if oks+drops != workers*rounds {
		t.Fatalf("outcomes %d+%d != %d attempts", oks, drops, workers*rounds)
	}
	if got := captures.With("hammer").Value(); got != uint64(oks) {
		t.Fatalf("captures counter = %d, want %d", got, oks)
	}
	if got := suppressed.Value(); got != uint64(drops) {
		t.Fatalf("suppressed counter = %d, want %d", got, drops)
	}
	if got := len(p.Snapshot()); got > DefaultProfileCapacity {
		t.Fatalf("ring grew past capacity: %d", got)
	}
}

func TestSanitizeTrigger(t *testing.T) {
	for in, want := range map[string]string{
		"":                "manual",
		"rtt-p95-burn":    "rtt-p95-burn",
		"weird name/../x": "weird_name_.._x", // slashes die; dots are filename-safe mid-name
	} {
		if got := sanitizeTrigger(in); got != want {
			t.Errorf("sanitizeTrigger(%q) = %q, want %q", in, got, want)
		}
	}
}
