package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements lightweight in-process tracing: spans with
// parent/child structure and string attributes, collected by a Tracer into
// a ring buffer of recent root spans. There is no wire protocol and no
// sampling machinery — the point is that an operator (or a test) can ask
// "what did the last N attestation sessions actually spend their time on"
// and get the challenge→PUF-eval→checksum→verdict breakdown without
// attaching a debugger.
//
// The tracer's clock is injectable, so span timing is testable without
// sleeping: a fake clock that advances a fixed step per call yields fully
// deterministic durations.

// Span is one timed operation, possibly with children. All methods are safe
// for concurrent use, though a span is typically owned by one goroutine.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	finished bool
	attrs    map[string]string
	children []*Span
}

// Name returns the span's operation name.
func (s *Span) Name() string { return s.name }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// Attr returns the attribute value for key ("" when absent).
func (s *Span) Attr(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Child opens a child span with the same tracer clock.
func (s *Span) Child(name string) *Span {
	c := &Span{tracer: s.tracer, parent: s, name: name, start: s.tracer.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Children returns the child spans opened so far.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Finish stamps the span's end time. Finishing a root span records it in
// the tracer's ring buffer; finishing twice is a no-op.
func (s *Span) Finish() {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.end = s.tracer.now()
	s.mu.Unlock()
	if s.parent == nil {
		s.tracer.record(s)
	}
}

// Duration returns end−start for a finished span; for a live span it
// returns the elapsed time so far on the tracer clock.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return s.end.Sub(s.start)
	}
	return s.tracer.now().Sub(s.start)
}

// Tracer mints spans against an injectable clock and retains the most
// recent finished root spans in a ring buffer.
type Tracer struct {
	mu     sync.Mutex
	clock  func() time.Time
	ring   []*Span
	next   int
	filled bool
}

// DefaultTraceCapacity is the ring size of NewTracer(0) and the package
// default tracer.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the last capacity root spans
// (capacity <= 0 means DefaultTraceCapacity) on the real-time clock.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{clock: time.Now, ring: make([]*Span, capacity)}
}

var defaultTracer = NewTracer(0)

// DefaultTracer returns the process-wide tracer the attestation pipeline
// records into and the admin endpoint serves.
func DefaultTracer() *Tracer { return defaultTracer }

// SetClock injects the tracer's clock (nil restores time.Now). Tests use a
// stepping fake so span durations are deterministic without sleeping.
func (t *Tracer) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	t.clock = now
}

// Now reads the tracer clock: time.Now unless a test clock was injected.
// Instrumented code times whole operations against this so elapsed-time
// stats stay deterministic under a fake clock.
func (t *Tracer) Now() time.Time { return t.now() }

func (t *Tracer) now() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock()
}

// StartSpan opens a root span.
func (t *Tracer) StartSpan(name string) *Span {
	return &Span{tracer: t, name: name, start: t.now()}
}

// record stores a finished root span in the ring.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// Recent returns the retained root spans, oldest first.
func (t *Tracer) Recent() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	if t.filled {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	res := make([]*Span, 0, len(out))
	for _, s := range out {
		if s != nil {
			res = append(res, s)
		}
	}
	return res
}

// WriteJSON renders the retained traces as a JSON array of span trees:
// {"name", "start_unix_ns", "duration_seconds", "attrs", "children"}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("[")
	for i, s := range t.Recent() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		writeSpanJSON(&b, s)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSpanJSON(b *strings.Builder, s *Span) {
	fmt.Fprintf(b, `{"name": %s, "start_unix_ns": %d, "duration_seconds": %s`,
		strconv.Quote(s.name), s.start.UnixNano(), jsonNumber(s.Duration().Seconds()))
	s.mu.Lock()
	attrs := make([]string, 0, len(s.attrs))
	for k := range s.attrs {
		attrs = append(attrs, k)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(attrs) > 0 {
		sort.Strings(attrs)
		b.WriteString(`, "attrs": {`)
		for i, k := range attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s: %s", strconv.Quote(k), strconv.Quote(s.Attr(k)))
		}
		b.WriteString("}")
	}
	if len(children) > 0 {
		b.WriteString(`, "children": [`)
		for i, c := range children {
			if i > 0 {
				b.WriteString(", ")
			}
			writeSpanJSON(b, c)
		}
		b.WriteString("]")
	}
	b.WriteString("}")
}
