package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements lightweight in-process tracing: spans with
// parent/child structure and string attributes, collected by a Tracer into
// a ring buffer of recent root spans. There is no wire protocol and no
// sampling machinery — the point is that an operator (or a test) can ask
// "what did the last N attestation sessions actually spend their time on"
// and get the challenge→PUF-eval→checksum→verdict breakdown without
// attaching a debugger.
//
// The tracer's clock is injectable, so span timing is testable without
// sleeping: a fake clock that advances a fixed step per call yields fully
// deterministic durations.

// Span is one timed operation, possibly with children. All methods are safe
// for concurrent use, though a span is typically owned by one goroutine.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time

	trace    TraceID
	id       SpanID
	parentID SpanID // the in-process parent's ID, or the remote parent's

	mu       sync.Mutex
	end      time.Time
	finished bool
	attrs    map[string]string
	children []*Span
}

// Name returns the span's operation name.
func (s *Span) Name() string { return s.name }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// TraceID returns the trace this span belongs to.
func (s *Span) TraceID() TraceID { return s.trace }

// SpanID returns the span's own ID.
func (s *Span) SpanID() SpanID { return s.id }

// ParentSpanID returns the parent span's ID (in-process or remote); zero
// for a true root.
func (s *Span) ParentSpanID() SpanID { return s.parentID }

// Context returns the span's propagatable trace context — what a wire
// frame carries so a remote peer parents its spans into this trace.
func (s *Span) Context() TraceContext { return TraceContext{Trace: s.trace, Span: s.id} }

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// Attr returns the attribute value for key ("" when absent).
func (s *Span) Attr(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Child opens a child span with the same tracer clock, inheriting the
// trace ID.
func (s *Span) Child(name string) *Span {
	c := &Span{
		tracer: s.tracer, parent: s, name: name, start: s.tracer.now(),
		trace: s.trace, id: SpanID(s.tracer.mintID()), parentID: s.id,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Segment records an already-measured child span covering [start,
// start+d]. The cross-process session tree uses this for durations that
// are computed rather than clocked in this process — the modelled link
// transfers and the prover's simulated compute time — so the verifier's
// trace shows link/compute/verify segments without pretending its local
// clock observed them.
func (s *Span) Segment(name string, start time.Time, d time.Duration) *Span {
	c := &Span{
		tracer: s.tracer, parent: s, name: name, start: start,
		trace: s.trace, id: SpanID(s.tracer.mintID()), parentID: s.id,
		end: start.Add(d), finished: true,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Children returns the child spans opened so far.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Finish stamps the span's end time. Finishing a root span records it in
// the tracer's ring buffer; finishing twice is a no-op.
func (s *Span) Finish() {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.end = s.tracer.now()
	s.mu.Unlock()
	if s.parent == nil {
		s.tracer.record(s)
	}
}

// Duration returns end−start for a finished span; for a live span it
// returns the elapsed time so far on the tracer clock.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return s.end.Sub(s.start)
	}
	return s.tracer.now().Sub(s.start)
}

// Tracer mints spans against an injectable clock and retains the most
// recent finished root spans in a ring buffer.
type Tracer struct {
	mu      sync.Mutex
	clock   func() time.Time
	ring    []*Span
	next    int
	filled  bool
	idState uint64 // SplitMix64 state for trace/span ID minting

	dropped     atomic.Uint64 // root spans evicted by ring overwrite
	dropCounter atomic.Pointer[Counter]
}

// DefaultTraceCapacity is the ring size of NewTracer(0) and the package
// default tracer.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the last capacity root spans
// (capacity <= 0 means DefaultTraceCapacity) on the real-time clock, with
// its ID stream seeded from crypto/rand (override with SetIDSeed for
// deterministic IDs).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{clock: time.Now, ring: make([]*Span, capacity), idState: randomIDSeed()}
}

var defaultTracer = NewTracer(0)

// DefaultTracer returns the process-wide tracer the attestation pipeline
// records into and the admin endpoint serves.
func DefaultTracer() *Tracer { return defaultTracer }

// SetClock injects the tracer's clock (nil restores time.Now). Tests use a
// stepping fake so span durations are deterministic without sleeping.
func (t *Tracer) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	t.clock = now
}

// Now reads the tracer clock: time.Now unless a test clock was injected.
// Instrumented code times whole operations against this so elapsed-time
// stats stay deterministic under a fake clock.
func (t *Tracer) Now() time.Time { return t.now() }

func (t *Tracer) now() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock()
}

// StartSpan opens a root span in a freshly minted trace.
func (t *Tracer) StartSpan(name string) *Span {
	return &Span{
		tracer: t, name: name, start: t.now(),
		trace: TraceID(t.mintID()), id: SpanID(t.mintID()),
	}
}

// StartSpanInTrace opens a root span adopted into an existing trace — the
// receiving half of cross-process propagation: a prover that decodes a
// TraceContext from the challenge frame opens its serving span here, and
// both processes' trace rings then carry the same trace ID for the
// session. The span is a ring-recorded root in THIS process (its remote
// parent lives elsewhere); an invalid context degrades to StartSpan.
func (t *Tracer) StartSpanInTrace(name string, tc TraceContext) *Span {
	if !tc.Valid() {
		return t.StartSpan(name)
	}
	return &Span{
		tracer: t, name: name, start: t.now(),
		trace: tc.Trace, id: SpanID(t.mintID()), parentID: tc.Span,
	}
}

// SetDropCounter mirrors ring evictions into a registry counter (nil
// detaches). The tracer cannot self-register — it may serve many
// registries — so the owning telemetry bundle attaches the instrument.
func (t *Tracer) SetDropCounter(c *Counter) { t.dropCounter.Store(c) }

// Dropped reports how many finished root spans the ring has evicted to
// make room — the tracer's silent-truncation tally.
func (t *Tracer) Dropped() uint64 { return t.dropped.Load() }

// record stores a finished root span in the ring, counting the span it
// evicts (a full ring overwrites oldest-first; without the counter that
// truncation would be invisible).
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	evicted := t.ring[t.next] != nil
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
	if evicted {
		t.dropped.Add(1)
		if c := t.dropCounter.Load(); c != nil {
			c.Inc()
		}
	}
}

// Recent returns the retained root spans, oldest first.
func (t *Tracer) Recent() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	if t.filled {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	res := make([]*Span, 0, len(out))
	for _, s := range out {
		if s != nil {
			res = append(res, s)
		}
	}
	return res
}

// ByTrace returns the retained root spans belonging to the given trace,
// oldest first — the stitching query: on either end of the wire it yields
// that end's view of one cross-process session.
func (t *Tracer) ByTrace(id TraceID) []*Span {
	var out []*Span
	for _, s := range t.Recent() {
		if s.trace == id {
			out = append(out, s)
		}
	}
	return out
}

// WriteJSON renders the retained traces as a JSON array of span trees:
// {"name", "trace_id", "span_id", "parent_span_id", "start_unix_ns",
// "duration_seconds", "attrs", "children"}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("[")
	for i, s := range t.Recent() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		writeSpanJSON(&b, s)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSpanJSON(b *strings.Builder, s *Span) {
	fmt.Fprintf(b, `{"name": %s, "trace_id": %q, "span_id": %q`,
		strconv.Quote(s.name), s.trace.String(), s.id.String())
	if s.parentID != 0 {
		fmt.Fprintf(b, `, "parent_span_id": %q`, s.parentID.String())
	}
	fmt.Fprintf(b, `, "start_unix_ns": %d, "duration_seconds": %s`,
		s.start.UnixNano(), jsonNumber(s.Duration().Seconds()))
	s.mu.Lock()
	attrs := make([]string, 0, len(s.attrs))
	for k := range s.attrs {
		attrs = append(attrs, k)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(attrs) > 0 {
		sort.Strings(attrs)
		b.WriteString(`, "attrs": {`)
		for i, k := range attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s: %s", strconv.Quote(k), strconv.Quote(s.Attr(k)))
		}
		b.WriteString("}")
	}
	if len(children) > 0 {
		b.WriteString(`, "children": [`)
		for i, c := range children {
			if i > 0 {
				b.WriteString(", ")
			}
			writeSpanJSON(b, c)
		}
		b.WriteString("]")
	}
	b.WriteString("}")
}
