package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Time-series history: the observability layer's memory. Metrics answer
// "what is the p99 now"; the store answers "when did the p99 start
// climbing" — the question an operator actually asks when a fleet-wide RTT
// shift (the paper's overclocking/proxy signature) or a re-enrollment
// cutover ripples through. Each Collect() walks the owning Registry once
// and appends one windowed sample per live series into a fixed-capacity
// ring:
//
//   - counters record the DELTA since the previous collection (a rate,
//     once divided by the window), not the lifetime total;
//   - gauges record their instantaneous value;
//   - histograms record a windowed summary — observation count, sum, and
//     p50/p95/p99 computed over the bucket increments of the window alone,
//     so a quiet hour cannot dilute a hot minute — plus the exemplar
//     (trace ID) of the bucket owning the windowed p99.
//
// Retention is capacity × collection-interval (the default 720 × 5 s = one
// hour); memory is bounded at capacity × ~64 B per live series and nothing
// is allocated per-Collect beyond first-sight ring creation. The store
// never reads the wall clock except through its injectable clock, so tests
// drive hours of history in microseconds.

// DefaultTimeSeriesCapacity is the per-series ring length of NewTimeSeries
// with a non-positive capacity.
const DefaultTimeSeriesCapacity = 720

// DefaultTimeSeriesWindow is the nominal collection interval advertised to
// consumers when the owner does not choose one.
const DefaultTimeSeriesWindow = 5 * time.Second

// Point is one windowed sample of one series.
type Point struct {
	// TimeUnixNs stamps the collection instant.
	TimeUnixNs int64
	// Value is the counter delta or gauge value (scalar kinds only).
	Value float64
	// Histogram window summary (histogram kind only).
	Count         uint64
	Sum           float64
	P50, P95, P99 float64
	// Exemplar is the trace ID retained by the bucket owning the windowed
	// p99 (0 = none): the direct link from a latency spike in history to a
	// recorded trace at /debug/traces.
	Exemplar uint64
}

// seriesRing is the bounded history of one labeled series.
type seriesRing struct {
	key    string // name{labels}, the JSON exposition key
	family string // bare family name, for prefix queries
	kind   kind

	points []Point
	next   int
	filled bool

	// Scalar state for counter deltas.
	lastCounter uint64
	// Histogram state: the previous collection's cumulative bucket counts
	// and running sum/total, for window deltas.
	lastBuckets []uint64
	lastSum     float64
	lastCount   uint64
}

// push appends one point, overwriting the oldest at capacity.
func (s *seriesRing) push(p Point) {
	s.points[s.next] = p
	s.next++
	if s.next == len(s.points) {
		s.next = 0
		s.filled = true
	}
}

// snapshot returns the retained points, oldest first, filtered to
// [startNs, endNs] (0 bounds disable) and downsampled to stepNs (keeping
// the first point of each step bucket; 0 keeps all).
func (s *seriesRing) snapshot(startNs, endNs, stepNs int64) []Point {
	var out []Point
	lastStep := int64(math.MinInt64)
	emit := func(pts []Point) {
		for _, p := range pts {
			if startNs != 0 && p.TimeUnixNs < startNs {
				continue
			}
			if endNs != 0 && p.TimeUnixNs > endNs {
				continue
			}
			if stepNs > 0 {
				bucket := p.TimeUnixNs / stepNs
				if bucket == lastStep {
					continue
				}
				lastStep = bucket
			}
			out = append(out, p)
		}
	}
	if s.filled {
		emit(s.points[s.next:])
	}
	emit(s.points[:s.next])
	return out
}

// TimeSeries collects windowed samples of every series in a Registry into
// bounded per-series rings. Safe for concurrent use; Collect and the query
// paths share one mutex (collection is control-plane work, never on the
// attestation hot path).
type TimeSeries struct {
	mu       sync.Mutex
	reg      *Registry
	clock    func() time.Time
	capacity int
	window   time.Duration

	byKey    map[string]*seriesRing
	bySeries map[*series]*seriesRing
	order    []*seriesRing

	collections uint64
	// Reused per-Collect buffers: after every live series has been seen
	// once, a collection pass allocates nothing.
	scratch    []uint64 // histogram delta buffer
	famScratch []*family
	serScratch []*series
}

// NewTimeSeries builds a store over reg retaining capacity points per
// series (<=0 means DefaultTimeSeriesCapacity). window is the nominal
// collection interval advertised to consumers (<=0 means
// DefaultTimeSeriesWindow); the actual cadence is whoever calls Collect.
func NewTimeSeries(reg *Registry, capacity int, window time.Duration) *TimeSeries {
	if capacity <= 0 {
		capacity = DefaultTimeSeriesCapacity
	}
	if window <= 0 {
		window = DefaultTimeSeriesWindow
	}
	return &TimeSeries{
		reg: reg, clock: time.Now,
		capacity: capacity, window: window,
		byKey:    make(map[string]*seriesRing),
		bySeries: make(map[*series]*seriesRing),
	}
}

// SetClock injects the store's clock (nil restores time.Now).
func (ts *TimeSeries) SetClock(now func() time.Time) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	ts.clock = now
}

// Window returns the nominal collection interval.
func (ts *TimeSeries) Window() time.Duration {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.window
}

// SetWindow updates the nominal collection interval advertised to
// consumers (<=0 is ignored). Call it when the actual collection cadence
// differs from the constructor's default.
func (ts *TimeSeries) SetWindow(window time.Duration) {
	if window <= 0 {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.window = window
}

// Capacity returns the per-series ring length.
func (ts *TimeSeries) Capacity() int { return ts.capacity }

// Collections reports how many Collect passes have run.
func (ts *TimeSeries) Collections() uint64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.collections
}

// appendFamilies appends the registry's families (registration order, no
// sort — history order is first-collection order) into dst without
// allocating when dst has capacity.
func (r *Registry) appendFamilies(dst []*family) []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(dst, r.order...)
}

// appendSeries appends the family's series (creation order) into dst
// without allocating when dst has capacity.
func (f *family) appendSeries(dst []*series) []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append(dst, f.order...)
}

// ring returns (creating on first sight) the ring for a series. Rings are
// cached by series identity so the steady-state lookup builds no key
// string; the exposition key is rendered once, at creation.
func (ts *TimeSeries) ring(f *family, s *series) *seriesRing {
	if r, ok := ts.bySeries[s]; ok {
		return r
	}
	key := f.name + labelString(f.labels, s.values, "", "")
	r := &seriesRing{
		key: key, family: f.name, kind: f.kind,
		points: make([]Point, ts.capacity),
	}
	if f.kind == kindHistogram {
		r.lastBuckets = make([]uint64, len(s.hist.counts))
	}
	ts.bySeries[s] = r
	ts.byKey[key] = r
	ts.order = append(ts.order, r)
	return r
}

// Collect walks the registry and appends one windowed point per live
// series, stamped with the store clock. The first sight of a counter or
// histogram series establishes its baseline AND records the first window
// (deltas against zero), so a series born mid-history is visible from its
// first sample.
func (ts *TimeSeries) Collect() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	now := ts.clock().UnixNano()
	ts.collections++
	ts.famScratch = ts.reg.appendFamilies(ts.famScratch[:0])
	for _, f := range ts.famScratch {
		ts.serScratch = f.appendSeries(ts.serScratch[:0])
		for _, s := range ts.serScratch {
			r := ts.ring(f, s)
			switch f.kind {
			case kindCounter:
				v := s.counter.Value()
				r.push(Point{TimeUnixNs: now, Value: float64(v - r.lastCounter)})
				r.lastCounter = v
			case kindGauge:
				r.push(Point{TimeUnixNs: now, Value: s.gauge.Value()})
			case kindHistogram:
				r.push(ts.histogramPoint(now, s.hist, r))
			}
		}
	}
}

// histogramPoint computes one windowed histogram sample: bucket deltas
// against the ring's previous cumulative counts, quantiles over the deltas
// alone, and the p99-owning bucket's exemplar. Called with ts.mu held.
func (ts *TimeSeries) histogramPoint(now int64, h *Histogram, r *seriesRing) Point {
	n := len(h.counts)
	if cap(ts.scratch) < n {
		ts.scratch = make([]uint64, n)
	}
	delta := ts.scratch[:n]
	var count uint64
	for i := 0; i < n; i++ {
		cur := h.counts[i].Load()
		delta[i] = cur - r.lastBuckets[i]
		count += delta[i]
		r.lastBuckets[i] = cur
	}
	sum := h.Sum()
	total := h.Count()
	p := Point{
		TimeUnixNs: now,
		Count:      count,
		Sum:        sum - r.lastSum,
		P50:        bucketQuantile(h.bounds, delta, count, 0.50),
		P95:        bucketQuantile(h.bounds, delta, count, 0.95),
		P99:        bucketQuantile(h.bounds, delta, count, 0.99),
	}
	r.lastSum, r.lastCount = sum, total
	if count > 0 {
		if i, ok := deltaQuantileBucket(delta, count, 0.99); ok {
			p.Exemplar = h.exemplars[i].Load()
		}
	}
	return p
}

// bucketQuantile estimates the q-th quantile over delta bucket counts
// using the same interpolating estimator as Histogram.Quantile. NaN when
// the window is empty.
func bucketQuantile(bounds []float64, delta []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i := range delta {
		n := delta[i]
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			if i == len(bounds) { // +Inf bucket: clamp to last bound
				return bounds[len(bounds)-1]
			}
			hi := bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}

// deltaQuantileBucket returns the index of the delta bucket owning the
// q-th quantile of the window.
func deltaQuantileBucket(delta []uint64, total uint64, q float64) (int, bool) {
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	var cum uint64
	for i := range delta {
		n := delta[i]
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			return i, true
		}
		cum += n
	}
	return len(delta) - 1, true
}

// RangeQuery selects a slice of history. The zero value selects everything
// the store retains.
type RangeQuery struct {
	// Metric filters by exact series key (name{labels}) or bare family
	// name; empty selects every series.
	Metric string
	// Start and End bound the selected points (inclusive, unix nanos; 0
	// disables that bound).
	Start, End int64
	// Step downsamples: at most one point per step bucket (0 keeps all).
	Step time.Duration
}

// ParseRangeQuery reads a RangeQuery from URL query parameters:
// metric (string), start/end (unix seconds, fractional allowed), step
// (seconds or a Go duration).
func ParseRangeQuery(values url.Values) (RangeQuery, error) {
	var q RangeQuery
	q.Metric = values.Get("metric")
	parseTime := func(key string) (int64, error) {
		raw := values.Get(key)
		if raw == "" {
			return 0, nil
		}
		sec, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, fmt.Errorf("telemetry: bad %s %q: %w", key, raw, err)
		}
		return int64(sec * 1e9), nil
	}
	var err error
	if q.Start, err = parseTime("start"); err != nil {
		return q, err
	}
	if q.End, err = parseTime("end"); err != nil {
		return q, err
	}
	if raw := values.Get("step"); raw != "" {
		if sec, ferr := strconv.ParseFloat(raw, 64); ferr == nil {
			q.Step = time.Duration(sec * float64(time.Second))
		} else if d, derr := time.ParseDuration(raw); derr == nil {
			q.Step = d
		} else {
			return q, fmt.Errorf("telemetry: bad step %q", raw)
		}
	}
	return q, nil
}

// Series is one series' selected history.
type Series struct {
	Key    string
	Family string
	Kind   string
	Points []Point
}

// Query returns the selected history, series in first-collection order.
func (ts *TimeSeries) Query(q RangeQuery) []Series {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var out []Series
	for _, r := range ts.order {
		if q.Metric != "" && r.key != q.Metric && r.family != q.Metric {
			continue
		}
		pts := r.snapshot(q.Start, q.End, int64(q.Step))
		if pts == nil {
			continue
		}
		out = append(out, Series{Key: r.key, Family: r.family, Kind: r.kind.String(), Points: pts})
	}
	return out
}

// Latest returns the most recent point of the series with the given key.
func (ts *TimeSeries) Latest(key string) (Point, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r, ok := ts.byKey[key]
	if !ok {
		return Point{}, false
	}
	idx := r.next - 1
	if idx < 0 {
		if !r.filled {
			return Point{}, false
		}
		idx = len(r.points) - 1
	}
	return r.points[idx], true
}

// exemplarString renders a trace-ID exemplar in the tracer's hex format.
func exemplarString(x uint64) string { return TraceID(x).String() }

// WriteJSON renders the selected history as JSON:
//
//	{"window_seconds": W, "capacity": C, "collections": N, "series": [
//	  {"name": ..., "family": ..., "kind": ..., "points": [...]}]}
//
// Scalar points are {"t": unixNs, "v": value}; histogram points carry
// {"t", "count", "sum", "p50", "p95", "p99"} plus "exemplar" (a trace ID)
// when the windowed-p99 bucket retains one.
func (ts *TimeSeries) WriteJSON(w io.Writer, q RangeQuery) error {
	series := ts.Query(q)
	ts.mu.Lock()
	window, capacity, collections := ts.window, ts.capacity, ts.collections
	ts.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, `{"window_seconds": %s, "capacity": %d, "collections": %d, "series": [`,
		jsonNumber(window.Seconds()), capacity, collections)
	for i, s := range series {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, `{"name": %s, "family": %s, "kind": %q, "points": [`,
			strconv.Quote(s.Key), strconv.Quote(s.Family), s.Kind)
		for j, p := range s.Points {
			if j > 0 {
				b.WriteString(", ")
			}
			if s.Kind == "histogram" {
				fmt.Fprintf(&b, `{"t": %d, "count": %d, "sum": %s, "p50": %s, "p95": %s, "p99": %s`,
					p.TimeUnixNs, p.Count, jsonNumber(p.Sum), jsonNumber(p.P50), jsonNumber(p.P95), jsonNumber(p.P99))
				if p.Exemplar != 0 {
					fmt.Fprintf(&b, `, "exemplar": %q`, exemplarString(p.Exemplar))
				}
				b.WriteString("}")
			} else {
				fmt.Fprintf(&b, `{"t": %d, "v": %s}`, p.TimeUnixNs, jsonNumber(p.Value))
			}
		}
		b.WriteString("]}")
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// StartCollecting runs Collect every interval (<=0 means the store's
// nominal window) on a background goroutine until the returned stop
// function is called. One collector per store: calling it again while one
// runs returns a stop for the new collector and leaves the old one —
// owners are expected to hold the single stop handle.
func (ts *TimeSeries) StartCollecting(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = ts.window
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				ts.Collect()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
