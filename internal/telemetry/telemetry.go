// Package telemetry is the repository's zero-dependency observability
// layer: atomic counters, gauges, and fixed-bucket histograms collected in
// a Registry that renders both Prometheus text exposition format and
// expvar-style JSON, plus lightweight spans (trace.go) for the
// challenge→PUF-eval→checksum→verdict pipeline.
//
// PUFatt's security argument is a timing argument — the verifier accepts
// only if the PUF-bound checksum arrives within δ — so latency
// distributions are first-class security telemetry here, not just
// operational garnish: the overclocking and proxy-attack analyses of the
// paper's Section 4.2 are statements about exactly the histograms this
// package maintains.
//
// Everything is safe for concurrent use, allocation-free on the hot
// observation paths, and testable without sleeping: nothing in this
// package reads the wall clock except through an injectable clock
// (Tracer.SetClock, Histogram.StartTimer).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge value.
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds delta to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram of float64 observations. Bucket
// bounds are upper bounds in ascending order; an implicit +Inf bucket
// catches the tail. Observation is two atomic adds — no locking, no
// allocation — so it is safe on simulation hot paths.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	total   atomic.Uint64
	// exemplars[i] holds the most recent exemplar (a trace ID) observed
	// into bucket i; zero means none. One atomic store per observation —
	// the capture is O(1) and allocation-free, so a latency spike at any
	// quantile links directly to a recorded trace without sampling
	// machinery.
	exemplars []atomic.Uint64
}

// DefBuckets is the default latency bucket layout (seconds): microseconds
// through a minute, roughly logarithmic — wide enough for both simulated
// link RTTs and real TCP round trips.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// newHistogram builds a histogram with the given ascending bucket bounds
// (nil means DefBuckets).
func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
	h.total.Add(1)
}

// ObserveExemplar records one value and retains exemplar (a trace ID) as
// the owning bucket's most recent exemplar. A zero exemplar degrades to a
// plain Observe. The cost over Observe is a single atomic store.
func (h *Histogram) ObserveExemplar(v float64, exemplar uint64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	if exemplar != 0 {
		h.exemplars[i].Store(exemplar)
	}
	addFloat(&h.sumBits, v)
	h.total.Add(1)
}

// observeN records n observations of value v in one pair of atomic adds.
// This is the bulk-insert path the runtime collector uses to replay
// runtime/metrics bucket deltas: the runtime already aggregated the
// individual events, so re-observing them one at a time would only add
// cost without adding fidelity.
func (h *Histogram) observeN(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	addFloat(&h.sumBits, v*float64(n))
	h.total.Add(n)
}

// NumBuckets returns the bucket count including the +Inf tail.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// BucketExemplar returns the most recent exemplar observed into bucket i
// (0 when the bucket never saw one).
func (h *Histogram) BucketExemplar(i int) uint64 {
	if i < 0 || i >= len(h.exemplars) {
		return 0
	}
	return h.exemplars[i].Load()
}

// QuantileExemplar returns the most recent exemplar from the bucket that
// owns the q-th quantile — the trace to pull when that quantile spikes.
// Zero when the histogram is empty or the owning bucket has no exemplar.
func (h *Histogram) QuantileExemplar(q float64) uint64 {
	i, ok := h.quantileBucket(q)
	if !ok {
		return 0
	}
	return h.exemplars[i].Load()
}

// quantileBucket returns the index of the bucket owning the q-th quantile.
func (h *Histogram) quantileBucket(q float64) (int, bool) {
	total := h.total.Load()
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			return i, true
		}
		cum += n
	}
	return len(h.counts) - 1, true
}

// StartTimer returns a stop function that observes the elapsed time in
// seconds measured by the injected clock (nil means time.Now). Tests pass a
// fake clock so timing metrics never require sleeping.
func (h *Histogram) StartTimer(now func() time.Time) func() {
	if now == nil {
		now = time.Now
	}
	start := now()
	return func() { h.Observe(now().Sub(start).Seconds()) }
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the owning bucket, the standard Prometheus estimator. It returns
// NaN when the histogram is empty; tail estimates are clamped to the last
// finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket: clamp to last bound
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count         uint64
	Sum           float64
	P50, P95, P99 float64
}

// Summary digests the histogram's current state.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// --- registry ---

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance of a metric family.
type series struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is one named metric with zero or more labeled series.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []*series
}

// get returns (creating on first use) the series for the label values.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s: %d label values for %d labels",
			f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(f.bounds)
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// snapshot returns the series in creation order.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*series(nil), f.order...)
}

// Registry holds metric families and renders them. Registration is
// idempotent: asking for an existing name returns the existing instrument
// (and panics if the kind or label set differs — two subsystems disagreeing
// about a metric is a bug worth failing loudly on).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level
// instrumentation registers into and the admin endpoint serves.
func Default() *Registry { return defaultRegistry }

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the family for name, creating it on first use.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic("telemetry: invalid label name " + strconv.Quote(l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s(%v), was %s(%v)",
				name, k, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %s re-registered with labels %v, was %v",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		series: make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter returns the registry's counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).get(nil).counter
}

// Gauge returns the registry's gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).get(nil).gauge
}

// Histogram returns the registry's histogram with the given name and bucket
// upper bounds (nil bounds means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, bounds).get(nil).hist
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (created on first
// use).
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).counter }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name and
// bucket upper bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values (created on first
// use).
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// --- rendering ---

// snapshotFamilies returns the families sorted by name for deterministic
// output.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// escapeLabel escapes a label value per the Prometheus exposition format.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelString renders {k1="v1",k2="v2"} for the given names/values plus an
// optional extra pair (the histogram "le" label); empty when no labels.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, names[i], escapeLabel(values[i]))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, counter and
// gauge samples, and the _bucket/_sum/_count expansion for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.snapshot() {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n",
					f.name, labelString(f.labels, s.values, "", ""), s.counter.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n",
					f.name, labelString(f.labels, s.values, "", ""), formatFloat(s.gauge.Value()))
			case kindHistogram:
				err = writePromHistogram(w, f, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, f *family, s *series) error {
	h := s.hist
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, s.values, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelString(f.labels, s.values, "le", "+Inf"), cum); err != nil {
		return err
	}
	base := labelString(f.labels, s.values, "", "")
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, cum)
	return err
}

// jsonNumber renders a float for JSON output (NaN/Inf become null, which
// encoding/json cannot represent as numbers).
func jsonNumber(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders every registered metric as an expvar-style JSON object:
// scalar metrics map name (or name{labels}) to their value; histograms map
// to {count, sum, p50, p95, p99}.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{")
	first := true
	emit := func(key, val string) {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
		}
		first = false
		fmt.Fprintf(&b, "%s: %s", strconv.Quote(key), val)
	}
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.snapshot() {
			key := f.name + labelString(f.labels, s.values, "", "")
			switch f.kind {
			case kindCounter:
				emit(key, strconv.FormatUint(s.counter.Value(), 10))
			case kindGauge:
				emit(key, jsonNumber(s.gauge.Value()))
			case kindHistogram:
				sum := s.hist.Summary()
				emit(key, fmt.Sprintf(`{"count": %d, "sum": %s, "p50": %s, "p95": %s, "p99": %s}`,
					sum.Count, jsonNumber(sum.Sum), jsonNumber(sum.P50), jsonNumber(sum.P95), jsonNumber(sum.P99)))
			}
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
