package variation

import (
	"math"
	"testing"

	"pufatt/internal/netlist"
	"pufatt/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	master := rng.New(1)
	bad := []Config{
		{Levels: 0, DieSizeUm: 100, SigmaTotal: 0.01, SystematicFrac: 0.5},
		{Levels: 13, DieSizeUm: 100, SigmaTotal: 0.01, SystematicFrac: 0.5},
		{Levels: 4, DieSizeUm: 0, SigmaTotal: 0.01, SystematicFrac: 0.5},
		{Levels: 4, DieSizeUm: 100, SigmaTotal: -1, SystematicFrac: 0.5},
		{Levels: 4, DieSizeUm: 100, SigmaTotal: 0.01, SystematicFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewChip(cfg, master, 0); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewChip(DefaultConfig(0.0466), master, 0); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestChipDeterminism(t *testing.T) {
	cfg := DefaultConfig(0.05)
	a := MustNewChip(cfg, rng.New(99), 3)
	b := MustNewChip(cfg, rng.New(99), 3)
	for i := 0; i < 50; i++ {
		x := float64(i) * 37.0
		y := float64(i) * 13.0
		if a.SystematicAt(x, y) != b.SystematicAt(x, y) {
			t.Fatalf("chips from same seed/id differ at (%v,%v)", x, y)
		}
	}
}

func TestChipsAreDistinct(t *testing.T) {
	cfg := DefaultConfig(0.05)
	master := rng.New(99)
	a := MustNewChip(cfg, master, 0)
	b := MustNewChip(cfg, master, 1)
	same := 0
	for i := 0; i < 20; i++ {
		x, y := float64(i)*91.0, float64(i)*53.0
		if a.SystematicAt(x, y) == b.SystematicAt(x, y) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/20 identical field samples on different chips", same)
	}
}

func TestSystematicFieldIsPiecewiseConstantWithinFinestCell(t *testing.T) {
	cfg := Config{Levels: 3, DieSizeUm: 800, SigmaTotal: 0.05, SystematicFrac: 1}
	c := MustNewChip(cfg, rng.New(5), 0)
	// Finest cell is 100 µm; two points 10 µm apart in the same cell must
	// see the identical systematic value.
	a := c.SystematicAt(110, 110)
	b := c.SystematicAt(120, 115)
	if a != b {
		t.Errorf("same-cell values differ: %v vs %v", a, b)
	}
}

func TestFieldVarianceMatchesBudget(t *testing.T) {
	cfg := DefaultConfig(0.05)
	master := rng.New(7)
	var sum, sum2 float64
	n := 0
	for id := 0; id < 200; id++ {
		c := MustNewChip(cfg, master, id)
		pts := master.SubN("pts", id)
		for j := 0; j < 20; j++ {
			v := c.SystematicAt(pts.Float64()*cfg.DieSizeUm, pts.Float64()*cfg.DieSizeUm)
			sum += v
			sum2 += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	want := cfg.SigmaTotal * cfg.SigmaTotal * cfg.SystematicFrac
	if math.Abs(variance-want)/want > 0.15 {
		t.Errorf("systematic variance = %v, want ~%v", variance, want)
	}
	if math.Abs(mean) > 0.005 {
		t.Errorf("systematic mean = %v, want ~0", mean)
	}
}

func TestSpatialCorrelationDecaysWithDistance(t *testing.T) {
	cfg := DefaultConfig(0.05)
	master := rng.New(11)
	near := CorrelationAtDistance(cfg, master, 10, 120)
	far := CorrelationAtDistance(cfg, master, 1500, 120)
	if near < 0.5 {
		t.Errorf("correlation at 10 µm = %v, want strong (>0.5)", near)
	}
	if far > near-0.2 {
		t.Errorf("correlation did not decay: near=%v far=%v", near, far)
	}
}

func TestVthOffsets(t *testing.T) {
	cfg := DefaultConfig(0.0466)
	c := MustNewChip(cfg, rng.New(21), 0)
	nl := netlist.BuildRCANetlist(16)
	off := c.VthOffsets(nl, 100, 100)
	if len(off) != len(nl.Gates) {
		t.Fatalf("offsets length %d, want %d", len(off), len(nl.Gates))
	}
	var s, s2 float64
	n := 0
	for g := range nl.Gates {
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			if off[g] != 0 {
				t.Errorf("pseudo-gate %d has nonzero offset %v", g, off[g])
			}
		default:
			s += off[g]
			s2 += off[g] * off[g]
			n++
		}
	}
	// Per-gate total sigma should be in the ballpark of SigmaTotal. (The
	// systematic part is shared across nearby gates so the per-chip sample
	// variance underestimates; accept a wide band.)
	sd := math.Sqrt(s2/float64(n) - (s/float64(n))*(s/float64(n)))
	if sd < cfg.SigmaTotal*0.3 || sd > cfg.SigmaTotal*2.0 {
		t.Errorf("per-gate offset sd = %v, sigma budget %v", sd, cfg.SigmaTotal)
	}
}

func TestVthOffsetsReproducible(t *testing.T) {
	cfg := DefaultConfig(0.0466)
	nl := netlist.BuildRCANetlist(8)
	a := MustNewChip(cfg, rng.New(33), 2).VthOffsets(nl, 50, 60)
	b := MustNewChip(cfg, rng.New(33), 2).VthOffsets(nl, 50, 60)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offsets not reproducible at gate %d", i)
		}
	}
}

func TestVthOffsetsDifferentPlacementDiffers(t *testing.T) {
	cfg := DefaultConfig(0.0466)
	c := MustNewChip(cfg, rng.New(33), 2)
	nl := netlist.BuildRCANetlist(8)
	a := c.VthOffsets(nl, 0, 0)
	b := c.VthOffsets(nl, 1500, 1500)
	same := 0
	for i := range a {
		if a[i] != 0 && a[i] == b[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d gates identical across distant placements", same)
	}
}

func TestAdjacentInstancesShareSystematicComponent(t *testing.T) {
	// The paper's robustness argument: the two ALUs sit in close proximity,
	// so their systematic variation is nearly common-mode. Verify that two
	// instances 18 µm apart correlate far more than instances across the die.
	cfg := Config{Levels: 6, DieSizeUm: 2000, SigmaTotal: 0.05, SystematicFrac: 1}
	master := rng.New(44)
	nl := netlist.BuildRCANetlist(8)
	corrAt := func(dx float64) float64 {
		var sxy, sxx, syy float64
		for id := 0; id < 60; id++ {
			c := MustNewChip(cfg, master, id)
			a := c.VthOffsets(nl, 500, 500)
			b := c.VthOffsets(nl, 500+dx, 500)
			for g := range a {
				sxy += a[g] * b[g]
				sxx += a[g] * a[g]
				syy += b[g] * b[g]
			}
		}
		return sxy / math.Sqrt(sxx*syy)
	}
	near := corrAt(18)
	far := corrAt(1400)
	if near < 0.6 {
		t.Errorf("adjacent-instance correlation = %v, want > 0.6", near)
	}
	if far >= near {
		t.Errorf("correlation should decay: near=%v far=%v", near, far)
	}
}

func TestMustNewChipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewChip did not panic on bad config")
		}
	}()
	MustNewChip(Config{}, rng.New(1), 0)
}
