// Package variation implements the quad-tree spatial process-variation
// model the paper adopts from Cline et al. (ICCAD 2006) to assign
// threshold-voltage variations to every gate of every simulated chip.
//
// The die is recursively divided into quadrants for a configured number of
// levels. Every region at every level carries an independent Gaussian random
// variable; the systematic (spatially correlated) variation at a die
// location is the sum of the variables of all regions containing it, so
// nearby gates share most of their variation — exactly the property the
// paper relies on when arguing that the two adjacent ALUs see minimal
// systematic mismatch. On top of the systematic component, each gate draws
// an independent random component (within-die random variation).
//
// The total standard deviation and the systematic/random split are
// configurable; the paper's setting is σ/µ = 0.1 on Vth at 45 nm.
package variation

import (
	"fmt"
	"math"

	"pufatt/internal/netlist"
	"pufatt/internal/rng"
)

// Config parameterises the variation model.
type Config struct {
	// Levels is the quad-tree depth. Level l contributes a grid of
	// 2^l × 2^l regions; typical values are 4–8.
	Levels int
	// DieSizeUm is the die edge length in micrometres. Placements outside
	// the die are clamped onto it.
	DieSizeUm float64
	// SigmaTotal is the total per-gate standard deviation of the modelled
	// parameter (volts, for Vth).
	SigmaTotal float64
	// SystematicFrac is the fraction of total variance carried by the
	// spatially correlated quad-tree component; the remainder is
	// independent per-gate random variation.
	SystematicFrac float64
}

// DefaultConfig returns the configuration used by the experiments: a
// 2 mm die, six quad-tree levels, and an even split between systematic and
// random variance, with the given total sigma.
func DefaultConfig(sigmaTotal float64) Config {
	return Config{
		Levels:         6,
		DieSizeUm:      2000,
		SigmaTotal:     sigmaTotal,
		SystematicFrac: 0.5,
	}
}

func (c Config) validate() error {
	if c.Levels < 1 || c.Levels > 12 {
		return fmt.Errorf("variation: quad-tree levels %d out of range [1,12]", c.Levels)
	}
	if c.DieSizeUm <= 0 {
		return fmt.Errorf("variation: non-positive die size %g", c.DieSizeUm)
	}
	if c.SigmaTotal < 0 {
		return fmt.Errorf("variation: negative sigma %g", c.SigmaTotal)
	}
	if c.SystematicFrac < 0 || c.SystematicFrac > 1 {
		return fmt.Errorf("variation: systematic fraction %g outside [0,1]", c.SystematicFrac)
	}
	return nil
}

// Chip is one manufactured die: a realisation of the quad-tree random field
// plus a dedicated stream for per-gate random components.
type Chip struct {
	cfg    Config
	id     int
	grids  [][]float64 // grids[l] has (1<<l)*(1<<l) entries
	random *rng.Source
	// sigmaRandom is the per-gate independent sigma.
	sigmaRandom float64
}

// NewChip manufactures chip id from the master source: the same (source
// seed, id) pair always yields the same die. Distinct ids yield independent
// dies.
func NewChip(cfg Config, master *rng.Source, id int) (*Chip, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Chip{cfg: cfg, id: id}
	sysVar := cfg.SigmaTotal * cfg.SigmaTotal * cfg.SystematicFrac
	perLevelSigma := math.Sqrt(sysVar / float64(cfg.Levels))
	c.sigmaRandom = cfg.SigmaTotal * math.Sqrt(1-cfg.SystematicFrac)
	field := master.SubN("chip/field", id)
	c.grids = make([][]float64, cfg.Levels)
	for l := 0; l < cfg.Levels; l++ {
		side := 1 << uint(l)
		grid := make([]float64, side*side)
		for i := range grid {
			grid[i] = field.NormMS(0, perLevelSigma)
		}
		c.grids[l] = grid
	}
	c.random = master.SubN("chip/random", id)
	return c, nil
}

// MustNewChip is NewChip that panics on configuration error.
func MustNewChip(cfg Config, master *rng.Source, id int) *Chip {
	c, err := NewChip(cfg, master, id)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the chip identifier.
func (c *Chip) ID() int { return c.id }

// Config returns the model configuration of the chip.
func (c *Chip) Config() Config { return c.cfg }

// SystematicAt returns the spatially correlated component of the parameter
// offset at die location (x, y) in micrometres.
func (c *Chip) SystematicAt(x, y float64) float64 {
	cl := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v >= c.cfg.DieSizeUm {
			return math.Nextafter(c.cfg.DieSizeUm, 0)
		}
		return v
	}
	x, y = cl(x), cl(y)
	var sum float64
	for l := 0; l < c.cfg.Levels; l++ {
		side := 1 << uint(l)
		cell := float64(side) / c.cfg.DieSizeUm
		ix := int(x * cell)
		iy := int(y * cell)
		sum += c.grids[l][iy*side+ix]
	}
	return sum
}

// VthOffsets samples the per-gate threshold offsets for an instance of the
// netlist placed at (offsetX, offsetY) on this die. The systematic part
// comes from the quad-tree field at each gate's placement; the random part
// is drawn from the chip's per-gate stream. Input and constant pseudo-gates
// get zero offset (they have no delay).
func (c *Chip) VthOffsets(nl *netlist.Netlist, offsetX, offsetY float64) []float64 {
	off := make([]float64, len(nl.Gates))
	// A dedicated substream per (placement) keeps instances on the same die
	// independent but reproducible.
	r := c.random.Sub(fmt.Sprintf("inst/%.1f/%.1f", offsetX, offsetY))
	for g := range nl.Gates {
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		sys := c.SystematicAt(nl.Gates[g].X+offsetX, nl.Gates[g].Y+offsetY)
		off[g] = sys + r.NormMS(0, c.sigmaRandom)
	}
	return off
}

// CorrelationAtDistance estimates, by Monte-Carlo over fresh chips, the
// correlation coefficient of the systematic component between two points at
// the given distance (µm). Used by tests to verify the field is spatially
// correlated and decays with distance.
func CorrelationAtDistance(cfg Config, master *rng.Source, dist float64, chips int) float64 {
	var sxy, sxx, syy, sx, sy float64
	n := 0
	for i := 0; i < chips; i++ {
		c := MustNewChip(cfg, master, i)
		// Sample several point pairs per chip.
		pts := master.SubN("corr", i)
		for j := 0; j < 16; j++ {
			x := pts.Float64() * (cfg.DieSizeUm - dist)
			y := pts.Float64() * cfg.DieSizeUm
			a := c.SystematicAt(x, y)
			b := c.SystematicAt(x+dist, y)
			sx += a
			sy += b
			sxx += a * a
			syy += b * b
			sxy += a * b
			n++
		}
	}
	fn := float64(n)
	cov := sxy/fn - (sx/fn)*(sy/fn)
	va := sxx/fn - (sx/fn)*(sx/fn)
	vb := syy/fn - (sy/fn)*(sy/fn)
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
