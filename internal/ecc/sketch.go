package ecc

import (
	"fmt"
	"math/bits"

	"pufatt/internal/stats"
)

// Sketch is the syndrome-construction secure sketch over a linear code: the
// device-side half is a bare matrix multiplication (the paper's "syndrome
// generator", Table 1), and the verifier-side half recovers the device's
// exact noisy response from a reference response and the helper data.
type Sketch struct {
	code *Code
	// BoundedT, when >= 0, restricts recovery to error patterns of weight
	// at most BoundedT (conventional bounded-distance decoding). When
	// negative, recovery is full maximum-likelihood coset decoding.
	BoundedT int
}

// NewSketch returns a secure sketch over the code using maximum-likelihood
// recovery.
func NewSketch(code *Code) *Sketch { return &Sketch{code: code, BoundedT: -1} }

// NewBoundedSketch returns a secure sketch restricted to correcting at most
// t errors.
func NewBoundedSketch(code *Code, t int) *Sketch { return &Sketch{code: code, BoundedT: t} }

// Code returns the underlying linear code.
func (s *Sketch) Code() *Code { return s.code }

// HelperBits returns the helper-data width in bits (n − k; 26 for the
// paper's 32-bit response).
func (s *Sketch) HelperBits() int { return s.code.ParityBits() }

// Generate computes the helper data for a raw response. This is the only
// operation the constrained prover performs.
func (s *Sketch) Generate(response []uint8) (uint64, error) {
	if len(response) != s.code.N {
		return 0, fmt.Errorf("ecc: response of %d bits, want %d", len(response), s.code.N)
	}
	return s.code.Syndrome(BitsToWord(response)), nil
}

// Recover reconstructs the prover's noisy response from the verifier's
// reference response and the helper data, returning the recovered response
// and the number of bit errors corrected.
func (s *Sketch) Recover(reference []uint8, helper uint64) ([]uint8, int, error) {
	if len(reference) != s.code.N {
		return nil, 0, fmt.Errorf("ecc: reference of %d bits, want %d", len(reference), s.code.N)
	}
	ref := BitsToWord(reference)
	synDiff := helper ^ s.code.Syndrome(ref)
	var e uint64
	var err error
	if s.BoundedT >= 0 {
		e, err = s.code.DecodeBounded(synDiff, s.BoundedT)
		if err != nil {
			return nil, 0, err
		}
	} else {
		e = s.code.CosetLeader(synDiff)
	}
	return WordToBits(ref^e, s.code.N), bits.OnesCount64(e), nil
}

// AnalyticFNR returns the analytic false-negative rate of bounded-distance
// recovery with capability t under independent per-bit error probability p:
// the probability that more than t of the n response bits flip.
func AnalyticFNR(n, t int, p float64) float64 {
	return stats.BinomialTail(n, t+1, p)
}
