// Package ecc implements the helper-data error correction of the PUFatt
// pipeline: binary linear block codes with the syndrome-based secure-sketch
// construction of Herrewege et al. (the "reverse fuzzy extractor" adopted in
// Section 2 of the paper).
//
// On the prover, the only required logic is the syndrome generator — a
// parity-check matrix multiplication producing (n−k) helper bits from an
// n-bit raw PUF response. The verifier, holding an emulated reference
// response, subtracts its own syndrome and decodes the difference to the
// coset leader, recovering the prover's exact noisy response.
//
// The paper specifies a BCH[32,6,16] code. The unique well-known binary
// (32,6,16) code is the first-order Reed–Muller code RM(1,5), which
// NewReedMuller15 instantiates. Decoding is exact maximum-likelihood coset
// decoding (k is small, so the 2^k codewords are enumerated), with an
// optional bounded-distance mode for the conventional t = ⌊(d−1)/2⌋ = 7
// guarantee. The paper's text claims 16 correctable errors, which exceeds
// what any (32,6,16) code guarantees; EXPERIMENTS.md quantifies the
// false-negative rate under both readings.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrDecodeFailure is returned by bounded-distance decoding when the coset
// leader exceeds the requested weight bound.
var ErrDecodeFailure = errors.New("ecc: error pattern exceeds correction bound")

// Code is a binary [N,K] linear block code with N <= 64, represented by
// bitmask rows (bit i of a row = coefficient of codeword position i).
type Code struct {
	N, K int
	D    int // minimum distance, 0 if unknown

	g         []uint64 // K generator rows
	h         []uint64 // N−K parity-check rows
	codewords []uint64 // all 2^K codewords, index = message word
	// Coset-decoding precomputation: hRed = T·h in reduced row-echelon
	// form with pivot columns pivots; T itself is kept so a runtime
	// syndrome can be transformed the same way.
	hRed   []uint64
	tMat   []uint64 // rows of T, width N−K (bit j = coefficient of s_j)
	pivots []int
}

// NewFromGenerator builds a code from K generator rows of width N. The rows
// must be linearly independent. minDist may be 0 if unknown.
func NewFromGenerator(n, minDist int, gen []uint64) (*Code, error) {
	k := len(gen)
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("ecc: code length %d outside [1,64]", n)
	}
	if k < 1 || k > 22 {
		return nil, fmt.Errorf("ecc: dimension %d outside [1,22] (codeword enumeration)", k)
	}
	if k > n {
		return nil, fmt.Errorf("ecc: dimension %d exceeds length %d", k, n)
	}
	mask := maskN(n)
	c := &Code{N: n, K: k, D: minDist, g: append([]uint64(nil), gen...)}
	for i, row := range c.g {
		if row&^mask != 0 {
			return nil, fmt.Errorf("ecc: generator row %d has bits beyond length %d", i, n)
		}
	}
	if rank(c.g) != k {
		return nil, errors.New("ecc: generator rows are linearly dependent")
	}
	c.h = nullSpace(c.g, n)
	if len(c.h) != n-k {
		return nil, fmt.Errorf("ecc: null space has dimension %d, want %d", len(c.h), n-k)
	}
	c.enumerateCodewords()
	if err := c.prepareCosetDecoding(); err != nil {
		return nil, err
	}
	if c.D == 0 {
		c.D = c.computeMinDistance()
	}
	return c, nil
}

func maskN(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// rank computes the GF(2) rank of the rows.
func rank(rows []uint64) int {
	work := append([]uint64(nil), rows...)
	r := 0
	for col := 63; col >= 0; col-- {
		bit := uint64(1) << uint(col)
		pivot := -1
		for i := r; i < len(work); i++ {
			if work[i]&bit != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[r], work[pivot] = work[pivot], work[r]
		for i := 0; i < len(work); i++ {
			if i != r && work[i]&bit != 0 {
				work[i] ^= work[r]
			}
		}
		r++
	}
	return r
}

// nullSpace returns a basis of {v : g·vᵀ = 0} as bitmask rows of width n.
func nullSpace(gen []uint64, n int) []uint64 {
	// Row-reduce a copy of gen, tracking pivot columns.
	work := append([]uint64(nil), gen...)
	pivotCol := make([]int, 0, len(work))
	r := 0
	for col := 0; col < n && r < len(work); col++ {
		bit := uint64(1) << uint(col)
		pivot := -1
		for i := r; i < len(work); i++ {
			if work[i]&bit != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[r], work[pivot] = work[pivot], work[r]
		for i := range work {
			if i != r && work[i]&bit != 0 {
				work[i] ^= work[r]
			}
		}
		pivotCol = append(pivotCol, col)
		r++
	}
	isPivot := make([]bool, n)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis []uint64
	for free := 0; free < n; free++ {
		if isPivot[free] {
			continue
		}
		v := uint64(1) << uint(free)
		// For each pivot row, set the pivot coordinate so the row's dot
		// product with v vanishes.
		for ri, pc := range pivotCol {
			dot := bits.OnesCount64(work[ri]&v) & 1
			if dot == 1 {
				v |= uint64(1) << uint(pc)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

func (c *Code) enumerateCodewords() {
	c.codewords = make([]uint64, 1<<uint(c.K))
	for msg := range c.codewords {
		var cw uint64
		for j := 0; j < c.K; j++ {
			if msg>>uint(j)&1 == 1 {
				cw ^= c.g[j]
			}
		}
		c.codewords[msg] = cw
	}
}

// prepareCosetDecoding row-reduces H while tracking the transform T so that
// hRed = T·H with identity on the pivot columns.
func (c *Code) prepareCosetDecoding() error {
	m := c.N - c.K
	h := append([]uint64(nil), c.h...)
	t := make([]uint64, m)
	for i := range t {
		t[i] = 1 << uint(i)
	}
	var pivots []int
	r := 0
	for col := 0; col < c.N && r < m; col++ {
		bit := uint64(1) << uint(col)
		pivot := -1
		for i := r; i < m; i++ {
			if h[i]&bit != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		h[r], h[pivot] = h[pivot], h[r]
		t[r], t[pivot] = t[pivot], t[r]
		for i := 0; i < m; i++ {
			if i != r && h[i]&bit != 0 {
				h[i] ^= h[r]
				t[i] ^= t[r]
			}
		}
		pivots = append(pivots, col)
		r++
	}
	if r != m {
		return errors.New("ecc: parity-check matrix is rank deficient")
	}
	c.hRed, c.tMat, c.pivots = h, t, pivots
	return nil
}

func (c *Code) computeMinDistance() int {
	d := c.N + 1
	for _, cw := range c.codewords[1:] {
		if w := bits.OnesCount64(cw); w < d {
			d = w
		}
	}
	return d
}

// ParityBits returns N − K, the helper-data width in bits.
func (c *Code) ParityBits() int { return c.N - c.K }

// T returns the guaranteed correction capability ⌊(D−1)/2⌋.
func (c *Code) T() int { return (c.D - 1) / 2 }

// Codewords returns all 2^K codewords (shared slice; do not modify).
func (c *Code) Codewords() []uint64 { return c.codewords }

// Encode maps a K-bit message word to its codeword.
func (c *Code) Encode(msg uint64) uint64 {
	return c.codewords[msg&maskN(c.K)]
}

// IsCodeword reports whether w is a codeword.
func (c *Code) IsCodeword(w uint64) bool { return c.Syndrome(w) == 0 }

// Syndrome returns the (N−K)-bit syndrome H·wᵀ, packed with row j in bit j.
func (c *Code) Syndrome(w uint64) uint64 {
	var s uint64
	for j, row := range c.h {
		s |= uint64(bits.OnesCount64(row&w)&1) << uint(j)
	}
	return s
}

// CosetLeader returns the minimum-weight error vector whose syndrome equals
// s — exact maximum-likelihood decoding by enumeration of the 2^K coset
// elements. Ties resolve to the lexicographically smallest mask, making the
// result deterministic.
func (c *Code) CosetLeader(s uint64) uint64 {
	// Particular solution v with H·v = s: transform s by T, then place the
	// transformed bits on the pivot columns.
	var v uint64
	for j := range c.tMat {
		if bits.OnesCount64(c.tMat[j]&s)&1 == 1 {
			v |= uint64(1) << uint(c.pivots[j])
		}
	}
	best := v
	bestW := bits.OnesCount64(v)
	for _, cw := range c.codewords[1:] {
		e := v ^ cw
		w := bits.OnesCount64(e)
		if w < bestW || (w == bestW && e < best) {
			best, bestW = e, w
		}
	}
	return best
}

// DecodeBounded returns the coset leader for s if its weight is at most
// tBound, and ErrDecodeFailure otherwise. Pass c.T() for the conventional
// bounded-distance guarantee.
func (c *Code) DecodeBounded(s uint64, tBound int) (uint64, error) {
	e := c.CosetLeader(s)
	if bits.OnesCount64(e) > tBound {
		return 0, ErrDecodeFailure
	}
	return e, nil
}

// NewReedMuller15 returns the first-order Reed–Muller code RM(1,5): the
// binary (32, 6, 16) code matching the paper's BCH[32,6,16] parameters. Its
// generator is the all-ones row plus the five coordinate-indicator rows.
func NewReedMuller15() *Code {
	gen := []uint64{
		0xFFFFFFFF, // constant 1
		0xAAAAAAAA, // x0
		0xCCCCCCCC, // x1
		0xF0F0F0F0, // x2
		0xFF00FF00, // x3
		0xFFFF0000, // x4
	}
	c, err := NewFromGenerator(32, 16, gen)
	if err != nil {
		panic("ecc: RM(1,5) construction failed: " + err.Error())
	}
	return c
}

// NewReedMuller14 returns the first-order Reed–Muller code RM(1,4): the
// binary (16, 5, 8) code used for the 16-bit ALU PUF variant implemented on
// the paper's FPGA prototype (11 helper bits, t = 3).
func NewReedMuller14() *Code {
	gen := []uint64{
		0xFFFF, // constant 1
		0xAAAA, // x0
		0xCCCC, // x1
		0xF0F0, // x2
		0xFF00, // x3
	}
	c, err := NewFromGenerator(16, 8, gen)
	if err != nil {
		panic("ecc: RM(1,4) construction failed: " + err.Error())
	}
	return c
}

// ForResponseWidth returns the Reed–Muller sketch code matching a PUF
// response width: RM(1,5) for 32 bits, RM(1,4) for 16 bits.
func ForResponseWidth(bits int) (*Code, error) {
	switch bits {
	case 32:
		return NewReedMuller15(), nil
	case 16:
		return NewReedMuller14(), nil
	default:
		return nil, fmt.Errorf("ecc: no Reed–Muller instance for %d-bit responses", bits)
	}
}

// BitsToWord packs a bit slice (index 0 = bit 0) into a uint64.
func BitsToWord(bitsSlice []uint8) uint64 {
	if len(bitsSlice) > 64 {
		panic(fmt.Sprintf("ecc: %d bits exceed word size", len(bitsSlice)))
	}
	var w uint64
	for i, b := range bitsSlice {
		w |= uint64(b&1) << uint(i)
	}
	return w
}

// WordToBits unpacks the low n bits of w into a slice.
func WordToBits(w uint64, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(w >> uint(i) & 1)
	}
	return out
}
