package ecc

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"pufatt/internal/rng"
)

func TestReedMuller15Parameters(t *testing.T) {
	c := NewReedMuller15()
	if c.N != 32 || c.K != 6 {
		t.Fatalf("RM(1,5) = (%d,%d), want (32,6)", c.N, c.K)
	}
	if c.D != 16 {
		t.Fatalf("declared distance %d, want 16", c.D)
	}
	if got := c.computeMinDistance(); got != 16 {
		t.Fatalf("actual minimum distance %d, want 16", got)
	}
	if c.T() != 7 {
		t.Errorf("T() = %d, want 7", c.T())
	}
	if c.ParityBits() != 26 {
		t.Errorf("ParityBits = %d, want 26 (the paper's helper width)", c.ParityBits())
	}
}

func TestRM15WeightDistribution(t *testing.T) {
	// RM(1,5) is the biorthogonal code: weights are 0 (×1), 16 (×62), 32 (×1).
	c := NewReedMuller15()
	counts := map[int]int{}
	for _, cw := range c.Codewords() {
		counts[bits.OnesCount64(cw)]++
	}
	if counts[0] != 1 || counts[16] != 62 || counts[32] != 1 || len(counts) != 3 {
		t.Errorf("weight distribution = %v, want {0:1, 16:62, 32:1}", counts)
	}
}

func TestSyndromeZeroOnCodewords(t *testing.T) {
	c := NewReedMuller15()
	for msg, cw := range c.Codewords() {
		if c.Syndrome(cw) != 0 {
			t.Fatalf("codeword %d has nonzero syndrome", msg)
		}
		if !c.IsCodeword(cw) {
			t.Fatalf("IsCodeword false for codeword %d", msg)
		}
	}
}

func TestSyndromeLinear(t *testing.T) {
	c := NewReedMuller15()
	f := func(a, b uint32) bool {
		return c.Syndrome(uint64(a)^uint64(b)) == c.Syndrome(uint64(a))^c.Syndrome(uint64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosetLeaderSatisfiesSyndrome(t *testing.T) {
	c := NewReedMuller15()
	f := func(sRaw uint32) bool {
		s := uint64(sRaw) & (1<<26 - 1)
		e := c.CosetLeader(s)
		return c.Syndrome(e) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCosetLeaderIsMinimumWeight(t *testing.T) {
	// Within the bounded-distance radius the coset leader must recover any
	// injected error pattern exactly.
	c := NewReedMuller15()
	src := rng.New(3)
	for trial := 0; trial < 300; trial++ {
		var e uint64
		nErr := src.Intn(c.T() + 1) // 0..7 errors
		for _, pos := range src.Perm(32)[:nErr] {
			e |= 1 << uint(pos)
		}
		got := c.CosetLeader(c.Syndrome(e))
		if got != e {
			t.Fatalf("trial %d: coset leader %#x, injected %#x (weight %d)", trial, got, e, nErr)
		}
	}
}

func TestCosetLeaderWeightNeverExceedsCoveringRadius(t *testing.T) {
	// RM(1,5) has covering radius 14; no coset leader may be heavier.
	c := NewReedMuller15()
	src := rng.New(5)
	for trial := 0; trial < 500; trial++ {
		s := src.Word(26)
		if w := bits.OnesCount64(c.CosetLeader(s)); w > 14 {
			t.Fatalf("coset leader of weight %d exceeds covering radius 14", w)
		}
	}
}

func TestDecodeBounded(t *testing.T) {
	c := NewReedMuller15()
	var e uint64 = 0b10110001 // weight 4
	got, err := c.DecodeBounded(c.Syndrome(e), 7)
	if err != nil || got != e {
		t.Fatalf("bounded decode of weight-4 pattern: %#x, %v", got, err)
	}
	// A weight-9 pattern must be rejected with bound 7 (it is a coset
	// leader only if no lighter vector shares the syndrome, so craft one
	// far from any codeword: 9 ones within the low 16 bits keeps distance
	// from the weight-16 codewords at least... verify empirically instead).
	var heavy uint64 = 0b111111111
	leader := c.CosetLeader(c.Syndrome(heavy))
	if bits.OnesCount64(leader) > 7 {
		if _, err := c.DecodeBounded(c.Syndrome(heavy), 7); err == nil {
			t.Error("bounded decode accepted a pattern beyond the bound")
		}
	}
}

func TestNewFromGeneratorValidation(t *testing.T) {
	if _, err := NewFromGenerator(0, 0, []uint64{1}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewFromGenerator(65, 0, []uint64{1}); err == nil {
		t.Error("n=65 accepted")
	}
	if _, err := NewFromGenerator(8, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewFromGenerator(8, 0, []uint64{0b11, 0b11}); err == nil {
		t.Error("dependent rows accepted")
	}
	if _, err := NewFromGenerator(4, 0, []uint64{0b10000}); err == nil {
		t.Error("row exceeding length accepted")
	}
	if _, err := NewFromGenerator(3, 0, []uint64{1, 2, 4, 7}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestSmallCodeMinDistanceComputed(t *testing.T) {
	// [7,4] Hamming code: distance 3.
	gen := []uint64{
		0b0001011,
		0b0010101,
		0b0100110,
		0b1000111,
	}
	c, err := NewFromGenerator(7, 0, gen)
	if err != nil {
		t.Fatal(err)
	}
	if c.D != 3 {
		t.Errorf("Hamming(7,4) distance = %d, want 3", c.D)
	}
	if c.T() != 1 {
		t.Errorf("T = %d, want 1", c.T())
	}
	// Hamming codes are perfect: every single error is corrected.
	for pos := 0; pos < 7; pos++ {
		e := uint64(1) << uint(pos)
		if c.CosetLeader(c.Syndrome(e)) != e {
			t.Errorf("single error at %d not corrected", pos)
		}
	}
}

func TestEncode(t *testing.T) {
	c := NewReedMuller15()
	if c.Encode(0) != 0 {
		t.Error("Encode(0) != 0")
	}
	if c.Encode(1) != 0xFFFFFFFF {
		t.Errorf("Encode(1) = %#x, want all-ones", c.Encode(1))
	}
}

func TestBitsWordRoundTrip(t *testing.T) {
	f := func(v uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		w := v & maskN(n)
		return BitsToWord(WordToBits(w, n)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsToWordPanicsOver64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 65 bits")
		}
	}()
	BitsToWord(make([]uint8, 65))
}

func TestSketchRoundTripNoNoise(t *testing.T) {
	s := NewSketch(NewReedMuller15())
	src := rng.New(11)
	resp := make([]uint8, 32)
	for trial := 0; trial < 100; trial++ {
		src.Bits(resp)
		h, err := s.Generate(resp)
		if err != nil {
			t.Fatal(err)
		}
		rec, nErr, err := s.Recover(resp, h)
		if err != nil || nErr != 0 {
			t.Fatalf("noiseless recover: nErr=%d err=%v", nErr, err)
		}
		for i := range resp {
			if rec[i] != resp[i] {
				t.Fatal("noiseless recovery altered the response")
			}
		}
	}
}

func TestSketchRecoversNoisyResponse(t *testing.T) {
	// The reverse-fuzzy-extractor flow: prover measures noisy y, verifier
	// holds reference ŷ; verifier must recover exactly y.
	s := NewSketch(NewReedMuller15())
	src := rng.New(13)
	ref := make([]uint8, 32)
	for trial := 0; trial < 200; trial++ {
		src.Bits(ref)
		noisy := append([]uint8(nil), ref...)
		nErr := src.Intn(8) // within the guaranteed radius
		for _, pos := range src.Perm(32)[:nErr] {
			noisy[pos] ^= 1
		}
		h, _ := s.Generate(noisy)
		rec, count, err := s.Recover(ref, h)
		if err != nil {
			t.Fatalf("trial %d: recover failed: %v", trial, err)
		}
		if count != nErr {
			t.Fatalf("trial %d: corrected %d, injected %d", trial, count, nErr)
		}
		for i := range noisy {
			if rec[i] != noisy[i] {
				t.Fatalf("trial %d: recovered wrong response", trial)
			}
		}
	}
}

func TestBoundedSketchRejectsHeavyNoise(t *testing.T) {
	s := NewBoundedSketch(NewReedMuller15(), 7)
	src := rng.New(17)
	ref := make([]uint8, 32)
	src.Bits(ref)
	noisy := append([]uint8(nil), ref...)
	for _, pos := range src.Perm(32)[:12] {
		noisy[pos] ^= 1
	}
	h, _ := s.Generate(noisy)
	if _, _, err := s.Recover(ref, h); err == nil {
		// A 12-error pattern may occasionally alias to a light coset; but
		// with this fixed seed it should not. If it does, the test seed
		// must be changed rather than the assertion weakened.
		t.Error("bounded sketch recovered a 12-error pattern; expected rejection")
	}
}

func TestSketchLengthValidation(t *testing.T) {
	s := NewSketch(NewReedMuller15())
	if _, err := s.Generate(make([]uint8, 31)); err == nil {
		t.Error("short response accepted")
	}
	if _, _, err := s.Recover(make([]uint8, 31), 0); err == nil {
		t.Error("short reference accepted")
	}
}

func TestHelperBits(t *testing.T) {
	s := NewSketch(NewReedMuller15())
	if s.HelperBits() != 26 {
		t.Errorf("HelperBits = %d, want 26", s.HelperBits())
	}
}

func TestAnalyticFNR(t *testing.T) {
	// t=7 at p=0.113 on 32 bits: a few percent. t=16: ~1e-7 (the paper's
	// reading). Check orders of magnitude and monotonicity.
	f7 := AnalyticFNR(32, 7, 0.113)
	f16 := AnalyticFNR(32, 16, 0.113)
	if f7 < 0.001 || f7 > 0.2 {
		t.Errorf("FNR(t=7) = %v, out of plausible band", f7)
	}
	if f16 > 1e-5 || f16 < 1e-9 {
		t.Errorf("FNR(t=16) = %v, want near the paper's 1.53e-7", f16)
	}
	if f16 >= f7 {
		t.Error("FNR must decrease with larger t")
	}
	if got := AnalyticFNR(32, 32, 0.5); got != 0 {
		t.Errorf("FNR with t=n should be 0, got %v", got)
	}
}

func TestAnalyticFNRMatchesPaperOrder(t *testing.T) {
	// The paper reports 1.53e-7; our binomial model with their parameters
	// (p = 3.62/32) should land within a factor ~30 of that.
	fnr := AnalyticFNR(32, 16, 3.62/32)
	ratio := fnr / 1.53e-7
	if ratio < 1.0/30 || ratio > 30 {
		t.Errorf("analytic FNR %v vs paper 1.53e-7 (ratio %v)", fnr, ratio)
	}
}

func TestCosetLeaderDeterministic(t *testing.T) {
	c := NewReedMuller15()
	src := rng.New(23)
	for i := 0; i < 50; i++ {
		s := src.Word(26)
		if c.CosetLeader(s) != c.CosetLeader(s) {
			t.Fatal("CosetLeader not deterministic")
		}
	}
}

func TestMLBeatsBoundedOnHeavyPatterns(t *testing.T) {
	// ML decoding recovers some >t patterns that bounded decoding rejects;
	// measured acceptance beyond t must be strictly positive for the
	// DESIGN.md ablation to be meaningful.
	c := NewReedMuller15()
	src := rng.New(29)
	recovered := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		var e uint64
		for _, pos := range src.Perm(32)[:9] { // weight 9 > t=7
			e |= 1 << uint(pos)
		}
		if c.CosetLeader(c.Syndrome(e)) == e {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("ML decoding never recovered a weight-9 pattern; expected some")
	}
	t.Logf("ML recovered %d/%d weight-9 patterns exactly", recovered, trials)
}

func TestFNRMonteCarloMatchesAnalytic(t *testing.T) {
	// Monte-Carlo FNR of the bounded sketch at p=0.15 vs the analytic tail.
	p := 0.15
	s := NewBoundedSketch(NewReedMuller15(), 7)
	src := rng.New(31)
	ref := make([]uint8, 32)
	src.Bits(ref)
	const trials = 20000
	fails := 0
	for i := 0; i < trials; i++ {
		noisy := append([]uint8(nil), ref...)
		for b := range noisy {
			if src.Float64() < p {
				noisy[b] ^= 1
			}
		}
		h, _ := s.Generate(noisy)
		rec, _, err := s.Recover(ref, h)
		if err != nil {
			fails++
			continue
		}
		for i := range noisy {
			if rec[i] != noisy[i] {
				fails++
				break
			}
		}
	}
	got := float64(fails) / trials
	want := AnalyticFNR(32, 7, p)
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("Monte-Carlo FNR %v vs analytic %v", got, want)
	}
}
