package gf2

import (
	"fmt"
	"strings"
)

// Poly is a polynomial over GF(2), stored as coefficients in ascending
// degree order: Poly{1, 0, 1} = 1 + x². The zero polynomial is the empty
// (or all-zero) slice.
type Poly []uint8

// norm trims trailing zero coefficients.
func (p Poly) norm() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, or −1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.norm()) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.norm()) == 0 }

// Equal reports whether p and q represent the same polynomial.
func (p Poly) Equal(q Poly) bool {
	a, b := p.norm(), q.norm()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Add returns p + q (coefficient-wise XOR).
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	r := make(Poly, n)
	for i := range r {
		var a, b uint8
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		r[i] = (a ^ b) & 1
	}
	return r.norm()
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	a, b := p.norm(), q.norm()
	if len(a) == 0 || len(b) == 0 {
		return Poly{}
	}
	r := make(Poly, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			r[i+j] ^= bj
		}
	}
	return r.norm()
}

// DivMod returns the quotient and remainder of p / q. It panics if q is
// zero.
func (p Poly) DivMod(q Poly) (quot, rem Poly) {
	d := q.norm()
	if len(d) == 0 {
		panic("gf2: polynomial division by zero")
	}
	r := p.norm().Clone()
	dd := len(d) - 1
	if len(r)-1 < dd {
		return Poly{}, r
	}
	quot = make(Poly, len(r)-dd)
	for len(r) > 0 && len(r)-1 >= dd {
		shift := len(r) - 1 - dd
		quot[shift] = 1
		for i, c := range d {
			r[shift+i] ^= c
		}
		r = r.norm()
	}
	return quot.norm(), r
}

// Mod returns p modulo q.
func (p Poly) Mod(q Poly) Poly {
	_, r := p.DivMod(q)
	return r
}

// EvalAt evaluates p at the field element a in GF(2^m) (coefficients 0/1).
func (p Poly) EvalAt(f *Field, a int) int {
	// Horner's rule from the top coefficient down.
	v := 0
	for i := len(p) - 1; i >= 0; i-- {
		v = f.Mul(v, a) ^ int(p[i]&1)
	}
	return v
}

// XPow returns the monomial x^n.
func XPow(n int) Poly {
	p := make(Poly, n+1)
	p[n] = 1
	return p
}

// LCM returns the least common multiple of the two polynomials.
func LCM(a, b Poly) Poly {
	g := GCD(a, b)
	if g.IsZero() {
		return Poly{}
	}
	q, _ := a.Mul(b).DivMod(g)
	return q
}

// GCD returns the greatest common divisor of the two polynomials (monic by
// construction over GF(2)).
func GCD(a, b Poly) Poly {
	x, y := a.norm(), b.norm()
	for !y.IsZero() {
		x, y = y, x.Mod(y)
	}
	return x
}

// String renders the polynomial in conventional x-notation.
func (p Poly) String() string {
	q := p.norm()
	if len(q) == 0 {
		return "0"
	}
	var terms []string
	for d := len(q) - 1; d >= 0; d-- {
		if q[d] == 0 {
			continue
		}
		switch d {
		case 0:
			terms = append(terms, "1")
		case 1:
			terms = append(terms, "x")
		default:
			terms = append(terms, fmt.Sprintf("x^%d", d))
		}
	}
	return strings.Join(terms, " + ")
}
