package gf2

import (
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 2; m <= 10; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("NewField(%d): %v", m, err)
		}
		if f.Size != 1<<uint(m) || f.N() != f.Size-1 {
			t.Errorf("m=%d: size %d, n %d", m, f.Size, f.N())
		}
	}
	if _, err := NewField(1); err == nil {
		t.Error("NewField(1) should fail")
	}
	if _, err := NewField(11); err == nil {
		t.Error("NewField(11) should fail")
	}
}

func TestFieldAxioms(t *testing.T) {
	f := MustField(5)
	n := f.Size
	// Exhaustive over GF(32): associativity, commutativity, distributivity.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("Mul not commutative at (%d,%d)", a, b)
			}
			for c := 0; c < n; c += 7 {
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("Mul not associative at (%d,%d,%d)", a, b, c)
				}
				if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
					t.Fatalf("not distributive at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

func TestFieldInverses(t *testing.T) {
	f := MustField(6)
	for a := 1; a < f.Size; a++ {
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for a=%d", a)
		}
		if f.Div(a, a) != 1 {
			t.Fatalf("a/a ≠ 1 for a=%d", a)
		}
	}
}

func TestFieldZeroHandling(t *testing.T) {
	f := MustField(4)
	if f.Mul(0, 7) != 0 || f.Mul(7, 0) != 0 {
		t.Error("0·a ≠ 0")
	}
	if f.Div(0, 5) != 0 {
		t.Error("0/a ≠ 0")
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Inv(0)", func() { f.Inv(0) })
	mustPanic("Div(1,0)", func() { f.Div(1, 0) })
	mustPanic("Log(0)", func() { f.Log(0) })
}

func TestExpLogRoundTrip(t *testing.T) {
	f := MustField(5)
	for i := 0; i < f.N(); i++ {
		if f.Log(f.Exp(i)) != i {
			t.Fatalf("Log(Exp(%d)) != %d", i, i)
		}
	}
	if f.Exp(-1) != f.Exp(f.N()-1) {
		t.Error("negative exponent wrap failed")
	}
	if f.Exp(f.N()) != 1 {
		t.Error("Exp(n) != 1")
	}
}

func TestPow(t *testing.T) {
	f := MustField(5)
	for a := 0; a < f.Size; a++ {
		if f.Pow(a, 0) != 1 {
			t.Fatalf("Pow(%d,0) != 1", a)
		}
		if f.Pow(a, 1) != a {
			t.Fatalf("Pow(%d,1) != %d", a, a)
		}
		if a != 0 && f.Pow(a, 2) != f.Mul(a, a) {
			t.Fatalf("Pow(%d,2) != a·a", a)
		}
	}
	if f.Pow(0, 5) != 0 {
		t.Error("Pow(0,5) != 0")
	}
}

func TestCyclotomicCosets(t *testing.T) {
	f := MustField(5) // n = 31
	c1 := f.CyclotomicCoset(1)
	if len(c1) != 5 {
		t.Errorf("coset of 1 has size %d, want 5 (m)", len(c1))
	}
	c0 := f.CyclotomicCoset(0)
	if len(c0) != 1 || c0[0] != 0 {
		t.Errorf("coset of 0 = %v", c0)
	}
	// Cosets of i and 2i coincide as sets.
	c2 := f.CyclotomicCoset(2)
	set := map[int]bool{}
	for _, v := range c1 {
		set[v] = true
	}
	for _, v := range c2 {
		if !set[v] {
			t.Errorf("coset(2) element %d not in coset(1)", v)
		}
	}
}

func TestMinimalPolynomialHasRoot(t *testing.T) {
	f := MustField(5)
	for i := 1; i <= 10; i++ {
		mp := f.MinimalPolynomial(i)
		if mp.EvalAt(f, f.Exp(i)) != 0 {
			t.Errorf("minimal polynomial of α^%d does not vanish at α^%d", i, i)
		}
		if mp.Degree() > f.M {
			t.Errorf("minimal polynomial of α^%d has degree %d > m", i, mp.Degree())
		}
	}
}

func TestPolyArithmetic(t *testing.T) {
	p := Poly{1, 1}    // 1 + x
	q := Poly{1, 0, 1} // 1 + x²  = (1+x)² over GF(2)
	if !p.Mul(p).Equal(q) {
		t.Errorf("(1+x)² = %v, want %v", p.Mul(p), q)
	}
	if p.Add(p).Degree() != -1 {
		t.Error("p + p should be zero")
	}
	if got := XPow(3).Degree(); got != 3 {
		t.Errorf("XPow(3) degree = %d", got)
	}
}

func TestPolyDivMod(t *testing.T) {
	f := func(aBits, bBits uint16) bool {
		a := bitsToPoly(uint64(aBits))
		b := bitsToPoly(uint64(bBits))
		if b.IsZero() {
			return true
		}
		q, r := a.DivMod(b)
		if r.Degree() >= b.Degree() {
			return false
		}
		return q.Mul(b).Add(r).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPolyDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic dividing by zero polynomial")
		}
	}()
	Poly{1, 1}.DivMod(Poly{})
}

func TestGCDAndLCM(t *testing.T) {
	a := Poly{1, 1}    // 1+x
	b := Poly{1, 1, 1} // 1+x+x²
	prod := a.Mul(b)   // (1+x)(1+x+x²) = 1+x³
	if !GCD(prod, a).Equal(a) {
		t.Errorf("GCD((1+x³),(1+x)) = %v", GCD(prod, a))
	}
	l := LCM(a, b)
	if !l.Equal(prod) {
		t.Errorf("LCM = %v, want %v", l, prod)
	}
	if !LCM(a, a).Equal(a) {
		t.Error("LCM(a,a) != a")
	}
}

func TestGCDDividesBoth(t *testing.T) {
	f := func(aBits, bBits uint16) bool {
		a := bitsToPoly(uint64(aBits))
		b := bitsToPoly(uint64(bBits))
		g := GCD(a, b)
		if g.IsZero() {
			return a.IsZero() && b.IsZero()
		}
		return a.Mod(g).IsZero() && b.Mod(g).IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPolyString(t *testing.T) {
	if got := (Poly{1, 0, 1}).String(); got != "x^2 + 1" {
		t.Errorf("String = %q", got)
	}
	if got := (Poly{}).String(); got != "0" {
		t.Errorf("zero String = %q", got)
	}
	if got := (Poly{0, 1}).String(); got != "x" {
		t.Errorf("x String = %q", got)
	}
}

func TestEvalAt(t *testing.T) {
	f := MustField(4)
	// p(x) = 1 + x: p(α) = 1 ^ α.
	p := Poly{1, 1}
	alpha := f.Exp(1)
	if got := p.EvalAt(f, alpha); got != 1^alpha {
		t.Errorf("EvalAt = %d, want %d", got, 1^alpha)
	}
	if got := (Poly{}).EvalAt(f, alpha); got != 0 {
		t.Errorf("zero poly eval = %d", got)
	}
}

func bitsToPoly(v uint64) Poly {
	var p Poly
	for v != 0 {
		p = append(p, uint8(v&1))
		v >>= 1
	}
	return p
}
