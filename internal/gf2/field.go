// Package gf2 implements arithmetic over binary Galois fields GF(2^m) and
// polynomials over GF(2) — the algebraic substrate for the BCH error
// correction used in the PUFatt helper-data scheme.
package gf2

import "fmt"

// defaultPrimitive maps field degree m to a primitive polynomial, given as a
// bitmask including the x^m term (e.g. 0b1011 = x^3 + x + 1).
var defaultPrimitive = map[int]uint32{
	2:  0b111,
	3:  0b1011,
	4:  0b10011,
	5:  0b100101,
	6:  0b1000011,
	7:  0b10001001,
	8:  0b100011101,
	9:  0b1000010001,
	10: 0b10000001001,
}

// Field is GF(2^m) represented with exp/log tables over a primitive element
// α. Elements are integers in [0, 2^m).
type Field struct {
	M    int    // extension degree
	Size int    // 2^m
	Poly uint32 // primitive polynomial bitmask
	exp  []int  // exp[i] = α^i, length 2*(Size-1) to avoid mod in Mul
	log  []int  // log[α^i] = i; log[0] unused
}

// NewField constructs GF(2^m) for 2 <= m <= 10 using a standard primitive
// polynomial.
func NewField(m int) (*Field, error) {
	poly, ok := defaultPrimitive[m]
	if !ok {
		return nil, fmt.Errorf("gf2: no primitive polynomial for m=%d (supported 2..10)", m)
	}
	f := &Field{M: m, Size: 1 << uint(m), Poly: poly}
	n := f.Size - 1
	f.exp = make([]int, 2*n)
	f.log = make([]int, f.Size)
	x := 1
	for i := 0; i < n; i++ {
		f.exp[i] = x
		f.exp[i+n] = x
		f.log[x] = i
		x <<= 1
		if x&f.Size != 0 {
			x ^= int(poly)
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf2: polynomial %#b is not primitive for m=%d", poly, m)
	}
	return f, nil
}

// MustField is NewField that panics on error.
func MustField(m int) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// N returns the multiplicative order 2^m − 1.
func (f *Field) N() int { return f.Size - 1 }

// Add returns a + b (= a XOR b in characteristic 2).
func (f *Field) Add(a, b int) int { return a ^ b }

// Mul returns a·b.
func (f *Field) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns a^(−1). It panics on a = 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	return f.exp[f.N()-f.log[a]]
}

// Div returns a / b. It panics on b = 0.
func (f *Field) Div(a, b int) int {
	if b == 0 {
		panic("gf2: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[(f.log[a]-f.log[b]+f.N())%f.N()]
}

// Exp returns α^i for any integer i.
func (f *Field) Exp(i int) int {
	n := f.N()
	i %= n
	if i < 0 {
		i += n
	}
	return f.exp[i]
}

// Log returns the discrete log of a to base α. It panics on a = 0.
func (f *Field) Log(a int) int {
	if a == 0 {
		panic("gf2: log of zero")
	}
	return f.log[a]
}

// Pow returns a^e (e >= 0; a^0 = 1, 0^e = 0 for e > 0).
func (f *Field) Pow(a, e int) int {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return f.Exp(f.log[a] % f.N() * (e % f.N()) % f.N())
}

// CyclotomicCoset returns the 2-cyclotomic coset of i modulo 2^m − 1, in
// increasing order of first appearance: {i, 2i, 4i, ...}.
func (f *Field) CyclotomicCoset(i int) []int {
	n := f.N()
	i = ((i % n) + n) % n
	coset := []int{i}
	j := 2 * i % n
	for j != i {
		coset = append(coset, j)
		j = 2 * j % n
	}
	return coset
}

// MinimalPolynomial returns the minimal polynomial over GF(2) of α^i, as a
// Poly. The minimal polynomial is Π (x − α^j) over the cyclotomic coset of
// i; its coefficients lie in GF(2).
func (f *Field) MinimalPolynomial(i int) Poly {
	coset := f.CyclotomicCoset(i)
	// Build the product in GF(2^m)[x], coefficients as field elements.
	coeffs := []int{1} // the constant polynomial 1
	for _, j := range coset {
		root := f.Exp(j)
		// Multiply coeffs by (x + root).
		next := make([]int, len(coeffs)+1)
		for d, c := range coeffs {
			next[d+1] ^= c            // x * c x^d
			next[d] ^= f.Mul(c, root) // root * c x^d
		}
		coeffs = next
	}
	// Coefficients must be 0/1 if the product really is over GF(2).
	p := make(Poly, len(coeffs))
	for d, c := range coeffs {
		if c != 0 && c != 1 {
			panic(fmt.Sprintf("gf2: minimal polynomial of α^%d has non-binary coefficient %d", i, c))
		}
		p[d] = uint8(c)
	}
	return p.norm()
}
