package obfuscate

import "pufatt/internal/telemetry"

// outputs counts obfuscated words produced — together with
// ResponsesPerOutput it gives the raw-response consumption rate of the
// whole PUF() pipeline.
var outputs = telemetry.Default().Counter("obfuscate_outputs_total",
	"Obfuscated output words produced by the two-phase XOR network.")
