package obfuscate

import (
	"testing"
	"testing/quick"

	"pufatt/internal/rng"
	"pufatt/internal/stats"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []int{0, -2, 3, 7} {
		if _, err := New(bad); err == nil {
			t.Errorf("width %d accepted", bad)
		}
	}
	o, err := New(32)
	if err != nil {
		t.Fatal(err)
	}
	if o.ResponseBits() != 32 {
		t.Errorf("ResponseBits = %d", o.ResponseBits())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3) did not panic")
		}
	}()
	MustNew(3)
}

func TestApplyValidation(t *testing.T) {
	o := MustNew(8)
	if _, err := o.Apply(make([][]uint8, 7)); err == nil {
		t.Error("7 responses accepted")
	}
	rs := make([][]uint8, 8)
	for i := range rs {
		rs[i] = make([]uint8, 8)
	}
	rs[3] = make([]uint8, 6)
	if _, err := o.Apply(rs); err == nil {
		t.Error("mismatched response width accepted")
	}
}

func TestKnownVector(t *testing.T) {
	// Width 4 (n=2). y = [b0 b1 b2 b3] folds to a = [b0^b2, b1^b3].
	o := MustNew(4)
	rs := [][]uint8{
		{1, 0, 0, 0}, // fold: [1,0]
		{0, 1, 0, 0}, // fold: [0,1]  → b0 = [1,0,0,1]
		{0, 0, 1, 0}, // fold: [1,0]
		{0, 0, 0, 1}, // fold: [0,1]  → b1 = [1,0,0,1]
		{1, 0, 1, 0}, // fold: [0,0]
		{0, 1, 0, 1}, // fold: [0,0]  → b2 = [0,0,0,0]
		{1, 1, 0, 0}, // fold: [1,1]
		{0, 0, 1, 1}, // fold: [1,1]  → b3 = [1,1,1,1]
	}
	z, err := o.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{1, 1, 1, 1} // b0^b1^b2^b3 = 0 ^ 0 ^ [1,1,1,1]... recompute: [1001]^[1001]=0000; ^0000=0000; ^1111=1111
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("z = %v, want %v", z, want)
		}
	}
}

func TestLinearity(t *testing.T) {
	// The network is GF(2)-linear in its inputs: z(a ⊕ b) = z(a) ⊕ z(b)
	// where ⊕ is element-wise over all eight responses.
	o := MustNew(16)
	src := rng.New(1)
	mk := func() [][]uint8 {
		rs := make([][]uint8, 8)
		for i := range rs {
			rs[i] = make([]uint8, 16)
			src.Bits(rs[i])
		}
		return rs
	}
	for trial := 0; trial < 50; trial++ {
		a, b := mk(), mk()
		xored := make([][]uint8, 8)
		for i := range xored {
			xored[i] = make([]uint8, 16)
			for j := range xored[i] {
				xored[i][j] = a[i][j] ^ b[i][j]
			}
		}
		za := o.MustApply(a)
		zb := o.MustApply(b)
		zx := o.MustApply(xored)
		for j := range zx {
			if zx[j] != za[j]^zb[j] {
				t.Fatal("network is not linear")
			}
		}
	}
}

func TestEachOutputBitDependsOnEightInputBits(t *testing.T) {
	// Flipping any single input bit flips exactly one output bit, and each
	// output bit is reachable from exactly 8 input positions.
	o := MustNew(8)
	base := make([][]uint8, 8)
	for i := range base {
		base[i] = make([]uint8, 8)
	}
	z0 := o.MustApply(base)
	influence := make([]int, 8) // per output bit
	for r := 0; r < 8; r++ {
		for b := 0; b < 8; b++ {
			base[r][b] = 1
			z := o.MustApply(base)
			base[r][b] = 0
			flips := 0
			for j := range z {
				if z[j] != z0[j] {
					flips++
					influence[j]++
				}
			}
			if flips != 1 {
				t.Fatalf("flipping input (%d,%d) flipped %d output bits, want 1", r, b, flips)
			}
		}
	}
	for j, n := range influence {
		if n != 8 {
			t.Errorf("output bit %d influenced by %d input bits, want 8", j, n)
		}
	}
}

func TestObfuscationReducesBias(t *testing.T) {
	// Inputs with per-bit bias 0.7 → XOR of 8 such bits has bias ≈ 0.5 +
	// 2^7·(0.2)^8 ≈ 0.5003. The network's whole purpose in Figure 3.
	o := MustNew(16)
	src := rng.New(2)
	const trials = 4000
	rawOnes, obfOnes := 0, 0
	for trial := 0; trial < trials; trial++ {
		rs := make([][]uint8, 8)
		for i := range rs {
			rs[i] = make([]uint8, 16)
			for j := range rs[i] {
				if src.Float64() < 0.7 {
					rs[i][j] = 1
				}
			}
		}
		rawOnes += stats.HammingWeight(rs[0])
		obfOnes += stats.HammingWeight(o.MustApply(rs))
	}
	rawBias := float64(rawOnes) / (trials * 16)
	obfBias := float64(obfOnes) / (trials * 16)
	if rawBias < 0.65 {
		t.Fatalf("raw bias %v, generator broken", rawBias)
	}
	if obfBias < 0.47 || obfBias > 0.53 {
		t.Errorf("obfuscated bias %v, want ~0.5", obfBias)
	}
}

func TestApplyDoesNotMutateInputs(t *testing.T) {
	o := MustNew(4)
	rs := make([][]uint8, 8)
	for i := range rs {
		rs[i] = []uint8{1, 0, 1, 0}
	}
	o.MustApply(rs)
	for i := range rs {
		for j, want := range []uint8{1, 0, 1, 0} {
			if rs[i][j] != want {
				t.Fatal("Apply mutated its input")
			}
		}
	}
}

func TestApplyDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		o := MustNew(8)
		src := rng.New(seed)
		rs := make([][]uint8, 8)
		for i := range rs {
			rs[i] = make([]uint8, 8)
			src.Bits(rs[i])
		}
		a := o.MustApply(rs)
		b := o.MustApply(rs)
		return stats.HammingDistance(a, b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
