// Package obfuscate implements the two-phase XOR obfuscation network of the
// paper's Section 2, which hardens the ALU PUF against machine-learning
// modeling attacks (Rührmair et al.).
//
// Phase 1 folds each 2n-bit PUF response y in half with XOR:
//
//	a[i] = y[i] XOR y[i+n]   for 0 <= i < n,
//
// and concatenates the folded halves of two responses into a 2n-bit word
// b = a0 ‖ a1. Phase 2 XORs four such words into the 2n-bit output
// z = b0 ⊕ b1 ⊕ b2 ⊕ b3. One obfuscated output therefore consumes eight raw
// PUF responses, and every output bit is the XOR of eight raw response bits
// drawn from four independent challenges — the property that explodes the
// hypothesis space a delay-model attack must search.
//
// In hardware, the intermediate registers of this network are invisible to
// software running on the processor; this package mirrors that by exposing
// only the final output (intermediate words never leave Apply).
package obfuscate

import "fmt"

// ResponsesPerOutput is the number of raw PUF responses consumed per
// obfuscated output word (two per phase-1 word, four phase-1 words).
const ResponsesPerOutput = 8

// Network is an XOR obfuscation network for 2n-bit PUF responses.
type Network struct {
	half int // n
}

// New returns a network for the given response width, which must be even
// and positive.
func New(responseBits int) (*Network, error) {
	if responseBits <= 0 || responseBits%2 != 0 {
		return nil, fmt.Errorf("obfuscate: response width %d must be positive and even", responseBits)
	}
	return &Network{half: responseBits / 2}, nil
}

// MustNew is New that panics on error.
func MustNew(responseBits int) *Network {
	o, err := New(responseBits)
	if err != nil {
		panic(err)
	}
	return o
}

// ResponseBits returns the raw-response width 2n the network accepts (equal
// to the output width).
func (o *Network) ResponseBits() int { return 2 * o.half }

// fold XORs the upper half of y onto the lower half (phase 1 for one
// response), writing n bits into dst.
func (o *Network) fold(dst, y []uint8) {
	for i := 0; i < o.half; i++ {
		dst[i] = (y[i] ^ y[i+o.half]) & 1
	}
}

// Apply runs the full two-phase network over exactly eight raw responses of
// width ResponseBits and returns the obfuscated output z of the same width.
func (o *Network) Apply(responses [][]uint8) ([]uint8, error) {
	if len(responses) != ResponsesPerOutput {
		return nil, fmt.Errorf("obfuscate: %d responses supplied, need %d", len(responses), ResponsesPerOutput)
	}
	width := 2 * o.half
	for i, y := range responses {
		if len(y) != width {
			return nil, fmt.Errorf("obfuscate: response %d has %d bits, want %d", i, len(y), width)
		}
	}
	z := make([]uint8, width)
	b := make([]uint8, width)
	for j := 0; j < 4; j++ {
		// Phase 1: b_j = fold(y_{2j}) ‖ fold(y_{2j+1}).
		o.fold(b[:o.half], responses[2*j])
		o.fold(b[o.half:], responses[2*j+1])
		// Phase 2 accumulation.
		for i := range z {
			z[i] ^= b[i]
		}
	}
	outputs.Inc()
	return z, nil
}

// MustApply is Apply that panics on error, for callers that construct the
// response set programmatically.
func (o *Network) MustApply(responses [][]uint8) []uint8 {
	z, err := o.Apply(responses)
	if err != nil {
		panic(err)
	}
	return z
}
