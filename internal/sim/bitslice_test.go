package sim

import (
	"fmt"
	"math"
	"testing"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
	"pufatt/internal/rng"
)

// transposeInputs packs per-challenge input vectors into lane words (bit l =
// challenge l), zero-filling missing tail lanes.
func transposeInputs(challenges [][]uint8, nIn int) []uint64 {
	words := make([]uint64, nIn)
	for j := 0; j < nIn; j++ {
		var w uint64
		for l, ch := range challenges {
			w |= uint64(ch[j]&1) << l
		}
		words[j] = w
	}
	return words
}

// assertBlockMatchesScalar runs the same block through the scalar and sliced
// engines and compares every gate's value and arrival bit-for-bit per lane.
func assertBlockMatchesScalar(t *testing.T, nl *netlist.Netlist, tab delay.Table, scalar *Engine, sliced *SlicedEngine, challenges [][]uint8) {
	t.Helper()
	for _, g := range nl.Outputs {
		if sliced.ArrivalElided(g) {
			t.Fatalf("primary output net %d has no recoverable arrival", g)
		}
	}
	sliced.RunBlock(transposeInputs(challenges, len(nl.Inputs)), len(challenges))
	for l, ch := range challenges {
		vals, arr := scalar.Run(ch)
		for g := range nl.Gates {
			if got := sliced.Value(g, l); got != vals[g] {
				t.Fatalf("lane %d net %d: value %d, want %d", l, g, got, vals[g])
			}
			if sliced.ArrivalElided(g) {
				continue // fused interior net: arrival intentionally not kept
			}
			var got float64
			if row := sliced.ArrivalLanes(g); row != nil {
				got = row[l]
			} else {
				got = sliced.ConstArrival(g)
			}
			if math.Float64bits(got) != math.Float64bits(arr[g]) {
				t.Fatalf("lane %d net %d (%v): arrival %v, want %v",
					l, g, nl.Gates[g].Kind, got, arr[g])
			}
		}
	}
}

func randomChallenges(src *rng.Source, n, bits int) [][]uint8 {
	out := make([][]uint8, n)
	for k := range out {
		out[k] = make([]uint8, bits)
		src.Bits(out[k])
	}
	return out
}

func TestSlicedMatchesScalarPUFDatapath(t *testing.T) {
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: 32, UseCarry: true})
	nl := dp.Net
	tab := randomTable(nl, rng.New(11))
	scalar := NewEngine(nl, tab)
	sliced := NewSlicedEngine(nl, tab)
	if !sliced.Fused() {
		t.Fatal("RCA PUF datapath did not compile to the fused carry-chain program")
	}
	src := rng.New(12)
	for _, lanes := range []int{1, 3, 63, Lanes} {
		assertBlockMatchesScalar(t, nl, tab, scalar, sliced,
			randomChallenges(src, lanes, len(nl.Inputs)))
	}
}

func TestSlicedMatchesScalarCLADatapath(t *testing.T) {
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: 16, Adder: netlist.AdderCLA})
	nl := dp.Net
	tab := randomTable(nl, rng.New(21))
	scalar := NewEngine(nl, tab)
	sliced := NewSlicedEngine(nl, tab)
	if sliced.Fused() {
		t.Fatal("CLA datapath unexpectedly matched the ripple-carry program")
	}
	src := rng.New(22)
	for _, lanes := range []int{1, 17, Lanes} {
		assertBlockMatchesScalar(t, nl, tab, scalar, sliced,
			randomChallenges(src, lanes, len(nl.Inputs)))
	}
}

func TestSlicedMatchesScalarStandaloneAdders(t *testing.T) {
	for _, tc := range []struct {
		name string
		nl   *netlist.Netlist
	}{
		{"rca8", netlist.BuildRCANetlist(8)},
		{"cla8", netlist.BuildCLANetlist(8)},
		{"fa", netlist.BuildFullAdderNetlist()},
		{"alu4", netlist.BuildALUNetlist(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tab := randomTable(tc.nl, rng.New(31))
			scalar := NewEngine(tc.nl, tab)
			sliced := NewSlicedEngine(tc.nl, tab)
			src := rng.New(32)
			assertBlockMatchesScalar(t, tc.nl, tab, scalar, sliced,
				randomChallenges(src, Lanes, len(tc.nl.Inputs)))
		})
	}
}

// randomNetlist builds an arbitrary DAG over every gate kind with arities up
// to 5, to exercise the generic kernels far from adder structure.
func randomNetlist(src *rng.Source, nGates int) *netlist.Netlist {
	b := netlist.NewBuilder()
	var nets []int
	for i := 0; i < 6; i++ {
		nets = append(nets, b.Input(fmt.Sprintf("i%d", i)))
	}
	nets = append(nets, b.Const(0), b.Const(1))
	kinds := []netlist.Kind{
		netlist.Buf, netlist.Not, netlist.And, netlist.Or,
		netlist.Nand, netlist.Nor, netlist.Xor, netlist.Xnor,
	}
	for i := 0; i < nGates; i++ {
		k := kinds[src.Uint64()%uint64(len(kinds))]
		arity := 1
		if k != netlist.Buf && k != netlist.Not {
			arity = 2 + int(src.Uint64()%4)
		}
		fi := make([]int, arity)
		for j := range fi {
			fi[j] = nets[src.Uint64()%uint64(len(nets))]
		}
		nets = append(nets, b.Gate(k, fi...))
	}
	b.Output("y", nets[len(nets)-1])
	return b.MustBuild()
}

func TestSlicedMatchesScalarRandomNetlists(t *testing.T) {
	src := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		nl := randomNetlist(src, 60)
		tab := randomTable(nl, src)
		scalar := NewEngine(nl, tab)
		sliced := NewSlicedEngine(nl, tab)
		assertBlockMatchesScalar(t, nl, tab, scalar, sliced,
			randomChallenges(src, Lanes, len(nl.Inputs)))
	}
}

func TestSlicedSetDelaysAndClone(t *testing.T) {
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: 16})
	nl := dp.Net
	tabA := randomTable(nl, rng.New(51))
	tabB := randomTable(nl, rng.New(52))
	scalar := NewEngine(nl, tabA)
	sliced := NewSlicedEngine(nl, tabA)
	src := rng.New(53)
	assertBlockMatchesScalar(t, nl, tabA, scalar, sliced,
		randomChallenges(src, Lanes, len(nl.Inputs)))

	// A clone taken now keeps table A even after the original moves to B.
	clone := sliced.Clone()
	scalar.SetDelays(tabB)
	sliced.SetDelays(tabB)
	assertBlockMatchesScalar(t, nl, tabB, scalar, sliced,
		randomChallenges(src, Lanes, len(nl.Inputs)))
	scalarA := NewEngine(nl, tabA)
	assertBlockMatchesScalar(t, nl, tabA, scalarA, clone,
		randomChallenges(src, Lanes, len(nl.Inputs)))
}

func TestSlicedPoolReuseAndSetDelays(t *testing.T) {
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: 8})
	nl := dp.Net
	tabA := randomTable(nl, rng.New(61))
	tabB := randomTable(nl, rng.New(62))
	p := NewSlicedPool(nl, tabA)
	e1 := p.Get()
	e2 := p.Get()
	p.Put(e1)
	if p.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", p.Idle())
	}
	if got := p.Get(); got != e1 {
		t.Fatal("pool did not reuse the freed engine")
	}
	p.Put(e1)
	p.Put(e2)
	p.SetDelays(tabB)
	scalar := NewEngine(nl, tabB)
	src := rng.New(63)
	for i := 0; i < 2; i++ {
		e := p.Get()
		assertBlockMatchesScalar(t, nl, tabB, scalar, e,
			randomChallenges(src, Lanes, len(nl.Inputs)))
		p.Put(e)
	}
}

func BenchmarkSlicedBlockRCA(b *testing.B) {
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: 32, UseCarry: true})
	nl := dp.Net
	eng := NewSlicedEngine(nl, randomTable(nl, rng.New(71)))
	src := rng.New(72)
	words := make([]uint64, len(nl.Inputs))
	for i := range words {
		words[i] = src.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunBlock(words, Lanes)
	}
	perChallenge := float64(b.Elapsed().Nanoseconds()) / float64(b.N*Lanes)
	b.ReportMetric(perChallenge, "ns/challenge")
	b.ReportMetric(float64(eng.GatesPerRun())*1e9/perChallenge, "gate-evals/s")
}

func BenchmarkSlicedBlockCLA(b *testing.B) {
	dp := netlist.BuildPUFDatapath(netlist.PUFDatapathConfig{Width: 32, UseCarry: true, Adder: netlist.AdderCLA})
	nl := dp.Net
	eng := NewSlicedEngine(nl, randomTable(nl, rng.New(73)))
	src := rng.New(74)
	words := make([]uint64, len(nl.Inputs))
	for i := range words {
		words[i] = src.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunBlock(words, Lanes)
	}
	perChallenge := float64(b.Elapsed().Nanoseconds()) / float64(b.N*Lanes)
	b.ReportMetric(perChallenge, "ns/challenge")
}
