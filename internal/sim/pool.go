package sim

import (
	"sync"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
)

// Pool hands out levelized Engines over one shared netlist/delay-table pair
// for parallel batch evaluation. Engines are cloned on demand (shared
// immutable netlist, private scratch) and returned to a free list on Put, so
// a steady-state batch workload allocates nothing per batch: worker counts
// settle after the first batch and every later Get is a free-list pop.
//
// Unlike sync.Pool the free list is never dropped by the garbage collector,
// which keeps Get/Put deterministic and the engine count observable
// (telemetry gauge sim_pool_idle_engines).
type Pool struct {
	mu    sync.Mutex
	proto *Engine
	free  []*Engine
}

// NewPool returns a pool of engines over the netlist/delay-table pair.
func NewPool(nl *netlist.Netlist, delays delay.Table) *Pool {
	return &Pool{proto: NewEngine(nl, delays)}
}

// Get returns an engine, reusing a pooled clone when one is free. The caller
// owns it until Put. Engines keep whatever delay table they last ran with;
// callers that sweep operating corners must SetDelays after Get.
func (p *Pool) Get() *Engine {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		poolHits.Inc()
		poolIdle.Add(-1)
		return e
	}
	p.mu.Unlock()
	return p.proto.Clone()
}

// Put returns an engine to the free list for reuse. Only engines obtained
// from this pool (all sharing the pool's netlist) may be returned.
func (p *Pool) Put(e *Engine) {
	if e == nil {
		return
	}
	if e.nl != p.proto.nl {
		panic("sim: Put of an engine from a different netlist")
	}
	p.mu.Lock()
	p.free = append(p.free, e)
	p.mu.Unlock()
	poolIdle.Add(1)
}

// SetDelays replaces the delay table handed to engines cloned from now on
// and on every currently pooled engine (engines checked out keep their old
// table until their next SetDelays).
func (p *Pool) SetDelays(delays delay.Table) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.proto.SetDelays(delays)
	for _, e := range p.free {
		e.SetDelays(delays)
	}
}

// Idle returns how many engines are currently pooled.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// GatesPerRun returns the per-Run gate count of the pool's engines.
func (p *Pool) GatesPerRun() int { return p.proto.GatesPerRun() }
