// Package sim provides the two gate-level timing engines used to evaluate
// the ALU PUF.
//
// The levelized engine (Arrival) performs floating-mode arrival-time
// analysis in a single topological pass: for every net it computes both its
// Boolean value and the time at which that value becomes determined, taking
// controlling values into account (an AND output is determined as soon as
// its earliest 0-input arrives). This is the engine used for bulk
// challenge/response generation — the paper evaluates 10^6 challenges per
// experiment — because it is allocation-free per query and an order of
// magnitude faster than event-driven simulation.
//
// The event-driven engine (EventSim) is a classic inertial-delay logic
// simulator with a time-ordered event queue. It reproduces actual signal
// transitions, including glitches on the ripple-carry chain, and supports
// "latch at time T" semantics: reading every net's value at an arbitrary
// cutoff time. That is exactly the behaviour needed to model the
// overclocking attack of Section 4.2, where a too-short clock period latches
// the PUF output flip-flops before the adder has settled.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
)

// Engine computes values and arrival times for a fixed netlist/delay-table
// pair using the levelized floating-mode analysis. It reuses internal
// buffers across calls; an Engine is not safe for concurrent use.
type Engine struct {
	nl      *netlist.Netlist
	delays  delay.Table
	values  []uint8
	arrival []float64
}

// NewEngine returns a levelized engine over the netlist with the given
// per-gate delay table.
func NewEngine(nl *netlist.Netlist, delays delay.Table) *Engine {
	if len(delays.Ps) != len(nl.Gates) {
		panic(fmt.Sprintf("sim: delay table of %d entries for %d gates", len(delays.Ps), len(nl.Gates)))
	}
	return &Engine{
		nl:      nl,
		delays:  delays,
		values:  make([]uint8, len(nl.Gates)),
		arrival: make([]float64, len(nl.Gates)),
	}
}

// SetDelays replaces the delay table (e.g. for a new operating corner).
func (e *Engine) SetDelays(delays delay.Table) {
	if len(delays.Ps) != len(e.nl.Gates) {
		panic(fmt.Sprintf("sim: delay table of %d entries for %d gates", len(delays.Ps), len(e.nl.Gates)))
	}
	e.delays = delays
}

// Clone returns a new Engine over the same (immutable, shared) netlist and
// delay table but with its own value/arrival scratch buffers. Cloning is the
// cheap path to parallel evaluation: clones may run concurrently with each
// other and with the original, as long as nobody calls SetDelays while runs
// are in flight. See Pool for clone reuse.
func (e *Engine) Clone() *Engine {
	engineClones.Inc()
	return &Engine{
		nl:      e.nl,
		delays:  e.delays,
		values:  make([]uint8, len(e.nl.Gates)),
		arrival: make([]float64, len(e.nl.Gates)),
	}
}

// Netlist returns the engine's netlist (shared, read-only).
func (e *Engine) Netlist() *netlist.Netlist { return e.nl }

// GatesPerRun returns how many gates one Run call evaluates — the
// denominator of the gate-evals/s throughput metric.
func (e *Engine) GatesPerRun() int { return len(e.nl.Order) }

// Run evaluates the netlist for the given primary-input vector.
//
// Aliasing contract: the returned slices are owned by the engine and are
// overwritten in place by the next Run call — callers must finish reading
// (or copy) them before re-running the engine, and must never retain them
// across calls. TestRunAliasingContract enforces this so that callers which
// accidentally rely on stable storage fail loudly rather than silently when
// engine internals change.
func (e *Engine) Run(inputs []uint8) (values []uint8, arrival []float64) {
	nl := e.nl
	if len(inputs) != len(nl.Inputs) {
		panic(fmt.Sprintf("sim: %d inputs for netlist with %d", len(inputs), len(nl.Inputs)))
	}
	for i, g := range nl.Inputs {
		e.values[g] = inputs[i] & 1
		e.arrival[g] = 0
	}
	for _, g := range nl.Order {
		gate := &nl.Gates[g]
		switch gate.Kind {
		case netlist.Input:
			continue
		case netlist.Const0:
			e.values[g] = 0
			e.arrival[g] = 0
			continue
		case netlist.Const1:
			e.values[g] = 1
			e.arrival[g] = 0
			continue
		}
		d := e.delays.Ps[g]
		ctrl, hasCtrl := gate.Kind.ControllingValue()
		var val uint8
		var t float64
		switch gate.Kind {
		case netlist.Buf:
			val = e.values[gate.Fanin[0]]
			t = e.arrival[gate.Fanin[0]]
		case netlist.Not:
			val = e.values[gate.Fanin[0]] ^ 1
			t = e.arrival[gate.Fanin[0]]
		default:
			// Compute value and the determination time in one scan.
			controlled := false
			tCtrl := math.Inf(1)
			tMax := 0.0
			switch gate.Kind {
			case netlist.And, netlist.Nand:
				val = 1
			case netlist.Or, netlist.Nor:
				val = 0
			default:
				val = 0
			}
			for _, f := range gate.Fanin {
				v := e.values[f]
				ta := e.arrival[f]
				switch gate.Kind {
				case netlist.And, netlist.Nand:
					val &= v
				case netlist.Or, netlist.Nor:
					val |= v
				case netlist.Xor, netlist.Xnor:
					val ^= v
				}
				if hasCtrl && v == ctrl {
					controlled = true
					if ta < tCtrl {
						tCtrl = ta
					}
				}
				if ta > tMax {
					tMax = ta
				}
			}
			switch gate.Kind {
			case netlist.Nand, netlist.Nor, netlist.Xnor:
				val ^= 1
			}
			if controlled {
				t = tCtrl
			} else {
				t = tMax
			}
		}
		e.values[g] = val
		e.arrival[g] = t + d
	}
	levelizedPasses.Inc()
	gateEvals.Add(uint64(len(nl.Order)))
	return e.values, e.arrival
}

// event is one scheduled output transition in the event-driven simulator.
type event struct {
	t    float64
	seq  uint64
	gate int
	val  uint8
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// EventSim is an inertial-delay event-driven logic simulator.
type EventSim struct {
	nl         *netlist.Netlist
	delays     delay.Table
	values     []uint8
	lastChange []float64
	pendSeq    []uint64 // active pending-event sequence per gate, 0 = none
	pendVal    []uint8
	queue      eventHeap
	now        float64
	seq        uint64
	transits   uint64
	unflushed  uint64 // events processed, not yet flushed to the counter
	// OnTransition, when set, observes every committed signal transition
	// (waveform dumping, activity analysis). It must not mutate the
	// simulator.
	OnTransition func(gate int, t float64, v uint8)
}

// NewEventSim returns an event-driven simulator over the netlist with the
// given per-gate delay table, initialised to the all-zero quiescent state.
func NewEventSim(nl *netlist.Netlist, delays delay.Table) *EventSim {
	if len(delays.Ps) != len(nl.Gates) {
		panic(fmt.Sprintf("sim: delay table of %d entries for %d gates", len(delays.Ps), len(nl.Gates)))
	}
	s := &EventSim{
		nl:         nl,
		delays:     delays,
		values:     make([]uint8, len(nl.Gates)),
		lastChange: make([]float64, len(nl.Gates)),
		pendSeq:    make([]uint64, len(nl.Gates)),
		pendVal:    make([]uint8, len(nl.Gates)),
	}
	s.Settle(make([]uint8, len(nl.Inputs)))
	return s
}

// Settle initialises the simulator to the quiescent state reached with the
// given primary inputs: all nets take their zero-delay values and all
// last-change times reset to 0; time restarts at 0.
func (s *EventSim) Settle(inputs []uint8) {
	val := s.nl.Evaluate(inputs)
	copy(s.values, val)
	for i := range s.lastChange {
		s.lastChange[i] = 0
		s.pendSeq[i] = 0
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.transits = 0
	s.flushTelemetry()
}

// flushTelemetry publishes locally-batched event counts (one atomic add
// instead of one per event in the simulation loop).
func (s *EventSim) flushTelemetry() {
	if s.unflushed > 0 {
		eventsProcessed.Add(s.unflushed)
		s.unflushed = 0
	}
}

// Apply changes the primary inputs at the current simulation time and
// schedules the resulting gate evaluations. Inputs transition with zero
// delay.
func (s *EventSim) Apply(inputs []uint8) {
	if len(inputs) != len(s.nl.Inputs) {
		panic(fmt.Sprintf("sim: %d inputs for netlist with %d", len(inputs), len(s.nl.Inputs)))
	}
	for i, g := range s.nl.Inputs {
		v := inputs[i] & 1
		if s.values[g] == v {
			continue
		}
		s.values[g] = v
		s.lastChange[g] = s.now
		s.transits++
		if s.OnTransition != nil {
			s.OnTransition(g, s.now, v)
		}
		for _, f := range s.nl.Fanout[g] {
			s.scheduleGate(f)
		}
	}
}

// scheduleGate re-evaluates gate f against current input values and
// schedules or cancels its output transition (inertial delay: a newer
// evaluation supersedes a pending one).
func (s *EventSim) scheduleGate(f int) {
	gate := &s.nl.Gates[f]
	switch gate.Kind {
	case netlist.Input, netlist.Const0, netlist.Const1:
		return
	}
	var buf [8]uint8
	in := buf[:0]
	for _, fn := range gate.Fanin {
		in = append(in, s.values[fn])
	}
	newVal := gate.Kind.Eval(in)
	if s.pendSeq[f] != 0 {
		if s.pendVal[f] == newVal {
			return // pending transition already heads to the right value
		}
		s.pendSeq[f] = 0 // cancel: the pulse was swallowed or superseded
	}
	if newVal == s.values[f] {
		return
	}
	s.seq++
	s.pendSeq[f] = s.seq
	s.pendVal[f] = newVal
	s.queue.pushEvent(event{t: s.now + s.delays.Ps[f], seq: s.seq, gate: f, val: newVal})
}

// step processes the earliest event. It reports whether an event was
// processed.
func (s *EventSim) step() bool {
	for len(s.queue) > 0 {
		ev := s.queue.popEvent()
		if s.pendSeq[ev.gate] != ev.seq {
			continue // cancelled
		}
		s.pendSeq[ev.gate] = 0
		s.now = ev.t
		s.unflushed++
		if s.values[ev.gate] == ev.val {
			return true
		}
		s.values[ev.gate] = ev.val
		s.lastChange[ev.gate] = ev.t
		s.transits++
		if s.OnTransition != nil {
			s.OnTransition(ev.gate, ev.t, ev.val)
		}
		for _, f := range s.nl.Fanout[ev.gate] {
			s.scheduleGate(f)
		}
		return true
	}
	return false
}

// Run processes events until the circuit is quiescent and returns the final
// simulation time.
func (s *EventSim) Run() float64 {
	for s.step() {
	}
	s.flushTelemetry()
	return s.now
}

// RunUntil processes events with time <= t, then advances the clock to t.
// Pending events beyond t remain queued. This is the latch-at-time-T
// primitive used by the overclocking model.
func (s *EventSim) RunUntil(t float64) {
	for len(s.queue) > 0 {
		// Drop stale heads so peek sees a live event.
		if s.pendSeq[s.queue.peek().gate] != s.queue.peek().seq {
			s.queue.popEvent()
			continue
		}
		if s.queue.peek().t > t {
			break
		}
		s.step()
	}
	if t > s.now {
		s.now = t
	}
	s.flushTelemetry()
}

// Value returns the current value of net g.
func (s *EventSim) Value(g int) uint8 { return s.values[g] }

// LastChange returns the time of the most recent transition on net g (0 if
// it has not changed since Settle).
func (s *EventSim) LastChange(g int) float64 { return s.lastChange[g] }

// Now returns the current simulation time.
func (s *EventSim) Now() float64 { return s.now }

// Pending reports whether any events remain queued.
func (s *EventSim) Pending() bool {
	for len(s.queue) > 0 {
		if s.pendSeq[s.queue.peek().gate] == s.queue.peek().seq {
			return true
		}
		s.queue.popEvent()
	}
	return false
}

// Transitions returns the total number of signal transitions simulated since
// the last Settle; a proxy for switching activity (and dynamic power).
func (s *EventSim) Transitions() uint64 { return s.transits }
