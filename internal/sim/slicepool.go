package sim

import (
	"sync"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
)

// SlicedPool is Pool's bitsliced sibling: it hands out SlicedEngines over
// one shared netlist/delay-table pair for parallel block evaluation, with
// the same never-dropped free list and telemetry.
type SlicedPool struct {
	mu    sync.Mutex
	proto *SlicedEngine
	free  []*SlicedEngine
}

// NewSlicedPool returns a pool of bitsliced engines over the netlist/delay
// pair.
func NewSlicedPool(nl *netlist.Netlist, delays delay.Table) *SlicedPool {
	return &SlicedPool{proto: NewSlicedEngine(nl, delays)}
}

// Get returns an engine, reusing a pooled clone when one is free. The caller
// owns it until Put. Engines keep whatever delay table they last ran with;
// callers that sweep operating corners must SetDelays after Get.
func (p *SlicedPool) Get() *SlicedEngine {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		poolHits.Inc()
		poolIdle.Add(-1)
		return e
	}
	p.mu.Unlock()
	return p.proto.Clone()
}

// Put returns an engine to the free list for reuse. Only engines obtained
// from this pool (all sharing the pool's netlist) may be returned.
func (p *SlicedPool) Put(e *SlicedEngine) {
	if e == nil {
		return
	}
	if e.nl != p.proto.nl {
		panic("sim: Put of a sliced engine from a different netlist")
	}
	p.mu.Lock()
	p.free = append(p.free, e)
	p.mu.Unlock()
	poolIdle.Add(1)
}

// SetDelays replaces the delay table handed to engines cloned from now on
// and on every currently pooled engine (engines checked out keep their old
// table until their next SetDelays).
func (p *SlicedPool) SetDelays(delays delay.Table) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.proto.SetDelays(delays)
	for _, e := range p.free {
		e.SetDelays(delays)
	}
}

// Idle returns how many engines are currently pooled.
func (p *SlicedPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// GatesPerRun returns the per-lane gate count of the pool's engines.
func (p *SlicedPool) GatesPerRun() int { return p.proto.GatesPerRun() }

// Fused reports whether the pool's engines run the fused ripple-carry
// program.
func (p *SlicedPool) Fused() bool { return p.proto.Fused() }
