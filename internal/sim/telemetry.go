package sim

import "pufatt/internal/telemetry"

// The simulation engines are the innermost hot loop of the whole stack (a
// paper-scale experiment evaluates 10^6 challenges), so instrumentation is
// batched: the levelized engine does two atomic adds per pass, and the
// event simulator accumulates locally and flushes one atomic add per
// Run/RunUntil/Settle.
var (
	levelizedPasses = telemetry.Default().Counter("sim_levelized_passes_total",
		"Levelized floating-mode evaluation passes (one per Engine.Run).")
	gateEvals = telemetry.Default().Counter("sim_gate_evals_total",
		"Effective gates evaluated by the levelized engines (a bitsliced pass counts gates x active lanes).")
	bitslicePasses = telemetry.Default().Counter("sim_bitslice_passes_total",
		"Bitsliced 64-lane evaluation passes (one per SlicedEngine.RunBlock).")
	eventsProcessed = telemetry.Default().Counter("sim_events_processed_total",
		"Events processed by the event-driven simulator.")
	engineClones = telemetry.Default().Counter("sim_engine_clones_total",
		"Levelized engines cloned for parallel evaluation.")
	poolHits = telemetry.Default().Counter("sim_pool_hits_total",
		"Pool Gets served from the free list (no clone needed).")
	poolIdle = telemetry.Default().Gauge("sim_pool_idle_engines",
		"Engines currently parked in pool free lists.")
)
