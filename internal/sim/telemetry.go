package sim

import "pufatt/internal/telemetry"

// The simulation engines are the innermost hot loop of the whole stack (a
// paper-scale experiment evaluates 10^6 challenges), so instrumentation is
// batched: the levelized engine does two atomic adds per pass, and the
// event simulator accumulates locally and flushes one atomic add per
// Run/RunUntil/Settle.
var (
	levelizedPasses = telemetry.Default().Counter("sim_levelized_passes_total",
		"Levelized floating-mode evaluation passes (one per Engine.Run).")
	gateEvals = telemetry.Default().Counter("sim_gate_evals_total",
		"Gates evaluated by the levelized engine.")
	eventsProcessed = telemetry.Default().Counter("sim_events_processed_total",
		"Events processed by the event-driven simulator.")
)
