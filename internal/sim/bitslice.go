package sim

import (
	"fmt"
	"math"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
)

// Bitsliced levelized evaluation: 64 challenges per machine word.
//
// The scalar Engine walks the netlist once per challenge. SlicedEngine walks
// it once per *block* of up to 64 challenges: every net carries a uint64
// value word (lane l = challenge l of the block) and, where needed, a
// 64-lane arrival row. Boolean evaluation lowers to one bitwise op per gate
// per block; the floating-mode arrival analysis lowers to a short branch-free
// float recurrence per lane.
//
// The branch elimination rests on an algebraic rewrite of the scalar rule.
// For a controlled gate (AND-class, controlling value c) the scalar engine
// computes
//
//	t = min over fanins with value c of their arrival   (if any fanin = c)
//	t = max over all fanin arrivals (floored at 0)      (otherwise)
//
// which is exactly
//
//	t = min( min_k(t_k + add[v_k]),  max_k(t_k) )
//
// with add[v] = 0 when v is the controlling value and +Inf otherwise: when
// the gate is controlled, every controlling fanin's arrival is ≤ the max, so
// the outer min picks the earliest controlling arrival; when it is not, every
// t_k + add[v_k] is +Inf and the max wins. All arrivals are ≥ 0 (delay tables
// clamp at build time) so the 0-floor is free, and no NaN can form (no 0·Inf,
// no Inf−Inf). The result is bit-identical to the scalar engine — the
// equivalence suite in core compares the two with Float64bits.
//
// Two further structural facts about the PUF datapath make the hot path
// cheap:
//
//   - Const-arrival gates. A gate whose fanins all arrive at fixed times has
//     a challenge-independent arrival (only its *value* varies). In a
//     full adder, s1 = Xor(a,b) and c1 = And(a,b) read only primary inputs
//     (arrival 0), so their arrivals are pure delay-table constants —
//     computed once per SetDelays, not per lane.
//
//   - Fused carry chains. The default datapath is two ripple-carry adders.
//     compileSliceProgram recognises that shape exactly (matchRCA) and emits
//     a fused per-stage kernel that keeps the carry arrival row in registers
//     and stores only the rows anything downstream reads: sums and carries.
//     Netlists that are not pure RCA chains (the carry-lookahead ALU, random
//     test circuits) fall back to exact generic per-gate kernels.
//
// Noise is *not* folded in here: per-challenge arbiter noise is drawn by the
// core batch layer from per-item rng.SubSeedN streams after the deltas are
// extracted, in the exact order of the scalar path, so determinism contracts
// (bit-identical at any worker count) carry over unchanged.

// Lanes is the bitslice width: challenges evaluated per RunBlock.
const Lanes = 64

var (
	posInf = math.Inf(1)
	// andAdd[v]/orAdd[v] turn a fanin (arrival t, value v) into a candidate
	// "earliest controlling input" term t + add[v]: finite exactly when v is
	// the gate's controlling value (AND: 0, OR: 1).
	andAdd = [2]float64{0, posInf}
	orAdd  = [2]float64{posInf, 0}
	// laneZeros is the arrival row of a chain's t=0 carry-in; read-only.
	laneZeros [Lanes]float64
)

// gateClass partitions gates by how the bitsliced pass handles them.
type gateClass uint8

const (
	// classZeroArr: primary inputs and constants — arrival identically 0.
	classZeroArr gateClass = iota
	// classConstArr: logic gates whose arrival is challenge-independent
	// (recomputed per delay table, never per lane).
	classConstArr
	// classVar: arrival computed per lane.
	classVar
)

// sliceProgram is the compiled, delay-independent form of a netlist, shared
// by every SlicedEngine clone over that netlist.
type sliceProgram struct {
	class []gateClass
	// stored[g] marks gates with a materialised arrival row (ArrivalLanes).
	stored []bool
	// rca is the fused ripple-carry program, nil when the netlist is not
	// exactly a disjoint set of full-adder chains.
	rca *rcaProgram
}

// rcaStage is one matched full-adder: s1 = Xor(a,b), c1 = And(a,b),
// sum = Xor(s1,cin), c2 = And(s1,cin), cout = Or(c1,c2).
type rcaStage struct {
	a, b int // operand nets, arrival 0
	s1   int // const arrival
	c1   int // const arrival
	sum  int
	c2   int
	cout int // next stage's cin
}

// rcaChain is a maximal run of full adders linked carry-out → carry-in,
// starting from a zero-arrival carry-in net.
type rcaChain struct {
	cin    int
	stages []rcaStage
}

type rcaProgram struct {
	chains []rcaChain
	// paired marks the two-ALU special case: exactly two chains of equal
	// length sharing the same operand nets per stage and the same carry-in
	// net. Their value words are then identical at every stage (same
	// operands, same carries — only delays differ), so one word computation
	// and one bit extraction serve both chains, and the two chains'
	// independent float recurrences interleave in one lane loop.
	paired bool
}

// compileSliceProgram classifies every gate and attempts the fused
// ripple-carry match. Classification is structural only (delay-independent);
// correctness never depends on it — the generic kernels are exact for every
// gate — it only decides which work can be hoisted out of the lane loops.
func compileSliceProgram(nl *netlist.Netlist) *sliceProgram {
	p := &sliceProgram{
		class:  make([]gateClass, len(nl.Gates)),
		stored: make([]bool, len(nl.Gates)),
	}
	for _, g := range nl.Order {
		gate := &nl.Gates[g]
		switch gate.Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			p.class[g] = classZeroArr
			continue
		}
		constArr := true
		switch gate.Kind {
		case netlist.Buf, netlist.Not, netlist.Xor, netlist.Xnor:
			// No controlling value: arrival = max(fanin arrivals) + d, so
			// the gate is const-arrival when every fanin is.
			for _, f := range gate.Fanin {
				if p.class[f] == classVar {
					constArr = false
					break
				}
			}
		default:
			// Controlled gates pick min-of-controlling vs max depending on
			// fanin *values*; their arrival is challenge-independent only in
			// the degenerate case where every fanin arrives at exactly 0
			// (either branch then yields 0).
			for _, f := range gate.Fanin {
				if p.class[f] != classZeroArr {
					constArr = false
					break
				}
			}
		}
		if constArr {
			p.class[g] = classConstArr
		} else {
			p.class[g] = classVar
		}
	}
	p.rca = matchRCA(nl, p.class)
	if p.rca != nil {
		for _, ch := range p.rca.chains {
			for _, st := range ch.stages {
				p.stored[st.sum] = true
				p.stored[st.cout] = true
			}
		}
	} else {
		for g, c := range p.class {
			p.stored[g] = c == classVar
		}
	}
	return p
}

// matchRCA recognises netlists that are exactly a disjoint set of standard
// full-adder ripple chains (the PUF datapath's two ALUs) and compiles them
// into the fused carry-chain program. It returns nil — generic fallback —
// unless *every* logic gate belongs to exactly one matched full adder and
// the adders link into clean chains.
func matchRCA(nl *netlist.Netlist, class []gateClass) *rcaProgram {
	otherFanin := func(g, not int) int {
		fi := nl.Gates[g].Fanin
		if fi[0] == not {
			return fi[1]
		}
		if fi[1] == not {
			return fi[0]
		}
		return -1
	}

	matched := make([]bool, len(nl.Gates))
	logic := 0
	type block struct {
		st  rcaStage
		cin int
	}
	var blocks []block
	byCout := make(map[int]int) // cout net → block index
	for s1 := range nl.Gates {
		g := &nl.Gates[s1]
		switch g.Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		logic++
		if g.Kind != netlist.Xor || len(g.Fanin) != 2 {
			continue
		}
		a, b := g.Fanin[0], g.Fanin[1]
		if class[a] != classZeroArr || class[b] != classZeroArr {
			continue
		}
		fo := nl.Fanout[s1]
		if len(fo) != 2 {
			continue
		}
		sum, c2 := fo[0], fo[1]
		if nl.Gates[sum].Kind == netlist.And && nl.Gates[c2].Kind == netlist.Xor {
			sum, c2 = c2, sum
		}
		if nl.Gates[sum].Kind != netlist.Xor || nl.Gates[c2].Kind != netlist.And ||
			len(nl.Gates[sum].Fanin) != 2 || len(nl.Gates[c2].Fanin) != 2 {
			continue
		}
		cin := otherFanin(sum, s1)
		if cin < 0 || cin == s1 || otherFanin(c2, s1) != cin {
			continue
		}
		if len(nl.Fanout[c2]) != 1 {
			continue
		}
		cout := nl.Fanout[c2][0]
		if nl.Gates[cout].Kind != netlist.Or || len(nl.Gates[cout].Fanin) != 2 {
			continue
		}
		c1 := otherFanin(cout, c2)
		if c1 < 0 {
			continue
		}
		cg := &nl.Gates[c1]
		if cg.Kind != netlist.And || len(cg.Fanin) != 2 ||
			len(nl.Fanout[c1]) != 1 || nl.Fanout[c1][0] != cout {
			continue
		}
		if !(cg.Fanin[0] == a && cg.Fanin[1] == b) && !(cg.Fanin[0] == b && cg.Fanin[1] == a) {
			continue
		}
		ok := true
		for _, m := range []int{s1, sum, c1, c2, cout} {
			if matched[m] {
				ok = false
				break
			}
		}
		if !ok {
			return nil // overlapping matches: not a clean chain structure
		}
		for _, m := range []int{s1, sum, c1, c2, cout} {
			matched[m] = true
		}
		blocks = append(blocks, block{
			st:  rcaStage{a: a, b: b, s1: s1, c1: c1, sum: sum, c2: c2, cout: cout},
			cin: cin,
		})
		byCout[cout] = len(blocks) - 1
	}
	if 5*len(blocks) != logic {
		return nil // some logic falls outside the full-adder pattern
	}

	// Link blocks into chains: a block whose cin is another block's cout
	// follows it; a block whose cin arrives at t=0 starts a chain.
	next := make(map[int]int)
	hasPred := make([]bool, len(blocks))
	for i, b := range blocks {
		if j, ok := byCout[b.cin]; ok {
			if _, dup := next[j]; dup {
				return nil // one carry feeding two stages: a tree, not a chain
			}
			next[j] = i
			hasPred[i] = true
		} else if class[b.cin] != classZeroArr {
			return nil // carry-in from unmodelled logic
		}
	}
	prog := &rcaProgram{}
	linked := 0
	for i := range blocks {
		if hasPred[i] {
			continue
		}
		ch := rcaChain{cin: blocks[i].cin}
		for j := i; ; {
			ch.stages = append(ch.stages, blocks[j].st)
			linked++
			k, ok := next[j]
			if !ok {
				break
			}
			j = k
		}
		prog.chains = append(prog.chains, ch)
	}
	if linked != len(blocks) {
		return nil
	}
	if len(prog.chains) == 2 {
		a, b := &prog.chains[0], &prog.chains[1]
		if a.cin == b.cin && len(a.stages) == len(b.stages) {
			prog.paired = true
			for i := range a.stages {
				if a.stages[i].a != b.stages[i].a || a.stages[i].b != b.stages[i].b {
					prog.paired = false
					break
				}
			}
		}
	}
	return prog
}

// SlicedEngine evaluates the levelized floating-mode analysis for up to
// Lanes challenges per pass over a fixed netlist/delay-table pair. It reuses
// internal buffers across calls; a SlicedEngine is not safe for concurrent
// use (clone it — see SlicedPool).
type SlicedEngine struct {
	nl     *netlist.Netlist
	delays delay.Table
	prog   *sliceProgram
	// constArr holds challenge-independent arrivals: 0 for classZeroArr,
	// the delay-table-derived constant for classConstArr; unused for
	// classVar. Recomputed by SetDelays.
	constArr []float64
	// values holds one value word per net: bit l = the net's value for
	// challenge lane l.
	values []uint64
	// arrival holds per-lane arrival rows, lane-major (arrival[g*Lanes+l]).
	// Only rows of stored gates are maintained.
	arrival []float64
	lanes   int
}

// NewSlicedEngine returns a bitsliced engine over the netlist with the given
// per-gate delay table.
func NewSlicedEngine(nl *netlist.Netlist, delays delay.Table) *SlicedEngine {
	if len(delays.Ps) != len(nl.Gates) {
		panic(fmt.Sprintf("sim: delay table of %d entries for %d gates", len(delays.Ps), len(nl.Gates)))
	}
	e := &SlicedEngine{
		nl:       nl,
		prog:     compileSliceProgram(nl),
		constArr: make([]float64, len(nl.Gates)),
		values:   make([]uint64, len(nl.Gates)),
		arrival:  make([]float64, len(nl.Gates)*Lanes),
	}
	e.initConstValues()
	e.SetDelays(delays)
	return e
}

func (e *SlicedEngine) initConstValues() {
	for g := range e.nl.Gates {
		switch e.nl.Gates[g].Kind {
		case netlist.Const0:
			e.values[g] = 0
		case netlist.Const1:
			e.values[g] = ^uint64(0)
		}
	}
}

// SetDelays replaces the delay table (e.g. for a new operating corner) and
// recomputes the challenge-independent arrivals.
func (e *SlicedEngine) SetDelays(delays delay.Table) {
	if len(delays.Ps) != len(e.nl.Gates) {
		panic(fmt.Sprintf("sim: delay table of %d entries for %d gates", len(delays.Ps), len(e.nl.Gates)))
	}
	e.delays = delays
	for _, g := range e.nl.Order {
		switch e.prog.class[g] {
		case classZeroArr:
			e.constArr[g] = 0
		case classConstArr:
			// Scalar semantics: max over fanin arrivals, floored at 0. For
			// AND-class const gates every fanin arrives at 0, where the
			// controlled/uncontrolled branches coincide.
			t := 0.0
			for _, f := range e.nl.Gates[g].Fanin {
				if e.constArr[f] > t {
					t = e.constArr[f]
				}
			}
			e.constArr[g] = t + delays.Ps[g]
		}
	}
}

// Clone returns a new SlicedEngine over the same (immutable, shared) netlist
// and program with private scratch, for parallel evaluation.
func (e *SlicedEngine) Clone() *SlicedEngine {
	engineClones.Inc()
	c := &SlicedEngine{
		nl:       e.nl,
		delays:   e.delays,
		prog:     e.prog,
		constArr: append([]float64(nil), e.constArr...),
		values:   make([]uint64, len(e.nl.Gates)),
		arrival:  make([]float64, len(e.nl.Gates)*Lanes),
	}
	c.initConstValues()
	return c
}

// Netlist returns the engine's netlist (shared, read-only).
func (e *SlicedEngine) Netlist() *netlist.Netlist { return e.nl }

// GatesPerRun returns how many gates one lane of one RunBlock evaluates —
// the per-challenge denominator of the gate-evals/s metric, matching the
// scalar engine.
func (e *SlicedEngine) GatesPerRun() int { return len(e.nl.Order) }

// Fused reports whether the netlist compiled to the fused ripple-carry
// program (vs the generic per-gate fallback).
func (e *SlicedEngine) Fused() bool { return e.prog.rca != nil }

// RunBlock evaluates lanes challenges in one pass. inputs[i] packs primary
// input i across the block: bit l is input i's value for challenge lane l.
// Lanes ≥ lanes (the tail of a short block) must be packed as zero; they are
// computed but carry no meaning and must not be read back.
//
// Aliasing contract: results read via Value/ArrivalLanes are engine-owned
// and overwritten by the next RunBlock.
func (e *SlicedEngine) RunBlock(inputs []uint64, lanes int) {
	nl := e.nl
	if len(inputs) != len(nl.Inputs) {
		panic(fmt.Sprintf("sim: %d input words for netlist with %d inputs", len(inputs), len(nl.Inputs)))
	}
	if lanes < 1 || lanes > Lanes {
		panic(fmt.Sprintf("sim: RunBlock of %d lanes", lanes))
	}
	for i, g := range nl.Inputs {
		e.values[g] = inputs[i]
	}
	if e.prog.rca != nil {
		e.runRCA()
	} else {
		e.runGeneric()
	}
	e.lanes = lanes
	bitslicePasses.Inc()
	// Effective work: every active lane is a full levelized evaluation.
	gateEvals.Add(uint64(len(nl.Order)) * uint64(lanes))
}

// LastLanes returns the active lane count of the most recent RunBlock.
func (e *SlicedEngine) LastLanes() int { return e.lanes }

// Value returns net g's value for challenge lane l of the last RunBlock.
func (e *SlicedEngine) Value(g, l int) uint8 {
	return uint8(e.values[g]>>l) & 1
}

// ArrivalLanes returns net g's per-lane arrival row for the last RunBlock,
// or nil when the gate's arrival is challenge-independent — read it from
// ConstArrival instead. Rows are engine-owned scratch (see RunBlock).
func (e *SlicedEngine) ArrivalLanes(g int) []float64 {
	if !e.prog.stored[g] {
		return nil
	}
	return e.arrival[g*Lanes : g*Lanes+Lanes : g*Lanes+Lanes]
}

// ConstArrival returns the challenge-independent arrival of a gate for which
// ArrivalLanes returned nil. It panics on elided gates (see ArrivalElided).
func (e *SlicedEngine) ConstArrival(g int) float64 {
	if e.prog.stored[g] || e.prog.class[g] == classVar {
		panic(fmt.Sprintf("sim: ConstArrival of variable-arrival gate %d", g))
	}
	return e.constArr[g]
}

// ArrivalElided reports whether gate g's arrival is not recoverable from
// this engine: the fused carry-chain program keeps only the rows anything
// downstream reads (sums, carries, const-arrival gates), eliding interior
// full-adder nets. Primary outputs are never elided.
func (e *SlicedEngine) ArrivalElided(g int) bool {
	return !e.prog.stored[g] && e.prog.class[g] == classVar
}

// runRCA executes the fused carry-chain program: per stage, five gates'
// values in five bitwise ops and the only two arrival rows anything reads
// (sum, carry-out) in one register-resident lane loop.
func (e *SlicedEngine) runRCA() {
	if e.prog.rca.paired {
		e.runPairedRCA()
		return
	}
	d := e.delays.Ps
	for ci := range e.prog.rca.chains {
		ch := &e.prog.rca.chains[ci]
		carryWord := e.values[ch.cin]
		carry := &laneZeros // the chain's carry-in arrives at t=0 in every lane
		for si := range ch.stages {
			st := &ch.stages[si]
			wa, wb := e.values[st.a], e.values[st.b]
			ws1 := wa ^ wb
			wc1 := wa & wb
			wc2 := ws1 & carryWord
			wco := wc1 | wc2
			e.values[st.s1] = ws1
			e.values[st.c1] = wc1
			e.values[st.c2] = wc2
			e.values[st.sum] = ws1 ^ carryWord
			e.values[st.cout] = wco
			sumRow := (*[Lanes]float64)(e.arrival[st.sum*Lanes:])
			coutRow := (*[Lanes]float64)(e.arrival[st.cout*Lanes:])
			fusedFAStage(carry, ws1, carryWord, wc1, wc2,
				e.constArr[st.s1], e.constArr[st.c1],
				d[st.sum], d[st.c2], d[st.cout], sumRow, coutRow)
			carry = coutRow
			carryWord = wco
		}
	}
}

// fusedFAStage computes the sum and carry-out arrival lanes of one
// full-adder stage. as1/ac1 are the (challenge-independent) arrivals of
// s1 = Xor(a,b) and c1 = And(a,b); the carry row is the previous stage's
// carry-out arrivals. Derivation per lane, exact vs the scalar engine:
//
//	sum  = Xor(s1, cin):  no controlling value → max(as1, tc) + dSum
//	c2   = And(s1, cin):  min(min-of-controlling, max) + dC2 (andAdd trick)
//	cout = Or(c1, c2):    min(min-of-controlling, max) + dCout (orAdd trick)
func fusedFAStage(carry *[Lanes]float64, ws1, wc, wc1, wc2 uint64,
	as1, ac1, dSum, dC2, dCout float64, sumRow, coutRow *[Lanes]float64) {
	for l := 0; l < Lanes; l++ {
		tc := carry[l]
		m := max(as1, tc)
		sumRow[l] = m + dSum
		t2 := min(min(as1+andAdd[ws1&1], tc+andAdd[wc&1]), m) + dC2
		coutRow[l] = min(min(ac1+orAdd[wc1&1], t2+orAdd[wc2&1]), max(ac1, t2)) + dCout
		ws1 >>= 1
		wc >>= 1
		wc1 >>= 1
		wc2 >>= 1
	}
}

// runPairedRCA is runRCA for the two-ALU race: both chains see the same
// operand and carry *values*, so the word layer runs once per stage and the
// lane loop advances both chains together — half the bit extraction, and
// two independent dependency chains per iteration for the CPU to overlap.
func (e *SlicedEngine) runPairedRCA() {
	d := e.delays.Ps
	chA := &e.prog.rca.chains[0]
	chB := &e.prog.rca.chains[1]
	carryWord := e.values[chA.cin]
	carrA, carrB := &laneZeros, &laneZeros
	for si := range chA.stages {
		stA, stB := &chA.stages[si], &chB.stages[si]
		wa, wb := e.values[stA.a], e.values[stA.b]
		ws1 := wa ^ wb
		wc1 := wa & wb
		wc2 := ws1 & carryWord
		wco := wc1 | wc2
		sumWord := ws1 ^ carryWord
		e.values[stA.s1], e.values[stB.s1] = ws1, ws1
		e.values[stA.c1], e.values[stB.c1] = wc1, wc1
		e.values[stA.c2], e.values[stB.c2] = wc2, wc2
		e.values[stA.sum], e.values[stB.sum] = sumWord, sumWord
		e.values[stA.cout], e.values[stB.cout] = wco, wco
		sumA := (*[Lanes]float64)(e.arrival[stA.sum*Lanes:])
		coutA := (*[Lanes]float64)(e.arrival[stA.cout*Lanes:])
		sumB := (*[Lanes]float64)(e.arrival[stB.sum*Lanes:])
		coutB := (*[Lanes]float64)(e.arrival[stB.cout*Lanes:])
		pairedFAStage(carrA, carrB, ws1, carryWord, wc1, wc2,
			e.constArr[stA.s1], e.constArr[stA.c1], d[stA.sum], d[stA.c2], d[stA.cout],
			e.constArr[stB.s1], e.constArr[stB.c1], d[stB.sum], d[stB.c2], d[stB.cout],
			sumA, coutA, sumB, coutB)
		carrA, carrB = coutA, coutB
		carryWord = wco
	}
}

// pairedFAStage is fusedFAStage over both ALUs' same-index stages at once.
// The per-stage constant terms as1 + andAdd[bit] and ac1 + orAdd[bit] take
// only two values each, so they are precomputed as two-entry selects (the
// sums are bit-exact: t + 0 is identity for the non-negative arrivals here,
// t + Inf is Inf).
func pairedFAStage(carrA, carrB *[Lanes]float64, ws1, wc, wc1, wc2 uint64,
	as1A, ac1A, dSumA, dC2A, dCoutA float64,
	as1B, ac1B, dSumB, dC2B, dCoutB float64,
	sumA, coutA, sumB, coutB *[Lanes]float64) {
	s1SelA := [2]float64{as1A, posInf}
	s1SelB := [2]float64{as1B, posInf}
	c1SelA := [2]float64{posInf, ac1A}
	c1SelB := [2]float64{posInf, ac1B}
	for l := 0; l < Lanes; l++ {
		b1 := ws1 & 1
		b2 := wc & 1
		b3 := wc1 & 1
		b4 := wc2 & 1
		ws1 >>= 1
		wc >>= 1
		wc1 >>= 1
		wc2 >>= 1
		tcA := carrA[l]
		mA := max(as1A, tcA)
		sumA[l] = mA + dSumA
		t2A := min(min(s1SelA[b1], tcA+andAdd[b2]), mA) + dC2A
		coutA[l] = min(min(c1SelA[b3], t2A+orAdd[b4]), max(ac1A, t2A)) + dCoutA
		tcB := carrB[l]
		mB := max(as1B, tcB)
		sumB[l] = mB + dSumB
		t2B := min(min(s1SelB[b1], tcB+andAdd[b2]), mB) + dC2B
		coutB[l] = min(min(c1SelB[b3], t2B+orAdd[b4]), max(ac1B, t2B)) + dCoutB
	}
}

// runGeneric is the exact fallback for netlists that are not pure
// ripple-carry chains: per-gate bitsliced kernels in topological order.
func (e *SlicedEngine) runGeneric() {
	nl := e.nl
	for _, g := range nl.Order {
		gate := &nl.Gates[g]
		switch e.prog.class[g] {
		case classZeroArr:
			continue // inputs installed by RunBlock, constants preset
		case classConstArr:
			e.values[g] = e.valueWord(gate)
			continue
		}
		e.values[g] = e.valueWord(gate)
		e.arrVar(g, gate)
	}
}

// valueWord evaluates one gate's value word from its fanin words.
func (e *SlicedEngine) valueWord(gate *netlist.Gate) uint64 {
	var w uint64
	switch gate.Kind {
	case netlist.Buf:
		w = e.values[gate.Fanin[0]]
	case netlist.Not:
		w = ^e.values[gate.Fanin[0]]
	case netlist.And, netlist.Nand:
		w = ^uint64(0)
		for _, f := range gate.Fanin {
			w &= e.values[f]
		}
		if gate.Kind == netlist.Nand {
			w = ^w
		}
	case netlist.Or, netlist.Nor:
		for _, f := range gate.Fanin {
			w |= e.values[f]
		}
		if gate.Kind == netlist.Nor {
			w = ^w
		}
	case netlist.Xor, netlist.Xnor:
		for _, f := range gate.Fanin {
			w ^= e.values[f]
		}
		if gate.Kind == netlist.Xnor {
			w = ^w
		}
	}
	return w
}

// faninRow returns fanin f's arrival lanes, broadcasting a constant arrival
// into scratch when the fanin has no materialised row.
func (e *SlicedEngine) faninRow(f int, scratch *[Lanes]float64) *[Lanes]float64 {
	if e.prog.stored[f] {
		return (*[Lanes]float64)(e.arrival[f*Lanes:])
	}
	c := e.constArr[f]
	for l := range scratch {
		scratch[l] = c
	}
	return scratch
}

// arrVar computes the arrival row of a variable-arrival gate.
func (e *SlicedEngine) arrVar(g int, gate *netlist.Gate) {
	out := (*[Lanes]float64)(e.arrival[g*Lanes:])
	d := e.delays.Ps[g]
	var s0, s1 [Lanes]float64
	switch gate.Kind {
	case netlist.Buf, netlist.Not:
		// classVar with one fanin ⇒ the fanin itself is variable-arrival.
		in := (*[Lanes]float64)(e.arrival[gate.Fanin[0]*Lanes:])
		for l := 0; l < Lanes; l++ {
			out[l] = in[l] + d
		}
	case netlist.Xor, netlist.Xnor:
		if len(gate.Fanin) != 2 {
			e.arrNary(g, gate, out)
			return
		}
		t0 := e.faninRow(gate.Fanin[0], &s0)
		t1 := e.faninRow(gate.Fanin[1], &s1)
		for l := 0; l < Lanes; l++ {
			out[l] = max(t0[l], t1[l]) + d
		}
	default: // And, Or, Nand, Nor — same timing, value inversion is elsewhere
		if len(gate.Fanin) != 2 {
			e.arrNary(g, gate, out)
			return
		}
		add := &andAdd
		if gate.Kind == netlist.Or || gate.Kind == netlist.Nor {
			add = &orAdd
		}
		f0, f1 := gate.Fanin[0], gate.Fanin[1]
		t0 := e.faninRow(f0, &s0)
		t1 := e.faninRow(f1, &s1)
		w0, w1 := e.values[f0], e.values[f1]
		for l := 0; l < Lanes; l++ {
			a0, a1 := t0[l], t1[l]
			m := max(a0, a1)
			out[l] = min(min(a0+add[w0&1], a1+add[w1&1]), m) + d
			w0 >>= 1
			w1 >>= 1
		}
	}
}

// arrNary replicates the scalar fanin scan per lane for wide (n-ary) gates —
// the carry-lookahead adder's group terms take up to five fanins.
func (e *SlicedEngine) arrNary(g int, gate *netlist.Gate, out *[Lanes]float64) {
	d := e.delays.Ps[g]
	ctrl, hasCtrl := gate.Kind.ControllingValue()
	for l := 0; l < Lanes; l++ {
		controlled := false
		tCtrl := posInf
		tMax := 0.0
		for _, f := range gate.Fanin {
			var ta float64
			if e.prog.stored[f] {
				ta = e.arrival[f*Lanes+l]
			} else {
				ta = e.constArr[f]
			}
			if hasCtrl && uint8(e.values[f]>>l)&1 == ctrl {
				controlled = true
				if ta < tCtrl {
					tCtrl = ta
				}
			}
			if ta > tMax {
				tMax = ta
			}
		}
		if controlled {
			out[l] = tCtrl + d
		} else {
			out[l] = tMax + d
		}
	}
}
