package sim

import (
	"sync"
	"testing"

	"pufatt/internal/netlist"
	"pufatt/internal/rng"
)

func TestCloneMatchesOriginal(t *testing.T) {
	nl := netlist.BuildRCANetlist(8)
	eng := NewEngine(nl, randomTable(nl, rng.New(1)))
	clone := eng.Clone()
	src := rng.New(2)
	in := make([]uint8, len(nl.Inputs))
	for trial := 0; trial < 100; trial++ {
		src.Bits(in)
		v0, a0 := eng.Run(in)
		v1, a1 := clone.Run(in)
		for g := range v0 {
			if v0[g] != v1[g] || a0[g] != a1[g] {
				t.Fatalf("trial %d: clone diverges at net %d: (%d,%g) vs (%d,%g)",
					trial, g, v0[g], a0[g], v1[g], a1[g])
			}
		}
	}
}

func TestClonesRunConcurrently(t *testing.T) {
	nl := netlist.BuildRCANetlist(16)
	tab := randomTable(nl, rng.New(3))
	eng := NewEngine(nl, tab)
	// Reference values computed sequentially.
	const n = 64
	ins := make([][]uint8, n)
	wantArr := make([][]float64, n)
	src := rng.New(4)
	for k := range ins {
		ins[k] = make([]uint8, len(nl.Inputs))
		src.Bits(ins[k])
		_, arr := eng.Run(ins[k])
		wantArr[k] = append([]float64(nil), arr...)
	}
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := eng.Clone()
			for k := w; k < n; k += 4 {
				_, arr := e.Run(ins[k])
				for g := range arr {
					if arr[g] != wantArr[k][g] {
						errs <- "concurrent clone diverges from sequential reference"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

// TestRunAliasingContract enforces the documented ownership rule: Run's
// returned slices are engine-owned scratch, overwritten in place by the next
// call. If a future refactor made Run allocate fresh slices, callers could
// silently start retaining them — this test pins the contract both ways.
func TestRunAliasingContract(t *testing.T) {
	nl := netlist.BuildRCANetlist(8)
	eng := NewEngine(nl, unitDelays(nl))
	in := make([]uint8, len(nl.Inputs))
	v1, a1 := eng.Run(in)
	firstVals := append([]uint8(nil), v1...)
	firstArr := append([]float64(nil), a1...)
	for i := range in {
		in[i] = 1
	}
	v2, a2 := eng.Run(in)
	if &v1[0] != &v2[0] || &a1[0] != &a2[0] {
		t.Fatal("Run returned fresh slices; the documented engine-owned buffer contract changed")
	}
	changed := false
	for g := range v1 {
		if firstVals[g] != v1[g] || firstArr[g] != a1[g] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("second Run left the first call's slices untouched; aliasing contract not exercised")
	}
}

func TestPoolReusesEngines(t *testing.T) {
	nl := netlist.BuildRCANetlist(8)
	p := NewPool(nl, randomTable(nl, rng.New(5)))
	e1 := p.Get()
	e2 := p.Get()
	if e1 == e2 {
		t.Fatal("pool handed out the same engine twice")
	}
	p.Put(e1)
	if p.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", p.Idle())
	}
	if got := p.Get(); got != e1 {
		t.Fatal("pool did not reuse the freed engine")
	}
	p.Put(e1)
	p.Put(e2)
	if p.Idle() != 2 {
		t.Fatalf("idle = %d, want 2", p.Idle())
	}
}

func TestPoolSetDelaysReachesPooledEngines(t *testing.T) {
	nl := netlist.BuildRCANetlist(4)
	p := NewPool(nl, unitDelays(nl))
	e := p.Get()
	p.Put(e)
	tab := randomTable(nl, rng.New(6))
	p.SetDelays(tab)
	e = p.Get()
	in := make([]uint8, len(nl.Inputs))
	for i := range in {
		in[i] = 1
	}
	_, arr := e.Run(in)
	ref := NewEngine(nl, tab)
	_, want := ref.Run(in)
	for g := range arr {
		if arr[g] != want[g] {
			t.Fatalf("pooled engine still runs with the old delay table at net %d", g)
		}
	}
}

func TestPoolRejectsForeignEngine(t *testing.T) {
	nlA := netlist.BuildRCANetlist(4)
	nlB := netlist.BuildRCANetlist(8)
	p := NewPool(nlA, unitDelays(nlA))
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a foreign engine did not panic")
		}
	}()
	p.Put(NewEngine(nlB, unitDelays(nlB)))
}
