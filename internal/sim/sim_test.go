package sim

import (
	"math"
	"testing"
	"testing/quick"

	"pufatt/internal/delay"
	"pufatt/internal/netlist"
	"pufatt/internal/rng"
)

// unitDelays returns a table assigning delay 1.0 to every logic gate and 0
// to pseudo-gates, so expected arrival times can be computed by hand.
func unitDelays(nl *netlist.Netlist) delay.Table {
	t := delay.Table{Ps: make([]float64, len(nl.Gates))}
	for g := range nl.Gates {
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
		default:
			t.Ps[g] = 1
		}
	}
	return t
}

func randomTable(nl *netlist.Netlist, src *rng.Source) delay.Table {
	t := delay.Table{Ps: make([]float64, len(nl.Gates))}
	for g := range nl.Gates {
		switch nl.Gates[g].Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
		default:
			t.Ps[g] = 5 + 10*src.Float64()
		}
	}
	return t
}

func TestArrivalValuesMatchFunctionalEvaluation(t *testing.T) {
	nl := netlist.BuildRCANetlist(8)
	eng := NewEngine(nl, randomTable(nl, rng.New(1)))
	src := rng.New(2)
	in := make([]uint8, len(nl.Inputs))
	for trial := 0; trial < 200; trial++ {
		src.Bits(in)
		vals, _ := eng.Run(in)
		want := nl.Evaluate(in)
		for g := range want {
			if vals[g] != want[g] {
				t.Fatalf("trial %d: net %d value %d, want %d", trial, g, vals[g], want[g])
			}
		}
	}
}

func TestArrivalChainOfInverters(t *testing.T) {
	b := netlist.NewBuilder()
	a := b.Input("a")
	n1 := b.Gate(netlist.Not, a)
	n2 := b.Gate(netlist.Not, n1)
	n3 := b.Gate(netlist.Not, n2)
	b.Output("y", n3)
	nl := b.MustBuild()
	eng := NewEngine(nl, unitDelays(nl))
	_, arr := eng.Run([]uint8{1})
	if arr[n3] != 3 {
		t.Errorf("three-inverter chain arrival = %v, want 3", arr[n3])
	}
}

func TestArrivalControllingValueShortCircuits(t *testing.T) {
	// AND(slow_path, 0): output is determined by the 0 input immediately,
	// not after the slow path settles.
	b := netlist.NewBuilder()
	fast := b.Input("fast")
	slow0 := b.Input("slow")
	s1 := b.Gate(netlist.Not, slow0)
	s2 := b.Gate(netlist.Not, s1)
	s3 := b.Gate(netlist.Not, s2) // slow path: arrival 3
	y := b.Gate(netlist.And, fast, s3)
	b.Output("y", y)
	nl := b.MustBuild()
	eng := NewEngine(nl, unitDelays(nl))

	// fast=0 controls the AND: arrival = 0 + 1.
	_, arr := eng.Run([]uint8{0, 0})
	if arr[y] != 1 {
		t.Errorf("controlled AND arrival = %v, want 1", arr[y])
	}
	// fast=1, slow path non-controlling at 1 (NOT NOT NOT 0 = 1)? slow=0 →
	// s3=1 → AND(1,1)=1: all inputs non-controlling → max + 1 = 4.
	_, arr = eng.Run([]uint8{1, 0})
	if arr[y] != 4 {
		t.Errorf("uncontrolled AND arrival = %v, want 4", arr[y])
	}
	// fast=1, slow=1 → s3=0 controls at time 3 → arrival 4.
	_, arr = eng.Run([]uint8{1, 1})
	if arr[y] != 4 {
		t.Errorf("late-controlled AND arrival = %v, want 4", arr[y])
	}
}

func TestArrivalXorAlwaysWaitsForAllInputs(t *testing.T) {
	b := netlist.NewBuilder()
	x := b.Input("x")
	yIn := b.Input("y")
	slow := b.Gate(netlist.Not, yIn)
	out := b.Gate(netlist.Xor, x, slow)
	b.Output("o", out)
	nl := b.MustBuild()
	eng := NewEngine(nl, unitDelays(nl))
	for v := 0; v < 4; v++ {
		_, arr := eng.Run([]uint8{uint8(v & 1), uint8(v >> 1)})
		if arr[out] != 2 {
			t.Errorf("XOR arrival for inputs %d = %v, want 2", v, arr[out])
		}
	}
}

func TestArrivalCarryChainDependsOnOperands(t *testing.T) {
	// The paper: carry propagation makes MSB arrival depend on operand
	// values. A long carry chain (0xFF + 0x01) must settle later than a
	// no-carry addition (0x00 + 0x00) at the MSB sum.
	nl := netlist.BuildRCANetlist(8)
	eng := NewEngine(nl, unitDelays(nl))
	msb := nl.Outputs[7]
	mkIn := func(a, b uint8) []uint8 {
		in := make([]uint8, 17)
		for i := 0; i < 8; i++ {
			in[i] = a >> uint(i) & 1
			in[8+i] = b >> uint(i) & 1
		}
		return in
	}
	_, arr := eng.Run(mkIn(0xFF, 0x01))
	long := arr[msb]
	_, arr = eng.Run(mkIn(0x00, 0x00))
	short := arr[msb]
	if long <= short {
		t.Errorf("carry chain: arrival %v (0xFF+1) should exceed %v (0+0)", long, short)
	}
	if long < 14 {
		t.Errorf("full-length carry chain arrival = %v, implausibly early", long)
	}
}

func TestEngineRejectsBadInputs(t *testing.T) {
	nl := netlist.BuildFullAdderNetlist()
	eng := NewEngine(nl, unitDelays(nl))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong input width")
		}
	}()
	eng.Run([]uint8{1})
}

func TestNewEngineRejectsBadTable(t *testing.T) {
	nl := netlist.BuildFullAdderNetlist()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong table size")
		}
	}()
	NewEngine(nl, delay.Table{Ps: []float64{1}})
}

func TestEventSimSettlesToFunctionalValues(t *testing.T) {
	nl := netlist.BuildRCANetlist(8)
	tab := randomTable(nl, rng.New(3))
	es := NewEventSim(nl, tab)
	src := rng.New(4)
	in := make([]uint8, len(nl.Inputs))
	for trial := 0; trial < 100; trial++ {
		src.Bits(in)
		es.Settle(make([]uint8, len(nl.Inputs)))
		es.Apply(in)
		es.Run()
		want := nl.Evaluate(in)
		for g := range want {
			if es.Value(g) != want[g] {
				t.Fatalf("trial %d: net %d = %d, want %d", trial, g, es.Value(g), want[g])
			}
		}
	}
}

func TestEventSimLastChangeNeverExceedsLevelizedArrival(t *testing.T) {
	// Floating-mode arrival is an upper bound on the actual settling time
	// when switching from the all-zero state: after the levelized arrival
	// the net can no longer change.
	nl := netlist.BuildRCANetlist(8)
	tab := randomTable(nl, rng.New(5))
	eng := NewEngine(nl, tab)
	es := NewEventSim(nl, tab)
	src := rng.New(6)
	in := make([]uint8, len(nl.Inputs))
	for trial := 0; trial < 100; trial++ {
		src.Bits(in)
		_, arr := eng.Run(in)
		es.Settle(make([]uint8, len(nl.Inputs)))
		es.Apply(in)
		es.Run()
		for _, g := range nl.Outputs {
			if es.LastChange(g) > arr[g]+1e-9 {
				t.Fatalf("trial %d: net %d transitioned at %v after floating-mode arrival %v",
					trial, g, es.LastChange(g), arr[g])
			}
		}
	}
}

func TestEventSimInertialPulseSwallowing(t *testing.T) {
	// A pulse shorter than the gate delay must not appear at the output.
	b := netlist.NewBuilder()
	a := b.Input("a")
	y := b.Gate(netlist.Buf, a)
	b.Output("y", y)
	nl := b.MustBuild()
	tab := delay.Table{Ps: []float64{0, 10}}
	es := NewEventSim(nl, tab)
	es.Apply([]uint8{1}) // schedule rise at t=10
	es.RunUntil(5)
	es.Apply([]uint8{0}) // cancel before it lands
	es.Run()
	if es.Value(y) != 0 {
		t.Error("sub-delay pulse propagated through buffer")
	}
	if es.LastChange(y) != 0 {
		t.Errorf("swallowed pulse still recorded a transition at %v", es.LastChange(y))
	}
}

func TestEventSimRunUntilLatchesPartialState(t *testing.T) {
	// Three-inverter chain with unit delays: after Apply(1) at t=0 the
	// output settles at t=3. Reading at t=2.5 must return the stale value —
	// the mechanism behind the overclocking attack.
	b := netlist.NewBuilder()
	a := b.Input("a")
	n1 := b.Gate(netlist.Not, a)
	n2 := b.Gate(netlist.Not, n1)
	n3 := b.Gate(netlist.Not, n2)
	b.Output("y", n3)
	nl := b.MustBuild()
	es := NewEventSim(nl, unitDelays(nl))
	es.Settle([]uint8{0}) // y = NOT NOT NOT 0 = 1
	if es.Value(n3) != 1 {
		t.Fatalf("settled value = %d, want 1", es.Value(n3))
	}
	es.Apply([]uint8{1})
	es.RunUntil(2.5)
	if es.Value(n3) != 1 {
		t.Error("value flipped before its propagation delay elapsed")
	}
	if !es.Pending() {
		t.Error("expected a pending event beyond the cutoff")
	}
	es.Run()
	if es.Value(n3) != 0 {
		t.Error("final settled value wrong")
	}
	if math.Abs(es.LastChange(n3)-3) > 1e-9 {
		t.Errorf("final transition at %v, want 3", es.LastChange(n3))
	}
}

func TestEventSimTransitionsCount(t *testing.T) {
	nl := netlist.BuildRCANetlist(4)
	es := NewEventSim(nl, unitDelays(nl))
	if es.Transitions() != 0 {
		t.Error("fresh sim has transitions")
	}
	in := make([]uint8, len(nl.Inputs))
	in[0] = 1
	es.Apply(in)
	es.Run()
	if es.Transitions() == 0 {
		t.Error("no transitions counted after input change")
	}
}

func TestEventSimGlitchOnRippleCarry(t *testing.T) {
	// Switching from 0b1111+0b0000 to 0b1111+0b0001 launches a carry wave;
	// the MSB sum output should transition strictly later than the LSB.
	nl := netlist.BuildRCANetlist(4)
	es := NewEventSim(nl, unitDelays(nl))
	base := make([]uint8, 9)
	for i := 0; i < 4; i++ {
		base[i] = 1
	}
	es.Settle(base)
	next := make([]uint8, 9)
	copy(next, base)
	next[4] = 1 // b = 0b0001
	es.Apply(next)
	es.Run()
	lsb := nl.Outputs[0]
	msb := nl.Outputs[3]
	if es.LastChange(msb) <= es.LastChange(lsb) {
		t.Errorf("carry wave: MSB changed at %v, LSB at %v", es.LastChange(msb), es.LastChange(lsb))
	}
}

func TestEnginesAgreeOnSettledValuesProperty(t *testing.T) {
	nl := netlist.BuildRCANetlist(6)
	tab := randomTable(nl, rng.New(7))
	eng := NewEngine(nl, tab)
	es := NewEventSim(nl, tab)
	f := func(a, b uint8, cin bool) bool {
		in := make([]uint8, 13)
		for i := 0; i < 6; i++ {
			in[i] = a >> uint(i) & 1
			in[6+i] = b >> uint(i) & 1
		}
		if cin {
			in[12] = 1
		}
		vals, _ := eng.Run(in)
		es.Settle(make([]uint8, 13))
		es.Apply(in)
		es.Run()
		for _, g := range nl.Outputs {
			if es.Value(g) != vals[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetDelays(t *testing.T) {
	nl := netlist.BuildFullAdderNetlist()
	eng := NewEngine(nl, unitDelays(nl))
	_, arr1 := eng.Run([]uint8{1, 1, 1})
	sumArr1 := arr1[nl.Outputs[0]]
	double := unitDelays(nl)
	for i := range double.Ps {
		double.Ps[i] *= 2
	}
	eng.SetDelays(double)
	_, arr2 := eng.Run([]uint8{1, 1, 1})
	if math.Abs(arr2[nl.Outputs[0]]-2*sumArr1) > 1e-9 {
		t.Errorf("doubling delays: arrival %v, want %v", arr2[nl.Outputs[0]], 2*sumArr1)
	}
}

func TestPropDelayScalingScalesArrivals(t *testing.T) {
	// Timing is linear in the delay table: scaling every gate delay by k
	// scales every arrival by k and changes no value.
	nl := netlist.BuildRCANetlist(8)
	tab := randomTable(nl, rng.New(40))
	scaled := delay.Table{Ps: make([]float64, len(tab.Ps))}
	const k = 3.5
	for i, d := range tab.Ps {
		scaled.Ps[i] = k * d
	}
	base := NewEngine(nl, tab)
	scl := NewEngine(nl, scaled)
	src := rng.New(41)
	in := make([]uint8, len(nl.Inputs))
	for trial := 0; trial < 100; trial++ {
		src.Bits(in)
		v1, a1 := base.Run(in)
		// Copy before the second engine run reuses buffers.
		vals := append([]uint8(nil), v1...)
		arr := append([]float64(nil), a1...)
		v2, a2 := scl.Run(in)
		for g := range vals {
			if vals[g] != v2[g] {
				t.Fatalf("trial %d: value changed under scaling at net %d", trial, g)
			}
			if diff := arr[g]*k - a2[g]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("trial %d: arrival not scaled at net %d: %v vs %v", trial, g, arr[g]*k, a2[g])
			}
		}
	}
}

func TestPropMonotoneDelaysMonotoneArrivals(t *testing.T) {
	// Increasing any single gate's delay can never make any arrival
	// earlier (floating-mode arrival is monotone in the delay table).
	nl := netlist.BuildRCANetlist(6)
	tab := randomTable(nl, rng.New(42))
	src := rng.New(43)
	in := make([]uint8, len(nl.Inputs))
	src.Bits(in)
	base := NewEngine(nl, tab)
	_, a1 := base.Run(in)
	ref := append([]float64(nil), a1...)
	for trial := 0; trial < 30; trial++ {
		g := src.Intn(len(tab.Ps))
		if tab.Ps[g] == 0 {
			continue
		}
		bumped := tab.Clone()
		bumped.Ps[g] += 5
		eng := NewEngine(nl, bumped)
		_, a2 := eng.Run(in)
		for n := range ref {
			if a2[n] < ref[n]-1e-9 {
				t.Fatalf("bumping gate %d made net %d earlier: %v -> %v", g, n, ref[n], a2[n])
			}
		}
	}
}
