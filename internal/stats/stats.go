// Package stats provides the statistical machinery used to evaluate PUF
// quality: Hamming distances and weights, histograms, summary statistics,
// binomial tail probabilities for false-negative-rate analysis, and the
// uniqueness/reliability metrics standard in the PUF literature.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HammingDistance returns the number of positions at which the two bit
// vectors differ. It panics if the lengths differ, since comparing responses
// of different widths is always a caller bug.
func HammingDistance(a, b []uint8) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Hamming distance of vectors with lengths %d and %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// HammingWeight returns the number of nonzero positions in the bit vector.
func HammingWeight(a []uint8) int {
	w := 0
	for _, bit := range a {
		if bit != 0 {
			w++
		}
	}
	return w
}

// HammingDistanceWords returns the Hamming distance between two uint64 words.
func HammingDistanceWords(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Summary holds the running summary statistics of a scalar sample.
type Summary struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sum2 += x * x
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Var returns the (population) variance of the sample.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sum2/float64(s.n) - m*m
	if v < 0 {
		v = 0 // numerical noise
	}
	return v
}

// Std returns the (population) standard deviation of the sample.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty sample).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty sample).
func (s *Summary) Max() float64 { return s.max }

// Histogram counts integer-valued observations in [0, Bins).
type Histogram struct {
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with the given number of bins.
func NewHistogram(bins int) *Histogram {
	return &Histogram{Counts: make([]int64, bins)}
}

// Add counts one observation. Out-of-range values are clamped into the edge
// bins so that no observation is silently dropped.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Counts) {
		v = len(h.Counts) - 1
	}
	h.Counts[v]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the mean bin value of the recorded observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.Counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.total)
}

// Std returns the standard deviation of the recorded observations.
func (h *Histogram) Std() float64 {
	if h.total == 0 {
		return 0
	}
	m := h.Mean()
	var s float64
	for v, c := range h.Counts {
		d := float64(v) - m
		s += d * d * float64(c)
	}
	return math.Sqrt(s / float64(h.total))
}

// Fraction returns the fraction of observations in bin v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 || v < 0 || v >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.total)
}

// Mode returns the bin with the highest count.
func (h *Histogram) Mode() int {
	best := 0
	for v, c := range h.Counts {
		if c > h.Counts[best] {
			best = v
		}
	}
	return best
}

// String renders the histogram as an ASCII bar chart, one line per non-empty
// bin, matching the presentation style of the paper's Figures 3 and 4.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := int64(1)
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for v, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := int(40 * c / maxCount)
		fmt.Fprintf(&b, "%3d | %-40s %8.4f%% (%d)\n", v, strings.Repeat("#", bar), 100*h.Fraction(v), c)
	}
	return b.String()
}

// BinomialTail returns P[X >= k] for X ~ Binomial(n, p), computed in log
// space so that probabilities down to ~1e-300 are representable. This is the
// analytic false-negative-rate model: the PUF fails authentication when more
// bits flip than the code corrects.
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	sum := 0.0
	for i := k; i <= n; i++ {
		lt := logChoose(n, i) + float64(i)*logP + float64(n-i)*logQ
		sum += math.Exp(lt)
	}
	return sum
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// logChoose returns log(n choose k) via lgamma.
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// Uniqueness returns the average pairwise inter-chip Hamming distance of the
// responses, normalised to [0,1]; the ideal value is 0.5. responses[i] is
// chip i's response to a common challenge set, concatenated bitwise.
func Uniqueness(responses [][]uint8) float64 {
	if len(responses) < 2 {
		return 0
	}
	var sum float64
	var pairs int
	for i := 0; i < len(responses); i++ {
		for j := i + 1; j < len(responses); j++ {
			sum += float64(HammingDistance(responses[i], responses[j])) / float64(len(responses[i]))
			pairs++
		}
	}
	return sum / float64(pairs)
}

// Reliability returns 1 minus the average intra-chip Hamming distance between
// a reference response and repeated measurements, normalised to [0,1]; the
// ideal value is 1.0.
func Reliability(reference []uint8, measurements [][]uint8) float64 {
	if len(measurements) == 0 {
		return 1
	}
	var sum float64
	for _, m := range measurements {
		sum += float64(HammingDistance(reference, m)) / float64(len(reference))
	}
	return 1 - sum/float64(len(measurements))
}

// BitBias returns, per bit position, the fraction of responses in which that
// bit is 1. A well-behaved PUF has biases near 0.5 at every position.
func BitBias(responses [][]uint8) []float64 {
	if len(responses) == 0 {
		return nil
	}
	width := len(responses[0])
	bias := make([]float64, width)
	for _, r := range responses {
		for i, bit := range r {
			if bit != 0 {
				bias[i]++
			}
		}
	}
	for i := range bias {
		bias[i] /= float64(len(responses))
	}
	return bias
}

// Percentile returns the p-th percentile (p in [0,100]) of the sample using
// linear interpolation. The input slice is not modified.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
