package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHammingDistance(t *testing.T) {
	cases := []struct {
		a, b []uint8
		want int
	}{
		{[]uint8{}, []uint8{}, 0},
		{[]uint8{0, 1, 1, 0}, []uint8{0, 1, 1, 0}, 0},
		{[]uint8{0, 1, 1, 0}, []uint8{1, 0, 0, 1}, 4},
		{[]uint8{1, 1, 0, 0}, []uint8{1, 0, 0, 1}, 2},
	}
	for _, c := range cases {
		if got := HammingDistance(c.a, c.b); got != c.want {
			t.Errorf("HammingDistance(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingDistancePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	HammingDistance([]uint8{1}, []uint8{1, 0})
}

func TestHammingDistanceProperties(t *testing.T) {
	norm := func(v []uint8) []uint8 {
		out := make([]uint8, len(v))
		for i := range v {
			out[i] = v[i] & 1
		}
		return out
	}
	symmetric := func(a, b [16]uint8) bool {
		x, y := norm(a[:]), norm(b[:])
		return HammingDistance(x, y) == HammingDistance(y, x)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a [16]uint8) bool {
		x := norm(a[:])
		return HammingDistance(x, x) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
	triangle := func(a, b, c [16]uint8) bool {
		x, y, z := norm(a[:]), norm(b[:]), norm(c[:])
		return HammingDistance(x, z) <= HammingDistance(x, y)+HammingDistance(y, z)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error("triangle inequality:", err)
	}
}

func TestHammingWeightMatchesDistanceFromZero(t *testing.T) {
	f := func(a [32]uint8) bool {
		x := make([]uint8, 32)
		for i := range x {
			x[i] = a[i] & 1
		}
		return HammingWeight(x) == HammingDistance(x, make([]uint8, 32))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDistanceWords(t *testing.T) {
	if got := HammingDistanceWords(0, 0); got != 0 {
		t.Errorf("HD(0,0) = %d", got)
	}
	if got := HammingDistanceWords(^uint64(0), 0); got != 64 {
		t.Errorf("HD(~0,0) = %d", got)
	}
	if got := HammingDistanceWords(0b1010, 0b0110); got != 2 {
		t.Errorf("HD(1010,0110) = %d", got)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Error("empty summary should be all zero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{1, 1, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Mode() != 3 {
		t.Errorf("Mode = %d", h.Mode())
	}
	if got := h.Fraction(1); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("Fraction(1) = %v", got)
	}
	wantMean := (1.0 + 1 + 2 + 3 + 3 + 3) / 6
	if got := h.Mean(); math.Abs(got-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(4)
	h.Add(-5)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(4)
	h.Add(2)
	s := h.String()
	if !strings.Contains(s, "2 |") {
		t.Errorf("String output missing bin label: %q", s)
	}
}

func TestBinomialTail(t *testing.T) {
	// P[X >= 0] is always 1; P[X > n] is 0.
	if got := BinomialTail(10, 0, 0.3); got != 1 {
		t.Errorf("tail k=0: %v", got)
	}
	if got := BinomialTail(10, 11, 0.3); got != 0 {
		t.Errorf("tail k>n: %v", got)
	}
	// Fair coin: P[X >= 5] for n=9 is exactly 0.5 by symmetry.
	if got := BinomialTail(9, 5, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("symmetric tail = %v, want 0.5", got)
	}
	// Cross-check against direct summation for a small case.
	direct := 0.0
	for k := 3; k <= 6; k++ {
		direct += BinomialPMF(6, k, 0.2)
	}
	if got := BinomialTail(6, 3, 0.2); math.Abs(got-direct) > 1e-12 {
		t.Errorf("tail = %v, direct sum = %v", got, direct)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.887} {
		sum := 0.0
		for k := 0; k <= 32; k++ {
			sum += BinomialPMF(32, k, p)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("PMF(32,·,%v) sums to %v", p, sum)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 3, 0) != 0 {
		t.Error("p=0 PMF wrong")
	}
	if BinomialPMF(5, 5, 1) != 1 || BinomialPMF(5, 3, 1) != 0 {
		t.Error("p=1 PMF wrong")
	}
	if BinomialTail(5, 3, 0) != 0 || BinomialTail(5, 3, 1) != 1 {
		t.Error("degenerate tails wrong")
	}
}

func TestBinomialTailPaperFNR(t *testing.T) {
	// Sanity check of the paper's false-negative-rate regime: with a
	// per-bit error around 11 % and a 16-error-correcting assumption on 32
	// bits, the tail lands near 1e-7 (the paper reports 1.53e-7).
	fnr := BinomialTail(32, 17, 0.113)
	if fnr > 1e-6 || fnr < 1e-9 {
		t.Errorf("FNR model = %v, expected within [1e-9, 1e-6]", fnr)
	}
}

func TestUniqueness(t *testing.T) {
	a := []uint8{0, 0, 0, 0}
	b := []uint8{1, 1, 1, 1}
	c := []uint8{0, 0, 1, 1}
	// pairwise normalised distances: ab=1, ac=0.5, bc=0.5 → mean 2/3.
	got := Uniqueness([][]uint8{a, b, c})
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Uniqueness = %v, want 2/3", got)
	}
	if Uniqueness([][]uint8{a}) != 0 {
		t.Error("Uniqueness of one chip should be 0")
	}
}

func TestReliability(t *testing.T) {
	ref := []uint8{1, 0, 1, 0}
	same := []uint8{1, 0, 1, 0}
	oneFlip := []uint8{1, 0, 1, 1}
	got := Reliability(ref, [][]uint8{same, oneFlip})
	want := 1 - (0.0+0.25)/2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Reliability = %v, want %v", got, want)
	}
	if Reliability(ref, nil) != 1 {
		t.Error("Reliability with no measurements should be 1")
	}
}

func TestBitBias(t *testing.T) {
	rs := [][]uint8{{1, 0, 1}, {1, 0, 0}, {1, 0, 1}}
	bias := BitBias(rs)
	want := []float64{1, 0, 2.0 / 3}
	for i := range want {
		if math.Abs(bias[i]-want[i]) > 1e-12 {
			t.Errorf("bias[%d] = %v, want %v", i, bias[i], want[i])
		}
	}
	if BitBias(nil) != nil {
		t.Error("BitBias(nil) should be nil")
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if got := Percentile(s, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(s, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(s, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(s, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	// Input must not be reordered.
	s2 := []float64{3, 1, 2}
	Percentile(s2, 50)
	if s2[0] != 3 || s2[1] != 1 || s2[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}
