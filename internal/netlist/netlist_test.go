package netlist

import (
	"testing"
	"testing/quick"
)

func TestKindEvalTruthTables(t *testing.T) {
	cases := []struct {
		kind Kind
		in   []uint8
		want uint8
	}{
		{Const0, nil, 0},
		{Const1, nil, 1},
		{Buf, []uint8{0}, 0},
		{Buf, []uint8{1}, 1},
		{Not, []uint8{0}, 1},
		{Not, []uint8{1}, 0},
		{And, []uint8{1, 1}, 1},
		{And, []uint8{1, 0}, 0},
		{Or, []uint8{0, 0}, 0},
		{Or, []uint8{0, 1}, 1},
		{Nand, []uint8{1, 1}, 0},
		{Nand, []uint8{0, 1}, 1},
		{Nor, []uint8{0, 0}, 1},
		{Nor, []uint8{1, 0}, 0},
		{Xor, []uint8{1, 1}, 0},
		{Xor, []uint8{1, 0}, 1},
		{Xnor, []uint8{1, 1}, 1},
		{Xnor, []uint8{1, 0}, 0},
		{And, []uint8{1, 1, 1}, 1},
		{And, []uint8{1, 1, 0}, 0},
		{Xor, []uint8{1, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := c.kind.Eval(c.in); got != c.want {
			t.Errorf("%v.Eval(%v) = %d, want %d", c.kind, c.in, got, c.want)
		}
	}
}

func TestControllingValues(t *testing.T) {
	for _, k := range []Kind{And, Nand} {
		if v, ok := k.ControllingValue(); !ok || v != 0 {
			t.Errorf("%v controlling value = (%d,%v), want (0,true)", k, v, ok)
		}
	}
	for _, k := range []Kind{Or, Nor} {
		if v, ok := k.ControllingValue(); !ok || v != 1 {
			t.Errorf("%v controlling value = (%d,%v), want (1,true)", k, v, ok)
		}
	}
	for _, k := range []Kind{Xor, Xnor, Not, Buf} {
		if _, ok := k.ControllingValue(); ok {
			t.Errorf("%v should have no controlling value", k)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	t.Run("bad arity", func(t *testing.T) {
		b := NewBuilder()
		a := b.Input("a")
		b.Gate(Not, a, a) // NOT with 2 fanins
		if _, err := b.Build(); err == nil {
			t.Error("expected arity error")
		}
	})
	t.Run("forward reference", func(t *testing.T) {
		b := NewBuilder()
		a := b.Input("a")
		b.Gate(And, a, 99)
		if _, err := b.Build(); err == nil {
			t.Error("expected invalid-fanin error")
		}
	})
	t.Run("duplicate name", func(t *testing.T) {
		b := NewBuilder()
		b.Input("a")
		b.Input("a")
		if _, err := b.Build(); err == nil {
			t.Error("expected duplicate-name error")
		}
	})
	t.Run("bad output", func(t *testing.T) {
		b := NewBuilder()
		b.Input("a")
		b.Output("out", 42)
		if _, err := b.Build(); err == nil {
			t.Error("expected invalid-output error")
		}
	})
	t.Run("errors stick", func(t *testing.T) {
		b := NewBuilder()
		b.Gate(Not) // bad arity
		a := b.Input("a")
		if a != -1 {
			t.Error("builder kept accepting nodes after error")
		}
	})
}

func TestFullAdderExhaustive(t *testing.T) {
	nl := BuildFullAdderNetlist()
	for a := uint8(0); a <= 1; a++ {
		for bb := uint8(0); bb <= 1; bb++ {
			for cin := uint8(0); cin <= 1; cin++ {
				val := nl.Evaluate([]uint8{a, bb, cin})
				out := nl.OutputValues(val)
				total := a + bb + cin
				if out[0] != total&1 {
					t.Errorf("sum(%d,%d,%d) = %d, want %d", a, bb, cin, out[0], total&1)
				}
				if out[1] != total>>1 {
					t.Errorf("cout(%d,%d,%d) = %d, want %d", a, bb, cin, out[1], total>>1)
				}
			}
		}
	}
}

func rcaCompute(t *testing.T, nl *Netlist, width int, a, b uint64, cin uint8) (sum uint64, cout uint8) {
	t.Helper()
	in := make([]uint8, 2*width+1)
	for i := 0; i < width; i++ {
		in[i] = uint8(a >> uint(i) & 1)
		in[width+i] = uint8(b >> uint(i) & 1)
	}
	in[2*width] = cin
	out := nl.OutputValues(nl.Evaluate(in))
	for i := 0; i < width; i++ {
		sum |= uint64(out[i]) << uint(i)
	}
	return sum, out[width]
}

func TestRippleCarryAdderMatchesIntegerAdd(t *testing.T) {
	const width = 16
	nl := BuildRCANetlist(width)
	mask := uint64(1)<<width - 1
	f := func(a, b uint16, cin bool) bool {
		c := uint8(0)
		if cin {
			c = 1
		}
		sum, cout := rcaCompute(t, nl, width, uint64(a), uint64(b), c)
		total := uint64(a) + uint64(b) + uint64(c)
		return sum == total&mask && cout == uint8(total>>width)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRCA32(t *testing.T) {
	const width = 32
	nl := BuildRCANetlist(width)
	cases := []struct{ a, b uint64 }{
		{0, 0},
		{0xffffffff, 1},
		{0x80000000, 0x80000000},
		{0x12345678, 0x9abcdef0},
	}
	for _, c := range cases {
		sum, cout := rcaCompute(t, nl, width, c.a, c.b, 0)
		total := c.a + c.b
		if sum != total&0xffffffff || cout != uint8(total>>32) {
			t.Errorf("RCA32(%#x,%#x) = (%#x,%d), want (%#x,%d)",
				c.a, c.b, sum, cout, total&0xffffffff, total>>32)
		}
	}
}

func TestALUFunctions(t *testing.T) {
	const width = 8
	nl := BuildALUNetlist(width)
	run := func(a, b uint8, op ALUOp) (uint8, uint8) {
		in := make([]uint8, 2*width+2)
		for i := 0; i < width; i++ {
			in[i] = a >> uint(i) & 1
			in[width+i] = b >> uint(i) & 1
		}
		in[2*width] = uint8(op) & 1
		in[2*width+1] = uint8(op) >> 1 & 1
		out := nl.OutputValues(nl.Evaluate(in))
		var r uint8
		for i := 0; i < width; i++ {
			r |= out[i] << uint(i)
		}
		return r, out[width]
	}
	f := func(a, b uint8) bool {
		add, _ := run(a, b, ALUAdd)
		sub, _ := run(a, b, ALUSub)
		and, _ := run(a, b, ALUAnd)
		xor, _ := run(a, b, ALUXor)
		return add == a+b && sub == a-b && and == a&b && xor == a^b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPUFDatapathStructure(t *testing.T) {
	p := BuildPUFDatapath(PUFDatapathConfig{Width: 16})
	if got := p.ResponseBits(); got != 16 {
		t.Errorf("ResponseBits = %d, want 16", got)
	}
	if len(p.Net.Inputs) != 32 {
		t.Errorf("inputs = %d, want 32", len(p.Net.Inputs))
	}
	// Both ALUs must compute the same sums for any challenge.
	ch := make([]uint8, 32)
	for i := range ch {
		ch[i] = uint8(i % 2)
	}
	val := p.Net.Evaluate(p.SetChallenge(ch))
	for i := 0; i < 16; i++ {
		a0, a1 := p.Pair(i)
		if val[a0] != val[a1] {
			t.Errorf("bit %d: ALU0 and ALU1 disagree functionally", i)
		}
	}
}

func TestPUFDatapathCarryOption(t *testing.T) {
	p := BuildPUFDatapath(PUFDatapathConfig{Width: 8, UseCarry: true})
	if got := p.ResponseBits(); got != 9 {
		t.Errorf("ResponseBits = %d, want 9", got)
	}
	a0, a1 := p.Pair(8)
	if a0 != p.A0Cout || a1 != p.A1Cout {
		t.Error("Pair(width) should return the carry-out nets")
	}
}

func TestPUFDatapathPairPanicsOutOfRange(t *testing.T) {
	p := BuildPUFDatapath(PUFDatapathConfig{Width: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range pair")
		}
	}()
	p.Pair(4) // UseCarry false → only 0..3 valid
}

func TestDepthGrowsWithWidth(t *testing.T) {
	d8 := BuildRCANetlist(8).Depth()
	d16 := BuildRCANetlist(16).Depth()
	d32 := BuildRCANetlist(32).Depth()
	if !(d8 < d16 && d16 < d32) {
		t.Errorf("depths not monotonic: %d, %d, %d", d8, d16, d32)
	}
	// The ripple-carry critical path grows ~2 gates per bit.
	if d32 < 32 {
		t.Errorf("RCA32 depth = %d, implausibly shallow", d32)
	}
}

func TestCountKindAndLogicGates(t *testing.T) {
	nl := BuildFullAdderNetlist()
	if got := nl.CountKind(Xor); got != 2 {
		t.Errorf("XOR count = %d, want 2", got)
	}
	if got := nl.CountKind(And); got != 2 {
		t.Errorf("AND count = %d, want 2", got)
	}
	if got := nl.CountKind(Or); got != 1 {
		t.Errorf("OR count = %d, want 1", got)
	}
	if got := nl.LogicGates(); got != 5 {
		t.Errorf("LogicGates = %d, want 5", got)
	}
}

func TestFanout(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	x := b.Gate(Not, a)
	y := b.Gate(Not, a)
	b.Gate(And, x, y)
	nl := b.MustBuild()
	if len(nl.Fanout[a]) != 2 {
		t.Errorf("fanout of input = %d, want 2", len(nl.Fanout[a]))
	}
}

func TestEvaluatePanicsOnBadInputCount(t *testing.T) {
	nl := BuildFullAdderNetlist()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong input count")
		}
	}()
	nl.Evaluate([]uint8{1})
}

func TestMux2(t *testing.T) {
	b := NewBuilder()
	s := b.Input("s")
	d0 := b.Input("d0")
	d1 := b.Input("d1")
	b.Output("y", Mux2(b, s, d0, d1))
	nl := b.MustBuild()
	for _, c := range []struct{ s, d0, d1, want uint8 }{
		{0, 0, 1, 0}, {0, 1, 0, 1}, {1, 0, 1, 1}, {1, 1, 0, 0},
	} {
		out := nl.OutputValues(nl.Evaluate([]uint8{c.s, c.d0, c.d1}))
		if out[0] != c.want {
			t.Errorf("mux(s=%d,d0=%d,d1=%d) = %d, want %d", c.s, c.d0, c.d1, out[0], c.want)
		}
	}
}
