package netlist

import (
	"testing"
	"testing/quick"
)

func claCompute(nl *Netlist, width int, a, b uint64, cin uint8) (sum uint64, cout uint8) {
	in := make([]uint8, 2*width+1)
	for i := 0; i < width; i++ {
		in[i] = uint8(a >> uint(i) & 1)
		in[width+i] = uint8(b >> uint(i) & 1)
	}
	in[2*width] = cin
	out := nl.OutputValues(nl.Evaluate(in))
	for i := 0; i < width; i++ {
		sum |= uint64(out[i]) << uint(i)
	}
	return sum, out[width]
}

func TestCLAMatchesIntegerAdd(t *testing.T) {
	for _, width := range []int{4, 7, 16} {
		nl := BuildCLANetlist(width)
		mask := uint64(1)<<uint(width) - 1
		f := func(a, b uint32, cin bool) bool {
			c := uint8(0)
			if cin {
				c = 1
			}
			av, bv := uint64(a)&mask, uint64(b)&mask
			sum, cout := claCompute(nl, width, av, bv, c)
			total := av + bv + uint64(c)
			return sum == total&mask && cout == uint8(total>>uint(width))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

func TestCLA32Exhaustive(t *testing.T) {
	nl := BuildCLANetlist(32)
	for _, c := range []struct{ a, b uint64 }{
		{0, 0},
		{0xffffffff, 1},
		{0xffffffff, 0xffffffff},
		{0x0f0f0f0f, 0xf0f0f0f0},
		{0x12345678, 0x9abcdef0},
	} {
		sum, cout := claCompute(nl, 32, c.a, c.b, 0)
		total := c.a + c.b
		if sum != total&0xffffffff || cout != uint8(total>>32) {
			t.Errorf("CLA32(%#x,%#x) = (%#x,%d)", c.a, c.b, sum, cout)
		}
	}
}

func TestCLAIsShallowerThanRCA(t *testing.T) {
	// The architectural point of lookahead: logic depth grows per 4-bit
	// group, not per bit.
	dCLA := BuildCLANetlist(32).Depth()
	dRCA := BuildRCANetlist(32).Depth()
	if dCLA >= dRCA {
		t.Errorf("CLA depth %d not shallower than RCA depth %d", dCLA, dRCA)
	}
	if dRCA-dCLA < 20 {
		t.Errorf("depth gap only %d; lookahead structure suspect", dRCA-dCLA)
	}
}

func TestCLAUsesMoreGates(t *testing.T) {
	gCLA := BuildCLANetlist(16).LogicGates()
	gRCA := BuildRCANetlist(16).LogicGates()
	if gCLA <= gRCA {
		t.Errorf("CLA gates %d should exceed RCA gates %d (the area/depth trade)", gCLA, gRCA)
	}
}

func TestPUFDatapathCLAVariant(t *testing.T) {
	p := BuildPUFDatapath(PUFDatapathConfig{Width: 16, Adder: AdderCLA})
	if p.ResponseBits() != 16 {
		t.Fatalf("ResponseBits = %d", p.ResponseBits())
	}
	// Functional agreement between the two ALUs.
	ch := make([]uint8, 32)
	for i := range ch {
		ch[i] = uint8((i * 7) % 2)
	}
	val := p.Net.Evaluate(p.SetChallenge(ch))
	for i := 0; i < 16; i++ {
		a0, a1 := p.Pair(i)
		if val[a0] != val[a1] {
			t.Errorf("bit %d: CLA ALUs disagree", i)
		}
	}
	// And the CLA datapath must agree with the RCA datapath functionally.
	r := BuildPUFDatapath(PUFDatapathConfig{Width: 16, Adder: AdderRCA})
	rv := r.Net.Evaluate(r.SetChallenge(ch))
	for i := 0; i < 16; i++ {
		ca, _ := p.Pair(i)
		ra, _ := r.Pair(i)
		if val[ca] != rv[ra] {
			t.Errorf("bit %d: CLA and RCA datapaths compute different sums", i)
		}
	}
}

func TestAdderKindString(t *testing.T) {
	if AdderRCA.String() != "ripple-carry" || AdderCLA.String() != "carry-lookahead" {
		t.Error("AdderKind names wrong")
	}
	if AdderKind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
}
