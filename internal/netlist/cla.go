package netlist

import "fmt"

// Carry-lookahead adder support. The ALU PUF exploits carry propagation;
// how much entropy the race extracts depends on the adder architecture.
// A ripple-carry adder (the paper's choice) has long, operand-dependent
// carry chains; a carry-lookahead adder flattens them into wide AND-OR
// trees with shallow, more uniform depth. BuildPUFDatapath can be
// instantiated over either, and the repository's ablation benches compare
// the resulting PUF quality (see DESIGN.md).

// AdderKind selects the adder architecture of a PUF datapath.
type AdderKind int

// Adder architectures.
const (
	// AdderRCA is the ripple-carry adder (the paper's design).
	AdderRCA AdderKind = iota
	// AdderCLA is a 4-bit-group carry-lookahead adder with group-level
	// carry ripple.
	AdderCLA
)

// String names the adder kind.
func (k AdderKind) String() string {
	switch k {
	case AdderRCA:
		return "ripple-carry"
	case AdderCLA:
		return "carry-lookahead"
	default:
		return fmt.Sprintf("AdderKind(%d)", int(k))
	}
}

// CarryLookaheadAdder instantiates a width-bit adder from 4-bit lookahead
// groups: within each group the carries are two-level AND-OR functions of
// the generate/propagate signals, and groups chain through their group
// carry-out. Returns the sum nets (LSB first) and the final carry.
func CarryLookaheadAdder(b *Builder, aa, bb []int, cin int, x, y float64) (sum []int, cout int) {
	if len(aa) != len(bb) {
		panic(fmt.Sprintf("netlist: CLA with operand widths %d and %d", len(aa), len(bb)))
	}
	width := len(aa)
	sum = make([]int, width)
	carry := cin
	for base := 0; base < width; base += 4 {
		n := 4
		if base+n > width {
			n = width - base
		}
		gx := x + float64(base/4)*6*cellPitch
		// Per-bit generate and propagate.
		g := make([]int, n)
		p := make([]int, n)
		for i := 0; i < n; i++ {
			gy := y + float64(base+i)*tileHeight
			g[i] = b.Gate(And, aa[base+i], bb[base+i])
			b.Place(g[i], gx, gy)
			p[i] = b.Gate(Xor, aa[base+i], bb[base+i])
			b.Place(p[i], gx+cellPitch, gy)
		}
		// Carries into each bit of the group: c_{i+1} = g_i OR p_i·g_{i-1}
		// OR ... OR p_i···p_0·c_in, built as one wide AND-OR per carry.
		carries := make([]int, n+1)
		carries[0] = carry
		for i := 1; i <= n; i++ {
			terms := make([]int, 0, i+1)
			terms = append(terms, g[i-1])
			for j := i - 2; j >= 0; j-- {
				// p_{i-1}·p_{i-2}···p_{j+1}·g_j
				and := []int{g[j]}
				for k := j + 1; k <= i-1; k++ {
					and = append(and, p[k])
				}
				terms = append(terms, b.Gate(And, and...))
			}
			// p_{i-1}···p_0·c_in
			and := []int{carry}
			for k := 0; k <= i-1; k++ {
				and = append(and, p[k])
			}
			terms = append(terms, b.Gate(And, and...))
			if len(terms) == 1 {
				carries[i] = terms[0]
			} else {
				carries[i] = b.Gate(Or, terms...)
			}
			b.Place(carries[i], gx+2*cellPitch, y+float64(base+i-1)*tileHeight)
		}
		for i := 0; i < n; i++ {
			sum[base+i] = b.Gate(Xor, p[i], carries[i])
			b.Place(sum[base+i], gx+3*cellPitch, y+float64(base+i)*tileHeight)
		}
		carry = carries[n]
	}
	return sum, carry
}

// BuildCLANetlist builds a standalone width-bit carry-lookahead adder
// netlist with inputs a[width], b[width], cin and outputs sum[width], cout.
func BuildCLANetlist(width int) *Netlist {
	b := NewBuilder()
	aa := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	cin := b.Input("cin")
	sum, cout := CarryLookaheadAdder(b, aa, bb, cin, 0, 0)
	for i, s := range sum {
		b.Output(fmt.Sprintf("sum[%d]", i), s)
	}
	b.Output("cout", cout)
	return b.MustBuild()
}
