// Package netlist models structural gate-level netlists: the combinational
// networks of gates and wires whose signal-propagation delays the ALU PUF
// turns into device fingerprints.
//
// The representation is deliberately simple and fast to traverse: every gate
// drives exactly one net, and the net is identified by the index of its
// driving gate. Primary inputs are gates of kind Input; constants are gates
// of kind Const0/Const1. A Netlist is immutable once built; Builder performs
// construction and validation (single driver, acyclicity, arity checks).
//
// Besides the generic builder, the package provides the structural
// components of the paper's Section 2: full adders, ripple-carry adders, and
// the complete two-ALU PUF datapath, each with a die placement so that the
// quad-tree variation model (package variation) can assign spatially
// correlated process parameters.
package netlist

import (
	"fmt"
	"sort"
)

// Kind enumerates the gate types in the cell library.
type Kind int

// Gate kinds. Input gates have no fanin and model primary inputs; Const0 and
// Const1 model tie-offs. The remaining kinds are standard combinational
// cells.
const (
	Input Kind = iota
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	numKinds
)

var kindNames = [...]string{"INPUT", "CONST0", "CONST1", "BUF", "NOT", "AND", "OR", "NAND", "NOR", "XOR", "XNOR"}

// String returns the conventional cell-library name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// arity returns the (min, max) fanin count for the kind; max<0 means
// unbounded.
func (k Kind) arity() (int, int) {
	switch k {
	case Input, Const0, Const1:
		return 0, 0
	case Buf, Not:
		return 1, 1
	case And, Or, Nand, Nor, Xor, Xnor:
		return 2, -1
	default:
		return 0, -1
	}
}

// Eval computes the Boolean function of the kind over the fanin values
// (each 0 or 1).
func (k Kind) Eval(in []uint8) uint8 {
	switch k {
	case Const0:
		return 0
	case Const1:
		return 1
	case Buf, Input:
		if len(in) == 0 {
			return 0
		}
		return in[0]
	case Not:
		return in[0] ^ 1
	case And, Nand:
		v := uint8(1)
		for _, b := range in {
			v &= b
		}
		if k == Nand {
			v ^= 1
		}
		return v
	case Or, Nor:
		v := uint8(0)
		for _, b := range in {
			v |= b
		}
		if k == Nor {
			v ^= 1
		}
		return v
	case Xor, Xnor:
		v := uint8(0)
		for _, b := range in {
			v ^= b
		}
		if k == Xnor {
			v ^= 1
		}
		return v
	default:
		panic("netlist: eval of unknown gate kind " + k.String())
	}
}

// ControllingValue returns (value, ok): ok reports whether the kind has a
// controlling input value (an input value that alone determines the output),
// and value is that input value. AND/NAND are controlled by 0, OR/NOR by 1;
// XOR/XNOR and single-input gates have none.
func (k Kind) ControllingValue() (uint8, bool) {
	switch k {
	case And, Nand:
		return 0, true
	case Or, Nor:
		return 1, true
	default:
		return 0, false
	}
}

// Gate is one cell instance. Fanin holds the indices of the driving gates.
// X, Y is the placement on the die in micrometres, used by the spatial
// variation model.
type Gate struct {
	Kind  Kind
	Name  string
	Fanin []int
	X, Y  float64
}

// Netlist is an immutable combinational netlist. Gate i drives net i.
type Netlist struct {
	Gates   []Gate
	Inputs  []int          // gate indices of primary inputs, in declaration order
	Outputs []int          // gate indices whose nets are primary outputs
	OutName []string       // names of the primary outputs, parallel to Outputs
	Order   []int          // a topological order of all gates (inputs first)
	ByName  map[string]int // net name -> gate index (inputs and named gates)
	Fanout  [][]int        // Fanout[i] lists the gates that read net i
}

// NumGates returns the total number of gates, including Input pseudo-gates.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// CountKind returns how many gates of kind k the netlist contains.
func (n *Netlist) CountKind(k Kind) int {
	c := 0
	for i := range n.Gates {
		if n.Gates[i].Kind == k {
			c++
		}
	}
	return c
}

// LogicGates returns the number of gates excluding Input/Const pseudo-gates.
func (n *Netlist) LogicGates() int {
	c := 0
	for i := range n.Gates {
		switch n.Gates[i].Kind {
		case Input, Const0, Const1:
		default:
			c++
		}
	}
	return c
}

// Depth returns the maximum logic depth (number of logic gates on the
// longest input-to-output path).
func (n *Netlist) Depth() int {
	depth := make([]int, len(n.Gates))
	maxDepth := 0
	for _, g := range n.Order {
		d := 0
		for _, f := range n.Gates[g].Fanin {
			if depth[f] > d {
				d = depth[f]
			}
		}
		switch n.Gates[g].Kind {
		case Input, Const0, Const1:
			depth[g] = 0
		default:
			depth[g] = d + 1
		}
		if depth[g] > maxDepth {
			maxDepth = depth[g]
		}
	}
	return maxDepth
}

// Evaluate computes the Boolean value of every net given the primary-input
// assignment (parallel to Inputs). The returned slice is indexed by gate.
// It is the zero-delay functional semantics, used by tests to cross-check
// the timing engines.
func (n *Netlist) Evaluate(inputs []uint8) []uint8 {
	if len(inputs) != len(n.Inputs) {
		panic(fmt.Sprintf("netlist: Evaluate with %d inputs, want %d", len(inputs), len(n.Inputs)))
	}
	val := make([]uint8, len(n.Gates))
	for i, g := range n.Inputs {
		val[g] = inputs[i] & 1
	}
	var buf [8]uint8
	for _, g := range n.Order {
		gate := &n.Gates[g]
		if gate.Kind == Input {
			continue
		}
		in := buf[:0]
		for _, f := range gate.Fanin {
			in = append(in, val[f])
		}
		val[g] = gate.Kind.Eval(in)
	}
	return val
}

// OutputValues extracts the primary-output values from a net-value vector
// produced by Evaluate.
func (n *Netlist) OutputValues(val []uint8) []uint8 {
	out := make([]uint8, len(n.Outputs))
	for i, g := range n.Outputs {
		out[i] = val[g]
	}
	return out
}

// Builder constructs a Netlist incrementally.
type Builder struct {
	gates   []Gate
	inputs  []int
	outputs []int
	outName []string
	byName  map[string]int
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...any) int {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return -1
}

// Input declares a primary input with the given name and returns its net.
func (b *Builder) Input(name string) int {
	return b.add(Gate{Kind: Input, Name: name})
}

// InputBus declares width primary inputs named name[0..width) and returns
// their nets, LSB first.
func (b *Builder) InputBus(name string, width int) []int {
	nets := make([]int, width)
	for i := range nets {
		nets[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return nets
}

// Const returns a constant net with the given bit value.
func (b *Builder) Const(v uint8) int {
	if v == 0 {
		return b.add(Gate{Kind: Const0, Name: "const0"})
	}
	return b.add(Gate{Kind: Const1, Name: "const1"})
}

// Gate instantiates a gate of the given kind over the fanin nets and returns
// its output net.
func (b *Builder) Gate(kind Kind, fanin ...int) int {
	return b.add(Gate{Kind: kind, Fanin: fanin})
}

// Named instantiates a named gate; the name is registered for lookup.
func (b *Builder) Named(kind Kind, name string, fanin ...int) int {
	return b.add(Gate{Kind: kind, Name: name, Fanin: fanin})
}

func (b *Builder) add(g Gate) int {
	if b.err != nil {
		return -1
	}
	lo, hi := g.Kind.arity()
	if len(g.Fanin) < lo || (hi >= 0 && len(g.Fanin) > hi) {
		return b.fail("netlist: %s gate with %d fanins", g.Kind, len(g.Fanin))
	}
	id := len(b.gates)
	for _, f := range g.Fanin {
		if f < 0 || f >= id {
			return b.fail("netlist: gate %d (%s) has invalid fanin %d", id, g.Kind, f)
		}
	}
	b.gates = append(b.gates, g)
	if g.Name != "" {
		if _, dup := b.byName[g.Name]; dup {
			return b.fail("netlist: duplicate net name %q", g.Name)
		}
		b.byName[g.Name] = id
	}
	return id
}

// Output marks net as a primary output with the given name.
func (b *Builder) Output(name string, net int) {
	if b.err != nil {
		return
	}
	if net < 0 || net >= len(b.gates) {
		b.fail("netlist: output %q references invalid net %d", name, net)
		return
	}
	b.outputs = append(b.outputs, net)
	b.outName = append(b.outName, name)
}

// Place assigns a die placement (micrometres) to the gate driving net.
func (b *Builder) Place(net int, x, y float64) {
	if b.err != nil || net < 0 || net >= len(b.gates) {
		return
	}
	b.gates[net].X = x
	b.gates[net].Y = y
}

// Build validates and freezes the netlist. Because Builder only permits
// fanins that reference earlier gates, declaration order is already a
// topological order.
func (b *Builder) Build() (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := &Netlist{
		Gates:   b.gates,
		Inputs:  b.inputsOf(),
		Outputs: b.outputs,
		OutName: b.outName,
		ByName:  b.byName,
	}
	n.Order = make([]int, len(n.Gates))
	for i := range n.Order {
		n.Order[i] = i
	}
	n.Fanout = make([][]int, len(n.Gates))
	for g := range n.Gates {
		for _, f := range n.Gates[g].Fanin {
			n.Fanout[f] = append(n.Fanout[f], g)
		}
	}
	return n, nil
}

// MustBuild is Build that panics on error, for statically correct netlists
// constructed by this package's own component builders.
func (b *Builder) MustBuild() *Netlist {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

func (b *Builder) inputsOf() []int {
	var in []int
	for i := range b.gates {
		if b.gates[i].Kind == Input {
			in = append(in, i)
		}
	}
	sort.Ints(in)
	return in
}
