package netlist

import "fmt"

// This file provides the structural components of the PUFatt hardware:
// full adders, ripple-carry adders, a small multi-function ALU, and the
// two-ALU PUF datapath of the paper's Figure 1.

// cell placement constants, in micrometres, loosely modelled on a 45 nm
// standard-cell row: each full adder occupies one placement tile; the two
// redundant ALUs sit in adjacent columns ("close proximity", Section 4.1).
const (
	cellPitch  = 1.4 // horizontal pitch between gates inside a tile
	tileHeight = 3.0 // vertical pitch between adder bit slices
	aluSpacing = 18.0
)

// FullAdderNets holds the nets of one full adder instance.
type FullAdderNets struct {
	Sum, Cout int
}

// FullAdder instantiates the standard two-XOR/two-AND/one-OR full adder:
//
//	sum  = a XOR b XOR cin
//	cout = (a AND b) OR ((a XOR b) AND cin)
//
// Gates are placed around (x, y).
func FullAdder(b *Builder, a, bb, cin int, x, y float64) FullAdderNets {
	s1 := b.Gate(Xor, a, bb)
	b.Place(s1, x, y)
	sum := b.Gate(Xor, s1, cin)
	b.Place(sum, x+cellPitch, y)
	c1 := b.Gate(And, a, bb)
	b.Place(c1, x+2*cellPitch, y)
	c2 := b.Gate(And, s1, cin)
	b.Place(c2, x+3*cellPitch, y)
	cout := b.Gate(Or, c1, c2)
	b.Place(cout, x+4*cellPitch, y)
	return FullAdderNets{Sum: sum, Cout: cout}
}

// RippleCarryAdder instantiates a width-bit ripple-carry adder over the
// operand nets aa and bb (LSB first) with carry-in cin, placed as a column
// of full-adder tiles starting at (x, y). It returns the sum nets (LSB
// first) and the carry-out net.
func RippleCarryAdder(b *Builder, aa, bb []int, cin int, x, y float64) (sum []int, cout int) {
	if len(aa) != len(bb) {
		panic(fmt.Sprintf("netlist: ripple-carry adder with operand widths %d and %d", len(aa), len(bb)))
	}
	sum = make([]int, len(aa))
	carry := cin
	for i := range aa {
		fa := FullAdder(b, aa[i], bb[i], carry, x, y+float64(i)*tileHeight)
		sum[i] = fa.Sum
		carry = fa.Cout
	}
	return sum, carry
}

// Mux2 instantiates a 2:1 multiplexer: out = s ? d1 : d0.
func Mux2(b *Builder, s, d0, d1 int) int {
	ns := b.Gate(Not, s)
	t0 := b.Gate(And, ns, d0)
	t1 := b.Gate(And, s, d1)
	return b.Gate(Or, t0, t1)
}

// ALUOp selects the function of the multi-function ALU built by ALU.
type ALUOp int

// ALU operations, encoded on two select nets (op0, op1).
const (
	ALUAdd ALUOp = 0 // op1=0 op0=0
	ALUSub ALUOp = 1 // op1=0 op0=1
	ALUAnd ALUOp = 2 // op1=1 op0=0
	ALUXor ALUOp = 3 // op1=1 op0=1
)

// ALUNets holds the nets of one multi-function ALU instance.
type ALUNets struct {
	Result []int // LSB first
	Cout   int
}

// ALU instantiates a width-bit multi-function ALU over operands aa and bb
// with function select nets op0 (add/sub, and/xor) and op1 (arith/logic):
// ADD, SUB (two's complement via inverted B and carry-in), AND, XOR. The
// arithmetic path is a ripple-carry adder — the structure the ALU PUF
// exploits. Placement starts at (x, y).
func ALU(b *Builder, aa, bb []int, op0, op1 int, x, y float64) ALUNets {
	width := len(aa)
	// B operand conditioning for subtraction: b XOR op0 when in arith mode.
	bCond := make([]int, width)
	for i := range bb {
		bCond[i] = b.Gate(Xor, bb[i], op0)
		b.Place(bCond[i], x-2*cellPitch, y+float64(i)*tileHeight)
	}
	sum, cout := RippleCarryAdder(b, aa, bCond, op0, x, y)
	res := make([]int, width)
	for i := 0; i < width; i++ {
		andBit := b.Gate(And, aa[i], bb[i])
		xorBit := b.Gate(Xor, aa[i], bb[i])
		logic := Mux2(b, op0, andBit, xorBit)
		res[i] = Mux2(b, op1, sum[i], logic)
		b.Place(res[i], x+6*cellPitch, y+float64(i)*tileHeight)
	}
	return ALUNets{Result: res, Cout: cout}
}

// PUFDatapath describes the built two-ALU PUF netlist: which output nets
// belong to which ALU, pairwise. Response bit i is derived by an arbiter
// comparing the arrival times of A0Sum[i] and A1Sum[i] (and, if UseCarry,
// one extra bit from the two carry-outs).
type PUFDatapath struct {
	Net      *Netlist
	Width    int   // operand width (= number of sum-bit response pairs)
	AInputs  []int // operand A input nets, LSB first (shared by both ALUs)
	BInputs  []int // operand B input nets
	A0Sum    []int // ALU 0 sum nets
	A1Sum    []int // ALU 1 sum nets
	A0Cout   int
	A1Cout   int
	UseCarry bool
}

// PUFDatapathConfig configures BuildPUFDatapath.
type PUFDatapathConfig struct {
	Width    int       // operand width in bits (16 or 32 in the paper)
	UseCarry bool      // compare the carry-out pair as an extra response bit
	Adder    AdderKind // adder architecture (default ripple-carry)
	OriginX  float64   // die placement of the datapath
	OriginY  float64
}

// BuildPUFDatapath builds the paper's Figure 1 structure: two identical
// ripple-carry adder datapaths driven by the same challenge operands, placed
// in adjacent columns. The synchronization logic that launches both ALUs on
// the same clock edge is a sequential element and is modelled in package
// core; structurally this netlist is the pure combinational race.
func BuildPUFDatapath(cfg PUFDatapathConfig) *PUFDatapath {
	if cfg.Width <= 0 {
		panic("netlist: PUF datapath with non-positive width")
	}
	b := NewBuilder()
	aa := b.InputBus("a", cfg.Width)
	bb := b.InputBus("b", cfg.Width)
	zero := b.Const(0)
	adder := RippleCarryAdder
	if cfg.Adder == AdderCLA {
		adder = CarryLookaheadAdder
	}
	s0, c0 := adder(b, aa, bb, zero, cfg.OriginX, cfg.OriginY)
	s1, c1 := adder(b, aa, bb, zero, cfg.OriginX+aluSpacing, cfg.OriginY)
	for i := 0; i < cfg.Width; i++ {
		b.Output(fmt.Sprintf("o[%d]", i), s0[i])
	}
	b.Output("co", c0)
	for i := 0; i < cfg.Width; i++ {
		b.Output(fmt.Sprintf("o'[%d]", i), s1[i])
	}
	b.Output("co'", c1)
	return &PUFDatapath{
		Net:      b.MustBuild(),
		Width:    cfg.Width,
		AInputs:  aa,
		BInputs:  bb,
		A0Sum:    s0,
		A1Sum:    s1,
		A0Cout:   c0,
		A1Cout:   c1,
		UseCarry: cfg.UseCarry,
	}
}

// ResponseBits returns the number of response bits the datapath produces.
func (p *PUFDatapath) ResponseBits() int {
	if p.UseCarry {
		return p.Width + 1
	}
	return p.Width
}

// Pair returns the two nets whose arrival-time race produces response bit i.
func (p *PUFDatapath) Pair(i int) (a0, a1 int) {
	if i < p.Width {
		return p.A0Sum[i], p.A1Sum[i]
	}
	if p.UseCarry && i == p.Width {
		return p.A0Cout, p.A1Cout
	}
	panic(fmt.Sprintf("netlist: response bit %d out of range (width %d)", i, p.Width))
}

// SetChallenge writes the 2*Width challenge bits into an input vector for
// Netlist.Evaluate / the timing engines: the low Width bits of the challenge
// drive operand A and the high Width bits drive operand B, LSB first.
func (p *PUFDatapath) SetChallenge(challenge []uint8) []uint8 {
	if len(challenge) != 2*p.Width {
		panic(fmt.Sprintf("netlist: challenge of %d bits, want %d", len(challenge), 2*p.Width))
	}
	in := make([]uint8, len(p.Net.Inputs))
	copy(in, challenge)
	return in
}

// BuildFullAdderNetlist builds a single full adder as a standalone netlist,
// used by unit tests and the resource estimator.
func BuildFullAdderNetlist() *Netlist {
	b := NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	cin := b.Input("cin")
	fa := FullAdder(b, a, bb, cin, 0, 0)
	b.Output("sum", fa.Sum)
	b.Output("cout", fa.Cout)
	return b.MustBuild()
}

// BuildRCANetlist builds a standalone width-bit ripple-carry adder netlist
// with inputs a[width], b[width], cin and outputs sum[width], cout.
func BuildRCANetlist(width int) *Netlist {
	b := NewBuilder()
	aa := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	cin := b.Input("cin")
	sum, cout := RippleCarryAdder(b, aa, bb, cin, 0, 0)
	for i, s := range sum {
		b.Output(fmt.Sprintf("sum[%d]", i), s)
	}
	b.Output("cout", cout)
	return b.MustBuild()
}

// BuildALUNetlist builds a standalone width-bit multi-function ALU netlist
// with inputs a[width], b[width], op0, op1 and outputs r[width], cout.
func BuildALUNetlist(width int) *Netlist {
	b := NewBuilder()
	aa := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	op0 := b.Input("op0")
	op1 := b.Input("op1")
	alu := ALU(b, aa, bb, op0, op1, 0, 0)
	for i, r := range alu.Result {
		b.Output(fmt.Sprintf("r[%d]", i), r)
	}
	b.Output("cout", alu.Cout)
	return b.MustBuild()
}
