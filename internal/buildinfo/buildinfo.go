// Package buildinfo gives every pufatt command a uniform identity: one
// Info struct assembled from the Go build metadata, printable as text or
// JSON. Keeping it in one place means all six tools answer -version the
// same way and a fleet operator can machine-read which build is deployed.
package buildinfo

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
)

// Version is the semantic version stamped at release time (overridable via
// -ldflags "-X pufatt/internal/buildinfo.Version=v1.2.3"). "dev" means an
// unstamped build; the VCS fields below still pin it exactly.
var Version = "dev"

// Info describes one built tool.
type Info struct {
	Tool      string `json:"tool"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Revision / DirtyTree come from the VCS stamp when the binary was
	// built inside a checkout ("" / false otherwise).
	Revision  string `json:"revision,omitempty"`
	DirtyTree bool   `json:"dirty_tree,omitempty"`
}

// Get assembles the build info for the named tool.
func Get(tool string) Info {
	info := Info{
		Tool:      tool,
		Version:   Version,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.modified":
				info.DirtyTree = s.Value == "true"
			}
		}
	}
	return info
}

// WriteText renders the info as the classic one-line -version output.
func (i Info) WriteText(w io.Writer) {
	rev := ""
	if i.Revision != "" {
		short := i.Revision
		if len(short) > 12 {
			short = short[:12]
		}
		rev = " (" + short
		if i.DirtyTree {
			rev += "-dirty"
		}
		rev += ")"
	}
	fmt.Fprintf(w, "%s %s%s %s %s/%s\n", i.Tool, i.Version, rev, i.GoVersion, i.OS, i.Arch)
}

// WriteJSON renders the info as one JSON object.
func (i Info) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(i)
}

// VersionFlags registers the standard -version/-json flag pair on the
// default flag set. Call it before flag.Parse and invoke the returned
// function right after: when -version was given it prints the build info
// (JSON under -json) and exits 0; otherwise it does nothing.
func VersionFlags(tool string) (handle func()) {
	show := flag.Bool("version", false, "print build information and exit")
	asJSON := flag.Bool("json", false, "with -version, print build information as JSON")
	return func() {
		if !*show {
			return
		}
		info := Get(tool)
		if *asJSON {
			if err := info.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			info.WriteText(os.Stdout)
		}
		os.Exit(0)
	}
}
