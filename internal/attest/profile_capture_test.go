package attest

import (
	"context"
	"strconv"
	"testing"
	"time"

	"pufatt/internal/telemetry"
)

// The alert→profile chain, deterministic under the step clock: a burn-rate
// alert firing must trigger exactly one capture per transition, tagged with
// the firing rule's name and the rule metric's exemplar trace ID — the
// incident's profile, alert, and trace tree all cross-referenced.
func TestAlertTriggersProfileCapture(t *testing.T) {
	o := newObsFixture(t, 83)
	o.tel.SetProfileDir(t.TempDir())
	o.tel.Profiler.SetCPUDuration(time.Millisecond)
	o.tel.Profiler.SetClock(o.clk.now)

	// Calibrate the SLO off an honest session, then shrink the burn
	// windows to a few ticks so the step clock can saturate them.
	res, _, err := o.tel.runSessionRetry(context.Background(), o.verifier, o.prover, DefaultLink(), RetryPolicy{})
	if err != nil || !res.Accepted {
		t.Fatalf("calibration session: accepted=%v err=%v", res.Accepted, err)
	}
	slo := o.tel.Health.SLO()
	slo.MaxRTTP95 = res.Elapsed * 10
	o.tel.SetSLO(slo)
	rules := DefaultAlertRules(slo)
	for i := range rules {
		rules[i].FastWindow = 2 * obsTick
		rules[i].SlowWindow = 4 * obsTick
	}
	o.tel.Alerts.SetRules(rules)

	// Honest traffic: no alert, so no capture.
	for i := 0; i < 4; i++ {
		o.sessions(t, o.prover, 4)
		o.tick()
	}
	if n := len(o.tel.Profiler.Snapshot()); n != 0 {
		t.Fatalf("healthy traffic captured %d profiles", n)
	}

	// Jitter past δ until the RTT burn rule fires.
	jitter := NewFaultyLink(o.prover, FaultPlan{Jitter: 1, JitterSeconds: o.verifier.Delta()}, 7)
	for i := 0; i < 5; i++ {
		o.sessions(t, jitter, 4)
		o.tick()
	}
	if st := o.alert(t, "rtt-p95-burn"); st.State != telemetry.AlertFiring {
		t.Fatalf("rtt-p95-burn = %s, want firing", st.State)
	}

	// Exactly one capture per firing transition, keyed by rule name.
	if v := o.tel.ProfileCaptures.With("rtt-p95-burn").Value(); v != 1 {
		t.Fatalf("rtt-p95-burn captures = %d, want exactly 1", v)
	}
	var capture telemetry.ProfileCapture
	found := false
	for _, e := range o.tel.Profiler.Snapshot() {
		if e.Trigger == "rtt-p95-burn" {
			capture, found = e, true
		}
	}
	if !found {
		t.Fatalf("no capture for rtt-p95-burn in ring: %+v", o.tel.Profiler.Snapshot())
	}
	if capture.Alert != "rtt-p95-burn" {
		t.Fatalf("capture alert = %q, want the firing rule", capture.Alert)
	}
	if len(capture.Files) != 4 || len(capture.Skipped) != 0 {
		t.Fatalf("capture incomplete: files=%v skipped=%v", capture.Files, capture.Skipped)
	}

	// The capture's trace ID is the RTT exemplar: a real trace whose tree
	// holds the rejected session's spans.
	if capture.Trace == "" {
		t.Fatal("alert capture carries no trace ID")
	}
	id, err := strconv.ParseUint(capture.Trace, 16, 64)
	if err != nil {
		t.Fatalf("capture trace %q not a trace ID: %v", capture.Trace, err)
	}
	spans := o.tel.Tracer.ByTrace(telemetry.TraceID(id))
	if len(spans) == 0 {
		t.Fatalf("capture trace %s has no spans in the ring", capture.Trace)
	}
	hasSession := false
	for _, sp := range spans {
		if sp.Name() == "attest.session" {
			hasSession = true
		}
	}
	if !hasSession {
		t.Fatalf("capture trace %s tree lacks the attest.session span", capture.Trace)
	}

	// Recovery resolves the alert without capturing again; a re-fire
	// captures exactly once more.
	for i := 0; i < 6; i++ {
		o.sessions(t, o.prover, 4)
		o.tick()
	}
	if st := o.alert(t, "rtt-p95-burn"); st.State != telemetry.AlertResolved {
		t.Fatalf("rtt-p95-burn = %s after recovery, want resolved", st.State)
	}
	if v := o.tel.ProfileCaptures.With("rtt-p95-burn").Value(); v != 1 {
		t.Fatalf("resolution captured a profile: count = %d", v)
	}
	for i := 0; i < 5; i++ {
		o.sessions(t, jitter, 4)
		o.tick()
	}
	if st := o.alert(t, "rtt-p95-burn"); st.State != telemetry.AlertFiring {
		t.Fatalf("rtt-p95-burn = %s after re-jitter, want firing", st.State)
	}
	if v := o.tel.ProfileCaptures.With("rtt-p95-burn").Value(); v != 2 {
		t.Fatalf("rtt-p95-burn captures after re-fire = %d, want 2", v)
	}
}

// The gc-pause-vs-rtt-bound rule exists whenever a timing SLO is set, and
// judges the runtime collector's GC pause p99 against half the RTT bound —
// a GC that eats the timing margin is a protocol hazard, not ops trivia.
func TestGCPauseRuleDerivedFromSLO(t *testing.T) {
	o := newObsFixture(t, 89)
	slo := o.tel.Health.SLO()
	slo.MaxRTTP95 = 0.2
	o.tel.SetSLO(slo)
	for _, r := range o.tel.Alerts.Rules() {
		if r.Name == "gc-pause-vs-rtt-bound" {
			if r.Metric != telemetry.MetricGCPause || r.Threshold != 0.1 {
				t.Fatalf("gc-pause rule = %+v, want p99 %s vs half the RTT bound", r, telemetry.MetricGCPause)
			}
			return
		}
	}
	t.Fatal("gc-pause-vs-rtt-bound rule not derived from the timing SLO")
}
