package attest

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Regression tests for the two shutdown/leak bugs in the TCP layer: the
// guardConn watcher goroutine's lifecycle, and Server.Close's drain
// behaviour when handlers cannot exit.

// settleGoroutines waits for the goroutine count to fall back to (near)
// the baseline; a count that never settles is a leak.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 { // tolerate runtime/test plumbing goroutines
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines grew from %d to %d:\n%s", base, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A context that is already cancelled at entry must abort I/O
// synchronously and spawn no watcher at all: the caller's first read
// races nothing.
func TestGuardConnPreCancelledContext(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 100; i++ {
		client, server := net.Pipe()
		stop := guardConn(ctx, server)
		// The deadline must already be expired: this read fails without any
		// goroutine having to wake up first.
		errs := make(chan error, 1)
		go func() {
			_, err := server.Read(make([]byte, 1))
			errs <- err
		}()
		select {
		case err := <-errs:
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				t.Fatalf("read under pre-cancelled guard: %v, want timeout", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("read did not fail under a pre-cancelled guard")
		}
		stop()
		client.Close()
		server.Close()
	}
	settleGoroutines(t, base)
}

// stop() must reap the watcher regardless of how the session and the
// cancellation interleave — including a session that finishes before the
// watcher ever observes the context.
func TestGuardConnStopReapsWatcher(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		client, server := net.Pipe()
		ctx, cancel := context.WithCancel(context.Background())
		stop := guardConn(ctx, server)
		if i%2 == 0 {
			// Session ends first; the context may stay live long after.
			stop()
			cancel()
		} else {
			// Cancellation races stop(); stop must still join the watcher.
			cancel()
			stop()
		}
		client.Close()
		server.Close()
	}
	settleGoroutines(t, base)
}

// Once stop() has returned, a late cancellation must not poison the
// connection: the watcher is gone, so no SetDeadline can land after the
// caller reset deadlines for the next exchange.
func TestGuardConnStopPreventsLateDeadline(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	ctx, cancel := context.WithCancel(context.Background())
	stop := guardConn(ctx, server)
	stop()
	cancel()
	// Give a buggy (unreaped) watcher every chance to fire its deadline.
	time.Sleep(20 * time.Millisecond)
	if err := server.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.Read(make([]byte, 5))
		done <- err
	}()
	if _, err := server.Write([]byte("hello")); err != nil {
		t.Fatalf("guarded-then-released conn poisoned: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("peer read: %v", err)
	}
}

// The watcher's job: cancellation aborts an in-flight read promptly.
func TestGuardConnCancelAbortsRead(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	ctx, cancel := context.WithCancel(context.Background())
	stop := guardConn(ctx, server)
	defer stop()
	errs := make(chan error, 1)
	go func() {
		_, err := server.Read(make([]byte, 1))
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the read park
	cancel()
	select {
	case err := <-errs:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("cancelled read returned %v, want timeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not abort the in-flight read")
	}
}

// wedgedAgent blocks inside Respond until released — the handler state
// closing the connection cannot unstick (Close only aborts I/O, not
// computation).
type wedgedAgent struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (a *wedgedAgent) Respond(ch Challenge) (Response, float64, error) {
	a.once.Do(func() { close(a.entered) })
	<-a.release
	return Response{}, 0, errors.New("released")
}

func TestServerDrainTimeoutReportsWedgedHandler(t *testing.T) {
	agent := &wedgedAgent{entered: make(chan struct{}), release: make(chan struct{})}
	srv := &Server{Agent: agent, DrainTimeout: 50 * time.Millisecond}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteChallenge(conn, Challenge{Session: 1, Nonce: 2, PUFSeed: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-agent.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("agent never entered Respond")
	}
	start := time.Now()
	err = srv.Close()
	var de *DrainError
	if !errors.As(err, &de) {
		t.Fatalf("Close with wedged handler: %v, want DrainError", err)
	}
	if de.Handlers != 1 {
		t.Fatalf("DrainError.Handlers = %d, want 1", de.Handlers)
	}
	if elapsed := time.Since(start); elapsed < srv.DrainTimeout {
		t.Fatalf("Close returned after %v, before the %v drain deadline", elapsed, srv.DrainTimeout)
	}
	// Releasing the agent lets the abandoned handler finish; the idempotent
	// second Close now drains clean.
	close(agent.release)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := srv.Close(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("handler never drained after release")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Zero DrainTimeout preserves the historical contract: Close waits
// (forever if need be) and reports nil once handlers exit.
func TestServerCloseWithoutDrainTimeoutWaits(t *testing.T) {
	agent := &wedgedAgent{entered: make(chan struct{}), release: make(chan struct{})}
	srv := &Server{Agent: agent}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteChallenge(conn, Challenge{Session: 1, Nonce: 2, PUFSeed: 3}); err != nil {
		t.Fatal(err)
	}
	<-agent.entered
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("unbounded Close returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(agent.release)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close after drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close never returned after the handler drained")
	}
}

// overlapAgent records whether Respond ever ran concurrently with itself.
type overlapAgent struct {
	inFlight   atomic.Int32
	overlapped atomic.Bool
}

func (a *overlapAgent) Respond(ch Challenge) (Response, float64, error) {
	if a.inFlight.Add(1) > 1 {
		a.overlapped.Store(true)
	}
	time.Sleep(2 * time.Millisecond) // widen the overlap window
	a.inFlight.Add(-1)
	return Response{Session: ch.Session}, 1e-6, nil
}

// The server hands each connection its own goroutine but one shared
// Agent — a stateful device that answers one challenge at a time. Respond
// must therefore be serialised across connections: before the agentMu
// this raced device memory (caught as a one-off -race failure when a
// duplicated frame overlapped a redialled session's challenge).
func TestServerSerialisesAgentAcrossConnections(t *testing.T) {
	agent := &overlapAgent{}
	srv := &Server{Agent: agent}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < 4; i++ {
				session := uint64(c)<<8 | uint64(i+1)
				if err := WriteChallenge(conn, Challenge{Session: session, Nonce: 1, PUFSeed: 2}); err != nil {
					t.Error(err)
					return
				}
				resp, err := ReadResponse(conn)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Session != session {
					t.Errorf("session %d: got response for %d", session, resp.Session)
					return
				}
				if _, err := readTime(conn); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if agent.overlapped.Load() {
		t.Fatal("Agent.Respond ran concurrently across connections")
	}
}

// idleAgent answers nothing; connections in this test never send a
// challenge, so handlers exit on EOF/close.
type idleAgent struct{}

func (idleAgent) Respond(Challenge) (Response, float64, error) {
	return Response{}, 0, errors.New("unexpected challenge")
}

// The accept-racing-close regression: a connection accepted in the window
// where Close is tearing the server down must either be refused by track()
// or closed and drained — never left to wedge Close or leak its handler.
func TestServerCloseAcceptRaceHammer(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 40; i++ {
		srv := &Server{Agent: idleAgent{}, DrainTimeout: 2 * time.Second}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var dialers sync.WaitGroup
		stopDial := make(chan struct{})
		for d := 0; d < 4; d++ {
			dialers.Add(1)
			go func() {
				defer dialers.Done()
				for {
					select {
					case <-stopDial:
						return
					default:
					}
					conn, err := net.DialTimeout("tcp", addr.String(), 100*time.Millisecond)
					if err != nil {
						return // listener gone: the race window has closed
					}
					conn.Close()
				}
			}()
		}
		time.Sleep(time.Duration(i%5) * 100 * time.Microsecond) // vary the race window
		if err := srv.Close(); err != nil {
			t.Fatalf("iteration %d: Close: %v", i, err)
		}
		close(stopDial)
		dialers.Wait()
	}
	settleGoroutines(t, base)
}
