package attest

import (
	"pufatt/internal/telemetry"
)

// Alert-triggered profiling: the flight recorder answers "what did the
// protocol do" when a session fails; the profile ring answers "what was
// the process doing" when a burn-rate alert fires. The capture is named
// after the firing rule and carries the rule metric's latest windowed
// exemplar — a trace ID — so one incident yields three cross-referenced
// artifacts: the alert at /alerts, the pprof files at /debug/profiles,
// and the span tree at /debug/traces.
//
// Like flight dumps, capturing is strictly opt-in (no directory, no
// files) and never allowed to fail the control plane that triggered it.

// SetProfileDir sets the profile ring's capture directory ("" disables
// capturing, the default) — the profiling analogue of SetFlightDir.
func (t *Telemetry) SetProfileDir(dir string) { t.Profiler.SetDir(dir) }

// ProfileDir returns the configured profile-ring directory.
func (t *Telemetry) ProfileDir() string { return t.Profiler.Dir() }

// profileOnAlert captures a profile for a rule that just transitioned to
// firing. Runs on the alert transition hook, outside the alert manager's
// lock; the profiler's own single-flight guard absorbs a burst of
// simultaneous transitions (first one captures, the rest are counted as
// suppressed).
func (t *Telemetry) profileOnAlert(name string) {
	_, _, _ = t.Profiler.Capture(name, telemetry.CaptureMeta{
		Alert: name,
		Trace: t.alertExemplar(name),
	})
}

// alertExemplar resolves the firing rule's metric to its most recent
// windowed exemplar trace ID: the trace of the observation that lives in
// the bucket owning the alerted quantile — exactly the session to look at.
// Zero when the rule is unknown, the metric has no history yet, or the
// metric kind carries no exemplars (counters, gauges).
func (t *Telemetry) alertExemplar(name string) telemetry.TraceID {
	var metric string
	for _, r := range t.Alerts.Rules() {
		if r.Name == name {
			metric = r.Metric
			break
		}
	}
	if metric == "" {
		return 0
	}
	var exemplar uint64
	for _, s := range t.History.Query(telemetry.RangeQuery{Metric: metric}) {
		for i := len(s.Points) - 1; i >= 0; i-- {
			if x := s.Points[i].Exemplar; x != 0 {
				exemplar = x
				break
			}
		}
		if exemplar != 0 {
			break
		}
	}
	return telemetry.TraceID(exemplar)
}
