package attest

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pufatt/internal/telemetry"
)

// Per-route contract tests for the admin surface: method discipline,
// Content-Type, and body well-formedness — plus the concurrency and
// federation suites that lean on live admin servers.

var adminJSONRoutes = []string{
	"/metrics/history", "/alerts", "/debug/vars", "/debug/traces",
	"/debug/journal", "/debug/profiles", "/devices", "/healthz",
}

func TestAdminRouteMethodsAndContentTypes(t *testing.T) {
	o := newObsFixture(t, 61)
	o.sessions(t, o.prover, 3)
	o.tick()
	srv := httptest.NewServer(AdminMux(o.tel))
	defer srv.Close()
	client := srv.Client()

	for _, path := range append([]string{"/metrics"}, adminJSONRoutes...) {
		// GET succeeds with the declared Content-Type.
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		wantCT := "application/json; charset=utf-8"
		if path == "/metrics" {
			wantCT = "text/plain; version=0.0.4; charset=utf-8"
		}
		if ct := resp.Header.Get("Content-Type"); ct != wantCT {
			t.Errorf("GET %s: Content-Type %q, want %q", path, ct, wantCT)
		}
		if path != "/metrics" {
			var v any
			if err := json.Unmarshal(body, &v); err != nil {
				t.Errorf("GET %s: body is not JSON: %v\n%s", path, err, body)
			}
		}

		// HEAD passes the method gate too.
		resp, err = client.Head(srv.URL + path)
		if err != nil {
			t.Fatalf("HEAD %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s: status %d", path, resp.StatusCode)
		}

		// Mutating verbs are refused with an Allow header.
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, _ := http.NewRequest(method, srv.URL+path, strings.NewReader("x"))
			resp, err := client.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", method, path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow %q, want \"GET, HEAD\"", method, path, allow)
			}
		}
	}

	// Malformed queries are client errors, not 500s.
	for _, path := range []string{"/metrics/history?start=bogus", "/debug/profiles?n=bogus", "/debug/profiles?n=-1"} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestDebugVarsConcurrentJSON hammers the JSON admin routes while sessions
// mutate every underlying structure; each response must parse as JSON —
// a torn snapshot is a bug even when -race stays quiet.
func TestDebugVarsConcurrentJSON(t *testing.T) {
	o := newObsFixture(t, 67)
	srv := httptest.NewServer(AdminMux(o.tel))
	defer srv.Close()
	client := srv.Client()

	done := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		jitter := NewFaultyLink(o.prover, FaultPlan{Jitter: 1, JitterSeconds: o.verifier.Delta()}, 5)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			agent := ProverAgent(o.prover)
			if i%3 == 0 {
				agent = jitter // keep health transitions and alerts churning
			}
			_, _, _ = o.tel.runSessionRetry(context.Background(), o.verifier, agent, DefaultLink(), RetryPolicy{})
			o.tick()
		}
	}()

	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 8; i++ {
				for _, path := range adminJSONRoutes {
					resp, err := client.Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					var v any
					if err := json.Unmarshal(body, &v); err != nil {
						t.Errorf("GET %s: torn JSON under load: %v", path, err)
					}
				}
			}
		}()
	}
	readers.Wait()
	close(done)
	writers.Wait()
}

// TestConcurrentFlightDumpUniqueFilenames drives two telemetry bundles
// dumping into one shared directory concurrently: the process-wide dump
// sequence must keep every filename unique (the clobbering this guards
// against was a real cross-bundle collision).
func TestConcurrentFlightDumpUniqueFilenames(t *testing.T) {
	dir := t.TempDir()
	a := newFleetTelemetry()
	b := newFleetTelemetry()
	a.SetFlightDir(dir)
	b.SetFlightDir(dir)

	const dumpsPerBundle = 16
	var wg sync.WaitGroup
	paths := make(chan string, 2*dumpsPerBundle)
	for _, bundle := range []*Telemetry{a, b} {
		wg.Add(1)
		go func(tl *Telemetry) {
			defer wg.Done()
			for i := 0; i < dumpsPerBundle; i++ {
				path, err := tl.flightDump("rejected", telemetry.TraceID(uint64(i+1)))
				if err != nil {
					t.Errorf("flight dump: %v", err)
					return
				}
				paths <- path
			}
		}(bundle)
	}
	wg.Wait()
	close(paths)

	seen := make(map[string]bool)
	for p := range paths {
		if seen[p] {
			t.Errorf("duplicate flight dump path %s", p)
		}
		seen[p] = true
	}
	if len(seen) != 2*dumpsPerBundle {
		t.Fatalf("unique dump paths = %d, want %d", len(seen), 2*dumpsPerBundle)
	}
	onDisk, err := filepath.Glob(filepath.Join(dir, "flight-*-rejected.jsonl"))
	if err != nil || len(onDisk) != 2*dumpsPerBundle {
		t.Fatalf("dumps on disk = %d (err=%v), want %d", len(onDisk), err, 2*dumpsPerBundle)
	}
	for _, p := range onDisk {
		if fi, serr := os.Stat(p); serr != nil || fi.Size() == 0 {
			t.Errorf("dump %s: stat err=%v, empty=%v", p, serr, serr == nil && fi.Size() == 0)
		}
	}
}

// TestFederationOverLiveAdminServers spins up two real in-process admin
// servers — each backed by its own attestation traffic — and asserts the
// federator's merged surfaces label every record with its source shard.
func TestFederationOverLiveAdminServers(t *testing.T) {
	shards := map[string]*obsFixture{}
	sources := make([]telemetry.ScrapeSource, 0, 2)
	for i, name := range []string{"east", "west"} {
		o := newObsFixture(t, 71+uint64(i))
		o.verifier.Device = name + "-node-0"
		o.sessions(t, o.prover, 4)
		o.tick()
		addr, closeFn, err := StartAdmin("127.0.0.1:0", o.tel)
		if err != nil {
			t.Fatal(err)
		}
		defer closeFn()
		shards[name] = o
		sources = append(sources, telemetry.ScrapeSource{Name: name, BaseURL: "http://" + addr.String()})
	}

	fed, err := telemetry.NewFederator(sources)
	if err != nil {
		t.Fatal(err)
	}
	if n := fed.Poll(context.Background()); n != 2 {
		t.Fatalf("healthy scrapes = %d, want 2", n)
	}
	if h := fed.Health(); h.Status != "ok" || len(h.Stale) != 0 {
		t.Fatalf("federated health = %+v, want ok with no stale sources", h)
	}

	srv := httptest.NewServer(fed.Mux())
	defer srv.Close()

	var devices []struct {
		Source string `json:"source"`
		Device string `json:"device"`
		Status string `json:"status"`
	}
	resp, err := http.Get(srv.URL + "/devices")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&devices); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(devices) != 2 {
		t.Fatalf("merged devices = %d, want 2", len(devices))
	}
	got := map[string]string{}
	for _, d := range devices {
		got[d.Source] = d.Device
		if d.Status != "ok" {
			t.Errorf("device %s/%s status %q, want ok", d.Source, d.Device, d.Status)
		}
	}
	if got["east"] != "east-node-0" || got["west"] != "west-node-0" {
		t.Fatalf("source labels wrong: %v", got)
	}

	// The merged history carries both shards' RTT series, each labeled.
	var hist struct {
		Federated bool `json:"federated"`
		Series    []struct {
			Source string `json:"source"`
			Name   string `json:"name"`
		} `json:"series"`
	}
	resp, err = http.Get(srv.URL + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hist.Federated {
		t.Fatal("merged history not marked federated")
	}
	rtt := map[string]bool{}
	for _, s := range hist.Series {
		if s.Name == "attest_rtt_seconds" {
			rtt[s.Source] = true
		}
	}
	if !rtt["east"] || !rtt["west"] {
		t.Fatalf("merged RTT series sources = %v, want east and west", rtt)
	}

	// Both shards' alert rule sets merge under their source labels.
	var alerts []struct {
		Source string `json:"source"`
		Name   string `json:"name"`
	}
	resp, err = http.Get(srv.URL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	perSource := map[string]int{}
	for _, a := range alerts {
		perSource[a.Source]++
	}
	if perSource["east"] == 0 || perSource["east"] != perSource["west"] {
		t.Fatalf("merged alert rules per source = %v, want equal non-zero counts", perSource)
	}
}
