package attest

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/crp/store"
	"pufatt/internal/rng"
)

// reenrollFixture is the lifecycle harness: a standard fixture plus a
// durable store enrolled from an enrollment twin — a second instance of
// the same manufacturing seed, the facility-side device the Reenroller
// reconfigures and measures while the live prover keeps answering.
func reenrollFixture(t *testing.T, seed uint64, budget int) (*fixture, *store.Store, *core.Device, string) {
	t.Helper()
	f := newFixture(t, seed)
	twin := core.MustNewDevice(core.MustNewDesign(core.DefaultConfig()), rng.New(seed), 0)
	seeds := make([]uint64, budget)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	dir := t.TempDir()
	st, err := store.Enroll(dir, twin, seeds, 0, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	f.verifier.Device = "reenroll-dev"
	f.verifier.WithSeedBudget(st)
	return f, st, twin, dir
}

// cutoverToLiveDevice returns the OnCutover hook a deployment installs:
// reconfigure the live prover's device and re-derive the verifier's
// emulation pipeline, inside the gate's exclusive section so no session
// sees one without the other.
func cutoverToLiveDevice(f *fixture) func(old, new uint32) {
	return func(_, epoch uint32) {
		f.dev.SetEpoch(epoch)
		f.verifier.Pipeline = core.MustNewVerifierPipeline(f.dev.Emulator())
	}
}

// TestRollingReenrollLifecycle is the PR's acceptance scenario: enroll →
// burn the budget through a faulty link → low-budget watermark → background
// re-enrollment under live traffic → epoch cutover → old epoch retired —
// with zero transition-attributable session failures end to end.
func TestRollingReenrollLifecycle(t *testing.T) {
	f, st, twin, dir := reenrollFixture(t, 90, 16)
	gate := &EpochGate{}
	f.verifier.Gate = gate
	ren := &Reenroller{
		Store:         st,
		Device:        twin,
		DeviceName:    "reenroll-dev",
		Watermark:     3,
		SeedsPerEpoch: 12,
		Gate:          gate,
		OnCutover:     cutoverToLiveDevice(f),
	}

	// The link drops the first three responses outright (then heals): each
	// drop burns a claimed seed through the retry loop, so the budget wears
	// exactly the way a lossy deployment wears it.
	faulty := NewFaultyLink(f.prover, FaultPlan{Drop: 1, MaxFaults: 3}, 901)
	sessions := 0
	run := func(stage string) {
		res, _, err := RunSessionRetry(f.verifier, faulty, DefaultLink(), RetryPolicy{MaxAttempts: 5})
		if err != nil {
			t.Fatalf("%s session %d: %v", stage, sessions, err)
		}
		if !res.Accepted {
			t.Fatalf("%s session %d rejected: %s", stage, sessions, res.Reason)
		}
		sessions++
	}

	// Burn the enrolled budget down to the watermark. The Reenroller must
	// not fire while the budget is healthy.
	for st.Remaining() > ren.Watermark {
		if ren.Check() {
			t.Fatalf("re-enrollment triggered at remaining=%d, watermark %d", st.Remaining(), ren.Watermark)
		}
		run("burn")
	}
	if !ren.Check() {
		t.Fatalf("watermark %d reached (remaining=%d) but no re-enrollment triggered",
			ren.Watermark, st.Remaining())
	}

	// Live attestation keeps draining the old epoch while the background
	// measurement runs; the gate decides which side of the cutover each
	// session lands on, and both sides must verify.
	run("during-reenroll")
	run("during-reenroll")
	if err := ren.Wait(); err != nil {
		t.Fatalf("re-enrollment failed: %v", err)
	}

	if st.Epoch() != 1 {
		t.Fatalf("store epoch after cutover = %d, want 1", st.Epoch())
	}
	if f.dev.Epoch() != 1 {
		t.Fatalf("live prover not reconfigured: epoch %d", f.dev.Epoch())
	}
	if st.Remaining() < ren.SeedsPerEpoch-2 {
		t.Fatalf("fresh budget = %d, want ~%d", st.Remaining(), ren.SeedsPerEpoch)
	}

	// Post-cutover traffic attests under the new epoch.
	for i := 0; i < 3; i++ {
		run("post-cutover")
	}
	if ren.Check() {
		t.Fatalf("re-enrollment re-triggered on a healthy budget (remaining=%d)", st.Remaining())
	}

	// The whole cycle is durable: a reopened store is at the new epoch with
	// the new budget, old seeds gone.
	st.Close()
	re, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 1 {
		t.Fatalf("reopened store epoch = %d, want 1", re.Epoch())
	}
	if err := re.Claim(1); !errors.Is(err, crp.ErrUnknownSeed) {
		t.Fatalf("old-epoch seed survived the cutover: %v", err)
	}
}

// TestExhaustionTypedErrorAndRecovery drives the budget to empty with no
// watermark in place, checks the typed lifecycle error, and recovers via a
// synchronous re-enrollment — the operator's `-reenroll` path.
func TestExhaustionTypedErrorAndRecovery(t *testing.T) {
	f, st, twin, _ := reenrollFixture(t, 91, 2)
	for i := 0; i < 2; i++ {
		if res, err := RunSession(f.verifier, f.prover, DefaultLink()); err != nil || !res.Accepted {
			t.Fatalf("session %d: %v %+v", i, err, res)
		}
	}

	_, err := RunSession(f.verifier, f.prover, DefaultLink())
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("exhausted budget returned %T: %v, want *ExhaustedError", err, err)
	}
	if ex.Device != "reenroll-dev" || ex.Epoch != 0 {
		t.Fatalf("ExhaustedError carries device=%q epoch=%d", ex.Device, ex.Epoch)
	}
	if !IsExhausted(err) || !errors.Is(err, crp.ErrExhausted) {
		t.Fatalf("typed error lost its classification: %v", err)
	}
	if IsTransport(err) {
		t.Fatal("exhaustion classified as transport")
	}
	// Terminal: the retry loop must not burn attempts on it.
	if _, attempts, rerr := RunSessionRetry(f.verifier, f.prover, DefaultLink(),
		RetryPolicy{MaxAttempts: 5}); attempts != 1 || !IsExhausted(rerr) {
		t.Fatalf("retrying an exhausted budget: attempts=%d err=%v", attempts, rerr)
	}

	ren := &Reenroller{
		Store:         st,
		Device:        twin,
		DeviceName:    "reenroll-dev",
		SeedsPerEpoch: 4,
		OnCutover:     cutoverToLiveDevice(f),
	}
	if err := ren.Run(); err != nil {
		t.Fatalf("recovery re-enrollment: %v", err)
	}
	if st.Epoch() != 1 || st.Remaining() != 4 {
		t.Fatalf("after recovery: epoch=%d remaining=%d", st.Epoch(), st.Remaining())
	}
	if res, err := RunSession(f.verifier, f.prover, DefaultLink()); err != nil || !res.Accepted {
		t.Fatalf("post-recovery session: %v %+v", err, res)
	}
}

// TestEpochMismatchFailsClosed: when prover and verifier disagree on the
// device's epoch — a cutover one side has not seen — the session completes
// and is REJECTED. Not a transport fault, not an error: fail closed, don't
// retry.
func TestEpochMismatchFailsClosed(t *testing.T) {
	// Prover ahead of the verifier: the device reconfigured, the verifier
	// still holds the epoch-0 enrollment.
	f := newFixture(t, 92)
	f.verifier.WithSeedBudget(budgetDB(t, f, 2))
	f.dev.SetEpoch(1)
	res, err := RunSession(f.verifier, f.prover, DefaultLink())
	if err != nil {
		t.Fatalf("epoch mismatch must complete the session, got error: %v", err)
	}
	if res.Accepted || !strings.HasPrefix(res.Reason, "epoch mismatch") {
		t.Fatalf("verdict = %+v, want epoch-mismatch rejection", res)
	}
	if got := rejectionClass(res.Reason); got != "epoch_mismatch" {
		t.Fatalf("rejectionClass = %q, want epoch_mismatch", got)
	}

	// Verifier ahead of the prover (re-enrolled, device rollback or clone
	// serving the old instance): same closed failure.
	f2 := newFixture(t, 93)
	f2.verifier.PUFEpoch = 2
	res, err = RunSession(f2.verifier, f2.prover, DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || !strings.HasPrefix(res.Reason, "epoch mismatch") {
		t.Fatalf("verdict = %+v, want epoch-mismatch rejection", res)
	}
}

// TestChallengeEpochWireRoundTrip: the epoch extension survives the codec,
// and epoch 0 encodes byte-identically to the pre-epoch wire format.
func TestChallengeEpochWireRoundTrip(t *testing.T) {
	for _, epoch := range []uint32{0, 1, 0xfffffffe} {
		ch := Challenge{Session: 42, Nonce: 0xdeadbeef, PUFSeed: 0x1234, Epoch: epoch}
		var buf bytes.Buffer
		if err := WriteChallenge(&buf, ch); err != nil {
			t.Fatal(err)
		}
		got, err := ReadChallenge(&buf)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if got != ch {
			t.Fatalf("round trip: got %+v, want %+v", got, ch)
		}
	}

	// Legacy interop: an epoch-0 challenge is indistinguishable on the wire
	// from one emitted before epochs existed.
	legacy := Challenge{Session: 7, Nonce: 1, PUFSeed: 2}
	var a, b bytes.Buffer
	if err := WriteChallenge(&a, legacy); err != nil {
		t.Fatal(err)
	}
	legacy.Epoch = 0
	if err := WriteChallenge(&b, legacy); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("epoch-0 challenge encoding differs from legacy")
	}
}

func TestResponseEpochWireRoundTrip(t *testing.T) {
	base := Response{Session: 9, Tag: [8]uint32{1, 2, 3, 4, 5, 6, 7, 8}}
	base.Helpers = make([]uint64, 16)
	for i := range base.Helpers {
		base.Helpers[i] = uint64(i) * 0x0101
	}
	for _, epoch := range []uint32{0, 3, 0xffffffff} {
		resp := base
		resp.Epoch = epoch
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp); err != nil {
			t.Fatal(err)
		}
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if got.Session != resp.Session || got.Tag != resp.Tag || got.Epoch != resp.Epoch {
			t.Fatalf("round trip: got %+v, want %+v", got, resp)
		}
		for i := range resp.Helpers {
			if got.Helpers[i] != resp.Helpers[i] {
				t.Fatalf("epoch %d helper %d mismatch", epoch, i)
			}
		}
	}
}
