package attest

import (
	"strings"
	"sync"
	"time"

	"pufatt/internal/telemetry"
)

// This file declares the attestation layer's telemetry: every metric the
// protocol, retry, fleet, and fault-injection machinery emits, gathered in
// one struct so the whole set is visible at a glance and injectable in
// tests (a fresh Telemetry over a fresh registry gives a test exact
// counters with no cross-test bleed).
//
// Metric name / label conventions (see DESIGN.md "Observability"):
//
//   - names are snake_case with a unit or _total suffix;
//   - attestation-layer metrics carry the attest_ prefix except the two
//     protocol-wide names the operators alert on (retry_attempts_total,
//     quarantine_transitions_total);
//   - low-cardinality labels only: fault class, frame type, rejection
//     reason class, sweep outcome, quarantine transition.

// Telemetry bundles the attestation layer's instruments over one registry.
type Telemetry struct {
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
	// Journal is the session flight recorder: a bounded ring of structured
	// protocol events, dumpable via /debug/journal and snapshotted to a
	// file on session failure when a flight directory is set.
	Journal *telemetry.Journal
	// Health is the per-device health registry judged against its SLO,
	// served at /devices and /healthz.
	Health *telemetry.HealthRegistry
	// History is the bounded time-series store over this bundle's registry:
	// one windowed sample per live series per Collect, served at
	// /metrics/history. Collection is driven by StartObservability (or an
	// explicit ObserveFleet in tests).
	History *telemetry.TimeSeries
	// Alerts evaluates SLO burn-rate rules against History and journals
	// firing/resolution transitions; served at /alerts.
	Alerts *telemetry.AlertManager
	// Runtime samples the Go runtime (GC pauses, sched latency, heap,
	// goroutines) into this bundle's registry on every ObserveFleet, so
	// burn-rate rules can judge the runtime's own latency against the
	// protocol time bound.
	Runtime *telemetry.RuntimeCollector
	// Profiler is the bounded on-disk profile ring (see profile.go for the
	// directory knob). Captures fire periodically at a low duty cycle and
	// whenever a burn-rate alert transitions to firing; the sidecar index
	// is served at /debug/profiles.
	Profiler *telemetry.Profiler

	// Frame codec.
	FramesSent     *telemetry.CounterVec // attest_frames_sent_total{type}
	FramesReceived *telemetry.CounterVec // attest_frames_received_total{type}
	FramesRejected *telemetry.CounterVec // attest_frames_rejected_total{reason}
	TraceHeaders   *telemetry.CounterVec // attest_trace_headers_total{event}

	// Protocol outcomes.
	RTT      *telemetry.Histogram  // attest_rtt_seconds
	Sessions *telemetry.CounterVec // attest_sessions_total{verdict}
	Rejects  *telemetry.CounterVec // attest_rejections_total{reason}

	// Retry / backoff.
	RetryAttempts  *telemetry.Counter   // retry_attempts_total
	RetryExhausted *telemetry.Counter   // retry_exhausted_total
	Backoff        *telemetry.Histogram // attest_backoff_seconds

	// Fleet sweeps.
	Sweeps                *telemetry.Counter    // attest_sweeps_total
	SweepNodes            *telemetry.CounterVec // attest_sweep_nodes_total{outcome}
	SweepDuration         *telemetry.Histogram  // attest_sweep_duration_seconds
	QuarantineTransitions *telemetry.CounterVec // quarantine_transitions_total{transition}
	QuarantineOpen        *telemetry.Gauge      // attest_quarantine_open_nodes

	// Fault injection.
	FaultsInjected *telemetry.CounterVec // attest_faults_injected_total{class}

	// Epoch lifecycle (PR 6): re-enrollment pipeline phases and the
	// seed-budget watermark gauge the health registry maintains.
	Reenrolls        *telemetry.CounterVec // attest_reenrollments_total{phase}
	BudgetLowDevices *telemetry.Gauge      // attest_seed_budget_low_devices

	// Observability self-accounting: data the tracer ring and the journal
	// ring overwrote to stay bounded. Silent truncation would read as
	// "nothing happened"; these counters make it a measurable signal.
	SpansDropped  *telemetry.Counter // telemetry_spans_dropped_total
	EventsDropped *telemetry.Counter // telemetry_journal_events_dropped_total

	// Device health.
	StatusTransitions *telemetry.CounterVec // attest_device_status_transitions_total{to}

	// SLO burn-rate alerting (PR 7).
	AlertTransitions *telemetry.CounterVec // attest_alert_transitions_total{event}
	AlertsFiring     *telemetry.Gauge      // attest_alerts_firing

	// Continuous profiling (PR 10): completed captures by trigger, and
	// triggers dropped by the single-flight guard (concurrent CPU profiles
	// cannot stack, so a suppressed trigger is a counted signal, not an
	// error).
	ProfileCaptures   *telemetry.CounterVec // telemetry_profile_captures_total{trigger}
	ProfileSuppressed *telemetry.Counter    // telemetry_profile_suppressed_total

	// Flight-recorder state (see flight.go). The dump sequence number is
	// process-wide (flight.go), not per-bundle, so bundles sharing a
	// directory can never collide on a filename.
	flightMu  sync.Mutex
	flightDir string
}

// NewTelemetry registers the attestation instrument set on the registry
// (idempotent per registry) with traces on the given tracer (nil means the
// process-wide default tracer).
func NewTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) *Telemetry {
	if tracer == nil {
		tracer = telemetry.DefaultTracer()
	}
	t := &Telemetry{
		Registry: reg,
		Tracer:   tracer,
		Journal:  telemetry.NewJournal(0),
		Health:   telemetry.NewHealthRegistry(telemetry.DefaultSLO()),

		FramesSent: reg.CounterVec("attest_frames_sent_total",
			"Protocol frames written, by frame type.", "type"),
		FramesReceived: reg.CounterVec("attest_frames_received_total",
			"Protocol frames read and validated, by frame type.", "type"),
		FramesRejected: reg.CounterVec("attest_frames_rejected_total",
			"Frames rejected by the codec's validation, by reason.", "reason"),
		TraceHeaders: reg.CounterVec("attest_trace_headers_total",
			"Trace-context frame extensions, by event (sent, received, corrupt).", "event"),

		RTT: reg.Histogram("attest_rtt_seconds",
			"Verifier-observed attestation round-trip time (challenge transfer + prover compute + response transfer).",
			nil),
		Sessions: reg.CounterVec("attest_sessions_total",
			"Completed attestation sessions, by verdict.", "verdict"),
		Rejects: reg.CounterVec("attest_rejections_total",
			"Rejected sessions, by rejection reason class.", "reason"),

		RetryAttempts: reg.Counter("retry_attempts_total",
			"Attestation attempts started (first tries and retries)."),
		RetryExhausted: reg.Counter("retry_exhausted_total",
			"Retry loops that exhausted their transport-fault budget."),
		Backoff: reg.Histogram("attest_backoff_seconds",
			"Backoff delays computed between retry attempts.", nil),

		Sweeps: reg.Counter("attest_sweeps_total",
			"Fleet sweeps started."),
		SweepNodes: reg.CounterVec("attest_sweep_nodes_total",
			"Per-node sweep outcomes.", "outcome"),
		SweepDuration: reg.Histogram("attest_sweep_duration_seconds",
			"Wall-clock duration of fleet sweeps.", nil),
		QuarantineTransitions: reg.CounterVec("quarantine_transitions_total",
			"Quarantine circuit-breaker transitions, by kind.", "transition"),
		QuarantineOpen: reg.Gauge("attest_quarantine_open_nodes",
			"Nodes currently quarantined across all fleets on this registry."),

		FaultsInjected: reg.CounterVec("attest_faults_injected_total",
			"Faults injected by the deterministic harness, by class.", "class"),

		Reenrolls: reg.CounterVec("attest_reenrollments_total",
			"Rolling re-enrollment pipeline events, by phase (triggered, staged, committed, failed).", "phase"),
		BudgetLowDevices: reg.Gauge("attest_seed_budget_low_devices",
			"Devices currently at or below the seed-budget watermark (or exhausted)."),

		SpansDropped: reg.Counter("telemetry_spans_dropped_total",
			"Finished root spans evicted from the tracer ring to stay bounded."),
		EventsDropped: reg.Counter("telemetry_journal_events_dropped_total",
			"Journal events overwritten by the flight-recorder ring to stay bounded."),

		StatusTransitions: reg.CounterVec("attest_device_status_transitions_total",
			"Device health status transitions, by resulting status.", "to"),

		AlertTransitions: reg.CounterVec("attest_alert_transitions_total",
			"SLO burn-rate alert lifecycle transitions, by event (firing, resolved).", "event"),
		AlertsFiring: reg.Gauge("attest_alerts_firing",
			"Burn-rate alerts currently firing."),

		ProfileCaptures: reg.CounterVec("telemetry_profile_captures_total",
			"Completed profile-ring captures, by trigger (periodic, manual, or the firing alert's name).", "trigger"),
		ProfileSuppressed: reg.Counter("telemetry_profile_suppressed_total",
			"Profile triggers dropped by the single-flight guard while a capture was in progress."),
	}
	t.History = telemetry.NewTimeSeries(reg, 0, 0)
	t.Runtime = telemetry.NewRuntimeCollector(reg)
	t.Profiler = telemetry.NewProfiler()
	t.Profiler.SetCaptureCounters(t.ProfileCaptures, t.ProfileSuppressed)
	// The tracer and journal cannot self-register (they may outlive any one
	// registry), so this bundle attaches their drop tallies; the most
	// recently built bundle owns a shared tracer's counter.
	tracer.SetDropCounter(t.SpansDropped)
	t.Journal.SetDropCounter(t.EventsDropped)
	t.Health.OnTransition(func(device string, tr telemetry.Transition) {
		t.StatusTransitions.With(tr.To.String()).Inc()
	})
	t.Health.SetBudgetLowGauge(t.BudgetLowDevices)
	t.Alerts = telemetry.NewAlertManager(t.History, t.Journal)
	t.Alerts.SetRules(DefaultAlertRules(telemetry.DefaultSLO()))
	t.Alerts.OnTransition(func(name string, firing bool) {
		event := "resolved"
		if firing {
			event = "firing"
		}
		t.AlertTransitions.With(event).Inc()
		t.AlertsFiring.Set(float64(t.Alerts.Firing()))
		if firing {
			// Alerts trigger evidence: capture a profile named after the
			// firing rule, carrying the rule metric's latest exemplar trace
			// (see profile.go). No-op until a profile directory is set.
			t.profileOnAlert(name)
		}
	})
	return t
}

// Default burn-rate windows: the fast window pages on a hard outage within
// a minute of samples; the slow window keeps one bad collection from
// paging on its own.
const (
	DefaultAlertFastWindow = time.Minute
	DefaultAlertSlowWindow = 5 * time.Minute
)

// DefaultAlertRules derives the standard attestation alert set from an
// SLO: session failure rate, FNR-shaped (tag-mismatch) rejections, the RTT
// timing bound, and the seed-budget watermark. Rules whose SLO threshold
// is unset (zero) are omitted — an RTT rule with no bound would page on
// every sample. Budgets reuse the SLO's tolerated rates, so burn 1.0 means
// "failing exactly at the SLO limit".
func DefaultAlertRules(slo telemetry.SLO) []telemetry.Rule {
	var rules []telemetry.Rule
	if slo.MaxFailureRate > 0 {
		rules = append(rules, telemetry.Rule{
			Name: "session-failure-burn", Kind: telemetry.RuleRatio,
			Metric:      `attest_sessions_total{verdict="rejected"}`,
			TotalMetric: "attest_sessions_total",
			Budget:      slo.MaxFailureRate,
			FastWindow:  DefaultAlertFastWindow, SlowWindow: DefaultAlertSlowWindow,
		})
	}
	if slo.MaxFNR > 0 {
		rules = append(rules, telemetry.Rule{
			Name: "fnr-burn", Kind: telemetry.RuleRatio,
			Metric:      `attest_rejections_total{reason="tag_mismatch"}`,
			TotalMetric: "attest_sessions_total",
			Budget:      slo.MaxFNR,
			FastWindow:  DefaultAlertFastWindow, SlowWindow: DefaultAlertSlowWindow,
		})
	}
	if slo.MaxRTTP95 > 0 {
		rules = append(rules, telemetry.Rule{
			Name: "rtt-p95-burn", Kind: telemetry.RuleQuantile,
			Metric: "attest_rtt_seconds", Quantile: 0.95, Threshold: slo.MaxRTTP95,
			FastWindow: DefaultAlertFastWindow, SlowWindow: DefaultAlertSlowWindow,
		})
		// The runtime's own stop-the-world pauses count against the same
		// time bound the verifier enforces: a GC pause tail at half the RTT
		// budget means the process — not the network or the prover — is
		// about to push honest sessions past δ.
		rules = append(rules, telemetry.Rule{
			Name: "gc-pause-vs-rtt-bound", Kind: telemetry.RuleQuantile,
			Metric: telemetry.MetricGCPause, Quantile: 0.99, Threshold: slo.MaxRTTP95 / 2,
			FastWindow: DefaultAlertFastWindow, SlowWindow: DefaultAlertSlowWindow,
		})
	}
	rules = append(rules, telemetry.Rule{
		Name: "seed-budget-low", Kind: telemetry.RuleGaugeAbove,
		Metric: "attest_seed_budget_low_devices", Threshold: 0,
		FastWindow: DefaultAlertFastWindow, SlowWindow: DefaultAlertSlowWindow,
	})
	return rules
}

// SetSLO re-judges health against the SLO AND re-derives the burn-rate
// alert rules from it, keeping the two views of "what healthy means"
// consistent. Alert state for rules that keep their name survives.
func (t *Telemetry) SetSLO(slo telemetry.SLO) {
	t.Health.SetSLO(slo)
	t.Alerts.SetRules(DefaultAlertRules(slo))
}

// ObserveFleet takes one observability sample: sample the Go runtime into
// the registry, collect a history window, then re-evaluate the burn-rate
// alerts over it. Control-plane work — never called from the attestation
// hot path.
func (t *Telemetry) ObserveFleet() {
	t.Runtime.Sample()
	t.History.Collect()
	t.Alerts.Evaluate()
}

// StartObservability samples the fleet every interval (<=0 means the
// history store's nominal window) until the returned stop function is
// called.
func (t *Telemetry) StartObservability(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = t.History.Window()
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t.ObserveFleet()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// tel is the package-default telemetry: every instrument registered on the
// process-wide registry, served by the admin endpoint.
var tel = NewTelemetry(telemetry.Default(), nil)

// Metrics returns the attestation layer's package-default telemetry, for
// callers that want to read counters or attach the tracer clock.
func Metrics() *Telemetry { return tel }

// Quarantine transition labels.
const (
	transitionEnter       = "enter"        // breaker opened: node newly quarantined
	transitionProbeFailed = "probe_failed" // half-open probe failed; stays quarantined
	transitionExit        = "exit"         // completed session lifted the quarantine
	transitionReinstate   = "reinstate"    // operator reinstated the node
)

// Sweep outcome labels (mirrors the SweepReport classification).
const (
	outcomeHealthy     = "healthy"
	outcomeCompromised = "compromised"
	outcomeUnreachable = "unreachable"
	outcomeQuarantined = "quarantined"
	// outcomeExhausted is the lifecycle bucket: the node's seed budget is
	// empty (or its epoch retired) and it awaits re-enrollment — neither a
	// security verdict nor an availability fault.
	outcomeExhausted = "exhausted-awaiting-reenroll"
)

// rejectionClass maps a verifier rejection reason string onto a bounded
// label set (free-form reasons would explode metric cardinality).
func rejectionClass(reason string) string {
	switch {
	case reason == "session mismatch":
		return "session_mismatch"
	case reason == "attestation response mismatch":
		return "tag_mismatch"
	case strings.HasPrefix(reason, "time bound"):
		return "time_bound"
	case strings.HasPrefix(reason, "helper"):
		return "helper_length"
	case strings.HasPrefix(reason, "reference"):
		return "reference_checksum"
	case strings.HasPrefix(reason, "epoch mismatch"):
		return "epoch_mismatch"
	}
	return "other"
}

// frameTypeName labels a frame type byte.
func frameTypeName(ftype byte) string {
	switch ftype {
	case frameChallenge:
		return "challenge"
	case frameResponse:
		return "response"
	case frameTime:
		return "time"
	}
	return "unknown"
}

// observeSession records a completed session's verdict and round-trip
// time. The session's trace ID rides along as the RTT histogram's bucket
// exemplar (one atomic store — nothing allocated on the hot path), so a
// latency spike in /metrics/history links straight to the recorded trace.
func (t *Telemetry) observeSession(res Result, trace telemetry.TraceID) {
	t.RTT.ObserveExemplar(res.Elapsed, uint64(trace))
	if res.Accepted {
		t.Sessions.With("accepted").Inc()
	} else {
		t.Sessions.With("rejected").Inc()
		t.Rejects.With(rejectionClass(res.Reason)).Inc()
	}
}

// journal appends one protocol event to the flight recorder.
func (t *Telemetry) journal(kind telemetry.EventKind, trace telemetry.TraceID, session uint64, device, detail string) {
	t.Journal.Append(telemetry.Event{
		Trace: trace, Session: session, Device: device, Kind: kind, Detail: detail,
	})
}

// observeHealth folds one completed session into the device health
// registry (no-op for an unnamed device).
func (t *Telemetry) observeHealth(device string, res Result, retries int) {
	obs := telemetry.SessionObservation{RTT: res.Elapsed, Retries: retries}
	if res.Accepted {
		obs.Outcome = telemetry.OutcomeAccepted
	} else {
		obs.Outcome = telemetry.OutcomeRejected
		obs.RejectClass = rejectionClass(res.Reason)
	}
	t.Health.Observe(device, obs)
}
