package attest

import (
	"strings"
	"sync"

	"pufatt/internal/telemetry"
)

// This file declares the attestation layer's telemetry: every metric the
// protocol, retry, fleet, and fault-injection machinery emits, gathered in
// one struct so the whole set is visible at a glance and injectable in
// tests (a fresh Telemetry over a fresh registry gives a test exact
// counters with no cross-test bleed).
//
// Metric name / label conventions (see DESIGN.md "Observability"):
//
//   - names are snake_case with a unit or _total suffix;
//   - attestation-layer metrics carry the attest_ prefix except the two
//     protocol-wide names the operators alert on (retry_attempts_total,
//     quarantine_transitions_total);
//   - low-cardinality labels only: fault class, frame type, rejection
//     reason class, sweep outcome, quarantine transition.

// Telemetry bundles the attestation layer's instruments over one registry.
type Telemetry struct {
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
	// Journal is the session flight recorder: a bounded ring of structured
	// protocol events, dumpable via /debug/journal and snapshotted to a
	// file on session failure when a flight directory is set.
	Journal *telemetry.Journal
	// Health is the per-device health registry judged against its SLO,
	// served at /devices and /healthz.
	Health *telemetry.HealthRegistry

	// Frame codec.
	FramesSent     *telemetry.CounterVec // attest_frames_sent_total{type}
	FramesReceived *telemetry.CounterVec // attest_frames_received_total{type}
	FramesRejected *telemetry.CounterVec // attest_frames_rejected_total{reason}
	TraceHeaders   *telemetry.CounterVec // attest_trace_headers_total{event}

	// Protocol outcomes.
	RTT      *telemetry.Histogram  // attest_rtt_seconds
	Sessions *telemetry.CounterVec // attest_sessions_total{verdict}
	Rejects  *telemetry.CounterVec // attest_rejections_total{reason}

	// Retry / backoff.
	RetryAttempts  *telemetry.Counter   // retry_attempts_total
	RetryExhausted *telemetry.Counter   // retry_exhausted_total
	Backoff        *telemetry.Histogram // attest_backoff_seconds

	// Fleet sweeps.
	Sweeps                *telemetry.Counter    // attest_sweeps_total
	SweepNodes            *telemetry.CounterVec // attest_sweep_nodes_total{outcome}
	SweepDuration         *telemetry.Histogram  // attest_sweep_duration_seconds
	QuarantineTransitions *telemetry.CounterVec // quarantine_transitions_total{transition}
	QuarantineOpen        *telemetry.Gauge      // attest_quarantine_open_nodes

	// Fault injection.
	FaultsInjected *telemetry.CounterVec // attest_faults_injected_total{class}

	// Epoch lifecycle (PR 6): re-enrollment pipeline phases and the
	// seed-budget watermark gauge the health registry maintains.
	Reenrolls        *telemetry.CounterVec // attest_reenrollments_total{phase}
	BudgetLowDevices *telemetry.Gauge      // attest_seed_budget_low_devices

	// Observability self-accounting: data the tracer ring and the journal
	// ring overwrote to stay bounded. Silent truncation would read as
	// "nothing happened"; these counters make it a measurable signal.
	SpansDropped  *telemetry.Counter // telemetry_spans_dropped_total
	EventsDropped *telemetry.Counter // telemetry_journal_events_dropped_total

	// Device health.
	StatusTransitions *telemetry.CounterVec // attest_device_status_transitions_total{to}

	// Flight-recorder state (see flight.go).
	flightMu  sync.Mutex
	flightDir string
	flightSeq uint64
}

// NewTelemetry registers the attestation instrument set on the registry
// (idempotent per registry) with traces on the given tracer (nil means the
// process-wide default tracer).
func NewTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) *Telemetry {
	if tracer == nil {
		tracer = telemetry.DefaultTracer()
	}
	t := &Telemetry{
		Registry: reg,
		Tracer:   tracer,
		Journal:  telemetry.NewJournal(0),
		Health:   telemetry.NewHealthRegistry(telemetry.DefaultSLO()),

		FramesSent: reg.CounterVec("attest_frames_sent_total",
			"Protocol frames written, by frame type.", "type"),
		FramesReceived: reg.CounterVec("attest_frames_received_total",
			"Protocol frames read and validated, by frame type.", "type"),
		FramesRejected: reg.CounterVec("attest_frames_rejected_total",
			"Frames rejected by the codec's validation, by reason.", "reason"),
		TraceHeaders: reg.CounterVec("attest_trace_headers_total",
			"Trace-context frame extensions, by event (sent, received, corrupt).", "event"),

		RTT: reg.Histogram("attest_rtt_seconds",
			"Verifier-observed attestation round-trip time (challenge transfer + prover compute + response transfer).",
			nil),
		Sessions: reg.CounterVec("attest_sessions_total",
			"Completed attestation sessions, by verdict.", "verdict"),
		Rejects: reg.CounterVec("attest_rejections_total",
			"Rejected sessions, by rejection reason class.", "reason"),

		RetryAttempts: reg.Counter("retry_attempts_total",
			"Attestation attempts started (first tries and retries)."),
		RetryExhausted: reg.Counter("retry_exhausted_total",
			"Retry loops that exhausted their transport-fault budget."),
		Backoff: reg.Histogram("attest_backoff_seconds",
			"Backoff delays computed between retry attempts.", nil),

		Sweeps: reg.Counter("attest_sweeps_total",
			"Fleet sweeps started."),
		SweepNodes: reg.CounterVec("attest_sweep_nodes_total",
			"Per-node sweep outcomes.", "outcome"),
		SweepDuration: reg.Histogram("attest_sweep_duration_seconds",
			"Wall-clock duration of fleet sweeps.", nil),
		QuarantineTransitions: reg.CounterVec("quarantine_transitions_total",
			"Quarantine circuit-breaker transitions, by kind.", "transition"),
		QuarantineOpen: reg.Gauge("attest_quarantine_open_nodes",
			"Nodes currently quarantined across all fleets on this registry."),

		FaultsInjected: reg.CounterVec("attest_faults_injected_total",
			"Faults injected by the deterministic harness, by class.", "class"),

		Reenrolls: reg.CounterVec("attest_reenrollments_total",
			"Rolling re-enrollment pipeline events, by phase (triggered, staged, committed, failed).", "phase"),
		BudgetLowDevices: reg.Gauge("attest_seed_budget_low_devices",
			"Devices currently at or below the seed-budget watermark (or exhausted)."),

		SpansDropped: reg.Counter("telemetry_spans_dropped_total",
			"Finished root spans evicted from the tracer ring to stay bounded."),
		EventsDropped: reg.Counter("telemetry_journal_events_dropped_total",
			"Journal events overwritten by the flight-recorder ring to stay bounded."),

		StatusTransitions: reg.CounterVec("attest_device_status_transitions_total",
			"Device health status transitions, by resulting status.", "to"),
	}
	// The tracer and journal cannot self-register (they may outlive any one
	// registry), so this bundle attaches their drop tallies; the most
	// recently built bundle owns a shared tracer's counter.
	tracer.SetDropCounter(t.SpansDropped)
	t.Journal.SetDropCounter(t.EventsDropped)
	t.Health.OnTransition(func(device string, tr telemetry.Transition) {
		t.StatusTransitions.With(tr.To.String()).Inc()
	})
	t.Health.SetBudgetLowGauge(t.BudgetLowDevices)
	return t
}

// tel is the package-default telemetry: every instrument registered on the
// process-wide registry, served by the admin endpoint.
var tel = NewTelemetry(telemetry.Default(), nil)

// Metrics returns the attestation layer's package-default telemetry, for
// callers that want to read counters or attach the tracer clock.
func Metrics() *Telemetry { return tel }

// Quarantine transition labels.
const (
	transitionEnter       = "enter"        // breaker opened: node newly quarantined
	transitionProbeFailed = "probe_failed" // half-open probe failed; stays quarantined
	transitionExit        = "exit"         // completed session lifted the quarantine
	transitionReinstate   = "reinstate"    // operator reinstated the node
)

// Sweep outcome labels (mirrors the SweepReport classification).
const (
	outcomeHealthy     = "healthy"
	outcomeCompromised = "compromised"
	outcomeUnreachable = "unreachable"
	outcomeQuarantined = "quarantined"
	// outcomeExhausted is the lifecycle bucket: the node's seed budget is
	// empty (or its epoch retired) and it awaits re-enrollment — neither a
	// security verdict nor an availability fault.
	outcomeExhausted = "exhausted-awaiting-reenroll"
)

// rejectionClass maps a verifier rejection reason string onto a bounded
// label set (free-form reasons would explode metric cardinality).
func rejectionClass(reason string) string {
	switch {
	case reason == "session mismatch":
		return "session_mismatch"
	case reason == "attestation response mismatch":
		return "tag_mismatch"
	case strings.HasPrefix(reason, "time bound"):
		return "time_bound"
	case strings.HasPrefix(reason, "helper"):
		return "helper_length"
	case strings.HasPrefix(reason, "reference"):
		return "reference_checksum"
	case strings.HasPrefix(reason, "epoch mismatch"):
		return "epoch_mismatch"
	}
	return "other"
}

// frameTypeName labels a frame type byte.
func frameTypeName(ftype byte) string {
	switch ftype {
	case frameChallenge:
		return "challenge"
	case frameResponse:
		return "response"
	case frameTime:
		return "time"
	}
	return "unknown"
}

// observeSession records a completed session's verdict and round-trip
// time, and annotates the session span when one is active.
func (t *Telemetry) observeSession(res Result) {
	t.RTT.Observe(res.Elapsed)
	if res.Accepted {
		t.Sessions.With("accepted").Inc()
	} else {
		t.Sessions.With("rejected").Inc()
		t.Rejects.With(rejectionClass(res.Reason)).Inc()
	}
}

// journal appends one protocol event to the flight recorder.
func (t *Telemetry) journal(kind telemetry.EventKind, trace telemetry.TraceID, session uint64, device, detail string) {
	t.Journal.Append(telemetry.Event{
		Trace: trace, Session: session, Device: device, Kind: kind, Detail: detail,
	})
}

// observeHealth folds one completed session into the device health
// registry (no-op for an unnamed device).
func (t *Telemetry) observeHealth(device string, res Result, retries int) {
	obs := telemetry.SessionObservation{RTT: res.Elapsed, Retries: retries}
	if res.Accepted {
		obs.Outcome = telemetry.OutcomeAccepted
	} else {
		obs.Outcome = telemetry.OutcomeRejected
		obs.RejectClass = rejectionClass(res.Reason)
	}
	t.Health.Observe(device, obs)
}
