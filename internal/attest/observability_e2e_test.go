package attest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pufatt/internal/telemetry"
)

// This file holds the end-to-end observability suite: a jittery prover
// inflates round-trips past δ, and the full v3 chain is asserted — the
// RTT history window carries a p99 exemplar trace ID, the flight recorder
// dumps the rejected sessions, the journal correlates the exemplar back
// to protocol events, the burn-rate alert fires on both windows, and
// clean traffic resolves it again.

// stepClock is a hand-advanced clock shared by the history store and the
// alert manager, so window arithmetic in these tests is exact.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// obsFixture is a fixture with a private, clock-controlled telemetry
// bundle: nothing leaks into the package default registry, and every
// Collect/Evaluate tick is driven by the test.
type obsFixture struct {
	*fixture
	tel *Telemetry
	clk *stepClock
	dir string
}

const obsTick = 5 * time.Second

func newObsFixture(t *testing.T, seed uint64) *obsFixture {
	t.Helper()
	f := newFixture(t, seed)
	f.verifier.Device = "node-e2e"
	tracer := telemetry.NewTracer(256)
	tracer.SetIDSeed(seed)
	tel := NewTelemetry(telemetry.NewRegistry(), tracer)
	clk := &stepClock{t: time.Unix(50000, 0)}
	tel.History.SetClock(clk.now)
	tel.History.SetWindow(obsTick)
	tel.Alerts.SetClock(clk.now)
	dir := t.TempDir()
	tel.SetFlightDir(dir)
	return &obsFixture{fixture: f, tel: tel, clk: clk, dir: dir}
}

// tick advances the shared clock one collection interval, samples the
// history, and evaluates the alert rules — one StartObservability beat,
// made synchronous.
func (o *obsFixture) tick() {
	o.clk.advance(obsTick)
	o.tel.ObserveFleet()
}

// sessions runs n sessions through the retry path (the failure boundary
// that feeds device health and the flight recorder).
func (o *obsFixture) sessions(t *testing.T, agent ProverAgent, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, _, err := o.tel.runSessionRetry(context.Background(), o.verifier, agent, DefaultLink(), RetryPolicy{}); err != nil {
			t.Fatalf("session error: %v", err)
		}
	}
}

func (o *obsFixture) alert(t *testing.T, name string) telemetry.AlertStatus {
	t.Helper()
	for _, a := range o.tel.Alerts.Snapshot() {
		if a.Rule.Name == name {
			return a
		}
	}
	t.Fatalf("alert rule %q not registered", name)
	return telemetry.AlertStatus{}
}

func TestObservabilityEndToEnd(t *testing.T) {
	o := newObsFixture(t, 41)

	// Calibrate the SLO off one honest session so the rules are tied to
	// this fixture's actual timing, then shrink the burn windows to a few
	// ticks: fast = 2 ticks, slow = 4 ticks (inclusive bounds).
	res, _, err := o.tel.runSessionRetry(context.Background(), o.verifier, o.prover, DefaultLink(), RetryPolicy{})
	if err != nil || !res.Accepted {
		t.Fatalf("calibration session: accepted=%v err=%v", res.Accepted, err)
	}
	slo := o.tel.Health.SLO()
	slo.MaxRTTP95 = res.Elapsed * 10 // honest traffic far below, jittered far above
	o.tel.SetSLO(slo)
	rules := DefaultAlertRules(slo)
	for i := range rules {
		rules[i].FastWindow = 2 * obsTick
		rules[i].SlowWindow = 4 * obsTick
	}
	o.tel.Alerts.SetRules(rules)

	// Phase 1 — honest traffic: no alert may fire.
	for i := 0; i < 4; i++ {
		o.sessions(t, o.prover, 4)
		o.tick()
	}
	if n := o.tel.Alerts.Firing(); n != 0 {
		t.Fatalf("honest traffic fired %d alerts", n)
	}

	// Phase 2 — a jittery link inflates every round-trip past δ: sessions
	// complete but the verifier rejects on the time bound, the PUFatt
	// signature of a proxied or overclocked prover.
	jitter := NewFaultyLink(o.prover, FaultPlan{Jitter: 1, JitterSeconds: o.verifier.Delta()}, 7)
	for i := 0; i < 5; i++ {
		o.sessions(t, jitter, 4)
		o.tick()
	}

	// The verdict counters saw the rejections as time-bound failures.
	if v := o.tel.Sessions.With("rejected").Value(); v < 20 {
		t.Fatalf("rejected sessions = %d, want >= 20", v)
	}
	if v := o.tel.Rejects.With("time_bound").Value(); v < 20 {
		t.Fatalf("time_bound rejections = %d, want >= 20", v)
	}

	// The RTT history's latest window carries a p99 exemplar trace ID.
	point, ok := o.tel.History.Latest("attest_rtt_seconds")
	if !ok || point.Count == 0 {
		t.Fatalf("no RTT history point (ok=%v count=%d)", ok, point.Count)
	}
	if point.Exemplar == 0 {
		t.Fatal("RTT history point has no exemplar")
	}
	exemplar := telemetry.TraceID(point.Exemplar)

	// The exemplar correlates to real protocol events in the journal…
	events := o.tel.Journal.ByTrace(exemplar)
	if len(events) == 0 {
		t.Fatalf("journal holds no events for exemplar trace %s", exemplar)
	}

	// …and to a flight-recorder dump: every time-bound rejection dumped,
	// and one of the dump headers names the exemplar's session.
	dumps, err := filepath.Glob(filepath.Join(o.dir, "flight-*-rejected.jsonl"))
	if err != nil || len(dumps) < 20 {
		t.Fatalf("flight dumps = %d (err=%v), want >= 20", len(dumps), err)
	}
	foundDump := false
	for _, dump := range dumps {
		data, rerr := os.ReadFile(dump)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if strings.Contains(string(data), "trace="+exemplar.String()) {
			foundDump = true
			break
		}
	}
	if !foundDump {
		t.Fatalf("no flight dump carries exemplar trace %s", exemplar)
	}

	// Both burn windows are saturated: the timing and failure alerts fire.
	for _, name := range []string{"rtt-p95-burn", "session-failure-burn"} {
		if st := o.alert(t, name); st.State != telemetry.AlertFiring {
			t.Fatalf("%s = %s after sustained jitter, want firing", name, st.State)
		}
	}
	if v := o.tel.AlertsFiring.Value(); v < 2 {
		t.Fatalf("attest_alerts_firing = %v, want >= 2", v)
	}
	if v := o.tel.AlertTransitions.With("firing").Value(); v < 2 {
		t.Fatalf("firing transitions = %d, want >= 2", v)
	}

	// The admin surface serves the same story over HTTP.
	srv := httptest.NewServer(AdminMux(o.tel))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics/history?metric=attest_rtt_seconds": `"exemplar": "` + exemplar.String() + `"`,
		"/alerts": `"name": "rtt-p95-burn", "state": "firing"`,
	} {
		resp, gerr := http.Get(srv.URL + path)
		if gerr != nil {
			t.Fatal(gerr)
		}
		body := readAll(t, resp)
		if !strings.Contains(body, want) {
			t.Fatalf("%s missing %q:\n%s", path, want, body)
		}
	}

	// Phase 3 — the link heals: once the bad points age out of the slow
	// window the alerts resolve, and the resolution stays visible.
	for i := 0; i < 6; i++ {
		o.sessions(t, o.prover, 4)
		o.tick()
	}
	if n := o.tel.Alerts.Firing(); n != 0 {
		t.Fatalf("%d alerts still firing after recovery", n)
	}
	for _, name := range []string{"rtt-p95-burn", "session-failure-burn"} {
		st := o.alert(t, name)
		if st.State != telemetry.AlertResolved {
			t.Fatalf("%s = %s after recovery, want resolved", name, st.State)
		}
		if st.Fired == 0 || st.LastResolved.IsZero() {
			t.Fatalf("%s lost its firing record: %+v", name, st)
		}
	}
	if v := o.tel.AlertsFiring.Value(); v != 0 {
		t.Fatalf("attest_alerts_firing = %v after recovery, want 0", v)
	}

	// The full lifecycle landed in the journal as typed alert events.
	firing, resolved := 0, 0
	for _, ev := range o.tel.Journal.Recent() {
		if ev.Kind != telemetry.EventAlert {
			continue
		}
		switch {
		case strings.HasPrefix(ev.Detail, "firing"):
			firing++
		case strings.HasPrefix(ev.Detail, "resolved"):
			resolved++
		}
	}
	if firing < 2 || resolved < 2 {
		t.Fatalf("journal alert events: %d firing, %d resolved, want >= 2 each", firing, resolved)
	}
}

// TestObservabilityHonestBaseline pins the negative: a healthy fixture
// never fires, never dumps, and still produces history with exemplars.
func TestObservabilityHonestBaseline(t *testing.T) {
	o := newObsFixture(t, 43)
	for i := 0; i < 6; i++ {
		o.sessions(t, o.prover, 3)
		o.tick()
	}
	if n := o.tel.Alerts.Firing(); n != 0 {
		t.Fatalf("honest baseline fired %d alerts", n)
	}
	dumps, _ := filepath.Glob(filepath.Join(o.dir, "flight-*.jsonl"))
	if len(dumps) != 0 {
		t.Fatalf("honest baseline wrote %d flight dumps", len(dumps))
	}
	point, ok := o.tel.History.Latest("attest_rtt_seconds")
	if !ok || point.Count == 0 || point.Exemplar == 0 {
		t.Fatalf("honest history point = %+v ok=%v, want counted point with exemplar", point, ok)
	}
	if got := o.tel.Sessions.With("accepted").Value(); got != 18 {
		t.Fatalf("accepted sessions = %d, want 18", got)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}
