package attest

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"pufatt/internal/telemetry"
)

// Flight-recorder dumps: when a session fails — the transport budget
// exhausts or the verifier rejects — the journal's recent history is the
// post-mortem, and it is worth nothing if the operator only thinks to fetch
// /debug/journal hours later, after the ring has turned over. With a flight
// directory configured, the failure handler snapshots the journal to a file
// at the moment of failure, named by a monotonic dump sequence and the
// trigger (never a timestamp: filenames stay deterministic under test).
//
// Dumping is strictly opt-in — no directory, no files — so embedding the
// attestation stack never writes to disk behind the caller's back.

// SetFlightDir sets the directory failure snapshots are written to (""
// disables dumping, the default). The directory is created on first dump.
func (t *Telemetry) SetFlightDir(dir string) {
	t.flightMu.Lock()
	defer t.flightMu.Unlock()
	t.flightDir = dir
}

// FlightDir returns the configured flight-recorder directory.
func (t *Telemetry) FlightDir() string {
	t.flightMu.Lock()
	defer t.flightMu.Unlock()
	return t.flightDir
}

// flightSeq is the process-wide dump sequence. It used to live per
// Telemetry bundle, which let two bundles pointed at the same directory
// (one fleet's sweeps plus one server's sessions, say) both write
// flight-0001-*.jsonl and silently clobber each other's post-mortems; a
// single atomic counter makes every dump filename in the process unique.
var flightSeq atomic.Uint64

// flightDump snapshots the journal to <dir>/flight-<seq>-<trigger>.jsonl,
// returning the path ("" when dumping is disabled). The dump header records
// the trigger and the failing session's trace ID, so the file correlates
// directly with the span tree at /debug/traces. Dump failures are reported,
// never fatal: the attestation outcome stands regardless.
func (t *Telemetry) flightDump(trigger string, trace telemetry.TraceID) (string, error) {
	t.flightMu.Lock()
	dir := t.flightDir
	t.flightMu.Unlock()
	if dir == "" {
		return "", nil
	}
	seq := flightSeq.Add(1)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("attest: flight dump: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%04d-%s.jsonl", seq, trigger))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("attest: flight dump: %w", err)
	}
	header := trigger
	if trace != 0 {
		header = fmt.Sprintf("%s trace=%s", trigger, trace)
	}
	werr := t.Journal.Snapshot(f, header)
	cerr := f.Close()
	if werr != nil {
		return path, fmt.Errorf("attest: flight dump: %w", werr)
	}
	if cerr != nil {
		return path, fmt.Errorf("attest: flight dump: %w", cerr)
	}
	return path, nil
}
