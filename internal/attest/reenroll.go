package attest

import (
	"fmt"
	"sync"

	"pufatt/internal/core"
	"pufatt/internal/crp/store"
	"pufatt/internal/telemetry"
)

// Rolling re-enrollment (PR 6): the device-lifetime answer to the paper's
// CRP-database drawback. A database-verified device dies when its enrolled
// seeds run out — unless the PUF is reconfigured (Spenke et al.'s
// remotely-reconfigurable arbiter idea, modelled in core/epoch.go) and a
// fresh epoch is enrolled BEFORE the old budget empties. The Reenroller is
// that pipeline: a low-budget watermark triggers a background measurement
// of the next epoch on the enrollment twin, live attestation keeps
// draining the old budget meanwhile, and the cutover — store commit plus
// prover reconfiguration — happens atomically behind an EpochGate so no
// in-flight session straddles two epochs.

// EpochGate serialises live attestation sessions against epoch cutovers.
// Sessions hold it shared for their whole claim→verdict span (Verifier.
// Gate); a cutover holds it exclusive. The gate is what turns "re-enroll
// under live traffic" from a race into a barrier: every session completes
// entirely in the epoch it claimed its seed under.
type EpochGate struct {
	mu sync.RWMutex
}

func (g *EpochGate) enterSession() { g.mu.RLock() }
func (g *EpochGate) leaveSession() { g.mu.RUnlock() }

// Cutover runs fn while the gate is held exclusively: in-flight sessions
// finish first, new sessions wait, and fn's store commit + device
// reconfiguration appear atomic to all of them.
func (g *EpochGate) Cutover(fn func() error) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return fn()
}

// Reenroller drives rolling re-enrollment for one device's durable store.
type Reenroller struct {
	// Store is the device's durable CRP store (the verifier's budget).
	Store *store.Store
	// Device is the ENROLLMENT TWIN: the facility-side instance of the
	// device's manufacturing seed that is reconfigured to the next epoch
	// and measured in the background. It must not be the live prover's
	// device — that one keeps answering old-epoch sessions until the
	// cutover, when OnCutover reconfigures it.
	Device *core.Device
	// DeviceName labels journal events and health observations (the
	// verifier's Device string).
	DeviceName string
	// Watermark is the low-budget trigger: Check starts a re-enrollment
	// once Remaining() <= Watermark (or the store is retired).
	Watermark int
	// SeedsPerEpoch is the size of each fresh enrollment (must be > 0).
	SeedsPerEpoch int
	// NewSeeds supplies the seed set for an epoch (nil = a deterministic
	// default: seed i of epoch e is e<<32|i; fine because every epoch is
	// an independent enrollment with its own reference space).
	NewSeeds func(epoch uint32, n int) []uint64
	// Workers bounds the measurement parallelism (<=0 = GOMAXPROCS).
	Workers int
	// Gate, when non-nil, is the cutover barrier shared with the live
	// verifier (Verifier.Gate). Nil means no serialisation: safe only when
	// no session is in flight during Commit.
	Gate *EpochGate
	// OnCutover runs inside the gate's exclusive section after the store
	// commit: reconfigure the live prover's device to the new epoch here
	// (and anything else that must flip atomically with the budget).
	OnCutover func(oldEpoch, newEpoch uint32)
	// Telemetry receives pipeline events (nil = package default).
	Telemetry *Telemetry

	mu      sync.Mutex
	running bool
	done    chan struct{}
	err     error
}

func (r *Reenroller) telemetry() *Telemetry {
	if r.Telemetry != nil {
		return r.Telemetry
	}
	return tel
}

func (r *Reenroller) seeds(epoch uint32) []uint64 {
	if r.NewSeeds != nil {
		return r.NewSeeds(epoch, r.SeedsPerEpoch)
	}
	out := make([]uint64, r.SeedsPerEpoch)
	for i := range out {
		out[i] = uint64(epoch)<<32 | uint64(i)
	}
	return out
}

// Check inspects the budget and starts a background re-enrollment when it
// has sunk to the watermark (or the store is retired). It returns true
// when a run was started; at most one run is in flight at a time. Call it
// from the sweep loop — it is cheap when the budget is healthy.
func (r *Reenroller) Check() bool {
	if !r.Store.Retired() && r.Store.Remaining() > r.Watermark {
		return false
	}
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return false
	}
	r.running = true
	done := make(chan struct{})
	r.done = done
	r.mu.Unlock()

	t := r.telemetry()
	t.Reenrolls.With("triggered").Inc()
	t.journal(telemetry.EventEpoch, 0, 0, r.DeviceName,
		fmt.Sprintf("re-enrollment triggered: remaining=%d watermark=%d", r.Store.Remaining(), r.Watermark))
	go func() {
		err := r.run()
		r.mu.Lock()
		r.err = err
		r.running = false
		r.mu.Unlock()
		close(done)
	}()
	return true
}

// Wait blocks until the in-flight background run (if any) finishes and
// returns its error.
func (r *Reenroller) Wait() error {
	r.mu.Lock()
	done := r.done
	r.mu.Unlock()
	if done != nil {
		<-done
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Run performs one full re-enrollment cycle synchronously: reconfigure
// the twin to the next epoch, measure and stage the fresh enrollment
// (old-epoch attestation continues meanwhile), then cut over inside the
// gate. Returns the error of whichever phase failed.
func (r *Reenroller) Run() error {
	r.mu.Lock()
	if r.running {
		done := r.done
		r.mu.Unlock()
		<-done
		return r.Wait()
	}
	r.running = true
	r.mu.Unlock()
	err := r.run()
	r.mu.Lock()
	r.err = err
	r.running = false
	r.mu.Unlock()
	return err
}

func (r *Reenroller) run() error {
	t := r.telemetry()
	st := r.Store
	old := st.Epoch()
	next := old + 1
	// A retired store awaits a specific epoch (its lost cutover's target);
	// never enroll below it.
	if aw := st.AwaitingEpoch(); aw > next {
		next = aw
	}

	// Phase 1 — measure the next epoch on the twin and stage it durably.
	// The live budget keeps draining: nothing here touches the old epoch.
	r.Device.SetEpoch(next)
	staged, err := st.StageEpoch(r.Device, r.seeds(next), r.Workers)
	if err != nil {
		t.Reenrolls.With("failed").Inc()
		t.journal(telemetry.EventEpoch, 0, 0, r.DeviceName,
			fmt.Sprintf("re-enrollment staging failed: epoch=%d err=%v", next, err))
		return fmt.Errorf("attest: staging epoch %d: %w", next, err)
	}
	t.Reenrolls.With("staged").Inc()
	t.journal(telemetry.EventEpoch, 0, 0, r.DeviceName,
		fmt.Sprintf("epoch %d staged: %d seeds measured", next, staged.Len()))

	// Phase 2 — cut over behind the gate: commit the store (the durable
	// transition retires the old epoch) and reconfigure the live prover in
	// the same exclusive section. Sessions in flight finish on the old
	// epoch first; sessions after the gate claim from the new one.
	commit := func() error {
		if err := staged.Commit(); err != nil {
			return err
		}
		if r.OnCutover != nil {
			r.OnCutover(old, next)
		}
		return nil
	}
	if r.Gate != nil {
		err = r.Gate.Cutover(commit)
	} else {
		err = commit()
	}
	if err != nil {
		_ = staged.Discard()
		t.Reenrolls.With("failed").Inc()
		t.journal(telemetry.EventEpoch, 0, 0, r.DeviceName,
			fmt.Sprintf("epoch cutover failed: %d->%d err=%v", old, next, err))
		return fmt.Errorf("attest: epoch cutover %d->%d: %w", old, next, err)
	}
	t.Reenrolls.With("committed").Inc()
	t.journal(telemetry.EventEpoch, 0, 0, r.DeviceName,
		fmt.Sprintf("epoch cutover committed: %d->%d, budget=%d", old, next, st.Remaining()))
	return nil
}
