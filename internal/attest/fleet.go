package attest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pufatt/internal/telemetry"
)

// Fleet manages attestation for a population of enrolled devices — the
// sensor-network deployment the paper's introduction motivates. Each node
// is enrolled with its own verifier (emulation model or CRP database); a
// sweep attests every node over its (possibly lossy) link and produces a
// degradation report that keeps the two failure regimes apart:
//
//   - compromised — the verifier completed a session and REJECTED it. A
//     security event. Never retried (see RetryPolicy).
//   - unreachable — every transport attempt failed; the verifier learned
//     nothing about the node's integrity. An availability event.
//
// Nodes that are unreachable sweep after sweep trip a per-node circuit
// breaker: they are quarantined and skipped (reported, not attested) until
// a probe succeeds or the operator reinstates them, so a dead region of the
// network cannot consume the whole sweep's retry budget forever.
type Fleet struct {
	// QuarantineThreshold is the number of consecutive unreachable sweeps
	// after which a node is quarantined (0 disables quarantine).
	QuarantineThreshold int

	// Telemetry receives the fleet's metrics (sweep outcomes, quarantine
	// transitions, the open-quarantine gauge). Nil means the package
	// default registry, which the admin endpoint serves; tests install a
	// private Telemetry to assert exact counts.
	Telemetry *Telemetry

	mu        sync.Mutex
	verifiers map[int]*Verifier
	agents    map[int]ProverAgent
	health    map[int]*nodeHealth
}

// nodeHealth is the per-node circuit-breaker state.
type nodeHealth struct {
	consecutiveUnreachable int
	quarantined            bool
}

// DefaultQuarantineThreshold is the consecutive-unreachable-sweep count at
// which a fresh fleet quarantines a node.
const DefaultQuarantineThreshold = 3

// NewFleet returns an empty fleet with the default quarantine threshold.
func NewFleet() *Fleet {
	return &Fleet{
		QuarantineThreshold: DefaultQuarantineThreshold,
		verifiers:           make(map[int]*Verifier),
		agents:              make(map[int]ProverAgent),
		health:              make(map[int]*nodeHealth),
	}
}

// telemetry returns the fleet's metric sink (the package default when the
// Telemetry field is nil).
func (f *Fleet) telemetry() *Telemetry {
	if f.Telemetry != nil {
		return f.Telemetry
	}
	return tel
}

// Enroll registers a node's verifier and its prover agent under a node id.
// Wrap the agent in a FaultyLink to model a lossy last hop. A verifier with
// no Device name is given "node-<id>", so fleet sessions always carry a
// device identity into the health registry and the journal.
func (f *Fleet) Enroll(nodeID int, v *Verifier, agent ProverAgent) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.verifiers[nodeID]; dup {
		return fmt.Errorf("attest: node %d already enrolled", nodeID)
	}
	if v.Device == "" {
		v.Device = fmt.Sprintf("node-%d", nodeID)
	}
	f.verifiers[nodeID] = v
	f.agents[nodeID] = agent
	f.health[nodeID] = &nodeHealth{}
	return nil
}

// Size returns the number of enrolled nodes.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.verifiers)
}

// Quarantined returns the currently quarantined node ids, ascending.
func (f *Fleet) Quarantined() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var ids []int
	for id, h := range f.health {
		if h.quarantined {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Reinstate clears a node's quarantine and failure history (an operator
// decision: the node was serviced, attest it normally again).
func (f *Fleet) Reinstate(nodeID int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.health[nodeID]
	if !ok {
		return
	}
	if h.quarantined {
		T := f.telemetry()
		T.QuarantineTransitions.With(transitionReinstate).Inc()
		T.QuarantineOpen.Add(-1)
		if v := f.verifiers[nodeID]; v != nil {
			T.Health.ObserveQuarantine(v.Device, false)
			T.journal(telemetry.EventQuarantine, 0, 0, v.Device, "lifted: operator reinstate")
		}
	}
	h.quarantined = false
	h.consecutiveUnreachable = 0
}

// NodeResult is one node's sweep outcome.
type NodeResult struct {
	NodeID int
	Result Result
	// Err is the terminal error when no session completed (transport
	// budget exhausted, quarantine skip, sweep cancellation, or an
	// agent-internal failure).
	Err error
	// Attempts is the number of sessions tried (0 for a quarantine skip).
	Attempts int
}

// Healthy reports whether the node attested successfully.
func (r NodeResult) Healthy() bool { return r.Err == nil && r.Result.Accepted }

// Compromised reports a completed-and-rejected session: the verifier's
// verdict that the node failed attestation.
func (r NodeResult) Compromised() bool { return r.Err == nil && !r.Result.Accepted }

// Exhausted reports a seed-budget exhaustion: the node's enrolled
// authentication lifetime is spent (or its epoch was retired) and it
// awaits re-enrollment. A lifecycle state — neither a security verdict
// nor a transport fault — so it gets its own regime.
func (r NodeResult) Exhausted() bool { return r.Err != nil && IsExhausted(r.Err) }

// Unreachable reports that no session completed for transport-shaped
// reasons: the transport budget was exhausted (or the node sat in
// quarantine), so the verifier learned nothing about the node's integrity
// this sweep. Budget exhaustion is NOT unreachable — see Exhausted.
func (r NodeResult) Unreachable() bool { return r.Err != nil && !IsExhausted(r.Err) }

// SweepOptions tunes a fleet sweep.
type SweepOptions struct {
	// Concurrency bounds the number of nodes attested at once (<=0 means
	// DefaultSweepConcurrency). Sweeps must finish in bounded time on a
	// million-node fleet without stampeding the base station, hence a
	// worker pool rather than either extreme.
	Concurrency int
	// Retry is each node's transport-fault budget. The zero value means a
	// single attempt, no backoff.
	Retry RetryPolicy
	// ProbeQuarantined sends quarantined nodes one half-open probe (a
	// single attempt, no retries). A node whose probe succeeds leaves
	// quarantine with its verdict recorded; a failed probe keeps it
	// quarantined. When false, quarantined nodes are skipped outright.
	ProbeQuarantined bool
}

// DefaultSweepConcurrency bounds a sweep that did not choose its own width.
const DefaultSweepConcurrency = 8

// DefaultSweepOptions returns the sweep configuration used by Sweep: a
// bounded worker pool, three attempts per node with no backoff sleeping
// (the fleet path runs on the simulated clock), and half-open probing.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{
		Concurrency:      DefaultSweepConcurrency,
		Retry:            RetryPolicy{MaxAttempts: 3},
		ProbeQuarantined: true,
	}
}

// SweepStats aggregates one sweep's telemetry: the same numbers the metric
// counters accumulate process-wide, scoped to a single sweep so operators
// (and tests) can reason about one pass in isolation.
type SweepStats struct {
	// Attempts is the total number of attestation attempts across all
	// nodes, including retries and half-open probes.
	Attempts int
	// Retries is the number of attempts beyond each node's first.
	Retries int
	// Probes is the number of half-open probes sent to quarantined nodes.
	Probes int
	// QuarantineEntered / QuarantineLifted count circuit-breaker
	// transitions that happened during this sweep (Lifted counts probe
	// successes only; operator Reinstate calls are outside any sweep).
	QuarantineEntered int
	QuarantineLifted  int
	// Cancelled is the number of nodes abandoned because the sweep
	// context ended before their session completed.
	Cancelled int
	// Sessions is the number of completed sessions (accepted or
	// rejected); RTTMin/RTTMean/RTTMax summarise their verifier-observed
	// round-trip times in seconds. All zero when no session completed.
	Sessions int
	RTTMin   float64
	RTTMean  float64
	RTTMax   float64
	// Elapsed is the sweep's wall time on the telemetry tracer's clock
	// (injectable, so tests assert on it without sleeping).
	Elapsed time.Duration
}

// SweepReport is the outcome of one fleet sweep, with node ids classified
// by regime (each list ascending; Healthy ∪ Compromised ∪ Exhausted ∪
// Unreachable ∪ Quarantined covers every enrolled node exactly once —
// quarantined nodes that were probed are classified by their probe
// outcome instead, and nodes abandoned by a cancelled sweep count as
// Unreachable).
type SweepReport struct {
	Results []NodeResult // ascending node id
	// Healthy nodes attested and were accepted.
	Healthy []int
	// Compromised nodes completed a session and were rejected.
	Compromised []int
	// Exhausted nodes could not open a session because their seed budget
	// is spent: awaiting re-enrollment, not compromised, not unreachable.
	Exhausted []int
	// Unreachable nodes exhausted their transport budget.
	Unreachable []int
	// Quarantined nodes were skipped (circuit breaker open, not probed or
	// probe failed).
	Quarantined []int
	// Stats carries the sweep's aggregate telemetry.
	Stats SweepStats
}

// String summarises the report.
func (r SweepReport) String() string {
	return fmt.Sprintf("sweep: %d nodes, %d healthy, %d compromised, %d exhausted, %d unreachable, %d quarantined",
		len(r.Results), len(r.Healthy), len(r.Compromised), len(r.Exhausted), len(r.Unreachable), len(r.Quarantined))
}

// Sweep attests every enrolled node with the default sweep options. It is
// a thin wrapper over SweepWithOptions with a background context.
func (f *Fleet) Sweep(link Link) SweepReport {
	return f.SweepWithOptions(context.Background(), link, DefaultSweepOptions())
}

// nodeOutcome carries one node's result plus the bookkeeping the sweep
// aggregates into SweepStats (raw attempt counts survive here even when
// the reported NodeResult zeroes them, as a failed probe does).
type nodeOutcome struct {
	res       NodeResult
	attempts  int
	probe     bool
	entered   bool
	lifted    bool
	cancelled bool
}

// SweepWithOptions attests every enrolled node over the link with bounded
// concurrency and per-node retry budgets, updates the quarantine state, and
// classifies the outcome. Cancelling ctx stops the sweep mid-flight: nodes
// not yet attested are reported with ErrCancelled (classified unreachable,
// counted in Stats.Cancelled) and their circuit breakers are left alone —
// cancellation says nothing about a node's reachability.
func (f *Fleet) SweepWithOptions(ctx context.Context, link Link, opts SweepOptions) SweepReport {
	if ctx == nil {
		ctx = context.Background()
	}
	T := f.telemetry()
	start := T.Tracer.Now()

	f.mu.Lock()
	ids := make([]int, 0, len(f.verifiers))
	for id := range f.verifiers {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	sort.Ints(ids)

	width := opts.Concurrency
	if width <= 0 {
		width = DefaultSweepConcurrency
	}
	if width > len(ids) {
		width = len(ids)
	}

	outcomes := make([]nodeOutcome, len(ids))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if cerr := ctx.Err(); cerr != nil {
					outcomes[i] = nodeOutcome{
						res:       NodeResult{NodeID: ids[i], Err: fmt.Errorf("%w: %v", ErrCancelled, cerr)},
						cancelled: true,
					}
					continue
				}
				outcomes[i] = f.attestNode(ctx, ids[i], link, opts)
			}
		}()
	}
	for i := range ids {
		work <- i
	}
	close(work)
	wg.Wait()

	report := SweepReport{Results: make([]NodeResult, len(ids))}
	stats := &report.Stats
	var rttSum float64
	for i, o := range outcomes {
		r := o.res
		report.Results[i] = r
		stats.Attempts += o.attempts
		if o.attempts > 1 {
			stats.Retries += o.attempts - 1
		}
		if o.probe {
			stats.Probes++
		}
		if o.entered {
			stats.QuarantineEntered++
		}
		if o.lifted {
			stats.QuarantineLifted++
		}
		if o.cancelled {
			stats.Cancelled++
		}
		if r.Err == nil {
			stats.Sessions++
			rtt := r.Result.Elapsed
			rttSum += rtt
			if stats.Sessions == 1 || rtt < stats.RTTMin {
				stats.RTTMin = rtt
			}
			if rtt > stats.RTTMax {
				stats.RTTMax = rtt
			}
		}
		switch {
		case r.Healthy():
			report.Healthy = append(report.Healthy, r.NodeID)
			T.SweepNodes.With(outcomeHealthy).Inc()
		case r.Compromised():
			report.Compromised = append(report.Compromised, r.NodeID)
			T.SweepNodes.With(outcomeCompromised).Inc()
		case errors.Is(r.Err, ErrQuarantined):
			report.Quarantined = append(report.Quarantined, r.NodeID)
			T.SweepNodes.With(outcomeQuarantined).Inc()
		case r.Exhausted():
			report.Exhausted = append(report.Exhausted, r.NodeID)
			T.SweepNodes.With(outcomeExhausted).Inc()
		default:
			report.Unreachable = append(report.Unreachable, r.NodeID)
			T.SweepNodes.With(outcomeUnreachable).Inc()
		}
	}
	if stats.Sessions > 0 {
		stats.RTTMean = rttSum / float64(stats.Sessions)
	}
	stats.Elapsed = T.Tracer.Now().Sub(start)
	T.Sweeps.Inc()
	T.SweepDuration.Observe(stats.Elapsed.Seconds())
	return report
}

// attestNode runs one node's sweep step: quarantine gate, retried session,
// circuit-breaker bookkeeping.
func (f *Fleet) attestNode(ctx context.Context, id int, link Link, opts SweepOptions) nodeOutcome {
	f.mu.Lock()
	v := f.verifiers[id]
	agent := f.agents[id]
	h := f.health[id]
	quarantined := h.quarantined
	f.mu.Unlock()

	T := f.telemetry()
	policy := opts.Retry
	probe := false
	if quarantined {
		if !opts.ProbeQuarantined {
			return nodeOutcome{res: NodeResult{NodeID: id, Err: fmt.Errorf("%w (skipped)", ErrQuarantined)}}
		}
		probe = true
		policy = RetryPolicy{MaxAttempts: 1} // half-open: one probe, no retries
	}

	res, attempts, err := T.runSessionRetry(ctx, v, agent, link, policy)
	out := nodeOutcome{
		res:      NodeResult{NodeID: id, Result: res, Err: err, Attempts: attempts},
		attempts: attempts,
		probe:    probe,
	}
	if errors.Is(err, ErrCancelled) {
		// The sweep was cancelled mid-node. No breaker update: the node
		// was never given a fair chance to answer.
		out.cancelled = true
		return out
	}
	if quarantined && err != nil {
		// Probe failed: stay quarantined, and report the cause.
		out.res.Err = fmt.Errorf("%w: probe failed: %v", ErrQuarantined, err)
		out.res.Attempts = 0
		T.QuarantineTransitions.With(transitionProbeFailed).Inc()
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case err == nil:
		// A completed session — whatever the verdict — proves the node
		// reachable: reset the breaker.
		h.consecutiveUnreachable = 0
		if h.quarantined {
			h.quarantined = false
			out.lifted = true
			T.QuarantineTransitions.With(transitionExit).Inc()
			T.QuarantineOpen.Add(-1)
			T.Health.ObserveQuarantine(v.Device, false)
			T.journal(telemetry.EventQuarantine, 0, 0, v.Device, "lifted: probe succeeded")
		}
	case IsTransport(err) && !quarantined:
		h.consecutiveUnreachable++
		if f.QuarantineThreshold > 0 && h.consecutiveUnreachable >= f.QuarantineThreshold && !h.quarantined {
			h.quarantined = true
			out.entered = true
			T.QuarantineTransitions.With(transitionEnter).Inc()
			T.QuarantineOpen.Add(1)
			T.Health.ObserveQuarantine(v.Device, true)
			T.journal(telemetry.EventQuarantine, 0, 0, v.Device,
				fmt.Sprintf("entered: %d consecutive unreachable sweeps", h.consecutiveUnreachable))
		}
	}
	return out
}

// Compromised returns the node ids whose sweep completed and was rejected
// by the verifier — the security failures. Transport failures are NOT
// included; see Unreachable.
func Compromised(results []NodeResult) []int {
	var bad []int
	for _, r := range results {
		if r.Compromised() {
			bad = append(bad, r.NodeID)
		}
	}
	return bad
}

// Unreachable returns the node ids whose sweep never completed a session —
// the availability failures, about which the verifier has no integrity
// verdict either way.
func Unreachable(results []NodeResult) []int {
	var out []int
	for _, r := range results {
		if r.Unreachable() {
			out = append(out, r.NodeID)
		}
	}
	return out
}
