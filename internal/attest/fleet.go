package attest

import (
	"fmt"
	"sort"
)

// Fleet manages attestation for a population of enrolled devices — the
// sensor-network deployment the paper's introduction motivates. Each node
// is enrolled with its own verifier (emulation model or CRP database); a
// sweep attests every node and reports the compromised ones.
type Fleet struct {
	verifiers map[int]*Verifier
	agents    map[int]ProverAgent
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{
		verifiers: make(map[int]*Verifier),
		agents:    make(map[int]ProverAgent),
	}
}

// Enroll registers a node's verifier and its prover agent under a node id.
func (f *Fleet) Enroll(nodeID int, v *Verifier, agent ProverAgent) error {
	if _, dup := f.verifiers[nodeID]; dup {
		return fmt.Errorf("attest: node %d already enrolled", nodeID)
	}
	f.verifiers[nodeID] = v
	f.agents[nodeID] = agent
	return nil
}

// Size returns the number of enrolled nodes.
func (f *Fleet) Size() int { return len(f.verifiers) }

// NodeResult is one node's sweep outcome.
type NodeResult struct {
	NodeID int
	Result Result
	Err    error
}

// Healthy reports whether the node attested successfully.
func (r NodeResult) Healthy() bool { return r.Err == nil && r.Result.Accepted }

// Sweep attests every enrolled node over the link, in ascending node-id
// order, and returns all results.
func (f *Fleet) Sweep(link Link) []NodeResult {
	ids := make([]int, 0, len(f.verifiers))
	for id := range f.verifiers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]NodeResult, 0, len(ids))
	for _, id := range ids {
		res, err := RunSession(f.verifiers[id], f.agents[id], link)
		out = append(out, NodeResult{NodeID: id, Result: res, Err: err})
	}
	return out
}

// Compromised returns the node ids that failed the last sweep's results.
func Compromised(results []NodeResult) []int {
	var bad []int
	for _, r := range results {
		if !r.Healthy() {
			bad = append(bad, r.NodeID)
		}
	}
	return bad
}
