package attest

import (
	"fmt"
	"sort"
	"sync"
)

// Fleet manages attestation for a population of enrolled devices — the
// sensor-network deployment the paper's introduction motivates. Each node
// is enrolled with its own verifier (emulation model or CRP database); a
// sweep attests every node over its (possibly lossy) link and produces a
// degradation report that keeps the two failure regimes apart:
//
//   - compromised — the verifier completed a session and REJECTED it. A
//     security event. Never retried (see RetryPolicy).
//   - unreachable — every transport attempt failed; the verifier learned
//     nothing about the node's integrity. An availability event.
//
// Nodes that are unreachable sweep after sweep trip a per-node circuit
// breaker: they are quarantined and skipped (reported, not attested) until
// a probe succeeds or the operator reinstates them, so a dead region of the
// network cannot consume the whole sweep's retry budget forever.
type Fleet struct {
	// QuarantineThreshold is the number of consecutive unreachable sweeps
	// after which a node is quarantined (0 disables quarantine).
	QuarantineThreshold int

	mu        sync.Mutex
	verifiers map[int]*Verifier
	agents    map[int]ProverAgent
	health    map[int]*nodeHealth
}

// nodeHealth is the per-node circuit-breaker state.
type nodeHealth struct {
	consecutiveUnreachable int
	quarantined            bool
}

// DefaultQuarantineThreshold is the consecutive-unreachable-sweep count at
// which a fresh fleet quarantines a node.
const DefaultQuarantineThreshold = 3

// NewFleet returns an empty fleet with the default quarantine threshold.
func NewFleet() *Fleet {
	return &Fleet{
		QuarantineThreshold: DefaultQuarantineThreshold,
		verifiers:           make(map[int]*Verifier),
		agents:              make(map[int]ProverAgent),
		health:              make(map[int]*nodeHealth),
	}
}

// Enroll registers a node's verifier and its prover agent under a node id.
// Wrap the agent in a FaultyLink to model a lossy last hop.
func (f *Fleet) Enroll(nodeID int, v *Verifier, agent ProverAgent) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.verifiers[nodeID]; dup {
		return fmt.Errorf("attest: node %d already enrolled", nodeID)
	}
	f.verifiers[nodeID] = v
	f.agents[nodeID] = agent
	f.health[nodeID] = &nodeHealth{}
	return nil
}

// Size returns the number of enrolled nodes.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.verifiers)
}

// Quarantined returns the currently quarantined node ids, ascending.
func (f *Fleet) Quarantined() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var ids []int
	for id, h := range f.health {
		if h.quarantined {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Reinstate clears a node's quarantine and failure history (an operator
// decision: the node was serviced, attest it normally again).
func (f *Fleet) Reinstate(nodeID int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.health[nodeID]; ok {
		h.quarantined = false
		h.consecutiveUnreachable = 0
	}
}

// NodeResult is one node's sweep outcome.
type NodeResult struct {
	NodeID int
	Result Result
	// Err is the terminal error when no session completed (transport
	// budget exhausted, quarantine skip, or an agent-internal failure).
	Err error
	// Attempts is the number of sessions tried (0 for a quarantine skip).
	Attempts int
}

// Healthy reports whether the node attested successfully.
func (r NodeResult) Healthy() bool { return r.Err == nil && r.Result.Accepted }

// Compromised reports a completed-and-rejected session: the verifier's
// verdict that the node failed attestation.
func (r NodeResult) Compromised() bool { return r.Err == nil && !r.Result.Accepted }

// Unreachable reports that no session completed: the transport budget was
// exhausted (or the node sat in quarantine), so the verifier learned
// nothing about the node's integrity this sweep.
func (r NodeResult) Unreachable() bool { return r.Err != nil }

// SweepOptions tunes a fleet sweep.
type SweepOptions struct {
	// Concurrency bounds the number of nodes attested at once (<=0 means
	// DefaultSweepConcurrency). Sweeps must finish in bounded time on a
	// million-node fleet without stampeding the base station, hence a
	// worker pool rather than either extreme.
	Concurrency int
	// Retry is each node's transport-fault budget. The zero value means a
	// single attempt, no backoff.
	Retry RetryPolicy
	// ProbeQuarantined sends quarantined nodes one half-open probe (a
	// single attempt, no retries). A node whose probe succeeds leaves
	// quarantine with its verdict recorded; a failed probe keeps it
	// quarantined. When false, quarantined nodes are skipped outright.
	ProbeQuarantined bool
}

// DefaultSweepConcurrency bounds a sweep that did not choose its own width.
const DefaultSweepConcurrency = 8

// DefaultSweepOptions returns the sweep configuration used by Sweep: a
// bounded worker pool, three attempts per node with no backoff sleeping
// (the fleet path runs on the simulated clock), and half-open probing.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{
		Concurrency:      DefaultSweepConcurrency,
		Retry:            RetryPolicy{MaxAttempts: 3},
		ProbeQuarantined: true,
	}
}

// SweepReport is the outcome of one fleet sweep, with node ids classified
// by regime (each list ascending; Healthy ∪ Compromised ∪ Unreachable ∪
// Quarantined covers every enrolled node exactly once — quarantined nodes
// that were probed are classified by their probe outcome instead).
type SweepReport struct {
	Results []NodeResult // ascending node id
	// Healthy nodes attested and were accepted.
	Healthy []int
	// Compromised nodes completed a session and were rejected.
	Compromised []int
	// Unreachable nodes exhausted their transport budget.
	Unreachable []int
	// Quarantined nodes were skipped (circuit breaker open, not probed or
	// probe failed).
	Quarantined []int
}

// String summarises the report.
func (r SweepReport) String() string {
	return fmt.Sprintf("sweep: %d nodes, %d healthy, %d compromised, %d unreachable, %d quarantined",
		len(r.Results), len(r.Healthy), len(r.Compromised), len(r.Unreachable), len(r.Quarantined))
}

// Sweep attests every enrolled node with the default sweep options and
// returns the per-node results in ascending node-id order.
func (f *Fleet) Sweep(link Link) []NodeResult {
	return f.SweepWithOptions(link, DefaultSweepOptions()).Results
}

// SweepWithOptions attests every enrolled node over the link with bounded
// concurrency and per-node retry budgets, updates the quarantine state, and
// classifies the outcome.
func (f *Fleet) SweepWithOptions(link Link, opts SweepOptions) SweepReport {
	f.mu.Lock()
	ids := make([]int, 0, len(f.verifiers))
	for id := range f.verifiers {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	sort.Ints(ids)

	width := opts.Concurrency
	if width <= 0 {
		width = DefaultSweepConcurrency
	}
	if width > len(ids) {
		width = len(ids)
	}

	results := make([]NodeResult, len(ids))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = f.attestNode(ids[i], link, opts)
			}
		}()
	}
	for i := range ids {
		work <- i
	}
	close(work)
	wg.Wait()

	report := SweepReport{Results: results}
	for _, r := range results {
		switch {
		case r.Healthy():
			report.Healthy = append(report.Healthy, r.NodeID)
		case r.Compromised():
			report.Compromised = append(report.Compromised, r.NodeID)
		case r.Attempts == 0:
			report.Quarantined = append(report.Quarantined, r.NodeID)
		default:
			report.Unreachable = append(report.Unreachable, r.NodeID)
		}
	}
	return report
}

// attestNode runs one node's sweep step: quarantine gate, retried session,
// circuit-breaker bookkeeping.
func (f *Fleet) attestNode(id int, link Link, opts SweepOptions) NodeResult {
	f.mu.Lock()
	v := f.verifiers[id]
	agent := f.agents[id]
	h := f.health[id]
	quarantined := h.quarantined
	f.mu.Unlock()

	policy := opts.Retry
	if quarantined {
		if !opts.ProbeQuarantined {
			return NodeResult{NodeID: id, Err: fmt.Errorf("%w (skipped)", ErrQuarantined)}
		}
		policy = RetryPolicy{MaxAttempts: 1} // half-open: one probe, no retries
	}

	res, attempts, err := RunSessionRetry(v, agent, link, policy)
	out := NodeResult{NodeID: id, Result: res, Err: err, Attempts: attempts}
	if quarantined && err != nil {
		// Probe failed: stay quarantined, and report the cause.
		out.Err = fmt.Errorf("%w: probe failed: %v", ErrQuarantined, err)
		out.Attempts = 0
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case err == nil:
		// A completed session — whatever the verdict — proves the node
		// reachable: reset the breaker.
		h.consecutiveUnreachable = 0
		h.quarantined = false
	case IsTransport(err) && !quarantined:
		h.consecutiveUnreachable++
		if f.QuarantineThreshold > 0 && h.consecutiveUnreachable >= f.QuarantineThreshold {
			h.quarantined = true
		}
	}
	return out
}

// Compromised returns the node ids whose sweep completed and was rejected
// by the verifier — the security failures. Transport failures are NOT
// included; see Unreachable.
func Compromised(results []NodeResult) []int {
	var bad []int
	for _, r := range results {
		if r.Compromised() {
			bad = append(bad, r.NodeID)
		}
	}
	return bad
}

// Unreachable returns the node ids whose sweep never completed a session —
// the availability failures, about which the verifier has no integrity
// verdict either way.
func Unreachable(results []NodeResult) []int {
	var out []int
	for _, r := range results {
		if r.Unreachable() {
			out = append(out, r.NodeID)
		}
	}
	return out
}
