package attest

import "fmt"

// Link models the prover's constrained communication interface: one-way
// propagation latency plus serialisation at a fixed bit rate. The paper's
// prover-authentication argument (Section 4.2) rests on this link being far
// slower than the CPU↔PUF path, so the model is explicit and shared with
// the oracle-attack analysis.
type Link struct {
	LatencySeconds float64
	BitsPerSecond  float64
}

// DefaultLink models a constrained sensor-node radio: 2 ms propagation,
// 250 kbit/s (802.15.4-class).
func DefaultLink() Link {
	return Link{LatencySeconds: 2e-3, BitsPerSecond: 250e3}
}

// TransferSeconds returns the one-way time for a message of the given size.
func (l Link) TransferSeconds(bits int) float64 {
	if l.BitsPerSecond <= 0 {
		return l.LatencySeconds
	}
	return l.LatencySeconds + float64(bits)/l.BitsPerSecond
}

// String describes the link.
func (l Link) String() string {
	return fmt.Sprintf("%.1fms/%.0fkbit/s", l.LatencySeconds*1e3, l.BitsPerSecond/1e3)
}

// RunSession executes one full attestation round trip on the simulated
// clock: challenge transfer, prover computation, response transfer,
// verification.
func RunSession(v *Verifier, agent ProverAgent, link Link) (Result, error) {
	ch, err := v.NewSession()
	if err != nil {
		return Result{}, err
	}
	resp, compute, err := agent.Respond(ch)
	if err != nil {
		return Result{}, err
	}
	elapsed := link.TransferSeconds(ChallengeBits) + compute + link.TransferSeconds(resp.Bits())
	return v.Verify(ch, resp, elapsed), nil
}
