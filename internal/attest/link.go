package attest

import (
	"fmt"
	"strconv"
)

// Link models the prover's constrained communication interface: one-way
// propagation latency plus serialisation at a fixed bit rate. The paper's
// prover-authentication argument (Section 4.2) rests on this link being far
// slower than the CPU↔PUF path, so the model is explicit and shared with
// the oracle-attack analysis.
type Link struct {
	LatencySeconds float64
	BitsPerSecond  float64
}

// DefaultLink models a constrained sensor-node radio: 2 ms propagation,
// 250 kbit/s (802.15.4-class).
func DefaultLink() Link {
	return Link{LatencySeconds: 2e-3, BitsPerSecond: 250e3}
}

// TransferSeconds returns the one-way time for a message of the given size.
func (l Link) TransferSeconds(bits int) float64 {
	if l.BitsPerSecond <= 0 {
		return l.LatencySeconds
	}
	return l.LatencySeconds + float64(bits)/l.BitsPerSecond
}

// String describes the link.
func (l Link) String() string {
	return fmt.Sprintf("%.1fms/%.0fkbit/s", l.LatencySeconds*1e3, l.BitsPerSecond/1e3)
}

// RunSession executes one full attestation round trip on the simulated
// clock: challenge transfer, prover computation, response transfer,
// verification. Each session records a trace — spans for the challenge
// draw, the prover's PUF-entangled checksum, and the verdict — into the
// attestation tracer's ring buffer (span taxonomy in DESIGN.md).
func RunSession(v *Verifier, agent ProverAgent, link Link) (Result, error) {
	sp := tel.Tracer.StartSpan("attest.session")
	defer sp.Finish()

	spc := sp.Child("challenge")
	ch, err := v.NewSession()
	spc.Finish()
	if err != nil {
		sp.SetAttr("error", err.Error())
		return Result{}, err
	}
	sp.SetAttr("session", strconv.FormatUint(ch.Session, 10))

	spr := sp.Child("puf_eval")
	resp, compute, err := agent.Respond(ch)
	spr.Finish()
	if err != nil {
		sp.SetAttr("error", err.Error())
		return Result{}, err
	}
	spr.SetAttr("compute_seconds", strconv.FormatFloat(compute, 'g', -1, 64))

	spv := sp.Child("verify")
	elapsed := link.TransferSeconds(ChallengeBits) + compute + link.TransferSeconds(resp.Bits())
	res := v.Verify(ch, resp, elapsed)
	spv.Finish()
	sp.SetAttr("verdict", verdictLabel(res))
	sp.SetAttr("elapsed_seconds", strconv.FormatFloat(elapsed, 'g', -1, 64))
	return res, nil
}

// verdictLabel names a result for span attributes and log lines.
func verdictLabel(res Result) string {
	if res.Accepted {
		return "accepted"
	}
	return "rejected"
}
