package attest

import (
	"fmt"
	"strconv"
	"time"

	"pufatt/internal/telemetry"
)

// Link models the prover's constrained communication interface: one-way
// propagation latency plus serialisation at a fixed bit rate. The paper's
// prover-authentication argument (Section 4.2) rests on this link being far
// slower than the CPU↔PUF path, so the model is explicit and shared with
// the oracle-attack analysis.
type Link struct {
	LatencySeconds float64
	BitsPerSecond  float64
}

// DefaultLink models a constrained sensor-node radio: 2 ms propagation,
// 250 kbit/s (802.15.4-class).
func DefaultLink() Link {
	return Link{LatencySeconds: 2e-3, BitsPerSecond: 250e3}
}

// TransferSeconds returns the one-way time for a message of the given size.
func (l Link) TransferSeconds(bits int) float64 {
	if l.BitsPerSecond <= 0 {
		return l.LatencySeconds
	}
	return l.LatencySeconds + float64(bits)/l.BitsPerSecond
}

// String describes the link.
func (l Link) String() string {
	return fmt.Sprintf("%.1fms/%.0fkbit/s", l.LatencySeconds*1e3, l.BitsPerSecond/1e3)
}

// RunSession executes one full attestation round trip on the simulated
// clock: challenge transfer, prover computation, response transfer,
// verification. Each session records a trace — spans for the challenge
// draw, the prover's PUF-entangled checksum, and the verdict, plus
// link/compute segments carrying the modelled durations — into the
// attestation tracer's ring buffer (span taxonomy in DESIGN.md), and every
// protocol step lands in the flight-recorder journal under the session's
// trace ID.
func RunSession(v *Verifier, agent ProverAgent, link Link) (Result, error) {
	res, _, err := tel.runSession(v, agent, link, 0)
	return res, err
}

// secondsToDuration converts a simulated-seconds cost to a time.Duration
// for segment rendering.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// runSession is RunSession against an explicit telemetry bundle (the fleet
// injects its own), reporting the session's trace ID so failure handlers
// can correlate the journal with the span tree. attempt is the 0-based
// retry index, folded into the device health observation.
func (t *Telemetry) runSession(v *Verifier, agent ProverAgent, link Link, attempt int) (Result, telemetry.TraceID, error) {
	return t.runSessionIn(telemetry.TraceContext{}, v, agent, link, attempt)
}

// runSessionIn is runSession adopted into an existing trace: a valid
// parent makes the session span a member of the caller's trace (the
// cluster tier stitches its route/queue/replication spans around the
// session this way), an invalid one opens a fresh trace as before.
func (t *Telemetry) runSessionIn(parent telemetry.TraceContext, v *Verifier, agent ProverAgent, link Link, attempt int) (Result, telemetry.TraceID, error) {
	sp := t.Tracer.StartSpanInTrace("attest.session", parent)
	defer sp.Finish()
	trace := sp.TraceID()
	device := v.Device
	if device != "" {
		sp.SetAttr("device", device)
	}

	// A gated session holds the epoch gate (shared) from seed claim to
	// verdict: an epoch cutover (exclusive) waits for in-flight sessions
	// and blocks new ones, so no session ever spans a reconfiguration.
	if v.Gate != nil {
		v.Gate.enterSession()
		defer v.Gate.leaveSession()
	}

	spc := sp.Child("challenge")
	ch, err := v.NewSession()
	spc.Finish()
	if err != nil {
		sp.SetAttr("error", err.Error())
		if IsExhausted(err) {
			// The budget ran dry (or its epoch was retired) before a new
			// enrollment is live: a lifecycle condition, not a fault. Flag
			// the device awaiting-reenroll and journal it for the flight
			// recorder; the caller sees the typed ExhaustedError.
			t.Health.ObserveBudgetExhausted(device)
			t.journal(telemetry.EventEpoch, trace, 0, device, "seed budget exhausted; awaiting re-enrollment")
		}
		return Result{}, trace, err
	}
	sp.SetAttr("session", strconv.FormatUint(ch.Session, 10))
	t.journal(telemetry.EventSessionOpen, trace, ch.Session, device, "")
	if v.Seeds != nil {
		remaining := v.BudgetRemaining()
		t.Health.ObserveSeedClaim(device, remaining)
		t.journal(telemetry.EventSeedClaim, trace, ch.Session, device,
			fmt.Sprintf("remaining=%d", remaining))
	}

	// The in-memory agent call IS the challenge send + response receive;
	// both events bracket it so journal order matches the wire protocol.
	t.journal(telemetry.EventChallengeSent, trace, ch.Session, device, "")
	spr := sp.Child("puf_eval")
	resp, compute, err := agent.Respond(ch)
	spr.Finish()
	if err != nil {
		sp.SetAttr("error", err.Error())
		return Result{}, trace, err
	}
	spr.SetAttr("compute_seconds", strconv.FormatFloat(compute, 'g', -1, 64))
	t.journal(telemetry.EventChecksumReceived, trace, ch.Session, device,
		fmt.Sprintf("helpers=%d compute=%.4gs", len(resp.Helpers), compute))

	spv := sp.Child("verify")
	elapsed := link.TransferSeconds(ch.Bits()) + compute + link.TransferSeconds(resp.Bits())
	res := v.verifyObserved(t, trace, ch, resp, elapsed)
	spv.Finish()

	// Segments: the modelled link and compute costs, laid end to end from
	// the session start, so /debug/traces shows where the round trip went
	// even though no local clock observed these phases.
	base := sp.Start()
	d1 := secondsToDuration(link.TransferSeconds(ch.Bits()))
	d2 := secondsToDuration(compute)
	sp.Segment("link.challenge", base, d1)
	sp.Segment("compute", base.Add(d1), d2)
	sp.Segment("link.response", base.Add(d1+d2), secondsToDuration(link.TransferSeconds(resp.Bits())))

	sp.SetAttr("verdict", verdictLabel(res))
	sp.SetAttr("elapsed_seconds", strconv.FormatFloat(elapsed, 'g', -1, 64))
	t.journal(telemetry.EventVerifyOutcome, trace, ch.Session, device,
		fmt.Sprintf("verdict=%s reason=%q elapsed=%.4gs", verdictLabel(res), res.Reason, elapsed))
	t.observeHealth(device, res, attempt)
	return res, trace, nil
}

// verdictLabel names a result for span attributes and log lines.
func verdictLabel(res Result) string {
	if res.Accepted {
		return "accepted"
	}
	return "rejected"
}
