package attest

import (
	"fmt"

	"pufatt/internal/mcu"
	"pufatt/internal/swatt"
)

// ProverAgent is anything that can answer an attestation challenge: the
// honest device, or one of the adversaries in package attacks. The returned
// compute time is simulated seconds spent before the response leaves the
// device.
type ProverAgent interface {
	Respond(ch Challenge) (Response, float64, error)
}

// Prover is the honest embedded device: its memory image (program +
// payload), its CPU clock, and its PUF port.
type Prover struct {
	Image *swatt.Image
	Port  *mcu.DevicePort
	// FreqHz is the CPU clock. The paper requires it to sit just under the
	// PUF datapath's reliability limit so any overclocking corrupts
	// responses; use TuneClock for that.
	FreqHz float64
	// MaxCycles bounds one attestation run (guards against runaway
	// programs).
	MaxCycles uint64
}

// NewProver assembles an honest prover from an image and a PUF port.
func NewProver(image *swatt.Image, port *mcu.DevicePort, freqHz float64) *Prover {
	p := &Prover{Image: image, Port: port, FreqHz: freqHz, MaxCycles: 1 << 36}
	p.Port.SetClock(freqHz)
	return p
}

// TuneClock sets the CPU frequency to margin × the PUF datapath's maximum
// reliable frequency (margin slightly below 1, e.g. 0.98): the operating
// point Section 4.2 prescribes, where any frequency increase violates the
// PUF's setup-time condition.
func (p *Prover) TuneClock(margin float64) {
	p.FreqHz = p.Port.MaxReliableFreqHz() * margin
	p.Port.SetClock(p.FreqHz)
}

// SetFreq overrides the CPU clock (used by the overclocking adversary).
func (p *Prover) SetFreq(freqHz float64) {
	p.FreqHz = freqHz
	p.Port.SetClock(freqHz)
}

// Respond runs the attestation program on the device and returns the
// response plus the simulated compute time. The prover drives the device
// clock to its own frequency on every run — several agents (honest and
// adversarial) may share one physical device, each at its chosen clock.
func (p *Prover) Respond(ch Challenge) (Response, float64, error) {
	p.Port.SetClock(p.FreqHz)
	p.Image.Layout.SetNonce(p.Image.Mem, ch.EffectiveNonce())
	cpu := mcu.New(p.Image.Mem, p.FreqHz, p.Port)
	if err := cpu.Run(p.MaxCycles); err != nil {
		return Response{}, 0, fmt.Errorf("attest: prover run: %w", err)
	}
	return Response{
		Session: ch.Session,
		Tag:     p.Image.Layout.ReadResult(p.Image.Mem),
		Helpers: p.Port.DrainHelpers(),
		// Echo the device's reconfiguration epoch: the honest prover always
		// reports what silicon it actually ran, and the verifier rejects the
		// session if its enrollment belongs to a different epoch.
		Epoch: p.Port.Device().Epoch(),
	}, cpu.TimeSeconds(), nil
}
