package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
	"pufatt/internal/telemetry"
)

// Synthetic canary probing: every metric the cluster emits today is
// traffic-dependent — a shard with no organic sessions has no RTT
// histogram, no failure ratio, nothing for the burn-rate rules to judge,
// and "no data" silently reads as "healthy". The Prober closes that gap by
// running low-rate end-to-end attestation sessions against a synthetic
// canary device pinned to each shard: the full protocol (challenge, PUF
// checksum, timing verdict) through the shard's real admission gate, so
// the probe measures exactly what a production session would experience.
//
// Isolation contract: the canary device is NOT enrolled in the cluster.
// Its seed budget is a private in-memory list — never a replicated Group —
// so probes cannot burn production seeds, appear in claim-log audits, or
// contend on any device's binding mutex. The only cluster state a probe
// touches is the shard's admission gate, deliberately: queue pressure is
// part of what the canary exists to feel.

// DefaultProbeSeeds is the per-shard canary seed budget. Probes are
// low-rate by design; at one probe a minute this lasts ~17 hours before
// the canary itself reports exhausted (which is a probe failure — a canary
// that can no longer probe must page, not vanish).
const DefaultProbeSeeds = 1024

// canaryChipBase offsets canary chip IDs far above any production fleet's
// so a canary PUF can never collide with an enrolled device's identity.
const canaryChipBase = 1 << 24

// ProberConfig sizes a cluster's canary prober.
type ProberConfig struct {
	// Seeds is the per-shard canary seed budget (default DefaultProbeSeeds).
	Seeds int
	// Seed is the master seed for canary devices and nonce streams
	// (default 1). Probe behaviour is a pure function of (Seed, FaultSeed,
	// Plan(s)) — the determinism the tests pin down.
	Seed uint64
	// Plan injects last-hop faults on every canary link (zero = clean).
	Plan attest.FaultPlan
	// Plans overrides Plan per shard — tests fault one shard's canary
	// while the rest probe clean.
	Plans map[string]attest.FaultPlan
	// FaultSeed seeds the fault schedules (default 1).
	FaultSeed uint64
	// MaxAttempts is the probe session's retry budget (default 2 — probes
	// should report flaky transport, not paper over it).
	MaxAttempts int
}

func (pc ProberConfig) withDefaults() ProberConfig {
	if pc.Seeds <= 0 {
		pc.Seeds = DefaultProbeSeeds
	}
	if pc.Seed == 0 {
		pc.Seed = 1
	}
	if pc.FaultSeed == 0 {
		pc.FaultSeed = 1
	}
	if pc.MaxAttempts <= 0 {
		pc.MaxAttempts = 2
	}
	return pc
}

// canarySeeds is the prober's isolated seed budget: a private in-memory
// seed list, deliberately NOT a replicated Group.
type canarySeeds struct {
	mu    sync.Mutex
	seeds []uint64
	next  int
}

// NextUnused implements attest.SeedBudget.
func (b *canarySeeds) NextUnused() (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.next >= len(b.seeds) {
		return 0, fmt.Errorf("cluster: canary seed budget: %w", crp.ErrExhausted)
	}
	s := b.seeds[b.next]
	b.next++
	return s, nil
}

// Remaining implements attest.SeedBudget.
func (b *canarySeeds) Remaining() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.seeds) - b.next
}

// canary is one shard's probe endpoint.
type canary struct {
	shard string

	mu       sync.Mutex // serialises probes (verifier session state)
	verifier *attest.Verifier
	agent    attest.ProverAgent
	link     attest.Link
	budget   *canarySeeds
	status   ProbeStatus
}

// ProbeStatus is one shard's canary state, served at /probes. A shard
// whose Sessions is zero has never been probed — "no data", which the
// dashboards must render distinctly from healthy.
type ProbeStatus struct {
	Shard string `json:"shard"`
	Alive bool   `json:"alive"`

	Sessions   int `json:"sessions"`
	Accepted   int `json:"accepted"`
	Rejected   int `json:"rejected"`
	Transport  int `json:"transport"`
	Overloaded int `json:"overloaded"`
	Errors     int `json:"errors"`

	// LastVerdict classifies the most recent probe: accepted, rejected,
	// transport, overload, or error ("" before the first probe).
	LastVerdict    string  `json:"last_verdict,omitempty"`
	LastReason     string  `json:"last_reason,omitempty"`
	LastRTTSeconds float64 `json:"last_rtt_seconds,omitempty"`
	LastTrace      string  `json:"last_trace,omitempty"`
	SeedsRemaining int     `json:"seeds_remaining"`
	LastUnixNano   int64   `json:"last_unix_ns,omitempty"`
}

// Prober runs the per-shard synthetic canaries.
type Prober struct {
	c        *Cluster
	cfg      ProberConfig
	canaries map[string]*canary
}

// NewProber builds one canary endpoint per shard and attaches the prober
// to the cluster (so AdminMux serves /probes). Canary devices are
// simulated with the load engine's SWATT geometry — big enough for the
// full protocol, cheap enough that probing is negligible load.
func NewProber(c *Cluster, cfg ProberConfig) (*Prober, error) {
	cfg = cfg.withDefaults()
	design := core.MustNewDesign(core.DefaultConfig())
	params := loadParams()
	image, err := swatt.BuildImage(params, make([]uint32, 64))
	if err != nil {
		return nil, err
	}
	link := attest.DefaultLink()

	p := &Prober{c: c, cfg: cfg, canaries: make(map[string]*canary, len(c.order))}
	for i, sid := range c.order {
		chip := canaryChipBase + i
		dev, err := core.NewDevice(design, rng.New(cfg.Seed+uint64(chip)), chip)
		if err != nil {
			return nil, fmt.Errorf("cluster: canary for shard %s: %w", sid, err)
		}
		seeds := make([]uint64, cfg.Seeds)
		for k := range seeds {
			seeds[k] = uint64(chip)<<20 | uint64(k+1)
		}
		budget := &canarySeeds{seeds: seeds}
		port, err := mcu.NewDevicePort(dev)
		if err != nil {
			return nil, fmt.Errorf("cluster: canary for shard %s: %w", sid, err)
		}
		prover := attest.NewProver(image.Clone(), port, 1)
		prover.TuneClock(0.98)
		v, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
		if err != nil {
			return nil, fmt.Errorf("cluster: canary for shard %s: %w", sid, err)
		}
		v.WithSeedBudget(budget)
		v.Device = "canary-" + sid
		v.Nonces = rng.New(cfg.Seed + uint64(chip)*7 + 3).Uint32
		v.AllowNetwork(link)
		plan := cfg.Plan
		if override, ok := cfg.Plans[sid]; ok {
			plan = override
		}
		var agent attest.ProverAgent = prover
		if plan != (attest.FaultPlan{}) {
			agent = attest.NewFaultyLink(prover, plan, cfg.FaultSeed+uint64(i))
		}
		p.canaries[sid] = &canary{
			shard: sid, verifier: v, agent: agent, link: link, budget: budget,
			status: ProbeStatus{Shard: sid, SeedsRemaining: budget.Remaining()},
		}
	}
	c.prober.Store(p)
	return p, nil
}

// Prober returns the canary prober attached to the cluster (nil if none).
func (c *Cluster) Prober() *Prober { return c.prober.Load() }

// ProbeOnce probes one shard: a full end-to-end attestation session
// against the shard's canary, through its real admission gate, under a
// "cluster.probe" root span. The outcome updates the shard's ProbeStatus
// and the cluster_probe_* metrics; probe errors are data, not failures of
// the prober itself.
func (p *Prober) ProbeOnce(ctx context.Context, shard string) (out ProbeStatus, _ error) {
	cn := p.canaries[shard]
	if cn == nil {
		return ProbeStatus{}, fmt.Errorf("cluster: unknown shard %q", shard)
	}
	met := p.c.met
	tracer := p.c.tel.Tracer

	cn.mu.Lock()
	defer cn.mu.Unlock()

	sp := tracer.StartSpan("cluster.probe")
	defer sp.Finish()
	sp.SetAttr("shard", shard)

	st := &cn.status
	st.Alive = p.c.shardAlive(shard)
	st.Sessions++
	st.LastTrace = sp.TraceID().String()
	st.LastUnixNano = tracer.Now().UnixNano()
	met.ProbeAttempts.With(shard).Inc()

	verdict := "error"
	reason := ""
	// Deferred so every return path classifies; the named result is
	// reassigned here because the bare returns below copy the status BEFORE
	// this defer fills in the verdict fields.
	defer func() {
		st.LastVerdict = verdict
		st.LastReason = reason
		st.SeedsRemaining = cn.budget.Remaining()
		sp.SetAttr("verdict", verdict)
		met.ProbeSessions.With(shard, verdict).Inc()
		if verdict != "accepted" {
			met.ProbeFailures.With(shard).Inc()
		}
		out = *st
	}()

	if !st.Alive {
		verdict, reason = "error", ErrShardDown.Error()
		st.Errors++
		return *st, nil
	}

	spWait := sp.Child("queue.wait")
	spWait.SetAttr("shard", shard)
	release, _, err := p.c.shards[shard].adm.acquire(ctx)
	spWait.Finish()
	if err != nil {
		if IsOverload(err) {
			verdict = "overload"
			st.Overloaded++
		} else {
			st.Errors++
		}
		reason = err.Error()
		return *st, nil
	}
	defer release()

	policy := attest.RetryPolicy{MaxAttempts: p.cfg.MaxAttempts, JitterSeed: p.cfg.Seed}
	res, _, err := p.c.tel.RunSessionRetry(
		attest.WithTraceParent(ctx, sp.Context()), cn.verifier, cn.agent, cn.link, policy)
	switch {
	case err == nil && res.Accepted:
		verdict = "accepted"
		st.Accepted++
		st.LastRTTSeconds = res.Elapsed
		met.ProbeRTT.With(shard).ObserveExemplar(res.Elapsed, uint64(sp.TraceID()))
	case err == nil:
		verdict, reason = "rejected", res.Reason
		st.Rejected++
	case attest.IsTransport(err):
		verdict, reason = "transport", err.Error()
		st.Transport++
	default:
		verdict, reason = "error", err.Error()
		st.Errors++
	}
	return *st, nil
}

// ProbeAll probes every shard once, in shard order (deterministic probe
// schedules are what make the canary tests exact).
func (p *Prober) ProbeAll(ctx context.Context) []ProbeStatus {
	out := make([]ProbeStatus, 0, len(p.c.order))
	for _, sid := range p.c.order {
		st, err := p.ProbeOnce(ctx, sid)
		if err != nil {
			continue
		}
		out = append(out, st)
	}
	return out
}

// Status returns every shard's canary state, sorted by shard name. Shards
// never probed report Sessions == 0 (no data).
func (p *Prober) Status() []ProbeStatus {
	out := make([]ProbeStatus, 0, len(p.canaries))
	for _, cn := range p.canaries {
		cn.mu.Lock()
		st := cn.status
		st.Alive = p.c.shardAlive(cn.shard)
		st.SeedsRemaining = cn.budget.Remaining()
		cn.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// Start probes every shard once per interval (<=0 means one minute) until
// the returned stop function is called.
func (p *Prober) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				p.ProbeAll(context.Background())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// AlertRules derives the per-shard probe-failure burn rules for this
// prober's cluster (see ProbeAlertRules).
func (p *Prober) AlertRules(budget float64) []telemetry.Rule {
	return ProbeAlertRules(p.c.order, budget)
}
