package cluster

import (
	"math"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty shard name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
}

// Placement must be a pure function of the configuration: two rings built
// from the same shard set route every key identically, regardless of the
// order the configuration listed the shards in.
func TestRingDeterministicPlacement(t *testing.T) {
	r1, err := NewRing([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"c", "a", "b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2000; id++ {
		key := DeviceKey(id)
		if got, want := r2.Route(key), r1.Route(key); got != want {
			t.Fatalf("device %d: configuration order changed placement: %s vs %s", id, got, want)
		}
	}
}

func TestRingRouteNDistinct(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 500; id++ {
		key := DeviceKey(id)
		set := r.RouteN(key, 3)
		if len(set) != 3 {
			t.Fatalf("device %d: replica set %v, want 3 distinct shards", id, set)
		}
		if set[0] != r.Route(key) {
			t.Fatalf("device %d: RouteN leader %s != Route %s", id, set[0], r.Route(key))
		}
		seen := map[string]bool{}
		for _, s := range set {
			if seen[s] {
				t.Fatalf("device %d: duplicate shard %s in replica set %v", id, s, set)
			}
			seen[s] = true
		}
	}
	// Clamping: asking for more replicas than shards yields all shards.
	if got := r.RouteN(DeviceKey(1), 9); len(got) != 4 {
		t.Fatalf("RouteN over shard count: %v, want 4 shards", got)
	}
	if got := r.RouteN(DeviceKey(1), 0); len(got) != 1 {
		t.Fatalf("RouteN(0): %v, want the leader alone", got)
	}
}

// Ownership fractions must partition the hash space: sum to 1, and with
// enough virtual nodes no shard strays far from its fair share.
func TestRingOwnership(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap.Points != 3*DefaultVNodes {
		t.Fatalf("points = %d, want %d", snap.Points, 3*DefaultVNodes)
	}
	sum := 0.0
	for _, s := range snap.Shards {
		if s.Ownership <= 0 {
			t.Fatalf("shard %s owns nothing", s.Shard)
		}
		if math.Abs(s.Ownership-1.0/3) > 0.15 {
			t.Fatalf("shard %s ownership %.3f too far from fair share", s.Shard, s.Ownership)
		}
		sum += s.Ownership
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ownership sums to %.9f, want 1", sum)
	}
}
