package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pufatt/internal/crp"
	"pufatt/internal/crp/store"
	"pufatt/internal/telemetry"
)

// Typed leadership errors. Both are terminal session errors — they mean
// the control plane refuses to serve, not that a frame was lost — so the
// attestation retry machinery never consumes transport budget on them.
var (
	// ErrStaleReplica reports a promotion (or a forced serve) refused
	// because the candidate's claim log is behind the acknowledged
	// high-water mark: some finished session consumed a seed the candidate
	// has never heard of, and serving from it could hand that seed out
	// again. Fail closed.
	ErrStaleReplica = errors.New("cluster: replica claim log behind acknowledged high-water mark")
	// ErrNoLeader reports a device none of whose live replicas may serve.
	ErrNoLeader = errors.New("cluster: no serviceable leader for device")
)

// Group is one device's replication group: the ordered replica set the
// ring assigned it, one claim log per replica, and the leader that owns
// claims. It implements the attestation layer's EpochBudget, so a Verifier
// whose seed budget is a Group transparently claims every session's x0
// through the replicated log. (It also implements core.ReferenceSource
// over the enrollment's measured references, for direct CRP verification
// of claimed seeds; interactive sessions use the emulator model as their
// reference source, as everywhere else in the stack.)
type Group struct {
	c      *Cluster
	device int

	// active is the cluster.attest root span of the session currently
	// holding the device's binding mutex (nil outside a session). The
	// claim path hangs its repl.ack span under it so replication latency
	// lands in the same trace as routing, queueing, and the session.
	active atomic.Pointer[telemetry.Span]

	mu       sync.Mutex
	enr      *Enrollment
	replicas []string
	leader   int // index into replicas
	logs     map[string]*deviceLog
	acked    map[string]uint64 // leader's acknowledged high-water mark per replica
	// hwm is the group's acknowledged high-water mark: the highest
	// sequence number that completed the full log-before-acknowledge
	// cycle (leader append + replication to every live follower) and was
	// therefore released to a session. Promotion gates on it.
	hwm uint64
}

// Device returns the group's chip ID.
func (g *Group) Device() int { return g.device }

// Replicas returns the group's replica set, leader first as placed by the
// ring (the *current* leader may differ after failover; see Leader).
func (g *Group) Replicas() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.replicas...)
}

// Leader resolves the group's current serviceable leader, auto-promoting
// over a dead one when the cluster allows it.
func (g *Group) Leader() (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaderLocked()
}

// Applied reports a replica's applied log sequence (0 for a non-replica).
func (g *Group) Applied(shard string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if l := g.logs[shard]; l != nil {
		return l.applied()
	}
	return 0
}

// HighWaterMark reports the group's acknowledged high-water mark.
func (g *Group) HighWaterMark() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hwm
}

// leaderLocked returns the current leader if it is alive, else fails over
// (when the cluster's AutoFailover is set) to the live replica with the
// longest log — which promoteLocked still gates against the high-water
// mark, so a partitioned rump of stale replicas fails closed rather than
// serving.
func (g *Group) leaderLocked() (string, error) {
	lead := g.replicas[g.leader]
	if g.c.shardAlive(lead) {
		return lead, nil
	}
	if !g.c.cfg.AutoFailover {
		return "", fmt.Errorf("%w %d: leader %s down", ErrNoLeader, g.device, lead)
	}
	best, bestApplied := -1, uint64(0)
	for i, sid := range g.replicas {
		if i == g.leader || !g.c.shardAlive(sid) {
			continue
		}
		if a := g.logs[sid].applied(); best < 0 || a > bestApplied {
			best, bestApplied = i, a
		}
	}
	if best < 0 {
		return "", fmt.Errorf("%w %d: all replicas down", ErrNoLeader, g.device)
	}
	if err := g.promoteLocked(g.replicas[best]); err != nil {
		return "", err
	}
	return g.replicas[g.leader], nil
}

// Promote makes the named replica the group's leader. It refuses — with
// ErrStaleReplica — a candidate whose applied log is behind the
// acknowledged high-water mark: a stale leader could re-issue a seed some
// completed session already used.
func (g *Group) Promote(shard string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.promoteLocked(shard)
}

func (g *Group) promoteLocked(shard string) error {
	idx := -1
	for i, sid := range g.replicas {
		if sid == shard {
			idx = i
			break
		}
	}
	if idx < 0 {
		g.c.met.Promotions.With("not_replica").Inc()
		return fmt.Errorf("cluster: shard %s is not a replica of device %d", shard, g.device)
	}
	if !g.c.shardAlive(shard) {
		g.c.met.Promotions.With("down").Inc()
		return fmt.Errorf("cluster: promoting device %d: shard %s: %w", g.device, shard, ErrShardDown)
	}
	if applied := g.logs[shard].applied(); applied < g.hwm {
		g.c.met.Promotions.With("stale_refused").Inc()
		return fmt.Errorf("%w: device %d shard %s applied %d < hwm %d",
			ErrStaleReplica, g.device, shard, applied, g.hwm)
	}
	if idx != g.leader {
		g.c.met.Promotions.With("promoted").Inc()
	}
	g.leader = idx
	return nil
}

// NextUnusedWithEpoch claims the next unused seed through the replicated
// log: the leader appends the claim frame locally (log before
// acknowledge), streams it to every live follower, advances the
// acknowledged high-water mark, and only then releases the seed.
func (g *Group) NextUnusedWithEpoch() (uint64, uint32, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	lead, err := g.leaderLocked()
	if err != nil {
		return 0, 0, err
	}
	log := g.logs[lead]
	seed, ok := g.nextUnusedLocked(log)
	if !ok {
		return 0, log.epoch, fmt.Errorf("cluster: device %d: %w", g.device, crp.ErrExhausted)
	}
	if err := g.replicateLocked(lead, store.ClaimFrame(seed)); err != nil {
		return 0, 0, err
	}
	g.c.met.ReplClaims.Inc()
	return seed, log.epoch, nil
}

// NextUnused implements attest.SeedBudget.
func (g *Group) NextUnused() (uint64, error) {
	seed, _, err := g.NextUnusedWithEpoch()
	return seed, err
}

// nextUnusedLocked scans the enrollment order from the log's cursor for
// the first seed the log has not burned.
func (g *Group) nextUnusedLocked(log *deviceLog) (uint64, bool) {
	for log.cursor < len(g.enr.order) {
		if s := g.enr.order[log.cursor]; !log.used[s] {
			return s, true
		}
		log.cursor++
	}
	return 0, false
}

// replicateLocked runs one frame through the full log-before-acknowledge
// cycle: leader append, synchronous streaming to live followers with
// acknowledged marks, high-water-mark advance. Dead followers are skipped
// — their logs stop advancing, which is exactly what the promotion gate
// measures. A follower that revived behind the leader is caught up first:
// the leader streams every frame it missed, in order, before the new one.
// A live follower refusing a frame is a fatal control-plane error
// (histories diverged); the claim is burned on the leader and never
// released.
func (g *Group) replicateLocked(lead string, frame []byte) error {
	// When a cluster.attest session published its root span, the whole
	// acknowledge cycle records under it as repl.ack with one repl.follower
	// child per live follower streamed to — the trace's answer to "where
	// did replication time go, and to whom".
	tracer := g.c.tel.Tracer
	var spAck *telemetry.Span
	if root := g.active.Load(); root != nil {
		spAck = root.Child("repl.ack")
		spAck.SetAttr("leader", lead)
	}
	ackStart := tracer.Now()
	finishAck := func() {
		if spAck != nil {
			spAck.Finish()
		}
		g.c.met.ReplAck.Observe(tracer.Now().Sub(ackStart).Seconds())
	}

	log := g.logs[lead]
	seq := log.applied() + 1
	if err := log.apply(seq, frame); err != nil {
		if spAck != nil {
			spAck.SetAttr("error", err.Error())
		}
		finishAck()
		return fmt.Errorf("cluster: leader %s append for device %d: %w", lead, g.device, err)
	}
	g.acked[lead] = seq
	for _, sid := range g.replicas {
		if sid == lead || !g.c.shardAlive(sid) {
			continue
		}
		var spf *telemetry.Span
		if spAck != nil {
			spf = spAck.Child("repl.follower")
			spf.SetAttr("shard", sid)
		}
		follower := g.logs[sid]
		for s := follower.applied() + 1; s <= seq; s++ {
			if err := follower.apply(s, log.frames[s-1]); err != nil {
				if spf != nil {
					spf.SetAttr("error", err.Error())
					spf.Finish()
				}
				finishAck()
				return fmt.Errorf("cluster: replicating seq %d for device %d to %s: %w", s, g.device, sid, err)
			}
			g.c.met.ReplFrames.Inc()
		}
		g.acked[sid] = seq
		if spf != nil {
			spf.Finish()
		}
	}
	g.hwm = seq
	g.observeLagLocked()
	finishAck()
	return nil
}

// observeLagLocked reports the group's worst follower lag (in frames
// behind the high-water mark, live replicas only) to the lag gauge, which
// aggregates the max across groups — a healthy group's zero must not mask
// another group's lag.
func (g *Group) observeLagLocked() {
	var worst uint64
	for _, sid := range g.replicas {
		if !g.c.shardAlive(sid) {
			continue
		}
		if a := g.logs[sid].applied(); g.hwm > a && g.hwm-a > worst {
			worst = g.hwm - a
		}
	}
	g.c.met.observeLag(g.device, worst)
}

// CommitEpoch replicates an epoch transition frame — the cutover commit
// point — and swaps in the new epoch's enrollment. From the moment the
// frame is on every live replica, the old epoch's seeds are unclaimable
// cluster-wide.
func (g *Group) CommitEpoch(enr *Enrollment) error {
	if enr.device != g.device {
		return fmt.Errorf("cluster: enrollment for device %d offered to device %d", enr.device, g.device)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	lead, err := g.leaderLocked()
	if err != nil {
		return err
	}
	from := g.logs[lead].epoch
	if enr.epoch == from {
		return fmt.Errorf("cluster: device %d re-enrollment must advance the epoch past %d", g.device, from)
	}
	if err := g.replicateLocked(lead, store.TransitionFrame(from, enr.epoch)); err != nil {
		return err
	}
	g.enr = enr
	// Claims from the retired enrollment stay in every log's used set;
	// the fresh enrollment uses fresh seeds, and each log rescans from
	// the front of the new order.
	for _, l := range g.logs {
		l.cursor = 0
	}
	return nil
}

// Epoch implements attest.EpochBudget.
func (g *Group) Epoch() uint32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	lead, err := g.leaderLocked()
	if err != nil {
		return g.enr.epoch
	}
	return g.logs[lead].epoch
}

// Remaining implements attest.SeedBudget: unclaimed seeds under the
// current leader's view.
func (g *Group) Remaining() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	lead, err := g.leaderLocked()
	if err != nil {
		return 0
	}
	n := 0
	for _, s := range g.enr.order {
		if !g.logs[lead].used[s] {
			n++
		}
	}
	return n
}

// ResponseBits implements core.ReferenceSource.
func (g *Group) ResponseBits() int { return g.enr.bits }

// ReferenceResponse implements core.ReferenceSource. Like crp.Database, a
// seed must have been claimed before its references may be read, so a
// protocol bug cannot silently bypass replay protection.
func (g *Group) ReferenceResponse(seed uint64, j int) ([]uint8, error) {
	g.mu.Lock()
	enr := g.enr
	lead, err := g.leaderLocked()
	var claimed bool
	if err == nil {
		claimed = g.logs[lead].used[seed]
	}
	g.mu.Unlock()
	if err != nil {
		return nil, err
	}
	refs, ok := enr.refs[seed]
	if !ok {
		return nil, crp.ErrUnknownSeed
	}
	if !claimed {
		return nil, fmt.Errorf("cluster: seed %#x not claimed before use", seed)
	}
	if j < 0 || j >= len(refs) {
		return nil, fmt.Errorf("cluster: reference index %d out of range", j)
	}
	return refs[j], nil
}
