package cluster

import (
	"errors"
	"testing"

	"pufatt/internal/crp/store"
)

// Follower replay rejection, exercised with the same frame-surgery
// technique the store's WAL crash tests use: hand-built 16-byte frames,
// selectively corrupted, delivered out of order or twice.

func TestDeviceLogAppliesInOrder(t *testing.T) {
	l := newDeviceLog(1)
	if l.applied() != 0 {
		t.Fatalf("fresh log applied = %d", l.applied())
	}
	if err := l.apply(1, store.ClaimFrame(0xa1)); err != nil {
		t.Fatal(err)
	}
	if err := l.apply(2, store.ClaimFrame(0xa2)); err != nil {
		t.Fatal(err)
	}
	if l.applied() != 2 {
		t.Fatalf("applied = %d, want 2", l.applied())
	}
	if !l.used[0xa1] || !l.used[0xa2] {
		t.Fatal("claimed seeds not burned in the used set")
	}
}

func TestDeviceLogIdempotentRedelivery(t *testing.T) {
	l := newDeviceLog(1)
	frame := store.ClaimFrame(0xb1)
	if err := l.apply(1, frame); err != nil {
		t.Fatal(err)
	}
	// The same (seq, frame) pair again is retransmission, not replay.
	if err := l.apply(1, frame); err != nil {
		t.Fatalf("idempotent re-delivery refused: %v", err)
	}
	if l.applied() != 1 {
		t.Fatalf("re-delivery duplicated the frame: applied = %d", l.applied())
	}
	// The same sequence number carrying different bytes is divergence.
	err := l.apply(1, store.ClaimFrame(0xb2))
	if !errors.Is(err, ErrFrameMismatch) {
		t.Fatalf("divergent re-delivery: %v, want ErrFrameMismatch", err)
	}
}

func TestDeviceLogRejectsGaps(t *testing.T) {
	l := newDeviceLog(1)
	if err := l.apply(0, store.ClaimFrame(1)); !errors.Is(err, ErrLogGap) {
		t.Fatalf("sequence 0: %v, want ErrLogGap", err)
	}
	if err := l.apply(2, store.ClaimFrame(1)); !errors.Is(err, ErrLogGap) {
		t.Fatalf("skipped sequence: %v, want ErrLogGap", err)
	}
	if l.applied() != 0 {
		t.Fatalf("refused frames still applied: %d", l.applied())
	}
}

func TestDeviceLogRejectsSeedReplay(t *testing.T) {
	l := newDeviceLog(1)
	if err := l.apply(1, store.ClaimFrame(0xc1)); err != nil {
		t.Fatal(err)
	}
	// A fresh sequence number re-claiming a burned seed is the replay the
	// protocol exists to refuse.
	err := l.apply(2, store.ClaimFrame(0xc1))
	if !errors.Is(err, ErrSeedReplayed) {
		t.Fatalf("seed replay: %v, want ErrSeedReplayed", err)
	}
	if l.applied() != 1 {
		t.Fatalf("replayed frame applied: %d", l.applied())
	}
}

// Frame surgery: every corruption axis DecodeWALFrame guards must be
// refused before the frame touches log state.
func TestDeviceLogRejectsCorruptFrames(t *testing.T) {
	cases := []struct {
		name     string
		mutilate func([]byte) []byte
	}{
		{"truncated", func(f []byte) []byte { return f[:store.WALFrameSize-3] }},
		{"bad magic", func(f []byte) []byte { f[0] ^= 0xff; return f }},
		{"flipped seed bit", func(f []byte) []byte { f[7] ^= 0x01; return f }}, // CRC now stale
		{"corrupt crc", func(f []byte) []byte { f[13] ^= 0x80; return f }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := newDeviceLog(1)
			err := l.apply(1, tc.mutilate(store.ClaimFrame(0xd1)))
			if !errors.Is(err, store.ErrBadWALFrame) {
				t.Fatalf("%s frame: %v, want ErrBadWALFrame", tc.name, err)
			}
			if l.applied() != 0 || len(l.used) != 0 {
				t.Fatalf("%s frame leaked into log state", tc.name)
			}
		})
	}
}

func TestDeviceLogEpochTransition(t *testing.T) {
	l := newDeviceLog(1)
	if err := l.apply(1, store.ClaimFrame(0xe1)); err != nil {
		t.Fatal(err)
	}
	if err := l.apply(2, store.TransitionFrame(1, 2)); err != nil {
		t.Fatal(err)
	}
	if l.epoch != 2 {
		t.Fatalf("epoch = %d after transition, want 2", l.epoch)
	}
	// The old epoch's claim stays burned across the transition.
	if err := l.apply(3, store.ClaimFrame(0xe1)); !errors.Is(err, ErrSeedReplayed) {
		t.Fatalf("pre-transition seed reclaimed: %v", err)
	}
}
