// Package cluster is the distributed verifier tier: it scales the
// attestation stack past one verifier process without weakening the
// protocol's single-use seed guarantee.
//
// Three mechanisms compose (DESIGN.md "Distributed verification"):
//
//   - a consistent-hash ring with virtual nodes routes every device ID to
//     an ordered replica set of verifier shards, deterministically, so any
//     front end computes the same placement with no coordination;
//   - a replicated claim log streams the durable store's 16-byte WAL
//     frames (crp/store) from each device's shard leader to its followers
//     synchronously, before the claimed seed is acknowledged to the
//     session — so every seed a *completed* session consumed is on every
//     acknowledged replica, and leader failure cannot resurrect it;
//   - failover promotion is fail-closed: a replica whose log is behind the
//     acknowledged high-water mark refuses leadership (ErrStaleReplica),
//     because serving from it could hand out a seed some finished session
//     already used — exactly the replay the paper's CRP protocol forbids.
//
// Admission control bounds each shard's in-flight sessions with a reject
// queue (503-style OverloadError, never retried as a transport fault), so
// a fleet-scale arrival burst degrades into measured rejections instead of
// unbounded queueing.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per shard when a Config leaves
// it zero: enough points that ownership imbalance stays in the few-percent
// range for small shard counts.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over named verifier shards.
// Placement is a pure function of (shard names, vnodes): every process
// that builds a ring from the same configuration routes identically.
type Ring struct {
	shards []string
	vnodes int
	points []ringPoint // sorted ascending by hash
}

type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// splitmix64 is the finalising mixer used for every ring hash: cheap,
// stateless, and avalanche-complete, so adjacent device IDs and vnode
// indices land uniformly on the ring.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeviceKey maps a chip ID onto the ring's hash space.
func DeviceKey(id int) uint64 { return splitmix64(uint64(uint(id))) }

// NewRing builds a ring with vnodes virtual nodes per shard (<=0 means
// DefaultVNodes). Shard names must be unique and non-empty.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, errors.New("cluster: empty shard name")
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", s)
		}
		seen[s] = true
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for i, s := range r.shards {
		h := fnv.New64a()
		h.Write([]byte(s)) //nolint:errcheck // fnv never errors
		base := h.Sum64()
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  splitmix64(base + uint64(v)*0x9e3779b97f4a7c15),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break on shard name so placement
		// stays deterministic regardless of configuration order.
		return r.shards[r.points[a].shard] < r.shards[r.points[b].shard]
	})
	return r, nil
}

// Shards returns the ring's shard names in configuration order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// VNodes returns the virtual-node count per shard.
func (r *Ring) VNodes() int { return r.vnodes }

// successor returns the index of the first ring point at or clockwise of
// the key's hash.
func (r *Ring) successor(key uint64) int {
	h := splitmix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0 // wrap past twelve o'clock
	}
	return i
}

// Route returns the shard owning the key — the first virtual node at or
// clockwise of its hash.
func (r *Ring) Route(key uint64) string {
	return r.shards[r.points[r.successor(key)].shard]
}

// RouteN returns the key's ordered replica set: the first n distinct
// shards walking clockwise from the key's hash. The first entry is the
// leader. n is clamped to the shard count.
func (r *Ring) RouteN(key uint64, n int) []string {
	if n > len(r.shards) {
		n = len(r.shards)
	}
	if n < 1 {
		n = 1
	}
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i, start := 0, r.successor(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.shard] {
			continue
		}
		taken[p.shard] = true
		out = append(out, r.shards[p.shard])
	}
	return out
}

// RingSnapshot is the /ring admin view: the placement function made
// inspectable, so an operator can see how the hash space divides before
// and after a topology change.
type RingSnapshot struct {
	VNodes int              `json:"vnodes"`
	Points int              `json:"points"`
	Shards []ShardOwnership `json:"shards"`
}

// ShardOwnership reports one shard's slice of the ring.
type ShardOwnership struct {
	Shard string `json:"shard"`
	// Ownership is the fraction of the 64-bit hash space whose successor
	// point belongs to this shard. The fractions sum to 1.
	Ownership float64 `json:"ownership"`
	// Alive mirrors the cluster's liveness view (always true on a bare
	// ring snapshot; the cluster admin view fills it in).
	Alive bool `json:"alive"`
}

// Snapshot computes the ring's ownership distribution.
func (r *Ring) Snapshot() RingSnapshot {
	snap := RingSnapshot{VNodes: r.vnodes, Points: len(r.points)}
	own := make([]float64, len(r.shards))
	const whole = float64(1<<63) * 2 // 2^64 as float64
	for i, p := range r.points {
		// The arc ending at point i belongs to point i's shard.
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		arc := p.hash - prev // wraps correctly in uint64 arithmetic
		own[p.shard] += float64(arc) / whole
	}
	for i, s := range r.shards {
		snap.Shards = append(snap.Shards, ShardOwnership{Shard: s, Ownership: own[i], Alive: true})
	}
	return snap
}
