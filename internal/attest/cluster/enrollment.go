package cluster

import (
	"fmt"

	"pufatt/internal/core"
	"pufatt/internal/obfuscate"
)

// Enrollment is one device's measured CRP material: the seed order and the
// eight reference raw responses per seed, captured in the trusted facility
// before deployment (exactly what crp.Enroll measures). It is immutable
// after construction, which is what makes replication cheap: every replica
// of a device shares one Enrollment by pointer, and only the claim log —
// the mutable "which seeds are burned" half — streams between shards.
type Enrollment struct {
	device int
	bits   int
	epoch  uint32
	order  []uint64
	refs   map[uint64][][]uint8
}

// NewEnrollment measures the device's noiseless reference responses for
// every seed.
func NewEnrollment(dev *core.Device, seeds []uint64) (*Enrollment, error) {
	e := &Enrollment{
		device: dev.ChipID(),
		bits:   dev.Design().ResponseBits(),
		epoch:  dev.Epoch(),
		refs:   make(map[uint64][][]uint8, len(seeds)),
	}
	for _, seed := range seeds {
		if _, dup := e.refs[seed]; dup {
			return nil, fmt.Errorf("cluster: duplicate enrollment seed %#x", seed)
		}
		refs := make([][]uint8, obfuscate.ResponsesPerOutput)
		for j := range refs {
			ch := dev.Design().ExpandChallenge(seed, j)
			refs[j] = append([]uint8(nil), dev.NoiselessResponse(ch)...)
		}
		e.refs[seed] = refs
		e.order = append(e.order, seed)
	}
	return e, nil
}

// Device returns the chip ID the enrollment was measured for.
func (e *Enrollment) Device() int { return e.device }

// Epoch returns the device reconfiguration epoch the references belong to.
func (e *Enrollment) Epoch() uint32 { return e.epoch }

// Seeds returns the number of enrolled single-use seeds.
func (e *Enrollment) Seeds() int { return len(e.order) }
