package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"pufatt/internal/attest"
)

// AdminMux extends the attestation admin surface (attest.AdminMux: metrics,
// history, alerts, traces, journal, health, pprof) with the cluster's
// routes:
//
//	/ring     the consistent-hash placement: per-shard ownership fractions,
//	          vnode counts, and liveness
//	/cluster  enrolled devices with their replica sets, current leaders,
//	          applied log sequences, and acknowledged high-water marks
//	/probes   per-shard synthetic canary statuses (empty array until a
//	          Prober is attached); ?shard= filters to one shard
//
// A nil Telemetry serves the package default (where the cluster metrics
// live).
func AdminMux(c *Cluster, t *attest.Telemetry) *http.ServeMux {
	mux := attest.AdminMux(t)
	mux.HandleFunc("/ring", adminGet(func(w http.ResponseWriter, _ *http.Request) {
		snap := c.ring.Snapshot()
		for i := range snap.Shards {
			snap.Shards[i].Alive = c.shardAlive(snap.Shards[i].Shard)
		}
		writeJSON(w, snap)
	}))
	mux.HandleFunc("/cluster", adminGet(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.Snapshot())
	}))
	mux.HandleFunc("/probes", adminGet(func(w http.ResponseWriter, r *http.Request) {
		var statuses []ProbeStatus
		if p := c.Prober(); p != nil {
			statuses = p.Status()
		}
		if shard := r.URL.Query().Get("shard"); shard != "" {
			if c.Shard(shard) == nil {
				http.Error(w, fmt.Sprintf("cluster: unknown shard %q", shard), http.StatusBadRequest)
				return
			}
			filtered := statuses[:0]
			for _, st := range statuses {
				if st.Shard == shard {
					filtered = append(filtered, st)
				}
			}
			statuses = filtered
		}
		if statuses == nil {
			// An empty array, not null: federation and dashboards treat the
			// body as a list unconditionally.
			statuses = []ProbeStatus{}
		}
		writeJSON(w, statuses)
	}))
	return mux
}

// adminGet mirrors the attest admin surface's read-only discipline: GET
// and HEAD pass, everything else is 405 with an Allow header.
func adminGet(fn func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fn(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// GroupStatus is one device's row in the /cluster view.
type GroupStatus struct {
	Device        int               `json:"device"`
	Leader        string            `json:"leader"`
	HighWaterMark uint64            `json:"high_water_mark"`
	Remaining     int               `json:"remaining_seeds"`
	Epoch         uint32            `json:"epoch"`
	Applied       map[string]uint64 `json:"applied"`
}

// ClusterSnapshot is the /cluster view.
type ClusterSnapshot struct {
	Shards  []ShardOwnership `json:"shards"`
	Devices []GroupStatus    `json:"devices"`
}

// Snapshot captures the cluster's control-plane state for the admin view.
func (c *Cluster) Snapshot() ClusterSnapshot {
	snap := ClusterSnapshot{}
	ringSnap := c.ring.Snapshot()
	for i := range ringSnap.Shards {
		ringSnap.Shards[i].Alive = c.shardAlive(ringSnap.Shards[i].Shard)
	}
	snap.Shards = ringSnap.Shards
	for _, id := range c.Devices() {
		g := c.Group(id)
		if g == nil {
			continue
		}
		g.mu.Lock()
		st := GroupStatus{
			Device:        g.device,
			Leader:        g.replicas[g.leader],
			HighWaterMark: g.hwm,
			Epoch:         g.logs[g.replicas[g.leader]].epoch,
			Applied:       make(map[string]uint64, len(g.replicas)),
		}
		for _, sid := range g.replicas {
			st.Applied[sid] = g.logs[sid].applied()
		}
		lead := g.logs[g.replicas[g.leader]]
		for _, s := range g.enr.order {
			if !lead.used[s] {
				st.Remaining++
			}
		}
		g.mu.Unlock()
		snap.Devices = append(snap.Devices, st)
	}
	return snap
}
