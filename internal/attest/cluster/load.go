package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/mcu"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

// The fleet-scale load engine: build a cluster over simulated devices and
// drive it with tens of thousands of concurrent prover clients, measuring
// the SLO surface — throughput, latency quantiles including admission
// queueing, and the reject_overload curve. cmd/pufatt-load is the CLI
// face; BenchmarkClusterLoadSLO snapshots the curves into BENCH_PR9.json.
//
// Provers outnumber devices: each client goroutine attests its assigned
// device, and clients sharing a device serialise on its session endpoint
// (verifier session state is single-writer), so offered load beyond the
// admission bound shows up exactly where a real deployment would see it —
// queue depth, then rejections.

// LoadConfig sizes one load run.
type LoadConfig struct {
	// Topology.
	Shards      int // verifier shards (default 3)
	VNodes      int // virtual nodes per shard (default 64)
	Replicas    int // replication factor (default 3)
	MaxInFlight int // admitted sessions per shard (default 4×GOMAXPROCS)
	MaxQueue    int // admission queue per shard (default 32×MaxInFlight)

	// Fleet.
	Devices           int // simulated devices (default 256)
	Provers           int // concurrent prover clients (default 1024)
	SessionsPerProver int // sessions each client runs (default 1)

	// Channel.
	Plan      attest.FaultPlan // injected last-hop faults (zero = clean)
	FaultSeed uint64           // fault schedule seed (default 1)

	// Protocol.
	MaxAttempts int    // retry budget per session (default 3)
	Seed        uint64 // master seed for devices/nonces (default 1)

	// Setup parallelism (default GOMAXPROCS).
	SetupWorkers int
}

func (lc LoadConfig) withDefaults() LoadConfig {
	if lc.Shards <= 0 {
		lc.Shards = 3
	}
	if lc.VNodes <= 0 {
		lc.VNodes = 64
	}
	if lc.Replicas <= 0 {
		lc.Replicas = 3
	}
	if lc.MaxInFlight <= 0 {
		lc.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if lc.MaxQueue <= 0 {
		lc.MaxQueue = 32 * lc.MaxInFlight
	}
	if lc.Devices <= 0 {
		lc.Devices = 256
	}
	if lc.Provers <= 0 {
		lc.Provers = 1024
	}
	if lc.SessionsPerProver <= 0 {
		lc.SessionsPerProver = 1
	}
	if lc.FaultSeed == 0 {
		lc.FaultSeed = 1
	}
	if lc.MaxAttempts <= 0 {
		lc.MaxAttempts = 3
	}
	if lc.Seed == 0 {
		lc.Seed = 1
	}
	if lc.SetupWorkers <= 0 {
		lc.SetupWorkers = runtime.GOMAXPROCS(0)
	}
	return lc
}

// seedsPerDevice sizes each device's enrollment so the worst case — every
// client of the device burning its full retry budget — cannot exhaust it.
func (lc LoadConfig) seedsPerDevice() int {
	clients := (lc.Provers + lc.Devices - 1) / lc.Devices
	return clients*lc.SessionsPerProver*lc.MaxAttempts + 4
}

// LoadReport is one load run's SLO measurement. Latency quantiles are
// over served sessions (admitted past the gate, verdict or transport
// failure) and include admission queueing; overload rejections are the
// separate reject curve.
type LoadReport struct {
	Provers  int `json:"provers"`
	Devices  int `json:"devices"`
	Sessions int `json:"sessions"` // sessions attempted (served + rejected)

	Accepted   int `json:"accepted"`
	Rejected   int `json:"rejected"` // protocol rejections (verdict)
	Overloaded int `json:"reject_overload"`
	Exhausted  int `json:"exhausted"`
	Transport  int `json:"transport_failed"`
	Errors     int `json:"other_errors"`

	WallSeconds float64 `json:"wall_seconds"`
	SetupSecs   float64 `json:"setup_seconds"`
	Throughput  float64 `json:"sessions_per_second"` // served sessions / wall

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`

	AuditClean  bool `json:"audit_clean"`
	AuditFrames int  `json:"audit_frames"`
}

// String renders the report as one log-friendly line.
func (r LoadReport) String() string {
	return fmt.Sprintf("provers=%d devices=%d sessions=%d accepted=%d rejected=%d overload=%d transport=%d p50=%.2fms p95=%.2fms p99=%.2fms %.0f sess/s audit_clean=%v",
		r.Provers, r.Devices, r.Sessions, r.Accepted, r.Rejected, r.Overloaded, r.Transport,
		r.P50Ms, r.P95Ms, r.P99Ms, r.Throughput, r.AuditClean)
}

// loadParams is the deliberately small SWATT geometry the load engine
// runs: big enough to exercise the full protocol (checksum, helper
// recovery, timing bound), small enough that one session costs well under
// a millisecond and a 10k-prover run finishes in seconds.
func loadParams() swatt.Params {
	return swatt.Params{MemWords: 512, Chunks: 2, BlocksPerChunk: 2, PRG: swatt.PRGMix32}
}

// RunLoad executes one load level: builds the cluster and fleet, launches
// cfg.Provers client goroutines, and reports the SLO surface plus the
// merged claim-log audit.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	setupStart := time.Now()

	shardNames := make([]string, cfg.Shards)
	for i := range shardNames {
		shardNames[i] = fmt.Sprintf("shard-%d", i)
	}
	c, err := New(Config{
		Shards:       shardNames,
		VNodes:       cfg.VNodes,
		Replicas:     cfg.Replicas,
		MaxInFlight:  cfg.MaxInFlight,
		MaxQueue:     cfg.MaxQueue,
		AutoFailover: true,
	})
	if err != nil {
		return nil, err
	}

	design := core.MustNewDesign(core.DefaultConfig())
	params := loadParams()
	image, err := swatt.BuildImage(params, make([]uint32, 64))
	if err != nil {
		return nil, err
	}
	link := attest.DefaultLink()
	perDevice := cfg.seedsPerDevice()

	// Fleet setup fans out: device simulation, enrollment measurement, and
	// verifier construction are all independent per device.
	setupErrs := make([]error, cfg.Devices)
	var wg sync.WaitGroup
	work := make(chan int)
	injector := attest.NewFaultInjector(cfg.Plan, cfg.FaultSeed)
	for w := 0; w < cfg.SetupWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range work {
				setupErrs[id] = func() error {
					dev, err := core.NewDevice(design, rng.New(cfg.Seed+uint64(id)), id)
					if err != nil {
						return err
					}
					seeds := make([]uint64, perDevice)
					for k := range seeds {
						seeds[k] = uint64(id)<<20 | uint64(k+1)
					}
					enr, err := NewEnrollment(dev, seeds)
					if err != nil {
						return err
					}
					g, err := c.Enroll(enr)
					if err != nil {
						return err
					}
					port, err := mcu.NewDevicePort(dev)
					if err != nil {
						return err
					}
					prover := attest.NewProver(image.Clone(), port, 1)
					prover.TuneClock(0.98)
					// The emulator is the session reference source (the
					// checksum draws its own PUF seeds); the Group is the
					// replicated claim budget binding x0.
					v, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
					if err != nil {
						return err
					}
					v.WithSeedBudget(g)
					v.PUFEpoch = enr.Epoch()
					v.Nonces = rng.New(cfg.Seed + uint64(id)*7 + 3).Uint32
					v.AllowNetwork(link)
					var agent attest.ProverAgent = prover
					if cfg.Plan != (attest.FaultPlan{}) {
						agent = injector.WrapAgent(prover)
					}
					return c.Bind(id, v, agent, link)
				}()
			}
		}()
	}
	// Cluster.Enroll and Bind serialise internally; feed ids in order.
	for id := 0; id < cfg.Devices; id++ {
		work <- id
	}
	close(work)
	wg.Wait()
	for id, err := range setupErrs {
		if err != nil {
			return nil, fmt.Errorf("cluster: load setup device %d: %w", id, err)
		}
	}
	setupSecs := time.Since(setupStart).Seconds()

	policy := attest.RetryPolicy{MaxAttempts: cfg.MaxAttempts, JitterSeed: cfg.Seed}
	report := &LoadReport{Provers: cfg.Provers, Devices: cfg.Devices, SetupSecs: setupSecs}
	type proverStats struct {
		latencies                                                    []float64 // milliseconds, served sessions only
		accepted, rejected, overloaded, exhausted, transport, errors int
	}
	stats := make([]proverStats, cfg.Provers)

	ctx := context.Background()
	runStart := time.Now()
	var clients sync.WaitGroup
	for p := 0; p < cfg.Provers; p++ {
		clients.Add(1)
		go func(p int) {
			defer clients.Done()
			st := &stats[p]
			device := p % cfg.Devices
			for s := 0; s < cfg.SessionsPerProver; s++ {
				t0 := time.Now()
				res, _, err := c.Attest(ctx, device, policy)
				elapsed := time.Since(t0)
				switch {
				case err == nil && res.Accepted:
					st.accepted++
					st.latencies = append(st.latencies, elapsed.Seconds()*1e3)
				case err == nil:
					st.rejected++
					st.latencies = append(st.latencies, elapsed.Seconds()*1e3)
				case IsOverload(err):
					st.overloaded++
				case attest.IsExhausted(err):
					st.exhausted++
				case attest.IsTransport(err):
					st.transport++
					st.latencies = append(st.latencies, elapsed.Seconds()*1e3)
				default:
					st.errors++
				}
			}
		}(p)
	}
	clients.Wait()
	report.WallSeconds = time.Since(runStart).Seconds()

	var lat []float64
	for i := range stats {
		st := &stats[i]
		report.Accepted += st.accepted
		report.Rejected += st.rejected
		report.Overloaded += st.overloaded
		report.Exhausted += st.exhausted
		report.Transport += st.transport
		report.Errors += st.errors
		lat = append(lat, st.latencies...)
	}
	report.Sessions = report.Accepted + report.Rejected + report.Overloaded +
		report.Exhausted + report.Transport + report.Errors
	served := len(lat)
	if report.WallSeconds > 0 {
		report.Throughput = float64(served) / report.WallSeconds
	}
	sort.Float64s(lat)
	report.P50Ms = quantile(lat, 0.50)
	report.P95Ms = quantile(lat, 0.95)
	report.P99Ms = quantile(lat, 0.99)

	audit := c.AuditClaims()
	report.AuditClean = audit.Clean()
	report.AuditFrames = audit.Frames
	return report, nil
}

// quantile reads the q-quantile from an ascending sample (0 when empty).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
