package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"pufatt/internal/attest"
	"pufatt/internal/crp/store"
)

// ErrShardDown reports an operation against a shard the cluster has
// marked dead.
var ErrShardDown = errors.New("cluster: shard down")

// Config sizes a verifier cluster.
type Config struct {
	// Shards names the verifier shards (unique, non-empty).
	Shards []string
	// VNodes is the virtual-node count per shard (<=0 = DefaultVNodes).
	VNodes int
	// Replicas is each device's replication factor, clamped to the shard
	// count (<=0 = 3). The ring's first Replicas distinct successors form
	// the device's replica set; the first is its initial leader.
	Replicas int
	// MaxInFlight bounds concurrently admitted sessions per shard
	// (<=0 = 32).
	MaxInFlight int
	// MaxQueue bounds sessions waiting behind a full shard (<=0 = no
	// queue: reject immediately).
	MaxQueue int
	// AutoFailover lets the serving path promote over a dead leader
	// (still gated fail-closed on the high-water mark). Without it, a
	// dead leader is an operator problem (explicit Promote).
	AutoFailover bool
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Replicas > len(c.Shards) {
		c.Replicas = len(c.Shards)
	}
	return c
}

// Shard is one verifier shard: a name, a liveness bit, and an admission
// gate. (Shards here are logical — the replication and routing layers —
// not separate processes; the transport below each session is whatever
// agent the device was bound with.)
type Shard struct {
	ID    string
	alive atomic.Bool
	adm   *Admission
}

// Alive reports the shard's liveness.
func (s *Shard) Alive() bool { return s.alive.Load() }

// Admission returns the shard's admission gate.
func (s *Shard) Admission() *Admission { return s.adm }

// binding is a device's session endpoint: verifier + prover agent + link.
// Verifier session state is not concurrency-safe, so a mutex serialises
// sessions per device.
type binding struct {
	mu       sync.Mutex
	verifier *attest.Verifier
	agent    attest.ProverAgent
	link     attest.Link
}

// Cluster is the distributed verifier tier over a fixed shard topology.
type Cluster struct {
	cfg    Config
	ring   *Ring
	shards map[string]*Shard
	order  []string

	// met and tel are the observability bindings: the metric set and the
	// attestation telemetry bundle (tracer, history, alerts) the cluster
	// records into. Defaults are the process-wide instruments; tests and
	// multi-cluster processes rebind with SetTelemetry.
	met *Metrics
	tel *attest.Telemetry

	// prober is the synthetic canary attached with NewProber, so the admin
	// surface can serve /probes without threading the prober around.
	prober atomic.Pointer[Prober]

	mu       sync.Mutex
	groups   map[int]*Group
	bindings map[int]*binding
}

// New builds a cluster from the configuration. Every shard starts alive.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		ring:     ring,
		shards:   make(map[string]*Shard, len(cfg.Shards)),
		order:    ring.Shards(),
		met:      defaultMetrics,
		tel:      attest.Metrics(),
		groups:   make(map[int]*Group),
		bindings: make(map[int]*binding),
	}
	for _, id := range c.order {
		sh := &Shard{ID: id, adm: NewAdmission(id, cfg.MaxInFlight, cfg.MaxQueue)}
		sh.alive.Store(true)
		c.shards[id] = sh
	}
	return c, nil
}

// SetTelemetry rebinds the cluster — and every shard's admission gate — to
// an explicit attestation telemetry bundle: sessions, spans, and cluster
// metrics all record against t's tracer and registry. Call before serving
// traffic; tests use it to observe the cluster with exact counters and an
// injected clock.
func (c *Cluster) SetTelemetry(t *attest.Telemetry) {
	c.met = NewMetrics(t.Registry)
	c.tel = t
	for _, sh := range c.shards {
		sh.adm.met = c.met
	}
}

// Telemetry returns the attestation telemetry bundle the cluster records
// into.
func (c *Cluster) Telemetry() *attest.Telemetry { return c.tel }

// Metrics returns the cluster's metric set.
func (c *Cluster) Metrics() *Metrics { return c.met }

// Ring returns the cluster's placement ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Shard returns the named shard (nil if unknown).
func (c *Cluster) Shard(id string) *Shard { return c.shards[id] }

func (c *Cluster) shardAlive(id string) bool {
	sh := c.shards[id]
	return sh != nil && sh.alive.Load()
}

// Kill marks a shard dead: its admission gate refuses nothing (requests
// are re-routed before admission), its follower logs stop receiving
// frames, and any group it led fails over per Config.AutoFailover. The
// shard's logs are retained — a revived shard rejoins exactly as stale as
// its downtime left it, which is what the promotion gate is for.
func (c *Cluster) Kill(id string) error {
	sh := c.shards[id]
	if sh == nil {
		return fmt.Errorf("cluster: unknown shard %q", id)
	}
	sh.alive.Store(false)
	return nil
}

// Revive marks a dead shard live again. Its claim logs are whatever they
// were at kill time: promotion of a revived-but-stale replica fails closed
// (ErrStaleReplica) until the next claim cycle, when the leader streams it
// the frames it missed and it becomes promotable again.
func (c *Cluster) Revive(id string) error {
	sh := c.shards[id]
	if sh == nil {
		return fmt.Errorf("cluster: unknown shard %q", id)
	}
	sh.alive.Store(true)
	return nil
}

// Enroll installs a device's measured enrollment, placing its replica set
// on the ring and creating one claim log per replica. The returned Group
// is the device's seed budget and reference source.
func (c *Cluster) Enroll(enr *Enrollment) (*Group, error) {
	id := enr.Device()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.groups[id]; dup {
		return nil, fmt.Errorf("cluster: device %d already enrolled", id)
	}
	replicas := c.ring.RouteN(DeviceKey(id), c.cfg.Replicas)
	g := &Group{
		c:        c,
		device:   id,
		enr:      enr,
		replicas: replicas,
		logs:     make(map[string]*deviceLog, len(replicas)),
		acked:    make(map[string]uint64, len(replicas)),
	}
	for _, sid := range replicas {
		g.logs[sid] = newDeviceLog(enr.Epoch())
	}
	c.groups[id] = g
	return g, nil
}

// Group returns an enrolled device's replication group (nil if unknown).
func (c *Cluster) Group(id int) *Group {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups[id]
}

// Bind attaches a device's session endpoint: the verifier (whose Seeds
// must be the device's Group for claims to replicate — Bind wires it if
// unset) and the prover agent, typically wrapped in a FaultyLink.
func (c *Cluster) Bind(id int, v *attest.Verifier, agent attest.ProverAgent, link attest.Link) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[id]
	if g == nil {
		return fmt.Errorf("cluster: device %d not enrolled", id)
	}
	if v.Seeds == nil {
		v.Seeds = g
	}
	if v.Device == "" {
		v.Device = fmt.Sprintf("device-%d", id)
	}
	c.bindings[id] = &binding{verifier: v, agent: agent, link: link}
	return nil
}

// Devices returns the enrolled chip IDs, ascending.
func (c *Cluster) Devices() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.groups))
	for id := range c.groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Attest runs one attestation session for the device through the cluster
// accept path: ring routing, liveness failover, admission control, then
// the standard retry loop over the device's bound agent. Overload and
// leadership refusals return before any seed is claimed.
//
// The whole path runs under one "cluster.attest" root span with children
// for each distributed phase — route, queue.wait, the session itself
// (which adopts this trace via WithTraceParent), and the replication
// acknowledge cycle recorded by the group — so /debug/traces attributes
// end-to-end latency across every layer that can inflate it.
func (c *Cluster) Attest(ctx context.Context, id int, policy attest.RetryPolicy) (attest.Result, int, error) {
	c.mu.Lock()
	g := c.groups[id]
	b := c.bindings[id]
	c.mu.Unlock()
	if g == nil || b == nil {
		return attest.Result{}, 0, fmt.Errorf("cluster: device %d not enrolled and bound", id)
	}
	tracer := c.tel.Tracer
	sp := tracer.StartSpan("cluster.attest")
	defer sp.Finish()
	sp.SetAttr("device", strconv.Itoa(id))

	spRoute := sp.Child("route")
	shardID := c.ring.Route(DeviceKey(id))
	c.met.RouteTotal.With(shardID).Inc()
	if !c.shardAlive(shardID) {
		// The ring owner is down: serve from the group's current leader
		// (promoting, fail-closed, when the config allows).
		lead, err := g.Leader()
		if err != nil {
			spRoute.SetAttr("error", err.Error())
			spRoute.Finish()
			return attest.Result{}, 0, err
		}
		shardID = lead
		spRoute.SetAttr("failover", "true")
		c.met.FailoverRoutes.Inc()
	}
	spRoute.SetAttr("shard", shardID)
	spRoute.Finish()

	spWait := sp.Child("queue.wait")
	spWait.SetAttr("shard", shardID)
	waitStart := tracer.Now()
	release, queued, err := c.shards[shardID].adm.acquire(ctx)
	if queued {
		// Only sessions that actually queued are observed: the uncontended
		// fast path would bury the p99 in zeros. The root trace ID rides as
		// the bucket exemplar, linking the history point to this trace.
		c.met.QueueWait.ObserveExemplar(tracer.Now().Sub(waitStart).Seconds(), uint64(sp.TraceID()))
		spWait.SetAttr("queued", "true")
	}
	if err != nil {
		spWait.SetAttr("error", err.Error())
		spWait.Finish()
		return attest.Result{}, 0, err
	}
	spWait.Finish()
	defer release()
	b.mu.Lock()
	defer b.mu.Unlock()
	// The group's claim path (seed replication) runs inside the session;
	// publishing the root span lets replicateLocked hang its repl.ack span
	// under this trace. The binding mutex serialises sessions per device,
	// so one active span per group suffices.
	g.active.Store(sp)
	defer g.active.Store(nil)
	return c.tel.RunSessionRetry(attest.WithTraceParent(ctx, sp.Context()), b.verifier, b.agent, b.link, policy)
}

// SweepOutcome is one device's result from a cluster sweep.
type SweepOutcome struct {
	Result   attest.Result
	Attempts int
	Err      error
}

// Sweep attests every enrolled-and-bound device once, fanning out over
// workers goroutines (<=0 = 8). Per-device outcomes are returned keyed by
// chip ID; the sweep itself never fails — a shard dying mid-sweep shows
// up as per-device errors or, with AutoFailover, not at all.
func (c *Cluster) Sweep(ctx context.Context, policy attest.RetryPolicy, workers int) map[int]SweepOutcome {
	if workers <= 0 {
		workers = 8
	}
	ids := c.Devices()
	out := make(map[int]SweepOutcome, len(ids))
	var outMu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range work {
				res, attempts, err := c.Attest(ctx, id, policy)
				outMu.Lock()
				out[id] = SweepOutcome{Result: res, Attempts: attempts, Err: err}
				outMu.Unlock()
			}
		}()
	}
	for _, id := range ids {
		work <- id
	}
	close(work)
	wg.Wait()
	return out
}

// Audit is the merged claim-log audit: every device's replica logs
// cross-checked for the two properties that make failover safe — replica
// logs are prefixes of one longest log (histories never diverge), and no
// seed is claimed twice anywhere in that history.
type Audit struct {
	Devices    int      `json:"devices"`
	Frames     int      `json:"frames"` // longest live log per device, summed
	DeadShards []string `json:"dead_shards,omitempty"`
	Violations []string `json:"violations,omitempty"`
}

// Clean reports whether the audit found no violations.
func (a Audit) Clean() bool { return len(a.Violations) == 0 }

// AuditClaims merges every device's live replica logs and re-derives the
// no-duplicate-claim property from the raw frames (independently of the
// used-sets the claim path maintains). Dead shards are excluded — their
// logs are unreachable state, exactly as in a real deployment — and
// listed.
func (c *Cluster) AuditClaims() Audit {
	var audit Audit
	for _, sid := range c.order {
		if !c.shardAlive(sid) {
			audit.DeadShards = append(audit.DeadShards, sid)
		}
	}
	c.mu.Lock()
	ids := make([]int, 0, len(c.groups))
	for id := range c.groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	groups := make([]*Group, 0, len(ids))
	for _, id := range ids {
		groups = append(groups, c.groups[id])
	}
	c.mu.Unlock()

	for _, g := range groups {
		audit.Devices++
		g.mu.Lock()
		logs := make(map[string][][]byte, len(g.replicas))
		for _, sid := range g.replicas {
			if c.shardAlive(sid) {
				logs[sid] = g.logs[sid].snapshotFrames()
			}
		}
		device := g.device
		g.mu.Unlock()

		var longest [][]byte
		for _, frames := range logs {
			if len(frames) > len(longest) {
				longest = frames
			}
		}
		audit.Frames += len(longest)
		for sid, frames := range logs {
			for i, f := range frames {
				if !bytesEqual(f, longest[i]) {
					audit.Violations = append(audit.Violations,
						fmt.Sprintf("device %d: shard %s diverges from longest log at seq %d", device, sid, i+1))
					break
				}
			}
		}
		seen := make(map[uint64]int, len(longest))
		for i, f := range longest {
			rec, err := store.DecodeWALFrame(f)
			if err != nil {
				audit.Violations = append(audit.Violations,
					fmt.Sprintf("device %d: invalid frame at seq %d: %v", device, i+1, err))
				continue
			}
			if rec.Transition {
				continue
			}
			if prev, dup := seen[rec.Seed]; dup {
				audit.Violations = append(audit.Violations,
					fmt.Sprintf("device %d: seed %#x claimed at seq %d and again at seq %d", device, rec.Seed, prev, i+1))
			}
			seen[rec.Seed] = i + 1
		}
	}
	if audit.Clean() {
		c.met.Audits.With("clean").Inc()
	} else {
		c.met.Audits.With("violations").Inc()
	}
	return audit
}

func bytesEqual(a, b []byte) bool { return bytes.Equal(a, b) }
