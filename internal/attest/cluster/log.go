package cluster

import (
	"bytes"
	"errors"
	"fmt"

	"pufatt/internal/crp/store"
)

// The replicated claim log. Each (shard, device) pair holds one deviceLog:
// an append-only sequence of the durable store's 16-byte WAL frames
// (store.ClaimFrame / store.TransitionFrame), applied strictly in
// sequence-number order. The leader appends locally first — log before
// acknowledge, the same discipline the store's WAL enforces on disk — then
// streams the frame to each live follower and records the acknowledged
// high-water mark before the claim is released to the session.
//
// apply is deliberately paranoid about its three failure axes, because the
// frames are wire input during replication:
//
//   - frame integrity: anything store.DecodeWALFrame rejects (short, bad
//     magic, CRC mismatch) is refused with its ErrBadWALFrame cause;
//   - ordering: a sequence number past applied+1 is a gap (ErrLogGap —
//     the follower must catch up, not guess); a sequence number at or
//     below the applied mark must match the recorded frame byte-for-byte
//     (idempotent re-delivery) or be refused (ErrFrameMismatch);
//   - replay: a claim frame for a seed the log already burned is refused
//     (ErrSeedReplayed) — a follower never lets replication itself
//     double-spend a seed.

// Typed claim-log errors. All are terminal for the frame that caused
// them; none is a transport fault.
var (
	// ErrLogGap reports a frame whose sequence number skips past the
	// follower's applied mark.
	ErrLogGap = errors.New("cluster: claim-log sequence gap")
	// ErrFrameMismatch reports a re-delivered sequence number carrying
	// different bytes than the recorded frame — divergent histories, not
	// idempotent retransmission.
	ErrFrameMismatch = errors.New("cluster: claim-log frame mismatch")
	// ErrSeedReplayed reports a claim frame for a seed this log has
	// already burned.
	ErrSeedReplayed = errors.New("cluster: seed already claimed in log (replay rejected)")
)

// deviceLog is one replica's claim history for one device. All access is
// serialised by the owning Group's mutex.
type deviceLog struct {
	frames [][]byte // frames[i] carries sequence number i+1
	used   map[uint64]bool
	epoch  uint32
	// cursor is the leader-side scan position over the enrollment order;
	// it only ever advances and is rebuilt implicitly on promotion (a
	// fresh leader's cursor lags, and the used map skips burned seeds).
	cursor int
}

func newDeviceLog(epoch uint32) *deviceLog {
	return &deviceLog{used: make(map[uint64]bool), epoch: epoch}
}

// applied returns the highest sequence number applied to this log.
func (l *deviceLog) applied() uint64 { return uint64(len(l.frames)) }

// apply validates and applies one frame at the given sequence number.
func (l *deviceLog) apply(seq uint64, frame []byte) error {
	rec, err := store.DecodeWALFrame(frame)
	if err != nil {
		return err
	}
	switch {
	case seq == 0:
		return fmt.Errorf("%w: sequence numbers start at 1", ErrLogGap)
	case seq <= l.applied():
		if !bytes.Equal(l.frames[seq-1], frame) {
			return fmt.Errorf("%w: sequence %d", ErrFrameMismatch, seq)
		}
		return nil // idempotent re-delivery
	case seq > l.applied()+1:
		return fmt.Errorf("%w: got sequence %d with %d applied", ErrLogGap, seq, l.applied())
	}
	if rec.Transition {
		l.epoch = rec.To
	} else {
		if l.used[rec.Seed] {
			return fmt.Errorf("%w: seed %#x at sequence %d", ErrSeedReplayed, rec.Seed, seq)
		}
		l.used[rec.Seed] = true
	}
	l.frames = append(l.frames, append([]byte(nil), frame...))
	return nil
}

// snapshotFrames returns a copy of the applied frames, for audits.
func (l *deviceLog) snapshotFrames() [][]byte {
	out := make([][]byte, len(l.frames))
	for i, f := range l.frames {
		out[i] = append([]byte(nil), f...)
	}
	return out
}
