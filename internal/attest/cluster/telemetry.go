package cluster

import (
	"time"

	"pufatt/internal/telemetry"
)

// Cluster instruments, registered on the process-wide default registry so
// the PR7 observability layer — /metrics, windowed history, burn-rate
// alerts, federation — picks the distributed tier up with no extra
// wiring. Label cardinality is bounded by the shard count (operator
// configuration, not data).
var (
	routeTotal = telemetry.Default().CounterVec("cluster_route_total",
		"Attestation requests routed by the consistent-hash ring, by shard.", "shard")
	failoverRoutes = telemetry.Default().Counter("cluster_failover_routes_total",
		"Requests whose ring-owner shard was down and were served by a promoted replica.")
	promotions = telemetry.Default().CounterVec("cluster_promotions_total",
		"Leader promotion attempts, by result (promoted, stale_refused, down, not_replica).", "result")
	replClaims = telemetry.Default().Counter("cluster_repl_claims_total",
		"Seed claims acknowledged through the replicated claim log.")
	replFrames = telemetry.Default().Counter("cluster_repl_frames_total",
		"Claim-log frames streamed leader-to-follower.")
	replLag = telemetry.Default().Gauge("cluster_repl_lag_frames",
		"Worst live-follower lag behind the acknowledged high-water mark, in frames (last observed group).")
	inFlight = telemetry.Default().GaugeVec("cluster_inflight_sessions",
		"Sessions currently admitted past a shard's admission gate.", "shard")
	queueDepth = telemetry.Default().GaugeVec("cluster_queue_depth",
		"Sessions currently waiting in a shard's admission queue.", "shard")
	rejectOverload = telemetry.Default().CounterVec("cluster_reject_overload_total",
		"Sessions rejected by admission control (503-style; never retried as transport).", "shard")
	audits = telemetry.Default().CounterVec("cluster_claim_audits_total",
		"Merged claim-log audits, by outcome (clean, violations).", "outcome")
)

// DefaultClusterAlertRules derives the distributed tier's burn-rate alert
// set, sized by the same fast/slow windows the attestation rules use:
//
//   - overload-burn: the fraction of routed requests rejected by
//     admission control exceeds budget (capacity, not correctness);
//   - replication-lag: any live follower is behind the acknowledged
//     high-water mark — with synchronous replication, a nonzero lag means
//     a follower is down or a claim cycle failed mid-flight, which is
//     exactly the state where the next failover trips ErrStaleReplica.
//
// Feed them to an AlertManager alongside attest.DefaultAlertRules (rule
// names are disjoint).
func DefaultClusterAlertRules(overloadBudget float64) []telemetry.Rule {
	if overloadBudget <= 0 {
		overloadBudget = 0.05
	}
	const (
		fastWindow = time.Minute
		slowWindow = 5 * time.Minute
	)
	return []telemetry.Rule{
		{
			Name: "cluster-overload-burn", Kind: telemetry.RuleRatio,
			Metric:      "cluster_reject_overload_total",
			TotalMetric: "cluster_route_total",
			Budget:      overloadBudget,
			FastWindow:  fastWindow, SlowWindow: slowWindow,
		},
		{
			Name: "cluster-replication-lag", Kind: telemetry.RuleGaugeAbove,
			Metric: "cluster_repl_lag_frames", Threshold: 0,
			FastWindow: fastWindow, SlowWindow: slowWindow,
		},
	}
}
