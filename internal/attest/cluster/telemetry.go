package cluster

import (
	"sort"
	"sync"
	"time"

	"pufatt/internal/telemetry"
)

// Cluster instruments, gathered in a Metrics struct so a test (or an
// embedding process with several clusters) can record into its own
// registry; the package default registers on the process-wide registry so
// the PR7 observability layer — /metrics, windowed history, burn-rate
// alerts, federation — picks the distributed tier up with no extra
// wiring. Label cardinality is bounded by the shard count (operator
// configuration, not data).

// queueWaitBuckets resolve admission queue waits: from the microsecond
// blips of a contended-but-healthy gate up through the multi-second waits
// that push an honest session past the protocol time bound.
var queueWaitBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 30,
}

// Metrics is the cluster tier's instrument set over one registry.
type Metrics struct {
	RouteTotal     *telemetry.CounterVec // cluster_route_total{shard}
	FailoverRoutes *telemetry.Counter    // cluster_failover_routes_total
	Promotions     *telemetry.CounterVec // cluster_promotions_total{result}
	ReplClaims     *telemetry.Counter    // cluster_repl_claims_total
	ReplFrames     *telemetry.Counter    // cluster_repl_frames_total
	ReplLag        *telemetry.Gauge      // cluster_repl_lag_frames
	InFlight       *telemetry.GaugeVec   // cluster_inflight_sessions{shard}
	QueueDepth     *telemetry.GaugeVec   // cluster_queue_depth{shard}
	RejectOverload *telemetry.CounterVec // cluster_reject_overload_total{shard}
	Audits         *telemetry.CounterVec // cluster_claim_audits_total{outcome}

	// Span-timed distributed latency (PR 10). QueueWait observes only
	// sessions that actually waited in the admission queue — the
	// uncontended fast path would otherwise bury the signal in zeros — and
	// carries the session's trace ID as its bucket exemplar, so a p99 spike
	// in /metrics/history links straight to a trace whose queue.wait span
	// shows the wait.
	QueueWait *telemetry.Histogram // cluster_queue_wait_seconds
	ReplAck   *telemetry.Histogram // cluster_repl_ack_seconds

	// Synthetic canary probing (PR 10).
	ProbeAttempts *telemetry.CounterVec   // cluster_probe_attempts_total{shard}
	ProbeFailures *telemetry.CounterVec   // cluster_probe_failures_total{shard}
	ProbeSessions *telemetry.CounterVec   // cluster_probe_sessions_total{shard,verdict}
	ProbeRTT      *telemetry.HistogramVec // cluster_probe_rtt_seconds{shard}

	// lag tracks each device group's worst live-follower lag so the gauge
	// can report the max across groups. Setting the gauge per group let a
	// healthy group's zero overwrite a lagging group's value — in a
	// multi-group process the cluster-replication-lag alert could be masked
	// by whichever group replicated last.
	lagMu sync.Mutex
	lag   map[int]uint64
}

// NewMetrics registers the cluster instrument set on the registry
// (idempotent per registry, like every instrument constructor).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		RouteTotal: reg.CounterVec("cluster_route_total",
			"Attestation requests routed by the consistent-hash ring, by shard.", "shard"),
		FailoverRoutes: reg.Counter("cluster_failover_routes_total",
			"Requests whose ring-owner shard was down and were served by a promoted replica."),
		Promotions: reg.CounterVec("cluster_promotions_total",
			"Leader promotion attempts, by result (promoted, stale_refused, down, not_replica).", "result"),
		ReplClaims: reg.Counter("cluster_repl_claims_total",
			"Seed claims acknowledged through the replicated claim log."),
		ReplFrames: reg.Counter("cluster_repl_frames_total",
			"Claim-log frames streamed leader-to-follower."),
		ReplLag: reg.Gauge("cluster_repl_lag_frames",
			"Worst live-follower lag behind the acknowledged high-water mark, in frames (max across enrolled groups)."),
		InFlight: reg.GaugeVec("cluster_inflight_sessions",
			"Sessions currently admitted past a shard's admission gate.", "shard"),
		QueueDepth: reg.GaugeVec("cluster_queue_depth",
			"Sessions currently waiting in a shard's admission queue.", "shard"),
		RejectOverload: reg.CounterVec("cluster_reject_overload_total",
			"Sessions rejected by admission control (503-style; never retried as transport).", "shard"),
		Audits: reg.CounterVec("cluster_claim_audits_total",
			"Merged claim-log audits, by outcome (clean, violations).", "outcome"),

		QueueWait: reg.Histogram("cluster_queue_wait_seconds",
			"Admission queue wait for sessions that queued (uncontended admissions are not observed).",
			queueWaitBuckets),
		ReplAck: reg.Histogram("cluster_repl_ack_seconds",
			"Full log-before-acknowledge replication cycle: leader append through last live follower ack.",
			queueWaitBuckets),

		ProbeAttempts: reg.CounterVec("cluster_probe_attempts_total",
			"Synthetic canary probe sessions attempted, by shard.", "shard"),
		ProbeFailures: reg.CounterVec("cluster_probe_failures_total",
			"Synthetic canary probes that did not end in an accepted verdict, by shard.", "shard"),
		ProbeSessions: reg.CounterVec("cluster_probe_sessions_total",
			"Synthetic canary probe outcomes, by shard and verdict (accepted, rejected, transport, overload, error).",
			"shard", "verdict"),
		ProbeRTT: reg.HistogramVec("cluster_probe_rtt_seconds",
			"Verifier-observed round-trip time of accepted canary probe sessions, by shard.",
			nil, "shard"),

		lag: make(map[int]uint64),
	}
}

// defaultMetrics serves the package-wide default cluster instruments.
var defaultMetrics = NewMetrics(telemetry.Default())

// observeLag folds one group's worst live-follower lag into the gauge,
// which reports the maximum across all groups (zero clears the group).
func (m *Metrics) observeLag(device int, lag uint64) {
	m.lagMu.Lock()
	defer m.lagMu.Unlock()
	if lag == 0 {
		delete(m.lag, device)
	} else {
		m.lag[device] = lag
	}
	var worst uint64
	for _, l := range m.lag {
		if l > worst {
			worst = l
		}
	}
	m.ReplLag.Set(float64(worst))
}

// Default burn-rate windows for the cluster rules, matching the
// attestation layer's.
const (
	clusterAlertFastWindow = time.Minute
	clusterAlertSlowWindow = 5 * time.Minute
)

// DefaultClusterAlertRules derives the distributed tier's burn-rate alert
// set, sized by the same fast/slow windows the attestation rules use:
//
//   - overload-burn: the fraction of routed requests rejected by
//     admission control exceeds budget (capacity, not correctness);
//   - replication-lag: any live follower is behind the acknowledged
//     high-water mark — with synchronous replication, a nonzero lag means
//     a follower is down or a claim cycle failed mid-flight, which is
//     exactly the state where the next failover trips ErrStaleReplica;
//   - queue-wait-burn (when queueWaitP99Bound > 0): the p99 admission
//     queue wait exceeds the bound. Queue wait precedes the session clock,
//     but a shard whose queue waits approach the protocol time bound is
//     one load spike away from timing out honest provers — alert on the
//     leading indicator.
//
// Feed them to an AlertManager alongside attest.DefaultAlertRules (rule
// names are disjoint).
func DefaultClusterAlertRules(overloadBudget, queueWaitP99Bound float64) []telemetry.Rule {
	if overloadBudget <= 0 {
		overloadBudget = 0.05
	}
	rules := []telemetry.Rule{
		{
			Name: "cluster-overload-burn", Kind: telemetry.RuleRatio,
			Metric:      "cluster_reject_overload_total",
			TotalMetric: "cluster_route_total",
			Budget:      overloadBudget,
			FastWindow:  clusterAlertFastWindow, SlowWindow: clusterAlertSlowWindow,
		},
		{
			Name: "cluster-replication-lag", Kind: telemetry.RuleGaugeAbove,
			Metric: "cluster_repl_lag_frames", Threshold: 0,
			FastWindow: clusterAlertFastWindow, SlowWindow: clusterAlertSlowWindow,
		},
	}
	if queueWaitP99Bound > 0 {
		rules = append(rules, telemetry.Rule{
			Name: "cluster-queue-wait-burn", Kind: telemetry.RuleQuantile,
			Metric: "cluster_queue_wait_seconds", Quantile: 0.99, Threshold: queueWaitP99Bound,
			FastWindow: clusterAlertFastWindow, SlowWindow: clusterAlertSlowWindow,
		})
	}
	return rules
}

// ProbeAlertRules derives one probe-failure burn rule per shard: the
// fraction of canary probes on that shard not ending in an accepted
// verdict exceeds budget (<=0 means any failure burns). Per-shard rules —
// rather than one aggregate — because the probe's whole point is flagging
// a single sick shard even when the others dilute the fleet-wide ratio.
func ProbeAlertRules(shards []string, budget float64) []telemetry.Rule {
	if budget <= 0 {
		budget = 0.01
	}
	ordered := append([]string(nil), shards...)
	sort.Strings(ordered)
	rules := make([]telemetry.Rule, 0, len(ordered))
	for _, sid := range ordered {
		rules = append(rules, telemetry.Rule{
			Name: "cluster-probe-failure/" + sid, Kind: telemetry.RuleRatio,
			Metric:      `cluster_probe_failures_total{shard="` + sid + `"}`,
			TotalMetric: `cluster_probe_attempts_total{shard="` + sid + `"}`,
			Budget:      budget,
			FastWindow:  clusterAlertFastWindow, SlowWindow: clusterAlertSlowWindow,
		})
	}
	return rules
}
