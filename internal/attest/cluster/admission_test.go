package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"pufatt/internal/attest"
)

func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	a := NewAdmission("s", 2, 0)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	_, err = a.Acquire(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("saturated gate: %v, want OverloadError", err)
	}
	if oe.Shard != "s" || oe.InFlight != 2 {
		t.Fatalf("overload detail = %+v", oe)
	}
	if !IsOverload(err) {
		t.Fatal("IsOverload must recognise the rejection")
	}
	if attest.IsTransport(err) {
		t.Fatal("overload classified as transport: a retry loop would hammer the overloaded shard")
	}
	r1()
	r2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmissionQueueAdmitsOnRelease(t *testing.T) {
	a := NewAdmission("s", 1, 1)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		r2, err := a.Acquire(context.Background())
		if err == nil {
			defer r2()
		}
		admitted <- err
	}()
	// Wait for the second session to reach the queue.
	deadline := time.Now().Add(2 * time.Second)
	for a.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second session never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Queue is now full: a third arrival is rejected with both occupancy
	// numbers.
	_, err = a.Acquire(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("full queue: %v, want OverloadError", err)
	}
	if oe.Queued != 1 {
		t.Fatalf("overload reported %d queued, want 1", oe.Queued)
	}
	r1()
	if err := <-admitted; err != nil {
		t.Fatalf("queued session not admitted on release: %v", err)
	}
}

func TestAdmissionQueuedCancelIsTerminal(t *testing.T) {
	a := NewAdmission("s", 1, 4)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	result := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		result <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	err = <-result
	if !errors.Is(err, attest.ErrCancelled) {
		t.Fatalf("queued cancel: %v, want attest.ErrCancelled", err)
	}
	if IsOverload(err) || attest.IsTransport(err) {
		t.Fatal("queued cancel must be terminal: neither overload nor transport")
	}
	// The abandoned ticket must not leak queue capacity.
	deadline = time.Now().Add(2 * time.Second)
	for a.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d after cancel", a.QueueDepth())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestAdmissionDefaults(t *testing.T) {
	a := NewAdmission("s", 0, 0)
	if cap(a.slots) != 32 {
		t.Fatalf("default in-flight cap = %d, want 32", cap(a.slots))
	}
	if a.queue != nil {
		t.Fatal("maxQueue <= 0 must mean no queue")
	}
}
