package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pufatt/internal/attest"
	"pufatt/internal/core"
	"pufatt/internal/crp"
	"pufatt/internal/mcu"
	"pufatt/internal/obfuscate"
	"pufatt/internal/rng"
	"pufatt/internal/swatt"
)

// fakeEnrollment builds enrollment material without measuring a device:
// group/replication semantics don't need real references.
func fakeEnrollment(device int, epoch uint32, seeds ...uint64) *Enrollment {
	e := &Enrollment{device: device, bits: 32, epoch: epoch, refs: make(map[uint64][][]uint8)}
	for _, s := range seeds {
		refs := make([][]uint8, obfuscate.ResponsesPerOutput)
		for j := range refs {
			refs[j] = []uint8{uint8(s), uint8(j)}
		}
		e.refs[s] = refs
		e.order = append(e.order, s)
	}
	return e
}

func threeShards(t *testing.T, autoFailover bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		Shards:       []string{"shard-0", "shard-1", "shard-2"},
		Replicas:     3,
		AutoFailover: autoFailover,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGroupReplicatesClaims(t *testing.T) {
	c := threeShards(t, false)
	g, err := c.Enroll(fakeEnrollment(7, 1, 11, 22, 33))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Remaining(); got != 3 {
		t.Fatalf("Remaining = %d, want 3", got)
	}
	for i, want := range []uint64{11, 22} {
		seed, epoch, err := g.NextUnusedWithEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if seed != want || epoch != 1 {
			t.Fatalf("claim %d: (%d, %d), want (%d, 1)", i, seed, epoch, want)
		}
	}
	// Log before acknowledge, synchronously: every live replica holds both
	// claims and the high-water mark has advanced with them.
	for _, sid := range g.Replicas() {
		if got := g.Applied(sid); got != 2 {
			t.Fatalf("replica %s applied %d, want 2", sid, got)
		}
	}
	if got := g.HighWaterMark(); got != 2 {
		t.Fatalf("hwm = %d, want 2", got)
	}
	if got := g.Remaining(); got != 1 {
		t.Fatalf("Remaining = %d, want 1", got)
	}
	if audit := c.AuditClaims(); !audit.Clean() || audit.Frames != 2 {
		t.Fatalf("audit = %+v, want clean with 2 frames", audit)
	}
}

func TestGroupExhaustion(t *testing.T) {
	c := threeShards(t, false)
	g, err := c.Enroll(fakeEnrollment(3, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.NextUnused(); err != nil {
		t.Fatal(err)
	}
	_, err = g.NextUnused()
	if !errors.Is(err, crp.ErrExhausted) {
		t.Fatalf("exhausted budget: %v, want crp.ErrExhausted", err)
	}
	if !attest.IsExhausted(err) {
		t.Fatal("attest.IsExhausted must recognise a drained group")
	}
}

// The fail-closed core: a follower that missed claims while dead must not
// win leadership after reviving, because the missing claims were released
// to real sessions.
func TestPromotionRefusesStaleReplica(t *testing.T) {
	c := threeShards(t, false)
	g, err := c.Enroll(fakeEnrollment(1, 1, 10, 20, 30, 40, 50))
	if err != nil {
		t.Fatal(err)
	}
	reps := g.Replicas()
	leader, followA, followB := reps[0], reps[1], reps[2]

	if _, err := g.NextUnused(); err != nil {
		t.Fatal(err)
	}
	// followB dies and misses two acknowledged claims.
	if err := c.Kill(followB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := g.NextUnused(); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := g.Applied(followB), uint64(1); got != want {
		t.Fatalf("dead follower applied %d, want %d", got, want)
	}
	if got := g.HighWaterMark(); got != 3 {
		t.Fatalf("hwm = %d, want 3", got)
	}

	// It revives exactly as stale as its downtime left it; the leader dies.
	if err := c.Revive(followB); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(leader); err != nil {
		t.Fatal(err)
	}
	if err := g.Promote(followB); !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("stale promotion: %v, want ErrStaleReplica", err)
	}
	if attest.IsTransport(g.Promote(followB)) {
		t.Fatal("ErrStaleReplica must not be classified as transport")
	}
	// Without auto-failover a dead leader is an operator problem.
	if _, err := g.NextUnused(); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("claims with dead leader: %v, want ErrNoLeader", err)
	}
	// The caught-up follower may serve, and continues the seed order.
	if err := g.Promote(followA); err != nil {
		t.Fatal(err)
	}
	seed, err := g.NextUnused()
	if err != nil {
		t.Fatal(err)
	}
	if seed != 40 {
		t.Fatalf("post-promotion claim = %d, want 40 (no seed re-issued)", seed)
	}
	// Misc refusals: dead candidate, non-replica.
	if err := g.Promote(leader); !errors.Is(err, ErrShardDown) {
		t.Fatalf("promoting dead shard: %v, want ErrShardDown", err)
	}
	if err := g.Promote("ghost"); err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Fatalf("promoting non-replica: %v", err)
	}
	if audit := c.AuditClaims(); !audit.Clean() {
		t.Fatalf("audit violations: %v", audit.Violations)
	}
}

func TestAutoFailoverPicksCaughtUpReplica(t *testing.T) {
	c := threeShards(t, true)
	g, err := c.Enroll(fakeEnrollment(2, 1, 10, 20, 30, 40))
	if err != nil {
		t.Fatal(err)
	}
	reps := g.Replicas()
	leader, followA, followB := reps[0], reps[1], reps[2]

	if err := c.Kill(followB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := g.NextUnused(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Revive(followB); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(leader); err != nil {
		t.Fatal(err)
	}
	// Auto-failover must pick the caught-up follower, never the stale one.
	seed, err := g.NextUnused()
	if err != nil {
		t.Fatal(err)
	}
	if seed != 30 {
		t.Fatalf("failover claim = %d, want 30", seed)
	}
	if lead, err := g.Leader(); err != nil || lead != followA {
		t.Fatalf("leader = %s (%v), want %s", lead, err, followA)
	}
	// All replicas down: nothing may serve.
	if err := c.Kill(followA); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(followB); err != nil {
		t.Fatal(err)
	}
	if _, err := g.NextUnused(); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("all-dead claim: %v, want ErrNoLeader", err)
	}
}

func TestGroupCommitEpoch(t *testing.T) {
	c := threeShards(t, false)
	g, err := c.Enroll(fakeEnrollment(4, 1, 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.NextUnused(); err != nil {
		t.Fatal(err)
	}
	if err := g.CommitEpoch(fakeEnrollment(9, 2, 100)); err == nil {
		t.Fatal("cross-device enrollment accepted")
	}
	if err := g.CommitEpoch(fakeEnrollment(4, 1, 100)); err == nil {
		t.Fatal("same-epoch re-enrollment accepted")
	}
	if err := g.CommitEpoch(fakeEnrollment(4, 2, 100, 200)); err != nil {
		t.Fatal(err)
	}
	if got := g.Epoch(); got != 2 {
		t.Fatalf("epoch = %d after commit, want 2", got)
	}
	seed, epoch, err := g.NextUnusedWithEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if seed != 100 || epoch != 2 {
		t.Fatalf("post-cutover claim = (%d, %d), want (100, 2)", seed, epoch)
	}
	// The transition frame replicated like any claim: every replica saw it.
	for _, sid := range g.Replicas() {
		if got := g.Applied(sid); got != 3 { // claim + transition + claim
			t.Fatalf("replica %s applied %d, want 3", sid, got)
		}
	}
	if audit := c.AuditClaims(); !audit.Clean() {
		t.Fatalf("audit violations: %v", audit.Violations)
	}
}

func TestReferenceResponseRequiresClaim(t *testing.T) {
	c := threeShards(t, false)
	g, err := c.Enroll(fakeEnrollment(5, 1, 77))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReferenceResponse(77, 0); err == nil {
		t.Fatal("unclaimed seed's references served")
	}
	if _, err := g.ReferenceResponse(999, 0); !errors.Is(err, crp.ErrUnknownSeed) {
		t.Fatalf("unknown seed: %v, want crp.ErrUnknownSeed", err)
	}
	if _, err := g.NextUnused(); err != nil {
		t.Fatal(err)
	}
	ref, err := g.ReferenceResponse(77, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 2 || ref[0] != 77 || ref[1] != 1 {
		t.Fatalf("reference = %v", ref)
	}
	if _, err := g.ReferenceResponse(77, obfuscate.ResponsesPerOutput); err == nil {
		t.Fatal("out-of-range reference index served")
	}
}

// --- real-device fleet tests -------------------------------------------

var (
	fleetOnce   sync.Once
	fleetDesign *core.Design
	fleetImage  *swatt.Image
)

func fleetFixtures(t *testing.T) (*core.Design, *swatt.Image) {
	t.Helper()
	fleetOnce.Do(func() {
		fleetDesign = core.MustNewDesign(core.DefaultConfig())
		img, err := swatt.BuildImage(loadParams(), make([]uint32, 64))
		if err != nil {
			t.Fatal(err)
		}
		fleetImage = img
	})
	return fleetDesign, fleetImage
}

// bindTestDevice simulates a device, enrolls it, and binds a full
// verifier/prover session endpoint, mirroring a production bring-up.
func bindTestDevice(t *testing.T, c *Cluster, id, numSeeds int) *Group {
	t.Helper()
	design, image := fleetFixtures(t)
	dev, err := core.NewDevice(design, rng.New(uint64(id)+1), id)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, numSeeds)
	for k := range seeds {
		seeds[k] = uint64(id)<<20 | uint64(k+1)
	}
	enr, err := NewEnrollment(dev, seeds)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Enroll(enr)
	if err != nil {
		t.Fatal(err)
	}
	port, err := mcu.NewDevicePort(dev)
	if err != nil {
		t.Fatal(err)
	}
	prover := attest.NewProver(image.Clone(), port, 1)
	prover.TuneClock(0.98)
	link := attest.DefaultLink()
	// Emulator as reference source, Group as the replicated claim budget —
	// the same split the in-process budgets use.
	v, err := attest.NewVerifier(image, dev.Emulator(), prover.FreqHz, port.Votes)
	if err != nil {
		t.Fatal(err)
	}
	v.WithSeedBudget(g)
	v.PUFEpoch = enr.Epoch()
	v.Nonces = rng.New(uint64(id)*3 + 7).Uint32
	v.AllowNetwork(link)
	if err := c.Bind(id, v, prover, link); err != nil {
		t.Fatal(err)
	}
	return g
}

// The acceptance scenario: a 3-shard cluster with one shard killed
// mid-sweep serves every device on both sweeps, and the merged claim-log
// audit proves zero duplicate seed claims across the failover.
func TestClusterLeaderKillMidSweep(t *testing.T) {
	c := threeShards(t, true)
	const devices = 24
	for id := 0; id < devices; id++ {
		bindTestDevice(t, c, id, 8)
	}
	policy := attest.RetryPolicy{MaxAttempts: 3, JitterSeed: 1}

	var out map[int]SweepOutcome
	done := make(chan struct{})
	go func() {
		defer close(done)
		out = c.Sweep(context.Background(), policy, 6)
	}()
	time.Sleep(2 * time.Millisecond)
	if err := c.Kill("shard-0"); err != nil {
		t.Fatal(err)
	}
	<-done

	for id, o := range out {
		if o.Err != nil {
			t.Fatalf("device %d sweep 1: %v", id, o.Err)
		}
		if !o.Result.Accepted {
			t.Fatalf("device %d sweep 1 rejected: %s", id, o.Result.Reason)
		}
	}
	// Second sweep with the shard still dead: every device it led is now
	// served by a promoted, caught-up replica.
	for id, o := range c.Sweep(context.Background(), policy, 6) {
		if o.Err != nil || !o.Result.Accepted {
			t.Fatalf("device %d sweep 2: err=%v accepted=%v", id, o.Err, o.Result.Accepted)
		}
	}
	audit := c.AuditClaims()
	if !audit.Clean() {
		t.Fatalf("audit violations: %v", audit.Violations)
	}
	if audit.Devices != devices {
		t.Fatalf("audit covered %d devices, want %d", audit.Devices, devices)
	}
	// Exactly once per session: two accepted sessions per device, so the
	// longest live log holds exactly two claim frames each.
	if want := 2 * devices; audit.Frames != want {
		t.Fatalf("audit frames = %d, want %d (one claim per accepted session)", audit.Frames, want)
	}
	if len(audit.DeadShards) != 1 || audit.DeadShards[0] != "shard-0" {
		t.Fatalf("dead shards = %v", audit.DeadShards)
	}
}

// Overload is a verdict about capacity, not a transport fault: Attest must
// surface it with zero protocol attempts and the retry machinery must
// never classify it as retryable.
func TestAttestOverloadTerminal(t *testing.T) {
	c, err := New(Config{
		Shards:       []string{"shard-0", "shard-1", "shard-2"},
		Replicas:     3,
		MaxInFlight:  1,
		MaxQueue:     -1, // no queue: reject at the gate
		AutoFailover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const id = 0
	bindTestDevice(t, c, id, 4)
	shardID := c.Ring().Route(DeviceKey(id))
	release, err := c.Shard(shardID).Admission().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, attempts, err := c.Attest(context.Background(), id, attest.RetryPolicy{MaxAttempts: 5, JitterSeed: 1})
	if !IsOverload(err) {
		t.Fatalf("saturated shard: %v, want OverloadError", err)
	}
	if attempts != 0 {
		t.Fatalf("overload consumed %d protocol attempts, want 0", attempts)
	}
	if attest.IsTransport(err) {
		t.Fatal("OverloadError must not be classified as transport")
	}
	release()
	res, _, err := c.Attest(context.Background(), id, attest.RetryPolicy{MaxAttempts: 3, JitterSeed: 1})
	if err != nil || !res.Accepted {
		t.Fatalf("post-release attest: err=%v accepted=%v", err, res.Accepted)
	}
}

func TestClusterEnrollAndBindValidation(t *testing.T) {
	c := threeShards(t, false)
	if _, err := c.Enroll(fakeEnrollment(1, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Enroll(fakeEnrollment(1, 1, 20)); err == nil {
		t.Fatal("duplicate enrollment accepted")
	}
	if err := c.Bind(99, nil, nil, attest.Link{}); err == nil {
		t.Fatal("binding an unenrolled device accepted")
	}
	if _, _, err := c.Attest(context.Background(), 42, attest.RetryPolicy{MaxAttempts: 1}); err == nil {
		t.Fatal("attesting an unknown device accepted")
	}
	if err := c.Kill("nope"); err == nil {
		t.Fatal("killing an unknown shard accepted")
	}
	if err := c.Revive("nope"); err == nil {
		t.Fatal("reviving an unknown shard accepted")
	}
	if got := fmt.Sprint(c.Devices()); got != "[1]" {
		t.Fatalf("Devices() = %s", got)
	}
}
