package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pufatt/internal/attest"
	"pufatt/internal/telemetry"
)

// Observability-v4 suite: cluster span stitching, the queue-wait→alert→
// profile-capture chain, synthetic canary probing, and the lag-gauge
// regression — all deterministic under a step clock and seeded IDs.

// clkStep is a hand-advanced clock shared by the tracer, history, and
// alert manager so distributed timing in these tests is exact.
type clkStep struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clkStep) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clkStep) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newClusterTelemetry binds a cluster to a private, clock-driven telemetry
// bundle: its own registry, a seeded tracer, and history/alert clocks all
// on clk.
func newClusterTelemetry(t *testing.T, c *Cluster, seed uint64) (*attest.Telemetry, *clkStep) {
	t.Helper()
	tracer := telemetry.NewTracer(256)
	tracer.SetIDSeed(seed)
	tel := attest.NewTelemetry(telemetry.NewRegistry(), tracer)
	clk := &clkStep{t: time.Unix(70000, 0)}
	tracer.SetClock(clk.now)
	tel.History.SetClock(clk.now)
	tel.History.SetWindow(5 * time.Second)
	tel.Alerts.SetClock(clk.now)
	c.SetTelemetry(tel)
	return tel, clk
}

// The regression this PR fixes: cluster_repl_lag_frames was Set per group,
// so a healthy group's zero overwrote a lagging group's value — whichever
// group replicated last owned the gauge and the replication-lag alert went
// blind. The gauge must report the max across groups.
func TestReplLagGaugeMaxAcrossGroups(t *testing.T) {
	m := NewMetrics(telemetry.NewRegistry())

	m.observeLag(1, 5) // group 1 lags five frames
	m.observeLag(2, 0) // group 2 healthy — must NOT mask group 1
	if v := m.ReplLag.Value(); v != 5 {
		t.Fatalf("lag gauge = %v after healthy group reported, want 5 (masking regression)", v)
	}
	m.observeLag(2, 9) // group 2 now worse
	if v := m.ReplLag.Value(); v != 9 {
		t.Fatalf("lag gauge = %v, want max 9", v)
	}
	m.observeLag(2, 0) // group 2 caught up; group 1 still behind
	if v := m.ReplLag.Value(); v != 5 {
		t.Fatalf("lag gauge = %v after group 2 recovered, want 5", v)
	}
	m.observeLag(1, 0)
	if v := m.ReplLag.Value(); v != 0 {
		t.Fatalf("lag gauge = %v with all groups caught up, want 0", v)
	}
}

// One uncontended session through the cluster path stitches every
// distributed phase into a single trace: the cluster.attest root holds
// route, queue.wait, and the replication acknowledge cycle (with one
// repl.follower child per live follower), and the session itself is a root
// span adopted into the same trace.
func TestClusterSpanStitching(t *testing.T) {
	c := threeShards(t, true)
	tel, _ := newClusterTelemetry(t, c, 97)
	bindTestDevice(t, c, 0, 4)

	res, _, err := c.Attest(context.Background(), 0, attest.RetryPolicy{MaxAttempts: 3, JitterSeed: 1})
	if err != nil || !res.Accepted {
		t.Fatalf("attest: err=%v accepted=%v", err, res.Accepted)
	}

	var root *telemetry.Span
	for _, sp := range tel.Tracer.Recent() {
		if sp.Name() == "cluster.attest" {
			root = sp
		}
	}
	if root == nil {
		t.Fatal("no cluster.attest root span recorded")
	}
	if root.Attr("device") != "0" {
		t.Fatalf("root device attr = %q", root.Attr("device"))
	}
	children := map[string]*telemetry.Span{}
	for _, ch := range root.Children() {
		children[ch.Name()] = ch
	}
	spRoute := children["route"]
	if spRoute == nil || spRoute.Attr("shard") == "" {
		t.Fatalf("route span missing or unattributed: %v", children)
	}
	if children["queue.wait"] == nil {
		t.Fatal("queue.wait span missing from the cluster trace")
	}
	spAck := children["repl.ack"]
	if spAck == nil {
		t.Fatal("repl.ack span missing: the claim cycle did not stitch into the session trace")
	}
	followers := 0
	for _, ch := range spAck.Children() {
		if ch.Name() == "repl.follower" && ch.Attr("shard") != "" {
			followers++
		}
	}
	if followers != 2 {
		t.Fatalf("repl.follower spans = %d, want 2 (replicas minus leader)", followers)
	}

	// The session ran as a root span adopted into the cluster trace.
	session := false
	for _, sp := range tel.Tracer.ByTrace(root.TraceID()) {
		if sp.Name() == "attest.session" {
			session = true
		}
	}
	if !session {
		t.Fatalf("trace %s holds no attest.session root", root.TraceID())
	}
}

// Canary probing is a pure function of its seeds: two identically
// configured probers over identically configured clusters report identical
// outcomes, a per-shard fault plan fails exactly its shard, and the
// isolated canary budget burns no cluster seeds.
func TestProberDeterministicOverFaultyLink(t *testing.T) {
	build := func() (*Cluster, *Prober) {
		c := threeShards(t, true)
		tracer := telemetry.NewTracer(64)
		tracer.SetIDSeed(7)
		tel := attest.NewTelemetry(telemetry.NewRegistry(), tracer)
		c.SetTelemetry(tel)
		p, err := NewProber(c, ProberConfig{
			Seeds: 8, Seed: 3, FaultSeed: 5, MaxAttempts: 2,
			Plans: map[string]attest.FaultPlan{
				"shard-1": {Drop: 1}, // every frame dropped: probes must report transport
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, p
	}
	c1, p1 := build()
	_, p2 := build()

	const rounds = 3
	for i := 0; i < rounds; i++ {
		p1.ProbeAll(context.Background())
		p2.ProbeAll(context.Background())
	}
	st1, st2 := p1.Status(), p2.Status()
	if len(st1) != 3 || len(st2) != 3 {
		t.Fatalf("status lengths = %d, %d, want 3", len(st1), len(st2))
	}
	for i := range st1 {
		a, b := st1[i], st2[i]
		if a.Shard != b.Shard || a.Sessions != b.Sessions || a.Accepted != b.Accepted ||
			a.Transport != b.Transport || a.LastVerdict != b.LastVerdict ||
			a.SeedsRemaining != b.SeedsRemaining || a.LastRTTSeconds != b.LastRTTSeconds {
			t.Fatalf("probe outcomes diverged between identical probers:\n%+v\n%+v", a, b)
		}
		switch a.Shard {
		case "shard-1":
			if a.Transport != rounds || a.Accepted != 0 || a.LastVerdict != "transport" {
				t.Fatalf("faulted shard-1 canary: %+v, want %d transport failures", a, rounds)
			}
		default:
			if a.Accepted != rounds || a.LastVerdict != "accepted" || a.LastRTTSeconds <= 0 {
				t.Fatalf("clean canary %s: %+v, want %d accepted", a.Shard, a, rounds)
			}
		}
		if a.SeedsRemaining >= 8 {
			t.Fatalf("canary %s burned no seeds across %d probes: %+v", a.Shard, rounds, a)
		}
	}

	// Isolation: the canaries claimed seeds, but the cluster's replicated
	// claim logs saw nothing — zero frames, zero devices.
	if audit := c1.AuditClaims(); audit.Frames != 0 || audit.Devices != 0 {
		t.Fatalf("canary probes leaked into the cluster claim logs: %+v", audit)
	}
	met := c1.Metrics()
	if v := met.ProbeFailures.With("shard-1").Value(); v != rounds {
		t.Fatalf("shard-1 probe failures = %d, want %d", v, rounds)
	}
	if v := met.ProbeFailures.With("shard-0").Value(); v != 0 {
		t.Fatalf("clean shard-0 probe failures = %d, want 0", v)
	}
	if v := met.ProbeSessions.With("shard-2", "accepted").Value(); v != rounds {
		t.Fatalf("shard-2 accepted probe sessions = %d, want %d", v, rounds)
	}
}

// The PR-10 acceptance scenario, deterministic end to end: queue-wait
// inflation on one shard drives the queue-wait burn alert, the alert
// triggers a profile capture tagged with its name and an exemplar trace
// whose tree contains the queue.wait span — while that shard's canary
// still reports the protocol itself correct. Conversely, a shard with ZERO
// organic traffic is flagged by its canary alone.
func TestQueueWaitAlertProfileAndProbeEndToEnd(t *testing.T) {
	c, err := New(Config{
		Shards:       []string{"shard-0", "shard-1", "shard-2"},
		Replicas:     3,
		MaxInFlight:  1, // one slot: a parked session forces real queueing
		MaxQueue:     4,
		AutoFailover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel, clk := newClusterTelemetry(t, c, 101)
	tel.SetProfileDir(t.TempDir())
	tel.Profiler.SetCPUDuration(time.Millisecond)
	tel.Profiler.SetClock(clk.now)

	const id = 0
	bindTestDevice(t, c, id, 16)
	hot := c.Ring().Route(DeviceKey(id)) // the shard organic traffic inflates
	var quiet string                     // a shard with zero organic traffic
	for _, sid := range c.Ring().Shards() {
		if sid != hot {
			quiet = sid
			break
		}
	}

	// Canaries probe every shard; the quiet shard's canary link is faulted,
	// so its failure signal comes from probes alone.
	prober, err := NewProber(c, ProberConfig{
		Seeds: 32, Seed: 3, FaultSeed: 5,
		Plans: map[string]attest.FaultPlan{quiet: {Drop: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	const tick = 5 * time.Second
	rules := DefaultClusterAlertRules(0.5, 0.05) // queue-wait p99 bound: 50ms
	rules = append(rules, prober.AlertRules(0.25)...)
	for i := range rules {
		rules[i].FastWindow = 2 * tick
		rules[i].SlowWindow = 4 * tick
	}
	tel.Alerts.SetRules(rules)

	waitForQueue := func(adm *Admission) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for adm.QueueDepth() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("session never queued")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Each round: park a session in the hot shard's only slot, queue a real
	// one behind it, advance the clock one second of queue wait, release,
	// then probe every shard and collect a history window.
	policy := attest.RetryPolicy{MaxAttempts: 3, JitterSeed: 1}
	for round := 0; round < 6; round++ {
		adm := c.Shard(hot).Admission()
		release, aerr := adm.Acquire(context.Background())
		if aerr != nil {
			t.Fatal(aerr)
		}
		done := make(chan error, 1)
		go func() {
			res, _, serr := c.Attest(context.Background(), id, policy)
			if serr == nil && !res.Accepted {
				serr = fmt.Errorf("round rejected: %s", res.Reason)
			}
			done <- serr
		}()
		waitForQueue(adm)
		clk.advance(time.Second) // the queue wait, measured on the tracer clock
		release()
		if serr := <-done; serr != nil {
			t.Fatalf("queued session: %v", serr)
		}
		prober.ProbeAll(context.Background())
		clk.advance(tick - time.Second)
		tel.ObserveFleet()
	}

	// The queue-wait burn rule fired on the hot shard's inflated waits…
	assertFiring := func(name string) {
		t.Helper()
		for _, a := range tel.Alerts.Snapshot() {
			if a.Rule.Name == name {
				if a.State != telemetry.AlertFiring {
					t.Fatalf("%s = %s, want firing", name, a.State)
				}
				return
			}
		}
		t.Fatalf("alert rule %q not registered", name)
	}
	assertFiring("cluster-queue-wait-burn")

	// …and triggered exactly one profile capture carrying the alert's name
	// and an exemplar trace ID.
	if v := tel.ProfileCaptures.With("cluster-queue-wait-burn").Value(); v != 1 {
		t.Fatalf("queue-wait alert captures = %d, want exactly 1", v)
	}
	var capture telemetry.ProfileCapture
	for _, e := range tel.Profiler.Snapshot() {
		if e.Trigger == "cluster-queue-wait-burn" {
			capture = e
		}
	}
	if capture.Alert != "cluster-queue-wait-burn" || capture.Trace == "" {
		t.Fatalf("capture metadata: %+v, want alert name and a trace ID", capture)
	}

	// The capture's trace resolves to a span tree containing the queue.wait
	// span that measured the inflation.
	traceID, err := strconv.ParseUint(capture.Trace, 16, 64)
	if err != nil {
		t.Fatalf("capture trace %q: %v", capture.Trace, err)
	}
	queueWait := false
	for _, root := range tel.Tracer.ByTrace(telemetry.TraceID(traceID)) {
		for _, ch := range root.Children() {
			if ch.Name() == "queue.wait" && ch.Attr("queued") == "true" {
				queueWait = true
			}
		}
	}
	if !queueWait {
		t.Fatalf("capture trace %s holds no queued queue.wait span", capture.Trace)
	}

	// The degraded shard's canary still reports the protocol correct: queue
	// pressure is congestion, not compromise.
	for _, st := range prober.Status() {
		switch st.Shard {
		case hot:
			if st.LastVerdict != "accepted" || st.Accepted == 0 {
				t.Fatalf("hot-shard canary: %+v, want protocol-correct accepted probes", st)
			}
		case quiet:
			if st.Transport == 0 || st.Accepted != 0 {
				t.Fatalf("faulted quiet-shard canary: %+v, want transport failures only", st)
			}
		}
	}

	// The converse: the quiet shard carried zero organic sessions, yet its
	// probe-failure rule fired — the canary is its only witness.
	if v := c.Metrics().RouteTotal.With(quiet).Value(); v != 0 {
		t.Fatalf("quiet shard saw %d organic routes; the converse needs zero", v)
	}
	assertFiring("cluster-probe-failure/" + quiet)
}

// Per-route contract for the cluster admin surface, /probes included:
// method discipline, Content-Type, body well-formedness, and 400 on a bad
// shard filter.
func TestClusterAdminRoutesAndProbesEndpoint(t *testing.T) {
	c := threeShards(t, true)
	tracer := telemetry.NewTracer(64)
	tracer.SetIDSeed(13)
	tel := attest.NewTelemetry(telemetry.NewRegistry(), tracer)
	c.SetTelemetry(tel)
	srv := httptest.NewServer(AdminMux(c, tel))
	defer srv.Close()
	client := srv.Client()

	for _, path := range []string{"/ring", "/cluster", "/probes"} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("GET %s: Content-Type %q", path, ct)
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("GET %s: body is not JSON: %v\n%s", path, err, body)
		}
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, _ := http.NewRequest(method, srv.URL+path, strings.NewReader("x"))
			resp, err := client.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", method, path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow %q, want \"GET, HEAD\"", method, path, allow)
			}
		}
	}

	// No prober attached: an empty JSON array, never null.
	resp, err := client.Get(srv.URL + "/probes")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("/probes with no prober = %q, want []", body)
	}

	// An unknown shard filter is a client error, not an empty success.
	if _, err := NewProber(c, ProberConfig{Seeds: 4}); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(srv.URL + "/probes?shard=no-such-shard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/probes?shard=no-such-shard: status %d, want 400", resp.StatusCode)
	}

	// A valid filter serves exactly that shard's canary row.
	resp, err = client.Get(srv.URL + "/probes?shard=shard-1")
	if err != nil {
		t.Fatal(err)
	}
	var statuses []ProbeStatus
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(statuses) != 1 || statuses[0].Shard != "shard-1" {
		t.Fatalf("filtered /probes = %+v, want shard-1 only", statuses)
	}
	if statuses[0].Sessions != 0 {
		t.Fatalf("unprobed canary reports %d sessions, want 0 (no data)", statuses[0].Sessions)
	}
}

// A probe against a dead shard is a verdict, not silence.
func TestProbeDeadShardReportsError(t *testing.T) {
	c := threeShards(t, true)
	tracer := telemetry.NewTracer(64)
	tracer.SetIDSeed(11)
	c.SetTelemetry(attest.NewTelemetry(telemetry.NewRegistry(), tracer))
	p, err := NewProber(c, ProberConfig{Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill("shard-2"); err != nil {
		t.Fatal(err)
	}
	st, err := p.ProbeOnce(context.Background(), "shard-2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Alive || st.LastVerdict != "error" || st.Errors != 1 {
		t.Fatalf("dead-shard probe: %+v, want alive=false verdict=error", st)
	}
	if st.SeedsRemaining != 4 {
		t.Fatalf("dead-shard probe burned a seed: %d remaining", st.SeedsRemaining)
	}
	if _, err := p.ProbeOnce(context.Background(), "no-such-shard"); err == nil {
		t.Fatal("unknown shard probed without error")
	}
}
