package cluster

import (
	"context"
	"errors"
	"fmt"

	"pufatt/internal/attest"
)

// Admission control on a shard's accept path: a bounded in-flight session
// count with a bounded wait queue in front of it. A session either runs
// immediately, waits in the queue for a slot, or — when the queue is full
// — is rejected with a typed OverloadError, the 503 of this protocol.
//
// The classification matters as much as the bound. An overload rejection
// is the shard *deciding* not to serve, not the channel mangling a frame,
// so OverloadError is deliberately NOT a transport fault: it wraps no
// net.Error, carries no transport sentinel, and attest.IsTransport
// returns false for it. A retry loop that treated overload as transport
// would hammer an overloaded shard with its whole retry budget —
// amplifying exactly the load that caused the rejection. Clients back off
// at their own cadence or route elsewhere.

// OverloadError is the typed admission rejection (reject_overload).
type OverloadError struct {
	Shard    string
	InFlight int // in-flight sessions at rejection time
	Queued   int // queue occupancy at rejection time
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("cluster: shard %s overloaded: %d sessions in flight, %d queued (reject_overload)",
		e.Shard, e.InFlight, e.Queued)
}

// IsOverload reports whether err is an admission rejection.
func IsOverload(err error) bool {
	var oe *OverloadError
	return errors.As(err, &oe)
}

// Admission is one shard's admission gate.
type Admission struct {
	shard string
	met   *Metrics
	slots chan struct{} // in-flight capacity
	queue chan struct{} // waiting capacity (may be nil: reject immediately)
}

// NewAdmission builds a gate admitting maxInFlight concurrent sessions
// with maxQueue waiters behind them. maxInFlight <= 0 defaults to 32;
// maxQueue <= 0 means no queue (full slots reject immediately). The gate
// records into the package-default metrics until its cluster rebinds it
// (SetTelemetry).
func NewAdmission(shard string, maxInFlight, maxQueue int) *Admission {
	if maxInFlight <= 0 {
		maxInFlight = 32
	}
	a := &Admission{shard: shard, met: defaultMetrics, slots: make(chan struct{}, maxInFlight)}
	if maxQueue > 0 {
		a.queue = make(chan struct{}, maxQueue)
	}
	return a
}

// Acquire admits one session, blocking in the queue while the shard is at
// capacity. It returns the release function for the admitted slot, or an
// *OverloadError when the queue is full, or a terminal attest.ErrCancelled
// when ctx ends while queued.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	release, _, err = a.acquire(ctx)
	return release, err
}

// acquire is Acquire reporting whether the session actually waited in the
// queue — the cluster's queue.wait span timing only observes waits, so the
// uncontended fast path cannot bury the latency signal in zeros.
func (a *Admission) acquire(ctx context.Context) (release func(), queued bool, err error) {
	release = func() {
		<-a.slots
		a.met.InFlight.With(a.shard).Set(float64(len(a.slots)))
	}
	select {
	case a.slots <- struct{}{}:
		a.met.InFlight.With(a.shard).Set(float64(len(a.slots)))
		return release, false, nil
	default:
	}
	if a.queue == nil {
		a.met.RejectOverload.With(a.shard).Inc()
		return nil, false, &OverloadError{Shard: a.shard, InFlight: len(a.slots)}
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.met.RejectOverload.With(a.shard).Inc()
		return nil, false, &OverloadError{Shard: a.shard, InFlight: len(a.slots), Queued: len(a.queue)}
	}
	a.met.QueueDepth.With(a.shard).Set(float64(len(a.queue)))
	defer func() {
		<-a.queue
		a.met.QueueDepth.With(a.shard).Set(float64(len(a.queue)))
	}()
	select {
	case a.slots <- struct{}{}:
		a.met.InFlight.With(a.shard).Set(float64(len(a.slots)))
		return release, true, nil
	case <-ctx.Done():
		// The caller gave up while queued: terminal, not overload (the
		// shard refused nothing) and not transport (nothing was lost).
		return nil, true, fmt.Errorf("%w: while queued on shard %s: %v", attest.ErrCancelled, a.shard, ctx.Err())
	}
}

// InFlight reports the sessions currently admitted.
func (a *Admission) InFlight() int { return len(a.slots) }

// QueueDepth reports the sessions currently waiting.
func (a *Admission) QueueDepth() int { return len(a.queue) }
