package cluster

import "testing"

// A scaled-down load run: the engine's bookkeeping must balance (every
// session accounted for exactly once) and the merged claim-log audit must
// come back clean even with clients contending for shared devices.
func TestRunLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke builds a real fleet")
	}
	report, err := RunLoad(LoadConfig{
		Devices:           6,
		Provers:           24,
		SessionsPerProver: 1,
		MaxInFlight:       8,
		MaxQueue:          64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sessions != 24 {
		t.Fatalf("sessions = %d, want 24", report.Sessions)
	}
	if sum := report.Accepted + report.Rejected + report.Overloaded + report.Exhausted +
		report.Transport + report.Errors; sum != report.Sessions {
		t.Fatalf("outcome sum %d != sessions %d", sum, report.Sessions)
	}
	if report.Accepted == 0 {
		t.Fatal("no session accepted on a clean link")
	}
	if report.Errors != 0 {
		t.Fatalf("unclassified errors: %d", report.Errors)
	}
	if !report.AuditClean {
		t.Fatal("claim-log audit found violations")
	}
	if report.P99Ms <= 0 || report.Throughput <= 0 {
		t.Fatalf("degenerate SLO numbers: %+v", report)
	}
	if report.String() == "" {
		t.Fatal("empty report line")
	}
}
