package attest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pufatt/internal/telemetry"
)

// --- frame-codec compatibility: v1 ↔ v2 ---

func TestV1ChallengeFrameDecodesUnchanged(t *testing.T) {
	// An old-format (v1) frame, byte-for-byte as a pre-trace peer emits it,
	// must decode to the same challenge with no trace context.
	body := make([]byte, 16)
	binary.LittleEndian.PutUint64(body[0:], 42)
	binary.LittleEndian.PutUint32(body[8:], 0xdead)
	binary.LittleEndian.PutUint32(body[12:], 0xbeef)
	frame := rawFrame(frameMagic, 1, frameChallenge, body, crc32.ChecksumIEEE(body))

	ch, tc, err := ReadChallengeTraced(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if ch.Session != 42 || ch.Nonce != 0xdead || ch.PUFSeed != 0xbeef {
		t.Fatalf("v1 challenge decoded as %+v", ch)
	}
	if tc.Valid() {
		t.Fatalf("v1 frame produced a trace context: %+v", tc)
	}
}

func TestTracedChallengeRoundTrip(t *testing.T) {
	ch := fixedChallenge(7, 0x1234)
	tc := telemetry.TraceContext{Trace: 0x1111222233334444, Span: 0x5555666677778888}

	var buf bytes.Buffer
	if err := WriteChallengeTraced(&buf, ch, tc); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[2]; got != frameVersionTraced {
		t.Fatalf("traced frame version byte = %d, want %d", got, frameVersionTraced)
	}
	got, gtc, err := ReadChallengeTraced(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != ch {
		t.Fatalf("challenge round trip: %+v != %+v", got, ch)
	}
	if gtc != tc {
		t.Fatalf("trace context round trip: %+v != %+v", gtc, tc)
	}
	// A caller that never asks for the context still gets the payload: the
	// extension is transparent to trace-blind decoding paths.
	plain, err := ReadChallenge(bytes.NewReader(buf.Bytes()))
	if err != nil || plain != ch {
		t.Fatalf("trace-blind decode of v2 frame: %+v, %v", plain, err)
	}
}

func TestWireTracingGateEmitsV1(t *testing.T) {
	SetWireTracing(false)
	defer SetWireTracing(true)
	var buf bytes.Buffer
	tc := telemetry.TraceContext{Trace: 1, Span: 2}
	if err := WriteChallengeTraced(&buf, fixedChallenge(1, 9), tc); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[2]; got != frameVersion {
		t.Fatalf("gated frame version byte = %d, want v1 (%d)", got, frameVersion)
	}
	if !WireTracing() {
		// the gate reads back
	} else {
		t.Fatal("WireTracing() = true while disabled")
	}
}

// tracedFrame builds a v2 challenge frame by hand, letting the test mangle
// the extension while keeping the outer CRC valid.
func tracedFrame(ch Challenge, ext []byte) []byte {
	payload := make([]byte, 16)
	binary.LittleEndian.PutUint64(payload[0:], ch.Session)
	binary.LittleEndian.PutUint32(payload[8:], ch.Nonce)
	binary.LittleEndian.PutUint32(payload[12:], ch.PUFSeed)
	body := make([]byte, 2+len(ext)+len(payload))
	binary.LittleEndian.PutUint16(body[0:], uint16(len(ext)))
	copy(body[2:], ext)
	copy(body[2+len(ext):], payload)
	return rawFrame(frameMagic, frameVersionTraced, frameChallenge, body, crc32.ChecksumIEEE(body))
}

func TestCorruptTraceExtKeepsPayload(t *testing.T) {
	ch := fixedChallenge(9, 0x77)
	ext := encodeTraceExt(telemetry.TraceContext{Trace: 0xaaaa, Span: 0xbbbb})
	ext[3] ^= 0x40 // mangle a trace ID byte: the inner CRC must now fail
	before := tel.TraceHeaders.With("corrupt").Value()

	got, tc, err := ReadChallengeTraced(bytes.NewReader(tracedFrame(ch, ext)))
	if err != nil {
		t.Fatalf("corrupt trace ext killed the frame: %v", err)
	}
	if got != ch {
		t.Fatalf("payload mangled alongside the ext: %+v", got)
	}
	if tc.Valid() {
		t.Fatalf("corrupt ext yielded a trace context: %+v", tc)
	}
	if after := tel.TraceHeaders.With("corrupt").Value(); after != before+1 {
		t.Fatalf("corrupt-header counter %d → %d, want +1", before, after)
	}
}

func TestUnknownSizeTraceExtSkipped(t *testing.T) {
	// A future revision's longer extension: unknown content, valid frame.
	ch := fixedChallenge(3, 0x55)
	got, tc, err := ReadChallengeTraced(bytes.NewReader(tracedFrame(ch, make([]byte, 32))))
	if err != nil || got != ch || tc.Valid() {
		t.Fatalf("unknown ext handling: ch=%+v tc=%+v err=%v", got, tc, err)
	}
}

func TestMalformedTraceExtRejected(t *testing.T) {
	// An extension length overrunning the body lies about the payload
	// boundary — that IS a frame fault, and a transport-class one.
	body := make([]byte, 6)
	binary.LittleEndian.PutUint16(body[0:], 500)
	frame := rawFrame(frameMagic, frameVersionTraced, frameChallenge, body, crc32.ChecksumIEEE(body))
	_, _, err := ReadChallengeTraced(bytes.NewReader(frame))
	if err == nil || !strings.Contains(err.Error(), "extension") {
		t.Fatalf("overrunning ext err = %v, want ErrTraceExt", err)
	}
	if !IsTransport(err) {
		t.Fatalf("ErrTraceExt not transport-class: %v", err)
	}
}

func TestCorruptTraceExtDoesNotKillSession(t *testing.T) {
	// End to end: a prover served a challenge whose trace header is mangled
	// (inner CRC bad, outer CRC good) must still answer the session.
	f := newFixture(t, 61)
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		_ = Serve(server, f.prover)
		server.Close()
	}()

	ch := fixedChallenge(1, 0x2468)
	ext := encodeTraceExt(telemetry.TraceContext{Trace: 0x1212, Span: 0x3434})
	ext[0] ^= 0x01
	werr := make(chan error, 1)
	go func() {
		_, err := client.Write(tracedFrame(ch, ext))
		werr <- err
	}()
	resp, err := ReadResponse(client)
	if err != nil {
		t.Fatalf("session died on corrupt trace header: %v", err)
	}
	if resp.Session != ch.Session {
		t.Fatalf("response for session %d, want %d", resp.Session, ch.Session)
	}
	if _, err := readTime(client); err != nil {
		t.Fatalf("time trailer: %v", err)
	}
	if err := <-werr; err != nil {
		t.Fatal(err)
	}
}

// FuzzChallengeFrameDecode fuzzes the trace-aware decoder. The seed corpus
// pins the compatibility matrix: v1 frames, traced v2 frames, corrupt and
// oversized extensions, truncations, and junk.
func FuzzChallengeFrameDecode(f *testing.F) {
	ch := fixedChallenge(11, 0x99)
	var v1 bytes.Buffer
	_ = WriteChallenge(&v1, ch)
	f.Add(v1.Bytes())
	var v2 bytes.Buffer
	_ = WriteChallengeTraced(&v2, ch, telemetry.TraceContext{Trace: 5, Span: 6})
	f.Add(v2.Bytes())
	badExt := encodeTraceExt(telemetry.TraceContext{Trace: 5, Span: 6})
	badExt[5] ^= 0x10
	f.Add(tracedFrame(ch, badExt))
	f.Add(tracedFrame(ch, make([]byte, 64)))
	f.Add(v2.Bytes()[:headerSize+3])
	f.Add([]byte{0x7e, 0xa7, 1, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, tc, err := ReadChallengeTraced(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to something decodable with the
		// same content — the codec cannot accept what it cannot emit.
		var buf bytes.Buffer
		if werr := WriteChallengeTraced(&buf, got, tc); werr != nil {
			t.Fatalf("decoded challenge does not re-encode: %v", werr)
		}
		rt, rtc, rerr := ReadChallengeTraced(bytes.NewReader(buf.Bytes()))
		if rerr != nil || rt != got || rtc != tc {
			t.Fatalf("re-encode round trip: %+v/%+v/%v, want %+v/%+v", rt, rtc, rerr, got, tc)
		}
	})
}

// --- cross-process trace stitching ---

func TestTCPTraceStitching(t *testing.T) {
	f := newFixture(t, 62)
	f.verifier.Device = "stitch-dev"
	srv := &Server{Agent: f.prover}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RequestContext(context.Background(), conn, f.verifier, DefaultLink())
	conn.Close()
	if err != nil || !res.Accepted {
		t.Fatalf("session failed: %v / %+v", err, res)
	}

	// Both halves run in this process and share the default tracer, so the
	// ring now holds two roots with one trace ID: the verifier's session
	// span and the prover's adopted serving span.
	var session *telemetry.Span
	for _, sp := range tel.Tracer.Recent() {
		if sp.Name() == "attest.session.tcp" && sp.Attr("device") == "stitch-dev" {
			session = sp
		}
	}
	if session == nil {
		t.Fatal("verifier session span not recorded")
	}
	roots := tel.Tracer.ByTrace(session.TraceID())
	var prove *telemetry.Span
	for _, sp := range roots {
		if sp.Name() == "attest.prove" {
			prove = sp
		}
	}
	if prove == nil {
		t.Fatalf("prover span not stitched into trace %s (%d roots)", session.TraceID(), len(roots))
	}
	if prove.ParentSpanID() != session.SpanID() {
		t.Fatalf("prover span parent %s, want verifier span %s", prove.ParentSpanID(), session.SpanID())
	}
	// The session tree carries the modelled link/compute segments.
	want := map[string]bool{"link.challenge": false, "compute": false, "link.response": false}
	for _, c := range session.Children() {
		if _, ok := want[c.Name()]; ok {
			want[c.Name()] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("session span missing %q segment", name)
		}
	}
}

// --- flight recorder ---

func TestFlightDumpCarriesSessionTrace(t *testing.T) {
	// The acceptance path: a fault-injected failing session must leave a
	// flight-recorder dump whose events carry the same trace ID the
	// verifier's trace ring shows for that session.
	f := newFixture(t, 63)
	T := newFleetTelemetry()
	dir := t.TempDir()
	T.SetFlightDir(dir)

	inj := NewFaultyLink(f.prover, PlanFor(FaultDrop, 0, 0), 77) // dead link
	inj.SetTelemetry(T)
	fleet := NewFleet()
	fleet.Telemetry = T
	if err := fleet.Enroll(4, f.verifier, inj); err != nil {
		t.Fatal(err)
	}
	report := fleet.SweepWithOptions(context.Background(), DefaultLink(),
		SweepOptions{Retry: RetryPolicy{MaxAttempts: 2}})
	if len(report.Unreachable) != 1 {
		t.Fatalf("report = %s, want node unreachable", report.String())
	}

	// The dump sequence is process-wide (collision-proof across bundles),
	// so the filename's number depends on test order: glob for the trigger.
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*-transport.jsonl"))
	if err != nil || len(dumps) != 1 {
		t.Fatalf("flight dumps = %v (err %v), want exactly one transport dump", dumps, err)
	}
	data, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() {
		t.Fatal("empty flight dump")
	}
	var header struct {
		FlightRecorder string `json:"flight_recorder"`
		Events         int    `json:"events"`
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		t.Fatalf("dump header not JSON: %v", err)
	}
	_, traceStr, ok := strings.Cut(header.FlightRecorder, "trace=")
	if !ok {
		t.Fatalf("dump header %q carries no trace ID", header.FlightRecorder)
	}
	if header.Events == 0 {
		t.Fatal("dump recorded zero events")
	}
	var matched int
	for sc.Scan() {
		var ev struct {
			TraceID string `json:"trace_id"`
			Kind    string `json:"kind"`
			Device  string `json:"device"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("dump line not JSON: %v (%s)", err, sc.Text())
		}
		if ev.TraceID == traceStr {
			matched++
			if ev.Device != "node-4" {
				t.Fatalf("event device %q, want node-4", ev.Device)
			}
		}
	}
	if matched == 0 {
		t.Fatalf("no dumped event carries the failing session's trace %s", traceStr)
	}
	// And that trace ID resolves in the verifier's trace ring — the same
	// tree /debug/traces serves.
	var id telemetry.TraceID
	if _, err := fmt.Sscanf(traceStr, "%x", (*uint64)(&id)); err != nil {
		t.Fatalf("trace id %q: %v", traceStr, err)
	}
	if len(T.Tracer.ByTrace(id)) == 0 {
		t.Fatalf("trace %s not present in the tracer ring", traceStr)
	}
	if T.Journal.Dropped() != 0 && T.EventsDropped.Value() != T.Journal.Dropped() {
		t.Fatal("journal drop counter not mirrored to the registry metric")
	}
}

// --- per-device health: suspect from timing alone ---

// inflatedAgent adds a fixed simulated delay to every response — the
// overclocking/proxy signature: the answer is correct, just late.
type inflatedAgent struct {
	inner ProverAgent
	extra float64
}

func (a *inflatedAgent) Respond(ch Challenge) (Response, float64, error) {
	resp, compute, err := a.inner.Respond(ch)
	return resp, compute + a.extra, err
}

func TestRTTInflationDrivesDeviceSuspect(t *testing.T) {
	clean := newFixture(t, 64)
	hot := newFixture(t, 65)
	clean.verifier.Device = "control"
	hot.verifier.Device = "proxied"
	T := newFleetTelemetry()
	link := DefaultLink()

	// Calibrate the timing SLO off one clean session: the bound sits 10 ms
	// above the honest RTT, and the inflated device runs 20 ms over that —
	// still comfortably inside δ (NetworkAllowance alone is 50 ms), so
	// every inflated session is ACCEPTED and only the timing SLO can trip.
	res, _, err := T.runSession(clean.verifier, clean.prover, link, 0)
	if err != nil || !res.Accepted {
		t.Fatalf("calibration session: %v / %+v", err, res)
	}
	slo := telemetry.DefaultSLO()
	slo.MinSessions = 4
	slo.MaxRTTP95 = res.Elapsed + 0.010
	T.Health.SetSLO(slo)

	inflated := &inflatedAgent{inner: hot.prover, extra: 0.030}
	for i := 0; i < 12; i++ {
		cres, _, cerr := T.runSession(clean.verifier, clean.prover, link, 0)
		if cerr != nil || !cres.Accepted {
			t.Fatalf("clean session %d: %v / %+v", i, cerr, cres)
		}
		hres, _, herr := T.runSession(hot.verifier, inflated, link, 0)
		if herr != nil || !hres.Accepted {
			t.Fatalf("inflated session %d not accepted (%v / %+v) — inflation must stay under δ", i, herr, hres)
		}
	}

	control, _ := T.Health.Get("control")
	if control.Status != telemetry.StatusOK {
		t.Fatalf("control device status = %v (reasons %v), want ok", control.Status, control.Reasons)
	}
	if len(control.Transitions) != 0 {
		t.Fatalf("control device logged %d transitions, want zero false transitions", len(control.Transitions))
	}
	proxied, _ := T.Health.Get("proxied")
	if proxied.Status != telemetry.StatusSuspect {
		t.Fatalf("proxied device status = %v (reasons %v), want suspect", proxied.Status, proxied.Reasons)
	}
	if proxied.Rejected != 0 {
		t.Fatalf("proxied device rejected %d sessions — suspect must come from timing alone", proxied.Rejected)
	}
	if len(proxied.Reasons) != 1 || !strings.Contains(proxied.Reasons[0], "rtt p95") {
		t.Fatalf("proxied reasons = %v, want a single rtt p95 violation", proxied.Reasons)
	}
	if n := len(proxied.Transitions); n != 1 {
		t.Fatalf("proxied transitions = %d, want exactly one (ok → suspect)", n)
	}
	if tr := proxied.Transitions[0]; tr.From != telemetry.StatusOK || tr.To != telemetry.StatusSuspect {
		t.Fatalf("transition %v → %v, want ok → suspect", tr.From, tr.To)
	}
	if T.StatusTransitions.With("suspect").Value() != 1 {
		t.Fatalf("status transition counter = %d, want 1", T.StatusTransitions.With("suspect").Value())
	}
}

// --- admin surface under concurrency ---

// TestAdminEndpointsRaceWithSweep hammers every admin route while a fleet
// sweep is live; run under -race (scripts/verify.sh does) it proves the
// telemetry read paths never tear against the attestation hot path.
func TestAdminEndpointsRaceWithSweep(t *testing.T) {
	fleet, _, _ := buildFleet(t, 4)
	T := newFleetTelemetry()
	fleet.Telemetry = T
	srv := httptest.NewServer(AdminMux(T))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			fleet.SweepWithOptions(context.Background(), DefaultLink(), DefaultSweepOptions())
		}
	}()
	paths := []string{"/metrics", "/debug/vars", "/debug/traces", "/debug/journal", "/devices", "/healthz"}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				for _, p := range paths {
					resp, err := http.Get(srv.URL + p)
					if err != nil {
						t.Errorf("GET %s: %v", p, err)
						return
					}
					if resp.StatusCode != http.StatusOK && p != "/healthz" {
						t.Errorf("GET %s: status %d", p, resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles the health surface reflects the sweeps.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum struct {
		Status  string `json:"status"`
		Devices int    `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Devices != 4 {
		t.Fatalf("healthz devices = %d, want 4", sum.Devices)
	}
}
